package opaq_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"sort"
	"testing"

	"opaq"
)

// Tests of the public facade: everything a downstream user can reach from
// `import "opaq"`, across element types and storage backends.

func TestPublicAPIBoundsInt64(t *testing.T) {
	xs := make([]int64, 10_000)
	for i := range xs {
		xs[i] = int64((i * 7919) % 10_000)
	}
	sum, err := opaq.BuildFromSlice(xs, opaq.Config{RunLen: 1000, SampleSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sum.Bounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower > 4999 || b.Upper < 4999 {
		t.Errorf("median of permutation of 0..9999: [%d,%d] must contain 4999", b.Lower, b.Upper)
	}
}

func TestPublicAPIFloat64(t *testing.T) {
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = float64((i*31)%5000) / 10
	}
	sum, err := opaq.BuildFromSlice(xs, opaq.Config{RunLen: 500, SampleSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sum.Bounds(0.25)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	truth := sorted[1250-1]
	if b.Lower > truth || truth > b.Upper {
		t.Errorf("float64 quantile %g outside [%g,%g]", truth, b.Lower, b.Upper)
	}
}

func TestPublicAPIStrings(t *testing.T) {
	// Generic over any cmp.Ordered — strings work too.
	words := []string{"fig", "apple", "pear", "date", "kiwi", "lime", "plum", "mango"}
	sum, err := opaq.BuildFromSlice(words, opaq.Config{RunLen: 4, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sum.Bounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	truth := sorted[3] // rank ⌈0.5·8⌉ = 4
	if b.Lower > truth || truth > b.Upper {
		t.Errorf("string median %q outside [%q,%q]", truth, b.Lower, b.Upper)
	}
}

func TestPublicAPIFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.run")
	n := int64(50_000)
	if err := opaq.WriteInt64FileFunc(path, n, func(i int64) int64 { return (i * 6364136223846793005) % 99991 }); err != nil {
		t.Fatal(err)
	}
	ds, err := opaq.OpenInt64File(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != n {
		t.Fatalf("Count = %d", ds.Count())
	}
	sum, err := opaq.BuildFromDataset(ds, opaq.Config{RunLen: 5000, SampleSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	// One pass exactly: 10 runs of 5000.
	if got := ds.Stats().ReadOps; got != 10 {
		t.Errorf("build used %d read ops, want 10 (one pass)", got)
	}
	exact, err := opaq.ExactQuantile(ds, sum, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sum.Bounds(0.5)
	if exact < b.Lower || exact > b.Upper {
		t.Errorf("exact median %d outside its own enclosure [%d,%d]", exact, b.Lower, b.Upper)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	xs := make([]int64, 8000)
	for i := range xs {
		xs[i] = int64(i * 3)
	}
	sum, err := opaq.BuildFromSlice(xs, opaq.Config{RunLen: 800, SampleSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := opaq.SaveSummaryInt64(&buf, sum); err != nil {
		t.Fatal(err)
	}
	got, err := opaq.LoadSummaryInt64(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sum.Bounds(0.9)
	b, _ := got.Bounds(0.9)
	if a.Lower != b.Lower || a.Upper != b.Upper {
		t.Error("bounds changed across save/load via facade")
	}
}

func TestPublicAPIMultipass(t *testing.T) {
	xs := make([]int64, 100_000)
	for i := range xs {
		xs[i] = int64((i*48271)%65537 - 32768)
	}
	ds := opaq.NewMemoryDataset(xs, 8)
	v, passes, err := opaq.ExactQuantileMultipass(ds, 0.75, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if want := sorted[75_000-1]; v != want {
		t.Errorf("multipass p75 = %d, want %d", v, want)
	}
	if passes < 2 {
		t.Errorf("expected multiple passes with budget 1000 over 100k, got %d", passes)
	}
}

func TestPublicAPIErrorsAreMatchable(t *testing.T) {
	if _, err := opaq.BuildFromSlice([]int64{1}, opaq.Config{RunLen: 0}); !errors.Is(err, opaq.ErrConfig) {
		t.Errorf("want ErrConfig, got %v", err)
	}
	sum, err := opaq.BuildFromSlice([]int64{1, 2, 3, 4}, opaq.Config{RunLen: 4, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sum.Bounds(2); !errors.Is(err, opaq.ErrPhi) {
		t.Errorf("want ErrPhi, got %v", err)
	}
	empty, _ := opaq.BuildFromSlice[int64](nil, opaq.Config{RunLen: 4, SampleSize: 2})
	if _, err := empty.Bounds(0.5); !errors.Is(err, opaq.ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	other, _ := opaq.BuildFromSlice([]int64{1, 2, 3, 4}, opaq.Config{RunLen: 4, SampleSize: 4})
	if _, err := opaq.Merge(sum, other); !errors.Is(err, opaq.ErrIncompatible) {
		t.Errorf("want ErrIncompatible, got %v", err)
	}
}

func TestPublicAPIPlanThenBuild(t *testing.T) {
	plan, err := opaq.PlanConfig(1_000_000, 50_000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.SampleSize < 40 {
		t.Errorf("planned s = %d < 2q", plan.Config.SampleSize)
	}
	xs := make([]int64, 100_000)
	for i := range xs {
		xs[i] = int64(i ^ 0x5a5a)
	}
	if _, err := opaq.BuildFromSlice(xs, plan.Config); err != nil {
		t.Errorf("planned config failed to build: %v", err)
	}
}

func TestPublicAPIHistogramAndSort(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	out := filepath.Join(dir, "out.run")
	n := int64(30_000)
	if err := opaq.WriteInt64FileFunc(in, n, func(i int64) int64 { return (i * 2654435761) % 1_000_003 }); err != nil {
		t.Fatal(err)
	}
	st, err := opaq.ExternalSort(in, out, opaq.SortOptions{
		Buckets: 4,
		Config:  opaq.Config{RunLen: 3000, SampleSize: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != n || st.Imbalance() > 1.5 {
		t.Errorf("sort stats: %+v", st)
	}
	ds, err := opaq.OpenInt64File(out)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := opaq.BuildFromDataset(ds, opaq.Config{RunLen: 3000, SampleSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	h, err := opaq.BuildHistogram(sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 10 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
	if s := h.Selectivity(0, 500_000); s < 0.3 || s > 0.7 {
		t.Errorf("selectivity of lower half = %g, want ≈0.5", s)
	}
}

func TestPublicAPIParallel(t *testing.T) {
	const p = 4
	shards := make([][]int64, p)
	for i := range shards {
		sh := make([]int64, 8000)
		for j := range sh {
			sh[j] = int64((i*8000 + j) * 104729 % 999983)
		}
		shards[i] = sh
	}
	res, err := opaq.ParallelRun(shards, opaq.ParallelConfig{
		Core:  opaq.Config{RunLen: 2000, SampleSize: 200},
		Procs: p,
		Merge: opaq.BitonicMerge,
		Model: opaq.DefaultCostModel(),
		Disk:  opaq.DefaultDiskModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.N() != int64(p*8000) {
		t.Errorf("N = %d", res.Summary.N())
	}
	if res.TotalTime <= 0 {
		t.Error("simulated time must be positive")
	}
	var all []int64
	for _, sh := range shards {
		all = append(all, sh...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b, err := res.Summary.Bounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := all[len(all)/2-1]
	if b.Lower > truth || truth > b.Upper {
		t.Errorf("parallel median %d outside [%d,%d]", truth, b.Lower, b.Upper)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	g := opaq.NewUniformGenerator(1, 100)
	for i := 0; i < 100; i++ {
		if v := g.Next(); v < 0 || v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
	z, err := opaq.NewZipfGenerator(1, 1000, 0.86)
	if err != nil {
		t.Fatal(err)
	}
	if z.Name() != "zipf" {
		t.Errorf("Name = %q", z.Name())
	}
	if _, err := opaq.NewZipfGenerator(1, 0, 0.86); err == nil {
		t.Error("bad zipf universe should fail")
	}
}

// TestPublicAPIConcurrentBuildDeterminism pins the Workers guarantee at the
// public surface: summaries are bit-identical at every worker count.
func TestPublicAPIConcurrentBuildDeterminism(t *testing.T) {
	xs := make([]int64, 50_000)
	for i := range xs {
		xs[i] = int64((i * 2654435761) % 1_000_003)
	}
	cfg := opaq.Config{RunLen: 4000, SampleSize: 200, Seed: 3}
	var want []int64
	for _, w := range []int{1, 2, 7} {
		c := cfg
		c.Workers = w
		sum, err := opaq.BuildFromSlice(xs, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = sum.Samples()
			continue
		}
		got := sum.Samples()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d samples, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sample %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestPublicAPIGenericFiles round-trips a float32 run file through the
// codec-generic Open/Write surface and builds a summary over it.
func TestPublicAPIGenericFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.run")
	xs := make([]float32, 8_000)
	for i := range xs {
		xs[i] = float32(i%997) / 997
	}
	if err := opaq.WriteFile(path, opaq.Float32Codec{}, xs); err != nil {
		t.Fatal(err)
	}
	ds, err := opaq.OpenFile[float32](path, opaq.Float32Codec{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := opaq.BuildFromDataset(ds, opaq.Config{RunLen: 1000, SampleSize: 100, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sum.Bounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower > 0.5 || b.Upper < 0.49 {
		t.Errorf("median enclosure [%g, %g] implausible", b.Lower, b.Upper)
	}
}

// TestPublicAPIGenericSortFloat64 externally sorts a float64 run file via
// the generic Sort with a concurrent splitter pass.
func TestPublicAPIGenericSortFloat64(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	out := filepath.Join(dir, "out.run")
	xs := make([]float64, 30_000)
	for i := range xs {
		xs[i] = float64((i*48271)%30_011) - 15_000.5
	}
	if err := opaq.WriteFloat64File(in, xs); err != nil {
		t.Fatal(err)
	}
	st, err := opaq.Sort(in, out, opaq.Float64Codec{}, opaq.SortOptions{
		Buckets: 8,
		Config:  opaq.Config{RunLen: 2000, SampleSize: 100, Workers: 2},
		TempDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != int64(len(xs)) {
		t.Fatalf("N = %d", st.N)
	}
	ds, err := opaq.OpenFloat64File(out)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ds.Runs(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for {
		run, err := rr.NextRun()
		if err != nil {
			break
		}
		got = append(got, run...)
	}
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("got %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestPublicAPIGenericPersistence checkpoints a float64 summary through the
// generic Save/Load pair and the typed wrappers.
func TestPublicAPIGenericPersistence(t *testing.T) {
	xs := make([]float64, 6_000)
	for i := range xs {
		xs[i] = float64(i) * 0.25
	}
	sum, err := opaq.BuildFromSlice(xs, opaq.Config{RunLen: 600, SampleSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := opaq.SaveSummaryFloat64(&buf, sum); err != nil {
		t.Fatal(err)
	}
	loaded, err := opaq.LoadSummary[float64](bytes.NewReader(buf.Bytes()), opaq.Float64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != sum.N() || loaded.SampleCount() != sum.SampleCount() {
		t.Fatalf("loaded summary n=%d samples=%d, want n=%d samples=%d",
			loaded.N(), loaded.SampleCount(), sum.N(), sum.SampleCount())
	}
	wb, _ := sum.Bounds(0.9)
	lb, err := loaded.Bounds(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if wb.Lower != lb.Lower || wb.Upper != lb.Upper {
		t.Errorf("bounds diverged after round trip: %+v vs %+v", wb, lb)
	}
	// A wrong codec must be rejected, not misdecoded.
	if _, err := opaq.LoadSummary[int64](bytes.NewReader(buf.Bytes()), opaq.Int64Codec{}); err == nil {
		t.Error("loading float64 checkpoint with int64 codec should fail")
	}
}

// BuildSharded through the public surface: byte-identical to the
// sequential build across shard counts and both merge algorithms.
func TestPublicAPIBuildSharded(t *testing.T) {
	const runLen = 1000
	cfg := opaq.Config{RunLen: runLen, SampleSize: 100, Seed: 11}
	xs := make([]int64, 24*runLen)
	for i := range xs {
		xs[i] = int64((i * 2654435761) % 1_000_003)
	}
	seq, err := opaq.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := opaq.SaveSummaryInt64(&want, seq); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		shards int
		merge  opaq.MergeAlgo
	}{{1, opaq.SampleMerge}, {3, opaq.SampleMerge}, {8, opaq.SampleMerge}, {4, opaq.BitonicMerge}} {
		got, err := opaq.BuildShardedFromSlice(xs, cfg, opaq.ShardOptions{Shards: tc.shards, Merge: tc.merge})
		if err != nil {
			t.Fatalf("shards=%d merge=%v: %v", tc.shards, tc.merge, err)
		}
		var buf bytes.Buffer
		if err := opaq.SaveSummaryInt64(&buf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want.Bytes()) {
			t.Errorf("shards=%d merge=%v: summary bytes differ from sequential build", tc.shards, tc.merge)
		}
	}

	// Explicit per-shard datasets (the transport-level entry point).
	pieces, err := opaq.ShardSlices(xs, 4, runLen)
	if err != nil {
		t.Fatal(err)
	}
	datasets := make([]opaq.Dataset[int64], len(pieces))
	for i, p := range pieces {
		datasets[i] = opaq.NewMemoryDataset(p, 8)
	}
	got, err := opaq.BuildSharded(datasets, cfg, opaq.ShardOptions{Merge: opaq.SampleMerge})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := opaq.SaveSummaryInt64(&buf, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Error("BuildSharded over datasets differs from sequential build")
	}
}

// The generic multipass surface accepts float64 datasets.
func TestPublicAPIMultipassFloat64(t *testing.T) {
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = float64((i*48271)%65537) / 7
	}
	ds := opaq.NewMemoryDataset(xs, 8)
	v, passes, err := opaq.ExactQuantileMultipass(ds, 0.5, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if want := sorted[25_000-1]; v != want {
		t.Errorf("float multipass median = %g, want %g", v, want)
	}
	if passes < 2 {
		t.Errorf("expected multiple passes, got %d", passes)
	}
}

// Regression: BuildShardedFromSlice used to model every element at 8 bytes
// regardless of type, so 32-bit builds reported twice their real I/O. The
// modeled stats of a float32 sharded build must charge 4 bytes per element.
func TestShardedFloat32ModeledStats(t *testing.T) {
	const runLen, n = 1 << 10, 50_000
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32((i*48271)%65537) / 3
	}
	datasets, err := opaq.MemoryShards(xs, 4, runLen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opaq.Config{RunLen: runLen, SampleSize: 1 << 6}
	sum, err := opaq.BuildSharded(datasets, cfg, opaq.ShardOptions{Merge: opaq.SampleMerge})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N() != n {
		t.Fatalf("n = %d, want %d", sum.N(), n)
	}
	var total int64
	for _, ds := range datasets {
		total += ds.Stats().BytesRead
	}
	if want := int64(n) * int64(opaq.ElemSize[float32]()); total != want {
		t.Errorf("float32 sharded build modeled %d bytes read, want %d (4 bytes/elem)", total, want)
	}
	if opaq.ElemSize[float32]() != 4 || opaq.ElemSize[int64]() != 8 {
		t.Errorf("ElemSize: float32=%d int64=%d, want 4 and 8",
			opaq.ElemSize[float32](), opaq.ElemSize[int64]())
	}

	// The sharded summary still matches the sequential one bit-for-bit.
	seq, err := opaq.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := opaq.SaveSummary(&a, seq, opaq.Float32Codec{}); err != nil {
		t.Fatal(err)
	}
	if err := opaq.SaveSummary(&b, sum, opaq.Float32Codec{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("float32 sharded summary differs from sequential build")
	}
}
