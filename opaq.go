// Package opaq is a Go implementation of OPAQ — the one-pass deterministic
// algorithm of Alsabti, Ranka and Singh for accurately estimating quantiles
// of disk-resident data (VLDB 1997) — together with the substrates and
// applications from the paper: a disk run-file format, workload generators,
// competing estimators, a simulated parallel formulation, equi-depth
// histograms and external sorting.
//
// # The algorithm in brief
//
// OPAQ reads the data once, as r runs of m elements. From each run it
// extracts s regular samples (the elements of exact local ranks m/s, 2m/s,
// …, m) and merges all sample lists into one sorted list. For any quantile
// fraction φ it then returns two sample values e_l ≤ e_φ ≤ e_u such that at
// most n/s data elements lie between the true quantile and either bound —
// a deterministic, distribution-free guarantee (the paper's Lemmas 1–3).
// Memory use is m + r·s elements; every additional quantile costs O(1).
//
// # Quick start
//
//	summary, err := opaq.BuildFromSlice(keys, opaq.Config{RunLen: 1 << 16, SampleSize: 1 << 10})
//	if err != nil { ... }
//	b, err := summary.Bounds(0.5) // deterministic enclosure of the median
//	fmt.Println(b.Lower, b.Upper, b.MaxBelow, b.MaxAbove)
//
// For data on disk, write it with WriteFile (or stream it with
// WriteFileFunc), open it with OpenFile, and call BuildFromDataset; the
// build performs exactly one sequential pass. ExactQuantile spends one
// additional pass to refine an enclosure into the exact value. Merge
// combines summaries of disjoint data for incremental maintenance.
//
// # Concurrency and element types
//
// Config.Workers turns the build into a staged pipeline: a prefetching
// producer overlaps disk I/O with a pool of sampling workers (0 means
// GOMAXPROCS, 1 forces the sequential scan). The resulting Summary is
// bit-identical for every worker count. The whole disk-facing surface —
// OpenFile, WriteFile, Sort, SaveSummary, LoadSummary — is generic over a
// Codec describing the element encoding; Int64Codec, Float64Codec,
// Uint64Codec and the 32-bit variants are provided, and the OpenInt64File
// / SaveSummaryInt64-style helpers remain as thin wrappers.
//
// # Sharded builds
//
// BuildSharded scales the build across per-shard datasets: each shard
// runs the full local sample phase concurrently and the per-shard sample
// lists are globally merged by the paper's Section 3 parallel formulation
// (PSRS-style sample merge, or a bitonic merge-split network). With
// run-aligned shards the result is bit-identical to a sequential Build
// over the concatenated data. ParallelRun executes the same algorithms on
// the simulated machine of the paper's evaluation instead, reporting
// modeled phase times.
//
// # Serving
//
// Engine is the live counterpart of the batch builds: a long-lived
// service with lock-striped concurrent ingest, version-cached
// single-flight merged snapshots, checkpoint/restore through the
// SaveSummary format, and a bulk-load path over run files. NewEngineHandler
// exposes it over HTTP/JSON (the API `opaq serve` speaks).
//
// The subpackages under internal are the implementation; this package is
// the supported surface.
package opaq

import (
	"cmp"
	"io"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/extsort"
	"opaq/internal/histogram"
	"opaq/internal/multipass"
	"opaq/internal/runio"
)

// Config fixes the sample-phase parameters: RunLen is the paper's m,
// SampleSize its s. See core.Config for the constraints.
type Config = core.Config

// Summary is a one-pass quantile summary; see core.Summary.
type Summary[T cmp.Ordered] = core.Summary[T]

// Bounds is a deterministic quantile enclosure; see core.Bounds.
type Bounds[T cmp.Ordered] = core.Bounds[T]

// Plan is a memory-budgeted parameter choice; see core.Plan.
type Plan = core.Plan

// Dataset is a rescannable element source; see runio.Dataset.
type Dataset[T any] = runio.Dataset[T]

// RunReader is a sequential run iterator; see runio.RunReader.
type RunReader[T any] = runio.RunReader[T]

// Codec describes how elements of type T are serialized into run files and
// summary checkpoints; see runio.Codec.
type Codec[T any] = runio.Codec[T]

// The built-in fixed-width codecs.
type (
	// Int64Codec encodes int64 keys little-endian.
	Int64Codec = runio.Int64Codec
	// Float64Codec encodes float64 keys via their IEEE-754 bits.
	Float64Codec = runio.Float64Codec
	// Uint64Codec encodes uint64 keys little-endian.
	Uint64Codec = runio.Uint64Codec
	// Int32Codec encodes int32 keys little-endian.
	Int32Codec = runio.Int32Codec
	// Uint32Codec encodes uint32 keys little-endian.
	Uint32Codec = runio.Uint32Codec
	// Float32Codec encodes float32 keys via their IEEE-754 bits.
	Float32Codec = runio.Float32Codec
)

// Sentinel errors re-exported from the core.
var (
	// ErrConfig reports an invalid Config.
	ErrConfig = core.ErrConfig
	// ErrEmpty reports an operation on an empty summary.
	ErrEmpty = core.ErrEmpty
	// ErrPhi reports a quantile fraction outside (0, 1].
	ErrPhi = core.ErrPhi
	// ErrIncompatible reports summaries that cannot be merged.
	ErrIncompatible = core.ErrIncompatible
)

// Build runs the one-pass sample phase over a run reader.
func Build[T cmp.Ordered](rr RunReader[T], cfg Config) (*Summary[T], error) {
	return core.Build(rr, cfg)
}

// BuildFromDataset runs the sample phase over a fresh scan of ds.
func BuildFromDataset[T cmp.Ordered](ds Dataset[T], cfg Config) (*Summary[T], error) {
	return core.BuildFromDataset(ds, cfg)
}

// BuildFromSlice runs the sample phase over an in-memory slice.
func BuildFromSlice[T cmp.Ordered](xs []T, cfg Config) (*Summary[T], error) {
	return core.BuildFromSlice(xs, cfg)
}

// Merge combines two summaries built with the same m/s ratio into one
// covering the union of their data (incremental maintenance).
func Merge[T cmp.Ordered](a, b *Summary[T]) (*Summary[T], error) {
	return core.Merge(a, b)
}

// ExactQuantile refines a summary's enclosure of the φ-quantile into the
// exact value with one additional pass over the dataset.
func ExactQuantile[T cmp.Ordered](ds Dataset[T], s *Summary[T], phi float64) (T, error) {
	return core.ExactQuantile(ds, s, phi)
}

// PlanConfig chooses (RunLen, SampleSize) for n elements under a memory
// budget of memElems elements, targeting q quantiles.
func PlanConfig(n, memElems int64, q int) (Plan, error) {
	return core.PlanConfig(n, memElems, q)
}

// NewMemoryDataset wraps an in-memory slice as a Dataset; elemSize is the
// modeled on-disk element width in bytes (use ElemSize[T]() for the
// element type's real width — 8 for int64/float64, 4 for float32).
func NewMemoryDataset[T any](xs []T, elemSize int) Dataset[T] {
	return runio.NewMemoryDataset(xs, elemSize)
}

// ElemSize returns the modeled on-disk width in bytes of one element of
// type T — the width the built-in codecs encode at for every fixed-width
// numeric key type.
func ElemSize[T any]() int {
	return runio.ElemSize[T]()
}

// ReadAll materializes a whole dataset in memory (one sequential scan).
// Intended for moderate inputs; the build entry points never need it.
func ReadAll[T any](ds Dataset[T]) ([]T, error) {
	return runio.ReadAll(ds)
}

// OpenFile opens a run file of T keys as a Dataset; codec must match the
// kind recorded in the file header.
func OpenFile[T any](path string, codec Codec[T]) (Dataset[T], error) {
	return runio.OpenFile(path, codec)
}

// WriteFile writes xs to a run file at path using codec.
func WriteFile[T any](path string, codec Codec[T], xs []T) error {
	return runio.WriteFile(path, codec, xs)
}

// WriteFileFunc streams n generated keys to a run file without
// materializing them; gen(i) returns the i-th key.
func WriteFileFunc[T any](path string, codec Codec[T], n int64, gen func(i int64) T) error {
	return runio.WriteFileFunc(path, codec, n, gen)
}

// OpenInt64File opens a run file of int64 keys as a Dataset.
func OpenInt64File(path string) (Dataset[int64], error) {
	return OpenFile[int64](path, runio.Int64Codec{})
}

// OpenFloat64File opens a run file of float64 keys as a Dataset.
func OpenFloat64File(path string) (Dataset[float64], error) {
	return OpenFile[float64](path, runio.Float64Codec{})
}

// WriteInt64File writes xs to a run file at path.
func WriteInt64File(path string, xs []int64) error {
	return WriteFile[int64](path, runio.Int64Codec{}, xs)
}

// WriteFloat64File writes xs to a run file at path.
func WriteFloat64File(path string, xs []float64) error {
	return WriteFile[float64](path, runio.Float64Codec{}, xs)
}

// WriteInt64FileFunc streams n generated int64 keys to a run file without
// materializing them; gen(i) returns the i-th key.
func WriteInt64FileFunc(path string, n int64, gen func(i int64) int64) error {
	return WriteFileFunc[int64](path, runio.Int64Codec{}, n, gen)
}

// EquiDepth is an equi-depth histogram; see histogram.EquiDepth.
type EquiDepth[T cmp.Ordered] = histogram.EquiDepth[T]

// BuildHistogram derives a B-bucket equi-depth histogram from a summary —
// the query-optimizer selectivity application.
func BuildHistogram[T cmp.Ordered](s *Summary[T], buckets int) (*EquiDepth[T], error) {
	return histogram.Build(s, buckets)
}

// SortOptions configures Sort and ExternalSort; see extsort.Options.
type SortOptions = extsort.Options

// SortStats reports partition balance of an external sort; see
// extsort.Stats.
type SortStats[T cmp.Ordered] = extsort.Stats[T]

// Sort externally sorts the run file of T keys at inPath into outPath by
// quantile partitioning: one OPAQ pass (concurrent per opts.Config.Workers),
// one scatter pass, one per-bucket sort pass.
func Sort[T cmp.Ordered](inPath, outPath string, codec Codec[T], opts SortOptions) (SortStats[T], error) {
	return extsort.Sort(inPath, outPath, codec, opts)
}

// ExternalSort is Sort specialised to int64 run files, kept as a thin
// wrapper over the generic path.
func ExternalSort(inPath, outPath string, opts SortOptions) (SortStats[int64], error) {
	return Sort[int64](inPath, outPath, runio.Int64Codec{}, opts)
}

// Generator is a deterministic workload key stream; see datagen.Generator.
type Generator = datagen.Generator

// NewUniformGenerator returns uniform int64 keys over [0, max).
func NewUniformGenerator(seed, max int64) Generator { return datagen.NewUniform(seed, max) }

// NewZipfGenerator returns Zipf-skewed keys with the paper's
// parameterisation (param 1 = uniform, 0 = maximal skew; the paper
// evaluates 0.86).
func NewZipfGenerator(seed int64, distinct int, param float64) (Generator, error) {
	return datagen.NewZipf(seed, distinct, param)
}

// SaveSummary serializes a summary to w, checksummed, so long-lived
// pipelines can checkpoint quantile state between ingests.
func SaveSummary[T cmp.Ordered](w io.Writer, s *Summary[T], codec Codec[T]) error {
	return core.SaveSummary(w, s, codec)
}

// LoadSummary restores a summary written by SaveSummary with the same
// codec, re-validating every structural invariant.
func LoadSummary[T cmp.Ordered](r io.Reader, codec Codec[T]) (*Summary[T], error) {
	return core.LoadSummary[T](r, codec)
}

// SaveSummaryInt64 is SaveSummary with the int64 codec.
func SaveSummaryInt64(w io.Writer, s *Summary[int64]) error {
	return SaveSummary(w, s, runio.Int64Codec{})
}

// LoadSummaryInt64 restores a summary written by SaveSummaryInt64,
// re-validating every structural invariant.
func LoadSummaryInt64(r io.Reader) (*Summary[int64], error) {
	return LoadSummary[int64](r, runio.Int64Codec{})
}

// SaveSummaryFloat64 is SaveSummary with the float64 codec.
func SaveSummaryFloat64(w io.Writer, s *Summary[float64]) error {
	return SaveSummary(w, s, runio.Float64Codec{})
}

// LoadSummaryFloat64 restores a summary written by SaveSummaryFloat64.
func LoadSummaryFloat64(r io.Reader) (*Summary[float64], error) {
	return LoadSummary[float64](r, runio.Float64Codec{})
}

// NumericKey is the constraint of ExactQuantileMultipass: any fixed-width
// numeric type (every type with a built-in Codec). The multipass baseline
// needs value arithmetic for its bisection fallback, so — unlike the
// purely comparison-based OPAQ surface — it cannot accept all of
// cmp.Ordered.
type NumericKey = multipass.Key

// ExactQuantileMultipass computes an exact quantile using the multi-pass
// narrowing strategy of the prior art the paper compares against ([GS90],
// [MP80]): exact answers under a memory budget, at the cost of
// ~log(n/memBudget) passes instead of OPAQ's one. It is generic over every
// codec-supported key type; int64 call sites infer T as before.
func ExactQuantileMultipass[T NumericKey](ds Dataset[T], phi float64, memBudget int, seed int64) (T, int, error) {
	res, err := multipass.FindExact(ds, phi, memBudget, seed)
	return res.Value, res.Passes, err
}

// StreamBuilder ingests elements one at a time and maintains a summary
// over everything seen — the push-based counterpart of Build; see
// core.StreamBuilder.
type StreamBuilder[T cmp.Ordered] = core.StreamBuilder[T]

// NewStreamBuilder returns a streaming summary builder; its Summary()
// matches Build over the same element sequence exactly.
func NewStreamBuilder[T cmp.Ordered](cfg Config) (*StreamBuilder[T], error) {
	return core.NewStreamBuilder[T](cfg)
}

// NewSelfSimilarGenerator returns keys under the 80–20 self-similar
// distribution with skew h in [0.5, 1); h = 0.8 is the classic 80–20 rule.
func NewSelfSimilarGenerator(seed, max int64, h float64) (Generator, error) {
	return datagen.NewSelfSimilar(seed, max, h)
}
