// Epoch compaction: a keep-all engine under continuous rotation gains one
// ring entry per seal, so snapshot-rebuild fan-in, /stats payloads and
// retention bookkeeping grow without bound. Because sealed summaries merge
// without information loss, adjacent epochs can be pre-merged at any time
// with answers — and checkpoint bytes — provably unchanged; compaction
// does so binary-buddy style (core.PlanBuddiesBy plans the spans,
// core.MergeAll reassembles each), holding the ring at O(log N) entries.
// A compacted epoch carries the covered epoch-ID
// span, the merged element count and byte size, and the covered seal-time
// range, so last-K and age-based retention keep operating on ring entries
// at span granularity: an entry is evicted only when its NEWEST covered
// seal leaves the window (never early), last-K counts covered seals, and
// a retention gate (compactGate) caps each merged span at half the
// window, bounding over-retention at 1.5× what the policy promises.
package engine

import (
	"fmt"
	"time"

	"opaq/internal/core"
)

// CompactionPolicy controls background binary-buddy compaction of the
// sealed-epoch ring. The zero value never compacts automatically;
// Engine.Compact still works.
type CompactionPolicy struct {
	// Enabled turns on compaction after every rotation and absorb
	// (restore, bulk load), and on snapshot rebuilds — so a quiet engine
	// that only answers queries still converges to the compacted shape.
	Enabled bool
	// MinEpochs is a trigger floor: automatic compaction runs only while
	// the ring holds more than MinEpochs entries. It preserves eviction
	// granularity for shallow rings (entries that never compact evict one
	// seal at a time). 0 means no floor. Explicit Compact calls ignore it.
	MinEpochs int
}

// Validate checks the policy invariants.
func (p CompactionPolicy) Validate() error {
	if p.MinEpochs < 0 {
		return fmt.Errorf("%w: CompactionPolicy.MinEpochs must be non-negative, got %d", core.ErrConfig, p.MinEpochs)
	}
	return nil
}

// Compact runs one compaction pass to fixpoint, regardless of whether the
// CompactionPolicy is enabled (symmetric with Rotate, which works without
// an EpochPolicy). It reports whether the ring changed — false also when
// a concurrent seal or eviction invalidated the pass mid-merge (see
// compactPass). Compaction never changes answers: the merged snapshot,
// every quantile/rank/selectivity result and the checkpoint bytes are
// byte-identical before and after, so a cached snapshot stays valid
// across it.
func (e *Engine[T]) Compact() (bool, error) {
	return e.compactPass(true)
}

// epochMeta is the bookkeeping the buddy planner folds alongside the
// element counts: enough to evaluate the retention gate on candidate
// merged spans without touching the summaries.
type epochMeta struct {
	n, seals    int64
	first, last time.Time
}

// compactGate bounds a merged epoch's covered span so retention fidelity
// survives compaction. Eviction operates on whole ring entries, so an
// entry spanning more than half the retention window would keep
// due-for-eviction data up to a full window past its boundary; capping
// spans at half the window bounds over-retention at 1.5× the promised
// window (the entry is evicted when its newest covered seal crosses the
// boundary, and its oldest covered seal is at most half a window older).
// Keep-all engines have no boundary and merge ungated.
func (e *Engine[T]) compactGate() func(older, newer epochMeta) bool {
	switch e.retain.Kind {
	case RetainMaxAge:
		half := e.retain.MaxAge / 2
		return func(older, newer epochMeta) bool {
			return newer.last.Sub(older.first) <= half
		}
	case RetainLastK:
		limit := max(int64(e.retain.K)/2, 1)
		return func(older, newer epochMeta) bool {
			return older.seals+newer.seals <= limit
		}
	}
	return nil
}

// compactPass runs one compaction pass: plan under epochMu (cheap), run
// the k-way sample merges OUTSIDE the lock (they do O(retained samples)
// work on a top-tier carry cascade, and must not stall Stats, Rotate,
// absorb or checkpoints — the same reason rebuildLocked merges outside
// epochMu), then re-acquire and swap only if the ring is still the one
// that was planned against; a concurrent seal or eviction abandons the
// pass, and the next trigger replans. core.PlanBuddiesBy carries the
// tiering rule; compactGate adds the retention-fidelity cap. force
// bypasses the policy gate for explicit Compact calls — not the
// retention gate, which is a correctness bound, not a trigger. The
// ingest version is NOT bumped: the merge set's content is unchanged, so
// the cached snapshot remains exactly right and no rebuild is provoked.
//
// The caller must NOT hold epochMu.
func (e *Engine[T]) compactPass(force bool) (bool, error) {
	e.epochMu.Lock()
	planned := e.ring.Load()
	ring := *planned
	if !force && (!e.compaction.Enabled || len(ring) <= e.compaction.MinEpochs) {
		e.epochMu.Unlock()
		return false, nil
	}
	if len(ring) < 2 {
		e.epochMu.Unlock()
		return false, nil
	}
	metas := make([]epochMeta, len(ring))
	for i, ep := range ring {
		metas[i] = epochMeta{n: ep.Summary.N(), seals: ep.Seals, first: ep.FirstSealedAt, last: ep.SealedAt}
	}
	spans := core.PlanBuddiesBy(metas,
		func(m epochMeta) int64 { return m.n },
		func(a, b epochMeta) epochMeta {
			return epochMeta{n: a.n + b.n, seals: a.seals + b.seals, first: a.first, last: b.last}
		},
		e.compactGate())
	e.epochMu.Unlock()
	if len(spans) == len(ring) {
		return false, nil
	}

	// The merges run lock-free: epochs are immutable, and the planned
	// ring slice is a private snapshot.
	sums := make([]*core.Summary[T], len(ring))
	for i, ep := range ring {
		sums[i] = ep.Summary
	}
	merged, err := core.MergeSpans(sums, spans)
	if err != nil {
		return false, err
	}
	compacted := make([]*Epoch[T], len(spans))
	var folded int64
	for i, sp := range spans {
		if sp[1]-sp[0] == 1 {
			compacted[i] = ring[sp[0]]
			continue
		}
		// Fold the span's metadata: the ID span and seal-time range cover
		// the oldest through newest source epoch (the ring is
		// chronological, so order is preserved), counts and bytes sum.
		first, last := ring[sp[0]], ring[sp[1]-1]
		ep := &Epoch[T]{
			ID:            last.ID,
			FirstID:       first.FirstID,
			Summary:       merged[i],
			SealedAt:      last.SealedAt,
			FirstSealedAt: first.FirstSealedAt,
			Source:        EpochCompacted,
		}
		for _, src := range ring[sp[0]:sp[1]] {
			ep.Seals += src.Seals
			ep.Bytes += src.Bytes
		}
		compacted[i] = ep
		folded += int64(sp[1] - sp[0] - 1)
	}

	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	if e.ring.Load() != planned {
		// A seal, eviction or competing compaction changed the ring while
		// the merges ran; the work is discarded (answers were never at
		// risk — the published ring was untouched).
		return false, nil
	}
	// Publishing the compacted ring refreshes the age deadline (a
	// compacted head's SealedAt is its newest covered seal — eviction
	// never fires early) and, by swapping the slice identity, invalidates
	// the frozen-prefix cache; the next rebuild re-merges the (now
	// logarithmic) ring once. The cached SNAPSHOT stays valid: answers
	// are unchanged, so no version bump and no rebuild is provoked.
	e.publishRingLocked(&compacted)
	e.compactedEpochs.Add(folded)
	e.compactions.Add(1)
	return true, nil
}
