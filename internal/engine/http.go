// HTTP/JSON transport for the engine: a small API a query optimizer, a
// metrics pipeline or curl can speak. Keys are carried as JSON strings in
// responses (and accepted as strings or numbers in requests) so 64-bit
// integer keys survive transports that parse JSON numbers as float64.
package engine

import (
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"opaq/internal/core"
)

// ParseKey converts a decimal string into a key; FormatKey is its inverse.
// int64 engines use strconv.ParseInt / FormatInt-style implementations
// (see Int64Key).
type ParseKey[T any] func(string) (T, error)

// Int64Key parses an int64 key, the CLI server's element type.
func Int64Key(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

// Float64Key parses a float64 key.
func Float64Key(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// handler serves the engine API:
//
//	POST /ingest       {"keys": [1, "2", 3]}            → {"ingested": 3, "n": 1003}
//	GET  /quantile     ?phi=0.5                          → the deterministic enclosure
//	GET  /quantiles    ?q=10                             → q−1 equally spaced enclosures
//	GET  /selectivity  ?a=10&b=20                        → histogram range estimate
//	GET  /stats                                          → engine counters
type handler[T cmp.Ordered] struct {
	e     *Engine[T]
	parse ParseKey[T]
}

// NewHandler returns the engine's HTTP API. parse converts request keys
// from their decimal string form.
func NewHandler[T cmp.Ordered](e *Engine[T], parse ParseKey[T]) http.Handler {
	h := &handler[T]{e: e, parse: parse}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", h.ingest)
	mux.HandleFunc("GET /quantile", h.quantile)
	mux.HandleFunc("GET /quantiles", h.quantiles)
	mux.HandleFunc("GET /selectivity", h.selectivity)
	mux.HandleFunc("GET /stats", h.stats)
	return mux
}

// boundsJSON is one quantile enclosure on the wire.
type boundsJSON struct {
	Phi      float64 `json:"phi"`
	Rank     int64   `json:"rank"`
	Lower    string  `json:"lower"`
	Upper    string  `json:"upper"`
	MaxBelow int64   `json:"max_below"`
	MaxAbove int64   `json:"max_above"`
}

func toBoundsJSON[T cmp.Ordered](b core.Bounds[T]) boundsJSON {
	return boundsJSON{
		Phi:      b.Phi,
		Rank:     b.Rank,
		Lower:    fmt.Sprint(b.Lower),
		Upper:    fmt.Sprint(b.Upper),
		MaxBelow: b.MaxBelow,
		MaxAbove: b.MaxAbove,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps engine errors onto HTTP statuses: malformed input is 400,
// querying an empty engine is 409 (a state, not a request, problem),
// anything else is 500.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrEmpty):
		status = http.StatusConflict
	case errors.Is(err, core.ErrPhi), errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

var errBadRequest = errors.New("bad request")

// maxQuantiles caps GET /quantiles: beyond a few thousand equally spaced
// quantiles the summary's sample resolution is exhausted anyway.
const maxQuantiles = 4096

func (h *handler[T]) ingest(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Keys []json.RawMessage `json:"keys"`
	}
	// Keys are captured as raw bytes and re-parsed through h.parse, so
	// 64-bit integers never round-trip through float64.
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding body: %v", errBadRequest, err))
		return
	}
	keys := make([]T, 0, len(body.Keys))
	for i, raw := range body.Keys {
		// Accept both 42 and "42": unquote strings, pass numbers through.
		s := string(raw)
		if len(s) > 0 && s[0] == '"' {
			if err := json.Unmarshal(raw, &s); err != nil {
				writeErr(w, fmt.Errorf("%w: key %d: %v", errBadRequest, i, err))
				return
			}
		}
		v, err := h.parse(s)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: key %d: %v", errBadRequest, i, err))
			return
		}
		keys = append(keys, v)
	}
	if err := h.e.IngestBatch(keys); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{
		"ingested": int64(len(keys)),
		"n":        h.e.N(),
	})
}

func (h *handler[T]) quantile(w http.ResponseWriter, r *http.Request) {
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: phi: %v", errBadRequest, err))
		return
	}
	b, err := h.e.Quantile(phi)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toBoundsJSON(b))
}

func (h *handler[T]) quantiles(w http.ResponseWriter, r *http.Request) {
	q, err := strconv.Atoi(r.URL.Query().Get("q"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: q: %v", errBadRequest, err))
		return
	}
	// The response is O(q): an uncapped q would let one request allocate
	// gigabytes inside a long-lived server.
	if q > maxQuantiles {
		writeErr(w, fmt.Errorf("%w: q=%d exceeds maximum %d", errBadRequest, q, maxQuantiles))
		return
	}
	bs, err := h.e.Quantiles(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]boundsJSON, len(bs))
	for i, b := range bs {
		out[i] = toBoundsJSON(b)
	}
	writeJSON(w, http.StatusOK, map[string]any{"quantiles": out})
}

func (h *handler[T]) selectivity(w http.ResponseWriter, r *http.Request) {
	a, err := h.parse(r.URL.Query().Get("a"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: a: %v", errBadRequest, err))
		return
	}
	b, err := h.parse(r.URL.Query().Get("b"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: b: %v", errBadRequest, err))
		return
	}
	sel, est, maxErr, err := h.e.RangeEstimate(a, b)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"a":             fmt.Sprint(a),
		"b":             fmt.Sprint(b),
		"selectivity":   sel,
		"estimate":      est,
		"max_abs_error": maxErr,
	})
}

func (h *handler[T]) stats(w http.ResponseWriter, r *http.Request) {
	st := h.e.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"n":                    st.N,
		"version":              st.Version,
		"stripes":              st.Stripes,
		"merges":               st.Merges,
		"queries":              st.Queries,
		"snapshot_n":           st.SnapshotN,
		"snapshot_samples":     st.SnapshotSamples,
		"snapshot_error_bound": st.SnapshotErrorBound,
	})
}
