// HTTP/JSON transport for the engine: a small API a query optimizer, a
// metrics pipeline or curl can speak. Keys are carried as JSON strings in
// responses (and accepted as strings or numbers in requests) so 64-bit
// integer keys survive transports that parse JSON numbers as float64.
//
// Two handler constructors share the route implementations:
//
//   - NewHandler serves one engine at the root (the single-engine API).
//   - NewRegistryHandler serves a multi-tenant Registry: every tenant at
//     /t/{tenant}/..., admin create/list/delete under /admin/tenants, and
//     the root routes aliased to the "default" tenant so single-engine
//     clients keep working unchanged.
//
// Both expose GET /healthz (liveness plus per-tenant epoch/ingest stats)
// and apply ingest backpressure: request bodies are capped by
// http.MaxBytesReader (413 beyond the cap) and, when the target engine's
// unsealed bytes exceed HandlerOptions.MaxPendingBytes, ingests are shed
// with 429 + Retry-After instead of buffering without bound.
package engine

import (
	"bytes"
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// ParseKey converts a decimal string into a key; FormatKey is its inverse.
// int64 engines use strconv.ParseInt / FormatInt-style implementations
// (see Int64Key).
type ParseKey[T any] func(string) (T, error)

// Int64Key parses an int64 key, the CLI server's element type.
func Int64Key(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

// Float64Key parses a float64 key.
func Float64Key(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// DefaultMaxBodyBytes caps POST /ingest bodies when
// HandlerOptions.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 8 << 20

// HandlerOptions tunes the HTTP layer's protection limits.
type HandlerOptions struct {
	// MaxBodyBytes caps one POST /ingest body (http.MaxBytesReader;
	// larger bodies get 413). 0 means DefaultMaxBodyBytes; negative
	// disables the cap.
	MaxBodyBytes int64
	// MaxPendingBytes sheds ingests with 429 while the target engine's
	// unsealed bytes (Engine.PendingBytes) exceed it — backpressure when
	// ingest outruns the seal/merge pipeline. 0 disables shedding. The
	// bound must exceed Stripes·(RunLen−1)·elemSize: rotations seal only
	// completed runs, so partial buffers can pin that many bytes forever,
	// and a smaller bound crossed by partials alone would never drain
	// (every ingest shed, no run ever completing). The engine also needs
	// a seal trigger (EpochPolicy) or explicit Rotate calls for pending
	// state to drain at all.
	MaxPendingBytes int64
	// RetryAfter is the Retry-After hint on 429 responses, rounded up to
	// whole seconds. 0 means adaptive: the hint is derived from the
	// engine's observed seal cadence (Engine.SealInterval) — the backlog
	// plausibly drains one seal from now — clamped to [1s, 60s], falling
	// back to 1s until a cadence has been observed. A positive value
	// disables adaptation and is used verbatim.
	RetryAfter time.Duration
}

// maxAdaptiveRetryAfter caps the seal-cadence-derived Retry-After hint: a
// stalled or rarely sealing engine should make clients probe again within
// a minute, not mirror an hour-long epoch interval.
const maxAdaptiveRetryAfter = time.Minute

// retryAfterHint resolves the 429 hint: an explicit configuration wins,
// then the observed seal cadence (clamped), then a 1s floor. Pure, so the
// adaptation policy is unit-testable without an HTTP round trip.
func retryAfterHint(explicit, sealInterval time.Duration, ok bool) time.Duration {
	if explicit > 0 {
		return explicit
	}
	if ok {
		if sealInterval > maxAdaptiveRetryAfter {
			return maxAdaptiveRetryAfter
		}
		if sealInterval >= time.Second {
			return sealInterval
		}
	}
	return time.Second
}

// handler serves the engine API:
//
//	POST /ingest       {"keys": [1, "2", 3]}            → {"ingested": 3, "n": 1003}
//	GET  /quantile     ?phi=0.5                          → the deterministic enclosure
//	GET  /quantiles    ?q=10                             → q−1 equally spaced enclosures
//	GET  /selectivity  ?a=10&b=20                        → histogram range estimate
//	GET  /stats                                          → engine counters
//	GET  /healthz                                        → liveness + per-tenant stats
//
// With a registry, the same routes exist under /t/{tenant}/ and the admin
// API manages the tenant set.
type handler[T cmp.Ordered] struct {
	reg    *Registry[T] // nil for single-engine handlers
	single *Engine[T]   // nil for registry handlers
	parse  ParseKey[T]
	codec  runio.Codec[T] // nil disables binary ingest (415)
	opts   HandlerOptions
	// bufs pools per-request binary-ingest scratch (*wireBuffers[T]):
	// frame payload, decoded batch and response buffers survive across
	// requests, so the binary path allocates nothing per element.
	bufs sync.Pool
}

// NewHandler returns the single-engine HTTP API. parse converts request
// keys from their decimal string form. Protection limits are the
// HandlerOptions zero-value defaults; use NewHandlerOpts to tune them.
func NewHandler[T cmp.Ordered](e *Engine[T], parse ParseKey[T]) http.Handler {
	return NewHandlerOpts(e, parse, HandlerOptions{})
}

// NewHandlerOpts is NewHandler with explicit protection limits.
func NewHandlerOpts[T cmp.Ordered](e *Engine[T], parse ParseKey[T], opts HandlerOptions) http.Handler {
	return NewHandlerCodec(e, parse, nil, opts)
}

// NewHandlerCodec is NewHandlerOpts plus a codec enabling the binary
// ingest path: POST /ingest with Content-Type application/octet-stream
// carries runio ingest frames (see runio.AppendDataFrame) instead of
// JSON, decoding straight into the engine with zero per-element
// allocations. A nil codec answers binary ingests with 415.
func NewHandlerCodec[T cmp.Ordered](e *Engine[T], parse ParseKey[T], codec runio.Codec[T], opts HandlerOptions) http.Handler {
	h := &handler[T]{single: e, parse: parse, codec: codec, opts: opts}
	mux := http.NewServeMux()
	h.engineRoutes(mux, "")
	mux.HandleFunc("GET /healthz", h.healthz)
	return mux
}

// NewRegistryHandler returns the multi-tenant HTTP API over a registry.
// The root engine routes address the DefaultTenant (creating it is the
// caller's choice; without it they answer 404).
func NewRegistryHandler[T cmp.Ordered](reg *Registry[T], parse ParseKey[T], opts HandlerOptions) http.Handler {
	// The registry's checkpoint codec doubles as the wire codec: both are
	// the element's runio encoding. Registries without one serve JSON only.
	h := &handler[T]{reg: reg, parse: parse, codec: reg.opts.Codec, opts: opts}
	mux := http.NewServeMux()
	h.engineRoutes(mux, "")            // default-tenant alias
	h.engineRoutes(mux, "/t/{tenant}") // tenant-scoped
	mux.HandleFunc("POST /admin/tenants", h.adminCreate)
	mux.HandleFunc("GET /admin/tenants", h.adminList)
	mux.HandleFunc("DELETE /admin/tenants/{tenant}", h.adminDelete)
	mux.HandleFunc("GET /healthz", h.healthz)
	return mux
}

// engineRoutes registers the per-engine routes under prefix.
func (h *handler[T]) engineRoutes(mux *http.ServeMux, prefix string) {
	mux.HandleFunc("POST "+prefix+"/ingest", h.withEngine(h.ingest))
	mux.HandleFunc("GET "+prefix+"/quantile", h.withEngine(h.quantile))
	mux.HandleFunc("GET "+prefix+"/quantiles", h.withEngine(h.quantiles))
	mux.HandleFunc("GET "+prefix+"/selectivity", h.withEngine(h.selectivity))
	mux.HandleFunc("GET "+prefix+"/stats", h.withEngine(h.stats))
	mux.HandleFunc("GET "+prefix+"/summary", h.withEngine(h.summary))
}

// withEngine resolves the request's engine: the single engine, or the
// {tenant} path value (the DefaultTenant when absent) looked up in the
// registry.
func (h *handler[T]) withEngine(f func(*Engine[T], http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		eng := h.single
		if eng == nil {
			name := r.PathValue("tenant")
			if name == "" {
				name = DefaultTenant
			}
			var err error
			if eng, err = h.reg.Get(name); err != nil {
				writeErr(w, err)
				return
			}
		}
		f(eng, w, r)
	}
}

// boundsJSON is one quantile enclosure on the wire.
type boundsJSON struct {
	Phi      float64 `json:"phi"`
	Rank     int64   `json:"rank"`
	Lower    string  `json:"lower"`
	Upper    string  `json:"upper"`
	MaxBelow int64   `json:"max_below"`
	MaxAbove int64   `json:"max_above"`
}

func toBoundsJSON[T cmp.Ordered](b core.Bounds[T]) boundsJSON {
	return boundsJSON{
		Phi:      b.Phi,
		Rank:     b.Rank,
		Lower:    fmt.Sprint(b.Lower),
		Upper:    fmt.Sprint(b.Upper),
		MaxBelow: b.MaxBelow,
		MaxAbove: b.MaxAbove,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps engine errors onto HTTP statuses: malformed input is 400,
// an unknown tenant is 404, creating an existing tenant is 409, querying
// an empty engine is 409 (a state, not a request, problem), anything else
// is 500.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownTenant):
		status = http.StatusNotFound
	case errors.Is(err, ErrTenantExists), errors.Is(err, core.ErrEmpty):
		status = http.StatusConflict
	case errors.Is(err, core.ErrPhi), errors.Is(err, errBadRequest),
		errors.Is(err, ErrTenantName), errors.Is(err, core.ErrConfig):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

var errBadRequest = errors.New("bad request")

// maxQuantiles caps GET /quantiles: beyond a few thousand equally spaced
// quantiles the summary's sample resolution is exhausted anyway.
const maxQuantiles = 4096

func (h *handler[T]) ingest(eng *Engine[T], w http.ResponseWriter, r *http.Request) {
	if isBinaryIngest(r) {
		h.ingestBinary(eng, w, r)
		return
	}
	// Backpressure: while unsealed bytes exceed the bound, shed instead of
	// buffering. The backlog may consist of completed runs that sit below
	// the engine's own seal triggers, so first rotate — sealing whatever
	// can seal — and shed only if the remainder (unsealable partial runs)
	// still exceeds the bound; otherwise a bound below the trigger
	// threshold would wedge into a permanent 429 with nothing ever
	// draining.
	shed, err := shedNow(eng, h.opts.MaxPendingBytes)
	if err != nil {
		writeErr(w, err)
		return
	}
	if shed {
		h.shed429(eng, w, h.opts.MaxPendingBytes)
		return
	}
	if limit := h.opts.MaxBodyBytes; limit >= 0 {
		if limit == 0 {
			limit = DefaultMaxBodyBytes
		}
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	var body struct {
		Keys []json.RawMessage `json:"keys"`
	}
	// Keys are captured as raw bytes and re-parsed through h.parse, so
	// 64-bit integers never round-trip through float64.
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
				"error": fmt.Sprintf("body exceeds %d bytes; split the batch", tooBig.Limit),
			})
			return
		}
		writeErr(w, fmt.Errorf("%w: decoding body: %v", errBadRequest, err))
		return
	}
	keys := make([]T, 0, len(body.Keys))
	for i, raw := range body.Keys {
		// Accept both 42 and "42": unquote strings, pass numbers through.
		s := string(raw)
		if len(s) > 0 && s[0] == '"' {
			if err := json.Unmarshal(raw, &s); err != nil {
				writeErr(w, fmt.Errorf("%w: key %d: %v", errBadRequest, i, err))
				return
			}
		}
		v, err := h.parse(s)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: key %d: %v", errBadRequest, i, err))
			return
		}
		keys = append(keys, v)
	}
	if err := eng.IngestBatch(keys); err != nil {
		// Engine-side bounded admission (Options.MaxPending) surfaces as
		// the same 429 the HTTP-side shed produces: it is backpressure,
		// not a server fault.
		if errors.Is(err, ErrBacklogged) {
			h.shed429(eng, w, eng.MaxPending())
			return
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{
		"ingested": int64(len(keys)),
		"n":        eng.N(),
	})
}

// shed429 writes the backpressure response with a Retry-After hint
// adapted to the engine's observed seal cadence (see retryAfterHint).
func (h *handler[T]) shed429(eng *Engine[T], w http.ResponseWriter, bound int64) {
	iv, ok := eng.SealInterval()
	retry := retryAfterHint(h.opts.RetryAfter, iv, ok)
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":         "ingest backpressure: unsealed bytes over bound",
		"pending_bytes": eng.PendingBytes(),
		"bound":         bound,
	})
}

func (h *handler[T]) quantile(eng *Engine[T], w http.ResponseWriter, r *http.Request) {
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: phi: %v", errBadRequest, err))
		return
	}
	b, err := eng.Quantile(phi)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toBoundsJSON(b))
}

func (h *handler[T]) quantiles(eng *Engine[T], w http.ResponseWriter, r *http.Request) {
	q, err := strconv.Atoi(r.URL.Query().Get("q"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: q: %v", errBadRequest, err))
		return
	}
	// The response is O(q): an uncapped q would let one request allocate
	// gigabytes inside a long-lived server.
	if q > maxQuantiles {
		writeErr(w, fmt.Errorf("%w: q=%d exceeds maximum %d", errBadRequest, q, maxQuantiles))
		return
	}
	bs, err := eng.Quantiles(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]boundsJSON, len(bs))
	for i, b := range bs {
		out[i] = toBoundsJSON(b)
	}
	writeJSON(w, http.StatusOK, map[string]any{"quantiles": out})
}

func (h *handler[T]) selectivity(eng *Engine[T], w http.ResponseWriter, r *http.Request) {
	a, err := h.parse(r.URL.Query().Get("a"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: a: %v", errBadRequest, err))
		return
	}
	b, err := h.parse(r.URL.Query().Get("b"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: b: %v", errBadRequest, err))
		return
	}
	sel, est, maxErr, err := eng.RangeEstimate(a, b)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"a":             fmt.Sprint(a),
		"b":             fmt.Sprint(b),
		"selectivity":   sel,
		"estimate":      est,
		"max_abs_error": maxErr,
	})
}

// statsJSON flattens engine Stats for the wire.
func statsJSON(st Stats) map[string]any {
	return map[string]any{
		"n":                    st.N,
		"retained_n":           st.RetainedN,
		"version":              st.Version,
		"stripes":              st.Stripes,
		"epochs":               st.Epochs,
		"sealed_epochs":        st.SealedEpochs,
		"evicted_epochs":       st.EvictedEpochs,
		"evicted_n":            st.EvictedN,
		"compactions":          st.Compactions,
		"compacted_epochs":     st.CompactedEpochs,
		"pending_elems":        st.PendingElems,
		"pending_bytes":        st.PendingBytes,
		"merges":               st.Merges,
		"prefix_hits":          st.PrefixHits,
		"prefix_rebuilds":      st.PrefixRebuilds,
		"queries":              st.Queries,
		"snapshot_n":           st.SnapshotN,
		"snapshot_samples":     st.SnapshotSamples,
		"snapshot_error_bound": st.SnapshotErrorBound,
	}
}

func (h *handler[T]) stats(eng *Engine[T], w http.ResponseWriter, r *http.Request) {
	out := statsJSON(eng.Stats())
	out["epoch_ring"] = eng.Epochs()
	writeJSON(w, http.StatusOK, out)
}

// summary is the summary-fetch RPC: the engine's current snapshot in the
// checksummed core.SaveSummary format — the same bytes a checkpoint file
// holds. A coordinator scatter-gathers these per-worker summaries and
// reduces them with core.MergeAll; summaries are tiny (the sample list),
// so the transfer is cheap at any N. Requires a codec (415 without one).
//
// The response carries the snapshot's strong ETag (Engine.SummaryETag)
// and honors If-None-Match: a fetcher holding the current version pays
// one header round trip (304, no serialization, no body) instead of a
// full summary — the coordinator's conditional-GET fast path.
func (h *handler[T]) summary(eng *Engine[T], w http.ResponseWriter, r *http.Request) {
	if h.codec == nil {
		http.Error(w, "no element codec configured for binary summaries", http.StatusUnsupportedMediaType)
		return
	}
	s, err := eng.Snapshot()
	if err != nil {
		writeErr(w, err)
		return
	}
	etag := eng.SummaryETag(s)
	w.Header().Set("ETag", etag)
	if ETagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var buf bytes.Buffer
	if err := core.SaveSummary(&buf, s.Summary, h.codec); err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// ETagMatch implements the If-None-Match comparison for strong tags:
// "*" matches anything, otherwise any member of the comma-separated
// list must equal the current tag. Weak-prefixed entries (W/"...") are
// compared by their opaque part — byte-identity is exactly what the
// weak comparison promises here, since our tags are version-keyed.
// Exported because the cluster coordinator answers the same protocol.
func ETagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

// healthz is the liveness probe: 200 whenever the process serves, with
// per-tenant epoch/ingest stats so orchestration and CI can wait on
// readiness and inspect lifecycle progress in one round trip.
func (h *handler[T]) healthz(w http.ResponseWriter, r *http.Request) {
	tenants := map[string]map[string]any{}
	if h.single != nil {
		tenants[DefaultTenant] = statsJSON(h.single.Stats())
	} else {
		for _, name := range h.reg.Names() {
			eng, err := h.reg.Get(name)
			if err != nil {
				continue // deleted between Names and Get
			}
			tenants[name] = statsJSON(eng.Stats())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"build":   BuildInfo(),
		"tenants": tenants,
	})
}

// tenantConfigJSON is the admin-create request body. Zero fields inherit
// the registry defaults.
type tenantConfigJSON struct {
	Name            string `json:"name"`
	RunLen          int    `json:"m"`
	SampleSize      int    `json:"s"`
	Stripes         int    `json:"stripes"`
	Buckets         int    `json:"buckets"`
	EpochMaxElems   int64  `json:"epoch_max_elems"`
	EpochMaxBytes   int64  `json:"epoch_max_bytes"`
	EpochIntervalMS int64  `json:"epoch_interval_ms"`
	Retain          string `json:"retain"` // "", "all", "last_k", "max_age"
	RetainK         int    `json:"retain_k"`
	RetainAgeMS     int64  `json:"retain_age_ms"`
}

// options materializes the request against the registry defaults.
func (c tenantConfigJSON) options(defaults Options) (Options, error) {
	o := defaults
	if c.RunLen > 0 {
		o.Config.RunLen = c.RunLen
	}
	if c.SampleSize > 0 {
		o.Config.SampleSize = c.SampleSize
	}
	if c.Stripes > 0 {
		o.Stripes = c.Stripes
	}
	if c.Buckets > 0 {
		o.Buckets = c.Buckets
	}
	if c.EpochMaxElems > 0 {
		o.Epoch.MaxElems = c.EpochMaxElems
	}
	if c.EpochMaxBytes > 0 {
		o.Epoch.MaxBytes = c.EpochMaxBytes
	}
	if c.EpochIntervalMS > 0 {
		o.Epoch.Interval = time.Duration(c.EpochIntervalMS) * time.Millisecond
	}
	switch c.Retain {
	case "":
	case "all":
		o.Retention = Retention{Kind: RetainAll}
	case "last_k":
		o.Retention = Retention{Kind: RetainLastK, K: c.RetainK}
	case "max_age":
		o.Retention = Retention{Kind: RetainMaxAge, MaxAge: time.Duration(c.RetainAgeMS) * time.Millisecond}
	default:
		return o, fmt.Errorf("%w: retain must be all, last_k or max_age, got %q", errBadRequest, c.Retain)
	}
	return o, nil
}

func (h *handler[T]) adminCreate(w http.ResponseWriter, r *http.Request) {
	var req tenantConfigJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding body: %v", errBadRequest, err))
		return
	}
	opts, err := req.options(h.reg.opts.Defaults)
	if err != nil {
		writeErr(w, err)
		return
	}
	eng, err := h.reg.Create(req.Name, &opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"tenant": req.Name,
		"stats":  statsJSON(eng.Stats()),
	})
}

func (h *handler[T]) adminList(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name   string         `json:"name"`
		Stats  map[string]any `json:"stats"`
		Epochs []EpochStats   `json:"epochs"`
	}
	out := make([]entry, 0)
	for _, name := range h.reg.Names() {
		eng, err := h.reg.Get(name)
		if err != nil {
			continue
		}
		out = append(out, entry{Name: name, Stats: statsJSON(eng.Stats()), Epochs: eng.Epochs()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

func (h *handler[T]) adminDelete(w http.ResponseWriter, r *http.Request) {
	if err := h.reg.Delete(r.PathValue("tenant")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
