package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"opaq/internal/core"
	"opaq/internal/runio"
)

func newRegistryServer(t *testing.T, hopts HandlerOptions) (*Registry[int64], *httptest.Server) {
	t.Helper()
	r, err := NewRegistry(RegistryOptions[int64]{
		Defaults: Options{
			Config:  core.Config{RunLen: 256, SampleSize: 32},
			Stripes: 2,
			Buckets: 16,
		},
		CheckpointDir: t.TempDir(),
		Codec:         runio.Int64Codec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	srv := httptest.NewServer(NewRegistryHandler(r, Int64Key, hopts))
	t.Cleanup(srv.Close)
	return r, srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPMultiTenant drives the tenant-routed API end to end: admin
// create, per-tenant ingest and query isolation, the default-tenant alias
// at the root, list and delete.
func TestHTTPMultiTenant(t *testing.T) {
	_, srv := newRegistryServer(t, HandlerOptions{})

	// Root routes 404 until the default tenant exists.
	getJSON(t, srv.URL+"/stats", http.StatusNotFound)

	// Create "default" and two columns, one with its own windowed config.
	for _, body := range []string{
		`{"name":"default"}`,
		`{"name":"orders.price"}`,
		`{"name":"req.latency","m":128,"s":16,"retain":"last_k","retain_k":2,"epoch_max_elems":512}`,
	} {
		resp := postJSON(t, srv.URL+"/admin/tenants", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: status %d", body, resp.StatusCode)
		}
	}
	// Duplicate create → 409; bad name → 400; bad retain → 400.
	for body, want := range map[string]int{
		`{"name":"default"}`:                http.StatusConflict,
		`{"name":"../oops"}`:                http.StatusBadRequest,
		`{"name":"x","retain":"sometimes"}`: http.StatusBadRequest,
		`{"name":"y","retain":"last_k"}`:    http.StatusBadRequest, // K missing
		`{"name":"z","m":100,"s":33}`:       http.StatusBadRequest, // s ∤ m
	} {
		resp := postJSON(t, srv.URL+"/admin/tenants", body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("create %s: status %d, want %d", body, resp.StatusCode, want)
		}
	}

	// Disjoint ingests; each tenant answers only from its own keys.
	ingest := func(path string, base int64) {
		var keys []string
		for i := int64(0); i < 600; i++ {
			keys = append(keys, fmt.Sprintf("%d", base+i%100))
		}
		resp := postJSON(t, srv.URL+path+"/ingest", `{"keys":["`+strings.Join(keys, `","`)+`"]}`)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", path, resp.StatusCode)
		}
	}
	ingest("/t/orders.price", 1_000_000)
	ingest("/t/req.latency", 5)
	ingest("", 77_000) // root alias → default tenant

	for path, lo := range map[string]int64{
		"/t/orders.price": 1_000_000,
		"/t/req.latency":  5,
		"":                77_000,
		"/t/default":      77_000, // same engine as the root alias
	} {
		q := getJSON(t, srv.URL+path+"/quantile?phi=0.5", http.StatusOK)
		var lower int64
		fmt.Sscanf(q["lower"].(string), "%d", &lower)
		if lower < lo || lower >= lo+100 {
			t.Errorf("%s median lower = %d, want in [%d, %d)", path, lower, lo, lo+100)
		}
	}
	// Unknown tenant → 404 on every route.
	getJSON(t, srv.URL+"/t/nope/quantile?phi=0.5", http.StatusNotFound)
	getJSON(t, srv.URL+"/t/nope/stats", http.StatusNotFound)
	resp := postJSON(t, srv.URL+"/t/nope/ingest", `{"keys":[1]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ingest into unknown tenant: status %d", resp.StatusCode)
	}

	// The windowed tenant's epoch policy ran: 600 elements with
	// MaxElems 512, RunLen 128 → at least one sealed epoch, visible in
	// per-tenant stats.
	st := getJSON(t, srv.URL+"/t/req.latency/stats", http.StatusOK)
	if st["sealed_epochs"].(float64) == 0 {
		t.Errorf("windowed tenant stats: %+v, want sealed epochs", st)
	}

	// Admin list reports all tenants with stats and epoch rings.
	list := getJSON(t, srv.URL+"/admin/tenants", http.StatusOK)
	if got := len(list["tenants"].([]any)); got != 3 {
		t.Errorf("admin list has %d tenants, want 3", got)
	}

	// Delete and the tenant is gone (404), but others keep serving.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/admin/tenants/req.latency", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	getJSON(t, srv.URL+"/t/req.latency/stats", http.StatusNotFound)
	getJSON(t, srv.URL+"/t/orders.price/stats", http.StatusOK)
}

// TestHTTPHealthz pins the healthz shape on both handler flavors:
// liveness plus per-tenant epoch/ingest stats.
func TestHTTPHealthz(t *testing.T) {
	// Single-engine handler.
	e, srv := newTestServer(t)
	if err := e.IngestBatch([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	h := getJSON(t, srv.URL+"/healthz", http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("healthz status = %v", h["status"])
	}
	def := h["tenants"].(map[string]any)["default"].(map[string]any)
	if def["n"].(float64) != 3 || def["pending_elems"].(float64) != 3 {
		t.Fatalf("healthz default tenant stats: %+v", def)
	}

	// Registry handler: one entry per tenant.
	reg, rsrv := newRegistryServer(t, HandlerOptions{})
	if _, err := reg.Create("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("b", nil); err != nil {
		t.Fatal(err)
	}
	eng, err := reg.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(make([]int64, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rotate(); err != nil {
		t.Fatal(err)
	}
	h = getJSON(t, rsrv.URL+"/healthz", http.StatusOK)
	tenants := h["tenants"].(map[string]any)
	if len(tenants) != 2 {
		t.Fatalf("healthz tenants: %+v", tenants)
	}
	if b := tenants["b"].(map[string]any); b["epochs"].(float64) != 1 || b["n"].(float64) != 512 {
		t.Fatalf("healthz tenant b: %+v", b)
	}
}

// TestHTTPBackpressure pins the two ingest protections: 429 + Retry-After
// while unsealed bytes exceed the bound, and 413 for oversized bodies.
func TestHTTPBackpressure(t *testing.T) {
	reg, srv := newRegistryServer(t, HandlerOptions{
		MaxBodyBytes:    256,
		MaxPendingBytes: 1024, // 128 int64s
	})
	// One stripe with runs longer than the bound: the backlog below is
	// all partial-run — the one kind of pending state no rotation can
	// seal — so shedding is deterministic; and padding to the run
	// boundary drains the single buffer exactly.
	if _, err := reg.Create(DefaultTenant, &Options{
		Config:  core.Config{RunLen: 512, SampleSize: 64},
		Stripes: 1,
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := reg.Get(DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}

	// A backlog of completed runs over the bound does NOT shed: the shed
	// path seals it first (self-healing when the engine's own triggers
	// haven't fired), and the ingest proceeds.
	if err := eng.IngestBatch(make([]int64, 1024)); err != nil { // 2 full runs, 8192 bytes pending
		t.Fatal(err)
	}
	small := `{"keys":[1,2,3,4,5,6,7,8,9,10]}`
	resp := postJSON(t, srv.URL+"/ingest", small)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sealable backlog shed with status %d, want a healing rotation + 200", resp.StatusCode)
	}
	if st := eng.Stats(); st.SealedEpochs == 0 {
		t.Fatalf("shed path did not seal the sealable backlog: %+v", st)
	}

	// Partial-run backlog (unsealable) does shed once it crosses the
	// bound.
	overloaded := false
	for i := 0; i < 30; i++ {
		resp := postJSON(t, srv.URL+"/ingest", small)
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body["pending_bytes"].(float64) < 1024 {
				t.Errorf("shed below the bound: %+v", body)
			}
			overloaded = true
		default:
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
		if overloaded {
			break
		}
	}
	if !overloaded {
		t.Fatal("partial-run pending bytes crossed 1024 without a 429")
	}
	// Queries still work while ingest is shed (load shedding, not an
	// outage), and a rotation that seals the backlog re-opens ingest.
	getJSON(t, srv.URL+"/quantile?phi=0.5", http.StatusOK)
	// Fill to the run boundary so the seal can drain everything pending.
	if pad := int(512 - eng.PendingElems()%512); pad != 512 {
		if err := eng.IngestBatch(make([]int64, pad)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Rotate(); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, srv.URL+"/ingest", small)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rotation ingest: status %d, want 200", resp.StatusCode)
	}

	// A body over MaxBodyBytes → 413, and nothing is ingested.
	before := eng.N()
	var big bytes.Buffer
	big.WriteString(`{"keys":[`)
	for i := 0; i < 200; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		fmt.Fprintf(&big, "%d", i)
	}
	big.WriteString(`]}`)
	resp = postJSON(t, srv.URL+"/ingest", big.String())
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if eng.N() != before {
		t.Fatalf("oversized body ingested %d keys", eng.N()-before)
	}
}
