// Package engine turns the batch OPAQ library into a long-lived quantile
// service: a concurrent component that ingests a stream, answers
// quantile / rank / selectivity queries while data keeps arriving, and
// checkpoints its state — the serving substrate for query-optimizer
// statistics that must stay fresh (the equi-depth histogram application
// the paper's introduction motivates).
//
// # Architecture
//
// Writes go to P lock-striped ingest shards, each owning one
// core.StreamBuilder behind its own mutex; Ingest and IngestBatch
// round-robin across stripes, so concurrent writers rarely contend on the
// same lock. Reads are served from an immutable merged Snapshot that is
// cached per ingest version: a query first checks the cached snapshot, and
// only when ingestion has advanced does one merger rebuild the global
// summary via core.Merge over the stripe summaries (single-flight — a
// burst of queries behind a stale cache performs exactly one merge; the
// rest block briefly and reuse it). Because summaries are immutable,
// queries against a snapshot never block ingestion.
//
// Bulk history enters through BulkLoad (a sharded build over run-file
// datasets) or Restore (a checkpoint written by Checkpoint); both merge
// into a base summary that snapshot rebuilds fold in, exactly the paper's
// Section 4 incremental story: keep the old sorted samples, sample the new
// runs, merge.
package engine

import (
	"cmp"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"opaq/internal/core"
	"opaq/internal/histogram"
	"opaq/internal/parallel"
	"opaq/internal/runio"
)

// DefaultBuckets is the equi-depth bucket count of snapshot histograms
// when Options.Buckets is zero.
const DefaultBuckets = 16

// Options configures an Engine.
type Options struct {
	// Config is the OPAQ sample-phase configuration every stripe builds
	// with. All summaries the engine merges (stripes, bulk loads,
	// restores) must share its Step = RunLen/SampleSize.
	Config core.Config
	// Stripes is P, the number of lock-striped ingest shards. 0 means
	// runtime.GOMAXPROCS(0).
	Stripes int
	// Buckets is the equi-depth histogram resolution of snapshots
	// (selectivity queries). 0 means DefaultBuckets.
	Buckets int
}

// Snapshot is an immutable, internally consistent view of everything the
// engine had absorbed when the snapshot was cut. Both fields are safe for
// concurrent use and never mutated afterwards.
type Snapshot[T cmp.Ordered] struct {
	// Summary is the merged global summary (base + every stripe).
	Summary *core.Summary[T]
	// Hist is the equi-depth histogram derived from Summary; nil when the
	// snapshot is empty.
	Hist *histogram.EquiDepth[T]
	// Version is the ingest version the snapshot is known to reflect;
	// concurrent ingests may already have advanced past it.
	Version uint64
}

// Stats is a point-in-time report of engine state and activity.
type Stats struct {
	// N is the number of elements absorbed (ingested + bulk-loaded +
	// restored).
	N int64
	// Version counts absorb operations; the snapshot cache is keyed on it.
	Version uint64
	// Stripes is the configured ingest-stripe count.
	Stripes int
	// Merges is the number of snapshot rebuilds performed.
	Merges int64
	// Queries is the number of snapshot-backed queries served.
	Queries int64
	// SnapshotN, SnapshotSamples and SnapshotErrorBound describe the
	// cached snapshot (zero when none has been cut yet).
	SnapshotN          int64
	SnapshotSamples    int
	SnapshotErrorBound int64
}

// Engine is a concurrent, long-lived quantile service over elements of
// type T. All methods are safe for concurrent use.
type Engine[T cmp.Ordered] struct {
	cfg     core.Config
	buckets int
	stripes []*stripe[T]

	next    atomic.Uint64 // round-robin ingest cursor
	version atomic.Uint64 // bumped after every absorb (ingest, bulk load, restore)
	count   atomic.Int64  // total elements absorbed

	mergeMu sync.Mutex // single-flight guard for snapshot rebuilds
	snap    atomic.Pointer[Snapshot[T]]

	baseMu sync.Mutex                      // serializes base replacement
	base   atomic.Pointer[core.Summary[T]] // merged bulk loads + restores; nil until first absorb

	merges  atomic.Int64
	queries atomic.Int64
}

type stripe[T cmp.Ordered] struct {
	mu sync.Mutex
	sb *core.StreamBuilder[T]
}

// New returns an engine with freshly initialized stripes.
func New[T cmp.Ordered](opts Options) (*Engine[T], error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	p := opts.Stripes
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return nil, fmt.Errorf("%w: Stripes must be non-negative, got %d", core.ErrConfig, opts.Stripes)
	}
	buckets := opts.Buckets
	if buckets == 0 {
		buckets = DefaultBuckets
	}
	if buckets < 1 {
		return nil, fmt.Errorf("%w: Buckets must be non-negative, got %d", core.ErrConfig, opts.Buckets)
	}
	e := &Engine[T]{cfg: opts.Config, buckets: buckets, stripes: make([]*stripe[T], p)}
	for i := range e.stripes {
		sb, err := core.NewStreamBuilder[T](opts.Config)
		if err != nil {
			return nil, err
		}
		e.stripes[i] = &stripe[T]{sb: sb}
	}
	return e, nil
}

// Ingest observes one element. The ingest version is bumped only after the
// element is resident in its stripe, so a Snapshot taken after Ingest
// returns is guaranteed to include it (read-your-writes).
func (e *Engine[T]) Ingest(v T) error {
	st := e.stripes[e.next.Add(1)%uint64(len(e.stripes))]
	st.mu.Lock()
	err := st.sb.Add(v)
	st.mu.Unlock()
	if err != nil {
		return err
	}
	e.count.Add(1)
	e.version.Add(1)
	return nil
}

// IngestBatch observes a batch of elements. The whole batch lands on one
// stripe (keeping its run composition contiguous) and bumps the ingest
// version once, so a batch triggers at most one snapshot rebuild.
func (e *Engine[T]) IngestBatch(vs []T) error {
	if len(vs) == 0 {
		return nil
	}
	st := e.stripes[e.next.Add(1)%uint64(len(e.stripes))]
	st.mu.Lock()
	err := st.sb.AddBatch(vs)
	st.mu.Unlock()
	if err != nil {
		return err
	}
	e.count.Add(int64(len(vs)))
	e.version.Add(1)
	return nil
}

// N returns the total number of elements absorbed so far.
func (e *Engine[T]) N() int64 { return e.count.Load() }

// Snapshot returns a consistent merged view of everything absorbed. When
// the ingest version matches the cached snapshot it is returned without
// any locking; otherwise one caller rebuilds while concurrent callers wait
// and reuse the result (single-flight).
func (e *Engine[T]) Snapshot() (*Snapshot[T], error) {
	cur := e.version.Load()
	if s := e.snap.Load(); s != nil && s.Version == cur {
		return s, nil
	}
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	// Re-check under the merge lock: a burst of queries behind one stale
	// cache line up here, and all but the first see the fresh snapshot.
	cur = e.version.Load()
	if s := e.snap.Load(); s != nil && s.Version == cur {
		return s, nil
	}
	return e.rebuildLocked(cur)
}

// rebuildLocked cuts a fresh snapshot. The version was read before the
// stripes, so the snapshot may contain newer elements than it is labeled
// with — a later query then merely rebuilds again; it never serves data
// older than its label promises.
func (e *Engine[T]) rebuildLocked(version uint64) (*Snapshot[T], error) {
	acc := e.base.Load() // immutable; nil until a bulk load or restore
	for _, st := range e.stripes {
		st.mu.Lock()
		sum, err := st.sb.Summary()
		st.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = sum
			continue
		}
		if acc, err = core.Merge(acc, sum); err != nil {
			return nil, err
		}
	}
	snap := &Snapshot[T]{Summary: acc, Version: version}
	if acc.N() > 0 {
		h, err := histogram.Build(acc, e.buckets)
		if err != nil {
			return nil, err
		}
		snap.Hist = h
	}
	e.snap.Store(snap)
	e.merges.Add(1)
	return snap, nil
}

// Quantile returns the deterministic enclosure of the φ-quantile over
// everything absorbed, from the current snapshot.
func (e *Engine[T]) Quantile(phi float64) (core.Bounds[T], error) {
	s, err := e.Snapshot()
	if err != nil {
		var zero core.Bounds[T]
		return zero, err
	}
	e.queries.Add(1)
	return s.Summary.Bounds(phi)
}

// Quantiles returns enclosures of the q−1 equally spaced quantiles.
func (e *Engine[T]) Quantiles(q int) ([]core.Bounds[T], error) {
	s, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	e.queries.Add(1)
	return s.Summary.Quantiles(q)
}

// RankBounds returns deterministic bounds on the number of absorbed
// elements ≤ x.
func (e *Engine[T]) RankBounds(x T) (lo, hi int64, err error) {
	s, err := e.Snapshot()
	if err != nil {
		return 0, 0, err
	}
	e.queries.Add(1)
	lo, hi = s.Summary.RankBounds(x)
	return lo, hi, nil
}

// RangeEstimate answers a range predicate from one snapshot: the
// selectivity (fraction of absorbed elements in [a, b]), the raw element
// estimate it is derived from, and the histogram's deterministic absolute
// error ceiling — mutually consistent even while ingestion advances.
// Empty engines report core.ErrEmpty.
func (e *Engine[T]) RangeEstimate(a, b T) (sel, estimate, maxErr float64, err error) {
	s, err := e.Snapshot()
	if err != nil {
		return 0, 0, 0, err
	}
	if s.Hist == nil {
		return 0, 0, 0, core.ErrEmpty
	}
	e.queries.Add(1)
	estimate = s.Hist.EstimateRange(a, b)
	return estimate / float64(s.Hist.N()), estimate, s.Hist.MaxRangeError(), nil
}

// Selectivity estimates the fraction of absorbed elements in [a, b] from
// the snapshot's equi-depth histogram. Empty engines report core.ErrEmpty.
func (e *Engine[T]) Selectivity(a, b T) (float64, error) {
	sel, _, _, err := e.RangeEstimate(a, b)
	return sel, err
}

// EstimateRange estimates the number of absorbed elements in [a, b], with
// the histogram's deterministic error ceiling as the second result.
func (e *Engine[T]) EstimateRange(a, b T) (estimate, maxErr float64, err error) {
	_, estimate, maxErr, err = e.RangeEstimate(a, b)
	return estimate, maxErr, err
}

// Stats reports engine state without forcing a snapshot rebuild (the
// snapshot columns describe the cached snapshot, which may trail N).
func (e *Engine[T]) Stats() Stats {
	st := Stats{
		N:       e.count.Load(),
		Version: e.version.Load(),
		Stripes: len(e.stripes),
		Merges:  e.merges.Load(),
		Queries: e.queries.Load(),
	}
	if s := e.snap.Load(); s != nil {
		st.SnapshotN = s.Summary.N()
		st.SnapshotSamples = s.Summary.SampleCount()
		st.SnapshotErrorBound = s.Summary.ErrorBound()
	}
	return st
}

// BulkLoad seeds the engine from per-shard datasets (typically run-file
// sections from runio.ShardFile) via the sharded build: every shard runs
// the full local sample phase concurrently, and the merged result is
// absorbed as history alongside live ingestion.
func (e *Engine[T]) BulkLoad(datasets []runio.Dataset[T], opts parallel.ShardOptions) error {
	sum, err := parallel.BuildSharded(datasets, e.cfg, opts)
	if err != nil {
		return err
	}
	return e.absorb(sum)
}

// absorb merges an externally built summary into the engine's base.
func (e *Engine[T]) absorb(sum *core.Summary[T]) error {
	if sum.N() == 0 {
		return nil
	}
	if sum.Step() != int64(e.cfg.Step()) {
		return fmt.Errorf("%w: summary step %d, engine step %d (same RunLen/SampleSize ratio required)",
			core.ErrIncompatible, sum.Step(), e.cfg.Step())
	}
	added := sum.N()
	e.baseMu.Lock()
	defer e.baseMu.Unlock()
	if cur := e.base.Load(); cur != nil {
		merged, err := core.Merge(cur, sum)
		if err != nil {
			return err
		}
		sum = merged
	}
	e.base.Store(sum)
	e.count.Add(added)
	e.version.Add(1)
	return nil
}

// Checkpoint writes the engine's current merged summary to w in the
// checksummed SaveSummary format. The checkpoint captures everything
// absorbed up to the snapshot it cuts; a Restore of it into a fresh engine
// yields a byte-identical next checkpoint.
func (e *Engine[T]) Checkpoint(w io.Writer, codec runio.Codec[T]) error {
	s, err := e.Snapshot()
	if err != nil {
		return err
	}
	return core.SaveSummary(w, s.Summary, codec)
}

// CheckpointFile checkpoints atomically: the summary is written to a
// temporary file in the target directory, synced, and renamed over path,
// so a crash mid-write never leaves a torn checkpoint behind.
func (e *Engine[T]) CheckpointFile(path string, codec runio.Codec[T]) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".opaq-checkpoint-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := e.Checkpoint(f, codec); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Restore absorbs a checkpoint written by Checkpoint (with the same codec
// and RunLen/SampleSize ratio) as engine history. Restoring into a
// non-empty engine merges, so shards of history can be restored one by
// one.
func (e *Engine[T]) Restore(r io.Reader, codec runio.Codec[T]) error {
	sum, err := core.LoadSummary[T](r, codec)
	if err != nil {
		return err
	}
	return e.absorb(sum)
}

// RestoreFile restores from a checkpoint file.
func (e *Engine[T]) RestoreFile(path string, codec runio.Codec[T]) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.Restore(f, codec)
}
