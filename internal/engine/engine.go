// Package engine turns the batch OPAQ library into a long-lived quantile
// service: a concurrent component that ingests a stream, answers
// quantile / rank / selectivity queries while data keeps arriving, and
// checkpoints its state — the serving substrate for query-optimizer
// statistics that must stay fresh (the equi-depth histogram application
// the paper's introduction motivates).
//
// # Architecture
//
// Writes go to P lock-striped ingest shards, each owning one
// core.StreamBuilder behind its own mutex; Ingest and IngestBatch
// round-robin across stripes, so concurrent writers rarely contend on the
// same lock.
//
// Summaries move through an epoch lifecycle (epoch.go): a rotation —
// triggered by element count, encoded bytes, a wall-clock tick
// (EpochPolicy), or an explicit Rotate — seals every stripe's completed
// runs into one immutable Epoch; sealed epochs live in a ring and a
// Retention policy (keep-all, last-K, sliding window) evicts aged ones, so
// the engine serves windowed as well as lifetime statistics. Because
// seals never split a run, a keep-all engine's merged state is identical
// whether rotation ran or not. A CompactionPolicy (compact.go)
// buddy-merges adjacent sealed epochs so the ring stays O(log N) deep,
// with answers provably unchanged.
//
// Reads are served from an immutable merged Snapshot that is cached per
// ingest version: a query first checks the cached snapshot, and only when
// ingestion (or eviction) has advanced does one merger reassemble the
// merge set (single-flight: a burst of queries behind a stale cache
// performs exactly one merge; the rest block briefly and reuse it).
// Snapshot maintenance itself is two-level. The merged summary of the
// sealed epoch ring — the frozen prefix — is cached against the ring's
// copy-on-write slice identity, so it is invalidated only by the events
// that actually change the ring (rotation, compaction swap, eviction,
// restore, bulk load), never by plain ingest. A version-missed query
// therefore merges only the live stripes' partial summaries and folds
// them into the cached prefix: steady-state rebuild cost is O(unsealed
// tail), not O(retained window). When the prefix itself must be rebuilt
// cold, the k-way merge over the ring fans out across Config.Workers
// (core.MergeAllParallel). Because summaries are immutable, queries
// against a snapshot never block ingestion.
//
// Bulk history enters through BulkLoad (a sharded build over run-file
// datasets) or Restore (a checkpoint written by Checkpoint); each lands as
// its own epoch, exactly the paper's Section 4 incremental story: keep the
// old sorted samples, sample the new runs, merge. A registry of
// independently configured engines (registry.go) serves many columns or
// tenants behind one HTTP mux.
package engine

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"opaq/internal/core"
	"opaq/internal/histogram"
	"opaq/internal/parallel"
	"opaq/internal/runio"
)

// DefaultBuckets is the equi-depth bucket count of snapshot histograms
// when Options.Buckets is zero.
const DefaultBuckets = 16

// Options configures an Engine.
type Options struct {
	// Config is the OPAQ sample-phase configuration every stripe builds
	// with. All summaries the engine merges (stripes, bulk loads,
	// restores) must share its Step = RunLen/SampleSize.
	Config core.Config
	// Stripes is P, the number of lock-striped ingest shards. 0 means
	// runtime.GOMAXPROCS(0).
	Stripes int
	// Buckets is the equi-depth histogram resolution of snapshots
	// (selectivity queries). 0 means DefaultBuckets.
	Buckets int
	// Epoch controls automatic sealing of live stripes into epochs. The
	// zero value never seals automatically (Rotate still works).
	Epoch EpochPolicy
	// Retention controls how sealed epochs age out of the merge set. The
	// zero value (RetainAll) keeps everything — lifetime statistics.
	Retention Retention
	// Compaction controls binary-buddy merging of adjacent sealed epochs,
	// which bounds the ring at O(log N) entries without changing any
	// answer. The zero value never compacts automatically (Compact still
	// works).
	Compaction CompactionPolicy
	// MaxPending, when positive, bounds admission: Ingest and IngestBatch
	// return ErrBacklogged while the unsealed bytes (PendingBytes) are at
	// or over it, instead of buffering without bound — backpressure for
	// writers that do not come through the HTTP layer's shedding. A
	// rotation (policy-triggered or explicit) heals the backlog. The
	// bound must exceed Stripes·(RunLen−1)·elemSize: partial run buffers
	// can pin that many bytes that no rotation seals, and a smaller bound
	// could be crossed by partials alone and then never drain. The check
	// happens at call entry, so one admitted batch may overshoot the
	// bound; it is a high-water mark, not a hard ceiling.
	MaxPending int64
	// DisableFrozenPrefix turns off the frozen-prefix merge cache: every
	// snapshot rebuild re-merges the whole merge set (ring + stripes) in
	// one k-way pass, the pre-two-level behavior. Answers are identical
	// either way; this is the measurement baseline for the
	// snapshot-under-ingest benchmarks and the shadow configuration of
	// the prefix-cache equivalence harness.
	DisableFrozenPrefix bool
}

// Snapshot is an immutable, internally consistent view of everything the
// engine was serving when the snapshot was cut: the retained epochs plus
// the live stripes. Both fields are safe for concurrent use and never
// mutated afterwards.
type Snapshot[T cmp.Ordered] struct {
	// Summary is the merged summary over the snapshot's merge set.
	Summary *core.Summary[T]
	// Hist is the equi-depth histogram derived from Summary; nil when the
	// snapshot is empty.
	Hist *histogram.EquiDepth[T]
	// Version is the ingest version the snapshot is known to reflect;
	// concurrent ingests may already have advanced past it.
	Version uint64
}

// Stats is a point-in-time report of engine state and activity.
type Stats struct {
	// N is the number of elements absorbed over the engine's lifetime
	// (ingested + bulk-loaded + restored), including evicted ones.
	N int64
	// RetainedN is the number of elements still in the merge set:
	// N − (elements of evicted epochs).
	RetainedN int64
	// Version counts absorb and eviction operations; the snapshot cache is
	// keyed on it.
	Version uint64
	// Stripes is the configured ingest-stripe count.
	Stripes int
	// Epochs is the retained ring size (compaction shrinks it without
	// touching the seal counters); SealedEpochs and EvictedEpochs count
	// lifetime seals and evicted seals — both in seal units, so their
	// difference is the retained seal count even when eviction drops a
	// compacted entry covering many seals. EvictedN is the total element
	// count of evicted epochs.
	Epochs        int
	SealedEpochs  int64
	EvictedEpochs int64
	EvictedN      int64
	// PendingElems and PendingBytes describe unsealed state (live
	// stripes); PendingBytes is what ingest backpressure bounds.
	PendingElems int64
	PendingBytes int64
	// Compactions counts compaction passes that changed the ring;
	// CompactedEpochs is the total ring depth they reclaimed (entries
	// folded away). Epochs is the resulting ring depth.
	Compactions     int64
	CompactedEpochs int64
	// Merges is the number of snapshot rebuilds performed. PrefixHits
	// counts the rebuilds that reused the cached frozen-prefix summary
	// (tail-only merges — the steady state under sustained ingest);
	// PrefixRebuilds counts cold frozen-prefix merges, provoked only by
	// ring changes (rotation, compaction swap, eviction, restore, bulk
	// load). Merges − PrefixHits − PrefixRebuilds is the count of
	// full-remerge rebuilds (DisableFrozenPrefix engines only).
	Merges         int64
	PrefixHits     int64
	PrefixRebuilds int64
	// Queries is the number of snapshot-backed queries served.
	Queries int64
	// SnapshotN, SnapshotSamples and SnapshotErrorBound describe the
	// cached snapshot (zero when none has been cut yet).
	SnapshotN          int64
	SnapshotSamples    int
	SnapshotErrorBound int64
}

// Engine is a concurrent, long-lived quantile service over elements of
// type T. All methods are safe for concurrent use.
type Engine[T cmp.Ordered] struct {
	cfg           core.Config
	buckets       int
	policy        EpochPolicy
	retain        Retention
	compaction    CompactionPolicy
	maxPending    int64
	elemSize      int64
	disablePrefix bool
	etagBase      string
	stripes       []*stripe[T]

	next    atomic.Uint64 // round-robin ingest cursor
	version atomic.Uint64 // bumped after every absorb or eviction
	count   atomic.Int64  // lifetime elements absorbed
	pending atomic.Int64  // elements not yet sealed into an epoch

	epochMu         sync.Mutex                  // guards ring mutation (seal, absorb, evict, compact)
	ring            atomic.Pointer[[]*Epoch[T]] // immutable retained epochs, oldest first
	nextEpoch       atomic.Uint64
	sealedEpochs    atomic.Int64
	evictedEpochs   atomic.Int64
	evictedN        atomic.Int64
	compactions     atomic.Int64
	compactedEpochs atomic.Int64
	sealRate        sealRate

	// oldestDeadline caches ring[0].SealedAt + MaxAge as Unix
	// nanoseconds (noDeadline when empty or retention is not age-based),
	// refreshed at every ring publication, so the cached-snapshot fast
	// path checks window expiry with one atomic load instead of loading
	// the ring and calling time.Since per query.
	oldestDeadline atomic.Int64

	mergeMu sync.Mutex // single-flight guard for snapshot rebuilds
	snap    atomic.Pointer[Snapshot[T]]
	// prefix is the frozen-prefix level of the two-level snapshot cache:
	// the merged summary of the sealed ring, keyed on the ring slice's
	// copy-on-write identity. Written and read only under mergeMu.
	prefix *prefixCache[T]

	merges         atomic.Int64
	queries        atomic.Int64
	prefixHits     atomic.Int64
	prefixRebuilds atomic.Int64

	tickStop  chan struct{}
	closeOnce sync.Once
}

type stripe[T cmp.Ordered] struct {
	mu sync.Mutex
	sb *core.StreamBuilder[T]
}

// prefixCache pairs a merged frozen-prefix summary with the exact ring
// slice it covers. Every ring mutation publishes a fresh slice
// (copy-on-write), so pointer identity is a sound and allocation-free
// invalidation key: a matching pointer proves the cached merge still
// describes the sealed prefix, whatever concurrent ingest has done to
// the live tail.
type prefixCache[T cmp.Ordered] struct {
	ring *[]*Epoch[T]
	sum  *core.Summary[T]
}

// noDeadline is the oldestDeadline sentinel meaning "nothing can
// expire": retention is not age-based, or the ring is empty.
const noDeadline = int64(1<<63 - 1)

// etagSeq disambiguates engines created in the same nanosecond, so every
// engine instance in a process gets a distinct etag base.
var etagSeq atomic.Uint64

// New returns an engine with freshly initialized stripes. Engines with an
// EpochPolicy.Interval own a rotation timer and must be Closed.
func New[T cmp.Ordered](opts Options) (*Engine[T], error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Epoch.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Retention.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Compaction.Validate(); err != nil {
		return nil, err
	}
	p := opts.Stripes
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return nil, fmt.Errorf("%w: Stripes must be non-negative, got %d", core.ErrConfig, opts.Stripes)
	}
	if opts.MaxPending < 0 {
		return nil, fmt.Errorf("%w: MaxPending must be non-negative, got %d", core.ErrConfig, opts.MaxPending)
	}
	if opts.MaxPending > 0 {
		elemSize := int64(runio.ElemSize[T]())
		// Rotations seal only completed runs: each stripe can pin up to
		// RunLen−1 elements in a partial buffer forever. A bound at or
		// below that capacity could be crossed by partials alone and then
		// reject every ingest with nothing ever draining.
		if floor := int64(p) * int64(opts.Config.RunLen-1) * elemSize; opts.MaxPending <= floor {
			return nil, fmt.Errorf("%w: MaxPending %d can never drain: %d stripes × (RunLen−1) partial-run elements pin up to %d bytes that no rotation seals",
				core.ErrConfig, opts.MaxPending, p, floor)
		}
		// A count/bytes seal trigger that fires only ABOVE the admission
		// bound is a livelock: admission rejects before the trigger is
		// reached and, with no wall-clock timer and no explicit Rotate,
		// nothing ever drains. Reject the combination unless an Interval
		// timer provides an unconditional heal. The element comparison is
		// phrased as a division so a huge MaxElems cannot overflow the
		// product and dodge the check.
		if opts.Epoch.Interval == 0 {
			if opts.Epoch.MaxElems > 0 && opts.Epoch.MaxElems > opts.MaxPending/elemSize {
				return nil, fmt.Errorf("%w: MaxPending %d rejects ingests before the MaxElems trigger (%d elements of %d bytes) can fire; raise MaxPending, lower MaxElems, or add an Interval",
					core.ErrConfig, opts.MaxPending, opts.Epoch.MaxElems, elemSize)
			}
			if opts.Epoch.MaxBytes > opts.MaxPending {
				return nil, fmt.Errorf("%w: MaxPending %d rejects ingests before the MaxBytes trigger (%d) can fire; raise MaxPending, lower MaxBytes, or add an Interval",
					core.ErrConfig, opts.MaxPending, opts.Epoch.MaxBytes)
			}
		}
	}
	buckets := opts.Buckets
	if buckets == 0 {
		buckets = DefaultBuckets
	}
	if buckets < 1 {
		return nil, fmt.Errorf("%w: Buckets must be non-negative, got %d", core.ErrConfig, opts.Buckets)
	}
	e := &Engine[T]{
		cfg:           opts.Config,
		buckets:       buckets,
		policy:        opts.Epoch,
		retain:        opts.Retention,
		compaction:    opts.Compaction,
		maxPending:    opts.MaxPending,
		elemSize:      int64(runio.ElemSize[T]()),
		disablePrefix: opts.DisableFrozenPrefix,
		// The etag base is unique per engine instance across process
		// restarts (boot nanoseconds + an in-process sequence), so a
		// version-keyed SummaryETag can never collide with one issued by a
		// previous incarnation of this tenant — a worker rebooted from a
		// checkpoint restarts its version counter, and without a fresh base
		// a conditional fetch could 304 against stale bytes.
		etagBase: strconv.FormatInt(time.Now().UnixNano(), 36) + "." +
			strconv.FormatUint(etagSeq.Add(1), 36),
		stripes: make([]*stripe[T], p),
	}
	for i := range e.stripes {
		sb, err := core.NewStreamBuilder[T](opts.Config)
		if err != nil {
			return nil, err
		}
		e.stripes[i] = &stripe[T]{sb: sb}
	}
	empty := make([]*Epoch[T], 0)
	e.publishRingLocked(&empty)
	if opts.Epoch.Interval > 0 {
		e.tickStop = make(chan struct{})
		go e.rotationTimer(opts.Epoch.Interval)
	}
	return e, nil
}

// rotationTimer seals on a wall-clock tick until Close.
func (e *Engine[T]) rotationTimer(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.tickStop:
			return
		case <-t.C:
			// A failed rotation (impossible with matching configs) leaves
			// data live; the next trigger retries.
			e.Rotate()
		}
	}
}

// ErrBacklogged reports an ingest rejected by bounded admission: the
// engine's unsealed bytes are at or over Options.MaxPending. The caller
// should back off — SealInterval is a reasonable hint — and retry once a
// rotation has sealed the backlog.
var ErrBacklogged = errors.New("engine: ingest backlogged: unsealed bytes over MaxPending")

// admit applies bounded admission at call entry (see Options.MaxPending).
// Before rejecting, it retries the EpochPolicy triggers: the ingest that
// crossed the seal threshold may have lost maybeRotate's TryLock to a
// concurrent ring reader, and rejected ingests never reach maybeRotate on
// their own — without this retry one missed TryLock could wedge a
// policy-driven engine in ErrBacklogged forever. Engines without a
// count/bytes trigger are untouched (overThreshold is false): they
// reject immediately and heal via explicit Rotate or the Interval timer.
func (e *Engine[T]) admit() error {
	if e.maxPending <= 0 {
		return nil
	}
	if e.pending.Load()*e.elemSize >= e.maxPending {
		if err := e.maybeRotate(); err != nil {
			return err
		}
	}
	if pending := e.pending.Load() * e.elemSize; pending >= e.maxPending {
		return fmt.Errorf("%w: %d bytes pending, bound %d", ErrBacklogged, pending, e.maxPending)
	}
	return nil
}

// Ingest observes one element. The ingest version is bumped only after the
// element is resident in its stripe, so a Snapshot taken after Ingest
// returns is guaranteed to include it (read-your-writes). With
// Options.MaxPending set, a backlogged engine rejects the element with
// ErrBacklogged instead of buffering it.
func (e *Engine[T]) Ingest(v T) error {
	if err := e.admit(); err != nil {
		return err
	}
	st := e.stripes[e.next.Add(1)%uint64(len(e.stripes))]
	st.mu.Lock()
	err := st.sb.Add(v)
	st.mu.Unlock()
	if err != nil {
		return err
	}
	e.count.Add(1)
	e.pending.Add(1)
	e.version.Add(1)
	return e.maybeRotate()
}

// IngestBatch observes a batch of elements. The whole batch lands on one
// stripe (keeping its run composition contiguous) and bumps the ingest
// version once, so a batch triggers at most one snapshot rebuild.
func (e *Engine[T]) IngestBatch(vs []T) error {
	if len(vs) == 0 {
		return nil
	}
	if err := e.admit(); err != nil {
		return err
	}
	st := e.stripes[e.next.Add(1)%uint64(len(e.stripes))]
	st.mu.Lock()
	err := st.sb.AddBatch(vs)
	st.mu.Unlock()
	if err != nil {
		return err
	}
	e.count.Add(int64(len(vs)))
	e.pending.Add(int64(len(vs)))
	e.version.Add(1)
	return e.maybeRotate()
}

// N returns the total number of elements absorbed over the engine's
// lifetime, including elements of evicted epochs. RetainedN in Stats
// counts only the merge set queries serve from.
func (e *Engine[T]) N() int64 { return e.count.Load() }

// Snapshot returns a consistent merged view of the current merge set
// (retained epochs + live stripes). When the ingest version matches the
// cached snapshot it is returned without any locking; otherwise one caller
// rebuilds while concurrent callers wait and reuse the result
// (single-flight).
func (e *Engine[T]) Snapshot() (*Snapshot[T], error) {
	cur := e.version.Load()
	if s := e.snap.Load(); s != nil && s.Version == cur && !e.oldestExpired() {
		return s, nil
	}
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	// Re-check under the merge lock: a burst of queries behind one stale
	// cache line up here, and all but the first see the fresh snapshot.
	cur = e.version.Load()
	if s := e.snap.Load(); s != nil && s.Version == cur && !e.oldestExpired() {
		return s, nil
	}
	// Compaction on the rebuild path covers engines whose ring changes
	// without rotations (absorb-heavy or query-only load): a quiet engine
	// still converges to the compacted shape, and this rebuild's k-way
	// merge fans in over the compacted ring. Answers are unchanged, so no
	// version bump; the pass is a cheap no-op whenever the ring is
	// already at its buddy fixpoint.
	if _, err := e.compactPass(false); err != nil {
		return nil, err
	}
	return e.rebuildLocked(cur)
}

// oldestExpired reports whether a sliding wall-clock window has an epoch
// due for eviction — the one case where a version-matched cached snapshot
// is still stale, because time alone advanced the retention boundary. The
// deadline is cached at every ring publication (publishRingLocked), so
// this hot-path check is one atomic load and a comparison — no ring
// load, no time.Since — and engines without age-based retention pay a
// single always-false compare against noDeadline.
func (e *Engine[T]) oldestExpired() bool {
	dl := e.oldestDeadline.Load()
	return dl != noDeadline && time.Now().UnixNano() > dl
}

// publishRingLocked stores a new retained ring and refreshes the cached
// oldest-epoch deadline oldestExpired reads. Every ring mutation must
// publish through it (holding epochMu; construction is exempt), both to
// keep the deadline honest and because the fresh slice pointer is what
// invalidates the frozen-prefix cache.
func (e *Engine[T]) publishRingLocked(ring *[]*Epoch[T]) {
	e.ring.Store(ring)
	dl := noDeadline
	if e.retain.Kind == RetainMaxAge && len(*ring) > 0 {
		dl = (*ring)[0].SealedAt.Add(e.retain.MaxAge).UnixNano()
	}
	e.oldestDeadline.Store(dl)
}

// rebuildLocked cuts a fresh snapshot by reassembling the merge set. The
// version was read before the merge set, so the snapshot may reflect newer
// state than it is labeled with — a later query then merely rebuilds
// again; it never serves data older than its label promises. epochMu is
// held while the ring and stripes are read so a concurrent rotation cannot
// move elements between them mid-read (which would double-count or drop a
// stripe).
//
// The reassembly is two-level: the sealed ring's merge — the frozen
// prefix — is served from a cache keyed on the ring slice's identity, so
// in the steady state (ingest advancing the version with no rotation in
// between) only the stripes' partial summaries are merged and folded
// into the cached prefix, O(unsealed tail) instead of O(retained
// window). A ring change (rotation, compaction swap, eviction, restore,
// bulk load) publishes a new slice, missing the cache and triggering one
// cold prefix merge fanned out across Config.Workers.
func (e *Engine[T]) rebuildLocked(version uint64) (*Snapshot[T], error) {
	e.epochMu.Lock()
	// A sliding window must age out even when nothing rotates or ingests:
	// a quiet engine's queries drop expired epochs here.
	if e.retain.Kind == RetainMaxAge && e.applyRetentionLocked(time.Now()) {
		e.version.Add(1)
		version = e.version.Load()
	}
	ringPtr := e.ring.Load()
	ring := *ringPtr
	tails := make([]*core.Summary[T], 0, len(e.stripes))
	for _, st := range e.stripes {
		st.mu.Lock()
		sum, err := st.sb.Summary()
		st.mu.Unlock()
		if err != nil {
			e.epochMu.Unlock()
			return nil, err
		}
		tails = append(tails, sum)
	}
	e.epochMu.Unlock()

	// The merge set is immutable from here on; the merges run without any
	// engine lock but mergeMu.
	acc, err := e.assemble(ringPtr, ring, tails)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot[T]{Summary: acc, Version: version}
	if acc.N() > 0 {
		h, err := histogram.Build(acc, e.buckets)
		if err != nil {
			return nil, err
		}
		snap.Hist = h
	}
	e.snap.Store(snap)
	e.merges.Add(1)
	return snap, nil
}

// assemble merges one consistent merge set (ring + freshly cut stripe
// tails) into a snapshot summary. With the frozen-prefix cache enabled
// (the default) it is the two-level path: prefix lookup or cold rebuild,
// then a tail merge folded in with one pairwise pass. The merge tree's
// shape never changes the result — the sample multiset, counts and
// extrema are order-independent — so the summary (and any checkpoint cut
// from it) is byte-identical to the single k-way full remerge the
// DisableFrozenPrefix path performs. Caller holds mergeMu.
func (e *Engine[T]) assemble(ringPtr *[]*Epoch[T], ring []*Epoch[T], tails []*core.Summary[T]) (*core.Summary[T], error) {
	if e.disablePrefix {
		sums := make([]*core.Summary[T], 0, len(ring)+len(tails))
		for _, ep := range ring {
			sums = append(sums, ep.Summary)
		}
		sums = append(sums, tails...)
		acc, err := core.MergeAll(sums)
		if err != nil {
			return nil, err
		}
		recycleAll(tails)
		return acc, nil
	}
	prefix, err := e.frozenPrefix(ringPtr, ring)
	if err != nil {
		return nil, err
	}
	tail, err := core.MergeAll(tails)
	if err != nil {
		return nil, err
	}
	// The stripe summaries were cut fresh for this rebuild and MergeAll's
	// result never aliases its inputs, so this rebuild is their only
	// reader: their buffers go back to the merge pool. Ring epochs and
	// the cached prefix are shared with concurrent readers and stay
	// untouched.
	recycleAll(tails)
	acc, err := core.Merge(prefix, tail)
	if err != nil {
		return nil, err
	}
	// Merge fast-paths an empty side by returning the other argument
	// unchanged: recycle the merged tail only when the fold really copied
	// it, and never the cached prefix (later rebuilds keep folding
	// against it).
	if acc != tail && acc != prefix {
		core.RecycleSummary(tail)
	}
	return acc, nil
}

// frozenPrefix returns the merged summary of the sealed ring, from the
// cache when the ring is the one the cache was built against, otherwise
// by one cold merge fanned out across Config.Workers. Caller holds
// mergeMu (the cache field is single-flight state, like the snapshot it
// feeds).
func (e *Engine[T]) frozenPrefix(ringPtr *[]*Epoch[T], ring []*Epoch[T]) (*core.Summary[T], error) {
	if c := e.prefix; c != nil && c.ring == ringPtr {
		e.prefixHits.Add(1)
		return c.sum, nil
	}
	var (
		sum *core.Summary[T]
		err error
	)
	if len(ring) == 0 {
		// NewSummary with N == 0 is the canonical empty summary: folding
		// it in is a no-op, and nothing merges until an epoch seals.
		sum, err = core.NewSummary(core.SummaryParts[T]{Step: int64(e.cfg.Step())})
	} else {
		sums := make([]*core.Summary[T], len(ring))
		for i, ep := range ring {
			sums[i] = ep.Summary
		}
		sum, err = core.MergeAllParallel(sums, e.cfg.EffectiveWorkers())
	}
	if err != nil {
		return nil, err
	}
	e.prefix = &prefixCache[T]{ring: ringPtr, sum: sum}
	e.prefixRebuilds.Add(1)
	return sum, nil
}

// recycleAll returns exclusively owned summaries' buffers to the merge
// pool.
func recycleAll[T cmp.Ordered](sums []*core.Summary[T]) {
	for _, s := range sums {
		core.RecycleSummary(s)
	}
}

// Quantile returns the deterministic enclosure of the φ-quantile over the
// retained window, from the current snapshot.
func (e *Engine[T]) Quantile(phi float64) (core.Bounds[T], error) {
	s, err := e.Snapshot()
	if err != nil {
		var zero core.Bounds[T]
		return zero, err
	}
	e.queries.Add(1)
	return s.Summary.Bounds(phi)
}

// Quantiles returns enclosures of the q−1 equally spaced quantiles.
func (e *Engine[T]) Quantiles(q int) ([]core.Bounds[T], error) {
	s, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	e.queries.Add(1)
	return s.Summary.Quantiles(q)
}

// RankBounds returns deterministic bounds on the number of retained
// elements ≤ x.
func (e *Engine[T]) RankBounds(x T) (lo, hi int64, err error) {
	s, err := e.Snapshot()
	if err != nil {
		return 0, 0, err
	}
	e.queries.Add(1)
	lo, hi = s.Summary.RankBounds(x)
	return lo, hi, nil
}

// RangeEstimate answers a range predicate from one snapshot: the
// selectivity (fraction of retained elements in [a, b]), the raw element
// estimate it is derived from, and the histogram's deterministic absolute
// error ceiling — mutually consistent even while ingestion advances.
// Empty engines report core.ErrEmpty.
func (e *Engine[T]) RangeEstimate(a, b T) (sel, estimate, maxErr float64, err error) {
	s, err := e.Snapshot()
	if err != nil {
		return 0, 0, 0, err
	}
	if s.Hist == nil {
		return 0, 0, 0, core.ErrEmpty
	}
	e.queries.Add(1)
	estimate = s.Hist.EstimateRange(a, b)
	return estimate / float64(s.Hist.N()), estimate, s.Hist.MaxRangeError(), nil
}

// Selectivity estimates the fraction of retained elements in [a, b] from
// the snapshot's equi-depth histogram. Empty engines report core.ErrEmpty.
func (e *Engine[T]) Selectivity(a, b T) (float64, error) {
	sel, _, _, err := e.RangeEstimate(a, b)
	return sel, err
}

// EstimateRange estimates the number of retained elements in [a, b], with
// the histogram's deterministic error ceiling as the second result.
func (e *Engine[T]) EstimateRange(a, b T) (estimate, maxErr float64, err error) {
	_, estimate, maxErr, err = e.RangeEstimate(a, b)
	return estimate, maxErr, err
}

// Stats reports engine state without forcing a snapshot rebuild (the
// snapshot columns describe the cached snapshot, which may trail N).
func (e *Engine[T]) Stats() Stats {
	// Report the ring a query issued now would serve: under RetainMaxAge,
	// epochs past their age are excluded (and their elements subtracted
	// from RetainedN) even if no rotation or rebuild has physically
	// evicted them yet — otherwise an idle engine's healthz would show
	// retained data that any query would immediately age out. The ring
	// and eviction counters are read under epochMu so a concurrent
	// eviction of an expired epoch cannot be subtracted twice.
	e.epochMu.Lock()
	full := *e.ring.Load()
	cut := e.expiredCut(full, time.Now())
	live := full[cut:]
	var expiredN int64
	for _, ep := range full[:cut] {
		expiredN += ep.Summary.N()
	}
	evictedEpochs := e.evictedEpochs.Load()
	evictedN := e.evictedN.Load()
	e.epochMu.Unlock()
	st := Stats{
		N:               e.count.Load(),
		Version:         e.version.Load(),
		Stripes:         len(e.stripes),
		Epochs:          len(live),
		SealedEpochs:    e.sealedEpochs.Load(),
		EvictedEpochs:   evictedEpochs,
		EvictedN:        evictedN,
		Compactions:     e.compactions.Load(),
		CompactedEpochs: e.compactedEpochs.Load(),
		PendingElems:    e.pending.Load(),
		PendingBytes:    e.pending.Load() * e.elemSize,
		Merges:          e.merges.Load(),
		PrefixHits:      e.prefixHits.Load(),
		PrefixRebuilds:  e.prefixRebuilds.Load(),
		Queries:         e.queries.Load(),
	}
	st.RetainedN = st.N - st.EvictedN - expiredN
	if s := e.snap.Load(); s != nil {
		st.SnapshotN = s.Summary.N()
		st.SnapshotSamples = s.Summary.SampleCount()
		st.SnapshotErrorBound = s.Summary.ErrorBound()
	}
	return st
}

// BulkLoad seeds the engine from per-shard datasets (typically run-file
// sections from runio.ShardFile) via the sharded build: every shard runs
// the full local sample phase concurrently, and the merged result lands as
// one epoch alongside live ingestion.
func (e *Engine[T]) BulkLoad(datasets []runio.Dataset[T], opts parallel.ShardOptions) error {
	sum, err := parallel.BuildSharded(datasets, e.cfg, opts)
	if err != nil {
		return err
	}
	return e.absorb(sum, EpochBulk)
}

// absorb lands an externally built summary in the ring as its own epoch.
// It is deliberately NOT merged into live stripes or an existing epoch:
// retention treats restored history like any other epoch, and a
// checkpoint cut concurrently always sees either all of it or none.
func (e *Engine[T]) absorb(sum *core.Summary[T], src EpochSource) error {
	if sum.N() == 0 {
		return nil
	}
	if sum.Step() != int64(e.cfg.Step()) {
		return fmt.Errorf("%w: summary step %d, engine step %d (same RunLen/SampleSize ratio required)",
			core.ErrIncompatible, sum.Step(), e.cfg.Step())
	}
	e.epochMu.Lock()
	e.appendEpochLocked(&Epoch[T]{Summary: sum, SealedAt: time.Now(), Source: src})
	e.applyRetentionLocked(time.Now())
	e.epochMu.Unlock()
	e.count.Add(sum.N())
	e.version.Add(1)
	// Post-absorb compaction, outside epochMu (see compactPass); the
	// epoch is already published, so a failure must not unwind it.
	_, cerr := e.compactPass(false)
	return cerr
}

// SummaryETag returns the strong HTTP entity tag identifying snapshot s
// of this engine: the instance's boot-unique base plus the snapshot's
// ingest version. Strong means equal tags imply byte-identical
// Checkpoint/SaveSummary output — the version counter only ever
// advances, a given (instance, version) pair labels one merge set, and
// summary serialization is deterministic. The converse does not hold
// (a version bump with no data change produces a fresh tag), which
// costs a conditional fetch a full body, never correctness.
func (e *Engine[T]) SummaryETag(s *Snapshot[T]) string {
	return `"` + e.etagBase + "." + strconv.FormatUint(s.Version, 36) + `"`
}

// Checkpoint writes the engine's current merged summary (the retained
// window) to w in the checksummed SaveSummary format. The checkpoint
// captures a consistent snapshot — concurrent rotations cannot tear it —
// and a Restore of it into a fresh engine yields a byte-identical next
// checkpoint.
func (e *Engine[T]) Checkpoint(w io.Writer, codec runio.Codec[T]) error {
	s, err := e.Snapshot()
	if err != nil {
		return err
	}
	return core.SaveSummary(w, s.Summary, codec)
}

// CheckpointFile checkpoints atomically: the summary is written to a
// temporary file in the target directory, synced, and renamed over path,
// so a crash mid-write never leaves a torn checkpoint behind.
func (e *Engine[T]) CheckpointFile(path string, codec runio.Codec[T]) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".opaq-checkpoint-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := e.Checkpoint(f, codec); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Restore absorbs a checkpoint written by Checkpoint (with the same codec
// and RunLen/SampleSize ratio) as its own epoch. Restoring into a
// non-empty engine is safe — live and previously restored state is
// untouched — so shards of history can be restored one by one.
func (e *Engine[T]) Restore(r io.Reader, codec runio.Codec[T]) error {
	sum, err := core.LoadSummary[T](r, codec)
	if err != nil {
		return err
	}
	return e.absorb(sum, EpochRestore)
}

// RestoreFile restores from a checkpoint file.
func (e *Engine[T]) RestoreFile(path string, codec runio.Codec[T]) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.Restore(f, codec)
}
