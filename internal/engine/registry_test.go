package engine

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"opaq/internal/core"
	"opaq/internal/runio"
)

func testRegistryOptions(dir string) RegistryOptions[int64] {
	return RegistryOptions[int64]{
		Defaults: Options{
			Config:  core.Config{RunLen: 512, SampleSize: 64, Seed: 1},
			Stripes: 2,
			Buckets: 16,
		},
		CheckpointDir: dir,
		Codec:         runio.Int64Codec{},
	}
}

// TestRegistryLifecycle drives create / get / list / delete and the error
// cases.
func TestRegistryLifecycle(t *testing.T) {
	r, err := NewRegistry(testRegistryOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.Get("latency"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("get missing tenant err = %v, want ErrUnknownTenant", err)
	}
	a, err := r.Create("latency", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("latency", nil); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate create err = %v, want ErrTenantExists", err)
	}
	for _, bad := range []string{"", "../etc", "a/b", ".hidden", "käse", "x..y", string(make([]byte, 80))} {
		if _, err := r.Create(bad, nil); !errors.Is(err, ErrTenantName) {
			t.Errorf("create %q err = %v, want ErrTenantName", bad, err)
		}
	}
	// A tenant with its own options is independent of the defaults.
	custom := Options{
		Config:    core.Config{RunLen: 256, SampleSize: 16},
		Stripes:   1,
		Retention: Retention{Kind: RetainLastK, K: 2},
	}
	if _, err := r.Create("bytes_sent", &custom); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "bytes_sent" || names[1] != "latency" {
		t.Fatalf("names = %v", names)
	}
	got, err := r.Get("latency")
	if err != nil || got != a {
		t.Fatalf("get returned %p (%v), want %p", got, err, a)
	}
	if err := r.Delete("bytes_sent"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("bytes_sent"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("double delete err = %v, want ErrUnknownTenant", err)
	}
	if got := r.Names(); len(got) != 1 {
		t.Fatalf("names after delete = %v", got)
	}
}

// TestRegistryCheckpointRestoreWarm pins the multi-tenant acceptance
// criterion's persistence half: tenants ingesting concurrently checkpoint
// to separate files and a new registry over the same directory boots them
// warm, serving independent answers.
func TestRegistryCheckpointRestoreWarm(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(testRegistryOptions(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Two tenants with disjoint key ranges ingest concurrently.
	tenants := map[string]int64{"orders.price": 1 << 20, "users.age": 1 << 40}
	for name := range tenants {
		if _, err := r.Create(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for name, base := range tenants {
		wg.Add(1)
		go func(name string, base int64) {
			defer wg.Done()
			eng, err := r.Get(name)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(base))
			for i := 0; i < 20; i++ {
				batch := make([]int64, 300)
				for j := range batch {
					batch[j] = base + rng.Int63n(1000)
				}
				if err := eng.IngestBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(name, base)
	}
	wg.Wait()
	if err := r.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	r.Close()
	for name := range tenants {
		if _, err := os.Stat(filepath.Join(dir, name+checkpointExt)); err != nil {
			t.Fatalf("tenant %q has no checkpoint file: %v", name, err)
		}
	}

	// Boot a fresh registry over the same directory: both tenants restore
	// warm and answer from their own (disjoint) key ranges.
	r2, err := NewRegistry(testRegistryOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Names(); len(got) != 2 {
		t.Fatalf("restored tenants = %v", got)
	}
	for name, base := range tenants {
		eng, err := r2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if eng.N() != 6000 {
			t.Fatalf("tenant %q restored N = %d, want 6000", name, eng.N())
		}
		b, err := eng.Quantile(0.5)
		if err != nil {
			t.Fatal(err)
		}
		if b.Lower < base || b.Upper >= base+1000 {
			t.Fatalf("tenant %q median [%d, %d] outside its key range [%d, %d)",
				name, b.Lower, b.Upper, base, base+1000)
		}
		// The restored summary landed as a restore epoch.
		ring := eng.Epochs()
		if len(ring) != 1 || ring[0].Source != EpochRestore {
			t.Fatalf("tenant %q restored ring = %+v", name, ring)
		}
	}

	// Delete removes the checkpoint so the tenant stays gone on reboot.
	if err := r2.Delete("users.age"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "users.age"+checkpointExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("deleted tenant's checkpoint still on disk (err=%v)", err)
	}
	r3, err := NewRegistry(testRegistryOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if got := r3.Names(); len(got) != 1 || got[0] != "orders.price" {
		t.Fatalf("post-delete reboot tenants = %v", got)
	}
}

// TestRegistryRestoreAdaptsStep verifies restore-on-boot of a checkpoint
// whose step differs from the registry defaults: SampleSize is re-derived
// so the engine can merge it, instead of failing the boot.
func TestRegistryRestoreAdaptsStep(t *testing.T) {
	dir := t.TempDir()
	// Write a checkpoint with step 4 (RunLen 64 / SampleSize 16).
	src, err := New[int64](Options{Config: core.Config{RunLen: 64, SampleSize: 16}, Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		if err := src.Ingest(rng.Int63n(1 << 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.CheckpointFile(filepath.Join(dir, "metric"+checkpointExt), runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}

	// Defaults use step 8 (512/64); 512 % 4 == 0, so the boot adapts
	// SampleSize to 128.
	r, err := NewRegistry(testRegistryOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	eng, err := r.Get("metric")
	if err != nil {
		t.Fatal(err)
	}
	if eng.N() != 500 {
		t.Fatalf("restored N = %d", eng.N())
	}
	// Live ingest merges cleanly with the adapted step.
	if err := eng.IngestBatch(make([]int64, 600)); err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Summary.N() != 1100 {
		t.Fatalf("merged N = %d", snap.Summary.N())
	}

	// An incompatible step (not dividing RunLen) fails the boot loudly.
	dir2 := t.TempDir()
	src2, err := New[int64](Options{Config: core.Config{RunLen: 63, SampleSize: 9}, Stripes: 1}) // step 7
	if err != nil {
		t.Fatal(err)
	}
	if err := src2.IngestBatch(make([]int64, 100)); err != nil {
		t.Fatal(err)
	}
	if err := src2.CheckpointFile(filepath.Join(dir2, "bad"+checkpointExt), runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(testRegistryOptions(dir2)); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("incompatible-step boot err = %v, want ErrIncompatible", err)
	}
}

// TestRegistryNoDir pins the in-memory registry: no persistence, and
// CheckpointAll reports a config error instead of writing nowhere.
func TestRegistryNoDir(t *testing.T) {
	opts := testRegistryOptions("")
	opts.Codec = nil
	r, err := NewRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Create("x", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckpointAll(); !errors.Is(err, core.ErrConfig) {
		t.Fatalf("CheckpointAll without dir err = %v, want ErrConfig", err)
	}
	if err := r.Delete("x"); err != nil {
		t.Fatal(err)
	}
	// A checkpoint dir without a codec is rejected up front.
	bad := testRegistryOptions(t.TempDir())
	bad.Codec = nil
	if _, err := NewRegistry(bad); !errors.Is(err, core.ErrConfig) {
		t.Fatalf("dir-without-codec err = %v, want ErrConfig", err)
	}
}

// TestRegistryOptionsPersistence pins the per-tenant config sidecar: a
// tenant created with its own Options gets exactly that configuration back
// after a reboot — stripes, retention, epoch policy — not the registry
// defaults with a step-adapted SampleSize. A tenant created but never
// checkpointed survives via its sidecar alone.
func TestRegistryOptionsPersistence(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(testRegistryOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	custom := Options{
		Config:    core.Config{RunLen: 256, SampleSize: 16, Seed: 7},
		Stripes:   5,
		Buckets:   32,
		Epoch:     EpochPolicy{MaxElems: 4096},
		Retention: Retention{Kind: RetainLastK, K: 3},
	}
	eng, err := r.Create("custom", &custom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "custom"+optionsExt)); err != nil {
		t.Fatalf("options sidecar not written at create: %v", err)
	}
	if _, err := r.Create("fresh", nil); err != nil {
		t.Fatal(err)
	}
	batch := make([]int64, 2*256)
	for i := range batch {
		batch[i] = int64(i)
	}
	if err := eng.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	// CheckpointAll covers both tenants; dropping "fresh"'s checkpoint
	// afterwards exercises the sidecar-only restore path.
	if err := r.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "fresh"+checkpointExt)); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2, err := NewRegistry(testRegistryOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, err := r2.TenantOptions("custom")
	if err != nil {
		t.Fatal(err)
	}
	if got != custom {
		t.Errorf("restored options = %+v, want %+v", got, custom)
	}
	eng2, err := r2.Get("custom")
	if err != nil {
		t.Fatal(err)
	}
	if eng2.N() != int64(len(batch)) {
		t.Errorf("restored N = %d, want %d", eng2.N(), len(batch))
	}
	if st := eng2.Stats(); st.Stripes != 5 {
		t.Errorf("restored stripes = %d, want 5", st.Stripes)
	}
	// The never-checkpointed tenant survives via its sidecar, empty.
	freshEng, err := r2.Get("fresh")
	if err != nil {
		t.Fatalf("sidecar-only tenant lost on reboot: %v", err)
	}
	if freshEng.N() != 0 {
		t.Errorf("sidecar-only tenant N = %d, want 0", freshEng.N())
	}

	// Delete removes both files so the tenant stays gone on the next boot.
	if err := r2.Delete("custom"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "custom"+optionsExt)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("options sidecar survives delete: %v", err)
	}
}
