package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"opaq/internal/core"
	"opaq/internal/metrics"
	"opaq/internal/runio"
)

// TestEngineKeepAllByteIdenticalAcrossRotation pins the refactor's
// central guarantee: because seals happen only at run boundaries, a
// keep-all engine checkpoints byte-identically whether rotation never ran
// (the pre-epoch engine's behavior) or ran aggressively throughout.
func TestEngineKeepAllByteIdenticalAcrossRotation(t *testing.T) {
	codec := runio.Int64Codec{}
	opts := Options{
		Config:  core.Config{RunLen: 128, SampleSize: 16, Seed: 5},
		Stripes: 3,
		Buckets: 16,
	}
	plain, err := New[int64](opts)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := New[int64](opts)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 400; i++ {
		batch := make([]int64, 31) // deliberately not run-aligned
		for j := range batch {
			batch[j] = rng.Int63n(1 << 44)
		}
		if err := plain.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := rotated.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			if _, err := rotated.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := rotated.Stats(); st.SealedEpochs == 0 {
		t.Fatal("test is vacuous: rotation never sealed an epoch")
	}

	var a, b bytes.Buffer
	if err := plain.Checkpoint(&a, codec); err != nil {
		t.Fatal(err)
	}
	if err := rotated.Checkpoint(&b, codec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("keep-all checkpoint bytes diverge between rotated and unrotated engines")
	}
}

// TestEngineWindowedTortureConcurrent is the windowed acceptance
// criterion under -race: a sliding-window engine's served quantiles are
// enclosure-checked against an exact oracle computed over only the
// retained window, at quiesce points across several epoch evictions,
// while concurrent queriers hammer it mid-wave.
func TestEngineWindowedTortureConcurrent(t *testing.T) {
	const (
		runLen    = 512
		keepK     = 3
		ingesters = 4
		batches   = 2 // full-run batches per ingester per wave
		waves     = 8
	)
	e, err := New[int64](Options{
		Config:    core.Config{RunLen: runLen, SampleSize: 64, Seed: 9},
		Stripes:   2,
		Buckets:   32,
		Retention: Retention{Kind: RetainLastK, K: keepK},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < 3; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(int64(500 + q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				phi := rng.Float64()
				if phi == 0 {
					phi = 0.5
				}
				b, err := e.Quantile(phi)
				switch {
				case errors.Is(err, core.ErrEmpty):
				case err != nil:
					t.Errorf("querier %d: %v", q, err)
					return
				case b.Upper < b.Lower:
					t.Errorf("querier %d: inverted enclosure [%d, %d]", q, b.Lower, b.Upper)
					return
				}
				a, c := rng.Int63n(1<<40), rng.Int63n(1<<40)
				if c < a {
					a, c = c, a
				}
				if sel, err := e.Selectivity(a, c); err == nil && (sel < 0 || sel > 1) {
					t.Errorf("querier %d: selectivity %g out of [0,1]", q, sel)
					return
				}
			}
		}(q)
	}

	// waveLogs[k] holds exactly the elements sealed into epoch k+1: every
	// batch is one full run, so at each quiesce Rotate seals precisely
	// this wave.
	waveLogs := make([][]int64, 0, waves)
	for wave := 0; wave < waves; wave++ {
		logs := make([][]int64, ingesters)
		var iwg sync.WaitGroup
		for g := 0; g < ingesters; g++ {
			iwg.Add(1)
			go func(g int) {
				defer iwg.Done()
				rng := rand.New(rand.NewSource(int64(wave*ingesters + g + 1)))
				for b := 0; b < batches; b++ {
					batch := make([]int64, runLen)
					for i := range batch {
						batch[i] = rng.Int63n(1 << 40)
					}
					logs[g] = append(logs[g], batch...)
					if err := e.IngestBatch(batch); err != nil {
						t.Errorf("ingester %d: %v", g, err)
						return
					}
				}
			}(g)
		}
		iwg.Wait()
		var waveAll []int64
		for g := range logs {
			waveAll = append(waveAll, logs[g]...)
		}
		waveLogs = append(waveLogs, waveAll)

		sealed, err := e.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if !sealed {
			t.Fatalf("wave %d: rotation sealed nothing despite %d full runs", wave, ingesters*batches)
		}
		if p := e.PendingElems(); p != 0 {
			t.Fatalf("wave %d: %d pending elements after rotating run-aligned batches", wave, p)
		}

		// The exact oracle covers ONLY the retained window.
		first := 0
		if len(waveLogs) > keepK {
			first = len(waveLogs) - keepK
		}
		var window []int64
		for _, w := range waveLogs[first:] {
			window = append(window, w...)
		}
		snap, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Summary.N() != int64(len(window)) {
			t.Fatalf("wave %d: snapshot N = %d, window has %d", wave, snap.Summary.N(), len(window))
		}
		o := metrics.NewOracle(window)
		for _, phi := range torturePhis {
			b, err := snap.Summary.Bounds(phi)
			if err != nil {
				t.Fatalf("wave %d: Bounds(%g): %v", wave, phi, err)
			}
			assertEnclosure(t, o, b, phi)
		}
		st := e.Stats()
		if want := int64(wave+1) * int64(ingesters*batches*runLen); st.N != want {
			t.Fatalf("wave %d: lifetime N = %d, want %d", wave, st.N, want)
		}
		if wave+1 > keepK {
			if st.EvictedEpochs != int64(wave+1-keepK) {
				t.Fatalf("wave %d: evicted %d epochs, want %d", wave, st.EvictedEpochs, wave+1-keepK)
			}
			if st.RetainedN != int64(len(window)) {
				t.Fatalf("wave %d: RetainedN = %d, window %d", wave, st.RetainedN, len(window))
			}
		}
		if st.Epochs != min(wave+1, keepK) {
			t.Fatalf("wave %d: ring holds %d epochs, want %d", wave, st.Epochs, min(wave+1, keepK))
		}
	}
	close(stop)
	qwg.Wait()

	// A ragged tail (partial runs in the live stripes) joins the window:
	// retained epochs + unsealed elements.
	tail := make([]int64, 300)
	rng := rand.New(rand.NewSource(4242))
	for i := range tail {
		tail[i] = rng.Int63n(1 << 40)
		if err := e.Ingest(tail[i]); err != nil {
			t.Fatal(err)
		}
	}
	var window []int64
	for _, w := range waveLogs[len(waveLogs)-keepK:] {
		window = append(window, w...)
	}
	window = append(window, tail...)
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Summary.N() != int64(len(window)) {
		t.Fatalf("tail: snapshot N = %d, window %d", snap.Summary.N(), len(window))
	}
	o := metrics.NewOracle(window)
	for _, phi := range torturePhis {
		b, err := snap.Summary.Bounds(phi)
		if err != nil {
			t.Fatal(err)
		}
		assertEnclosure(t, o, b, phi)
	}
}

// TestEngineRestoreLandsAsOwnEpoch pins the bugfix-sweep contract: a
// Restore into a non-empty engine must land as its own epoch — leaving
// live stripes and previous epochs untouched — and retention treats it
// like any other epoch.
func TestEngineRestoreLandsAsOwnEpoch(t *testing.T) {
	codec := runio.Int64Codec{}
	src := newTestEngine(t, 2)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		if err := src.Ingest(rng.Int63n(1 << 40)); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := src.Checkpoint(&ckpt, codec); err != nil {
		t.Fatal(err)
	}

	dst := newTestEngine(t, 3)
	live := make([]int64, 700)
	for i := range live {
		live[i] = rng.Int63n(1 << 40)
	}
	if err := dst.IngestBatch(live); err != nil {
		t.Fatal(err)
	}
	before := dst.Stats()
	if err := dst.Restore(bytes.NewReader(ckpt.Bytes()), codec); err != nil {
		t.Fatal(err)
	}
	after := dst.Stats()
	if after.Epochs != before.Epochs+1 || after.SealedEpochs != before.SealedEpochs+1 {
		t.Fatalf("restore did not land as its own epoch: %+v → %+v", before, after)
	}
	if after.PendingElems != before.PendingElems {
		t.Fatalf("restore disturbed live stripes: pending %d → %d", before.PendingElems, after.PendingElems)
	}
	ring := dst.Epochs()
	if got := ring[len(ring)-1].Source; got != EpochRestore {
		t.Fatalf("restored epoch source = %q, want %q", got, EpochRestore)
	}
	if dst.N() != src.N()+int64(len(live)) {
		t.Fatalf("N = %d, want %d", dst.N(), src.N()+int64(len(live)))
	}
	// Restoring twice merges shards of history as two epochs.
	if err := dst.Restore(bytes.NewReader(ckpt.Bytes()), codec); err != nil {
		t.Fatal(err)
	}
	if got := dst.Stats().Epochs; got != after.Epochs+1 {
		t.Fatalf("second restore: %d epochs, want %d", got, after.Epochs+1)
	}

	// Under last-K retention a restored epoch ages out like any other.
	windowed, err := New[int64](Options{
		Config:    core.Config{RunLen: 512, SampleSize: 64, Seed: 42},
		Stripes:   2,
		Retention: Retention{Kind: RetainLastK, K: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := windowed.Restore(bytes.NewReader(ckpt.Bytes()), codec); err != nil {
		t.Fatal(err)
	}
	if got := windowed.Stats().Epochs; got != 1 {
		t.Fatalf("restored epochs = %d", got)
	}
	if err := windowed.IngestBatch(make([]int64, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := windowed.Rotate(); err != nil {
		t.Fatal(err)
	}
	st := windowed.Stats()
	if st.Epochs != 1 || st.EvictedEpochs != 1 || st.EvictedN != src.N() {
		t.Fatalf("restored epoch not evicted under RetainLastK{1}: %+v", st)
	}
}

// TestEngineCheckpointConcurrentWithIngest pins the bugfix-sweep
// contract: checkpoints cut while ingest and rotation race must each be a
// consistent sealed set — LoadSummary re-validates every structural
// invariant, so a torn merge set (double-counted or dropped stripe)
// cannot load.
func TestEngineCheckpointConcurrentWithIngest(t *testing.T) {
	codec := runio.Int64Codec{}
	e, err := New[int64](Options{
		Config:  core.Config{RunLen: 256, SampleSize: 32, Seed: 3},
		Stripes: 4,
		Epoch:   EpochPolicy{MaxElems: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]int64, 1+rng.Intn(300))
				for i := range batch {
					batch[i] = rng.Int63n(1 << 40)
				}
				if err := e.IngestBatch(batch); err != nil {
					t.Errorf("ingester %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	// Checkpoint continuously until the policy has demonstrably sealed
	// several epochs under our feet (bounded by a deadline so a broken
	// trigger fails loudly rather than spinning).
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 40 || e.Stats().SealedEpochs < 3; i++ {
		if time.Now().After(deadline) {
			t.Fatal("MaxElems policy never sealed 3 epochs within the deadline")
		}
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf, codec); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		sum, err := core.LoadSummary[int64](bytes.NewReader(buf.Bytes()), codec)
		if err != nil {
			t.Fatalf("checkpoint %d does not load: %v", i, err)
		}
		if sum.N() > e.N() {
			t.Fatalf("checkpoint %d covers %d elements, engine has only absorbed %d", i, sum.N(), e.N())
		}
	}
	close(stop)
	wg.Wait()
}

// TestEngineEpochPolicyTriggers exercises the count, bytes and wall-clock
// seal triggers.
func TestEngineEpochPolicyTriggers(t *testing.T) {
	t.Run("MaxElems", func(t *testing.T) {
		e, err := New[int64](Options{
			Config:  core.Config{RunLen: 64, SampleSize: 8},
			Stripes: 1,
			Epoch:   EpochPolicy{MaxElems: 256},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := e.IngestBatch(make([]int64, 64)); err != nil {
				t.Fatal(err)
			}
		}
		st := e.Stats()
		if st.SealedEpochs == 0 {
			t.Fatal("MaxElems trigger never sealed")
		}
		if st.PendingElems >= 256 {
			t.Fatalf("pending %d elements despite MaxElems 256", st.PendingElems)
		}
	})
	t.Run("MaxBytes", func(t *testing.T) {
		e, err := New[int64](Options{
			Config:  core.Config{RunLen: 64, SampleSize: 8},
			Stripes: 1,
			Epoch:   EpochPolicy{MaxBytes: 1024}, // 128 int64s
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := e.IngestBatch(make([]int64, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if st := e.Stats(); st.SealedEpochs == 0 {
			t.Fatal("MaxBytes trigger never sealed")
		}
	})
	t.Run("Interval", func(t *testing.T) {
		e, err := New[int64](Options{
			Config:  core.Config{RunLen: 64, SampleSize: 8},
			Stripes: 1,
			Epoch:   EpochPolicy{Interval: 5 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if err := e.IngestBatch(make([]int64, 128)); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for e.Stats().SealedEpochs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("interval timer never sealed")
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := e.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	})
}

// TestEngineRetainMaxAge verifies the sliding wall-clock window: expired
// epochs leave the merge set even when nothing rotates — the snapshot
// rebuild drops them.
func TestEngineRetainMaxAge(t *testing.T) {
	e, err := New[int64](Options{
		Config:    core.Config{RunLen: 64, SampleSize: 8},
		Stripes:   1,
		Retention: Retention{Kind: RetainMaxAge, MaxAge: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch(make([]int64, 128)); err != nil {
		t.Fatal(err)
	}
	if sealed, err := e.Rotate(); err != nil || !sealed {
		t.Fatalf("rotate: sealed=%v err=%v", sealed, err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Summary.N() != 128 {
		t.Fatalf("pre-expiry N = %d", snap.Summary.N())
	}
	time.Sleep(50 * time.Millisecond)
	// Even before any query physically evicts, reporting excludes the
	// expired epoch: Stats and Epochs describe what a query would serve.
	if st := e.Stats(); st.Epochs != 0 || st.RetainedN != 0 {
		t.Fatalf("pre-eviction stats still count expired epochs: %+v", st)
	}
	if ring := e.Epochs(); len(ring) != 0 {
		t.Fatalf("pre-eviction Epochs still lists expired: %+v", ring)
	}
	// No rotation, no ingest: the query path itself must age the epoch out.
	if _, err := e.Quantile(0.5); !errors.Is(err, core.ErrEmpty) {
		t.Fatalf("post-expiry Quantile err = %v, want ErrEmpty", err)
	}
	st := e.Stats()
	if st.Epochs != 0 || st.EvictedEpochs != 1 || st.EvictedN != 128 || st.RetainedN != 0 {
		t.Fatalf("post-expiry stats: %+v", st)
	}
}

// TestOldestDeadlineHoist pins the cached oldest-epoch deadline behind
// oldestExpired: the hot read path checks window expiry with one atomic
// load, so every ring publication must keep the cache honest — set on
// seal, extended by a compaction swap (whose head's SealedAt is its
// newest covered seal), cleared when the ring empties, and permanently
// at the noDeadline sentinel for engines without age-based retention.
func TestOldestDeadlineHoist(t *testing.T) {
	const maxAge = 40 * time.Millisecond
	e, err := New[int64](Options{
		Config:    core.Config{RunLen: 64, SampleSize: 8},
		Stripes:   1,
		Retention: Retention{Kind: RetainMaxAge, MaxAge: maxAge},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dl := e.oldestDeadline.Load(); dl != noDeadline {
		t.Fatalf("empty ring: deadline %d, want noDeadline sentinel", dl)
	}
	if e.oldestExpired() {
		t.Fatal("empty engine reports an expired window")
	}
	if err := e.IngestBatch(make([]int64, 256)); err != nil {
		t.Fatal(err)
	}
	if sealed, err := e.Rotate(); err != nil || !sealed {
		t.Fatalf("rotate: sealed=%v err=%v", sealed, err)
	}
	ring := *e.ring.Load()
	if want := ring[0].SealedAt.Add(maxAge).UnixNano(); e.oldestDeadline.Load() != want {
		t.Fatalf("post-seal deadline %d, want oldest SealedAt+MaxAge %d", e.oldestDeadline.Load(), want)
	}
	if e.oldestExpired() {
		t.Fatal("freshly sealed epoch reports as expired")
	}
	// A compaction swap must republish the deadline from the compacted
	// head (newest covered seal — eviction never fires early).
	if err := e.IngestBatch(make([]int64, 256)); err != nil {
		t.Fatal(err)
	}
	if sealed, err := e.Rotate(); err != nil || !sealed {
		t.Fatalf("second rotate: sealed=%v err=%v", sealed, err)
	}
	if changed, err := e.Compact(); err != nil || !changed {
		t.Fatalf("compact: changed=%v err=%v", changed, err)
	}
	ring = *e.ring.Load()
	if len(ring) != 1 {
		t.Fatalf("compacted ring depth %d, want 1", len(ring))
	}
	if want := ring[0].SealedAt.Add(maxAge).UnixNano(); e.oldestDeadline.Load() != want {
		t.Fatalf("post-compaction deadline %d, want compacted head SealedAt+MaxAge %d", e.oldestDeadline.Load(), want)
	}
	time.Sleep(2 * maxAge)
	if !e.oldestExpired() {
		t.Fatal("aged-out window not reported by the cached deadline")
	}
	// The query path evicts the expired epoch; publishing the emptied
	// ring must reset the deadline to the sentinel.
	if _, err := e.Quantile(0.5); !errors.Is(err, core.ErrEmpty) {
		t.Fatalf("post-expiry Quantile err = %v, want ErrEmpty", err)
	}
	if dl := e.oldestDeadline.Load(); dl != noDeadline {
		t.Fatalf("post-eviction deadline %d, want noDeadline sentinel", dl)
	}
	if e.oldestExpired() {
		t.Fatal("emptied engine still reports an expired window")
	}

	// Engines without age-based retention never arm the deadline: the
	// per-query check is one always-false compare.
	ka, err := New[int64](Options{Config: core.Config{RunLen: 64, SampleSize: 8}, Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ka.IngestBatch(make([]int64, 256)); err != nil {
		t.Fatal(err)
	}
	if sealed, err := ka.Rotate(); err != nil || !sealed {
		t.Fatalf("keep-all rotate: sealed=%v err=%v", sealed, err)
	}
	if dl := ka.oldestDeadline.Load(); dl != noDeadline {
		t.Fatalf("keep-all engine armed a deadline: %d", dl)
	}
}

// TestEngineRotateNoRuns pins Rotate on an engine whose stripes hold only
// partial runs: nothing seals, nothing is lost.
func TestEngineRotateNoRuns(t *testing.T) {
	e := newTestEngine(t, 2) // RunLen 512
	if err := e.IngestBatch(make([]int64, 100)); err != nil {
		t.Fatal(err)
	}
	sealed, err := e.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if sealed {
		t.Fatal("rotation sealed an epoch out of partial runs")
	}
	if st := e.Stats(); st.PendingElems != 100 || st.Epochs != 0 {
		t.Fatalf("stats after no-op rotate: %+v", st)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Summary.N() != 100 {
		t.Fatalf("snapshot N = %d", snap.Summary.N())
	}
}

// TestEngineLifecycleOptionValidation pins constructor rejection of bad
// epoch and retention configurations.
func TestEngineLifecycleOptionValidation(t *testing.T) {
	cfg := core.Config{RunLen: 8, SampleSize: 2}
	bad := []Options{
		{Config: cfg, Epoch: EpochPolicy{MaxElems: -1}},
		{Config: cfg, Epoch: EpochPolicy{Interval: -time.Second}},
		{Config: cfg, Retention: Retention{Kind: RetainLastK}},
		{Config: cfg, Retention: Retention{Kind: RetainMaxAge}},
		{Config: cfg, Retention: Retention{Kind: RetentionKind(99)}},
	}
	for i, o := range bad {
		if _, err := New[int64](o); !errors.Is(err, core.ErrConfig) {
			t.Errorf("options %d: err = %v, want ErrConfig", i, err)
		}
	}
}
