// Epoch lifecycle: the engine's summaries live in a ring of immutable
// sealed epochs plus the live (unsealed) stripe builders. A rotation seals
// every stripe's completed runs into one epoch; a retention policy evicts
// aged epochs from the ring so queries can serve windowed as well as
// lifetime statistics. Because seals happen only at run boundaries
// (core.StreamBuilder.Seal), a keep-all engine's merged snapshot — and
// therefore its checkpoint bytes — is identical whether or not rotation
// ever ran.
package engine

import (
	"cmp"
	"fmt"
	"time"

	"opaq/internal/core"
)

// EpochSource records how an epoch entered the ring.
type EpochSource string

const (
	// EpochIngest is an epoch sealed out of the live ingest stripes.
	EpochIngest EpochSource = "ingest"
	// EpochRestore is a checkpoint absorbed by Restore.
	EpochRestore EpochSource = "restore"
	// EpochBulk is a sharded build absorbed by BulkLoad.
	EpochBulk EpochSource = "bulk"
	// EpochCompacted is the binary-buddy merge of a span of adjacent
	// sealed epochs (see compact.go); FirstID..ID records which.
	EpochCompacted EpochSource = "compact"
)

// Epoch is one immutable sealed summary in the engine's ring. A freshly
// sealed epoch covers exactly one seal (FirstID == ID, Seals == 1);
// compaction folds adjacent epochs into one entry whose metadata spans
// everything it absorbed.
type Epoch[T cmp.Ordered] struct {
	// ID increases monotonically over the engine's lifetime; gaps appear
	// when epochs are evicted. For a compacted epoch it is the NEWEST
	// covered seal's ID; FirstID..ID is the covered span.
	ID uint64
	// FirstID is the oldest covered seal's ID; equal to ID until
	// compaction widens the span.
	FirstID uint64
	// Seals counts the seals folded into this entry (ID−FirstID+1 minus
	// any IDs already evicted before compaction).
	Seals int64
	// Summary covers exactly the elements sealed into the epoch's span.
	Summary *core.Summary[T]
	// Bytes is the encoded size of the covered elements (N·elemSize) —
	// what the entry contributes to a rebuilt merge set.
	Bytes int64
	// SealedAt is when the NEWEST covered seal happened; age-based
	// retention compares against it, so a compacted entry is evicted only
	// once its newest data ages out (never early).
	SealedAt time.Time
	// FirstSealedAt is when the OLDEST covered seal happened; equal to
	// SealedAt until compaction widens the span.
	FirstSealedAt time.Time
	// Source records how the epoch entered the ring.
	Source EpochSource
}

// EpochPolicy controls when the live stripes are sealed into a new epoch.
// The zero value never seals automatically; Rotate can still be called
// explicitly. Whatever the trigger, a seal detaches only completed runs —
// each stripe's in-progress partial run stays live and flows into the next
// epoch — so the effective epoch granularity is at least one RunLen per
// active stripe.
type EpochPolicy struct {
	// MaxElems seals when the number of unsealed elements reaches this
	// bound (0 = no count trigger). Values below Stripes·RunLen cause
	// rotation attempts that find no completed run; harmless but wasted.
	MaxElems int64
	// MaxBytes seals when the unsealed elements' encoded size reaches this
	// bound (0 = no bytes trigger).
	MaxBytes int64
	// Interval seals on a wall-clock tick (0 = no timer). An engine with a
	// timer must be Closed to stop it.
	Interval time.Duration
}

// Validate checks the policy invariants.
func (p EpochPolicy) Validate() error {
	if p.MaxElems < 0 || p.MaxBytes < 0 || p.Interval < 0 {
		return fmt.Errorf("%w: EpochPolicy fields must be non-negative: %+v", core.ErrConfig, p)
	}
	return nil
}

// RetentionKind selects how sealed epochs age out of the merge set.
type RetentionKind int

const (
	// RetainAll keeps every epoch: lifetime statistics (the pre-epoch
	// engine behavior).
	RetainAll RetentionKind = iota
	// RetainLastK keeps the newest K seals. On an uncompacted ring that
	// is the newest K epochs; on a compacted ring, the shortest entry
	// suffix covering at least K seals (entries carry their covered seal
	// count, so compaction coarsens eviction granularity without
	// shrinking the promised window).
	RetainLastK
	// RetainMaxAge keeps epochs sealed within the trailing MaxAge window.
	RetainMaxAge
)

// Retention is the engine's eviction policy. Evicted epochs leave the
// merge set permanently: Quantile / Selectivity then describe only the
// retained window plus whatever is still unsealed in the live stripes.
type Retention struct {
	Kind RetentionKind
	// K is the seal count kept under RetainLastK (equal to the epoch
	// count when compaction is off).
	K int
	// MaxAge is the sliding window width under RetainMaxAge. Expired
	// epochs are dropped on every rotation and on snapshot rebuilds, so a
	// quiet engine still ages out without a rotation timer.
	MaxAge time.Duration
}

// Validate checks the retention invariants.
func (r Retention) Validate() error {
	switch r.Kind {
	case RetainAll:
		return nil
	case RetainLastK:
		if r.K < 1 {
			return fmt.Errorf("%w: RetainLastK needs K ≥ 1, got %d", core.ErrConfig, r.K)
		}
	case RetainMaxAge:
		if r.MaxAge <= 0 {
			return fmt.Errorf("%w: RetainMaxAge needs MaxAge > 0, got %v", core.ErrConfig, r.MaxAge)
		}
	default:
		return fmt.Errorf("%w: unknown retention kind %d", core.ErrConfig, r.Kind)
	}
	return nil
}

// EpochStats describes one retained epoch (Engine.Epochs). FirstID, Seals
// and FirstSealedAt expose the span a compacted entry covers; for an
// uncompacted entry FirstID == ID, Seals == 1 and FirstSealedAt equals
// SealedAt.
type EpochStats struct {
	ID            uint64      `json:"id"`
	FirstID       uint64      `json:"first_id"`
	Seals         int64       `json:"seals"`
	N             int64       `json:"n"`
	Bytes         int64       `json:"bytes"`
	Samples       int         `json:"samples"`
	SealedAt      time.Time   `json:"sealed_at"`
	FirstSealedAt time.Time   `json:"first_sealed_at"`
	Source        EpochSource `json:"source"`
}

// Rotate seals every stripe's completed runs into one new epoch and
// applies retention. It returns whether an epoch was sealed — false when
// no stripe had a completed run, in which case only retention ran. Safe
// for concurrent use; explicit calls compose with the automatic
// EpochPolicy triggers.
func (e *Engine[T]) Rotate() (sealed bool, err error) {
	e.epochMu.Lock()
	sealed, err = e.rotateLocked(time.Now())
	e.epochMu.Unlock()
	if err != nil {
		return sealed, err
	}
	// Compaction after the seal, outside epochMu: the buddy merges can be
	// expensive and must not stall readers of the just-published ring. It
	// never changes the merge set's content, so a failure (impossible
	// with same-step epochs) must not unwind an already-successful seal.
	if _, cerr := e.compactPass(false); cerr != nil {
		return sealed, cerr
	}
	return sealed, nil
}

// rotateLocked performs a rotation under epochMu.
func (e *Engine[T]) rotateLocked(now time.Time) (bool, error) {
	parts := make([]*core.Summary[T], 0, len(e.stripes))
	for _, st := range e.stripes {
		st.mu.Lock()
		s := st.sb.Seal()
		st.mu.Unlock()
		if s.N() > 0 {
			parts = append(parts, s)
		}
	}
	sealed := false
	if len(parts) > 0 {
		sum, err := core.MergeAll(parts)
		if err != nil {
			return false, err
		}
		e.appendEpochLocked(&Epoch[T]{Summary: sum, SealedAt: now, Source: EpochIngest})
		e.pending.Add(-sum.N())
		e.sealRate.observe(now)
		sealed = true
	}
	evicted := e.applyRetentionLocked(now)
	if sealed || evicted {
		e.version.Add(1)
	}
	return sealed, nil
}

// appendEpochLocked assigns the next ID, completes the single-seal span
// metadata and publishes a new ring slice (copy-on-write: readers hold
// the previous immutable slice).
func (e *Engine[T]) appendEpochLocked(ep *Epoch[T]) {
	ep.ID = e.nextEpoch.Add(1)
	ep.FirstID = ep.ID
	ep.Seals = 1
	ep.Bytes = ep.Summary.N() * e.elemSize
	ep.FirstSealedAt = ep.SealedAt
	old := *e.ring.Load()
	ring := make([]*Epoch[T], len(old), len(old)+1)
	copy(ring, old)
	ring = append(ring, ep)
	e.publishRingLocked(&ring)
	e.sealedEpochs.Add(1)
}

// applyRetentionLocked drops aged epochs from the front of the ring and
// reports whether anything was evicted.
func (e *Engine[T]) applyRetentionLocked(now time.Time) bool {
	ring := *e.ring.Load()
	cut := 0
	switch e.retain.Kind {
	case RetainLastK:
		// Count covered SEALS, not ring entries: on an uncompacted ring
		// (every entry covers one seal) this is exactly "the newest K
		// entries"; on a compacted ring it keeps the shortest suffix
		// covering at least K seals, so "last K" keeps meaning K seals'
		// worth of data — conservatively over-retaining by at most the
		// oldest surviving entry's span, never dropping in-window seals.
		var seals int64
		for cut = len(ring); cut > 0 && seals < int64(e.retain.K); cut-- {
			seals += ring[cut-1].Seals
		}
	case RetainMaxAge:
		cut = e.expiredCut(ring, now)
	}
	if cut == 0 {
		return false
	}
	for _, ep := range ring[:cut] {
		e.evictedN.Add(ep.Summary.N())
		// Seal-weighted, like SealedEpochs (which increments once per
		// seal/absorb, never for compacted entries): evicting a compacted
		// entry evicts every seal it covers, so SealedEpochs −
		// EvictedEpochs keeps meaning "retained seals".
		e.evictedEpochs.Add(ep.Seals)
	}
	rest := append([]*Epoch[T](nil), ring[cut:]...)
	e.publishRingLocked(&rest)
	return true
}

// maybeRotate applies the EpochPolicy count/bytes triggers after an
// ingest. When another rotation is already in flight the trigger is
// skipped — that rotation will observe the same pending state.
func (e *Engine[T]) maybeRotate() error {
	if !e.overThreshold() {
		return nil
	}
	if !e.epochMu.TryLock() {
		return nil
	}
	if !e.overThreshold() {
		e.epochMu.Unlock()
		return nil
	}
	_, err := e.rotateLocked(time.Now())
	e.epochMu.Unlock()
	if err == nil {
		// Same post-seal compaction as Rotate, outside epochMu.
		_, err = e.compactPass(false)
	}
	return err
}

// overThreshold reports whether unsealed state exceeds an EpochPolicy
// bound.
func (e *Engine[T]) overThreshold() bool {
	p := e.pending.Load()
	if e.policy.MaxElems > 0 && p >= e.policy.MaxElems {
		return true
	}
	return e.policy.MaxBytes > 0 && p*e.elemSize >= e.policy.MaxBytes
}

// expiredCut returns the length of ring's expired prefix at now: the
// epochs a query issued now would NOT serve under RetainMaxAge, even if
// no eviction pass (rotation or snapshot rebuild) has physically dropped
// them yet. Epochs are appended chronologically, so expiry is always a
// prefix; for other retention kinds the cut is zero.
func (e *Engine[T]) expiredCut(ring []*Epoch[T], now time.Time) int {
	if e.retain.Kind != RetainMaxAge {
		return 0
	}
	cut := 0
	for cut < len(ring) && now.Sub(ring[cut].SealedAt) > e.retain.MaxAge {
		cut++
	}
	return cut
}

// Epochs reports the retained ring, oldest first, excluding epochs whose
// sliding-window age has already expired (see expiredCut) — reporting
// never shows epochs a query would not serve.
func (e *Engine[T]) Epochs() []EpochStats {
	full := *e.ring.Load()
	ring := full[e.expiredCut(full, time.Now()):]
	out := make([]EpochStats, len(ring))
	for i, ep := range ring {
		out[i] = EpochStats{
			ID:            ep.ID,
			FirstID:       ep.FirstID,
			Seals:         ep.Seals,
			N:             ep.Summary.N(),
			Bytes:         ep.Bytes,
			Samples:       ep.Summary.SampleCount(),
			SealedAt:      ep.SealedAt,
			FirstSealedAt: ep.FirstSealedAt,
			Source:        ep.Source,
		}
	}
	return out
}

// PendingElems returns the number of elements not yet sealed into an
// epoch (completed-but-unsealed runs plus partial buffers).
func (e *Engine[T]) PendingElems() int64 { return e.pending.Load() }

// PendingBytes returns the encoded size of the unsealed elements — the
// quantity ingest backpressure bounds.
func (e *Engine[T]) PendingBytes() int64 { return e.pending.Load() * e.elemSize }

// MaxPending returns the engine-side bounded-admission threshold
// (Options.MaxPending); 0 means admission is unbounded.
func (e *Engine[T]) MaxPending() int64 { return e.maxPending }

// Close stops the rotation timer, if the EpochPolicy started one. It does
// not flush or checkpoint; the engine remains usable for everything except
// timer-driven rotation. Safe to call multiple times.
func (e *Engine[T]) Close() error {
	e.closeOnce.Do(func() {
		if e.tickStop != nil {
			close(e.tickStop)
		}
	})
	return nil
}
