package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// wireCfg is a small config so runs complete quickly in tests.
var wireCfg = core.Config{RunLen: 1 << 10, SampleSize: 1 << 5}

// newWireEngine returns a fresh single-stripe engine. One stripe makes
// batch placement deterministic, which the byte-identical cross-format
// equivalence requires (round-robin order is part of the run composition).
func newWireEngine(t testing.TB) *Engine[int64] {
	t.Helper()
	e, err := New[int64](Options{Config: wireCfg, Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// wireBatches is the deterministic element stream all transports ingest,
// pre-split into the identical batch boundaries.
func wireBatches(n, batch int) [][]int64 {
	rng := rand.New(rand.NewSource(99))
	var out [][]int64
	for n > 0 {
		take := batch
		if take > n {
			take = n
		}
		b := make([]int64, take)
		for i := range b {
			b[i] = rng.Int63n(1 << 40)
		}
		out = append(out, b)
		n -= take
	}
	return out
}

// postJSONBatch ingests one batch through the JSON route.
func postJSONBatch(t *testing.T, url string, batch []int64) {
	t.Helper()
	keys := make([]json.Number, len(batch))
	for i, v := range batch {
		keys[i] = json.Number(fmt.Sprint(v))
	}
	body, err := json.Marshal(map[string]any{"keys": keys})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("json ingest: %d: %s", resp.StatusCode, b)
	}
}

// postBinary ingests one batch as an octet-stream frame and returns the
// decoded ack.
func postBinary(t *testing.T, url, tenant string, batch []int64) (uint32, int64, int) {
	t.Helper()
	frame, err := runio.AppendDataFrame(nil, runio.Int64Codec{}, tenant, batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/ingest", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	h, err := runio.ReadFrameHeader(resp.Body, 0)
	if err != nil {
		t.Fatalf("binary ingest response: %v (status %d)", err, resp.StatusCode)
	}
	payload, err := runio.ReadFramePayload(resp.Body, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != runio.FrameAck {
		t.Fatalf("response frame type %d, want ack", h.Type)
	}
	count, n, err := runio.DecodeAckPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	return count, n, resp.StatusCode
}

// tcpConn wraps a raw connection to the TCP ingest server.
type tcpConn struct {
	t    *testing.T
	conn net.Conn
	resp []byte
}

func dialWire(t *testing.T, addr string) *tcpConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &tcpConn{t: t, conn: conn}
}

// send ships one data frame and returns the response frame.
func (c *tcpConn) send(tenant string, batch []int64) (runio.FrameHeader, []byte) {
	c.t.Helper()
	frame, err := runio.AppendDataFrame(nil, runio.Int64Codec{}, tenant, batch)
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := c.conn.Write(frame); err != nil {
		c.t.Fatal(err)
	}
	return c.read()
}

func (c *tcpConn) read() (runio.FrameHeader, []byte) {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	h, err := runio.ReadFrameHeader(c.conn, 0)
	if err != nil {
		c.t.Fatal(err)
	}
	c.resp, err = runio.ReadFramePayload(c.conn, h, c.resp)
	if err != nil {
		c.t.Fatal(err)
	}
	return h, c.resp
}

// startTCP serves a TCPServer on a loopback listener.
func startTCP(t *testing.T, srv *TCPServer[int64]) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

// TestCrossFormatEquivalence is the tentpole's correctness anchor: the
// same element stream, in the same batch boundaries, ingested via JSON
// HTTP, binary HTTP and TCP framing yields byte-identical checkpoints.
// Concurrent queriers run against every engine during ingest so -race
// exercises the pooled buffers on the snapshot path.
func TestCrossFormatEquivalence(t *testing.T) {
	batches := wireBatches(20_000, 1500) // ragged tail batch on purpose

	engines := map[string]*Engine[int64]{
		"json-http":   newWireEngine(t),
		"binary-http": newWireEngine(t),
		"tcp":         newWireEngine(t),
	}

	// Concurrent queriers: they must not perturb ingest state (snapshots
	// are read-only), and -race watches them against the pooled rebuilds.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func(e *Engine[int64]) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Quantile(0.5); err != nil && !errors.Is(err, core.ErrEmpty) {
					t.Error(err)
					return
				}
			}
		}(e)
	}

	// JSON HTTP.
	jsrv := httptest.NewServer(NewHandler(engines["json-http"], Int64Key))
	defer jsrv.Close()
	for _, b := range batches {
		postJSONBatch(t, jsrv.URL, b)
	}

	// Binary HTTP.
	bsrv := httptest.NewServer(NewHandlerCodec(engines["binary-http"], Int64Key, runio.Int64Codec{}, HandlerOptions{}))
	defer bsrv.Close()
	for _, b := range batches {
		count, _, status := postBinary(t, bsrv.URL, "", b)
		if status != http.StatusOK || int(count) != len(b) {
			t.Fatalf("binary http: status %d acked %d, want 200/%d", status, count, len(b))
		}
	}

	// TCP framing.
	addr := startTCP(t, NewTCPServer(engines["tcp"], runio.Int64Codec{}, TCPOptions{}))
	conn := dialWire(t, addr)
	for _, b := range batches {
		h, payload := conn.send("", b)
		if h.Type != runio.FrameAck {
			_, msg, _ := runio.DecodeNackPayload(payload)
			t.Fatalf("tcp: nacked: %s", msg)
		}
		count, _, err := runio.DecodeAckPayload(payload)
		if err != nil || int(count) != len(b) {
			t.Fatalf("tcp ack: count %d err %v, want %d", count, err, len(b))
		}
	}

	close(stop)
	wg.Wait()

	want := checkpointBytes(t, engines["json-http"])
	for name, e := range engines {
		if got := checkpointBytes(t, e); !bytes.Equal(got, want) {
			t.Errorf("%s checkpoint differs from json-http: %d vs %d bytes", name, len(got), len(want))
		}
		if n := e.N(); n != 20_000 {
			t.Errorf("%s: n=%d, want 20000", name, n)
		}
	}
}

// TestBinaryHTTPProtocolErrors exercises the binary route's rejection
// paths: wrong codec kind, tenant mismatch, corrupt frames, no codec.
func TestBinaryHTTPProtocolErrors(t *testing.T) {
	e := newWireEngine(t)
	srv := httptest.NewServer(NewHandlerCodec(e, Int64Key, runio.Int64Codec{}, HandlerOptions{}))
	defer srv.Close()

	post := func(body []byte) (int, string) {
		resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		h, err := runio.ReadFrameHeader(resp.Body, 0)
		if err != nil {
			return resp.StatusCode, ""
		}
		payload, err := runio.ReadFramePayload(resp.Body, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Type == runio.FrameAck {
			// Skip the ack; the nack (if any) carries the message.
			h2, err := runio.ReadFrameHeader(resp.Body, 0)
			if err != nil {
				return resp.StatusCode, ""
			}
			payload, err = runio.ReadFramePayload(resp.Body, h2, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		_, msg, err := runio.DecodeNackPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, msg
	}

	// Wrong codec kind.
	f32, err := runio.AppendDataFrame(nil, runio.Float32Codec{}, "", []float32{1})
	if err != nil {
		t.Fatal(err)
	}
	if status, msg := post(f32); status != http.StatusBadRequest || !strings.Contains(msg, "codec kind") {
		t.Errorf("wrong kind: %d %q", status, msg)
	}

	// Tenant mismatch on a single-engine handler.
	named, err := runio.AppendDataFrame(nil, runio.Int64Codec{}, "other", []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if status, msg := post(named); status != http.StatusBadRequest || !strings.Contains(msg, "tenant") {
		t.Errorf("tenant mismatch: %d %q", status, msg)
	}

	// Corrupt frame: flipped payload byte.
	good, err := runio.AppendDataFrame(nil, runio.Int64Codec{}, "", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(good)
	bad[runio.FrameHeaderSize] ^= 1
	if status, msg := post(bad); status != http.StatusBadRequest || !strings.Contains(msg, "checksum") {
		t.Errorf("corrupt payload: %d %q", status, msg)
	}

	// Nothing from the failed requests may have ingested.
	if n := e.N(); n != 0 {
		t.Errorf("rejected frames ingested %d elements", n)
	}

	// Handler without a codec answers 415.
	plain := httptest.NewServer(NewHandler(e, Int64Key))
	defer plain.Close()
	resp, err := http.Post(plain.URL+"/ingest", "application/octet-stream", bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("no-codec handler: %d, want 415", resp.StatusCode)
	}
}

// TestBinaryHTTPBackpressure: a shed binary ingest answers 429 with a
// Retry-After header and a nack frame, and retains nothing.
func TestBinaryHTTPBackpressure(t *testing.T) {
	e := newWireEngine(t)
	srv := httptest.NewServer(NewHandlerCodec(e, Int64Key, runio.Int64Codec{}, HandlerOptions{
		// Below one full run, so pending partial-run bytes trip it and no
		// rotation can heal — a deterministic shed.
		MaxPendingBytes: 512,
		RetryAfter:      3 * time.Second,
	}))
	defer srv.Close()

	batch := make([]int64, 600)
	frame, err := runio.AppendDataFrame(nil, runio.Int64Codec{}, "", batch)
	if err != nil {
		t.Fatal(err)
	}
	// First request lands (shed checks pending before ingesting).
	resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first binary ingest: %d", resp.StatusCode)
	}
	// Second request sheds: 600 elements × 8B pending > 512.
	resp, err = http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second binary ingest: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After %q, want 3", ra)
	}
	h, err := runio.ReadFrameHeader(resp.Body, 0)
	if err != nil || h.Type != runio.FrameAck {
		t.Fatalf("429 body: first frame %v type %d, want ack", err, h.Type)
	}
	payload, err := runio.ReadFramePayload(resp.Body, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if count, _, _ := runio.DecodeAckPayload(payload); count != 0 {
		t.Errorf("shed request acked %d elements", count)
	}
	h, err = runio.ReadFrameHeader(resp.Body, 0)
	if err != nil || h.Type != runio.FrameNack {
		t.Fatalf("429 body: second frame %v type %d, want nack", err, h.Type)
	}
	payload, err = runio.ReadFramePayload(resp.Body, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	retry, _, err := runio.DecodeNackPayload(payload)
	if err != nil || retry != 3 {
		t.Errorf("nack retry %d err %v, want 3", retry, err)
	}
	if n := e.N(); n != 600 {
		t.Errorf("n=%d, want 600 (only the first batch)", n)
	}
}

// TestTCPRegistryRouting: frames route to tenants by their header field;
// unknown tenants nack without dropping the connection.
func TestTCPRegistryRouting(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions[int64]{Defaults: Options{Config: wireCfg, Stripes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, name := range []string{DefaultTenant, "lat", "size"} {
		if _, err := reg.Create(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	addr := startTCP(t, NewRegistryTCPServer(reg, runio.Int64Codec{}, TCPOptions{}))
	conn := dialWire(t, addr)

	// Unknown tenant: nack, connection stays usable.
	if h, payload := conn.send("nope", []int64{1}); h.Type != runio.FrameNack {
		t.Fatalf("unknown tenant: frame type %d, want nack", h.Type)
	} else if retry, msg, _ := runio.DecodeNackPayload(payload); retry != 0 || !strings.Contains(msg, "unknown tenant") {
		t.Fatalf("unknown tenant nack: retry %d msg %q", retry, msg)
	}

	// Interleaved tenants over one connection.
	for i := 0; i < 3; i++ {
		for _, tenant := range []string{"", "lat", "size"} {
			if h, _ := conn.send(tenant, []int64{int64(i), int64(i + 1)}); h.Type != runio.FrameAck {
				t.Fatalf("tenant %q: frame type %d, want ack", tenant, h.Type)
			}
		}
	}
	for name, want := range map[string]int64{DefaultTenant: 6, "lat": 6, "size": 6} {
		eng, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if n := eng.N(); n != want {
			t.Errorf("tenant %q: n=%d, want %d", name, n, want)
		}
	}
}

// TestTCPBackpressureNack: a backlogged engine nacks with a retry hint
// and the connection keeps serving; after a heal the same batch lands.
func TestTCPBackpressureNack(t *testing.T) {
	e := newWireEngine(t)
	addr := startTCP(t, NewTCPServer(e, runio.Int64Codec{}, TCPOptions{
		MaxPendingBytes: 512,
		RetryAfter:      2 * time.Second,
	}))
	conn := dialWire(t, addr)

	first := make([]int64, 600)
	if h, _ := conn.send("", first); h.Type != runio.FrameAck {
		t.Fatal("first batch nacked")
	}
	h, payload := conn.send("", []int64{7})
	if h.Type != runio.FrameNack {
		t.Fatalf("backlogged batch: frame type %d, want nack", h.Type)
	}
	retry, msg, err := runio.DecodeNackPayload(payload)
	if err != nil || retry != 2 {
		t.Fatalf("nack retry %d err %v msg %q, want 2", retry, err, msg)
	}
	// Heal: top the partial run off directly (engine ingest bypasses the
	// listener's bound), rotate to seal it, then retry over the same
	// connection.
	for i := 0; i < wireCfg.RunLen-600; i++ {
		if err := e.Ingest(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Rotate(); err != nil {
		t.Fatal(err)
	}
	if h, _ := conn.send("", []int64{7}); h.Type != runio.FrameAck {
		t.Fatalf("post-heal batch: frame type %d, want ack", h.Type)
	}
}

// TestTCPCorruptFrameDropsConnection: framing loss nacks fatally and the
// server closes the connection — nothing after the corruption is trusted.
func TestTCPCorruptFrameDropsConnection(t *testing.T) {
	e := newWireEngine(t)
	addr := startTCP(t, NewTCPServer(e, runio.Int64Codec{}, TCPOptions{}))
	conn := dialWire(t, addr)

	frame, err := runio.AppendDataFrame(nil, runio.Int64Codec{}, "", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	frame[1] = 'X' // break the magic
	if _, err := conn.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	h, payload := conn.read()
	if h.Type != runio.FrameNack {
		t.Fatalf("corrupt frame: response type %d, want nack", h.Type)
	}
	if _, msg, _ := runio.DecodeNackPayload(payload); !strings.Contains(msg, "magic") {
		t.Errorf("nack msg %q, want bad magic", msg)
	}
	// The server must hang up: the next read sees EOF.
	conn.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := runio.ReadFrameHeader(conn.conn, 0); err != io.EOF {
		t.Fatalf("after corrupt frame: %v, want io.EOF (connection closed)", err)
	}
	if n := e.N(); n != 0 {
		t.Errorf("corrupt frame ingested %d elements", n)
	}
}

// TestTCPShutdownDrains: Shutdown lets an in-flight batch finish and ack.
func TestTCPShutdownDrains(t *testing.T) {
	e := newWireEngine(t)
	srv := NewTCPServer(e, runio.Int64Codec{}, TCPOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.Serve(ln)
	}()
	conn := dialWire(t, ln.Addr().String())
	if h, _ := conn.send("", []int64{1, 2, 3}); h.Type != runio.FrameAck {
		t.Fatal("batch nacked")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-served
	if n := e.N(); n != 3 {
		t.Errorf("n=%d, want 3", n)
	}
}
