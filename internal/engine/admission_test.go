package engine

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"opaq/internal/core"
)

// TestEngineBoundedAdmission is the engine-side backpressure satellite:
// concurrent ingesters hammer an engine whose MaxPending they can cross,
// every one of them is eventually rejected with ErrBacklogged, and after
// one healing rotation they all get admitted again — no wedge, no loss.
func TestEngineBoundedAdmission(t *testing.T) {
	const (
		runLen    = 64
		stripes   = 2
		batchLen  = 16
		ingesters = 4
	)
	floor := int64(stripes) * (runLen - 1) * 8
	e, err := New[int64](Options{
		Config:     core.Config{RunLen: runLen, SampleSize: 8},
		Stripes:    stripes,
		MaxPending: floor + 4096,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: with no seal trigger configured, pending grows until the
	// bound rejects every ingester.
	var wg sync.WaitGroup
	admitted := make([]int64, ingesters)
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]int64, batchLen)
			for i := range batch {
				batch[i] = int64(g*1000 + i)
			}
			for {
				err := e.IngestBatch(batch)
				if errors.Is(err, ErrBacklogged) {
					return
				}
				if err != nil {
					t.Errorf("ingester %d: %v", g, err)
					return
				}
				admitted[g] += batchLen
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var total int64
	for _, n := range admitted {
		total += n
	}
	if got := e.N(); got != total {
		t.Fatalf("engine absorbed %d elements, ingesters were admitted %d", got, total)
	}
	if pb := e.PendingBytes(); pb < e.MaxPending() {
		t.Fatalf("phase 1 ended with pending %d below bound %d", pb, e.MaxPending())
	}

	// Phase 2: one rotation seals the completed runs; what remains are
	// partial buffers below the drainability floor, so every ingester's
	// single retry must be admitted even when they race each other
	// (bound − floor comfortably exceeds the retries' combined bytes).
	if sealed, err := e.Rotate(); err != nil || !sealed {
		t.Fatalf("healing rotation: sealed=%v err=%v", sealed, err)
	}
	if pb := e.PendingBytes(); pb > floor {
		t.Fatalf("after rotation %d bytes pending, above the partial-buffer floor %d", pb, floor)
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]int64, batchLen)
			for i := range batch {
				batch[i] = int64(g)
			}
			if err := e.IngestBatch(batch); err != nil {
				t.Errorf("ingester %d not admitted after healing rotation: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if got, want := e.N(), total+ingesters*batchLen; got != int64(want) {
		t.Fatalf("after recovery N=%d, want %d", got, want)
	}
}

// TestEngineMaxPendingValidation pins the drainability check: a bound the
// partial-run buffers alone could cross is a permanent wedge and must be
// rejected at construction.
func TestEngineMaxPendingValidation(t *testing.T) {
	base := Options{
		Config:  core.Config{RunLen: 64, SampleSize: 8},
		Stripes: 2,
	}
	floor := int64(2) * 63 * 8
	for _, bad := range []int64{-1, 1, floor} {
		opts := base
		opts.MaxPending = bad
		if _, err := New[int64](opts); !errors.Is(err, core.ErrConfig) {
			t.Errorf("MaxPending=%d: got %v, want ErrConfig", bad, err)
		}
	}
	opts := base
	opts.MaxPending = floor + 1
	if _, err := New[int64](opts); err != nil {
		t.Errorf("MaxPending=floor+1: %v", err)
	}

	// A count/bytes trigger that fires only above the bound is a
	// livelock (admission rejects before the trigger is reached) unless
	// an Interval timer heals unconditionally.
	opts = base
	opts.MaxPending = floor + 1
	opts.Epoch = EpochPolicy{MaxElems: 1 << 20}
	if _, err := New[int64](opts); !errors.Is(err, core.ErrConfig) {
		t.Errorf("MaxElems trigger above MaxPending: got %v, want ErrConfig", err)
	}
	opts.Epoch = EpochPolicy{MaxBytes: 1 << 30}
	if _, err := New[int64](opts); !errors.Is(err, core.ErrConfig) {
		t.Errorf("MaxBytes trigger above MaxPending: got %v, want ErrConfig", err)
	}
	opts.Epoch = EpochPolicy{MaxElems: 1 << 20, Interval: time.Minute}
	e, err := New[int64](opts)
	if err != nil {
		t.Errorf("oversized trigger with an Interval heal: %v", err)
	} else {
		e.Close()
	}
	opts.Epoch = EpochPolicy{MaxElems: 32} // 256 bytes ≤ bound: fires first
	if _, err := New[int64](opts); err != nil {
		t.Errorf("trigger below MaxPending: %v", err)
	}
	// A huge MaxElems must not overflow the trigger-bytes product and
	// slip past the livelock check.
	opts.Epoch = EpochPolicy{MaxElems: 1 << 61}
	if _, err := New[int64](opts); !errors.Is(err, core.ErrConfig) {
		t.Errorf("overflowing MaxElems trigger: got %v, want ErrConfig", err)
	}
}

// TestEngineAdmissionSelfHealsWithTrigger pins the wedge fix: the ingest
// that crosses the seal threshold heals via maybeRotate, but its TryLock
// can lose to a concurrent ring reader — and rejected ingests never used
// to reach maybeRotate, so one missed TryLock wedged a policy-driven
// engine in ErrBacklogged forever. admit() now retries the trigger
// before rejecting.
func TestEngineAdmissionSelfHealsWithTrigger(t *testing.T) {
	const runLen = 64
	e, err := New[int64](Options{
		Config:     core.Config{RunLen: runLen, SampleSize: 8},
		Stripes:    1,
		Epoch:      EpochPolicy{MaxElems: runLen}, // trigger == bound, in bytes
		MaxPending: runLen * 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int64, runLen)
	for i := range batch {
		batch[i] = int64(i)
	}
	// Simulate the lost TryLock: hold epochMu across the crossing ingest
	// so its maybeRotate is skipped and pending lands exactly at the
	// admission bound.
	e.epochMu.Lock()
	err = e.IngestBatch(batch)
	e.epochMu.Unlock()
	if err != nil {
		t.Fatalf("crossing ingest: %v", err)
	}
	if pb := e.PendingBytes(); pb < e.MaxPending() {
		t.Fatalf("setup failed: pending %d below bound %d", pb, e.MaxPending())
	}
	// Without admit's retry this ingest — and every one after it — would
	// return ErrBacklogged with nothing ever draining.
	if err := e.IngestBatch(batch); err != nil {
		t.Fatalf("ingest after missed trigger did not self-heal: %v", err)
	}
	if got := e.N(); got != 2*runLen {
		t.Fatalf("N=%d, want %d", got, 2*runLen)
	}
}

// TestRetainLastKCountsSeals pins the span-aware retention semantics:
// with compaction folding entries, "last K" still means K seals' worth
// of data — the ring keeps the shortest entry suffix covering ≥ K seals,
// never fewer, while an uncompacted ring keeps exactly K entries.
func TestRetainLastKCountsSeals(t *testing.T) {
	const runLen = 32
	for _, compact := range []bool{false, true} {
		opts := Options{
			Config:     core.Config{RunLen: runLen, SampleSize: 4},
			Stripes:    1,
			Retention:  Retention{Kind: RetainLastK, K: 3},
			Compaction: CompactionPolicy{Enabled: compact},
		}
		e, err := New[int64](opts)
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]int64, runLen)
		for s := 0; s < 20; s++ {
			for i := range batch {
				batch[i] = int64(s*1000 + i)
			}
			if err := e.IngestBatch(batch); err != nil {
				t.Fatal(err)
			}
			if sealed, err := e.Rotate(); err != nil || !sealed {
				t.Fatalf("seal %d: sealed=%v err=%v", s, sealed, err)
			}
			var seals int64
			eps := e.Epochs()
			for _, ep := range eps {
				seals += ep.Seals
			}
			if seals < min(int64(s+1), 3) {
				t.Fatalf("compact=%v seal %d: ring covers %d seals, want ≥ %d", compact, s, seals, min(s+1, 3))
			}
			if !compact && len(eps) > 3 {
				t.Fatalf("uncompacted ring holds %d entries, want ≤ 3", len(eps))
			}
			if !compact && seals != min(int64(s+1), 3) {
				t.Fatalf("uncompacted ring covers %d seals, want exactly %d", seals, min(s+1, 3))
			}
			// Dropping the oldest entry must leave < K seals — otherwise
			// retention under-evicted.
			if len(eps) > 1 && seals-eps[0].Seals >= 3 {
				t.Fatalf("compact=%v seal %d: suffix without oldest entry still covers %d seals — not the shortest suffix", compact, s, seals-eps[0].Seals)
			}
		}
		var seals int64
		for _, ep := range e.Epochs() {
			seals += ep.Seals
		}
		st := e.Stats()
		if st.EvictedEpochs == 0 {
			t.Fatalf("compact=%v: retention never evicted", compact)
		}
		// Both counters are seal-weighted, so their difference is the
		// retained seal count even when evictions drop compacted spans.
		if st.SealedEpochs-st.EvictedEpochs != seals {
			t.Fatalf("compact=%v: sealed %d − evicted %d ≠ retained seals %d",
				compact, st.SealedEpochs, st.EvictedEpochs, seals)
		}
	}
}

// TestHTTPEngineSideBacklog429 checks the transport mapping: when the
// ENGINE (not the HTTP shed) rejects with ErrBacklogged, the client still
// sees the standard 429 + Retry-After backpressure response.
func TestHTTPEngineSideBacklog429(t *testing.T) {
	const runLen = 64
	floor := int64(runLen-1) * 8
	e, err := New[int64](Options{
		Config:     core.Config{RunLen: runLen, SampleSize: 8},
		Stripes:    1,
		MaxPending: floor + 8, // one more element than the partials floor
	})
	if err != nil {
		t.Fatal(err)
	}
	// No HandlerOptions.MaxPendingBytes: the HTTP-side shed is off, so
	// the rejection must come from the engine's own admission.
	srv := httptest.NewServer(NewHandler(e, Int64Key))
	defer srv.Close()

	post := func() *http.Response {
		t.Helper()
		var keys bytes.Buffer
		keys.WriteString(`{"keys":[`)
		for i := 0; i < runLen-1; i++ { // stays a partial run: unsealable
			if i > 0 {
				keys.WriteByte(',')
			}
			fmt.Fprintf(&keys, "%d", i)
		}
		keys.WriteString(`]}`)
		resp, err := http.Post(srv.URL+"/ingest", "application/json", &keys)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Admission is checked at call entry, so the bound is crossed by the
	// second body and the third is the first to be shed.
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: status %d", resp.StatusCode)
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest: status %d", resp.StatusCode)
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backlogged ingest: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
}
