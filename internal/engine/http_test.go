package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"testing"

	"opaq/internal/core"
)

func newTestServer(t *testing.T) (*Engine[int64], *httptest.Server) {
	t.Helper()
	e, err := New[int64](Options{
		Config:  core.Config{RunLen: 256, SampleSize: 32},
		Stripes: 2,
		Buckets: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e, Int64Key))
	t.Cleanup(srv.Close)
	return e, srv
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return out
}

func TestHTTPIngestQuantileStats(t *testing.T) {
	e, srv := newTestServer(t)

	// Ingest 0..999 shuffled deterministically, as a mix of JSON numbers
	// and strings (strings are how 64-bit-precise clients send keys).
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64((i * 7919) % 1000)
	}
	var body bytes.Buffer
	body.WriteString(`{"keys":[`)
	for i, k := range keys {
		if i > 0 {
			body.WriteByte(',')
		}
		if i%3 == 0 {
			fmt.Fprintf(&body, "%q", strconv.FormatInt(k, 10))
		} else {
			fmt.Fprintf(&body, "%d", k)
		}
	}
	body.WriteString(`]}`)
	resp, err := http.Post(srv.URL+"/ingest", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ing map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if ing["ingested"] != 1000 || ing["n"] != 1000 {
		t.Fatalf("ingest response %+v", ing)
	}

	// The served median enclosure must contain the exact median.
	q := getJSON(t, srv.URL+"/quantile?phi=0.5", http.StatusOK)
	lower, err := strconv.ParseInt(q["lower"].(string), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	upper, err := strconv.ParseInt(q["upper"].(string), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	truth := sorted[499] // rank ⌈0.5·1000⌉ = 500
	if lower > truth || truth > upper {
		t.Errorf("served median [%d, %d] does not contain exact %d", lower, upper, truth)
	}

	qs := getJSON(t, srv.URL+"/quantiles?q=10", http.StatusOK)
	if got := len(qs["quantiles"].([]any)); got != 9 {
		t.Errorf("quantiles count = %d, want 9", got)
	}

	sel := getJSON(t, srv.URL+"/selectivity?a=250&b=749", http.StatusOK)
	if s := sel["selectivity"].(float64); s < 0.3 || s > 0.7 {
		t.Errorf("selectivity of middle half = %g, want ≈0.5", s)
	}

	st := getJSON(t, srv.URL+"/stats", http.StatusOK)
	if n := st["n"].(float64); n != 1000 {
		t.Errorf("stats n = %g", n)
	}
	if e.Stats().Queries == 0 {
		t.Error("served queries not counted")
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t)

	// Malformed requests → 400. phi=NaN parses as a float but fails every
	// range comparison; it must be rejected, not served as a bogus rank.
	getJSON(t, srv.URL+"/quantile?phi=abc", http.StatusBadRequest)
	getJSON(t, srv.URL+"/quantile", http.StatusBadRequest)
	getJSON(t, srv.URL+"/quantiles?q=x", http.StatusBadRequest)
	getJSON(t, srv.URL+"/selectivity?a=1&b=zzz", http.StatusBadRequest)
	// An unbounded q would make one request allocate O(q) — capped.
	getJSON(t, srv.URL+"/quantiles?q=2000000000", http.StatusBadRequest)
	resp, err := http.Post(srv.URL+"/ingest", "application/json", bytes.NewBufferString(`{"keys":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unparseable key: status %d, want 400", resp.StatusCode)
	}

	// Querying an empty engine → 409 (a state problem, not a bad request).
	getJSON(t, srv.URL+"/quantile?phi=0.5", http.StatusConflict)
	getJSON(t, srv.URL+"/selectivity?a=1&b=2", http.StatusConflict)

	// Out-of-range and non-finite phi → 400 once data exists.
	resp, err = http.Post(srv.URL+"/ingest", "application/json", bytes.NewBufferString(`{"keys":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	getJSON(t, srv.URL+"/quantile?phi=1.5", http.StatusBadRequest)
	getJSON(t, srv.URL+"/quantile?phi=NaN", http.StatusBadRequest)
	getJSON(t, srv.URL+"/quantile?phi=+Inf", http.StatusBadRequest)

	// Wrong method → 405 from the method-aware mux.
	resp, err = http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats: status %d, want 405", resp.StatusCode)
	}
}
