package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"opaq/internal/core"
)

// benchBatch is one run's worth of keys for the benchmark engines.
func benchBatch(rng *rand.Rand, n int) []int64 {
	batch := make([]int64, n)
	for i := range batch {
		batch[i] = rng.Int63n(1 << 48)
	}
	return batch
}

// BenchmarkEngineEpochRotate measures one rotation — sealing every
// stripe's completed runs into an epoch and applying retention — at
// several per-rotation data sizes. The ingest cost is excluded; the
// number reported is the seal itself (k-way sample merge + ring update).
func BenchmarkEngineEpochRotate(b *testing.B) {
	const runLen = 1 << 12
	for _, runs := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("runs=%d", runs), func(b *testing.B) {
			e, err := New[int64](Options{
				Config:    core.Config{RunLen: runLen, SampleSize: 1 << 8},
				Stripes:   4,
				Retention: Retention{Kind: RetainLastK, K: 8},
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			batch := benchBatch(rng, runLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for r := 0; r < runs; r++ {
					if err := e.IngestBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				sealed, err := e.Rotate()
				if err != nil {
					b.Fatal(err)
				}
				if !sealed {
					b.Fatal("rotation sealed nothing")
				}
			}
			b.SetBytes(int64(runs * runLen * 8))
		})
	}
}

// BenchmarkEngineWindowedServe measures the windowed serving loop end to
// end: run-aligned ingest under an automatic epoch policy with last-K
// retention, with a snapshot-backed query after every batch (the
// rebuild-amortization the version cache provides is part of what is
// being measured).
func BenchmarkEngineWindowedServe(b *testing.B) {
	const runLen = 1 << 12
	e, err := New[int64](Options{
		Config:    core.Config{RunLen: runLen, SampleSize: 1 << 8},
		Stripes:   4,
		Epoch:     EpochPolicy{MaxElems: 8 * runLen},
		Retention: Retention{Kind: RetainLastK, K: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	batch := benchBatch(rng, runLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.IngestBatch(batch); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Quantile(0.5); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(runLen * 8)
}

// BenchmarkEngineCompactedServe measures what epoch compaction buys on
// the query path: a keep-all engine is pre-loaded with 1000 sealed epochs
// (one rotation per run-aligned batch), then each iteration ingests one
// element and forces a full snapshot rebuild. Uncompacted, the rebuild
// k-way-merges a 1001-entry ring every time; compacted, the ring holds
// ~log₂(1000) entries, so the fan-in — and the per-entry bookkeeping on
// every rotation and stats call — collapses.
func BenchmarkEngineCompactedServe(b *testing.B) {
	const (
		runLen = 256
		epochs = 1000
	)
	for _, compact := range []bool{false, true} {
		b.Run(fmt.Sprintf("compact=%v", compact), func(b *testing.B) {
			e, err := New[int64](Options{
				Config:     core.Config{RunLen: runLen, SampleSize: 32},
				Stripes:    1,
				Compaction: CompactionPolicy{Enabled: compact},
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			batch := make([]int64, runLen)
			for ep := 0; ep < epochs; ep++ {
				for i := range batch {
					batch[i] = rng.Int63n(1 << 48)
				}
				if err := e.IngestBatch(batch); err != nil {
					b.Fatal(err)
				}
				if sealed, err := e.Rotate(); err != nil || !sealed {
					b.Fatalf("epoch %d: sealed=%v err=%v", ep, sealed, err)
				}
			}
			if depth := e.Stats().Epochs; compact == (depth == epochs) {
				b.Fatalf("ring depth %d does not match compact=%v", depth, compact)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Ingest(rng.Int63n(1 << 48)); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Quantile(0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSnapshotUnderIngest is the two-level snapshot
// maintenance scenario: a keep-all, uncompacted engine is pre-loaded with
// 1000 sealed epochs, then each iteration ingests one element (bumping
// the version) and immediately queries, forcing a snapshot rebuild per
// cycle. The full-remerge baseline (DisableFrozenPrefix) k-way-merges the
// 1001-entry merge set every time — O(retained window); the two-level
// path folds the stripe tail into the cached frozen prefix — O(unsealed
// tail). The ratio of the two throughputs is the headline speedup the
// snapshot benchtab experiment persists.
func BenchmarkEngineSnapshotUnderIngest(b *testing.B) {
	const (
		runLen = 256
		epochs = 1000
	)
	for _, mode := range []struct {
		name string
		full bool
	}{{"full-remerge", true}, {"two-level", false}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			e, err := New[int64](Options{
				Config:              core.Config{RunLen: runLen, SampleSize: 32},
				Stripes:             1,
				DisableFrozenPrefix: mode.full,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(4))
			batch := make([]int64, runLen)
			for ep := 0; ep < epochs; ep++ {
				for i := range batch {
					batch[i] = rng.Int63n(1 << 48)
				}
				if err := e.IngestBatch(batch); err != nil {
					b.Fatal(err)
				}
				if sealed, err := e.Rotate(); err != nil || !sealed {
					b.Fatalf("epoch %d: sealed=%v err=%v", ep, sealed, err)
				}
			}
			// One warm-up cycle performs the cold prefix merge (two-level)
			// and warms the buffer pools, so the loop measures the steady
			// state in both modes.
			if err := e.Ingest(rng.Int63n(1 << 48)); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Quantile(0.5); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Ingest(rng.Int63n(1 << 48)); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Quantile(0.5); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := e.Stats()
			if mode.full && (st.PrefixHits != 0 || st.PrefixRebuilds != 0) {
				b.Fatalf("baseline engine touched the prefix cache: %+v", st)
			}
			if !mode.full && st.PrefixHits == 0 {
				b.Fatalf("two-level engine never hit the prefix cache: %+v", st)
			}
		})
	}
}

// TestTwoLevelServeAllocs extends the pooled-rebuild assertion to the
// two-level snapshot path: on a deep UNcompacted ring, the steady-state
// ingest+query loop must stay within the same allocation budget as the
// compacted loop (the tail fold reuses pooled merge buffers and the
// cached frozen prefix), and — the regression this test exists to catch —
// the frozen prefix must NOT be silently re-merged per query: every
// rebuild in the loop is a prefix HIT, and the rebuild counter stays
// flat.
func TestTwoLevelServeAllocs(t *testing.T) {
	const runLen = 256
	e, err := New[int64](Options{
		Config:  core.Config{RunLen: runLen, SampleSize: 32},
		Stripes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	batch := make([]int64, runLen)
	for ep := 0; ep < 256; ep++ {
		for i := range batch {
			batch[i] = rng.Int63n(1 << 48)
		}
		if err := e.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if sealed, err := e.Rotate(); err != nil || !sealed {
			t.Fatalf("epoch %d: sealed=%v err=%v", ep, sealed, err)
		}
	}
	// Warm the pools and the prefix cache: the first rebuild after the
	// last rotation performs the one expected cold prefix merge.
	for i := 0; i < 8; i++ {
		if err := e.Ingest(rng.Int63n(1 << 48)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Quantile(0.5); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Stats()
	const runs = 50
	allocs := testing.AllocsPerRun(runs, func() {
		if err := e.Ingest(rng.Int63n(1 << 48)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Quantile(0.5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Fatalf("two-level serve loop: %.1f allocs/op, want ≤ 64 (tail merge no longer pooled, or prefix re-merged per query?)", allocs)
	}
	after := e.Stats()
	if after.PrefixRebuilds != before.PrefixRebuilds {
		t.Fatalf("frozen prefix re-merged %d times during steady-state ingest (no ring change happened); every rebuild must be a cache hit",
			after.PrefixRebuilds-before.PrefixRebuilds)
	}
	if hits := after.PrefixHits - before.PrefixHits; hits < runs {
		t.Fatalf("prefix hits grew by %d over %d rebuilding queries", hits, runs)
	}
	if full := after.Merges - after.PrefixHits - after.PrefixRebuilds; full != 0 {
		t.Fatalf("%d full-remerge rebuilds on a two-level engine", full)
	}
}

// TestCompactedServeAllocs pins the allocation count of the compacted
// serving loop — one ingest plus one snapshot-rebuilding query — so a
// regression that re-introduces per-merge buffer allocations (the pooled
// buffers of core.MergeAll / StreamBuilder.Summary) fails loudly rather
// than showing up only in benchmark output. The measured steady state is
// ~32 allocs/op (snapshot + histogram construction, which are per-rebuild
// by design); the threshold leaves ~2× headroom for toolchain drift.
func TestCompactedServeAllocs(t *testing.T) {
	const runLen = 256
	e, err := New[int64](Options{
		Config:     core.Config{RunLen: runLen, SampleSize: 32},
		Stripes:    1,
		Compaction: CompactionPolicy{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batch := make([]int64, runLen)
	for ep := 0; ep < 64; ep++ {
		for i := range batch {
			batch[i] = rng.Int63n(1 << 48)
		}
		if err := e.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if sealed, err := e.Rotate(); err != nil || !sealed {
			t.Fatalf("epoch %d: sealed=%v err=%v", ep, sealed, err)
		}
	}
	// Warm the pools: the first rebuilds populate the per-type free lists.
	for i := 0; i < 8; i++ {
		if err := e.Ingest(rng.Int63n(1 << 48)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Quantile(0.5); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := e.Ingest(rng.Int63n(1 << 48)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Quantile(0.5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Fatalf("compacted serve loop: %.1f allocs/op, want ≤ 64 (merge buffers no longer pooled?)", allocs)
	}
}

// BenchmarkRegistryServe measures the multi-tenant hot path: concurrent
// goroutines resolving tenants through the registry and hitting their
// engines with a mixed ingest/query load across 8 tenants.
func BenchmarkRegistryServe(b *testing.B) {
	reg, err := NewRegistry(RegistryOptions[int64]{
		Defaults: Options{
			Config:  core.Config{RunLen: 1 << 12, SampleSize: 1 << 8},
			Stripes: 2,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	const tenantCount = 8
	names := make([]string, tenantCount)
	for i := range names {
		names[i] = fmt.Sprintf("col%d", i)
		eng, err := reg.Create(names[i], nil)
		if err != nil {
			b.Fatal(err)
		}
		// Warm every tenant so queries have something to answer.
		if err := eng.IngestBatch(benchBatch(rand.New(rand.NewSource(int64(i))), 1<<12)); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(ctr.Add(1)))
		batch := benchBatch(rng, 64)
		for pb.Next() {
			eng, err := reg.Get(names[rng.Intn(tenantCount)])
			if err != nil {
				b.Fatal(err)
			}
			if rng.Intn(4) == 0 {
				if err := eng.IngestBatch(batch); err != nil {
					b.Fatal(err)
				}
			} else if _, err := eng.Quantile(1 - rng.Float64()); err != nil { // (0, 1]
				b.Fatal(err)
			}
		}
	})
}
