package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"opaq/internal/core"
)

// benchBatch is one run's worth of keys for the benchmark engines.
func benchBatch(rng *rand.Rand, n int) []int64 {
	batch := make([]int64, n)
	for i := range batch {
		batch[i] = rng.Int63n(1 << 48)
	}
	return batch
}

// BenchmarkEngineEpochRotate measures one rotation — sealing every
// stripe's completed runs into an epoch and applying retention — at
// several per-rotation data sizes. The ingest cost is excluded; the
// number reported is the seal itself (k-way sample merge + ring update).
func BenchmarkEngineEpochRotate(b *testing.B) {
	const runLen = 1 << 12
	for _, runs := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("runs=%d", runs), func(b *testing.B) {
			e, err := New[int64](Options{
				Config:    core.Config{RunLen: runLen, SampleSize: 1 << 8},
				Stripes:   4,
				Retention: Retention{Kind: RetainLastK, K: 8},
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			batch := benchBatch(rng, runLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for r := 0; r < runs; r++ {
					if err := e.IngestBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				sealed, err := e.Rotate()
				if err != nil {
					b.Fatal(err)
				}
				if !sealed {
					b.Fatal("rotation sealed nothing")
				}
			}
			b.SetBytes(int64(runs * runLen * 8))
		})
	}
}

// BenchmarkEngineWindowedServe measures the windowed serving loop end to
// end: run-aligned ingest under an automatic epoch policy with last-K
// retention, with a snapshot-backed query after every batch (the
// rebuild-amortization the version cache provides is part of what is
// being measured).
func BenchmarkEngineWindowedServe(b *testing.B) {
	const runLen = 1 << 12
	e, err := New[int64](Options{
		Config:    core.Config{RunLen: runLen, SampleSize: 1 << 8},
		Stripes:   4,
		Epoch:     EpochPolicy{MaxElems: 8 * runLen},
		Retention: Retention{Kind: RetainLastK, K: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	batch := benchBatch(rng, runLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.IngestBatch(batch); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Quantile(0.5); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(runLen * 8)
}

// BenchmarkRegistryServe measures the multi-tenant hot path: concurrent
// goroutines resolving tenants through the registry and hitting their
// engines with a mixed ingest/query load across 8 tenants.
func BenchmarkRegistryServe(b *testing.B) {
	reg, err := NewRegistry(RegistryOptions[int64]{
		Defaults: Options{
			Config:  core.Config{RunLen: 1 << 12, SampleSize: 1 << 8},
			Stripes: 2,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	const tenantCount = 8
	names := make([]string, tenantCount)
	for i := range names {
		names[i] = fmt.Sprintf("col%d", i)
		eng, err := reg.Create(names[i], nil)
		if err != nil {
			b.Fatal(err)
		}
		// Warm every tenant so queries have something to answer.
		if err := eng.IngestBatch(benchBatch(rand.New(rand.NewSource(int64(i))), 1<<12)); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(ctr.Add(1)))
		batch := benchBatch(rng, 64)
		for pb.Next() {
			eng, err := reg.Get(names[rng.Intn(tenantCount)])
			if err != nil {
				b.Fatal(err)
			}
			if rng.Intn(4) == 0 {
				if err := eng.IngestBatch(batch); err != nil {
					b.Fatal(err)
				}
			} else if _, err := eng.Quantile(1 - rng.Float64()); err != nil { // (0, 1]
				b.Fatal(err)
			}
		}
	})
}
