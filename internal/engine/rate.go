// Seal-rate estimation: the HTTP layer's 429 Retry-After hint should tell
// a shedding client when the backlog plausibly drains — one seal from now
// — instead of a fixed constant. The engine observes the cadence of
// ingest seals as an exponentially weighted moving average of inter-seal
// gaps; the EWMA adapts within a few rotations when the workload shifts
// but does not whipsaw on one outlier gap.
package engine

import (
	"sync"
	"time"
)

// sealRateAlpha is the EWMA smoothing factor: each new inter-seal gap
// contributes a quarter of the estimate, so ~5 seals re-anchor it after a
// rate change.
const sealRateAlpha = 0.25

// sealRate tracks the EWMA of inter-seal intervals. The zero value is
// ready to use; it reports no estimate until two seals have been
// observed.
type sealRate struct {
	mu   sync.Mutex
	last time.Time     // previous seal's timestamp; zero until the first
	avg  time.Duration // EWMA of gaps; 0 until the second seal
}

// observe records one seal at now. Out-of-order timestamps (clock steps)
// contribute a zero gap rather than a negative one.
func (r *sealRate) observe(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.last.IsZero() {
		r.last = now
		return
	}
	gap := now.Sub(r.last)
	if gap < 0 {
		gap = 0
	}
	r.last = now
	if r.avg == 0 {
		r.avg = gap
		return
	}
	r.avg = time.Duration((1-sealRateAlpha)*float64(r.avg) + sealRateAlpha*float64(gap))
}

// interval returns the EWMA of inter-seal gaps; ok is false until two
// seals have been observed (no rate to speak of).
func (r *sealRate) interval() (_ time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.avg, r.avg > 0
}

// SealInterval reports the engine's observed seal cadence: the
// exponentially weighted moving average of the gaps between successive
// ingest seals. ok is false until at least two rotations have sealed.
// The HTTP layer derives adaptive Retry-After hints from it; callers
// implementing their own backoff against ErrBacklogged can do the same.
func (e *Engine[T]) SealInterval() (_ time.Duration, ok bool) {
	return e.sealRate.interval()
}
