package engine

import (
	"bytes"
	"fmt"
	"math/bits"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// The compaction equivalence harness. Compaction's whole contract is
// "answers never change": the buddy merge reshapes the epoch ring but the
// merged snapshot — and therefore every quantile, rank and selectivity
// result and every checkpoint byte — must be indistinguishable from an
// engine that never compacted. The harness drives a compacting engine and
// a shadow uncompacted engine through identical randomized schedules of
// ingest / rotate / explicit-compact / checkpoint→restore operations,
// with concurrent queriers hammering both (so -race sees ring swaps racing
// reads), and at every quiesce point asserts byte-identical behavior.

// equivPair is the engine under test plus its shadow. The engines are
// held behind atomic pointers because a checkpoint→restore schedule op
// replaces them mid-run while queriers keep reading.
type equivPair struct {
	comp atomic.Pointer[Engine[int64]]
	shad atomic.Pointer[Engine[int64]]
}

// equivOptions returns the shared configuration; withCompaction adds the
// policy under test.
func equivOptions(withCompaction bool) Options {
	opts := Options{
		Config:  core.Config{RunLen: 64, SampleSize: 8, Seed: 9},
		Stripes: 2,
		Buckets: 8,
	}
	if withCompaction {
		opts.Compaction = CompactionPolicy{Enabled: true}
	}
	return opts
}

// checkpointBytes cuts a checkpoint into memory.
func checkpointBytes(t *testing.T, e *Engine[int64]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf, runio.Int64Codec{}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

// compareEngines is one quiesce point: every observable answer of the
// compacting engine must be byte-identical to the shadow's, and the
// compacted ring must obey the logarithmic depth bound.
func compareEngines(t *testing.T, comp, shad *Engine[int64], rng *rand.Rand) {
	t.Helper()
	if cn, sn := comp.N(), shad.N(); cn != sn {
		t.Fatalf("lifetime N diverged: compacted %d, shadow %d", cn, sn)
	}
	ckC, ckS := checkpointBytes(t, comp), checkpointBytes(t, shad)
	if !bytes.Equal(ckC, ckS) {
		t.Fatal("checkpoint bytes diverged between compacted and shadow engines")
	}
	if comp.N() == 0 {
		return
	}
	qc, errC := comp.Quantiles(16)
	qs, errS := shad.Quantiles(16)
	if errC != nil || errS != nil {
		t.Fatalf("Quantiles: compacted %v, shadow %v", errC, errS)
	}
	if !reflect.DeepEqual(qc, qs) {
		t.Fatalf("quantile enclosures diverged:\ncompacted %+v\nshadow    %+v", qc, qs)
	}
	snap, err := comp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := snap.Summary.Min(), snap.Summary.Max()
	probes := []int64{lo, hi, lo + (hi-lo)/2}
	for i := 0; i < 5; i++ {
		probes = append(probes, lo+rng.Int63n(max(hi-lo, 1)+1))
	}
	for _, x := range probes {
		cl, ch, err := comp.RankBounds(x)
		if err != nil {
			t.Fatal(err)
		}
		sl, sh, err := shad.RankBounds(x)
		if err != nil {
			t.Fatal(err)
		}
		if cl != sl || ch != sh {
			t.Fatalf("RankBounds(%d) diverged: compacted [%d,%d], shadow [%d,%d]", x, cl, ch, sl, sh)
		}
	}
	for i := 0; i < 5; i++ {
		a := lo + rng.Int63n(max(hi-lo, 1)+1)
		b := a + rng.Int63n(max(hi-a, 1)+1)
		cSel, cEst, cErr, err := comp.RangeEstimate(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sSel, sEst, sErr, err := shad.RangeEstimate(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Identical histograms make these float-for-float identical, not
		// merely close.
		if cSel != sSel || cEst != sEst || cErr != sErr {
			t.Fatalf("RangeEstimate(%d,%d) diverged: compacted (%g,%g,%g), shadow (%g,%g,%g)",
				a, b, cSel, cEst, cErr, sSel, sEst, sErr)
		}
	}
	// The compacted ring must stay logarithmic in the data it covers;
	// tiers strictly decrease oldest→newest at the buddy fixpoint, so
	// depth ≤ log₂(N)+2 even for ragged seal sizes.
	if depth, limit := comp.Stats().Epochs, bits.Len64(uint64(comp.N()))+2; depth > limit {
		t.Fatalf("compacted ring depth %d exceeds log bound %d at N=%d", depth, limit, comp.N())
	}
}

// spawnQueriers starts background readers against whatever engine the
// pointer currently holds, returning a stop function. They assert nothing
// about values — their job is to race snapshot rebuilds, ring swaps and
// stats reads against the schedule under -race.
func spawnQueriers(p *atomic.Pointer[Engine[int64]], n int, seed int64) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < n; q++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				e := p.Load()
				_, _ = e.Quantile(1 - rng.Float64()) // (0, 1]
				_, _, _ = e.RankBounds(rng.Int63n(1 << 40))
				_, _, _, _ = e.RangeEstimate(0, rng.Int63n(1<<40))
				_ = e.Stats()
				_ = e.Epochs()
			}
		}(seed + int64(q))
	}
	return func() { close(done); wg.Wait() }
}

// TestCompactionEquivalenceRandomSchedules is the headline harness: for
// several seeds, a randomized schedule of ingest (ragged and run-aligned
// batches), rotations, explicit compactions and full checkpoint→restore
// engine replacements runs against both engines of a pair, under
// concurrent queriers, with byte-identity asserted at every quiesce point
// and once more at the end.
func TestCompactionEquivalenceRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			var pair equivPair
			comp, err := New[int64](equivOptions(true))
			if err != nil {
				t.Fatal(err)
			}
			shad, err := New[int64](equivOptions(false))
			if err != nil {
				t.Fatal(err)
			}
			pair.comp.Store(comp)
			pair.shad.Store(shad)
			stopC := spawnQueriers(&pair.comp, 2, seed*100+1)
			stopS := spawnQueriers(&pair.shad, 2, seed*100+50)
			defer stopC()
			defer stopS()

			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < 150; op++ {
				comp, shad := pair.comp.Load(), pair.shad.Load()
				switch k := rng.Intn(12); {
				case k < 6: // ingest one batch, usually ragged
					size := 1 + rng.Intn(96)
					if rng.Intn(3) == 0 {
						size = 64 // run-aligned
					}
					batch := make([]int64, size)
					for i := range batch {
						batch[i] = rng.Int63n(1 << 40)
					}
					if err := comp.IngestBatch(batch); err != nil {
						t.Fatal(err)
					}
					if err := shad.IngestBatch(batch); err != nil {
						t.Fatal(err)
					}
				case k < 8: // rotate both
					if _, err := comp.Rotate(); err != nil {
						t.Fatal(err)
					}
					if _, err := shad.Rotate(); err != nil {
						t.Fatal(err)
					}
				case k == 8: // explicit compact (the shadow never compacts)
					if _, err := comp.Compact(); err != nil {
						t.Fatal(err)
					}
				case k == 9: // checkpoint → restore into fresh engines
					ckC, ckS := checkpointBytes(t, comp), checkpointBytes(t, shad)
					if !bytes.Equal(ckC, ckS) {
						t.Fatal("checkpoint bytes diverged at restore op")
					}
					newC, err := New[int64](equivOptions(true))
					if err != nil {
						t.Fatal(err)
					}
					newS, err := New[int64](equivOptions(false))
					if err != nil {
						t.Fatal(err)
					}
					if err := newC.Restore(bytes.NewReader(ckC), runio.Int64Codec{}); err != nil {
						t.Fatal(err)
					}
					if err := newS.Restore(bytes.NewReader(ckS), runio.Int64Codec{}); err != nil {
						t.Fatal(err)
					}
					pair.comp.Store(newC)
					pair.shad.Store(newS)
				default: // quiesce point
					compareEngines(t, comp, shad, rng)
				}
			}
			compareEngines(t, pair.comp.Load(), pair.shad.Load(), rng)
			if st := pair.comp.Load().Stats(); st.Compactions == 0 && pair.comp.Load().N() > 0 {
				// The schedule must actually exercise compaction; with 150
				// ops and rotations every ~6 ops this never triggers
				// spuriously. (Restore-replacement can reset counters near
				// the very end, hence the lifetime check on the final pair
				// only guards non-trivial runs.)
				t.Log("final engine never compacted (restored late in the schedule); acceptable")
			}
		})
	}
}

// prefixEquivOptions configures one engine of a prefix-cache equivalence
// pair: the engines differ ONLY in DisableFrozenPrefix. Automatic
// compaction stays off on both so the rings evolve through the
// deterministic schedule alone (the rebuild-path compaction pass is
// querier-timing-dependent and would let last-K eviction granularity
// diverge between the pair); explicit Compact ops in the schedule hit
// both engines identically. Last-K retention makes eviction — one of the
// prefix invalidation events under test — actually fire.
func prefixEquivOptions(shadow bool) Options {
	return Options{
		Config:              core.Config{RunLen: 64, SampleSize: 8, Seed: 9},
		Stripes:             2,
		Buckets:             8,
		Retention:           Retention{Kind: RetainLastK, K: 6},
		DisableFrozenPrefix: shadow,
	}
}

// TestPrefixCacheEquivalenceRandomSchedules is the two-level snapshot
// harness: a frozen-prefix engine and a full-remerge shadow
// (DisableFrozenPrefix) run identical randomized schedules covering every
// prefix invalidation event — rotation (with last-K eviction), explicit
// compaction swaps, restore-absorb into a live engine, and full
// checkpoint→replace — interleaved with queries, while background
// queriers race the cache under -race. Checkpoints must stay
// byte-identical and answers float-identical at every quiesce point: the
// cached prefix fold and the single k-way remerge are the same merge over
// a different tree shape.
func TestPrefixCacheEquivalenceRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			var pair equivPair
			cached, err := New[int64](prefixEquivOptions(false))
			if err != nil {
				t.Fatal(err)
			}
			shad, err := New[int64](prefixEquivOptions(true))
			if err != nil {
				t.Fatal(err)
			}
			pair.comp.Store(cached)
			pair.shad.Store(shad)
			stopC := spawnQueriers(&pair.comp, 2, seed*200+1)
			stopS := spawnQueriers(&pair.shad, 2, seed*200+50)
			defer stopC()
			defer stopS()

			rng := rand.New(rand.NewSource(seed * 31))
			// A replace op swaps in fresh engines with zeroed counters, so
			// cache usage is accumulated across every engine generation.
			var hits, rebuilds, shadowTouches int64
			for op := 0; op < 150; op++ {
				cached, shad := pair.comp.Load(), pair.shad.Load()
				switch k := rng.Intn(12); {
				case k < 6: // ingest one batch, usually ragged
					size := 1 + rng.Intn(96)
					if rng.Intn(3) == 0 {
						size = 64 // run-aligned
					}
					batch := make([]int64, size)
					for i := range batch {
						batch[i] = rng.Int63n(1 << 40)
					}
					if err := cached.IngestBatch(batch); err != nil {
						t.Fatal(err)
					}
					if err := shad.IngestBatch(batch); err != nil {
						t.Fatal(err)
					}
				case k < 8: // rotate both (seal + last-K eviction)
					if _, err := cached.Rotate(); err != nil {
						t.Fatal(err)
					}
					if _, err := shad.Rotate(); err != nil {
						t.Fatal(err)
					}
				case k == 8: // compaction swap on both — same deterministic plan
					if _, err := cached.Compact(); err != nil {
						t.Fatal(err)
					}
					if _, err := shad.Compact(); err != nil {
						t.Fatal(err)
					}
				case k == 9: // restore-absorb INTO the live engines (prefix
					// invalidation without replacing the engine)
					ckC, ckS := checkpointBytes(t, cached), checkpointBytes(t, shad)
					if !bytes.Equal(ckC, ckS) {
						t.Fatal("checkpoint bytes diverged at absorb op")
					}
					if err := cached.Restore(bytes.NewReader(ckC), runio.Int64Codec{}); err != nil {
						t.Fatal(err)
					}
					if err := shad.Restore(bytes.NewReader(ckS), runio.Int64Codec{}); err != nil {
						t.Fatal(err)
					}
				case k == 10: // checkpoint → replace with fresh engines
					ckC, ckS := checkpointBytes(t, cached), checkpointBytes(t, shad)
					if !bytes.Equal(ckC, ckS) {
						t.Fatal("checkpoint bytes diverged at replace op")
					}
					newC, err := New[int64](prefixEquivOptions(false))
					if err != nil {
						t.Fatal(err)
					}
					newS, err := New[int64](prefixEquivOptions(true))
					if err != nil {
						t.Fatal(err)
					}
					if err := newC.Restore(bytes.NewReader(ckC), runio.Int64Codec{}); err != nil {
						t.Fatal(err)
					}
					if err := newS.Restore(bytes.NewReader(ckS), runio.Int64Codec{}); err != nil {
						t.Fatal(err)
					}
					st := cached.Stats()
					hits += st.PrefixHits
					rebuilds += st.PrefixRebuilds
					sst := shad.Stats()
					shadowTouches += sst.PrefixHits + sst.PrefixRebuilds
					pair.comp.Store(newC)
					pair.shad.Store(newS)
				default: // quiesce point
					compareEngines(t, cached, shad, rng)
				}
			}
			compareEngines(t, pair.comp.Load(), pair.shad.Load(), rng)
			// The harness must actually exercise both levels of the cache,
			// and the shadow must never touch it.
			st := pair.comp.Load().Stats()
			hits += st.PrefixHits
			rebuilds += st.PrefixRebuilds
			sst := pair.shad.Load().Stats()
			shadowTouches += sst.PrefixHits + sst.PrefixRebuilds
			if hits == 0 || rebuilds == 0 {
				t.Errorf("prefix cache not exercised: %d hits, %d rebuilds", hits, rebuilds)
			}
			if shadowTouches != 0 {
				t.Errorf("shadow engines touched the prefix cache %d times", shadowTouches)
			}
		})
	}
}

// TestTwoLevelTailMergeCounters is the counter-based regression guard on
// the two-level rebuild path, in the style of the snapshot-cache test: a
// version-missed query after any number of plain ingests performs exactly
// one rebuild that HITS the cached prefix (one tail merge, no prefix
// re-merge); a version-matched query performs none; and only genuine ring
// changes — rotation, compaction swap — provoke a cold prefix rebuild.
func TestTwoLevelTailMergeCounters(t *testing.T) {
	e, err := New[int64](Options{
		Config:  core.Config{RunLen: 64, SampleSize: 8},
		Stripes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	batch := make([]int64, 64)
	for ep := 0; ep < 8; ep++ {
		for i := range batch {
			batch[i] = rng.Int63n(1 << 40)
		}
		if err := e.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if sealed, err := e.Rotate(); err != nil || !sealed {
			t.Fatalf("epoch %d: sealed=%v err=%v", ep, sealed, err)
		}
	}
	if _, err := e.Quantile(0.5); err != nil { // cold: ring changed since construction
		t.Fatal(err)
	}
	st := e.Stats()
	if st.PrefixRebuilds != 1 {
		t.Fatalf("first query after seals: %d prefix rebuilds, want 1", st.PrefixRebuilds)
	}

	// N plain ingests, then one query: exactly one rebuild, and it must
	// reuse the frozen prefix (tail-only merge).
	for i := 0; i < 25; i++ {
		if err := e.Ingest(rng.Int63n(1 << 40)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	now := e.Stats()
	if got, want := now.Merges, st.Merges+1; got != want {
		t.Fatalf("query after 25 ingests: %d merges, want %d (single-flight, one rebuild)", got, want)
	}
	if got, want := now.PrefixHits, st.PrefixHits+1; got != want {
		t.Fatalf("query after 25 ingests: %d prefix hits, want %d", got, want)
	}
	if now.PrefixRebuilds != st.PrefixRebuilds {
		t.Fatalf("plain ingest provoked a cold prefix rebuild (%d → %d)", st.PrefixRebuilds, now.PrefixRebuilds)
	}

	// Version-matched queries touch nothing.
	st = now
	for i := 0; i < 50; i++ {
		if _, err := e.Quantile(0.25); err != nil {
			t.Fatal(err)
		}
	}
	if now = e.Stats(); now.Merges != st.Merges || now.PrefixHits != st.PrefixHits {
		t.Fatalf("version-matched queries rebuilt: merges %d→%d, hits %d→%d", st.Merges, now.Merges, st.PrefixHits, now.PrefixHits)
	}

	// A rotation publishes a new ring: the next rebuild re-merges the
	// prefix cold, exactly once.
	if err := e.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	if sealed, err := e.Rotate(); err != nil || !sealed {
		t.Fatalf("sealed=%v err=%v", sealed, err)
	}
	if _, err := e.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	if now = e.Stats(); now.PrefixRebuilds != st.PrefixRebuilds+1 {
		t.Fatalf("query after rotation: %d prefix rebuilds, want %d", now.PrefixRebuilds, st.PrefixRebuilds+1)
	}

	// A compaction swap does NOT bump the version — the cached snapshot
	// stays valid and no rebuild happens — but it does invalidate the
	// prefix, so the next version-missed query re-merges it cold.
	st = e.Stats()
	if changed, err := e.Compact(); err != nil || !changed {
		t.Fatalf("compact: changed=%v err=%v", changed, err)
	}
	if _, err := e.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	if now = e.Stats(); now.Merges != st.Merges {
		t.Fatalf("compaction swap provoked a rebuild: merges %d→%d (cached snapshot should have served)", st.Merges, now.Merges)
	}
	if err := e.Ingest(rng.Int63n(1 << 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	if now = e.Stats(); now.PrefixRebuilds != st.PrefixRebuilds+1 {
		t.Fatalf("query after compaction swap: %d prefix rebuilds, want %d", now.PrefixRebuilds, st.PrefixRebuilds+1)
	}
}

// TestCompactionRingDepthLogBound is the acceptance criterion in
// isolation: a keep-all engine under continuous rotation — one seal per
// run-aligned batch, 1200 seals — holds its ring at ≤ log₂(#seals)+1
// entries the whole way, while the shadow uncompacted engine's ring grows
// linearly; final answers stay byte-identical.
func TestCompactionRingDepthLogBound(t *testing.T) {
	opts := equivOptions(true)
	opts.Stripes = 1
	comp, err := New[int64](opts)
	if err != nil {
		t.Fatal(err)
	}
	shadOpts := equivOptions(false)
	shadOpts.Stripes = 1
	shad, err := New[int64](shadOpts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]int64, opts.Config.RunLen)
	const seals = 1200
	for s := 1; s <= seals; s++ {
		for i := range batch {
			batch[i] = rng.Int63n(1 << 40)
		}
		for _, e := range []*Engine[int64]{comp, shad} {
			if err := e.IngestBatch(batch); err != nil {
				t.Fatal(err)
			}
			if sealed, err := e.Rotate(); err != nil || !sealed {
				t.Fatalf("seal %d: sealed=%v err=%v", s, sealed, err)
			}
		}
		if depth, limit := comp.Stats().Epochs, bits.Len(uint(s))+1; depth > limit {
			t.Fatalf("after %d seals: ring depth %d exceeds log bound %d", s, depth, limit)
		}
	}
	st := comp.Stats()
	if st.SealedEpochs != seals {
		t.Fatalf("sealed %d epochs, want %d", st.SealedEpochs, seals)
	}
	if st.Compactions == 0 || st.CompactedEpochs == 0 {
		t.Fatalf("compaction never ran: %+v", st)
	}
	if shadowDepth := shad.Stats().Epochs; shadowDepth != seals {
		t.Fatalf("shadow ring depth %d, want %d (must stay uncompacted)", shadowDepth, seals)
	}
	if !bytes.Equal(checkpointBytes(t, comp), checkpointBytes(t, shad)) {
		t.Fatal("checkpoint bytes diverged after 1200 compacted seals")
	}
}

// TestCompactionRetentionGate pins the over-retention bound: merged
// spans are capped at half the retention window, so a windowed engine
// with compaction retains at most 1.5× what the policy promises.
func TestCompactionRetentionGate(t *testing.T) {
	t.Run("last-K", func(t *testing.T) {
		const runLen, K = 32, 8
		e, err := New[int64](Options{
			Config:     core.Config{RunLen: runLen, SampleSize: 4},
			Stripes:    1,
			Retention:  Retention{Kind: RetainLastK, K: K},
			Compaction: CompactionPolicy{Enabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]int64, runLen)
		for s := 0; s < 50; s++ {
			for i := range batch {
				batch[i] = int64(s*runLen + i)
			}
			if err := e.IngestBatch(batch); err != nil {
				t.Fatal(err)
			}
			if sealed, err := e.Rotate(); err != nil || !sealed {
				t.Fatalf("seal %d: sealed=%v err=%v", s, sealed, err)
			}
			var seals int64
			for _, ep := range e.Epochs() {
				if ep.Seals > K/2 {
					t.Fatalf("seal %d: entry spans %d seals, gate caps at %d", s, ep.Seals, K/2)
				}
				seals += ep.Seals
			}
			if limit := int64(K + K/2); seals > limit {
				t.Fatalf("seal %d: ring covers %d seals, over-retention bound is %d (1.5K)", s, seals, limit)
			}
			if s >= K && seals < K {
				t.Fatalf("seal %d: ring covers %d seals, window promises %d", s, seals, K)
			}
		}
		if e.Stats().Compactions == 0 {
			t.Fatal("gate is vacuous: compaction never ran")
		}
	})
	t.Run("max-age", func(t *testing.T) {
		// The time gate is evaluated against synthetic spans directly:
		// wall-clock-driven seals cannot set controlled ages in a test.
		e, err := New[int64](Options{
			Config:    core.Config{RunLen: 32, SampleSize: 4},
			Stripes:   1,
			Retention: Retention{Kind: RetainMaxAge, MaxAge: time.Hour},
		})
		if err != nil {
			t.Fatal(err)
		}
		gate := e.compactGate()
		if gate == nil {
			t.Fatal("RetainMaxAge engine has no compaction gate")
		}
		t0 := time.Unix(0, 0)
		span := func(first, last time.Duration) epochMeta {
			return epochMeta{n: 32, seals: 1, first: t0.Add(first), last: t0.Add(last)}
		}
		if !gate(span(0, 10*time.Minute), span(10*time.Minute, 25*time.Minute)) {
			t.Fatal("25min merged span vetoed under a 1h window (cap is 30min)")
		}
		if gate(span(0, 20*time.Minute), span(20*time.Minute, 40*time.Minute)) {
			t.Fatal("40min merged span allowed under a 1h window (cap is 30min)")
		}
	})
}

// TestCompactionWithEvictionServesRetainedWindow exercises the
// evict/compact interplay: a last-K engine with compaction enabled serves
// a window whose exact content the test reconstructs from the ring's
// epoch-ID spans (every ring entry advertises FirstID..ID, and the test
// recorded which elements each seal covered). At every quiesce point the
// served quantiles and ranks must enclose the true values over exactly
// that retained multiset — proving the span metadata is faithful and
// retention on compacted entries never drops or resurrects data —
// while concurrent queriers race the ring swaps.
func TestCompactionWithEvictionServesRetainedWindow(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			const runLen = 64
			opts := Options{
				Config:     core.Config{RunLen: runLen, SampleSize: 8, Seed: 21},
				Stripes:    1, // run-aligned batches seal exactly what was ingested
				Buckets:    8,
				Retention:  Retention{Kind: RetainLastK, K: 4},
				Compaction: CompactionPolicy{Enabled: true},
			}
			e, err := New[int64](opts)
			if err != nil {
				t.Fatal(err)
			}
			var ptr atomic.Pointer[Engine[int64]]
			ptr.Store(e)
			stop := spawnQueriers(&ptr, 2, seed*1000)
			defer stop()

			rng := rand.New(rand.NewSource(seed))
			sealElems := map[uint64][]int64{} // seal ID → its elements
			var pending []int64               // ingested but not yet sealed
			nextSealID := uint64(1)
			evictions := false
			for wave := 0; wave < 60; wave++ {
				for b, nb := 0, 1+rng.Intn(4); b < nb; b++ {
					batch := make([]int64, runLen)
					for i := range batch {
						batch[i] = rng.Int63n(1 << 32)
					}
					if err := e.IngestBatch(batch); err != nil {
						t.Fatal(err)
					}
					pending = append(pending, batch...)
				}
				if rng.Intn(3) > 0 {
					sealed, err := e.Rotate()
					if err != nil {
						t.Fatal(err)
					}
					if sealed != (len(pending) > 0) {
						t.Fatalf("wave %d: sealed=%v with %d pending elements", wave, sealed, len(pending))
					}
					if sealed {
						sealElems[nextSealID] = pending
						nextSealID++
						pending = nil
					}
				}
				if rng.Intn(4) == 0 {
					if _, err := e.Compact(); err != nil {
						t.Fatal(err)
					}
				}

				// Quiesce: reconstruct the exact retained multiset from the
				// ring's spans and enclosure-check served answers against it.
				eps := e.Epochs()
				var retained []int64
				for i, ep := range eps {
					if ep.FirstID > ep.ID {
						t.Fatalf("entry %d has inverted span %d..%d", i, ep.FirstID, ep.ID)
					}
					if i > 0 && eps[i].FirstID != eps[i-1].ID+1 {
						t.Fatalf("ring spans not contiguous: entry %d starts at %d after %d", i, eps[i].FirstID, eps[i-1].ID)
					}
					if want := int64(ep.ID - ep.FirstID + 1); ep.Seals != want {
						t.Fatalf("entry %d: Seals=%d, span width %d", i, ep.Seals, want)
					}
					var n int64
					for id := ep.FirstID; id <= ep.ID; id++ {
						retained = append(retained, sealElems[id]...)
						n += int64(len(sealElems[id]))
					}
					if ep.N != n {
						t.Fatalf("entry %d (span %d..%d): N=%d, but covered seals hold %d elements", i, ep.FirstID, ep.ID, ep.N, n)
					}
					if ep.Bytes != n*8 {
						t.Fatalf("entry %d: Bytes=%d, want %d", i, ep.Bytes, n*8)
					}
				}
				if len(eps) > 0 && eps[0].FirstID > 1 {
					evictions = true
				}
				retained = append(retained, pending...)
				if got := e.Stats().RetainedN; got != int64(len(retained)) {
					t.Fatalf("RetainedN=%d, reconstructed window holds %d", got, len(retained))
				}
				if len(retained) == 0 {
					continue
				}
				sort.Slice(retained, func(i, j int) bool { return retained[i] < retained[j] })
				for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99, 1} {
					b, err := e.Quantile(phi)
					if err != nil {
						t.Fatal(err)
					}
					truth := retained[b.Rank-1]
					if b.Lower > truth || truth > b.Upper {
						t.Fatalf("wave %d phi=%g: true %d outside [%d, %d]", wave, phi, truth, b.Lower, b.Upper)
					}
				}
				for i := 0; i < 4; i++ {
					x := retained[rng.Intn(len(retained))]
					lo, hi, err := e.RankBounds(x)
					if err != nil {
						t.Fatal(err)
					}
					trueRank := int64(sort.Search(len(retained), func(i int) bool { return retained[i] > x }))
					if trueRank < lo || trueRank > hi {
						t.Fatalf("wave %d: RankBounds(%d)=[%d,%d], true %d", wave, x, lo, hi, trueRank)
					}
				}
			}
			if !evictions {
				t.Fatal("test is vacuous: retention never evicted a compacted entry")
			}
			if e.Stats().Compactions == 0 {
				t.Fatal("test is vacuous: compaction never ran")
			}
		})
	}
}
