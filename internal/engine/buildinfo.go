package engine

import (
	"runtime/debug"
	"sync"
)

var (
	buildInfoOnce   sync.Once
	buildInfoCached map[string]string
)

// BuildInfo returns version/commit metadata baked into the binary
// (debug.ReadBuildInfo), exposed on /healthz so mixed-version clusters —
// a coordinator fronting workers rolled at different times — are
// diagnosable from the health endpoint alone.
func BuildInfo() map[string]string {
	buildInfoOnce.Do(func() {
		buildInfoCached = map[string]string{"go": "", "version": "", "vcs_revision": "", "vcs_time": ""}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfoCached["go"] = bi.GoVersion
		buildInfoCached["version"] = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfoCached["vcs_revision"] = s.Value
			case "vcs.time":
				buildInfoCached["vcs_time"] = s.Value
			}
		}
	})
	return buildInfoCached
}
