package engine

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"opaq/internal/core"
	"opaq/internal/runio"
)

func etagTestEngine(t *testing.T) *Engine[int64] {
	t.Helper()
	eng, err := New[int64](Options{
		Config:  core.Config{RunLen: 256, SampleSize: 32, Seed: 1},
		Stripes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func fetchSummary(t *testing.T, h http.Handler, ifNoneMatch string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/summary", nil)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestSummaryETagConditionalFetch pins the 304 protocol: the summary RPC
// carries a strong ETag, an If-None-Match hit answers 304 with no body,
// ingestion invalidates the tag, and the refetched body is byte-identical
// to a direct checkpoint.
func TestSummaryETagConditionalFetch(t *testing.T) {
	eng := etagTestEngine(t)
	codec := runio.Int64Codec{}
	h := NewHandlerCodec(eng, Int64Key, codec, HandlerOptions{})
	for i := int64(0); i < 1000; i++ {
		if err := eng.Ingest(i * 37); err != nil {
			t.Fatal(err)
		}
	}

	rec := fetchSummary(t, h, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("summary status %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if len(etag) < 4 || etag[0] != '"' || etag[len(etag)-1] != '"' {
		t.Fatalf("summary ETag %q is not a quoted entity tag", etag)
	}
	var want bytes.Buffer
	if err := eng.Checkpoint(&want, codec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Fatalf("summary body differs from checkpoint (%d vs %d bytes)", rec.Body.Len(), want.Len())
	}

	// Conditional refetch with the current tag: 304, tag echoed, no body.
	rec = fetchSummary(t, h, etag)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("conditional refetch status %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 carried %d body bytes", rec.Body.Len())
	}
	if got := rec.Header().Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q, want %q", got, etag)
	}

	// If-None-Match list forms and the wildcard also match.
	for _, header := range []string{`"zzz", ` + etag, "W/" + etag, "*"} {
		if rec := fetchSummary(t, h, header); rec.Code != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", header, rec.Code)
		}
	}
	// A stale or foreign tag gets the full body.
	if rec := fetchSummary(t, h, `"stale-tag"`); rec.Code != http.StatusOK {
		t.Fatalf("stale-tag fetch status %d, want 200", rec.Code)
	}

	// Ingestion advances the version: the old tag must miss, the new body
	// must be the post-ingest checkpoint.
	if err := eng.Ingest(1 << 40); err != nil {
		t.Fatal(err)
	}
	rec = fetchSummary(t, h, etag)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-ingest conditional fetch status %d, want 200", rec.Code)
	}
	fresh := rec.Header().Get("ETag")
	if fresh == etag {
		t.Fatalf("ETag %q unchanged across an ingest", fresh)
	}
	want.Reset()
	if err := eng.Checkpoint(&want, codec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Fatal("post-ingest summary body differs from checkpoint")
	}
}

// TestSummaryETagDistinctAcrossInstances pins the restart-safety
// property the coordinator cache relies on: two engine instances never
// issue the same tag, even at identical ingest versions with identical
// data — a worker rebooted from a checkpoint must not 304 against bytes
// cached from its previous life.
func TestSummaryETagDistinctAcrossInstances(t *testing.T) {
	a, b := etagTestEngine(t), etagTestEngine(t)
	for _, eng := range []*Engine[int64]{a, b} {
		if err := eng.IngestBatch([]int64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sa.Version != sb.Version {
		t.Fatalf("test setup: versions diverged (%d vs %d)", sa.Version, sb.Version)
	}
	if a.SummaryETag(sa) == b.SummaryETag(sb) {
		t.Fatalf("distinct engines issued the same ETag %q", a.SummaryETag(sa))
	}
}

// TestEtagMatch covers the header grammar corners directly.
func TestEtagMatch(t *testing.T) {
	const tag = `"abc.1"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{tag, true},
		{"*", true},
		{`"other"`, false},
		{`"other", ` + tag, true},
		{" " + tag + " ", true},
		{"W/" + tag, true},
		{`"abc.1`, false}, // unterminated quote is not our tag
	}
	for _, c := range cases {
		if got := ETagMatch(c.header, tag); got != c.want {
			t.Errorf("ETagMatch(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
