// Persistent-connection TCP ingest: the wire-speed path for writers that
// outgrow HTTP request framing. A client dials once, streams runio ingest
// frames (frame.go's length-prefixed, CRC-checked batches), and reads one
// ack or nack frame per batch. Frames route to tenants by their header
// field, so one connection can feed a whole registry.
//
// Semantics are at-least-once at batch granularity: every ack is flushed
// before the next frame is read, so an acked batch is resident in its
// engine (and included in any later checkpoint). A connection dropped
// mid-batch — by a network fault or a shutdown deadline — leaves the
// client unsure about its last unacked batch only; retrying it may
// duplicate those elements, never lose them.
//
// Error handling follows the framing: a per-batch problem (unknown
// tenant, backpressure, wrong codec kind) is nacked and the stream
// continues, because frame boundaries are still trustworthy; a framing
// problem (bad magic, checksum mismatch, truncation) nacks and drops the
// connection, because nothing after the corruption can be trusted.
package engine

import (
	"bufio"
	"cmp"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"opaq/internal/runio"
)

// TCPOptions tunes a TCPServer.
type TCPOptions struct {
	// MaxFramePayload caps one frame's payload bytes. 0 means
	// runio.DefaultMaxFramePayload.
	MaxFramePayload uint32
	// MaxPendingBytes sheds batches with a nack while the target engine's
	// unsealed bytes exceed it — the same rotate-then-check backpressure
	// the HTTP layer applies. 0 disables shedding (the engine's own
	// Options.MaxPending still applies).
	MaxPendingBytes int64
	// RetryAfter is the nack's retry hint. 0 means adaptive from the
	// engine's observed seal cadence, as in HandlerOptions.RetryAfter.
	RetryAfter time.Duration
}

// TCPServer serves the binary ingest protocol over persistent
// connections, for one engine or a whole registry.
type TCPServer[T cmp.Ordered] struct {
	reg    *Registry[T] // nil for single-engine servers
	single *Engine[T]   // nil for registry servers
	codec  runio.Codec[T]
	opts   TCPOptions

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup
}

// NewTCPServer returns a TCP ingest server feeding one engine. Frames
// with an empty tenant (and, for compatibility with registry clients,
// the DefaultTenant name) are accepted; other tenants are nacked.
func NewTCPServer[T cmp.Ordered](e *Engine[T], codec runio.Codec[T], opts TCPOptions) *TCPServer[T] {
	return &TCPServer[T]{single: e, codec: codec, opts: opts, conns: make(map[net.Conn]struct{})}
}

// NewRegistryTCPServer returns a TCP ingest server routing frames to
// registry tenants by their tenant field (empty means DefaultTenant).
func NewRegistryTCPServer[T cmp.Ordered](reg *Registry[T], codec runio.Codec[T], opts TCPOptions) *TCPServer[T] {
	return &TCPServer[T]{reg: reg, codec: codec, opts: opts, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean shutdown it is net.ErrClosed.
func (s *TCPServer[T]) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Shutdown drains the server: the listener closes immediately, handlers
// blocked between batches unblock and exit, and handlers mid-batch get
// until ctx's deadline to finish and ack; then remaining connections are
// closed forcibly. Acked batches are always resident (acks are flushed
// before the next read), so a forced close risks duplicating at most one
// unacked batch per connection, never losing one.
func (s *TCPServer[T]) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	for c := range s.conns {
		// Nudge handlers parked in a read between batches: the pending
		// read fails at once and the handler exits on the drain flag. A
		// handler mid-batch is past its read and completes normally.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.closeConns()
	<-done
	return ctx.Err()
}

// Close shuts down without a drain: listener and all connections close
// immediately.
func (s *TCPServer[T]) Close() error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.closeConns()
	s.wg.Wait()
	return nil
}

func (s *TCPServer[T]) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *TCPServer[T]) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// resolve maps a frame's tenant field to an engine.
func (s *TCPServer[T]) resolve(tenant string) (*Engine[T], error) {
	if s.single != nil {
		if tenant == "" || tenant == DefaultTenant {
			return s.single, nil
		}
		return nil, fmt.Errorf("%w: %q (single-engine listener)", ErrUnknownTenant, tenant)
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	return s.reg.Get(tenant)
}

// connState is one connection's reusable scratch: the payload, decoded
// batch and response buffers live as long as the connection, so a
// steady-state stream allocates nothing per batch.
type connState[T any] struct {
	payload []byte
	elems   []T
	resp    []byte
}

func (s *TCPServer[T]) handleConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 4<<10)
	var st connState[T]

	// nack sends a rejection; fatal when framing is lost.
	nack := func(retry uint32, msg string) bool {
		st.resp = runio.AppendNackFrame(st.resp[:0], retry, msg)
		if _, err := bw.Write(st.resp); err != nil {
			return false
		}
		return bw.Flush() == nil
	}

	for {
		if s.isDraining() {
			return
		}
		fh, err := runio.ReadFrameHeader(br, s.opts.MaxFramePayload)
		if err == io.EOF {
			return // clean close at a frame boundary
		}
		if err != nil {
			if s.isDraining() {
				return // Shutdown nudged the blocked read
			}
			// Covers ErrFrame (framing lost) and ErrFrameTooLarge (the
			// stream position is now mid-frame): nack and drop.
			nack(0, err.Error())
			return
		}
		if fh.Type != runio.FrameData {
			nack(0, fmt.Sprintf("frame type %d: only data frames ingest", fh.Type))
			return
		}
		if fh.Kind != s.codec.Kind() {
			// The next frame is still readable, but a client speaking the
			// wrong element type will never succeed: drop after the nack.
			nack(0, fmt.Sprintf("codec kind %d, server speaks %d", fh.Kind, s.codec.Kind()))
			return
		}
		st.payload, err = runio.ReadFramePayload(br, fh, st.payload)
		if err != nil {
			if s.isDraining() {
				return
			}
			nack(0, err.Error())
			return
		}
		tenant, elemBytes, err := runio.SplitDataPayload(st.payload, s.codec.Size())
		if err != nil {
			nack(0, err.Error())
			return
		}
		eng, err := s.resolve(tenant)
		if err != nil {
			// Frame boundaries are intact: nack this batch, keep serving.
			if !nack(0, err.Error()) {
				return
			}
			continue
		}
		st.elems, err = runio.DecodeFrameElems(s.codec, elemBytes, st.elems[:0])
		if err != nil {
			nack(0, err.Error())
			return
		}
		shed, err := shedNow(eng, s.opts.MaxPendingBytes)
		if err != nil {
			nack(0, err.Error())
			return
		}
		if shed {
			if !nack(retrySeconds(eng, s.opts.RetryAfter), "ingest backpressure: unsealed bytes over bound") {
				return
			}
			continue
		}
		if err := eng.IngestBatch(st.elems); err != nil {
			if errors.Is(err, ErrBacklogged) {
				if !nack(retrySeconds(eng, s.opts.RetryAfter), err.Error()) {
					return
				}
				continue
			}
			nack(0, err.Error())
			return
		}
		// Ack at batch granularity, flushed before the next read: once the
		// client sees it, the batch is durable in the engine.
		st.resp = runio.AppendAckFrame(st.resp[:0], uint32(len(st.elems)), eng.N())
		if _, err := bw.Write(st.resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}
