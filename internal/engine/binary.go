// Binary ingest over HTTP: POST /ingest (and /t/{tenant}/ingest) with
// Content-Type application/octet-stream carries runio ingest frames
// instead of the JSON body — the same length-prefixed, CRC-checked
// encoding the TCP listener (tcp.go) and the checkpoint format speak, so
// an element is encoded exactly once end to end.
//
// A request body holds one or more data frames; the response body is
// binary too: one ack frame covering every element ingested, followed by
// one nack frame when the request stopped early (backpressure or a
// protocol error). A client that sent n frames and reads an ack for fewer
// elements knows exactly which suffix to retry.
package engine

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"opaq/internal/runio"
)

// wireBuffers is the per-request scratch of one binary ingest: pooled on
// the handler so the steady state reuses one payload buffer, one decoded
// batch and one response buffer — zero allocations per element.
type wireBuffers[T any] struct {
	payload []byte
	elems   []T
	resp    []byte
}

func (h *handler[T]) getBufs() *wireBuffers[T] {
	if v := h.bufs.Get(); v != nil {
		return v.(*wireBuffers[T])
	}
	return &wireBuffers[T]{}
}

// isBinaryIngest reports whether the request carries ingest frames.
func isBinaryIngest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == "application/octet-stream"
}

// shedNow applies rotate-then-check backpressure against bound: a backlog
// of completed runs below the engine's own seal triggers is sealed first,
// and only unsealable pending state sheds. bound ≤ 0 never sheds.
func shedNow[T cmp.Ordered](eng *Engine[T], bound int64) (bool, error) {
	if bound <= 0 || eng.PendingBytes() < bound {
		return false, nil
	}
	if _, err := eng.Rotate(); err != nil {
		return false, err
	}
	return eng.PendingBytes() >= bound, nil
}

// retrySeconds is the whole-seconds Retry-After hint for a shed ingest,
// adapted to the engine's observed seal cadence (see retryAfterHint).
func retrySeconds[T cmp.Ordered](eng *Engine[T], explicit time.Duration) uint32 {
	iv, ok := eng.SealInterval()
	retry := retryAfterHint(explicit, iv, ok)
	return uint32((retry + time.Second - 1) / time.Second)
}

// ingestBinary handles one application/octet-stream ingest request.
func (h *handler[T]) ingestBinary(eng *Engine[T], w http.ResponseWriter, r *http.Request) {
	if h.codec == nil {
		writeJSON(w, http.StatusUnsupportedMediaType, map[string]string{
			"error": "binary ingest not enabled: handler has no codec",
		})
		return
	}
	if limit := h.opts.MaxBodyBytes; limit >= 0 {
		if limit == 0 {
			limit = DefaultMaxBodyBytes
		}
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	// The frame tenant, when set, must name the engine the route already
	// resolved — a safety rail against a client streaming one tenant's
	// frames at another tenant's URL.
	route := r.PathValue("tenant")
	if route == "" && h.reg != nil {
		route = DefaultTenant
	}

	bufs := h.getBufs()
	defer h.bufs.Put(bufs)
	var ingested int64
	status := http.StatusOK
	var nackRetry uint32
	var nackMsg string

frames:
	for {
		fh, err := runio.ReadFrameHeader(r.Body, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			status, nackMsg = http.StatusBadRequest, err.Error()
			break
		}
		if fh.Type != runio.FrameData {
			status, nackMsg = http.StatusBadRequest, fmt.Sprintf("frame type %d: only data frames ingest", fh.Type)
			break
		}
		if fh.Kind != h.codec.Kind() {
			status, nackMsg = http.StatusBadRequest, fmt.Sprintf("codec kind %d, engine speaks %d", fh.Kind, h.codec.Kind())
			break
		}
		bufs.payload, err = runio.ReadFramePayload(r.Body, fh, bufs.payload)
		if err != nil {
			status, nackMsg = http.StatusBadRequest, err.Error()
			break
		}
		tenant, elemBytes, err := runio.SplitDataPayload(bufs.payload, h.codec.Size())
		if err != nil {
			status, nackMsg = http.StatusBadRequest, err.Error()
			break
		}
		if tenant != "" && tenant != route {
			status, nackMsg = http.StatusBadRequest, fmt.Sprintf("frame tenant %q on route tenant %q", tenant, route)
			break
		}
		bufs.elems, err = runio.DecodeFrameElems(h.codec, elemBytes, bufs.elems[:0])
		if err != nil {
			status, nackMsg = http.StatusBadRequest, err.Error()
			break
		}
		// Per-frame admission, so a multi-frame body sheds mid-stream with
		// an exact ack for what landed instead of rejecting wholesale.
		shed, err := shedNow(eng, h.opts.MaxPendingBytes)
		if err != nil {
			writeErr(w, err)
			return
		}
		if shed {
			status = http.StatusTooManyRequests
			nackRetry = retrySeconds(eng, h.opts.RetryAfter)
			nackMsg = "ingest backpressure: unsealed bytes over bound"
			break
		}
		if err := eng.IngestBatch(bufs.elems); err != nil {
			if errors.Is(err, ErrBacklogged) {
				status = http.StatusTooManyRequests
				nackRetry = retrySeconds(eng, h.opts.RetryAfter)
				nackMsg = err.Error()
				break frames
			}
			writeErr(w, err)
			return
		}
		ingested += int64(len(bufs.elems))
	}

	bufs.resp = runio.AppendAckFrame(bufs.resp[:0], uint32(ingested), eng.N())
	if status != http.StatusOK {
		bufs.resp = runio.AppendNackFrame(bufs.resp, nackRetry, nackMsg)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.FormatUint(uint64(nackRetry), 10))
	}
	w.WriteHeader(status)
	w.Write(bufs.resp)
}
