package engine

import (
	"testing"
	"time"

	"opaq/internal/core"
)

// TestSealRateEWMA is the satellite's unit test on the rate estimator:
// no estimate before two seals, exact first gap, stability under a
// constant cadence, convergence after a rate change, and clock-step
// safety.
func TestSealRateEWMA(t *testing.T) {
	var r sealRate
	if _, ok := r.interval(); ok {
		t.Fatal("estimate before any seal")
	}
	t0 := time.Unix(1000, 0)
	r.observe(t0)
	if _, ok := r.interval(); ok {
		t.Fatal("estimate after a single seal (no gap yet)")
	}
	r.observe(t0.Add(100 * time.Millisecond))
	iv, ok := r.interval()
	if !ok || iv != 100*time.Millisecond {
		t.Fatalf("first gap: interval=%v ok=%v, want exactly 100ms", iv, ok)
	}
	// A constant cadence is a fixpoint of the EWMA.
	last := t0.Add(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		last = last.Add(100 * time.Millisecond)
		r.observe(last)
	}
	if iv, _ := r.interval(); iv != 100*time.Millisecond {
		t.Fatalf("constant cadence drifted to %v", iv)
	}
	// A 5× slowdown re-anchors within a handful of seals (α=0.25).
	for i := 0; i < 20; i++ {
		last = last.Add(500 * time.Millisecond)
		r.observe(last)
	}
	if iv, _ := r.interval(); iv < 450*time.Millisecond || iv > 500*time.Millisecond {
		t.Fatalf("after slowdown interval=%v, want ≈500ms", iv)
	}
	// A backwards clock step contributes a zero gap, never a negative
	// estimate.
	r.observe(last.Add(-time.Hour))
	if iv, _ := r.interval(); iv < 0 || iv > 500*time.Millisecond {
		t.Fatalf("after clock step interval=%v", iv)
	}
}

// TestRetryAfterHint pins the adaptation policy: explicit configuration
// wins, the observed cadence is clamped to [1s, 60s], and the floor
// covers both "no estimate yet" and sub-second cadences.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		explicit, seal time.Duration
		ok             bool
		want           time.Duration
	}{
		{5 * time.Second, 30 * time.Second, true, 5 * time.Second}, // explicit wins
		{0, 30 * time.Second, true, 30 * time.Second},              // adaptive
		{0, 3 * time.Hour, true, time.Minute},                      // clamped above
		{0, 200 * time.Millisecond, true, time.Second},             // floored below
		{0, 0, false, time.Second},                                 // no estimate yet
	}
	for _, c := range cases {
		if got := retryAfterHint(c.explicit, c.seal, c.ok); got != c.want {
			t.Errorf("retryAfterHint(%v, %v, %v) = %v, want %v", c.explicit, c.seal, c.ok, got, c.want)
		}
	}
}

// TestEngineSealIntervalObserved checks the wiring: only rotations that
// actually seal feed the estimator, and two sealing rotations are enough
// for SealInterval to report.
func TestEngineSealIntervalObserved(t *testing.T) {
	e, err := New[int64](Options{
		Config:  core.Config{RunLen: 16, SampleSize: 4},
		Stripes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Rotate(); err != nil { // nothing to seal
		t.Fatal(err)
	}
	if _, ok := e.SealInterval(); ok {
		t.Fatal("estimate from a rotation that sealed nothing")
	}
	batch := make([]int64, 16)
	for round := 0; round < 2; round++ {
		for i := range batch {
			batch[i] = int64(round*100 + i)
		}
		if err := e.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if sealed, err := e.Rotate(); err != nil || !sealed {
			t.Fatalf("round %d: sealed=%v err=%v", round, sealed, err)
		}
	}
	if iv, ok := e.SealInterval(); !ok || iv < 0 {
		t.Fatalf("after two seals: interval=%v ok=%v", iv, ok)
	}
}
