// Multi-tenant registry: one Engine per tenant (a column, a table, a
// metric) behind a single server — the optimizer-statistics story where
// every tracked column keeps its own independently configured quantile
// summary. Tenants checkpoint to separate files in a checkpoint directory
// and are restored from it on boot, so a restarted server resumes with
// warm statistics for every tenant.
package engine

import (
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// DefaultTenant is the tenant the registry handler's root (non-/t/)
// routes address, for backward compatibility with the single-engine API.
const DefaultTenant = "default"

// checkpointExt is the per-tenant checkpoint file suffix; the basename is
// the tenant name.
const checkpointExt = ".ckpt"

// optionsExt is the per-tenant Options sidecar suffix. The sidecar makes
// reboots fully faithful: a tenant created with its own epoch policy,
// retention or stripe count gets exactly that configuration back, not the
// registry defaults with a step-adapted SampleSize.
const optionsExt = ".opts.json"

// Registry errors.
var (
	// ErrUnknownTenant reports a lookup of a tenant that does not exist.
	ErrUnknownTenant = errors.New("engine: unknown tenant")
	// ErrTenantExists reports a Create of a tenant that already exists.
	ErrTenantExists = errors.New("engine: tenant already exists")
	// ErrTenantName reports a tenant name unfit for routing and filenames.
	ErrTenantName = errors.New("engine: invalid tenant name")
)

// tenantNameRe admits names safe to appear in URL paths and checkpoint
// filenames: must start with an alphanumeric, then alphanumerics, dot,
// underscore or dash, at most 64 runes total.
var tenantNameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidTenantName reports whether name can identify a tenant.
func ValidTenantName(name string) bool {
	return tenantNameRe.MatchString(name) && !strings.Contains(name, "..")
}

// RegistryOptions configures NewRegistry.
type RegistryOptions[T cmp.Ordered] struct {
	// Defaults is the engine configuration tenants are created with when
	// Create is not given explicit options, and the template boot-restored
	// tenants start from.
	Defaults Options
	// CheckpointDir, when non-empty, enables per-tenant persistence:
	// CheckpointAll writes <dir>/<tenant>.ckpt atomically, and NewRegistry
	// restores every *.ckpt found there. The directory is created if
	// missing.
	CheckpointDir string
	// Codec encodes elements in checkpoint files. Required when
	// CheckpointDir is set.
	Codec runio.Codec[T]
}

// Registry maps tenant names to independently configured engines. All
// methods are safe for concurrent use.
type Registry[T cmp.Ordered] struct {
	opts    RegistryOptions[T]
	mu      sync.RWMutex
	tenants map[string]*Engine[T]
	configs map[string]Options
	// fileMu serializes checkpoint-file writes and removals so a
	// CheckpointAll racing a Delete cannot recreate a deleted tenant's
	// file (which would resurrect it on the next boot).
	fileMu sync.Mutex
}

// NewRegistry returns a registry, restoring any per-tenant checkpoints
// found in CheckpointDir (restore-on-boot). A restored checkpoint whose
// step differs from the defaults adapts SampleSize so the engine can
// absorb it (RunLen must be divisible by the checkpoint's step).
func NewRegistry[T cmp.Ordered](opts RegistryOptions[T]) (*Registry[T], error) {
	if err := opts.Defaults.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.CheckpointDir != "" && opts.Codec == nil {
		return nil, fmt.Errorf("%w: CheckpointDir set without a Codec", core.ErrConfig)
	}
	r := &Registry[T]{
		opts:    opts,
		tenants: make(map[string]*Engine[T]),
		configs: make(map[string]Options),
	}
	if opts.CheckpointDir == "" {
		return r, nil
	}
	if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: checkpoint dir: %w", err)
	}
	ents, err := os.ReadDir(opts.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("engine: checkpoint dir: %w", err)
	}
	for _, ent := range ents {
		name, ok := strings.CutSuffix(ent.Name(), checkpointExt)
		if !ok || ent.IsDir() || !ValidTenantName(name) {
			continue
		}
		if err := r.restoreTenant(name, filepath.Join(opts.CheckpointDir, ent.Name())); err != nil {
			// The half-built registry is about to become unreachable:
			// stop the already-restored engines' rotation timers so a
			// retrying caller does not accumulate orphaned goroutines.
			r.Close()
			return nil, fmt.Errorf("engine: restoring tenant %q: %w", name, err)
		}
	}
	// A tenant created but never checkpointed leaves only an Options
	// sidecar; recreate it empty so the tenant itself survives the reboot.
	for _, ent := range ents {
		name, ok := strings.CutSuffix(ent.Name(), optionsExt)
		if !ok || ent.IsDir() || !ValidTenantName(name) {
			continue
		}
		if _, exists := r.tenants[name]; exists {
			continue
		}
		var o Options
		buf, err := os.ReadFile(filepath.Join(opts.CheckpointDir, ent.Name()))
		if err == nil {
			err = json.Unmarshal(buf, &o)
		}
		if err == nil {
			var eng *Engine[T]
			if eng, err = New[T](o); err == nil {
				r.tenants[name] = eng
				r.configs[name] = o
			}
		}
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("engine: restoring tenant %q from options sidecar: %w", name, err)
		}
	}
	return r, nil
}

// restoreTenant boots one tenant from its checkpoint file, preferring the
// Options sidecar (written at Create and on every CheckpointAll) over the
// registry defaults so the tenant comes back with its exact configuration.
func (r *Registry[T]) restoreTenant(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := core.LoadSummary[T](f, r.opts.Codec)
	if err != nil {
		return err
	}
	opts := r.opts.Defaults
	if buf, err := os.ReadFile(r.optionsPath(name)); err == nil {
		if err := json.Unmarshal(buf, &opts); err != nil {
			return fmt.Errorf("options sidecar: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("options sidecar: %w", err)
	}
	if step := int(sum.Step()); sum.N() > 0 && step != opts.Config.Step() {
		// The checkpoint fixes the step; re-derive SampleSize around it so
		// merges stay compatible. (With a sidecar this only triggers when
		// the files disagree — e.g. a hand-edited sidecar.)
		if step <= 0 || opts.Config.RunLen%step != 0 {
			return fmt.Errorf("%w: checkpoint step %d incompatible with RunLen %d",
				core.ErrIncompatible, step, opts.Config.RunLen)
		}
		opts.Config.SampleSize = opts.Config.RunLen / step
	}
	eng, err := New[T](opts)
	if err != nil {
		return err
	}
	if err := eng.absorb(sum, EpochRestore); err != nil {
		eng.Close()
		return err
	}
	r.tenants[name] = eng
	r.configs[name] = opts
	return nil
}

// Create adds a tenant. opts nil means the registry defaults; a non-nil
// opts configures this tenant independently (its own epoch policy,
// retention, stripes — only the element type is shared).
func (r *Registry[T]) Create(name string, opts *Options) (*Engine[T], error) {
	if !ValidTenantName(name) {
		return nil, fmt.Errorf("%w: %q", ErrTenantName, name)
	}
	o := r.opts.Defaults
	if opts != nil {
		o = *opts
	}
	r.mu.Lock()
	if _, ok := r.tenants[name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, name)
	}
	eng, err := New[T](o)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.tenants[name] = eng
	r.configs[name] = o
	r.mu.Unlock()
	if r.opts.CheckpointDir != "" {
		// Persist the configuration immediately; the checkpoint itself
		// follows on the next CheckpointAll. Same membership discipline as
		// CheckpointAll vs Delete: re-check under fileMu.
		r.fileMu.Lock()
		r.mu.RLock()
		_, alive := r.tenants[name]
		r.mu.RUnlock()
		var werr error
		if alive {
			werr = r.writeOptionsFile(name, o)
		}
		r.fileMu.Unlock()
		if werr != nil {
			return eng, fmt.Errorf("engine: persisting tenant %q options: %w", name, werr)
		}
	}
	return eng, nil
}

// TenantOptions returns the Options the tenant was created or restored
// with.
func (r *Registry[T]) TenantOptions(name string) (Options, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	o, ok := r.configs[name]
	if !ok {
		return Options{}, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return o, nil
}

// Get returns the tenant's engine.
func (r *Registry[T]) Get(name string) (*Engine[T], error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	eng, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return eng, nil
}

// Names returns the tenant names, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delete removes a tenant, stops its rotation timer and deletes its
// checkpoint file (so it does not resurrect on the next boot).
func (r *Registry[T]) Delete(name string) error {
	r.mu.Lock()
	eng, ok := r.tenants[name]
	delete(r.tenants, name)
	delete(r.configs, name)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	eng.Close()
	if r.opts.CheckpointDir != "" {
		// The map entry is already gone, so once fileMu is ours any
		// concurrent CheckpointAll either wrote the file before this
		// removal or will skip the tenant on its membership re-check.
		r.fileMu.Lock()
		err := os.Remove(r.checkpointPath(name))
		if oerr := os.Remove(r.optionsPath(name)); err == nil {
			err = oerr
		}
		r.fileMu.Unlock()
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// checkpointPath is the tenant's checkpoint file path.
func (r *Registry[T]) checkpointPath(name string) string {
	return filepath.Join(r.opts.CheckpointDir, name+checkpointExt)
}

// optionsPath is the tenant's Options sidecar path.
func (r *Registry[T]) optionsPath(name string) string {
	return filepath.Join(r.opts.CheckpointDir, name+optionsExt)
}

// writeOptionsFile atomically persists a tenant's Options sidecar. Callers
// hold fileMu.
func (r *Registry[T]) writeOptionsFile(name string, o Options) error {
	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return err
	}
	path := r.optionsPath(name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// CheckpointAll atomically writes every tenant's current summary to its
// own file in CheckpointDir. Tenants keep serving during the write; each
// file is an internally consistent snapshot. The first error is returned
// after attempting every tenant.
func (r *Registry[T]) CheckpointAll() error {
	if r.opts.CheckpointDir == "" {
		return fmt.Errorf("%w: registry has no CheckpointDir", core.ErrConfig)
	}
	r.mu.RLock()
	engines := make(map[string]*Engine[T], len(r.tenants))
	for n, e := range r.tenants {
		engines[n] = e
	}
	r.mu.RUnlock()
	var firstErr error
	for n, e := range engines {
		// Re-check membership under fileMu: a tenant deleted since the
		// snapshot above must not get its checkpoint file recreated.
		r.fileMu.Lock()
		r.mu.RLock()
		o, alive := r.configs[n]
		r.mu.RUnlock()
		var err error
		if alive {
			err = e.CheckpointFile(r.checkpointPath(n), r.opts.Codec)
			if err == nil {
				// Refresh the Options sidecar alongside, healing
				// checkpoint directories written before sidecars existed.
				err = r.writeOptionsFile(n, o)
			}
		}
		r.fileMu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: checkpointing tenant %q: %w", n, err)
		}
	}
	return firstErr
}

// Close stops every tenant's rotation timer. The registry is not usable
// afterwards for timer-driven rotation, but engines keep answering.
func (r *Registry[T]) Close() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.tenants {
		e.Close()
	}
	return nil
}
