package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"opaq/internal/core"
	"opaq/internal/metrics"
	"opaq/internal/parallel"
	"opaq/internal/runio"
)

func newTestEngine(t *testing.T, stripes int) *Engine[int64] {
	t.Helper()
	e, err := New[int64](Options{
		Config:  core.Config{RunLen: 512, SampleSize: 64, Seed: 42},
		Stripes: stripes,
		Buckets: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// assertEnclosure checks the paper's deterministic guarantee of one served
// quantile against an exact oracle of everything the engine had absorbed:
// the truth lies inside [Lower, Upper], and the element distance from
// either bound to the truth respects the summary's own Lemma 1/2
// accounting.
func assertEnclosure(t *testing.T, o *metrics.Oracle[int64], b core.Bounds[int64], phi float64) {
	t.Helper()
	truth := o.Quantile(phi)
	if b.Lower > truth || truth > b.Upper {
		t.Errorf("phi=%g: truth %d outside served enclosure [%d, %d]", phi, truth, b.Lower, b.Upper)
		return
	}
	below := int64(o.RankLT(truth) - o.RankLE(b.Lower))
	if below < 0 {
		below = 0
	}
	above := int64(o.RankLT(b.Upper) - o.RankLE(truth))
	if above < 0 {
		above = 0
	}
	if below > b.MaxBelow {
		t.Errorf("phi=%g: %d elements strictly between lower bound and truth, summary promised ≤ %d",
			phi, below, b.MaxBelow)
	}
	if above > b.MaxAbove {
		t.Errorf("phi=%g: %d elements strictly between truth and upper bound, summary promised ≤ %d",
			phi, above, b.MaxAbove)
	}
}

var torturePhis = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}

// TestEngineTortureConcurrent hammers one engine with concurrent ingesters
// and queriers (run under -race in CI). While data is in flight, queriers
// assert structural invariants of every answer; at quiesce points between
// ingest waves, every served quantile is checked against an exact oracle
// of everything ingested so far — the deterministic n/s enclosure must
// hold at every one of them.
func TestEngineTortureConcurrent(t *testing.T) {
	e := newTestEngine(t, 4)
	const (
		ingesters = 4
		rounds    = 5
		perRound  = 2500
		queriers  = 3
	)
	logs := make([][]int64, ingesters) // per-ingester logs; read only at quiesce points

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				phi := rng.Float64()
				if phi == 0 {
					phi = 0.5
				}
				b, err := e.Quantile(phi)
				switch {
				case errors.Is(err, core.ErrEmpty):
				case err != nil:
					t.Errorf("querier %d: Quantile(%g): %v", q, phi, err)
					return
				case b.Upper < b.Lower:
					t.Errorf("querier %d: inverted enclosure [%d, %d]", q, b.Lower, b.Upper)
					return
				}
				if lo, hi, err := e.RankBounds(rng.Int63n(1 << 40)); err == nil && lo > hi {
					t.Errorf("querier %d: inverted rank bounds [%d, %d]", q, lo, hi)
					return
				}
				a, c := rng.Int63n(1<<40), rng.Int63n(1<<40)
				if c < a {
					a, c = c, a
				}
				if sel, err := e.Selectivity(a, c); err == nil && (sel < 0 || sel > 1) {
					t.Errorf("querier %d: selectivity %g out of [0,1]", q, sel)
					return
				}
			}
		}(q)
	}

	for round := 0; round < rounds; round++ {
		var iwg sync.WaitGroup
		for g := 0; g < ingesters; g++ {
			iwg.Add(1)
			go func(g int) {
				defer iwg.Done()
				rng := rand.New(rand.NewSource(int64(round*ingesters + g + 1)))
				var batch []int64
				for i := 0; i < perRound; i++ {
					v := rng.Int63n(1 << 40)
					logs[g] = append(logs[g], v)
					if i%5 == 0 {
						if err := e.Ingest(v); err != nil {
							t.Errorf("ingester %d: %v", g, err)
							return
						}
						continue
					}
					batch = append(batch, v)
					if len(batch) >= 97 {
						if err := e.IngestBatch(batch); err != nil {
							t.Errorf("ingester %d: %v", g, err)
							return
						}
						batch = batch[:0]
					}
				}
				if err := e.IngestBatch(batch); err != nil {
					t.Errorf("ingester %d: %v", g, err)
				}
			}(g)
		}
		iwg.Wait()

		// Quiesce point: the exact oracle is everything ingested so far.
		var all []int64
		for g := range logs {
			all = append(all, logs[g]...)
		}
		snap, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Summary.N() != int64(len(all)) {
			t.Fatalf("round %d: snapshot covers %d elements, oracle has %d", round, snap.Summary.N(), len(all))
		}
		o := metrics.NewOracle(all)
		for _, phi := range torturePhis {
			b, err := snap.Summary.Bounds(phi)
			if err != nil {
				t.Fatalf("round %d: Bounds(%g): %v", round, phi, err)
			}
			assertEnclosure(t, o, b, phi)
		}
	}
	close(stop)
	qwg.Wait()

	// With ingestion quiesced, queries must be served from the cached
	// snapshot: no further merges however many arrive.
	if _, err := e.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	merges := e.Stats().Merges
	for i := 0; i < 200; i++ {
		if _, err := e.Quantile(0.25); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Merges; got != merges {
		t.Errorf("snapshot cache missed: %d merges grew to %d with no ingest in between", merges, got)
	}
	if st := e.Stats(); st.N != int64(ingesters*rounds*perRound) {
		t.Errorf("Stats.N = %d, want %d", st.N, ingesters*rounds*perRound)
	}
}

// TestEngineCheckpointRestoreRoundTrip pins the acceptance criterion: a
// checkpointed engine restores to a byte-identical summary, through both
// the writer and the atomic-file paths.
func TestEngineCheckpointRestoreRoundTrip(t *testing.T) {
	codec := runio.Int64Codec{}
	a := newTestEngine(t, 3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		batch := make([]int64, 40)
		for j := range batch {
			batch[j] = rng.Int63n(1 << 50)
		}
		if err := a.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	var direct bytes.Buffer
	if err := a.Checkpoint(&direct, codec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.sum")
	if err := a.CheckpointFile(path, codec); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), onDisk) {
		t.Fatal("Checkpoint and CheckpointFile wrote different bytes for the same state")
	}

	b := newTestEngine(t, 5) // stripe count need not match to restore
	if err := b.RestoreFile(path, codec); err != nil {
		t.Fatal(err)
	}
	if b.N() != a.N() {
		t.Fatalf("restored N = %d, want %d", b.N(), a.N())
	}
	var again bytes.Buffer
	if err := b.Checkpoint(&again, codec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), again.Bytes()) {
		t.Fatal("checkpoint → restore → checkpoint is not byte-identical")
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa.Summary.Parts(), sb.Summary.Parts()) {
		t.Fatal("restored snapshot summary differs structurally from the original")
	}

	// The restored engine keeps serving and ingesting.
	if err := b.Ingest(123); err != nil {
		t.Fatal(err)
	}
	if b.N() != a.N()+1 {
		t.Fatalf("post-restore ingest: N = %d", b.N())
	}
	if _, err := b.Quantile(0.5); err != nil {
		t.Fatal(err)
	}

	// A checkpoint with a different RunLen/SampleSize ratio must be
	// rejected, not silently merged.
	c, err := New[int64](Options{Config: core.Config{RunLen: 512, SampleSize: 128}, Stripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreFile(path, codec); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("mismatched-step restore = %v, want ErrIncompatible", err)
	}
}

// TestEngineCheckpointFileAtomic verifies a failed checkpoint never
// replaces an existing good one and leaves no temp litter.
func TestEngineCheckpointFileAtomic(t *testing.T) {
	codec := runio.Int64Codec{}
	e := newTestEngine(t, 2)
	if err := e.IngestBatch([]int64{5, 1, 4, 2, 3}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.sum")
	if err := e.CheckpointFile(path, codec); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint into a directory that disappears mid-flight is the easy
	// injectable failure: the target is unwritable.
	if err := e.CheckpointFile(filepath.Join(dir, "missing", "state.sum"), codec); err == nil {
		t.Fatal("checkpoint into missing directory should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, after) {
		t.Fatal("failed checkpoint corrupted the previous good one")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.Name() != "state.sum" {
			t.Errorf("checkpoint litter left behind: %s", ent.Name())
		}
	}
}

// TestEngineBulkLoad seeds an engine from a sharded build over a run file
// and layers live ingestion on top; the merged view must satisfy the
// enclosure guarantee over the union.
func TestEngineBulkLoad(t *testing.T) {
	const n = 40_000
	rng := rand.New(rand.NewSource(11))
	fileData := make([]int64, n)
	for i := range fileData {
		fileData[i] = rng.Int63n(1 << 45)
	}
	path := filepath.Join(t.TempDir(), "seed.run")
	if err := runio.WriteFile(path, runio.Int64Codec{}, fileData); err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, 4)
	fd, err := runio.OpenFile(path, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	sections, err := fd.Sections(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	datasets := make([]runio.Dataset[int64], len(sections))
	for i, s := range sections {
		datasets[i] = s
	}
	if err := e.BulkLoad(datasets, parallel.ShardOptions{Merge: parallel.SampleMerge}); err != nil {
		t.Fatal(err)
	}
	if e.N() != n {
		t.Fatalf("bulk-loaded N = %d, want %d", e.N(), n)
	}
	streamed := make([]int64, 5000)
	for i := range streamed {
		streamed[i] = rng.Int63n(1 << 45)
	}
	if err := e.IngestBatch(streamed); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Summary.N() != int64(n+len(streamed)) {
		t.Fatalf("snapshot N = %d, want %d", snap.Summary.N(), n+len(streamed))
	}
	o := metrics.NewOracle(append(append([]int64(nil), fileData...), streamed...))
	for _, phi := range torturePhis {
		b, err := snap.Summary.Bounds(phi)
		if err != nil {
			t.Fatal(err)
		}
		assertEnclosure(t, o, b, phi)
	}
	if snap.Hist == nil {
		t.Fatal("non-empty snapshot must carry a histogram")
	}
}

// TestEngineEmpty pins the empty-engine behaviors: structured ErrEmpty
// answers, a well-formed empty snapshot, and zeroed stats.
func TestEngineEmpty(t *testing.T) {
	e := newTestEngine(t, 2)
	if _, err := e.Quantile(0.5); !errors.Is(err, core.ErrEmpty) {
		t.Errorf("Quantile on empty engine = %v, want ErrEmpty", err)
	}
	if _, err := e.Selectivity(1, 2); !errors.Is(err, core.ErrEmpty) {
		t.Errorf("Selectivity on empty engine = %v, want ErrEmpty", err)
	}
	if _, _, err := e.EstimateRange(1, 2); !errors.Is(err, core.ErrEmpty) {
		t.Errorf("EstimateRange on empty engine = %v, want ErrEmpty", err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Summary.N() != 0 || snap.Hist != nil {
		t.Errorf("empty snapshot: N=%d hist=%v", snap.Summary.N(), snap.Hist)
	}
	if st := e.Stats(); st.N != 0 || st.Stripes != 2 {
		t.Errorf("empty stats: %+v", st)
	}
	// IngestBatch of nothing is a no-op, not a version bump.
	v := e.Stats().Version
	if err := e.IngestBatch(nil); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Version != v {
		t.Error("empty batch bumped the ingest version")
	}
}

// TestEngineOptionValidation pins constructor errors.
func TestEngineOptionValidation(t *testing.T) {
	if _, err := New[int64](Options{Config: core.Config{RunLen: 10, SampleSize: 3}}); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := New[int64](Options{Config: core.Config{RunLen: 8, SampleSize: 2}, Stripes: -1}); err == nil {
		t.Error("negative stripes should fail")
	}
	if _, err := New[int64](Options{Config: core.Config{RunLen: 8, SampleSize: 2}, Buckets: -3}); err == nil {
		t.Error("negative buckets should fail")
	}
}
