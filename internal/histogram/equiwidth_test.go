package histogram

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/metrics"
	"opaq/internal/runio"
)

func TestEquiWidthValidation(t *testing.T) {
	ds := runio.NewMemoryDataset([]int64{1, 2, 3}, 8)
	if _, err := BuildEquiWidth(ds, 0); err == nil {
		t.Error("0 buckets should fail")
	}
	empty := runio.NewMemoryDataset([]int64{}, 8)
	if _, err := BuildEquiWidth(empty, 4); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestEquiWidthUniformIsAccurate(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(3, 1_000_000), 100_000)
	ds := runio.NewMemoryDataset(xs, 8)
	h, err := BuildEquiWidth(ds, 20)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 100_000 || h.Buckets() != 20 {
		t.Fatalf("N=%d buckets=%d", h.N(), h.Buckets())
	}
	o := metrics.NewOracle(xs)
	// On uniform data equi-width is fine: errors within a bucket or so.
	for _, r := range [][2]int64{{100_000, 300_000}, {0, 999_999}, {450_000, 550_000}} {
		est := h.EstimateRange(r[0], r[1])
		truth := float64(o.CountIn(r[0], r[1]))
		if math.Abs(est-truth) > float64(h.N())/20+500 {
			t.Errorf("uniform range [%d,%d]: est %g vs truth %g", r[0], r[1], est, truth)
		}
	}
}

// The paper's motivating comparison: under Zipf skew, equi-depth
// boundaries from OPAQ beat equi-width on narrow range predicates around
// the hot region, because equi-width buckets hide the mass concentration.
func TestEquiDepthBeatsEquiWidthUnderSkew(t *testing.T) {
	// Skew concentrated in value space: value v drawn with P(v=i) ∝ 1/i,
	// so the bottom sliver of the value range holds most of the mass —
	// the regime where fixed-width buckets assume uniformity and fail
	// (the paper's [Koo80]/[PS84]/[MD88] discussion). A Weyl-scattered
	// Zipf would not show this; the concentration must be in values.
	rng := rand.New(rand.NewSource(7))
	const universe = 50_000
	cdf := make([]float64, universe)
	s := 0.0
	for i := 0; i < universe; i++ {
		s += 1 / float64(i+1)
		cdf[i] = s
	}
	for i := range cdf {
		cdf[i] /= s
	}
	xs := make([]int64, 200_000)
	for i := range xs {
		u := rng.Float64()
		xs[i] = int64(sort.SearchFloat64s(cdf, u)) * 1000
	}
	ds := runio.NewMemoryDataset(xs, 8)
	o := metrics.NewOracle(xs)

	const B = 20
	ew, err := BuildEquiWidth(ds, B)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := core.BuildFromDataset[int64](ds, core.Config{RunLen: 20_000, SampleSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := Build(sum, B)
	if err != nil {
		t.Fatal(err)
	}

	// Range predicates around the populated quantile region.
	var edErr, ewErr float64
	for _, span := range [][2]float64{{0.05, 0.15}, {0.2, 0.3}, {0.4, 0.6}, {0.7, 0.8}, {0.85, 0.95}} {
		a, b := o.Quantile(span[0]), o.Quantile(span[1])
		if b < a {
			a, b = b, a
		}
		truth := float64(o.CountIn(a, b))
		edErr += math.Abs(ed.EstimateRange(a, b) - truth)
		ewErr += math.Abs(ew.EstimateRange(a, b) - truth)
	}
	if edErr >= ewErr {
		t.Errorf("equi-depth total error %g should beat equi-width %g under heavy skew", edErr, ewErr)
	}
}

func TestEquiWidthEdges(t *testing.T) {
	xs := []int64{10, 10, 10, 20, 30}
	ds := runio.NewMemoryDataset(xs, 8)
	h, err := BuildEquiWidth(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimateRange(30, 10); got != 0 {
		t.Errorf("inverted range = %g", got)
	}
	if got := h.EstimateRange(-100, 100); math.Abs(got-5) > 0.01 {
		t.Errorf("full range = %g, want 5", got)
	}
	if s := h.Selectivity(-100, 100); math.Abs(s-1) > 0.01 {
		t.Errorf("full selectivity = %g", s)
	}
}
