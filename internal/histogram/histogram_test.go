package histogram

import (
	"math"
	"testing"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/metrics"
)

func buildSummary(t *testing.T, xs []int64) *core.Summary[int64] {
	t.Helper()
	s, err := core.BuildFromSlice(xs, core.Config{RunLen: 10_000, SampleSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	s := buildSummary(t, datagen.Generate(datagen.NewUniform(1, 100), 10_000))
	if _, err := Build(s, 0); err == nil {
		t.Fatal("0 buckets should fail")
	}
	empty, err := core.BuildFromSlice[int64](nil, core.Config{RunLen: 4, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(empty, 4); err == nil {
		t.Fatal("empty summary should fail")
	}
}

func TestBucketsAreEquiDepth(t *testing.T) {
	xs, err := datagen.PaperDataset("zipf", 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSummary(t, xs)
	const B = 10
	h, err := Build(s, B)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != B {
		t.Fatalf("Buckets = %d", h.Buckets())
	}
	o := metrics.NewOracle(xs)
	// Each bucket's true population must be within depth ± slack (+dup mass:
	// equal keys cannot be split across a boundary, so heavy duplicates can
	// legitimately overfill one bucket; measure against the looser of the
	// two).
	prevLE := 0
	for i, b := range h.Boundaries() {
		le := o.RankLE(b)
		pop := le - prevLE
		prevLE = le
		tol := float64(h.SlackRanks())*2 + float64(o.CountEq(b))
		if math.Abs(float64(pop)-float64(h.N())/B) > float64(h.N())/B+tol {
			t.Errorf("bucket %d population %d deviates badly from depth %g", i, pop, float64(h.N())/B)
		}
	}
}

func TestEstimateLEMonotone(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(5, 1_000_000), 50_000)
	h, err := Build(buildSummary(t, xs), 20)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := int64(0); x <= 1_000_000; x += 10_000 {
		got := h.EstimateLE(x)
		if got < prev {
			t.Fatalf("EstimateLE not monotone at %d: %g < %g", x, got, prev)
		}
		prev = got
	}
	if h.EstimateLE(-5) != 0 {
		t.Error("EstimateLE below min should be 0")
	}
	if got := h.EstimateLE(1 << 40); got != float64(h.N()) {
		t.Errorf("EstimateLE above max = %g, want n", got)
	}
}

func TestRangeSelectivityAccuracy(t *testing.T) {
	// The headline application check: on uniform and skewed data, range
	// selectivity error stays within the deterministic ceiling.
	for _, dist := range []string{"uniform", "zipf"} {
		xs, err := datagen.PaperDataset(dist, 100_000, 11)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Build(buildSummary(t, xs), 20)
		if err != nil {
			t.Fatal(err)
		}
		o := metrics.NewOracle(xs)
		ceiling := h.MaxRangeError()
		ranges := [][2]float64{{0.1, 0.3}, {0.25, 0.75}, {0.0, 1.0}, {0.45, 0.55}, {0.9, 0.95}}
		for _, r := range ranges {
			a := o.Quantile(r[0] + 1e-9)
			b := o.Quantile(r[1])
			truth := float64(o.CountIn(a, b))
			est := h.EstimateRange(a, b)
			if err := math.Abs(est - truth); err > ceiling+float64(o.CountEq(a))+float64(o.CountEq(b)) {
				t.Errorf("%s range [%g,%g]: estimate %g vs truth %g exceeds ceiling %g",
					dist, r[0], r[1], est, truth, ceiling)
			}
		}
		// Selectivity must be a fraction.
		if s := h.Selectivity(o.Quantile(0.2), o.Quantile(0.4)); s < 0 || s > 1 {
			t.Errorf("%s: selectivity %g out of [0,1]", dist, s)
		}
	}
}

func TestEstimateRangeEdgeCases(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(7, 1000), 10_000)
	h, err := Build(buildSummary(t, xs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.EstimateRange(500, 400) != 0 {
		t.Error("inverted range should estimate 0")
	}
	if got := h.EstimateRange(-100, 1<<40); math.Abs(got-float64(h.N())) > 1 {
		t.Errorf("full range = %g, want ≈%d", got, h.N())
	}
}

func TestSingleBucket(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(9, 1000), 5000)
	h, err := Build(buildSummary(t, xs), 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 1 {
		t.Fatalf("Buckets = %d", h.Buckets())
	}
	if got := h.EstimateLE(1 << 40); got != float64(h.N()) {
		t.Errorf("EstimateLE(+inf) = %g", got)
	}
}

// Regression: on heavily skewed data a heavy hitter fills several buckets,
// so adjacent equi-depth boundaries collide on its value. The estimator
// used to binary-search to the FIRST equal boundary and undercount the
// elements ≤ the heavy hitter by whole buckets; it must attribute every
// bucket the value spans. Checked against exact ranks on Zipf data and on
// an adversarial constant-heavy input.
func TestEstimateLEDuplicateBoundaries(t *testing.T) {
	// Maximal-skew Zipf (the paper's param 0 end): the hottest key draws
	// ~11% of all mass, so with 2.5%-deep buckets boundaries collide.
	g, err := datagen.NewZipf(17, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	zipf := datagen.Generate(g, 100_000)
	// Adversarial: 70% of the data is one value.
	heavy := make([]int64, 100_000)
	for i := range heavy {
		if i%10 < 7 {
			heavy[i] = 500
		} else {
			heavy[i] = int64(i % 1000)
		}
	}
	for name, xs := range map[string][]int64{"zipf": zipf, "heavy": heavy} {
		const B = 40
		h, err := Build(buildSummary(t, xs), B)
		if err != nil {
			t.Fatal(err)
		}
		o := metrics.NewOracle(xs)
		// A per-point estimate may legitimately be off by half a bucket of
		// interpolation plus the boundary slack; a first-equal-boundary
		// search is off by whole extra buckets on the heavy hitters.
		tol := h.depth + float64(h.SlackRanks())
		dup := 0
		bs := h.Boundaries()
		for i := 1; i < len(bs); i++ {
			if bs[i] == bs[i-1] {
				dup++
			}
		}
		if dup == 0 {
			t.Fatalf("%s: no duplicate boundaries — scenario does not exercise the regression", name)
		}
		probes := append([]int64(nil), bs...)
		probes = append(probes, 0, 1, 2, 100, 499, 500, 501, 999)
		for _, x := range probes {
			est := h.EstimateLE(x)
			truth := float64(o.RankLE(x))
			if math.Abs(est-truth) > tol {
				t.Errorf("%s: EstimateLE(%d) = %g, exact %g, |err| %g exceeds depth+slack = %g",
					name, x, est, truth, math.Abs(est-truth), tol)
			}
		}
		// Ranges anchored at a duplicated boundary, in both roles: the
		// heavy hitter's whole mass belongs to [hh, b] and none of it to
		// [a, hh). Both must respect the documented ceiling.
		ceiling := h.MaxRangeError()
		for _, r := range [][2]int64{
			{probes[len(bs)/2], bs[len(bs)-1]}, // from a mid boundary to max
			{bs[0], bs[len(bs)/2]},             // from min-side boundary to a mid one
			{bs[len(bs)/2], bs[len(bs)/2]},     // degenerate [x, x] on a boundary
		} {
			if r[1] < r[0] {
				r[0], r[1] = r[1], r[0]
			}
			est := h.EstimateRange(r[0], r[1])
			truth := float64(o.CountIn(r[0], r[1]))
			if math.Abs(est-truth) > ceiling {
				t.Errorf("%s: EstimateRange(%d, %d) = %g, exact %g, |err| %g exceeds ceiling %g",
					name, r[0], r[1], est, truth, math.Abs(est-truth), ceiling)
			}
		}
	}
}

// Regression for the specific failure the EstimateLE fix could have
// introduced: a range whose LOWER endpoint is the heavy hitter must not
// subtract the hitter's duplicate mass from its own range.
func TestEstimateRangeHeavyHitterEndpoints(t *testing.T) {
	heavy := make([]int64, 100_000)
	for i := range heavy {
		if i%10 < 7 {
			heavy[i] = 500
		} else {
			heavy[i] = int64(i % 1000)
		}
	}
	h, err := Build(buildSummary(t, heavy), 40)
	if err != nil {
		t.Fatal(err)
	}
	o := metrics.NewOracle(heavy)
	ceiling := h.MaxRangeError()
	for _, r := range [][2]int64{{500, 999}, {0, 500}, {500, 500}, {499, 501}} {
		est := h.EstimateRange(r[0], r[1])
		truth := float64(o.CountIn(r[0], r[1]))
		if math.Abs(est-truth) > ceiling {
			t.Errorf("EstimateRange(%d, %d) = %g, exact %g, |err| %g exceeds ceiling %g",
				r[0], r[1], est, truth, math.Abs(est-truth), ceiling)
		}
	}
}
