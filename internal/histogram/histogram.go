// Package histogram builds equi-depth histograms from OPAQ quantile
// summaries and answers range-selectivity queries — the query-optimizer
// application the paper's introduction motivates ("quantile algorithms can
// generate equi-depth histograms, which have been used to estimate query
// result sizes").
//
// An equi-depth histogram with B buckets places its boundaries at the
// 1/B, 2/B, …, (B−1)/B quantiles, so each bucket holds ≈ n/B elements.
// With OPAQ bounds, every boundary is within n/s elements of the ideal
// split, giving a deterministic ceiling on the selectivity error of any
// range predicate — the property that made equi-depth histograms viable
// for skewed data where equi-width histograms fail.
package histogram

import (
	"cmp"
	"fmt"

	"opaq/internal/core"
)

// EquiDepth is an equi-depth histogram over int64-comparable keys.
type EquiDepth[T cmp.Ordered] struct {
	// boundaries[i] is the upper boundary of bucket i (inclusive); the last
	// boundary is the dataset maximum.
	boundaries []T
	min        T
	n          int64
	depth      float64 // ideal elements per bucket, n/B
	// slack is the deterministic per-boundary rank uncertainty inherited
	// from the summary (≈ n/s).
	slack int64
}

// Build constructs a B-bucket equi-depth histogram from an OPAQ summary,
// using the upper bound of each quantile enclosure as the bucket boundary.
func Build[T cmp.Ordered](s *core.Summary[T], buckets int) (*EquiDepth[T], error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: need ≥1 bucket, got %d", buckets)
	}
	if s.N() == 0 {
		return nil, core.ErrEmpty
	}
	h := &EquiDepth[T]{
		min:   s.Min(),
		n:     s.N(),
		depth: float64(s.N()) / float64(buckets),
		slack: s.ErrorBound(),
	}
	for i := 1; i < buckets; i++ {
		b, err := s.Bounds(float64(i) / float64(buckets))
		if err != nil {
			return nil, err
		}
		h.boundaries = append(h.boundaries, b.Upper)
	}
	h.boundaries = append(h.boundaries, s.Max())
	return h, nil
}

// Buckets returns the number of buckets.
func (h *EquiDepth[T]) Buckets() int { return len(h.boundaries) }

// Boundaries returns the bucket upper boundaries (ascending; last is the
// maximum). Callers must not modify the slice.
func (h *EquiDepth[T]) Boundaries() []T { return h.boundaries }

// N returns the number of elements the histogram summarizes.
func (h *EquiDepth[T]) N() int64 { return h.n }

// SlackRanks returns the per-boundary rank uncertainty in elements.
func (h *EquiDepth[T]) SlackRanks() int64 { return h.slack }

// EstimateLE estimates the number of elements ≤ x by locating x's bucket
// and interpolating within it (the classic equi-depth estimator: each
// bucket holds depth elements; the fraction inside the bucket is assumed
// uniform — here in rank space, i.e. half-bucket resolution at worst).
//
// On heavily skewed data, adjacent boundaries collide: a value holding
// more than a bucket's worth of duplicates is the upper boundary of every
// bucket it fills. All those buckets lie at or below x, so the estimate
// counts through the LAST boundary equal to x — stopping at the first one
// (as a naive lower-bound search does) undercounts by whole buckets.
func (h *EquiDepth[T]) EstimateLE(x T) float64 {
	if x < h.min {
		return 0
	}
	// ub is the number of boundaries ≤ x: everything in buckets 0..ub-1 is
	// ≤ their boundaries ≤ x, including every bucket a duplicated boundary
	// value spans.
	lo, hi := 0, len(h.boundaries)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.boundaries[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ub := lo
	if ub == len(h.boundaries) {
		return float64(h.n)
	}
	if ub > 0 && h.boundaries[ub-1] == x {
		return float64(ub) * h.depth
	}
	// x lies strictly inside bucket ub; attribute half the bucket (expected
	// rank of a uniformly placed point within its bucket).
	return (float64(ub) + 0.5) * h.depth
}

// estimateLT estimates the number of elements strictly below x —
// EstimateLE's half-open counterpart. On a duplicated boundary value the
// two differ by every bucket the duplicates span: buckets closing strictly
// below x count in full, the value's own mass not at all. Deriving the
// strict count by shifting EstimateLE would re-include that mass and
// wreck ranges that start at a heavy hitter.
func (h *EquiDepth[T]) estimateLT(x T) float64 {
	if x <= h.min {
		return 0
	}
	// lb: first boundary ≥ x. Buckets 0..lb-1 close strictly below x.
	lo, hi := 0, len(h.boundaries)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.boundaries[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(h.boundaries) {
		return float64(h.n)
	}
	if h.boundaries[lo] == x {
		return float64(lo) * h.depth
	}
	// x interior to bucket lo: same interpolation as EstimateLE (the two
	// estimates differ only by duplicates of a non-boundary x, assumed
	// below bucket resolution).
	return (float64(lo) + 0.5) * h.depth
}

// EstimateRange estimates the number of elements in the closed range
// [a, b] — the selectivity numerator of a range predicate. The closed
// count is elements ≤ b minus elements < a, each endpoint estimated at
// half-bucket resolution, so the error stays within MaxRangeError even
// when an endpoint is a heavy hitter spanning several buckets.
func (h *EquiDepth[T]) EstimateRange(a, b T) float64 {
	if b < a {
		return 0
	}
	est := h.EstimateLE(b) - h.estimateLT(a)
	if est < 0 {
		est = 0
	}
	if est > float64(h.n) {
		est = float64(h.n)
	}
	return est
}

// Selectivity estimates the fraction of elements in [a, b].
func (h *EquiDepth[T]) Selectivity(a, b T) float64 {
	return h.EstimateRange(a, b) / float64(h.n)
}

// MaxRangeError returns a deterministic ceiling on the absolute error of
// EstimateRange, in elements: one bucket of interpolation uncertainty per
// endpoint plus the OPAQ boundary slack per endpoint.
func (h *EquiDepth[T]) MaxRangeError() float64 {
	return 2 * (h.depth + float64(h.slack))
}
