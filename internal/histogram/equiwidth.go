package histogram

import (
	"cmp"
	"fmt"
	"io"

	"opaq/internal/runio"
)

// EquiWidth is the classic fixed-width histogram the paper's introduction
// contrasts equi-depth histograms against: "equi-depth histograms have
// not worked well for range queries when data distribution skew has been
// high" refers to the prior art's failure mode, which OPAQ fixes by
// making accurate equi-depth boundaries cheap. EquiWidth is provided so
// the selectivity comparison (equi-width vs OPAQ-derived equi-depth under
// Zipf skew) can be reproduced; see the package tests.
//
// Unlike EquiDepth, building it requires knowing min/max up front, so the
// constructor takes its own pass over the dataset.
type EquiWidth struct {
	min, max int64
	width    float64
	counts   []int64
	n        int64
}

// BuildEquiWidth scans ds once and counts elements into B fixed-width
// buckets spanning [min, max].
func BuildEquiWidth(ds runio.Dataset[int64], buckets int) (*EquiWidth, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: need ≥1 bucket, got %d", buckets)
	}
	if ds.Count() == 0 {
		return nil, fmt.Errorf("histogram: empty dataset")
	}
	// Pass 1: extrema.
	var minV, maxV int64
	first := true
	if err := scanInt64(ds, func(v int64) {
		if first {
			minV, maxV = v, v
			first = false
			return
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}); err != nil {
		return nil, err
	}
	h := &EquiWidth{
		min:    minV,
		max:    maxV,
		width:  (float64(maxV) - float64(minV) + 1) / float64(buckets),
		counts: make([]int64, buckets),
	}
	// Pass 2: counts.
	if err := scanInt64(ds, func(v int64) {
		h.counts[h.bucket(v)]++
		h.n++
	}); err != nil {
		return nil, err
	}
	return h, nil
}

// scanInt64 runs fn over one sequential pass of ds, owning the reader so
// every exit path — including a mid-scan read error — releases the scan.
func scanInt64(ds runio.Dataset[int64], fn func(v int64)) error {
	rr, err := ds.Runs(64 * 1024)
	if err != nil {
		return err
	}
	defer rr.Close()
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for _, v := range run {
			fn(v)
		}
	}
}

func (h *EquiWidth) bucket(v int64) int {
	b := int((float64(v) - float64(h.min)) / h.width)
	if b < 0 {
		b = 0
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	return b
}

// Buckets returns the bucket count.
func (h *EquiWidth) Buckets() int { return len(h.counts) }

// N returns the element count.
func (h *EquiWidth) N() int64 { return h.n }

// EstimateRange estimates the number of elements in [a, b] assuming
// intra-bucket uniformity — the assumption that collapses under skew.
func (h *EquiWidth) EstimateRange(a, b int64) float64 {
	if b < a || h.n == 0 {
		return 0
	}
	lo, hi := clamp(a, h.min, h.max), clamp(b, h.min, h.max)
	ba, bb := h.bucket(lo), h.bucket(hi)
	est := 0.0
	for i := ba; i <= bb; i++ {
		bucketLo := float64(h.min) + float64(i)*h.width
		bucketHi := bucketLo + h.width
		overlapLo := maxF(bucketLo, float64(lo))
		overlapHi := minF(bucketHi, float64(hi)+1)
		if overlapHi <= overlapLo {
			continue
		}
		est += float64(h.counts[i]) * (overlapHi - overlapLo) / h.width
	}
	if est > float64(h.n) {
		est = float64(h.n)
	}
	return est
}

// Selectivity estimates the fraction of elements in [a, b].
func (h *EquiWidth) Selectivity(a, b int64) float64 {
	return h.EstimateRange(a, b) / float64(h.n)
}

func clamp[T cmp.Ordered](v, lo, hi T) T {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
