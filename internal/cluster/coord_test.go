package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"opaq/internal/core"
	"opaq/internal/engine"
	"opaq/internal/runio"
)

// testWorker is one worker process in miniature: an engine registry with
// a checkpoint directory behind the registry HTTP handler, on a fixed
// address so it can be killed and restarted in place.
type testWorker struct {
	t    *testing.T
	addr string
	opts engine.RegistryOptions[int64]
	reg  *engine.Registry[int64]
	srv  *http.Server
}

func testWorkerDefaults() engine.Options {
	return engine.Options{
		Config:  core.Config{RunLen: 512, SampleSize: 64, Seed: 1},
		Stripes: 2,
	}
}

func newTestWorker(t *testing.T) *testWorker {
	t.Helper()
	w := &testWorker{
		t: t,
		opts: engine.RegistryOptions[int64]{
			Defaults:      testWorkerDefaults(),
			CheckpointDir: t.TempDir(),
			Codec:         runio.Int64Codec{},
		},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.addr = ln.Addr().String()
	w.boot(ln)
	t.Cleanup(func() {
		if w.srv != nil {
			w.srv.Close()
		}
		if w.reg != nil {
			w.reg.Close()
		}
	})
	return w
}

// boot builds a fresh registry over the checkpoint dir and serves on ln.
func (w *testWorker) boot(ln net.Listener) {
	w.t.Helper()
	reg, err := engine.NewRegistry(w.opts)
	if err != nil {
		w.t.Fatal(err)
	}
	w.reg = reg
	w.srv = &http.Server{Handler: engine.NewRegistryHandler(reg, engine.Int64Key, engine.HandlerOptions{})}
	go w.srv.Serve(ln)
}

func (w *testWorker) url() string { return "http://" + w.addr }

// stopHTTP kills only the HTTP server — the process equivalent of a
// network partition; the registry (and its data) stays alive for restart.
func (w *testWorker) stopHTTP() {
	w.t.Helper()
	w.srv.Close()
	w.srv = nil
}

// restartHTTP re-serves the live registry on the worker's address.
func (w *testWorker) restartHTTP() {
	w.t.Helper()
	ln := w.relisten()
	w.srv = &http.Server{Handler: engine.NewRegistryHandler(w.reg, engine.Int64Key, engine.HandlerOptions{})}
	go w.srv.Serve(ln)
}

// kill is a graceful worker shutdown: checkpoint everything, then tear
// down the server and the registry (rotation timers included).
func (w *testWorker) kill() {
	w.t.Helper()
	if err := w.reg.CheckpointAll(); err != nil {
		w.t.Fatal(err)
	}
	w.srv.Close()
	w.srv = nil
	w.reg.Close()
	w.reg = nil
}

// restart boots a fresh registry from the checkpoint dir — the process
// equivalent of the worker coming back after a crash+redeploy — and
// serves it on the same address.
func (w *testWorker) restart() {
	w.t.Helper()
	w.boot(w.relisten())
}

// relisten rebinds the worker's fixed address, retrying briefly while the
// kernel releases it.
func (w *testWorker) relisten() net.Listener {
	w.t.Helper()
	var ln net.Listener
	var err error
	for try := 0; try < 50; try++ {
		if ln, err = net.Listen("tcp", w.addr); err == nil {
			return ln
		}
		time.Sleep(20 * time.Millisecond)
	}
	w.t.Fatalf("re-listening on %s: %v", w.addr, err)
	return nil
}

func testCoordinator(t *testing.T, spread int, workers ...*testWorker) *Coordinator[int64] {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.url()
	}
	c, err := New(Options[int64]{
		Workers: urls,
		Spread:  spread,
		Codec:   runio.Int64Codec{},
		Parse:   engine.Int64Key,
		Client:  &WorkerClient{HTTP: &http.Client{Timeout: 2 * time.Second}, Backoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// doJSON drives the coordinator handler directly (no extra listener) and
// decodes the JSON response.
func doJSON(t *testing.T, h http.Handler, method, path string, body []byte) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, "http://coord"+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if len(rec.body.Bytes()) > 0 && json.Unmarshal(rec.body.Bytes(), &out) != nil {
		out = nil
	}
	return rec.status, out
}

// recorder is a minimal ResponseWriter; httptest.NewRecorder would do,
// but this keeps the header/body we care about explicit.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func newRecorder() *recorder { return &recorder{header: http.Header{}, status: 200} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *recorder) WriteHeader(status int)      { r.status = status }

func ingestJSON(t *testing.T, h http.Handler, tenant string, keys []int64) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"keys": keys})
	if err != nil {
		t.Fatal(err)
	}
	status, out := doJSON(t, h, http.MethodPost, "/t/"+tenant+"/ingest", body)
	if status != http.StatusOK {
		t.Fatalf("ingest status %d: %v", status, out)
	}
}

func runAlignedBatch(runLen, runs int, next *int64) []int64 {
	batch := make([]int64, runLen*runs)
	for i := range batch {
		batch[i] = (*next * 2654435761) % (1 << 40) // deterministic scatter
		*next++
	}
	return batch
}

// TestCoordinatorDegradation pins the satellite requirement: with one
// owner down, scatter-gather answers 200 with partial:true and the merged
// summary of the survivors; after the worker rejoins, answers are whole
// again. With every owner down the tenant is unavailable (503), and an
// unknown tenant is 404 regardless of fleet health.
func TestCoordinatorDegradation(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	coord := testCoordinator(t, 2, w1, w2)
	h := coord.Handler()

	status, out := doJSON(t, h, http.MethodPost, "/admin/tenants", []byte(`{"name":"metrics"}`))
	if status != http.StatusCreated {
		t.Fatalf("create status %d: %v", status, out)
	}
	// Four run-aligned batches round-robin across both owners, so each
	// holds data when the other goes down.
	var next int64 = 1
	for i := 0; i < 4; i++ {
		ingestJSON(t, h, "metrics", runAlignedBatch(512, 1, &next))
	}

	status, out = doJSON(t, h, http.MethodGet, "/t/metrics/quantile?phi=0.5", nil)
	if status != http.StatusOK || out["partial"] != false {
		t.Fatalf("healthy quantile: status %d, %v", status, out)
	}
	wholeN := int64(0)
	if status, st := doJSON(t, h, http.MethodGet, "/t/metrics/stats", nil); status == http.StatusOK {
		wholeN = int64(st["n"].(float64))
	}
	if wholeN != 4*512 {
		t.Fatalf("healthy n = %d, want %d", wholeN, 4*512)
	}

	// Partition one owner away.
	w2.stopHTTP()
	status, out = doJSON(t, h, http.MethodGet, "/t/metrics/quantile?phi=0.5", nil)
	if status != http.StatusOK {
		t.Fatalf("degraded quantile status %d: %v", status, out)
	}
	if out["partial"] != true {
		t.Fatalf("degraded quantile not flagged partial: %v", out)
	}
	status, st := doJSON(t, h, http.MethodGet, "/t/metrics/stats", nil)
	if status != http.StatusOK || st["partial"] != true {
		t.Fatalf("degraded stats: status %d, %v", status, st)
	}
	if n := int64(st["n"].(float64)); n <= 0 || n >= wholeN {
		t.Fatalf("degraded n = %d, want a strict non-empty subset of %d", n, wholeN)
	}
	// Ingest during the partition fails over to the survivor.
	ingestJSON(t, h, "metrics", runAlignedBatch(512, 1, &next))

	status, hz := doJSON(t, h, http.MethodGet, "/healthz", nil)
	if status != http.StatusOK || hz["status"] != "degraded" {
		t.Fatalf("healthz during partition: status %d, %v", status, hz)
	}
	if hz["build"] == nil {
		t.Fatal("healthz missing build info")
	}

	// The worker rejoins: answers are whole again and include the
	// failover batch.
	w2.restartHTTP()
	status, out = doJSON(t, h, http.MethodGet, "/t/metrics/quantile?phi=0.5", nil)
	if status != http.StatusOK || out["partial"] != false {
		t.Fatalf("recovered quantile: status %d, %v", status, out)
	}
	if status, st := doJSON(t, h, http.MethodGet, "/t/metrics/stats", nil); status != http.StatusOK ||
		int64(st["n"].(float64)) != wholeN+512 {
		t.Fatalf("recovered stats: status %d, %v", status, st)
	}
	if status, hz := doJSON(t, h, http.MethodGet, "/healthz", nil); status != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz after recovery: status %d, %v", status, hz)
	}

	// Unknown tenant: 404 regardless of fleet health.
	if status, _ := doJSON(t, h, http.MethodGet, "/t/nosuch/quantile?phi=0.5", nil); status != http.StatusNotFound {
		t.Fatalf("unknown tenant status %d, want 404", status)
	}

	// Every owner down: unavailable, not a silent empty answer.
	w1.stopHTTP()
	w2.stopHTTP()
	if status, out := doJSON(t, h, http.MethodGet, "/t/metrics/quantile?phi=0.5", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("all-down quantile status %d (%v), want 503", status, out)
	}
}

// TestCoordinatorAdmin drives the admin surface end to end: create places
// the tenant on its owners (and only them), list unions the fleet,
// delete sweeps every worker.
func TestCoordinatorAdmin(t *testing.T) {
	w1, w2, w3 := newTestWorker(t), newTestWorker(t), newTestWorker(t)
	coord := testCoordinator(t, 1, w1, w2, w3)
	h := coord.Handler()

	for _, name := range []string{"alpha", "beta", "gamma", "delta"} {
		status, out := doJSON(t, h, http.MethodPost, "/admin/tenants",
			[]byte(fmt.Sprintf(`{"name":%q}`, name)))
		if status != http.StatusCreated {
			t.Fatalf("create %s: status %d %v", name, status, out)
		}
		// Idempotent retry: the duplicate create is absorbed.
		if status, _ := doJSON(t, h, http.MethodPost, "/admin/tenants",
			[]byte(fmt.Sprintf(`{"name":%q}`, name))); status != http.StatusCreated {
			t.Fatalf("re-create %s: status %d", name, status)
		}
	}
	status, out := doJSON(t, h, http.MethodGet, "/admin/tenants", nil)
	if status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	tenants := out["tenants"].([]any)
	if len(tenants) != 4 {
		t.Fatalf("list has %d tenants: %v", len(tenants), tenants)
	}
	// Each tenant lives exactly on its owner set.
	for _, e := range tenants {
		entry := e.(map[string]any)
		name := entry["name"].(string)
		owners := entry["owners"].([]any)
		if len(owners) != 1 {
			t.Fatalf("tenant %s owners = %v, want 1 (spread 1)", name, owners)
		}
		placed := 0
		for _, w := range []*testWorker{w1, w2, w3} {
			if _, err := w.reg.Get(name); err == nil {
				placed++
				if w.url() != owners[0].(string) {
					t.Errorf("tenant %s placed on %s, owner is %v", name, w.url(), owners[0])
				}
			}
		}
		if placed != 1 {
			t.Errorf("tenant %s exists on %d workers, want 1", name, placed)
		}
	}

	if status, _ := doJSON(t, h, http.MethodDelete, "/admin/tenants/alpha", nil); status != http.StatusOK {
		t.Fatalf("delete status %d", status)
	}
	if status, _ := doJSON(t, h, http.MethodDelete, "/admin/tenants/alpha", nil); status != http.StatusNotFound {
		t.Fatalf("double delete status %d, want 404", status)
	}
	if status, out := doJSON(t, h, http.MethodGet, "/admin/tenants", nil); status != http.StatusOK ||
		len(out["tenants"].([]any)) != 3 {
		t.Fatalf("list after delete: %v", out)
	}
}
