package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerClientHonorsContext is the retry-backoff regression test: a
// canceled context must abort the retry loop — including mid-backoff —
// instead of sleeping out the full schedule, so a draining coordinator
// is never pinned by requests to a dead worker.
func TestWorkerClientHonorsContext(t *testing.T) {
	// An address nothing listens on: every attempt fails at transport
	// level, which is what drives the backoff path.
	const deadURL = "http://127.0.0.1:1/t/x/summary"
	c := &WorkerClient{Attempts: 5, Backoff: 30 * time.Second}

	// Pre-canceled: not a single backoff tick may elapse.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := c.Do(ctx, http.MethodGet, deadURL, "", nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Do error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled Do took %v", elapsed)
	}

	// Canceled mid-backoff: with a 30s first backoff, only the context
	// can unblock the call this fast.
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start = time.Now()
	_, _, err := c.GetBody(ctx, deadURL)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-backoff GetBody error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("mid-backoff cancellation took %v, backoff slept through it", elapsed)
	}
}

// TestWorkerClientConditionalGet pins the GetBodyTag protocol: the tag
// travels as If-None-Match, a 304 comes back tagged and bodyless, and a
// changed resource answers 200 with the fresh tag.
func TestWorkerClientConditionalGet(t *testing.T) {
	var current atomic.Value
	current.Store(`"v1"`)
	var conditional atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		etag := current.Load().(string)
		w.Header().Set("ETag", etag)
		if got := r.Header.Get("If-None-Match"); got != "" {
			conditional.Add(1)
			if got == etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Write([]byte("body-" + etag))
	}))
	defer srv.Close()

	c := &WorkerClient{}
	ctx := context.Background()
	status, body, etag, err := c.GetBodyTag(ctx, srv.URL, "")
	if err != nil || status != http.StatusOK || etag != `"v1"` || string(body) != `body-"v1"` {
		t.Fatalf("cold fetch: status %d etag %q body %q err %v", status, etag, body, err)
	}
	status, body, etag, err = c.GetBodyTag(ctx, srv.URL, etag)
	if err != nil || status != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("warm fetch: status %d body %q err %v, want bodyless 304", status, body, err)
	}
	if etag != `"v1"` {
		t.Fatalf("304 etag %q", etag)
	}
	current.Store(`"v2"`)
	status, body, etag, err = c.GetBodyTag(ctx, srv.URL, `"v1"`)
	if err != nil || status != http.StatusOK || etag != `"v2"` || string(body) != `body-"v2"` {
		t.Fatalf("invalidated fetch: status %d etag %q body %q err %v", status, etag, body, err)
	}
	if conditional.Load() != 2 {
		t.Fatalf("server saw %d conditional requests, want 2", conditional.Load())
	}
}
