package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerClientHonorsContext is the retry-backoff regression test: a
// canceled context must abort the retry loop — including mid-backoff —
// instead of sleeping out the full schedule, so a draining coordinator
// is never pinned by requests to a dead worker.
func TestWorkerClientHonorsContext(t *testing.T) {
	// An address nothing listens on: every attempt fails at transport
	// level, which is what drives the backoff path.
	const deadURL = "http://127.0.0.1:1/t/x/summary"
	c := &WorkerClient{Attempts: 5, Backoff: 30 * time.Second}

	// Pre-canceled: not a single backoff tick may elapse.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := c.Do(ctx, http.MethodGet, deadURL, "", nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Do error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled Do took %v", elapsed)
	}

	// Canceled mid-backoff: with a 30s first backoff, only the context
	// can unblock the call this fast.
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start = time.Now()
	_, _, err := c.GetBody(ctx, deadURL)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-backoff GetBody error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("mid-backoff cancellation took %v, backoff slept through it", elapsed)
	}
}

// TestWorkerClientBackoffCap pins the retry schedule's ceiling: the
// delay doubles from its starting point but never past maxBackoff, so a
// raised attempt count against a long-dead owner costs a bounded stall
// per retry instead of a geometric one.
func TestWorkerClientBackoffCap(t *testing.T) {
	d := 50 * time.Millisecond
	var total time.Duration
	for i := 0; i < 10; i++ {
		d = nextBackoff(d)
		total += d
		if d > maxBackoff {
			t.Fatalf("step %d: backoff %v exceeds cap %v", i, d, maxBackoff)
		}
	}
	if d != maxBackoff {
		t.Fatalf("after 10 doublings backoff = %v, want pinned at %v", d, maxBackoff)
	}
	// 100ms..1.6s doubling, then capped at 2s for the remaining 5 steps.
	want := 100*time.Millisecond + 200*time.Millisecond + 400*time.Millisecond +
		800*time.Millisecond + 1600*time.Millisecond + 5*maxBackoff
	if total != want {
		t.Fatalf("10-retry schedule sleeps %v, want %v", total, want)
	}
	// An explicit Backoff above the cap is honored as the first delay
	// (the cap bounds growth, it does not clamp configuration), and the
	// very next doubling lands on the cap.
	if got := nextBackoff(30 * time.Second); got != maxBackoff {
		t.Fatalf("nextBackoff(30s) = %v, want %v", got, maxBackoff)
	}
}

// TestWorkerClientConditionalGet pins the GetBodyTag protocol: the tag
// travels as If-None-Match, a 304 comes back tagged and bodyless, and a
// changed resource answers 200 with the fresh tag.
func TestWorkerClientConditionalGet(t *testing.T) {
	var current atomic.Value
	current.Store(`"v1"`)
	var conditional atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		etag := current.Load().(string)
		w.Header().Set("ETag", etag)
		if got := r.Header.Get("If-None-Match"); got != "" {
			conditional.Add(1)
			if got == etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Write([]byte("body-" + etag))
	}))
	defer srv.Close()

	c := &WorkerClient{}
	ctx := context.Background()
	status, body, etag, err := c.GetBodyTag(ctx, srv.URL, "")
	if err != nil || status != http.StatusOK || etag != `"v1"` || string(body) != `body-"v1"` {
		t.Fatalf("cold fetch: status %d etag %q body %q err %v", status, etag, body, err)
	}
	status, body, etag, err = c.GetBodyTag(ctx, srv.URL, etag)
	if err != nil || status != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("warm fetch: status %d body %q err %v, want bodyless 304", status, body, err)
	}
	if etag != `"v1"` {
		t.Fatalf("304 etag %q", etag)
	}
	current.Store(`"v2"`)
	status, body, etag, err = c.GetBodyTag(ctx, srv.URL, `"v1"`)
	if err != nil || status != http.StatusOK || etag != `"v2"` || string(body) != `body-"v2"` {
		t.Fatalf("invalidated fetch: status %d etag %q body %q err %v", status, etag, body, err)
	}
	if conditional.Load() != 2 {
		t.Fatalf("server saw %d conditional requests, want 2", conditional.Load())
	}
}
