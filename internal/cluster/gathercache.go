package cluster

import (
	"cmp"
	"container/list"
	"sync"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// DefaultGatherCacheBytes bounds the coordinator's gather cache when
// Options.GatherCacheBytes is zero. Summaries are sample lists — tens of
// kilobytes each — so 64 MiB comfortably holds hundreds of tenants'
// owner sets plus merged results.
const DefaultGatherCacheBytes = 64 << 20

// ownerEntry is one owner's last successfully fetched summary for one
// tenant: the worker's strong ETag, the raw SaveSummary bytes, and the
// decoded summary, so a 304 revalidation skips both the body transfer
// and the decode. Entries are treated as immutable once stored — the
// summary is shared read-only with in-flight queries.
type ownerEntry[T cmp.Ordered] struct {
	etag string
	raw  []byte
	sum  *core.Summary[T]
}

// tenantEntry is one tenant's cache line: per-owner entries plus the
// merged summary of the last fully successful (non-partial) gather,
// keyed on the owner version vector — the per-owner ETags joined in
// ring order, with misses marked. A matching vector proves every
// owner's contribution is unchanged, so the merged summary (and its
// lazily attached serialization) can be reused without re-running
// MergeAll.
type tenantEntry[T cmp.Ordered] struct {
	name      string
	owners    map[string]ownerEntry[T]
	mergedKey string
	merged    *core.Summary[T]
	mergedRaw []byte // lazily attached SaveSummary bytes of merged
	bytes     int64
	elem      *list.Element
}

// gatherCache is the coordinator's per-tenant gather cache: an LRU over
// tenants bounded by an approximate byte budget. All methods are safe
// for concurrent use; the stored summaries are immutable and may be
// read concurrently by any number of queries.
type gatherCache[T cmp.Ordered] struct {
	mu       sync.Mutex
	capacity int64
	total    int64
	lru      *list.List // of *tenantEntry; front = most recently used
	tenants  map[string]*tenantEntry[T]
	elemSize int64
}

func newGatherCache[T cmp.Ordered](capacity int64) *gatherCache[T] {
	if capacity == 0 {
		capacity = DefaultGatherCacheBytes
	}
	return &gatherCache[T]{
		capacity: capacity,
		lru:      list.New(),
		tenants:  map[string]*tenantEntry[T]{},
		elemSize: int64(runio.ElemSize[T]()),
	}
}

// footprint approximates a summary's resident size: its sample list
// plus fixed bookkeeping. Exactness doesn't matter — the budget only
// needs to scale with reality to bound the cache.
func (c *gatherCache[T]) footprint(sum *core.Summary[T]) int64 {
	if sum == nil {
		return 0
	}
	return int64(sum.SampleCount())*c.elemSize + 96
}

func (c *gatherCache[T]) entryBytes(e *tenantEntry[T]) int64 {
	b := int64(len(e.mergedRaw)) + c.footprint(e.merged)
	for _, oe := range e.owners {
		b += int64(len(oe.raw)) + c.footprint(oe.sum)
	}
	return b
}

// ownersSnapshot returns a copy of the tenant's per-owner entries (nil
// when the tenant is cold) and marks the tenant recently used. The
// copies are value copies of immutable state, so the fan-out can read
// them without holding the cache lock.
func (c *gatherCache[T]) ownersSnapshot(tenant string) map[string]ownerEntry[T] {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.tenants[tenant]
	if e == nil {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	out := make(map[string]ownerEntry[T], len(e.owners))
	for k, v := range e.owners {
		out[k] = v
	}
	return out
}

// mergedFor returns the cached merged summary when the tenant's vector
// key matches, with its serialized form if one has been attached.
func (c *gatherCache[T]) mergedFor(tenant, key string) (*core.Summary[T], []byte, bool) {
	if key == "" {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.tenants[tenant]
	if e == nil || e.mergedKey != key || e.merged == nil {
		return nil, nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.merged, e.mergedRaw, true
}

// commit replaces the tenant's cache line wholesale: owners is the
// complete post-gather entry set (owners that failed or 404ed are
// simply absent — which is the per-owner invalidation on failure), and
// merged/key describe the gather's merged summary when it is cacheable
// (non-partial with every contributor tagged; key "" stores none).
// The tenant moves to the LRU front and older tenants are evicted past
// the byte budget.
func (c *gatherCache[T]) commit(tenant string, owners map[string]ownerEntry[T], key string, merged *core.Summary[T]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.tenants[tenant]
	if e == nil {
		e = &tenantEntry[T]{name: tenant}
		e.elem = c.lru.PushFront(e)
		c.tenants[tenant] = e
	} else {
		c.lru.MoveToFront(e.elem)
		c.total -= e.bytes
	}
	e.owners = owners
	if e.mergedKey != key {
		e.mergedRaw = nil
	}
	e.mergedKey = key
	e.merged = merged
	if key == "" {
		e.merged = nil
		e.mergedRaw = nil
	}
	e.bytes = c.entryBytes(e)
	c.total += e.bytes
	// Evict from the cold end, never the line just written: a single
	// tenant larger than the whole budget stays resident alone rather
	// than thrashing.
	for c.total > c.capacity && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		old := oldest.Value.(*tenantEntry[T])
		c.lru.Remove(oldest)
		delete(c.tenants, old.name)
		c.total -= old.bytes
	}
}

// attachMergedRaw stores the serialized form of the cached merged
// summary, matched by pointer identity so a raced commit of a newer
// merge can never be paired with older bytes.
func (c *gatherCache[T]) attachMergedRaw(tenant string, merged *core.Summary[T], raw []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.tenants[tenant]
	if e == nil || e.merged != merged || e.mergedRaw != nil {
		return
	}
	e.mergedRaw = raw
	e.bytes += int64(len(raw))
	c.total += int64(len(raw))
}

// drop forgets a tenant (admin delete).
func (c *gatherCache[T]) drop(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.tenants[tenant]
	if e == nil {
		return
	}
	c.lru.Remove(e.elem)
	delete(c.tenants, tenant)
	c.total -= e.bytes
}

// usage reports the cache's resident byte estimate and tenant count.
func (c *gatherCache[T]) usage() (bytes int64, tenants int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, len(c.tenants)
}
