package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opaq/internal/engine"
	"opaq/internal/runio"
)

// shadowPair builds two coordinators over the same worker fleet: one with
// the gather fast path on, one reference coordinator with it disabled.
// Every query can then be answered both ways and compared.
func shadowPair(t *testing.T, spread int, workers ...*testWorker) (cached, shadow *Coordinator[int64]) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.url()
	}
	build := func(disable bool) *Coordinator[int64] {
		c, err := New(Options[int64]{
			Workers:            urls,
			Spread:             spread,
			Codec:              runio.Int64Codec{},
			Parse:              engine.Int64Key,
			Client:             &WorkerClient{HTTP: NewWorkerHTTPClient(2 * time.Second), Backoff: 5 * time.Millisecond},
			DisableGatherCache: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	return build(false), build(true)
}

// doRawTag is doRaw plus an If-None-Match header.
func doRawTag(t *testing.T, h http.Handler, path, ifNoneMatch string) *recorder {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://coord"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestGatherCacheEquivalence is the cache-equivalence harness: a caching
// coordinator and a cache-disabled shadow over the SAME worker fleet are
// driven through interleaved ingests, queries, a network partition, and a
// full worker kill/restart cycle. At every step both must answer with the
// same status, the same partial flag, float-identical selectivities and
// quantile enclosures, and byte-identical summary bytes — the fast path
// may only remove work, never change an answer. Run under -race in CI,
// this also exercises cached-summary sharing across concurrent merges.
func TestGatherCacheEquivalence(t *testing.T) {
	const (
		runLen      = 512
		rounds      = 14
		partitionAt = 3 // stop one worker's HTTP listener...
		healAt      = 7 // ...and re-serve it
		killAt      = 9 // gracefully kill another worker...
		rebootAt    = 12
	)
	workers := []*testWorker{newTestWorker(t), newTestWorker(t), newTestWorker(t)}
	cached, shadow := shadowPair(t, 2, workers...)
	hc, hs := cached.Handler(), shadow.Handler()

	tenants := []string{"metrics", "orders", "users"}
	for _, tenant := range tenants {
		status, out := doJSON(t, hc, http.MethodPost, "/admin/tenants",
			[]byte(fmt.Sprintf(`{"name":%q}`, tenant)))
		if status != http.StatusCreated {
			t.Fatalf("create %s: status %d %v", tenant, status, out)
		}
	}

	// compare answers one query both ways and asserts identity.
	compare := func(round int, path string) {
		t.Helper()
		statusC, outC := doJSON(t, hc, http.MethodGet, path, nil)
		statusS, outS := doJSON(t, hs, http.MethodGet, path, nil)
		if statusC != statusS {
			t.Fatalf("round %d %s: cached status %d vs shadow %d", round, path, statusC, statusS)
		}
		if statusC != http.StatusOK {
			return
		}
		// The counter block is the one legitimate divergence.
		delete(outC, "gather_cache")
		delete(outS, "gather_cache")
		if !reflect.DeepEqual(outC, outS) {
			t.Fatalf("round %d %s: cached answer %v vs shadow %v", round, path, outC, outS)
		}
	}

	rng := rand.New(rand.NewSource(99))
	var next int64 = 1
	etags := map[string]string{}
	for round := 0; round < rounds; round++ {
		switch round {
		case partitionAt:
			workers[1].stopHTTP()
		case healAt:
			workers[1].restartHTTP()
		case killAt:
			workers[0].kill()
		case rebootAt:
			workers[0].restart()
		}
		for _, tenant := range tenants {
			// Ingest through either coordinator — they front the same
			// fleet, so both must observe the write on the next query.
			batch := runAlignedBatch(runLen, 1+rng.Intn(2), &next)
			h := hc
			if round%2 == 1 {
				h = hs
			}
			body, err := json.Marshal(map[string]any{"keys": batch})
			if err != nil {
				t.Fatal(err)
			}
			status, out := doJSON(t, h, http.MethodPost, "/t/"+tenant+"/ingest", body)
			if status != http.StatusOK && status != http.StatusServiceUnavailable {
				t.Fatalf("round %d ingest %s: status %d %v", round, tenant, status, out)
			}

			phi := 0.01 + 0.98*rng.Float64()
			a, b := rng.Int63n(1<<40), rng.Int63n(1<<40)
			if a > b {
				a, b = b, a
			}
			compare(round, fmt.Sprintf("/t/%s/quantile?phi=%g", tenant, phi))
			// Re-ask immediately: the second answer comes off the merged
			// cache (nothing changed in between) and must still be equal.
			compare(round, fmt.Sprintf("/t/%s/quantile?phi=%g", tenant, phi))
			compare(round, fmt.Sprintf("/t/%s/selectivity?a=%d&b=%d", tenant, a, b))
			compare(round, "/t/"+tenant+"/stats")

			// Summary bytes, including the coordinator's own 304 protocol.
			recC := doRawTag(t, hc, "/t/"+tenant+"/summary", etags[tenant])
			recS := doRawTag(t, hs, "/t/"+tenant+"/summary", "")
			if recC.status == http.StatusNotModified {
				t.Fatalf("round %d %s: 304 for a summary that advanced (tag %q)", round, tenant, etags[tenant])
			}
			if recC.status != recS.status {
				t.Fatalf("round %d %s summary: cached status %d vs shadow %d", round, tenant, recC.status, recS.status)
			}
			if recC.status != http.StatusOK {
				continue
			}
			if cp, sp := recC.header.Get("X-Opaq-Partial"), recS.header.Get("X-Opaq-Partial"); cp != sp {
				t.Fatalf("round %d %s summary: cached partial %q vs shadow %q", round, tenant, cp, sp)
			}
			if !bytes.Equal(recC.body.Bytes(), recS.body.Bytes()) {
				t.Fatalf("round %d %s: cached summary bytes differ from shadow (%d vs %d bytes)",
					round, tenant, recC.body.Len(), recS.body.Len())
			}
			if tag := recC.header.Get("ETag"); tag != "" {
				// An unchanged vector must revalidate: refetch conditionally.
				again := doRawTag(t, hc, "/t/"+tenant+"/summary", tag)
				if again.status != http.StatusNotModified || again.body.Len() != 0 {
					t.Fatalf("round %d %s: conditional summary refetch status %d body %d bytes, want bodyless 304",
						round, tenant, again.status, again.body.Len())
				}
				etags[tenant] = tag
			}
		}
	}

	// The run above must actually have exercised the fast path.
	if cached.gatherHits.Load() == 0 {
		t.Error("harness finished with zero merged-cache hits")
	}
	if cached.gather304s.Load() == 0 {
		t.Error("harness finished with zero owner 304 revalidations")
	}
	if cached.gatherMisses.Load() == 0 {
		t.Error("harness finished with zero full merges")
	}
	if shadow.gatherHits.Load() != 0 || shadow.gather304s.Load() != 0 {
		t.Errorf("shadow coordinator used the fast path: hits %d, 304s %d",
			shadow.gatherHits.Load(), shadow.gather304s.Load())
	}
}

// TestGatherCacheCounters pins the observability satellite: the counter
// block is present on /stats and /healthz, hits and 304s accumulate on
// repeated queries, and an ingest invalidates the vector so the next
// query is a miss again.
func TestGatherCacheCounters(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	cached, shadow := shadowPair(t, 2, w1, w2)
	h := cached.Handler()

	if status, _ := doJSON(t, h, http.MethodPost, "/admin/tenants", []byte(`{"name":"metrics"}`)); status != http.StatusCreated {
		t.Fatalf("create status %d", status)
	}
	var next int64 = 1
	ingestJSON(t, h, "metrics", runAlignedBatch(512, 2, &next))

	counters := func(h http.Handler, path string) map[string]any {
		t.Helper()
		status, out := doJSON(t, h, http.MethodGet, path, nil)
		if status != http.StatusOK {
			t.Fatalf("%s status %d", path, status)
		}
		gc, ok := out["gather_cache"].(map[string]any)
		if !ok {
			t.Fatalf("%s has no gather_cache block: %v", path, out)
		}
		return gc
	}

	const queries = 5
	for i := 0; i < queries; i++ {
		if status, out := doJSON(t, h, http.MethodGet, "/t/metrics/quantile?phi=0.5", nil); status != http.StatusOK {
			t.Fatalf("quantile status %d: %v", status, out)
		}
	}
	gc := counters(h, "/t/metrics/stats")
	if gc["enabled"] != true {
		t.Fatalf("gather_cache.enabled = %v", gc["enabled"])
	}
	// The /stats call itself gathers too: of the queries+1 gathers, the
	// first is the cold miss, the rest are merged-cache hits riding 304s.
	if hits := gc["gather_hits"].(float64); hits < queries {
		t.Errorf("gather_hits = %v after %d repeated queries", hits, queries+1)
	}
	if n304 := gc["gather_304s"].(float64); n304 < 2*queries {
		t.Errorf("gather_304s = %v, want >= %d (2 owners per warm gather)", n304, 2*queries)
	}
	misses := gc["gather_misses"].(float64)
	if misses < 1 {
		t.Errorf("gather_misses = %v, want >= 1 (the cold gather)", misses)
	}

	// An ingest bumps an owner's version: the next gather must re-merge.
	ingestJSON(t, h, "metrics", runAlignedBatch(512, 1, &next))
	if status, _ := doJSON(t, h, http.MethodGet, "/t/metrics/quantile?phi=0.5", nil); status != http.StatusOK {
		t.Fatal("post-ingest quantile failed")
	}
	if got := counters(h, "/t/metrics/stats")["gather_misses"].(float64); got <= misses {
		t.Errorf("gather_misses = %v after an invalidating ingest, want > %v", got, misses)
	}

	// Same block on /healthz, with cache usage reported.
	gc = counters(h, "/healthz")
	if gc["enabled"] != true || gc["bytes"].(float64) <= 0 || gc["tenants"].(float64) != 1 {
		t.Errorf("healthz gather_cache = %v, want enabled with 1 resident tenant", gc)
	}

	// The shadow reports the fast path off.
	if gc := counters(shadow.Handler(), "/healthz"); gc["enabled"] != false {
		t.Errorf("shadow gather_cache.enabled = %v", gc["enabled"])
	}
}

// TestGatherSingleflight pins the coalescing contract: a burst of
// concurrent queries against a slow worker costs at most two fan-outs
// (the in-progress flight a waiter finds may predate its arrival, so one
// follow-up gather preserves read-your-writes), and late arrivals are
// counted as singleflight-shared.
func TestGatherSingleflight(t *testing.T) {
	reg, err := engine.NewRegistry(engine.RegistryOptions[int64]{
		Defaults: testWorkerDefaults(),
		Codec:    runio.Int64Codec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	inner := engine.NewRegistryHandler(reg, engine.Int64Key, engine.HandlerOptions{})
	var summaryCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/summary") {
			summaryCalls.Add(1)
			time.Sleep(50 * time.Millisecond) // a slow worker widens the race window
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	coord, err := New(Options[int64]{
		Workers: []string{srv.URL},
		Codec:   runio.Int64Codec{},
		Parse:   engine.Int64Key,
		Client:  &WorkerClient{HTTP: NewWorkerHTTPClient(5 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	h := coord.Handler()

	if status, _ := doJSON(t, h, http.MethodPost, "/admin/tenants", []byte(`{"name":"burst"}`)); status != http.StatusCreated {
		t.Fatalf("create status %d", status)
	}
	var next int64 = 1
	ingestJSON(t, h, "burst", runAlignedBatch(512, 1, &next))

	const burst = 8
	summaryCalls.Store(0)
	var wg sync.WaitGroup
	start := make(chan struct{}) // release the burst at once on slow CI
	errs := make(chan string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			req, err := http.NewRequest(http.MethodGet, "http://coord/t/burst/quantile?phi=0.5", nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			rec := newRecorder()
			h.ServeHTTP(rec, req)
			if rec.status != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", rec.status, rec.body.String())
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// Coalescing allows the leader's flight plus one follow-up for
	// arrivals mid-flight; without it the burst would cost 8 fetches.
	if calls := summaryCalls.Load(); calls > 2 {
		t.Errorf("burst of %d queries issued %d summary fetches, want <= 2", burst, calls)
	}
	if shared := coord.gatherShared.Load(); shared == 0 {
		t.Error("gather_singleflight counter stayed zero across a coalesced burst")
	}
}
