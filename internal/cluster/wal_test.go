package cluster

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"opaq/internal/runio"
)

// walRecordBytes builds one journal record exactly as Append writes it.
func walRecordBytes(tenant string, kind byte, body []byte) []byte {
	payload := make([]byte, 0, 2+len(tenant)+1+len(body))
	payload = append(payload, byte(len(tenant)), byte(len(tenant)>>8))
	payload = append(payload, tenant...)
	payload = append(payload, kind)
	payload = append(payload, body...)
	return runio.AppendRawFrame(nil, runio.FrameData, walRecordKind, payload)
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	bodies := map[string][][]byte{
		"beta":  {[]byte(`{"keys":[1,2]}`), []byte(`{"keys":[3]}`)},
		"alpha": {[]byte("frame-bytes-here")},
	}
	if _, err := w.Append("beta", walBodyJSON, bodies["beta"][0]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("alpha", walBodyFrames, bodies["alpha"][0]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("beta", walBodyJSON, bodies["beta"][1]); err != nil {
		t.Fatal(err)
	}

	if got := w.Tenants(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Tenants() = %v, want [alpha beta]", got)
	}
	if !w.HasBacklog("beta") || w.HasBacklog("missing") {
		t.Fatal("HasBacklog wrong")
	}
	st := w.Stats()
	if st.Appends != 3 || st.Replayed != 0 || st.Drops != 0 || st.Tenants != 2 || st.PendingBytes <= 0 {
		t.Fatalf("stats after appends: %+v", st)
	}

	// Per-tenant FIFO order, content types mapped from the kind byte.
	rec, ok := w.Next("beta")
	if !ok || !bytes.Equal(rec.Body, bodies["beta"][0]) || rec.ContentType != "application/json" {
		t.Fatalf("beta first record: ok=%v %q %s", ok, rec.Body, rec.ContentType)
	}
	w.Consume("beta", rec)
	rec, ok = w.Next("beta")
	if !ok || !bytes.Equal(rec.Body, bodies["beta"][1]) {
		t.Fatalf("beta second record: ok=%v %q", ok, rec.Body)
	}
	w.Consume("beta", rec)
	if _, ok := w.Next("beta"); ok {
		t.Fatal("beta drained but Next still yields")
	}
	rec, ok = w.Next("alpha")
	if !ok || !bytes.Equal(rec.Body, bodies["alpha"][0]) || rec.ContentType != "application/octet-stream" {
		t.Fatalf("alpha record: ok=%v %q %s", ok, rec.Body, rec.ContentType)
	}
	w.Consume("alpha", rec)

	st = w.Stats()
	if st.Replayed != 3 || st.PendingBytes != 0 || st.Tenants != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	// Drained journals leave no files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("journal dir not empty after drain: %v", entries)
	}
}

func TestWALBudget(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	body := bytes.Repeat([]byte("x"), 64)
	if _, err := w.Append("a", walBodyJSON, body); err != nil {
		t.Fatalf("first append within budget: %v", err)
	}
	if _, err := w.Append("a", walBodyJSON, body); !errors.Is(err, ErrWALFull) {
		t.Fatalf("append past budget: err = %v, want ErrWALFull", err)
	}
	st := w.Stats()
	if st.Appends != 1 || st.Drops != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Draining the backlog frees budget for new appends.
	rec, ok := w.Next("a")
	if !ok {
		t.Fatal("no record")
	}
	w.Consume("a", rec)
	if _, err := w.Append("a", walBodyJSON, body); err != nil {
		t.Fatalf("append after drain: %v", err)
	}
}

// TestWALTornTail cuts a journal at every interesting byte boundary
// inside its final record and asserts reopening truncates the torn tail
// and replays exactly the intact records — never a crash, never a half
// batch, never a duplicate.
func TestWALTornTail(t *testing.T) {
	recs := [][]byte{
		walRecordBytes("x", walBodyJSON, []byte(`{"keys":[1]}`)),
		walRecordBytes("x", walBodyFrames, bytes.Repeat([]byte("p"), 100)),
	}
	intact := append(append([]byte{}, recs[0]...), recs[1]...)
	last := len(recs[0])
	cuts := []int{
		len(intact) - 1,                   // missing final checksum byte
		len(intact) - 5,                   // checksum gone entirely
		last + runio.FrameHeaderSize/2,    // torn mid-header
		last + runio.FrameHeaderSize,      // header only, no payload
		last + runio.FrameHeaderSize + 10, // torn mid-payload
		last + 1,                          // a single stray byte after a full record
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "x.wal"), intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		var replayed int
		for {
			rec, ok := w.Next("x")
			if !ok {
				break
			}
			w.Consume("x", rec)
			replayed++
		}
		if replayed != 1 {
			t.Errorf("cut %d: replayed %d records, want 1 (the intact one)", cut, replayed)
		}
		if st := w.Stats(); st.PendingBytes != 0 {
			t.Errorf("cut %d: pending %d after drain", cut, st.PendingBytes)
		}
		w.Close()
	}

	// A corrupted byte inside the first record abandons the whole journal
	// (checksums catch it) without crashing or delivering garbage.
	dir := t.TempDir()
	mangled := append([]byte{}, intact...)
	mangled[runio.FrameHeaderSize+3] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "x.wal"), mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rec, ok := w.Next("x"); ok {
		t.Fatalf("corrupt first record replayed: %q", rec.Body)
	}
}

// TestWALReopenResumesOffset is the coordinator-restart path: a journal
// with a persisted replay offset resumes exactly past the delivered
// records, and a corrupt or misaligned offset re-delivers from the start
// (at-least-once) instead of corrupting.
func TestWALReopenResumesOffset(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{"one", "two", "three"} {
		if _, err := w.Append("x", walBodyFrames, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := w.Next("x")
	if !ok {
		t.Fatal("no record")
	}
	w.Consume("x", rec) // persists the offset sidecar
	w.Close()

	w2, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok = w2.Next("x")
	if !ok || string(rec.Body) != "two" {
		t.Fatalf("after reopen: ok=%v body=%q, want \"two\"", ok, rec.Body)
	}
	w2.Close()

	// An offset not on a record boundary is ignored: replay from 0.
	if err := os.WriteFile(filepath.Join(dir, "x"+walPosExt), []byte("7"), 0o644); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	rec, ok = w3.Next("x")
	if !ok || string(rec.Body) != "one" {
		t.Fatalf("after corrupt offset: ok=%v body=%q, want \"one\" (replay from start)", ok, rec.Body)
	}
}

func TestWALDropTenant(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append("gone", walBodyJSON, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	w.DropTenant("gone")
	if w.HasBacklog("gone") {
		t.Fatal("backlog survives DropTenant")
	}
	if _, err := os.Stat(filepath.Join(dir, "gone"+walExt)); !os.IsNotExist(err) {
		t.Fatalf("journal file survives DropTenant: %v", err)
	}
}

// FuzzWALJournal feeds arbitrary bytes in as an on-disk journal: opening
// and fully draining it must never panic, never deliver a record that
// fails its own checksums, and must leave the directory reopenable.
func FuzzWALJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add(walRecordBytes("x", walBodyJSON, []byte(`{"keys":[1,2,3]}`)))
	two := append(walRecordBytes("x", walBodyFrames, bytes.Repeat([]byte("q"), 33)),
		walRecordBytes("x", walBodyJSON, []byte(`{}`))...)
	f.Add(two)
	f.Add(two[:len(two)-3])                                   // torn tail
	f.Add(append(append([]byte{}, two...), 0xde, 0xad, 0xbe)) // trailing garbage
	f.Add(bytes.Repeat([]byte{0xff}, 200))                    // pure noise
	f.Add(runio.AppendRawFrame(nil, runio.FrameData, 7, []byte("wrong kind")))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "x.wal"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, 0)
		if err != nil {
			t.Fatalf("OpenWAL on fuzzed journal: %v", err)
		}
		drained := 0
		for {
			rec, ok := w.Next("x")
			if !ok {
				break
			}
			if rec.Tenant != "x" {
				t.Fatalf("record for tenant %q from x.wal", rec.Tenant)
			}
			w.Consume("x", rec)
			if drained++; drained > 1<<16 {
				t.Fatal("replay not terminating")
			}
		}
		w.Close()
		// Whatever the first pass truncated or consumed, a reopen must
		// also succeed and find nothing left to duplicate.
		w2, err := OpenWAL(dir, 0)
		if err != nil {
			t.Fatalf("reopen after drain: %v", err)
		}
		if _, ok := w2.Next("x"); ok {
			t.Fatal("drained journal re-delivers after reopen")
		}
		w2.Close()
	})
}
