package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwnersDeterministic(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r1, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"metrics", "orders", "users", "a", ""} {
		for spread := 1; spread <= 5; spread++ {
			o1 := r1.Owners(tenant, spread)
			o2 := r2.Owners(tenant, spread)
			if !reflect.DeepEqual(o1, o2) {
				t.Fatalf("owners(%q, %d) differ across identical rings: %v vs %v", tenant, spread, o1, o2)
			}
			want := spread
			if want > len(workers) {
				want = len(workers)
			}
			if len(o1) != want {
				t.Fatalf("owners(%q, %d) = %v, want %d distinct", tenant, spread, o1, want)
			}
			seen := map[string]bool{}
			for _, o := range o1 {
				if seen[o] {
					t.Fatalf("owners(%q, %d) repeats %q", tenant, spread, o)
				}
				seen[o] = true
			}
		}
	}
	// spread below 1 clamps to 1.
	if got := r1.Owners("x", 0); len(got) != 1 {
		t.Errorf("owners with spread 0 = %v", got)
	}
}

// Virtual nodes keep the tenant distribution roughly balanced: with 4
// workers no worker should own a trivial share of 4000 tenants.
func TestRingDistribution(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const tenants = 4000
	for i := 0; i < tenants; i++ {
		counts[r.Owners(fmt.Sprintf("tenant-%d", i), 1)[0]]++
	}
	for _, w := range workers {
		if counts[w] < tenants/10 {
			t.Errorf("worker %s owns only %d of %d tenants — distribution too skewed", w, counts[w], tenants)
		}
	}
}

// A worker joining moves only the tenants that hash to it — consistent
// hashing's defining property (vs modulo placement, which reshuffles
// nearly everything).
func TestRingStabilityUnderGrowth(t *testing.T) {
	small, err := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing([]string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 2000
	moved := 0
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		before, after := small.Owners(name, 1)[0], big.Owners(name, 1)[0]
		if before != after {
			if after != "http://d:4" {
				t.Fatalf("tenant %q moved between surviving workers: %s -> %s", name, before, after)
			}
			moved++
		}
	}
	// Expect ~1/4 of tenants to move to the new worker; far more means the
	// hash is not consistent, far fewer means the new worker is idle.
	if moved < tenants/8 || moved > tenants/2 {
		t.Errorf("%d of %d tenants moved on growth; want roughly 1/4", moved, tenants)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty fleet should fail")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}, 0); err == nil {
		t.Error("duplicate worker should fail")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty address should fail")
	}
	if _, err := NewRing([]string{"http://a:1"}, -1); err == nil {
		t.Error("negative virtual nodes should fail")
	}
}
