package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"opaq/internal/engine"
	"opaq/internal/runio"
)

// doRaw drives the coordinator handler with an arbitrary body and returns
// the raw response.
func doRaw(t *testing.T, h http.Handler, method, path, contentType string, body []byte) *recorder {
	t.Helper()
	req, err := http.NewRequest(method, "http://coord"+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestClusterEquivalenceHarness is the headline multi-process equivalence
// test: the same randomized stream pushed through 1 coordinator + 3
// workers (run-aligned batches, JSON and binary wire formats mixed,
// round-robin across spread-2 owners) and through a single local engine
// must yield byte-identical per-tenant summaries and enclosure-identical
// quantiles and selectivities — including across a full worker
// kill/restart cycle (graceful checkpoint, registry teardown, reboot from
// the checkpoint directory) with failover ingest while the worker is
// down. This is the OPAQ mergeability property doing the distributed
// tier's work: summaries are multiset-determined, so any partitioning of
// a run-aligned stream reduces to the same bytes.
func TestClusterEquivalenceHarness(t *testing.T) {
	const (
		runLen  = 512
		rounds  = 12
		killAt  = 4 // kill a worker after this many rounds...
		rejoins = 8 // ...and reboot it after this many
	)
	codec := runio.Int64Codec{}
	workers := []*testWorker{newTestWorker(t), newTestWorker(t), newTestWorker(t)}
	coord := testCoordinator(t, 2, workers...)
	h := coord.Handler()

	tenants := []string{"metrics", "orders", "users"}
	locals := map[string]*engine.Engine[int64]{}
	for _, tenant := range tenants {
		status, out := doJSON(t, h, http.MethodPost, "/admin/tenants",
			[]byte(fmt.Sprintf(`{"name":%q}`, tenant)))
		if status != http.StatusCreated {
			t.Fatalf("create %s: status %d %v", tenant, status, out)
		}
		local, err := engine.New[int64](testWorkerDefaults())
		if err != nil {
			t.Fatal(err)
		}
		locals[tenant] = local
		t.Cleanup(func() { local.Close() })
	}

	rng := rand.New(rand.NewSource(8))
	for round := 0; round < rounds; round++ {
		if round == killAt {
			workers[0].kill() // graceful: checkpoint, then gone
		}
		if round == rejoins {
			workers[0].restart() // fresh registry from the checkpoint dir
		}
		for _, tenant := range tenants {
			// Run-aligned batch: whole runs land on one engine, which is
			// exactly the condition under which sharding is invisible.
			batch := make([]int64, runLen*(1+rng.Intn(3)))
			for i := range batch {
				batch[i] = rng.Int63n(1 << 44)
			}
			if round%2 == 0 {
				ingestJSON(t, h, tenant, batch)
			} else {
				frame, err := runio.AppendDataFrame(nil, codec, "", batch)
				if err != nil {
					t.Fatal(err)
				}
				rec := doRaw(t, h, http.MethodPost, "/t/"+tenant+"/ingest",
					"application/octet-stream", frame)
				if rec.status != http.StatusOK {
					t.Fatalf("round %d binary ingest %s: status %d %s", round, tenant, rec.status, rec.body.String())
				}
			}
			if err := locals[tenant].IngestBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		if round == killAt {
			// Mid-outage answers must be flagged, not fabricated.
			status, out := doJSON(t, h, http.MethodGet, "/t/"+tenants[0]+"/stats", nil)
			if status != http.StatusOK {
				t.Fatalf("stats during outage: status %d %v", status, out)
			}
			down, _ := out["down"].([]any)
			if (out["partial"] == true) != (len(down) > 0) {
				t.Fatalf("stats during outage inconsistent: %v", out)
			}
		}
	}

	for _, tenant := range tenants {
		// Byte-identical summaries: the coordinator's merged scatter-gather
		// vs the single local engine's checkpoint.
		rec := doRaw(t, h, http.MethodGet, "/t/"+tenant+"/summary", "", nil)
		if rec.status != http.StatusOK {
			t.Fatalf("%s summary status %d: %s", tenant, rec.status, rec.body.String())
		}
		if got := rec.header.Get("X-Opaq-Partial"); got != "false" {
			t.Fatalf("%s summary partial = %q after full recovery", tenant, got)
		}
		var want bytes.Buffer
		if err := locals[tenant].Checkpoint(&want, codec); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.body.Bytes(), want.Bytes()) {
			t.Errorf("%s: distributed summary bytes differ from the local engine's checkpoint (%d vs %d bytes)",
				tenant, rec.body.Len(), want.Len())
		}

		// Enclosure-identical quantiles through the HTTP path.
		for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
			status, out := doJSON(t, h, http.MethodGet,
				fmt.Sprintf("/t/%s/quantile?phi=%g", tenant, phi), nil)
			if status != http.StatusOK {
				t.Fatalf("%s quantile(%g): status %d %v", tenant, phi, status, out)
			}
			if out["partial"] != false {
				t.Errorf("%s quantile(%g) still partial after recovery", tenant, phi)
			}
			b, err := locals[tenant].Quantile(phi)
			if err != nil {
				t.Fatal(err)
			}
			if out["lower"] != fmt.Sprint(b.Lower) || out["upper"] != fmt.Sprint(b.Upper) ||
				int64(out["rank"].(float64)) != b.Rank {
				t.Errorf("%s quantile(%g): distributed %v vs local [%v,%v] rank %d",
					tenant, phi, out, b.Lower, b.Upper, b.Rank)
			}
		}

		// Identical selectivities (same summary bytes → same histogram).
		for _, r := range [][2]int64{{0, 1 << 43}, {1 << 42, 1 << 44}} {
			status, out := doJSON(t, h, http.MethodGet,
				fmt.Sprintf("/t/%s/selectivity?a=%d&b=%d", tenant, r[0], r[1]), nil)
			if status != http.StatusOK {
				t.Fatalf("%s selectivity: status %d %v", tenant, status, out)
			}
			sel, est, maxErr, err := locals[tenant].RangeEstimate(r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if out["selectivity"] != sel || out["estimate"] != est || out["max_abs_error"] != maxErr {
				t.Errorf("%s selectivity[%d,%d]: distributed %v vs local (%v, %v, %v)",
					tenant, r[0], r[1], out, sel, est, maxErr)
			}
		}
	}
}
