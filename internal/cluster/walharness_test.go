package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"opaq/internal/engine"
	"opaq/internal/runio"
)

// TestWALReplayHarness is the journal's acceptance harness: a randomized
// run-aligned stream (JSON and binary wire formats mixed) flows through a
// coordinator while the ENTIRE worker fleet is killed mid-stream, the
// coordinator itself is restarted mid-outage (journals re-opened from
// disk), the fleet comes back, and the replayer drains. At quiesce the
// coordinator's merged summary must be byte-identical to an uninterrupted
// local shadow engine's checkpoint for every tenant, with nonzero
// wal_appends/wal_replayed, zero drops, and empty journals — the
// mergeability property extended across an outage: journaled run-aligned
// batches land as the same multiset, so the bytes cannot differ.
func TestWALReplayHarness(t *testing.T) {
	const runLen = 512
	codec := runio.Int64Codec{}
	walDir := t.TempDir()
	workers := []*testWorker{newTestWorker(t), newTestWorker(t)}

	newCoord := func() *Coordinator[int64] {
		t.Helper()
		c, err := New(Options[int64]{
			Workers:         []string{workers[0].url(), workers[1].url()},
			Spread:          2,
			Codec:           codec,
			Parse:           engine.Int64Key,
			Client:          &WorkerClient{HTTP: &http.Client{Timeout: 2 * time.Second}, Backoff: 2 * time.Millisecond},
			WALDir:          walDir,
			OwnerQuarantine: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	coord := newCoord()
	h := coord.Handler()

	tenants := []string{"metrics", "orders"}
	locals := map[string]*engine.Engine[int64]{}
	for _, tenant := range tenants {
		status, out := doJSON(t, h, http.MethodPost, "/admin/tenants",
			[]byte(fmt.Sprintf(`{"name":%q}`, tenant)))
		if status != http.StatusCreated {
			t.Fatalf("create %s: status %d %v", tenant, status, out)
		}
		local, err := engine.New[int64](testWorkerDefaults())
		if err != nil {
			t.Fatal(err)
		}
		locals[tenant] = local
		t.Cleanup(func() { local.Close() })
	}

	rng := rand.New(rand.NewSource(11))
	// ingestRound pushes one run-aligned batch per tenant through the
	// given handler and mirrors it into the shadow engines. While the
	// fleet is down every batch must come back 202 + X-Opaq-Journaled
	// with a format-matched acknowledgment; while it is up, a plain 200.
	ingestRound := func(h http.Handler, round int, wantJournaled bool) {
		t.Helper()
		for _, tenant := range tenants {
			batch := make([]int64, runLen*(1+rng.Intn(3)))
			for i := range batch {
				batch[i] = rng.Int63n(1 << 44)
			}
			var rec *recorder
			if round%2 == 0 {
				body, err := json.Marshal(map[string]any{"keys": batch})
				if err != nil {
					t.Fatal(err)
				}
				rec = doRaw(t, h, http.MethodPost, "/t/"+tenant+"/ingest", "application/json", body)
			} else {
				frame, err := runio.AppendDataFrame(nil, codec, "", batch)
				if err != nil {
					t.Fatal(err)
				}
				rec = doRaw(t, h, http.MethodPost, "/t/"+tenant+"/ingest", "application/octet-stream", frame)
			}
			if wantJournaled {
				if rec.status != http.StatusAccepted || rec.header.Get("X-Opaq-Journaled") != "true" {
					t.Fatalf("round %d %s: status %d journaled %q, want 202 journaled",
						round, tenant, rec.status, rec.header.Get("X-Opaq-Journaled"))
				}
				if round%2 != 0 {
					// Binary journaled acks count the batch's elements.
					hd, err := runio.ReadFrameHeader(&rec.body, 0)
					if err != nil {
						t.Fatal(err)
					}
					payload, err := runio.ReadFramePayload(&rec.body, hd, nil)
					if err != nil {
						t.Fatal(err)
					}
					acked, _, err := runio.DecodeAckPayload(payload)
					if err != nil {
						t.Fatal(err)
					}
					if int(acked) != len(batch) {
						t.Fatalf("round %d %s: journaled ack %d, want %d", round, tenant, acked, len(batch))
					}
				}
			} else if rec.status != http.StatusOK {
				t.Fatalf("round %d %s: status %d %s", round, tenant, rec.status, rec.body.String())
			}
			if err := locals[tenant].IngestBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: healthy fleet, direct relays.
	for round := 0; round < 4; round++ {
		ingestRound(h, round, false)
	}

	// Phase 2: the WHOLE fleet dies (graceful: checkpoints written, then
	// gone). Every in-flight batch from here lands in the journal.
	workers[0].kill()
	workers[1].kill()
	for round := 4; round < 7; round++ {
		ingestRound(h, round, true)
	}

	// Coordinator restart mid-outage: the new instance must re-open the
	// journals from disk with the backlog intact, and keep journaling.
	preRestart := coord.wal.Stats()
	if preRestart.Appends == 0 || preRestart.PendingBytes == 0 {
		t.Fatalf("nothing journaled before coordinator restart: %+v", preRestart)
	}
	coord.Close()
	coord = newCoord()
	t.Cleanup(coord.Close)
	h = coord.Handler()
	if got := coord.wal.Stats().PendingBytes; got != preRestart.PendingBytes {
		t.Fatalf("pending bytes across coordinator restart: %d, want %d", got, preRestart.PendingBytes)
	}
	for round := 7; round < 9; round++ {
		ingestRound(h, round, true)
	}

	// Phase 3: the fleet returns; the replayer must drain every journal.
	workers[0].restart()
	workers[1].restart()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st := coord.wal.Stats(); st.PendingBytes == 0 && st.Tenants == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journals not drained: %+v", coord.wal.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := coord.wal.Stats()
	if st.Replayed == 0 || st.Drops != 0 || st.PendingBytes != 0 {
		t.Fatalf("post-drain stats: %+v, want nonzero replayed, zero drops, zero pending", st)
	}

	// Post-recovery rounds take the direct path again.
	for round := 9; round < 11; round++ {
		ingestRound(h, round, false)
	}

	// Quiesce: byte-identical summaries vs the uninterrupted shadow, and
	// the journal counters surfaced on /stats.
	for _, tenant := range tenants {
		rec := doRaw(t, h, http.MethodGet, "/t/"+tenant+"/summary", "", nil)
		if rec.status != http.StatusOK {
			t.Fatalf("%s summary status %d: %s", tenant, rec.status, rec.body.String())
		}
		if got := rec.header.Get("X-Opaq-Partial"); got != "false" {
			t.Fatalf("%s summary partial = %q after full recovery", tenant, got)
		}
		var want bytes.Buffer
		if err := locals[tenant].Checkpoint(&want, codec); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.body.Bytes(), want.Bytes()) {
			t.Errorf("%s: summary after fleet kill + coordinator restart + replay differs from the uninterrupted shadow (%d vs %d bytes)",
				tenant, rec.body.Len(), want.Len())
		}

		status, out := doJSON(t, h, http.MethodGet, "/t/"+tenant+"/stats", nil)
		if status != http.StatusOK {
			t.Fatalf("%s stats: status %d", tenant, status)
		}
		wal, _ := out["wal"].(map[string]any)
		if wal == nil || wal["enabled"] != true {
			t.Fatalf("%s stats wal block: %v", tenant, out["wal"])
		}
		if replayed, _ := wal["wal_replayed"].(float64); replayed == 0 {
			t.Errorf("wal_replayed = %v on /stats, want > 0", wal["wal_replayed"])
		}
		if pending, _ := wal["wal_pending_bytes"].(float64); pending != 0 {
			t.Errorf("wal_pending_bytes = %v on /stats, want 0", wal["wal_pending_bytes"])
		}
	}
}

// TestIngestJournalPreservesTenantOrder pins per-tenant batch order end
// to end: two batches journaled during a partition plus one direct batch
// after recovery must REACH the worker in submission order — replay is
// FIFO per tenant and the direct path never overtakes a backlog. The
// delivered order is observed at the transport: every 2xx ingest POST
// the worker actually accepted, in sequence.
func TestIngestJournalPreservesTenantOrder(t *testing.T) {
	worker := newTestWorker(t)
	rt := &recordingTransport{}
	c, err := New(Options[int64]{
		Workers: []string{worker.url()},
		Codec:   runio.Int64Codec{},
		Parse:   engine.Int64Key,
		Client:  &WorkerClient{HTTP: &http.Client{Timeout: 2 * time.Second, Transport: rt}, Backoff: 2 * time.Millisecond},
		WALDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	h := c.Handler()
	createTenantOn(t, worker.url(), "metrics")

	worker.stopHTTP() // partition: the registry (and its data) stays alive
	bodies := []string{`{"keys":[1]}`, `{"keys":[2]}`}
	for i, body := range bodies {
		rec := doRaw(t, h, http.MethodPost, "/t/metrics/ingest", "application/json", []byte(body))
		if rec.status != http.StatusAccepted || rec.header.Get("X-Opaq-Journaled") != "true" {
			t.Fatalf("partitioned ingest %d: status %d journaled %q, want 202 journaled",
				i, rec.status, rec.header.Get("X-Opaq-Journaled"))
		}
	}

	worker.restartHTTP()
	deadline := time.Now().Add(10 * time.Second)
	for c.wal.HasBacklog("metrics") {
		if time.Now().After(deadline) {
			t.Fatalf("backlog not drained: %+v", c.wal.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := doRaw(t, h, http.MethodPost, "/t/metrics/ingest", "application/json", []byte(`{"keys":[3]}`))
	if rec.status != http.StatusOK {
		t.Fatalf("ingest after drain: status %d %s", rec.status, rec.body.String())
	}

	delivered := rt.deliveredBodies("/t/metrics/ingest")
	want := append(bodies, `{"keys":[3]}`)
	if len(delivered) != len(want) {
		t.Fatalf("worker accepted %d ingests %v, want %d", len(delivered), delivered, len(want))
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", delivered, want)
		}
	}
	status, out := doJSON(t, h, http.MethodGet, "/t/metrics/stats", nil)
	if status != http.StatusOK || out["n"] != float64(3) {
		t.Fatalf("final stats: status %d n=%v, want 3 elements", status, out["n"])
	}
}

// recordingTransport logs the body of every POST that came back 2xx,
// keyed by URL path — the worker-side view of what landed, in order.
type recordingTransport struct {
	mu  sync.Mutex
	log [][2]string // {path, body}
}

func (rt *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		body, _ = io.ReadAll(req.Body)
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil && req.Method == http.MethodPost && resp.StatusCode < 300 {
		rt.mu.Lock()
		rt.log = append(rt.log, [2]string{req.URL.Path, string(body)})
		rt.mu.Unlock()
	}
	return resp, err
}

func (rt *recordingTransport) deliveredBodies(path string) []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for _, e := range rt.log {
		if e[0] == path {
			out = append(out, e[1])
		}
	}
	return out
}

// TestIngestJournalRejectsInvalidBodies: journaling skips the workers'
// validation, so the coordinator must reject what the fleet would have —
// malformed JSON and corrupt/mismatched frames get a 400, never a
// journal entry that replay would silently drop later.
func TestIngestJournalRejectsInvalidBodies(t *testing.T) {
	dead, err := New(Options[int64]{
		Workers: []string{"http://127.0.0.1:1"},
		Codec:   runio.Int64Codec{},
		Parse:   engine.Int64Key,
		Client:  &WorkerClient{HTTP: &http.Client{Timeout: time.Second}, Attempts: 1, Backoff: time.Millisecond},
		WALDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dead.Close)
	h := dead.Handler()

	rec := doRaw(t, h, http.MethodPost, "/t/x/ingest", "application/json", []byte(`{"keys":[1,`))
	if rec.status != http.StatusBadRequest {
		t.Fatalf("malformed JSON journaled: status %d", rec.status)
	}
	frame, err := runio.AppendDataFrame(nil, runio.Int64Codec{}, "", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xff // break the payload CRC
	rec = doRaw(t, h, http.MethodPost, "/t/x/ingest", "application/octet-stream", frame)
	if rec.status != http.StatusBadRequest {
		t.Fatalf("corrupt frame journaled: status %d", rec.status)
	}
	if st := dead.wal.Stats(); st.Appends != 0 {
		t.Fatalf("invalid bodies reached the journal: %+v", st)
	}

	// The valid version of the same frame IS journaled.
	frame[len(frame)-1] ^= 0xff
	rec = doRaw(t, h, http.MethodPost, "/t/x/ingest", "application/octet-stream", frame)
	if rec.status != http.StatusAccepted || rec.header.Get("X-Opaq-Journaled") != "true" {
		t.Fatalf("valid frame with dead fleet: status %d, want 202 journaled", rec.status)
	}
}
