package cluster

import (
	"bytes"
	"cmp"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opaq/internal/core"
	"opaq/internal/engine"
	"opaq/internal/histogram"
	"opaq/internal/runio"
)

// Coordinator errors surfaced to HTTP statuses.
var (
	// ErrNoSurvivors reports a scatter-gather in which every owner of the
	// tenant was unreachable — there is nothing to answer from, degraded
	// or otherwise.
	ErrNoSurvivors = errors.New("cluster: no surviving owner")
	// errBadWorker reports a worker answering outside its protocol
	// (unexpected status, undecodable summary) — a bug or version skew,
	// not an outage.
	errBadWorker = errors.New("cluster: unexpected worker response")
	errBadGather = errors.New("cluster: bad request")
)

// maxQuantiles mirrors the engine handler's cap on GET /quantiles.
const maxQuantiles = 4096

// maxProxyBody bounds an ingest body buffered for relay; workers enforce
// their own (smaller) limits on top.
const maxProxyBody = 64 << 20

// Options configures a Coordinator.
type Options[T cmp.Ordered] struct {
	// Workers is the fleet: worker base URLs ("http://host:port"). At
	// least one is required; the set is fixed for the coordinator's
	// lifetime (restart to re-shard).
	Workers []string
	// Spread is the number of distinct workers a tenant's data may live
	// on: ingest round-robins across the tenant's first Spread ring
	// owners (failing over past down ones) and queries merge all of them.
	// 1 (the default) pins each tenant to a single worker; higher spreads
	// trade query fan-out for ingest balance and faster failover.
	Spread int
	// VirtualNodes is the consistent-hash points per worker (0 = 64).
	VirtualNodes int
	// Codec decodes worker summaries; required.
	Codec runio.Codec[T]
	// Parse converts query-string keys (selectivity bounds); required.
	Parse engine.ParseKey[T]
	// Buckets is the equi-depth histogram resolution for selectivity
	// answers over merged summaries (0 = engine.DefaultBuckets).
	Buckets int
	// Client is the worker HTTP client; nil uses defaults (3 attempts,
	// 50ms doubling backoff, 5s timeout, pooled keep-alive transport).
	Client *WorkerClient
	// GatherCacheBytes bounds the gather cache's resident summaries
	// (0 = DefaultGatherCacheBytes). Least-recently-queried tenants are
	// evicted past the budget.
	GatherCacheBytes int64
	// DisableGatherCache turns the query fast path off entirely — no
	// per-owner summary cache, no merged-summary reuse, no singleflight
	// coalescing. Every query then re-fetches and re-merges from scratch,
	// which is the reference behavior the cache-equivalence harness
	// shadows against.
	DisableGatherCache bool
	// WALDir, when non-empty, enables the ingest write-ahead journal: a
	// batch none of its tenant's owners will take is journaled there
	// (fsync'd) and answered 202 Accepted with X-Opaq-Journaled: true
	// instead of a 503, then replayed to recovered owners in per-tenant
	// order with at-least-once delivery. Empty keeps the pre-WAL
	// behavior: an all-owners-down ingest is the client's to retry.
	WALDir string
	// WALMaxBytes bounds the journals' total on-disk bytes
	// (0 = DefaultWALMaxBytes). Appends past the budget are dropped
	// (wal_drops) and the ingest fails 503 as it would without a journal.
	WALMaxBytes int64
	// OwnerQuarantine is how long an owner that failed an ingest relay is
	// deprioritized — moved to the back of the failover order instead of
	// being redialed first — before it is trusted again (0 = 2s; cleared
	// early by any successful delivery, direct or replayed).
	OwnerQuarantine time.Duration
}

// defaultOwnerQuarantine deprioritizes a freshly failed owner long enough
// that a burst of ingests does not pay the full retry schedule against it
// on every Nth request, and short enough that a restarted worker is
// redialed within a couple of seconds even with no replay traffic.
const defaultOwnerQuarantine = 2 * time.Second

// Coordinator scatter-gathers a worker fleet behind the engine's HTTP
// surface. All methods are safe for concurrent use.
type Coordinator[T cmp.Ordered] struct {
	opts    Options[T]
	ring    *Ring
	client  *WorkerClient
	buckets int
	rr      sync.Map // tenant name -> *atomic.Uint64 ingest cursor

	// ctx is the coordinator's lifetime: every fan-out runs under a
	// context that dies with it, so Close unblocks retry backoffs against
	// dead workers and a draining server is never pinned.
	ctx    context.Context
	cancel context.CancelFunc

	// cache is the gather fast path (nil when disabled); flights
	// coalesces concurrent gathers per tenant.
	cache    *gatherCache[T]
	flightMu sync.Mutex
	flights  map[string]*flight[T]

	// wal is the ingest write-ahead journal (nil when disabled); the
	// replay goroutine is accounted in wg and joined by Close.
	wal        *WAL
	wg         sync.WaitGroup
	closeOnce  sync.Once
	quarantine time.Duration
	// ownerDown maps owner URL -> *atomic.Int64 UnixNano of the last
	// failed relay (0 after a success): the quarantine clock that keeps
	// the round-robin cursor from dialing a known-dead owner first.
	ownerDown sync.Map

	// Fast-path counters, surfaced on /stats and /healthz.
	gatherHits   atomic.Int64 // merged summary reused, MergeAll skipped
	gatherMisses atomic.Int64 // gathers that ran MergeAll
	gather304s   atomic.Int64 // per-owner conditional fetches answered 304
	gatherShared atomic.Int64 // queries that rode another query's gather
}

// flight is one in-progress gather, shared by coalesced queries.
type flight[T cmp.Ordered] struct {
	done chan struct{}
	g    *gathered[T]
	err  error
}

// New validates the options and builds the ring.
func New[T cmp.Ordered](opts Options[T]) (*Coordinator[T], error) {
	if opts.Codec == nil {
		return nil, fmt.Errorf("cluster: Options.Codec is required")
	}
	if opts.Parse == nil {
		return nil, fmt.Errorf("cluster: Options.Parse is required")
	}
	ring, err := NewRing(opts.Workers, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if opts.Spread == 0 {
		opts.Spread = 1
	}
	if opts.Spread < 1 {
		return nil, fmt.Errorf("cluster: Spread must be positive, got %d", opts.Spread)
	}
	buckets := opts.Buckets
	if buckets == 0 {
		buckets = engine.DefaultBuckets
	}
	client := opts.Client
	if client == nil {
		client = &WorkerClient{}
	}
	quarantine := opts.OwnerQuarantine
	if quarantine <= 0 {
		quarantine = defaultOwnerQuarantine
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator[T]{
		opts:       opts,
		ring:       ring,
		client:     client,
		buckets:    buckets,
		ctx:        ctx,
		cancel:     cancel,
		flights:    map[string]*flight[T]{},
		quarantine: quarantine,
	}
	if !opts.DisableGatherCache {
		c.cache = newGatherCache[T](opts.GatherCacheBytes)
	}
	if opts.WALDir != "" {
		wal, err := OpenWAL(opts.WALDir, opts.WALMaxBytes)
		if err != nil {
			cancel()
			return nil, err
		}
		c.wal = wal
		c.wg.Add(1)
		go c.replayLoop()
	}
	return c, nil
}

// Close cancels the coordinator's lifetime context, aborting in-flight
// fan-outs and their retry backoffs — call it when a graceful drain
// times out so handlers stuck retrying dead workers unblock instead of
// pinning shutdown. It joins the WAL replayer and releases the journal
// file handles (pending records stay on disk for the next coordinator).
// Safe to call more than once; the coordinator must not serve new
// requests afterwards.
func (c *Coordinator[T]) Close() {
	c.cancel()
	c.closeOnce.Do(func() {
		c.wg.Wait()
		if c.wal != nil {
			c.wal.Close()
		}
	})
}

// reqCtx derives a fan-out context that dies with either the request or
// the coordinator, so both a hung-up client and a shutdown unblock the
// handler.
func (c *Coordinator[T]) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(c.ctx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Owners returns the tenant's owner set in failover preference order.
func (c *Coordinator[T]) Owners(tenant string) []string {
	return c.ring.Owners(tenant, c.opts.Spread)
}

// Handler mounts the engine HTTP surface over the fleet: tenant routes
// under /t/{tenant}/ plus the default-tenant root aliases, the admin API,
// and an aggregated /healthz.
func (c *Coordinator[T]) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"", "/t/{tenant}"} {
		mux.HandleFunc("POST "+prefix+"/ingest", c.withTenant(c.ingest))
		mux.HandleFunc("GET "+prefix+"/quantile", c.withTenant(c.quantile))
		mux.HandleFunc("GET "+prefix+"/quantiles", c.withTenant(c.quantiles))
		mux.HandleFunc("GET "+prefix+"/selectivity", c.withTenant(c.selectivity))
		mux.HandleFunc("GET "+prefix+"/stats", c.withTenant(c.stats))
		mux.HandleFunc("GET "+prefix+"/summary", c.withTenant(c.summary))
	}
	mux.HandleFunc("POST /admin/tenants", c.adminCreate)
	mux.HandleFunc("GET /admin/tenants", c.adminList)
	mux.HandleFunc("DELETE /admin/tenants/{tenant}", c.adminDelete)
	mux.HandleFunc("GET /healthz", c.healthz)
	return mux
}

func (c *Coordinator[T]) withTenant(f func(tenant string, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("tenant")
		if tenant == "" {
			tenant = engine.DefaultTenant
		}
		if !engine.ValidTenantName(tenant) {
			writeErr(w, fmt.Errorf("%w: %q", engine.ErrTenantName, tenant))
			return
		}
		f(tenant, w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps coordinator errors onto statuses, extending the engine
// handler's mapping with the fleet-level outcomes: every owner down is
// 503 (outage), a protocol-breaking worker is 502 (bad gateway), and a
// context killed by shutdown or a gone client is 503.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, engine.ErrUnknownTenant):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrEmpty), errors.Is(err, engine.ErrTenantExists):
		status = http.StatusConflict
	case errors.Is(err, core.ErrPhi), errors.Is(err, errBadGather),
		errors.Is(err, engine.ErrTenantName), errors.Is(err, core.ErrConfig):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNoSurvivors),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, errBadWorker):
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ingest relays the request body — JSON or binary frames, the worker
// handler content-negotiates — to one of the tenant's owners, round-robin
// with failover: a transport-dead or 5xx owner is skipped, the next one
// takes the batch. Because queries merge every owner's summary, a batch
// landing on any owner is equivalent; failover loses availability of a
// worker, never data. The chosen owner's response (including 409/413/429
// backpressure answers and their Retry-After) is relayed verbatim.
//
// When every owner rejects or is unreachable and the write-ahead journal
// is enabled, the already-buffered batch is journaled and answered 202
// with X-Opaq-Journaled: true instead of the 503; a tenant with journal
// backlog journals every new batch behind it, preserving per-tenant
// batch order end to end.
func (c *Coordinator[T]) ingest(tenant string, w http.ResponseWriter, r *http.Request) {
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	r.Body = http.MaxBytesReader(w, r.Body, maxProxyBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
				"error": fmt.Sprintf("body exceeds %d bytes; split the batch", tooBig.Limit),
			})
			return
		}
		writeErr(w, fmt.Errorf("%w: reading body: %v", errBadGather, err))
		return
	}
	contentType := r.Header.Get("Content-Type")
	if c.wal != nil && c.wal.HasBacklog(tenant) {
		// Journaled batches must not be overtaken by direct relays.
		c.journalIngest(tenant, contentType, body, w)
		return
	}
	owners := c.Owners(tenant)
	cursorAny, _ := c.rr.LoadOrStore(tenant, new(atomic.Uint64))
	start := int(cursorAny.(*atomic.Uint64).Add(1) - 1)
	resp, err := c.deliverBatch(ctx, tenant, contentType, body, c.orderOwners(owners, start))
	if err != nil {
		if ctx.Err() != nil {
			writeErr(w, ctx.Err())
			return
		}
		if c.wal != nil {
			c.journalIngest(tenant, contentType, body, w)
			return
		}
		writeErr(w, err)
		return
	}
	relay(w, resp)
}

// deliverBatch posts one buffered batch to the first owner in ord that
// answers below 500, recording owner health for the quarantine order.
// Every attempt re-sends from the buffered copy — a transport error
// after part of the body was written can never leak a partially consumed
// stream to the next owner. The returned response's body is open and
// owned by the caller; all owners failing is ErrNoSurvivors (or the
// context's error when the caller is gone).
func (c *Coordinator[T]) deliverBatch(ctx context.Context, tenant, contentType string, body []byte, ord []string) (*http.Response, error) {
	var lastErr error
	for _, owner := range ord {
		resp, err := c.client.Do(ctx, http.MethodPost, owner+"/t/"+tenant+"/ingest", contentType, body, nil)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			c.noteOwnerDown(owner)
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			resp.Body.Close()
			c.noteOwnerDown(owner)
			lastErr = fmt.Errorf("%w: owner %s status %d", errBadWorker, owner, resp.StatusCode)
			continue
		}
		c.noteOwnerUp(owner)
		return resp, nil
	}
	return nil, fmt.Errorf("%w for tenant %q: %v", ErrNoSurvivors, tenant, lastErr)
}

// orderOwners rotates the owner set to the round-robin start, then moves
// owners that failed within the quarantine window to the back — a known-
// dead owner stops being dialed (and retried, and backed off against)
// first on every Nth request, so failover latency during an outage is
// one healthy dial, not a full retry schedule. Quarantined owners are
// still tried last: quarantine reorders, it never sheds.
func (c *Coordinator[T]) orderOwners(owners []string, start int) []string {
	ord := make([]string, 0, len(owners))
	var parked []string
	for i := range owners {
		owner := owners[(start+i)%len(owners)]
		if c.ownerQuarantined(owner) {
			parked = append(parked, owner)
		} else {
			ord = append(ord, owner)
		}
	}
	return append(ord, parked...)
}

func (c *Coordinator[T]) noteOwnerDown(owner string) {
	v, _ := c.ownerDown.LoadOrStore(owner, new(atomic.Int64))
	v.(*atomic.Int64).Store(time.Now().UnixNano())
}

func (c *Coordinator[T]) noteOwnerUp(owner string) {
	if v, ok := c.ownerDown.Load(owner); ok {
		v.(*atomic.Int64).Store(0)
	}
}

func (c *Coordinator[T]) ownerQuarantined(owner string) bool {
	v, ok := c.ownerDown.Load(owner)
	if !ok {
		return false
	}
	at := v.(*atomic.Int64).Load()
	return at != 0 && time.Since(time.Unix(0, at)) < c.quarantine
}

// binaryIngestBody mirrors the engine handler's content negotiation.
func binaryIngestBody(contentType string) bool {
	if i := strings.IndexByte(contentType, ';'); i >= 0 {
		contentType = contentType[:i]
	}
	return strings.TrimSpace(contentType) == "application/octet-stream"
}

// validateFrames walks a binary ingest body, enforcing the same framing,
// checksum, codec-kind and tenant-match rules the worker handler would,
// and returns the total element count. Journaling skips the workers'
// validation, so it must happen here — a body the fleet would reject
// with 400 is rejected now, not silently accepted and dropped at replay.
func (c *Coordinator[T]) validateFrames(tenant string, body []byte) (int64, error) {
	rd := bytes.NewReader(body)
	elemSize := c.opts.Codec.Size()
	kind := c.opts.Codec.Kind()
	var payload []byte
	var elems int64
	for {
		h, err := runio.ReadFrameHeader(rd, 0)
		if err == io.EOF {
			return elems, nil
		}
		if err != nil {
			return 0, err
		}
		if h.Type != runio.FrameData {
			return 0, fmt.Errorf("frame type %d: only data frames ingest", h.Type)
		}
		if h.Kind != kind {
			return 0, fmt.Errorf("codec kind %d, fleet speaks %d", h.Kind, kind)
		}
		if payload, err = runio.ReadFramePayload(rd, h, payload); err != nil {
			return 0, err
		}
		frameTenant, elemBytes, err := runio.SplitDataPayload(payload, elemSize)
		if err != nil {
			return 0, err
		}
		if frameTenant != "" && frameTenant != tenant {
			return 0, fmt.Errorf("frame tenant %q on route tenant %q", frameTenant, tenant)
		}
		elems += int64(len(elemBytes) / elemSize)
	}
}

// journalIngest accepts a batch whose owners are all unavailable (or
// backlogged behind earlier journaled batches) into the write-ahead
// journal and answers 202 Accepted with X-Opaq-Journaled: true. The
// response body matches the request's wire format: JSON bodies get a
// JSON acknowledgment, frame bodies get an ack frame counting the
// batch's elements (engine count 0 — the fleet that would know is down).
// Bodies the workers would reject are rejected here with 400, and an
// append past the journal budget fails 503 exactly as an unjournaled
// all-owners-down ingest would.
func (c *Coordinator[T]) journalIngest(tenant, contentType string, body []byte, w http.ResponseWriter) {
	binary := binaryIngestBody(contentType)
	var elems int64
	if binary {
		n, err := c.validateFrames(tenant, body)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: %v", errBadGather, err))
			return
		}
		elems = n
	} else if !json.Valid(body) {
		writeErr(w, fmt.Errorf("%w: ingest body is not valid JSON", errBadGather))
		return
	}
	kind := walBodyJSON
	if binary {
		kind = walBodyFrames
	}
	pending, err := c.wal.Append(tenant, kind, body)
	if err != nil {
		writeErr(w, fmt.Errorf("%w for tenant %q: %v", ErrNoSurvivors, tenant, err))
		return
	}
	w.Header().Set("X-Opaq-Journaled", "true")
	if binary {
		ack := runio.AppendAckFrame(nil, uint32(elems), 0)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusAccepted)
		w.Write(ack)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"journaled":     true,
		"pending_bytes": pending,
	})
}

// walStatsBlock is the journal counter block on /stats and /healthz.
func (c *Coordinator[T]) walStatsBlock() map[string]any {
	st := map[string]any{"enabled": c.wal != nil}
	if c.wal != nil {
		s := c.wal.Stats()
		st["wal_appends"] = s.Appends
		st["wal_replayed"] = s.Replayed
		st["wal_pending_bytes"] = s.PendingBytes
		st["wal_drops"] = s.Drops
		st["tenants"] = s.Tenants
	}
	return st
}

// relay copies a worker response (status, JSON body, Retry-After) out.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if v := resp.Header.Get("Retry-After"); v != "" {
		w.Header().Set("Retry-After", v)
	}
	if v := resp.Header.Get("Content-Type"); v != "" {
		w.Header().Set("Content-Type", v)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// gathered is one scatter-gather outcome: the merged summary of the
// owners that answered, plus the degradation bookkeeping.
type gathered[T cmp.Ordered] struct {
	sum     *core.Summary[T]
	partial bool     // at least one owner did not contribute
	owners  []string // the tenant's full owner set
	down    []string // owners unreachable after retries
	// key is the owner version vector this answer was built from — the
	// per-owner summary ETags (and 404 markers) joined in ring order.
	// Empty when the answer is partial or an owner went untagged; a
	// non-empty key uniquely names the merged bytes.
	key string
}

// gather answers a query, coalescing concurrent gathers for the same
// tenant into one fan-out. Coalescing must not weaken read-your-writes:
// a flight found already in progress may have fanned out before this
// query's caller saw its ingest acked, so the first such flight is only
// waited on, never consumed. A flight found after that wait necessarily
// started after this query arrived — its answer covers everything acked
// before entry — and is shared. A query burst therefore costs at most
// two fan-outs regardless of width.
func (c *Coordinator[T]) gather(ctx context.Context, tenant string) (*gathered[T], error) {
	if c.cache == nil {
		return c.gatherOnce(ctx, tenant)
	}
	joined := false
	for {
		c.flightMu.Lock()
		f := c.flights[tenant]
		if f == nil {
			f = &flight[T]{done: make(chan struct{})}
			c.flights[tenant] = f
			c.flightMu.Unlock()
			// The leader runs under the coordinator's lifetime context,
			// not its own request's: followers with live requests may be
			// waiting on this flight, and the leader's client hanging up
			// must not fail them.
			f.g, f.err = c.gatherOnce(c.ctx, tenant)
			c.flightMu.Lock()
			delete(c.flights, tenant)
			c.flightMu.Unlock()
			close(f.done)
			return f.g, f.err
		}
		c.flightMu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if joined {
			c.gatherShared.Add(1)
			return f.g, f.err
		}
		joined = true
	}
}

// gatherOnce fetches the tenant's summary from every owner concurrently
// and reduces with core.MergeAll. Owner outcomes: a summary (contributes
// — fetched fresh, or revalidated by a 304 against the gather cache), a
// 404 (tenant not on that worker — normal when ingest has not touched
// every owner), or unreachable (degrades the answer). All-404 is
// ErrUnknownTenant; no contribution with at least one owner down is
// ErrNoSurvivors.
//
// With the cache enabled, every owner is still contacted on every gather
// — the cache removes body transfer, decode, and merge work, never the
// freshness check — so cached state can never mask a down owner or a
// missed write. When the owner version vector matches the cached merged
// summary, MergeAll is skipped entirely.
func (c *Coordinator[T]) gatherOnce(ctx context.Context, tenant string) (*gathered[T], error) {
	owners := c.Owners(tenant)
	var prior map[string]ownerEntry[T]
	if c.cache != nil {
		prior = c.cache.ownersSnapshot(tenant)
	}
	type outcome struct {
		entry ownerEntry[T]
		has   bool // entry holds this owner's current summary
		fresh bool // entry came from a 200 body (vs a 304 carry-forward)
		miss  bool // clean 404
		err   error
	}
	outs := make([]outcome, len(owners))
	var wg sync.WaitGroup
	for i, owner := range owners {
		wg.Add(1)
		go func(i int, owner string) {
			defer wg.Done()
			cached, hasCached := prior[owner]
			status, body, etag, err := c.client.GetBodyTag(ctx, owner+"/t/"+tenant+"/summary", cached.etag)
			switch {
			case err != nil:
				outs[i].err = err
			case status == http.StatusNotModified:
				if !hasCached {
					outs[i].err = fmt.Errorf("%w: owner %s: unsolicited 304", errBadWorker, owner)
					return
				}
				outs[i].entry, outs[i].has = cached, true
			case status == http.StatusNotFound:
				outs[i].miss = true
			case status != http.StatusOK:
				outs[i].err = fmt.Errorf("%w: owner %s status %d", errBadWorker, owner, status)
			default:
				sum, err := core.LoadSummary[T](bytes.NewReader(body), c.opts.Codec)
				if err != nil {
					outs[i].err = fmt.Errorf("%w: owner %s summary: %v", errBadWorker, owner, err)
					return
				}
				outs[i].entry = ownerEntry[T]{etag: etag, raw: body, sum: sum}
				outs[i].has, outs[i].fresh = true, true
			}
		}(i, owner)
	}
	wg.Wait()
	g := &gathered[T]{owners: owners}
	var sums []*core.Summary[T]
	misses, revalidated := 0, 0
	var badWorker error
	// The version vector is positional over the ring-ordered owner set:
	// each slot is the owner's summary ETag or a 404 marker. ETags are
	// quoted strings, so the marker can never collide with one.
	keyParts := make([]string, 0, len(owners))
	keyOK := true
	entries := make(map[string]ownerEntry[T], len(owners))
	for i, out := range outs {
		switch {
		case out.has:
			sums = append(sums, out.entry.sum)
			if !out.fresh {
				revalidated++
			}
			if out.entry.etag == "" {
				// An untagged worker (never expected from this build) can't
				// be revalidated or vector-keyed; serve it, cache nothing.
				keyOK = false
			} else {
				entries[owners[i]] = out.entry
				keyParts = append(keyParts, out.entry.etag)
			}
		case out.miss:
			misses++
			keyParts = append(keyParts, "-")
		default:
			if errors.Is(out.err, errBadWorker) && badWorker == nil {
				badWorker = out.err
			}
			g.partial = true
			g.down = append(g.down, owners[i])
		}
	}
	if revalidated > 0 {
		c.gather304s.Add(int64(revalidated))
	}
	if len(sums) == 0 {
		// Nothing to answer from; whatever was cached describes a tenant
		// that is gone or a fleet that is down, not data we may serve.
		if c.cache != nil {
			c.cache.drop(tenant)
		}
		switch {
		case misses == len(owners):
			return nil, fmt.Errorf("%w: %q", engine.ErrUnknownTenant, tenant)
		case badWorker != nil && len(g.down) == len(owners):
			return nil, badWorker
		default:
			return nil, fmt.Errorf("%w for tenant %q (%d of %d owners down)",
				ErrNoSurvivors, tenant, len(g.down), len(owners))
		}
	}
	// A partial answer is never cached as merged: it does not determine
	// the tenant's multiset, and the next gather must rebuild from
	// whichever owners answer then.
	if !g.partial && keyOK && c.cache != nil {
		g.key = strings.Join(keyParts, "|")
	}
	if c.cache != nil {
		if sum, _, ok := c.cache.mergedFor(tenant, g.key); ok {
			// Every owner revalidated against the vector the cached merge
			// was built from: same inputs, same merge. Skip MergeAll.
			g.sum = sum
			c.gatherHits.Add(1)
			return g, nil
		}
	}
	sum, err := core.MergeAll(sums)
	if err != nil {
		return nil, fmt.Errorf("%w: merging owner summaries: %v", errBadWorker, err)
	}
	g.sum = sum
	if c.cache != nil {
		var merged *core.Summary[T]
		if g.key != "" {
			merged = sum
		}
		c.cache.commit(tenant, entries, g.key, merged)
		c.gatherMisses.Add(1)
	}
	return g, nil
}

// cacheStats is the fast-path counter block on /stats and /healthz.
func (c *Coordinator[T]) cacheStats() map[string]any {
	st := map[string]any{
		"enabled":             c.cache != nil,
		"gather_hits":         c.gatherHits.Load(),
		"gather_misses":       c.gatherMisses.Load(),
		"gather_304s":         c.gather304s.Load(),
		"gather_singleflight": c.gatherShared.Load(),
	}
	if c.cache != nil {
		bytes, tenants := c.cache.usage()
		st["bytes"] = bytes
		st["tenants"] = tenants
	}
	return st
}

// boundsJSON mirrors the engine handler's quantile enclosure shape.
type boundsJSON struct {
	Phi      float64 `json:"phi"`
	Rank     int64   `json:"rank"`
	Lower    string  `json:"lower"`
	Upper    string  `json:"upper"`
	MaxBelow int64   `json:"max_below"`
	MaxAbove int64   `json:"max_above"`
}

func toBoundsJSON[T cmp.Ordered](b core.Bounds[T]) boundsJSON {
	return boundsJSON{
		Phi:      b.Phi,
		Rank:     b.Rank,
		Lower:    fmt.Sprint(b.Lower),
		Upper:    fmt.Sprint(b.Upper),
		MaxBelow: b.MaxBelow,
		MaxAbove: b.MaxAbove,
	}
}

func (c *Coordinator[T]) quantile(tenant string, w http.ResponseWriter, r *http.Request) {
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: phi: %v", errBadGather, err))
		return
	}
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	g, err := c.gather(ctx, tenant)
	if err != nil {
		writeErr(w, err)
		return
	}
	b, err := g.sum.Bounds(phi)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"phi":       b.Phi,
		"rank":      b.Rank,
		"lower":     fmt.Sprint(b.Lower),
		"upper":     fmt.Sprint(b.Upper),
		"max_below": b.MaxBelow,
		"max_above": b.MaxAbove,
		"partial":   g.partial,
	})
}

func (c *Coordinator[T]) quantiles(tenant string, w http.ResponseWriter, r *http.Request) {
	q, err := strconv.Atoi(r.URL.Query().Get("q"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: q: %v", errBadGather, err))
		return
	}
	if q > maxQuantiles {
		writeErr(w, fmt.Errorf("%w: q=%d exceeds maximum %d", errBadGather, q, maxQuantiles))
		return
	}
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	g, err := c.gather(ctx, tenant)
	if err != nil {
		writeErr(w, err)
		return
	}
	bs, err := g.sum.Quantiles(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]boundsJSON, len(bs))
	for i, b := range bs {
		out[i] = toBoundsJSON(b)
	}
	writeJSON(w, http.StatusOK, map[string]any{"quantiles": out, "partial": g.partial})
}

func (c *Coordinator[T]) selectivity(tenant string, w http.ResponseWriter, r *http.Request) {
	a, err := c.opts.Parse(r.URL.Query().Get("a"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: a: %v", errBadGather, err))
		return
	}
	b, err := c.opts.Parse(r.URL.Query().Get("b"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: b: %v", errBadGather, err))
		return
	}
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	g, err := c.gather(ctx, tenant)
	if err != nil {
		writeErr(w, err)
		return
	}
	if g.sum.N() == 0 {
		writeErr(w, core.ErrEmpty)
		return
	}
	hist, err := histogram.Build(g.sum, c.buckets)
	if err != nil {
		writeErr(w, err)
		return
	}
	est := hist.EstimateRange(a, b)
	writeJSON(w, http.StatusOK, map[string]any{
		"a":             fmt.Sprint(a),
		"b":             fmt.Sprint(b),
		"selectivity":   est / float64(hist.N()),
		"estimate":      est,
		"max_abs_error": hist.MaxRangeError(),
		"partial":       g.partial,
	})
}

func (c *Coordinator[T]) stats(tenant string, w http.ResponseWriter, r *http.Request) {
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	g, err := c.gather(ctx, tenant)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":            g.sum.N(),
		"samples":      g.sum.SampleCount(),
		"step":         g.sum.Step(),
		"owners":       g.owners,
		"down":         g.down,
		"partial":      g.partial,
		"gather_cache": c.cacheStats(),
		"wal":          c.walStatsBlock(),
	})
}

// summary serves the merged summary in the checksummed core.SaveSummary
// format — the same bytes a local engine's checkpoint would hold when the
// stream was run-aligned, which is what the multi-process equivalence
// harness asserts. Degradation is flagged in the X-Opaq-Partial header
// (the body is pure summary bytes). Non-partial answers carry a strong
// ETag derived from the owner version vector and honor If-None-Match, so
// downstream pollers (opaqclient.Query.Summary) get the same 304 fast
// path the coordinator itself uses against workers.
func (c *Coordinator[T]) summary(tenant string, w http.ResponseWriter, r *http.Request) {
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	g, err := c.gather(ctx, tenant)
	if err != nil {
		writeErr(w, err)
		return
	}
	var etag string
	if g.key != "" {
		// Hash the vector: the joined worker tags are unbounded and leak
		// fleet internals; 128 bits of SHA-256 keep the strong-tag
		// property (vector determines bytes) in a fixed-width header.
		h := sha256.Sum256([]byte(g.key))
		etag = `"` + hex.EncodeToString(h[:16]) + `"`
		w.Header().Set("ETag", etag)
	}
	w.Header().Set("X-Opaq-Partial", strconv.FormatBool(g.partial))
	if etag != "" && engine.ETagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var raw []byte
	if g.key != "" {
		if _, cachedRaw, ok := c.cache.mergedFor(tenant, g.key); ok {
			raw = cachedRaw
		}
	}
	if raw == nil {
		var buf bytes.Buffer
		if err := core.SaveSummary(&buf, g.sum, c.opts.Codec); err != nil {
			writeErr(w, err)
			return
		}
		raw = buf.Bytes()
		if g.key != "" {
			c.cache.attachMergedRaw(tenant, g.sum, raw)
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// adminCreate creates the tenant on every owner. A 409 from an owner
// counts as success — creates are idempotent retried — so a half-created
// tenant heals on retry. Any owner unreachable fails the create (a tenant
// that silently exists on only part of its owner set would serve partial
// answers forever).
func (c *Coordinator[T]) adminCreate(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: reading body: %v", errBadGather, err))
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding body: %v", errBadGather, err))
		return
	}
	if !engine.ValidTenantName(req.Name) {
		writeErr(w, fmt.Errorf("%w: %q", engine.ErrTenantName, req.Name))
		return
	}
	owners := c.Owners(req.Name)
	for _, owner := range owners {
		resp, err := c.client.Do(ctx, http.MethodPost, owner+"/admin/tenants", "application/json", body, nil)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: owner %s: %v", ErrNoSurvivors, owner, err))
			return
		}
		status := resp.StatusCode
		if status != http.StatusCreated && status != http.StatusConflict {
			relay(w, resp)
			return
		}
		resp.Body.Close()
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"tenant":  req.Name,
		"workers": owners,
	})
}

// adminList unions every worker's tenant list, annotating each tenant
// with its owner set; unreachable workers flag the listing partial.
func (c *Coordinator[T]) adminList(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	type workerList struct {
		tenants []string
		err     error
	}
	workers := c.ring.Workers()
	lists := make([]workerList, len(workers))
	var wg sync.WaitGroup
	for i, worker := range workers {
		wg.Add(1)
		go func(i int, worker string) {
			defer wg.Done()
			status, body, err := c.client.GetBody(ctx, worker+"/admin/tenants")
			if err != nil {
				lists[i].err = err
				return
			}
			if status != http.StatusOK {
				lists[i].err = fmt.Errorf("%w: status %d", errBadWorker, status)
				return
			}
			var parsed struct {
				Tenants []struct {
					Name string `json:"name"`
				} `json:"tenants"`
			}
			if err := json.Unmarshal(body, &parsed); err != nil {
				lists[i].err = fmt.Errorf("%w: %v", errBadWorker, err)
				return
			}
			for _, e := range parsed.Tenants {
				lists[i].tenants = append(lists[i].tenants, e.Name)
			}
		}(i, worker)
	}
	wg.Wait()
	names := map[string]bool{}
	partial := false
	for _, l := range lists {
		if l.err != nil {
			partial = true
			continue
		}
		for _, n := range l.tenants {
			names[n] = true
		}
	}
	type entry struct {
		Name   string   `json:"name"`
		Owners []string `json:"owners"`
	}
	out := make([]entry, 0, len(names))
	for n := range names {
		out = append(out, entry{Name: n, Owners: c.Owners(n)})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out, "partial": partial})
}

// adminDelete removes the tenant from every worker (not just current
// owners, so a fleet whose ring changed across restarts still cleans up).
// Unreachable workers fail the delete — a half-deleted tenant would
// resurrect from the missed worker's checkpoint.
func (c *Coordinator[T]) adminDelete(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	tenant := r.PathValue("tenant")
	found := false
	for _, worker := range c.ring.Workers() {
		resp, err := c.client.Do(ctx, http.MethodDelete, worker+"/admin/tenants/"+tenant, "", nil, nil)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: worker %s: %v", ErrNoSurvivors, worker, err))
			return
		}
		status := resp.StatusCode
		resp.Body.Close()
		switch {
		case status == http.StatusOK || status == http.StatusNoContent:
			found = true
		case status == http.StatusNotFound:
		default:
			writeErr(w, fmt.Errorf("%w: worker %s status %d", errBadWorker, worker, status))
			return
		}
	}
	if c.cache != nil {
		c.cache.drop(tenant)
	}
	if c.wal != nil {
		c.wal.DropTenant(tenant)
	}
	if !found {
		writeErr(w, fmt.Errorf("%w: %q", engine.ErrUnknownTenant, tenant))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": tenant})
}

// healthz aggregates worker health: the coordinator answers 200 whenever
// it serves (its own liveness), reporting "ok" only when every worker
// responded and "degraded" otherwise, with per-worker detail, build info
// on both sides, and the gather-cache counters so a cold fast path is
// diagnosable in one round trip.
func (c *Coordinator[T]) healthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := c.reqCtx(r)
	defer cancel()
	workers := c.ring.Workers()
	type health struct {
		body map[string]any
		err  error
	}
	healths := make([]health, len(workers))
	var wg sync.WaitGroup
	for i, worker := range workers {
		wg.Add(1)
		go func(i int, worker string) {
			defer wg.Done()
			status, body, err := c.client.GetBody(ctx, worker+"/healthz")
			if err != nil {
				healths[i].err = err
				return
			}
			if status != http.StatusOK {
				healths[i].err = fmt.Errorf("status %d", status)
				return
			}
			var parsed map[string]any
			if err := json.Unmarshal(body, &parsed); err != nil {
				healths[i].err = err
				return
			}
			healths[i].body = parsed
		}(i, worker)
	}
	wg.Wait()
	out := map[string]any{}
	status := "ok"
	for i, worker := range workers {
		if healths[i].err != nil {
			status = "degraded"
			out[worker] = map[string]any{"status": "down", "error": healths[i].err.Error()}
			continue
		}
		out[worker] = healths[i].body
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"build":        engine.BuildInfo(),
		"workers":      out,
		"gather_cache": c.cacheStats(),
		"wal":          c.walStatsBlock(),
	})
}
