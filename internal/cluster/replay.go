// Background replay of the ingest write-ahead journal (wal.go): a single
// goroutine per coordinator drains journaled batches to recovered owners,
// preserving per-tenant record order and at-least-once delivery.
package cluster

import (
	"io"
	"net/http"
	"time"
)

// Replay pacing: the loop wakes on every journal append and otherwise
// polls on a doubling backoff, capped so a fleet that stays down costs a
// dial attempt every couple of seconds, and a fleet that recovers is
// drained within one cap interval even if the wake signal was consumed
// early.
const (
	walReplayMinBackoff = 50 * time.Millisecond
	walReplayMaxBackoff = 2 * time.Second
)

// replayLoop runs until the coordinator closes. It is started by New only
// when the WAL is enabled.
func (c *Coordinator[T]) replayLoop() {
	defer c.wg.Done()
	backoff := walReplayMinBackoff
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-c.wal.notify:
		case <-time.After(backoff):
		}
		progressed, blocked := c.replayPass()
		switch {
		case progressed:
			backoff = walReplayMinBackoff
		case blocked:
			if backoff *= 2; backoff > walReplayMaxBackoff {
				backoff = walReplayMaxBackoff
			}
		default:
			// Idle: nothing pending. Sleep the cap; an append wakes us.
			backoff = walReplayMaxBackoff
		}
	}
}

// replayPass tries to drain every backlogged tenant in record order. A
// tenant whose owners are all still unreachable (or shedding 429s) stays
// blocked without stalling the other tenants' drains. Records the
// workers reject outright (any non-retryable non-2xx) are discarded —
// the verdict a direct ingest would have relayed to its client — so a
// poisoned batch can never wedge the journal.
func (c *Coordinator[T]) replayPass() (progressed, blocked bool) {
	for _, tenant := range c.wal.Tenants() {
		for {
			if c.ctx.Err() != nil {
				return progressed, blocked
			}
			rec, ok := c.wal.Next(tenant)
			if !ok {
				break
			}
			ord := c.orderOwners(c.Owners(tenant), 0)
			resp, err := c.deliverBatch(c.ctx, tenant, rec.ContentType, rec.Body, ord)
			if err != nil {
				blocked = true
				break
			}
			status := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case status < 300:
				// Delivered: acked by a worker, included in its checkpoints.
				c.wal.Consume(tenant, rec)
				progressed = true
			case status == http.StatusTooManyRequests:
				// Backpressure is retryable — the owner is alive but
				// shedding. Keep the record and this tenant's order; the
				// capped backoff paces the retry.
				blocked = true
			default:
				c.wal.Discard(tenant, rec)
				progressed = true
			}
			if status == http.StatusTooManyRequests {
				break
			}
		}
	}
	return progressed, blocked
}
