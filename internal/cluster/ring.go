// Package cluster is the distributed serving tier: a consistent-hash
// coordinator fronting a fleet of worker processes, each an engine
// registry (see cmd/opaq worker / coord).
//
// Tenants are placed on workers by a consistent-hash ring, ingest is
// routed to the owning workers, and queries scatter-gather: the
// coordinator fetches each owner's summary (GET /t/{tenant}/summary, the
// checksummed core.SaveSummary bytes) and reduces with core.MergeAll —
// summaries are tiny and mergeable by construction, which is what makes
// this tier cheap. When an owner is down the coordinator still answers
// from the survivors, flagging the response "partial": true.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVirtualNodes is the ring points per worker. More points smooth
// the tenant distribution; 64 keeps the max/min load ratio within a few
// percent for realistic fleet sizes at negligible memory.
const defaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over worker addresses.
// Immutability is deliberate: membership changes are a deploy-time
// concern (restart the coordinator with the new fleet), not a data-path
// concern, and an immutable ring needs no locking on lookups.
type Ring struct {
	points  []ringPoint // sorted by hash
	workers []string
}

type ringPoint struct {
	hash   uint64
	worker int // index into workers
}

// NewRing builds a ring with virtualNodes points per worker (0 means the
// default). Worker addresses must be unique and non-empty.
func NewRing(workers []string, virtualNodes int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	if virtualNodes == 0 {
		virtualNodes = defaultVirtualNodes
	}
	if virtualNodes < 1 {
		return nil, fmt.Errorf("cluster: virtual nodes must be positive, got %d", virtualNodes)
	}
	seen := make(map[string]bool, len(workers))
	r := &Ring{workers: append([]string(nil), workers...)}
	for i, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("cluster: empty worker address")
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker address %q", w)
		}
		seen[w] = true
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", w, v)),
				worker: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].worker < r.points[b].worker
	})
	return r, nil
}

// Workers returns the ring's member addresses in construction order.
func (r *Ring) Workers() []string { return append([]string(nil), r.workers...) }

// Owners returns the first spread distinct workers clockwise from the
// key's hash — the tenant's owner set, in failover preference order.
// spread is clamped to the fleet size.
func (r *Ring) Owners(key string, spread int) []string {
	if spread < 1 {
		spread = 1
	}
	if spread > len(r.workers) {
		spread = len(r.workers)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, spread)
	taken := make(map[int]bool, spread)
	for i := 0; len(owners) < spread && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.worker] {
			taken[p.worker] = true
			owners = append(owners, r.workers[p.worker])
		}
	}
	return owners
}

// hash64 is FNV-1a with a murmur3-style finalizer, stable across
// processes and Go versions — tenant placement must agree between every
// coordinator in the fleet. The finalizer matters: raw FNV over the
// ring's structured keys ("addr#0", "addr#1", …) clusters badly (one
// worker can end up owning 4x another's share); the avalanche mix
// restores a uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
