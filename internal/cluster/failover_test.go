package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opaq/internal/engine"
	"opaq/internal/runio"
)

// evilOwner is a worker-shaped TCP endpoint that reads part of whatever a
// connection sends and then resets it (RST via SetLinger(0)) — the
// mid-body connection-reset case: a relay that had started writing the
// batch when the peer died.
type evilOwner struct {
	ln       net.Listener
	url      string
	dials    atomic.Int64
	maxBytes atomic.Int64 // most bytes read on any one connection
}

func newEvilOwner(t *testing.T, readLimit int) *evilOwner {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := &evilOwner{ln: ln, url: "http://" + ln.Addr().String()}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			e.dials.Add(1)
			go func(conn net.Conn) {
				conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
				buf := make([]byte, 4096)
				read := 0
				for read < readLimit {
					n, err := conn.Read(buf)
					read += n
					if err != nil {
						break
					}
				}
				for {
					cur := e.maxBytes.Load()
					if int64(read) <= cur || e.maxBytes.CompareAndSwap(cur, int64(read)) {
						break
					}
				}
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				conn.Close()
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return e
}

// createTenantOn creates a tenant directly on one worker, bypassing the
// coordinator's admin fan-out (which would require every owner healthy).
func createTenantOn(t *testing.T, workerURL, tenant string) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"name": tenant})
	resp, err := http.Post(workerURL+"/admin/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s on %s: status %d", tenant, workerURL, resp.StatusCode)
	}
}

// tenantOwnedFirstBy finds a tenant name the ring assigns to `first` as
// its leading owner, so the round-robin cursor's first ingest dials it.
func tenantOwnedFirstBy(t *testing.T, c *Coordinator[int64], first string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("ten%03d", i)
		if c.Owners(name)[0] == first {
			return name
		}
	}
	t.Fatal("no tenant hashes to the target owner first")
	return ""
}

// TestIngestFailoverMidBodyReset locks in the relay's from-the-buffered-
// copy resend discipline: the first owner accepts the connection, reads
// part of a large binary frame, and resets mid-body. The batch the
// survivor then receives must be the intact buffered copy — any partial
// consumption or corruption from the aborted attempt would fail the
// frame's CRCs on the survivor and surface as a 400, and a short resend
// would change the acked element count.
func TestIngestFailoverMidBodyReset(t *testing.T) {
	codec := runio.Int64Codec{}
	evil := newEvilOwner(t, 8<<10)
	survivor := newTestWorker(t)

	c, err := New(Options[int64]{
		Workers: []string{evil.url, survivor.url()},
		Spread:  2,
		Codec:   codec,
		Parse:   engine.Int64Key,
		Client:  &WorkerClient{HTTP: &http.Client{Timeout: 5 * time.Second}, Backoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	h := c.Handler()

	tenant := tenantOwnedFirstBy(t, c, evil.url)
	createTenantOn(t, survivor.url(), tenant)

	// ~2 MiB frame: large enough that the reset lands mid-body, not after
	// a fully buffered write.
	batch := make([]int64, 256<<10)
	for i := range batch {
		batch[i] = int64(i) * 2654435761 % (1 << 40)
	}
	frame, err := runio.AppendDataFrame(nil, codec, "", batch)
	if err != nil {
		t.Fatal(err)
	}
	rec := doRaw(t, h, http.MethodPost, "/t/"+tenant+"/ingest", "application/octet-stream", frame)
	if rec.status != http.StatusOK {
		t.Fatalf("failover ingest status %d: %s", rec.status, rec.body.String())
	}
	hd, err := runio.ReadFrameHeader(&rec.body, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := runio.ReadFramePayload(&rec.body, hd, nil)
	if err != nil {
		t.Fatal(err)
	}
	acked, n, err := runio.DecodeAckPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if int(acked) != len(batch) || n != int64(len(batch)) {
		t.Fatalf("survivor acked %d (engine n %d), want the full %d-element batch", acked, n, len(batch))
	}
	if evil.dials.Load() == 0 {
		t.Fatal("evil owner was never dialed — test exercised nothing")
	}
	if got := evil.maxBytes.Load(); got == 0 || got >= int64(len(frame)) {
		t.Fatalf("evil owner read %d bytes of a %d-byte request; want a strict mid-body prefix", got, len(frame))
	}
}

// countingTransport counts round trips per target host.
type countingTransport struct {
	mu     sync.Mutex
	counts map[string]int
}

func (ct *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ct.mu.Lock()
	ct.counts[req.URL.Host]++
	ct.mu.Unlock()
	return http.DefaultTransport.RoundTrip(req)
}

func (ct *countingTransport) count(host string) int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.counts[host]
}

// TestIngestQuarantineSkipsDeadOwner asserts the round-robin cursor stops
// paying the full retry schedule against a known-dead owner: after one
// failed relay the owner is quarantined and the next ingest whose cursor
// lands on it goes straight to a healthy owner (zero dials to the dead
// one), until the window expires and it is probed again.
func TestIngestQuarantineSkipsDeadOwner(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadHost := dead.Addr().String()
	dead.Close() // connection refused from here on
	live := newTestWorker(t)

	ct := &countingTransport{counts: map[string]int{}}
	const quarantine = 500 * time.Millisecond
	c, err := New(Options[int64]{
		Workers:         []string{"http://" + deadHost, live.url()},
		Spread:          2,
		Codec:           runio.Int64Codec{},
		Parse:           engine.Int64Key,
		Client:          &WorkerClient{HTTP: &http.Client{Timeout: 2 * time.Second, Transport: ct}, Backoff: time.Millisecond},
		OwnerQuarantine: quarantine,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	h := c.Handler()

	tenant := tenantOwnedFirstBy(t, c, "http://"+deadHost)
	createTenantOn(t, live.url(), tenant)

	ingest := func(i int) {
		body, _ := json.Marshal(map[string]any{"keys": []int64{int64(i)}})
		rec := doRaw(t, h, http.MethodPost, "/t/"+tenant+"/ingest", "application/json", body)
		if rec.status != http.StatusOK {
			t.Fatalf("ingest %d: status %d %s", i, rec.status, rec.body.String())
		}
	}

	ingest(0) // cursor 0: dead first — pays the full retry schedule once
	afterFirst := ct.count(deadHost)
	if afterFirst != defaultAttempts {
		t.Fatalf("first failover dialed dead owner %d times, want %d", afterFirst, defaultAttempts)
	}
	ingest(1) // cursor 1: live first anyway
	ingest(2) // cursor 2: dead first again — but quarantined now
	if got := ct.count(deadHost); got != afterFirst {
		t.Fatalf("quarantined owner redialed: %d dials after, %d before", got, afterFirst)
	}

	time.Sleep(quarantine + 100*time.Millisecond)
	ingest(3) // cursor 3: live first
	ingest(4) // cursor 4: dead first, quarantine expired — probed again
	if got := ct.count(deadHost); got <= afterFirst {
		t.Fatalf("expired quarantine never re-probed the owner (%d dials)", got)
	}
}
