package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client-side defaults. Three attempts with doubling backoff ride out a
// worker restart measured in tens of milliseconds without stretching a
// genuinely-down worker's failure past ~200ms per call.
const (
	defaultAttempts = 3
	defaultBackoff  = 50 * time.Millisecond
	// maxBackoff caps the doubling: raised attempt counts against a
	// long-dead owner cost at most this much per retry instead of an
	// unbounded geometric stall.
	maxBackoff = 2 * time.Second
)

// nextBackoff doubles a retry delay up to maxBackoff.
func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > maxBackoff {
		return maxBackoff
	}
	return d
}

// sharedTransport pools keep-alive connections to workers across every
// WorkerClient that does not bring its own http.Client. The per-host
// idle pool is sized for scatter-gather fan-out (one conditional GET
// per owner per query, all concurrent), so the warm query path reuses
// established connections instead of paying TCP setup per request —
// http.DefaultTransport's 2 idle conns per host would thrash under
// exactly that load.
var sharedTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
}

// defaultWorkerHTTP is the client WorkerClient falls back to: pooled
// transport, 5-second timeout (a worker answering slower than that is
// down for serving purposes).
var defaultWorkerHTTP = &http.Client{Timeout: 5 * time.Second, Transport: sharedTransport}

// NewWorkerHTTPClient returns an http.Client on the shared keep-alive
// pool with the given per-request timeout — what `opaq coord` and the
// benchmarks hand to WorkerClient so explicit timeouts don't silently
// forfeit connection reuse.
func NewWorkerHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: sharedTransport}
}

// WorkerClient is the coordinator's HTTP client to workers: bounded
// retries with doubling backoff on transport errors and on gateway-ish
// statuses (502/503/504), which a restarting worker's listener can emit.
// 4xx and plain 5xx responses are returned to the caller unretried — they
// are answers, not outages. Every call takes a context honored across
// attempts AND backoff sleeps: a canceled request (client gone, or the
// coordinator draining on SIGTERM) stops retrying immediately instead of
// pinning the handler for the rest of the schedule.
type WorkerClient struct {
	// HTTP is the underlying client; nil means the shared pooled client
	// with a 5-second timeout.
	HTTP *http.Client
	// Attempts is the total try count (0 means 3).
	Attempts int
	// Backoff is the first retry delay, doubling per retry up to a 2s cap
	// (0 means 50ms).
	Backoff time.Duration
}

func (c *WorkerClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultWorkerHTTP
}

// Do issues one logical request with retries. body may be nil; it is
// replayed from the byte slice on every attempt. header (nil is fine)
// is applied to every attempt. Cancellation of ctx aborts in-flight
// attempts and backoff sleeps alike, returning the context's error.
func (c *WorkerClient) Do(ctx context.Context, method, url, contentType string, body []byte, header http.Header) (*http.Response, error) {
	attempts := c.Attempts
	if attempts <= 0 {
		attempts = defaultAttempts
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			// The backoff sleep must not outlive the caller: select against
			// the context so a draining coordinator (or a hung-up client)
			// unblocks the handler immediately.
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			backoff = nextBackoff(backoff)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return nil, err
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			lastErr = fmt.Errorf("cluster: %s %s: status %d", method, url, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("cluster: worker unreachable after %d attempts: %w", attempts, lastErr)
}

// GetBody is Do(GET) returning the response body and status. Transport
// failure after retries returns err != nil; any HTTP status is a success
// at this layer.
func (c *WorkerClient) GetBody(ctx context.Context, url string) (status int, body []byte, err error) {
	status, body, _, err = c.GetBodyTag(ctx, url, "")
	return status, body, err
}

// GetBodyTag is the conditional-fetch variant of GetBody: a non-empty
// ifNoneMatch rides as If-None-Match, and the response's ETag comes back
// alongside the status and body. A 304 answer has no body by protocol —
// the caller reuses what it cached under ifNoneMatch.
func (c *WorkerClient) GetBodyTag(ctx context.Context, url, ifNoneMatch string) (status int, body []byte, etag string, err error) {
	var header http.Header
	if ifNoneMatch != "" {
		header = http.Header{"If-None-Match": {ifNoneMatch}}
	}
	resp, err := c.Do(ctx, http.MethodGet, url, "", nil, header)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, "", err
	}
	return resp.StatusCode, b, resp.Header.Get("ETag"), nil
}
