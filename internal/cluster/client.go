package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client-side defaults. Three attempts with doubling backoff ride out a
// worker restart measured in tens of milliseconds without stretching a
// genuinely-down worker's failure past ~200ms per call.
const (
	defaultAttempts = 3
	defaultBackoff  = 50 * time.Millisecond
)

// WorkerClient is the coordinator's HTTP client to workers: bounded
// retries with doubling backoff on transport errors and on gateway-ish
// statuses (502/503/504), which a restarting worker's listener can emit.
// 4xx and plain 5xx responses are returned to the caller unretried — they
// are answers, not outages.
type WorkerClient struct {
	// HTTP is the underlying client; nil means a client with a 5-second
	// timeout (a worker answering slower than that is down for serving
	// purposes).
	HTTP *http.Client
	// Attempts is the total try count (0 means 3).
	Attempts int
	// Backoff is the first retry delay, doubling per retry (0 means 50ms).
	Backoff time.Duration
}

func (c *WorkerClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Do issues one logical request with retries. body may be nil; it is
// replayed from the byte slice on every attempt.
func (c *WorkerClient) Do(method, url, contentType string, body []byte) (*http.Response, error) {
	attempts := c.Attempts
	if attempts <= 0 {
		attempts = defaultAttempts
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			lastErr = fmt.Errorf("cluster: %s %s: status %d", method, url, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("cluster: worker unreachable after %d attempts: %w", attempts, lastErr)
}

// GetBody is Do(GET) returning the response body and status. Transport
// failure after retries returns err != nil; any HTTP status is a success
// at this layer.
func (c *WorkerClient) GetBody(url string) (status int, body []byte, err error) {
	resp, err := c.Do(http.MethodGet, url, "", nil)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
