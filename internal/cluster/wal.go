// Coordinator-side ingest write-ahead journal.
//
// The coordinator is stateless for queries, but ingest has one failure
// mode statelessness cannot excuse: a batch in flight while *every* owner
// of its tenant is down used to bounce back as a 503 that made retrying
// the client's problem. The WAL closes that gap — the already-buffered
// batch is appended to a per-tenant journal on disk, the client gets
// `202 Accepted` with `X-Opaq-Journaled: true`, and a background
// replayer (replay.go) drains the journal to recovered owners.
//
// On-disk format: each journal is a sequence of runio CRC frames (the
// same header/payload-checksum discipline as the wire protocol and the
// checkpoint format), one record per accepted batch. A record's payload
// is tenant-prefixed like a data frame's, followed by a body-kind byte
// and the request body verbatim:
//
//	uint16 tenant length | tenant bytes | uint8 kind (0=JSON, 1=frames) | body
//
// Every append is fsync'd before the 202 leaves, so an acknowledged
// journal entry survives a coordinator crash. Replay offsets persist in
// a `<tenant>.walpos` sidecar updated after each delivered record; a
// crash between delivery and offset persistence re-delivers the record —
// the journal's contract is at-least-once, per-tenant ordered.
//
// Corruption handling mirrors LoadSummary's: a torn final record (the
// crash-during-append case) is detected by its checksums on open,
// truncated away and ignored — never a crash, never a half batch. A
// replay offset that does not land on a record boundary is reset to the
// journal start (re-delivery again, never corruption).
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"opaq/internal/engine"
	"opaq/internal/runio"
)

// DefaultWALMaxBytes bounds the journals' total on-disk footprint when
// Options.WALMaxBytes is zero. 256 MiB absorbs minutes of full-rate
// ingest during a fleet-wide outage without letting a dead fleet eat the
// coordinator's disk.
const DefaultWALMaxBytes int64 = 256 << 20

// ErrWALFull reports an append past the journal byte budget: the batch
// was dropped (wal_drops) and the owner failure surfaces as the 503 it
// would have been without a journal.
var ErrWALFull = errors.New("cluster: write-ahead journal over byte budget")

const (
	walExt    = ".wal"
	walPosExt = ".walpos"
	// walRecordKind tags journal record frames in the header's codec-kind
	// slot, so a journal file can never be mistaken for (or replayed as) a
	// stream of live data frames by another reader.
	walRecordKind = 0x7741 // "wA"
	// walMaxPayload bounds one record: the proxy body cap plus framing and
	// tenant headroom. Anything larger in a journal is corruption.
	walMaxPayload = maxProxyBody + 1<<16
	// walRecordOverhead is a record's framing cost around its payload.
	walRecordOverhead = runio.FrameHeaderSize + 4
)

// Journal body kinds: how the batch re-enters the ingest path on replay.
const (
	walBodyJSON   byte = 0
	walBodyFrames byte = 1
)

// walContentType maps a record's body kind back to the Content-Type the
// replayer posts it under.
func walContentType(kind byte) string {
	if kind == walBodyFrames {
		return "application/octet-stream"
	}
	return "application/json"
}

// WALRecord is one journaled batch, peeked by the replayer via Next and
// retired with Consume (delivered) or Discard (rejected by the workers).
type WALRecord struct {
	Tenant string
	// ContentType is the ingest Content-Type the body was accepted under.
	ContentType string
	// Body is the buffered request body, byte-for-byte as received.
	Body []byte
	// size is the record's full on-disk footprint (framing included).
	size int64
}

// walFile is one tenant's open journal.
type walFile struct {
	tenant   string
	path     string
	posPath  string
	f        *os.File
	size     int64 // valid journal length (torn tail already truncated)
	consumed int64 // replay offset; records below it are delivered
}

func (wf *walFile) backlog() int64 { return wf.size - wf.consumed }

// WAL is the coordinator's ingest write-ahead journal: one append-only
// file per tenant under a shared byte budget. All methods are safe for
// concurrent use; Append (HTTP handlers) and Next/Consume (the replayer)
// interleave under one lock, which also serializes the per-append fsync.
type WAL struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	files   map[string]*walFile
	pending int64 // total unconsumed bytes across tenants

	appends  atomic.Int64
	replayed atomic.Int64
	drops    atomic.Int64

	// notify wakes the replayer on append without blocking the handler.
	notify chan struct{}
}

// WALStats is the counter block surfaced on /stats and /healthz.
type WALStats struct {
	Appends      int64
	Replayed     int64
	PendingBytes int64
	Drops        int64
	Tenants      int
}

// OpenWAL opens (creating if needed) the journal directory and re-opens
// every journal found there — the coordinator-restart path: pending
// records from a previous life are replayable immediately. Torn final
// records are truncated away; fully consumed journals are removed.
func OpenWAL(dir string, maxBytes int64) (*WAL, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultWALMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: wal dir: %w", err)
	}
	w := &WAL{
		dir:      dir,
		maxBytes: maxBytes,
		files:    map[string]*walFile{},
		notify:   make(chan struct{}, 1),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: wal dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, walExt) {
			continue
		}
		tenant := strings.TrimSuffix(name, walExt)
		if !engine.ValidTenantName(tenant) {
			continue // not ours; never delete foreign files
		}
		wf, err := w.openFile(tenant)
		if err != nil {
			w.Close()
			return nil, err
		}
		if wf.backlog() == 0 {
			w.remove(wf)
			continue
		}
		w.files[tenant] = wf
		w.pending += wf.backlog()
	}
	if w.pending > 0 {
		w.signal()
	}
	return w, nil
}

// openFile opens a tenant's journal, scans it record by record to find
// the valid length (truncating any torn tail in place), and loads the
// persisted replay offset, resetting it to 0 unless it lands exactly on
// a scanned record boundary.
func (w *WAL) openFile(tenant string) (*walFile, error) {
	wf := &walFile{
		tenant:  tenant,
		path:    filepath.Join(w.dir, tenant+walExt),
		posPath: filepath.Join(w.dir, tenant+walPosExt),
	}
	f, err := os.OpenFile(wf.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: wal %s: %w", tenant, err)
	}
	wf.f = f
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: wal %s: %w", tenant, err)
	}
	boundaries := map[int64]bool{0: true}
	sr := io.NewSectionReader(f, 0, st.Size())
	var payload []byte
	var valid int64
	for {
		h, err := runio.ReadFrameHeader(sr, walMaxPayload)
		if err != nil {
			break // io.EOF between records, or a torn/corrupt tail
		}
		if payload, err = runio.ReadFramePayload(sr, h, payload); err != nil {
			break
		}
		if h.Type != runio.FrameData || h.Kind != walRecordKind {
			break
		}
		if _, _, _, err := splitWALPayload(payload); err != nil {
			break
		}
		valid += walRecordOverhead + int64(h.Len)
		boundaries[valid] = true
	}
	wf.size = valid
	if valid < st.Size() {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: wal %s: truncating torn tail: %w", tenant, err)
		}
	}
	wf.consumed = 0
	if b, err := os.ReadFile(wf.posPath); err == nil {
		if off, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64); err == nil && boundaries[off] {
			wf.consumed = off
		}
	}
	return wf, nil
}

// splitWALPayload parses a record payload into tenant, body kind and body.
func splitWALPayload(payload []byte) (tenant string, kind byte, body []byte, err error) {
	if len(payload) < 3 {
		return "", 0, nil, fmt.Errorf("%w: wal payload %d bytes", runio.ErrFrame, len(payload))
	}
	tl := int(binary.LittleEndian.Uint16(payload))
	if len(payload) < 2+tl+1 {
		return "", 0, nil, fmt.Errorf("%w: wal tenant length %d beyond payload", runio.ErrFrame, tl)
	}
	tenant = string(payload[2 : 2+tl])
	kind = payload[2+tl]
	if !engine.ValidTenantName(tenant) || (kind != walBodyJSON && kind != walBodyFrames) {
		return "", 0, nil, fmt.Errorf("%w: wal record tenant %q kind %d", runio.ErrFrame, tenant, kind)
	}
	return tenant, kind, payload[2+tl+1:], nil
}

// Append journals one batch body for the tenant, fsync'd before it
// returns, and reports the journal's total pending bytes. ErrWALFull
// (counted in Drops) rejects an append past the byte budget.
func (w *WAL) Append(tenant string, kind byte, body []byte) (pending int64, err error) {
	payload := make([]byte, 0, 2+len(tenant)+1+len(body))
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(tenant)))
	payload = append(payload, tl[:]...)
	payload = append(payload, tenant...)
	payload = append(payload, kind)
	payload = append(payload, body...)
	rec := runio.AppendRawFrame(nil, runio.FrameData, walRecordKind, payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pending+int64(len(rec)) > w.maxBytes {
		w.drops.Add(1)
		return w.pending, fmt.Errorf("%w (%d pending, budget %d)", ErrWALFull, w.pending, w.maxBytes)
	}
	wf := w.files[tenant]
	if wf == nil {
		wf, err = w.openFile(tenant)
		if err != nil {
			return w.pending, err
		}
		w.files[tenant] = wf
	}
	if _, err := wf.f.WriteAt(rec, wf.size); err != nil {
		return w.pending, fmt.Errorf("cluster: wal %s: %w", tenant, err)
	}
	if err := wf.f.Sync(); err != nil {
		return w.pending, fmt.Errorf("cluster: wal %s: fsync: %w", tenant, err)
	}
	wf.size += int64(len(rec))
	w.pending += int64(len(rec))
	w.appends.Add(1)
	w.signal()
	return w.pending, nil
}

// signal nudges the replayer without ever blocking an ingest handler.
func (w *WAL) signal() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// HasBacklog reports whether the tenant has undelivered journal records —
// the ordering gate: while true, new ingests for the tenant must append
// behind the backlog rather than overtake it on the direct path.
func (w *WAL) HasBacklog(tenant string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	wf := w.files[tenant]
	return wf != nil && wf.backlog() > 0
}

// Tenants lists tenants with backlog, sorted for deterministic passes.
func (w *WAL) Tenants() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.files))
	for tenant, wf := range w.files {
		if wf.backlog() > 0 {
			out = append(out, tenant)
		}
	}
	sort.Strings(out)
	return out
}

// Next peeks the tenant's oldest undelivered record. The returned body
// is a private copy — delivery needs no lock. A record unreadable at the
// offset (impossible after open's sanitizing scan, short of on-disk bit
// rot) discards the tenant's remaining backlog rather than wedging the
// replayer forever.
func (w *WAL) Next(tenant string) (WALRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	wf := w.files[tenant]
	if wf == nil || wf.backlog() == 0 {
		return WALRecord{}, false
	}
	sr := io.NewSectionReader(wf.f, wf.consumed, wf.backlog())
	h, err := runio.ReadFrameHeader(sr, walMaxPayload)
	if err != nil {
		w.dropTailLocked(wf)
		return WALRecord{}, false
	}
	payload, err := runio.ReadFramePayload(sr, h, nil)
	if err != nil || h.Type != runio.FrameData || h.Kind != walRecordKind {
		w.dropTailLocked(wf)
		return WALRecord{}, false
	}
	recTenant, kind, body, err := splitWALPayload(payload)
	if err != nil || recTenant != tenant {
		w.dropTailLocked(wf)
		return WALRecord{}, false
	}
	return WALRecord{
		Tenant:      tenant,
		ContentType: walContentType(kind),
		Body:        body,
		size:        walRecordOverhead + int64(h.Len),
	}, true
}

// Consume retires a delivered record: the replay offset advances, is
// persisted, and a fully drained journal is removed from disk.
func (w *WAL) Consume(tenant string, rec WALRecord) {
	w.replayed.Add(1)
	w.advance(tenant, rec.size)
}

// Discard retires a record the workers rejected outright (4xx): it can
// never land, so it leaves the journal and counts as a drop.
func (w *WAL) Discard(tenant string, rec WALRecord) {
	w.drops.Add(1)
	w.advance(tenant, rec.size)
}

func (w *WAL) advance(tenant string, n int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	wf := w.files[tenant]
	if wf == nil {
		return
	}
	if n > wf.backlog() {
		n = wf.backlog()
	}
	wf.consumed += n
	w.pending -= n
	if wf.backlog() == 0 {
		w.remove(wf)
		return
	}
	writePos(wf.posPath, wf.consumed)
}

// dropTailLocked abandons a tenant's remaining backlog (unreadable
// records). Caller holds w.mu.
func (w *WAL) dropTailLocked(wf *walFile) {
	w.drops.Add(1)
	w.pending -= wf.backlog()
	w.remove(wf)
}

// remove deletes a drained (or abandoned) journal and its offset sidecar.
// Caller holds w.mu (or has exclusive access during open).
func (w *WAL) remove(wf *walFile) {
	wf.f.Close()
	os.Remove(wf.path)
	os.Remove(wf.posPath)
	delete(w.files, wf.tenant)
}

// DropTenant forgets a tenant's journal (admin delete): a deleted tenant
// must not resurrect from its backlog.
func (w *WAL) DropTenant(tenant string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if wf := w.files[tenant]; wf != nil {
		w.pending -= wf.backlog()
		w.remove(wf)
	}
}

// Stats snapshots the journal counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	tenants := 0
	for _, wf := range w.files {
		if wf.backlog() > 0 {
			tenants++
		}
	}
	pending := w.pending
	w.mu.Unlock()
	return WALStats{
		Appends:      w.appends.Load(),
		Replayed:     w.replayed.Load(),
		PendingBytes: pending,
		Drops:        w.drops.Load(),
		Tenants:      tenants,
	}
}

// Close releases the journal file handles. Pending records stay on disk
// for the next OpenWAL — closing loses nothing.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, wf := range w.files {
		wf.f.Close()
	}
	w.files = map[string]*walFile{}
	w.pending = 0
	return nil
}

// writePos persists a replay offset atomically (write-temp-then-rename).
// Best-effort: a lost or torn offset replays from the journal start,
// which at-least-once delivery absorbs.
func writePos(path string, off int64) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	_, werr := f.WriteString(strconv.FormatInt(off, 10))
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp)
		return
	}
	os.Rename(tmp, path)
}
