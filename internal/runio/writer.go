package runio

import (
	"bufio"
	"cmp"
	"fmt"
	"hash/crc32"
	"os"
)

// Writer streams elements into a run file. It buffers writes, maintains a
// running CRC32-C of the payload, and patches the header with the final
// count and checksum on Close.
type Writer[T any] struct {
	f      *os.File
	bw     *bufio.Writer
	codec  Codec[T]
	buf    []byte
	count  uint64
	crc    uint32
	stats  *Stats
	closed bool
}

// NewWriter creates (truncating) the run file at path.
func NewWriter[T any](path string, codec Codec[T]) (*Writer[T], error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("runio: create %s: %w", path, err)
	}
	w := &Writer[T]{
		f:     f,
		bw:    bufio.NewWriterSize(f, 1<<20),
		codec: codec,
		buf:   make([]byte, codec.Size()),
		stats: &Stats{},
	}
	// Placeholder header; patched on Close.
	if _, err := w.bw.Write(encodeHeader(header{kind: codec.Kind(), elemSize: uint16(codec.Size())})); err != nil {
		f.Close()
		return nil, fmt.Errorf("runio: write header: %w", err)
	}
	return w, nil
}

// Append writes vs to the file in order.
func (w *Writer[T]) Append(vs ...T) error {
	if w.closed {
		return ErrClosed
	}
	for _, v := range vs {
		w.codec.Encode(w.buf, v)
		if _, err := w.bw.Write(w.buf); err != nil {
			return fmt.Errorf("runio: append: %w", err)
		}
		w.crc = crc32.Update(w.crc, castagnoli, w.buf)
		w.count++
	}
	w.stats.WriteOps++
	w.stats.BytesWritten += int64(len(vs) * w.codec.Size())
	return nil
}

// Count returns the number of elements appended so far.
func (w *Writer[T]) Count() uint64 { return w.count }

// Stats returns the accumulated write accounting.
func (w *Writer[T]) Stats() Stats { return *w.stats }

// Close flushes buffered data, patches the header with the final element
// count and payload checksum, and closes the file.
func (w *Writer[T]) Close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("runio: flush: %w", err)
	}
	hdr := encodeHeader(header{
		kind:     w.codec.Kind(),
		elemSize: uint16(w.codec.Size()),
		count:    w.count,
		crc:      w.crc,
	})
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		w.f.Close()
		return fmt.Errorf("runio: patch header: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("runio: close: %w", err)
	}
	return nil
}

// WriteFile writes all of xs to a run file at path in one call.
func WriteFile[T any](path string, codec Codec[T], xs []T) error {
	w, err := NewWriter(path, codec)
	if err != nil {
		return err
	}
	if err := w.Append(xs...); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// WriteFileFunc streams n generated elements to a run file without
// materializing them, so datasets larger than memory can be produced.
// gen(i) returns the i-th element.
func WriteFileFunc[T any](path string, codec Codec[T], n int64, gen func(i int64) T) error {
	w, err := NewWriter(path, codec)
	if err != nil {
		return err
	}
	const chunk = 64 * 1024
	buf := make([]T, 0, chunk)
	for i := int64(0); i < n; i++ {
		buf = append(buf, gen(i))
		if len(buf) == chunk {
			if err := w.Append(buf...); err != nil {
				w.Close()
				return err
			}
			buf = buf[:0]
		}
	}
	if err := w.Append(buf...); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// SortedWriter enforces that appended elements arrive in non-decreasing
// order; used when persisting merged sample lists and sorted buckets.
type SortedWriter[T cmp.Ordered] struct {
	*Writer[T]
	last    T
	started bool
}

// NewSortedWriter wraps NewWriter with an order check on Append.
func NewSortedWriter[T cmp.Ordered](path string, codec Codec[T]) (*SortedWriter[T], error) {
	w, err := NewWriter(path, codec)
	if err != nil {
		return nil, err
	}
	return &SortedWriter[T]{Writer: w}, nil
}

// Append writes vs, failing if any element is smaller than its predecessor.
func (w *SortedWriter[T]) Append(vs ...T) error {
	for _, v := range vs {
		if w.started && v < w.last {
			return fmt.Errorf("runio: SortedWriter: out-of-order element %v after %v", v, w.last)
		}
		w.last, w.started = v, true
	}
	return w.Writer.Append(vs...)
}
