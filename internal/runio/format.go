package runio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Run-file format (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "OPAQRUN\x01"
//	8       2     codec kind (Codec.Kind)
//	10      2     element size in bytes
//	12      4     reserved (zero)
//	16      8     element count
//	24      8     CRC32-C of the payload (low 4 bytes; high 4 reserved)
//	32      ...   payload: count elements, each element-size bytes
//
// The header is patched in place when the writer is closed, so run files
// can be streamed out without knowing the final count up front.
const (
	headerSize = 32
	magic      = "OPAQRUN\x01"
)

// Sentinel errors for file-format failures. All format errors wrap one of
// these, so callers can match with errors.Is.
var (
	ErrBadMagic      = errors.New("runio: bad magic (not an OPAQ run file)")
	ErrCodecMismatch = errors.New("runio: file codec does not match reader codec")
	ErrCorrupt       = errors.New("runio: file corrupt")
	ErrClosed        = errors.New("runio: use after Close")
)

// castagnoli is the CRC32-C table used for payload checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded run-file header.
type header struct {
	kind     uint16
	elemSize uint16
	count    uint64
	crc      uint32
}

// encodeHeader serializes h into a fresh headerSize-byte slice.
func encodeHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf, magic)
	binary.LittleEndian.PutUint16(buf[8:], h.kind)
	binary.LittleEndian.PutUint16(buf[10:], h.elemSize)
	binary.LittleEndian.PutUint64(buf[16:], h.count)
	binary.LittleEndian.PutUint32(buf[24:], h.crc)
	return buf
}

// decodeHeader parses and validates a headerSize-byte header.
func decodeHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < headerSize {
		return h, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	if string(buf[:8]) != magic {
		return h, ErrBadMagic
	}
	h.kind = binary.LittleEndian.Uint16(buf[8:])
	h.elemSize = binary.LittleEndian.Uint16(buf[10:])
	h.count = binary.LittleEndian.Uint64(buf[16:])
	h.crc = binary.LittleEndian.Uint32(buf[24:])
	if h.elemSize == 0 {
		return h, fmt.Errorf("%w: zero element size", ErrCorrupt)
	}
	return h, nil
}
