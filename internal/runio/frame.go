// Streaming ingest frames: the wire format of the binary ingest path.
//
// A checkpoint already travels in the runio codec encoding (SaveSummary);
// frames extend the same discipline to live ingest, so an element is
// encoded exactly once — the same little-endian bytes on the socket, in a
// run file and in a checkpoint. A frame is a length-prefixed batch with
// two CRC32-C checksums: one over the fixed header (so a corrupt or lying
// length prefix is rejected *before* any payload allocation) and one over
// the payload (so a torn batch never reaches an engine).
//
// Frame layout (all integers little-endian):
//
//	offset size field
//	0      4    magic "OPQF"
//	4      1    version (1)
//	5      1    frame type (1=data, 2=ack, 3=nack, 4=xfer, 5=barrier, 6=hello)
//	6      2    codec kind (data/xfer frames; 0 otherwise)
//	8      4    payload length
//	12     4    CRC32-C of bytes [0, 12)
//	16     …    payload
//	16+len 4    CRC32-C of the payload
//
// Payloads by frame type:
//
//	data:    uint16 tenant length, tenant bytes, then elements in the codec
//	         encoding (the remaining length must divide the element size)
//	ack:     uint32 elements ingested, int64 engine element count
//	nack:    uint32 Retry-After seconds, uint16 message length, message
//	xfer:    one rank-to-rank transport payload (tagged encoding owned by
//	         the network transport in internal/parallel)
//	barrier: empty — a barrier arrival or release between ranks
//	hello:   mesh handshake (dialer rank, mesh size, codec kind)
//
// The encoders are append-style so a steady-state sender re-uses one
// buffer per connection and allocates nothing per frame.
package runio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
)

// FrameType discriminates ingest frames.
type FrameType uint8

// Frame types.
const (
	// FrameData carries one element batch toward an engine.
	FrameData FrameType = 1
	// FrameAck acknowledges one data frame: the batch is resident in the
	// engine (an acked batch is included in any later checkpoint).
	FrameAck FrameType = 2
	// FrameNack rejects one data frame without dropping the connection —
	// backpressure (with a Retry-After hint) or a per-frame client error.
	FrameNack FrameType = 3
	// FrameXfer carries one rank-to-rank payload of the parallel engine's
	// network transport (Transport.Send / Recv / Exchange / AllGather).
	// The payload encoding is owned by internal/parallel; this layer only
	// guarantees the framing and checksums around it.
	FrameXfer FrameType = 4
	// FrameBarrier is a barrier control message between ranks: an arrival
	// (rank → rank 0) or a release (rank 0 → rank). Its payload is empty.
	FrameBarrier FrameType = 5
	// FrameHello opens every mesh connection of the network transport,
	// identifying the dialing rank and pinning the mesh size and codec so
	// a misconfigured peer fails the handshake instead of corrupting a
	// merge.
	FrameHello FrameType = 6
)

// FrameHeaderSize is the fixed encoded size of a frame header.
const FrameHeaderSize = 16

// frameTailSize is the payload checksum trailing every frame.
const frameTailSize = 4

// DefaultMaxFramePayload caps one frame's payload when a reader passes 0:
// large enough for a million-element int64 batch, small enough that a
// malicious length prefix cannot balloon a connection buffer.
const DefaultMaxFramePayload = 8 << 20

// frameMagic opens every frame.
const frameMagic = "OPQF"

// frameVersion is the current frame-format version.
const frameVersion = 1

// ErrFrame reports a malformed or corrupt ingest frame. Framing is lost
// once it is returned from a stream: the connection must be dropped.
var ErrFrame = errors.New("runio: malformed frame")

// ErrFrameTooLarge reports a frame whose declared payload exceeds the
// reader's bound. The header checksum was valid, so this is an honest
// oversized frame (a client batching over the server's limit), not
// corruption.
var ErrFrameTooLarge = errors.New("runio: frame payload over size bound")

// FrameHeader is a decoded frame header; the payload follows on the wire.
type FrameHeader struct {
	Type FrameType
	// Kind is the codec kind of a data frame's elements (Codec.Kind).
	Kind uint16
	// Len is the payload length in bytes.
	Len uint32
}

// putFrameHeader encodes h into buf, including the header checksum.
func putFrameHeader(buf []byte, h FrameHeader) {
	copy(buf[0:4], frameMagic)
	buf[4] = frameVersion
	buf[5] = byte(h.Type)
	binary.LittleEndian.PutUint16(buf[6:], h.Kind)
	binary.LittleEndian.PutUint32(buf[8:], h.Len)
	binary.LittleEndian.PutUint32(buf[12:], crc32.Checksum(buf[:12], castagnoli))
}

// ReadFrameHeader reads and validates one frame header. maxPayload bounds
// the declared payload length (0 means DefaultMaxFramePayload); the bound
// is enforced after the header checksum, so a corrupt length fails as
// ErrFrame and only an honestly oversized frame fails as ErrFrameTooLarge.
// A stream that ends cleanly between frames returns io.EOF unwrapped, so
// connection loops can distinguish a clean close from a torn frame.
func ReadFrameHeader(r io.Reader, maxPayload uint32) (FrameHeader, error) {
	var h FrameHeader
	var buf [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF {
			return h, io.EOF
		}
		return h, fmt.Errorf("%w: short header: %v", ErrFrame, err)
	}
	if string(buf[0:4]) != frameMagic {
		return h, fmt.Errorf("%w: bad magic", ErrFrame)
	}
	if got, want := binary.LittleEndian.Uint32(buf[12:]), crc32.Checksum(buf[:12], castagnoli); got != want {
		return h, fmt.Errorf("%w: header checksum mismatch %08x != %08x", ErrFrame, got, want)
	}
	if buf[4] != frameVersion {
		return h, fmt.Errorf("%w: version %d, want %d", ErrFrame, buf[4], frameVersion)
	}
	h.Type = FrameType(buf[5])
	switch h.Type {
	case FrameData, FrameAck, FrameNack, FrameXfer, FrameBarrier, FrameHello:
	default:
		return h, fmt.Errorf("%w: unknown frame type %d", ErrFrame, buf[5])
	}
	h.Kind = binary.LittleEndian.Uint16(buf[6:])
	h.Len = binary.LittleEndian.Uint32(buf[8:])
	if maxPayload == 0 {
		maxPayload = DefaultMaxFramePayload
	}
	if h.Len > maxPayload {
		return h, fmt.Errorf("%w: %d bytes, bound %d", ErrFrameTooLarge, h.Len, maxPayload)
	}
	return h, nil
}

// ReadFramePayload reads h.Len payload bytes plus the payload checksum,
// re-using buf when its capacity suffices. The allocation is bounded by
// the maxPayload already enforced on h, so a torn stream can never
// over-allocate.
func ReadFramePayload(r io.Reader, h FrameHeader, buf []byte) ([]byte, error) {
	n := int(h.Len)
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
	}
	var tail [frameTailSize]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return buf, fmt.Errorf("%w: missing payload checksum: %v", ErrFrame, err)
	}
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc32.Checksum(buf, castagnoli); got != want {
		return buf, fmt.Errorf("%w: payload checksum mismatch %08x != %08x", ErrFrame, got, want)
	}
	return buf, nil
}

// sealFrame patches the header and payload checksum around a payload the
// caller appended after a FrameHeaderSize placeholder at start.
func sealFrame(dst []byte, start int, typ FrameType, kind uint16) []byte {
	payload := dst[start+FrameHeaderSize:]
	putFrameHeader(dst[start:], FrameHeader{Type: typ, Kind: kind, Len: uint32(len(payload))})
	var tail [frameTailSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(payload, castagnoli))
	return append(dst, tail[:]...)
}

// AppendDataFrame appends one data frame carrying xs to dst and returns
// the extended slice. tenant routes the batch on multi-tenant listeners
// (empty means the default tenant; on HTTP it must match the route). The
// payload — tenant plus elements — must stay within DefaultMaxFramePayload
// unless the receiver is known to accept more.
func AppendDataFrame[T any](dst []byte, codec Codec[T], tenant string, xs []T) ([]byte, error) {
	if len(tenant) > 0xFFFF {
		return dst, fmt.Errorf("%w: tenant name %d bytes", ErrFrame, len(tenant))
	}
	size := codec.Size()
	payload := 2 + len(tenant) + len(xs)*size
	if uint64(payload) > 0xFFFF_FFFF {
		return dst, fmt.Errorf("%w: batch of %d elements does not fit one frame", ErrFrame, len(xs))
	}
	start := len(dst)
	dst = slices.Grow(dst, FrameHeaderSize+payload+frameTailSize)
	var hdr [FrameHeaderSize]byte
	dst = append(dst, hdr[:]...)
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(tenant)))
	dst = append(dst, tl[:]...)
	dst = append(dst, tenant...)
	// Encode elements in place in the grown region: no per-element scratch
	// buffer, so the whole append is one (amortised-zero) allocation. The
	// bulk path additionally skips the per-element interface dispatch.
	if bulk, ok := codec.(BulkCodec[T]); ok {
		dst = bulk.AppendElems(dst, xs)
	} else {
		for _, v := range xs {
			off := len(dst)
			dst = dst[:off+size]
			codec.Encode(dst[off:], v)
		}
	}
	return sealFrame(dst, start, FrameData, codec.Kind()), nil
}

// AppendRawFrame appends one frame of type typ carrying an opaque payload,
// sealed with the standard header and payload checksums. The network
// transport's control frames (xfer, barrier, hello) are encoded through
// this: the payload semantics live with the sender, the framing discipline
// stays here.
func AppendRawFrame(dst []byte, typ FrameType, kind uint16, payload []byte) []byte {
	start := len(dst)
	dst = slices.Grow(dst, FrameHeaderSize+len(payload)+frameTailSize)
	var hdr [FrameHeaderSize]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return sealFrame(dst, start, typ, kind)
}

// AppendAckFrame appends an ack for a data frame: count elements entered
// an engine whose element count is now n.
func AppendAckFrame(dst []byte, count uint32, n int64) []byte {
	start := len(dst)
	var hdr [FrameHeaderSize]byte
	dst = append(dst, hdr[:]...)
	var p [12]byte
	binary.LittleEndian.PutUint32(p[0:], count)
	binary.LittleEndian.PutUint64(p[4:], uint64(n))
	dst = append(dst, p[:]...)
	return sealFrame(dst, start, FrameAck, 0)
}

// AppendNackFrame appends a rejection: the data frame was not ingested,
// retry after retryAfter seconds (0 for non-retryable client errors), with
// a diagnostic message.
func AppendNackFrame(dst []byte, retryAfter uint32, msg string) []byte {
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	start := len(dst)
	var hdr [FrameHeaderSize]byte
	dst = append(dst, hdr[:]...)
	var p [6]byte
	binary.LittleEndian.PutUint32(p[0:], retryAfter)
	binary.LittleEndian.PutUint16(p[4:], uint16(len(msg)))
	dst = append(dst, p[:]...)
	dst = append(dst, msg...)
	return sealFrame(dst, start, FrameNack, 0)
}

// SplitDataPayload splits a data-frame payload into its tenant name and
// element bytes. The element region must divide elemSize exactly.
func SplitDataPayload(payload []byte, elemSize int) (tenant string, elems []byte, err error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("%w: data payload %d bytes", ErrFrame, len(payload))
	}
	tl := int(binary.LittleEndian.Uint16(payload))
	if len(payload) < 2+tl {
		return "", nil, fmt.Errorf("%w: tenant length %d beyond payload", ErrFrame, tl)
	}
	tenant = string(payload[2 : 2+tl])
	elems = payload[2+tl:]
	if len(elems)%elemSize != 0 {
		return "", nil, fmt.Errorf("%w: %d element bytes not a multiple of %d", ErrFrame, len(elems), elemSize)
	}
	return tenant, elems, nil
}

// DecodeFrameElems appends the elements encoded in elems (a data payload's
// element region) to dst and returns it. With a pre-grown dst the steady
// state performs zero allocations — the binary ingest path's per-element
// cost is one codec decode, not one parse.
func DecodeFrameElems[T any](codec Codec[T], elems []byte, dst []T) ([]T, error) {
	size := codec.Size()
	if len(elems)%size != 0 {
		return dst, fmt.Errorf("%w: %d element bytes not a multiple of %d", ErrFrame, len(elems), size)
	}
	if bulk, ok := codec.(BulkCodec[T]); ok {
		return bulk.DecodeElems(dst, elems), nil
	}
	for off := 0; off < len(elems); off += size {
		dst = append(dst, codec.Decode(elems[off:off+size]))
	}
	return dst, nil
}

// DecodeAckPayload decodes an ack-frame payload.
func DecodeAckPayload(payload []byte) (count uint32, n int64, err error) {
	if len(payload) != 12 {
		return 0, 0, fmt.Errorf("%w: ack payload %d bytes, want 12", ErrFrame, len(payload))
	}
	return binary.LittleEndian.Uint32(payload[0:]),
		int64(binary.LittleEndian.Uint64(payload[4:])), nil
}

// DecodeNackPayload decodes a nack-frame payload.
func DecodeNackPayload(payload []byte) (retryAfter uint32, msg string, err error) {
	if len(payload) < 6 {
		return 0, "", fmt.Errorf("%w: nack payload %d bytes", ErrFrame, len(payload))
	}
	ml := int(binary.LittleEndian.Uint16(payload[4:]))
	if len(payload) != 6+ml {
		return 0, "", fmt.Errorf("%w: nack message length %d, payload %d", ErrFrame, ml, len(payload))
	}
	return binary.LittleEndian.Uint32(payload[0:]), string(payload[6 : 6+ml]), nil
}
