package runio

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// ShardRanges cuts n elements into shards contiguous [start, end) ranges
// in which every range but the last covers a whole number of runLen-element
// runs — the alignment under which a sharded build is bit-identical to a
// sequential one. Runs are distributed as evenly as possible; with fewer
// runs than shards, trailing ranges are empty.
func ShardRanges(n int64, shards, runLen int) ([][2]int64, error) {
	if shards < 1 {
		return nil, fmt.Errorf("runio: need ≥ 1 shard, got %d", shards)
	}
	if runLen < 1 {
		return nil, fmt.Errorf("runio: need positive run length, got %d", runLen)
	}
	totalRuns := (n + int64(runLen) - 1) / int64(runLen)
	out := make([][2]int64, shards)
	q, r := totalRuns/int64(shards), totalRuns%int64(shards)
	start := int64(0)
	for i := range out {
		nRuns := q
		if int64(i) < r {
			nRuns++
		}
		end := min(start+nRuns*int64(runLen), n)
		out[i] = [2]int64{start, end}
		start = end
	}
	return out, nil
}

// Section returns a Dataset over the element range [start, end) of the
// file — the substrate for sharding one run file across engine ranks
// without materializing it. Elements are fixed-width, so a section scan is
// one seek plus a sequential read of exactly the section's bytes.
func (d *FileDataset[T]) Section(start, end int64) (*FileSection[T], error) {
	if start < 0 || end < start || end > int64(d.hdr.count) {
		return nil, fmt.Errorf("runio: section [%d, %d) out of range for %d elements", start, end, d.hdr.count)
	}
	return &FileSection[T]{d: d, start: start, end: end}, nil
}

// Sections splits the file into run-aligned sections per ShardRanges.
func (d *FileDataset[T]) Sections(shards, runLen int) ([]*FileSection[T], error) {
	ranges, err := ShardRanges(int64(d.hdr.count), shards, runLen)
	if err != nil {
		return nil, err
	}
	out := make([]*FileSection[T], len(ranges))
	for i, r := range ranges {
		if out[i], err = d.Section(r[0], r[1]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FileSection is a Dataset over a contiguous element range of a run file.
type FileSection[T any] struct {
	d          *FileDataset[T]
	start, end int64
	stats      Stats
}

// Count implements Dataset.
func (s *FileSection[T]) Count() int64 { return s.end - s.start }

// Stats implements Dataset.
func (s *FileSection[T]) Stats() Stats { return s.stats }

// Runs implements Dataset: a fresh sequential scan of the section.
func (s *FileSection[T]) Runs(m int) (RunReader[T], error) {
	if m <= 0 {
		return nil, fmt.Errorf("runio: run length must be positive, got %d", m)
	}
	f, err := os.Open(s.d.path)
	if err != nil {
		return nil, fmt.Errorf("runio: open %s: %w", s.d.path, err)
	}
	off := headerSize + s.start*int64(s.d.codec.Size())
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runio: seek to section start: %w", err)
	}
	return &fileRunReader[T]{
		f:     f,
		br:    bufio.NewReaderSize(f, 1<<20),
		stats: &s.stats,
		count: s.Count(),
		m:     m,
		left:  s.Count(),
		ebuf:  make([]byte, m*s.d.codec.Size()),
		codec: s.d.codec,
	}, nil
}
