package runio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

// readFrame reads one whole frame (header + payload) from r.
func readFrame(t *testing.T, r io.Reader, maxPayload uint32) (FrameHeader, []byte) {
	t.Helper()
	h, err := ReadFrameHeader(r, maxPayload)
	if err != nil {
		t.Fatalf("ReadFrameHeader: %v", err)
	}
	p, err := ReadFramePayload(r, h, nil)
	if err != nil {
		t.Fatalf("ReadFramePayload: %v", err)
	}
	return h, p
}

func TestDataFrameRoundTrip(t *testing.T) {
	codec := Int64Codec{}
	xs := []int64{-5, 0, 7, 1 << 40, -(1 << 62)}
	frame, err := AppendDataFrame(nil, codec, "tenant-a", xs)
	if err != nil {
		t.Fatalf("AppendDataFrame: %v", err)
	}
	if len(frame) != FrameHeaderSize+2+len("tenant-a")+8*len(xs)+4 {
		t.Fatalf("frame length %d", len(frame))
	}

	h, p := readFrame(t, bytes.NewReader(frame), 0)
	if h.Type != FrameData || h.Kind != KindInt64 {
		t.Fatalf("header %+v", h)
	}
	tenant, elems, err := SplitDataPayload(p, codec.Size())
	if err != nil {
		t.Fatalf("SplitDataPayload: %v", err)
	}
	if tenant != "tenant-a" {
		t.Fatalf("tenant %q", tenant)
	}
	got, err := DecodeFrameElems(codec, elems, nil)
	if err != nil {
		t.Fatalf("DecodeFrameElems: %v", err)
	}
	if len(got) != len(xs) {
		t.Fatalf("decoded %d elements, want %d", len(got), len(xs))
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], xs[i])
		}
	}
}

func TestDataFrameEmptyTenantAndBatch(t *testing.T) {
	frame, err := AppendDataFrame(nil, Float64Codec{}, "", nil)
	if err != nil {
		t.Fatalf("AppendDataFrame: %v", err)
	}
	h, p := readFrame(t, bytes.NewReader(frame), 0)
	if h.Kind != KindFloat64 {
		t.Fatalf("kind %d", h.Kind)
	}
	tenant, elems, err := SplitDataPayload(p, 8)
	if err != nil || tenant != "" || len(elems) != 0 {
		t.Fatalf("tenant %q elems %d err %v", tenant, len(elems), err)
	}
}

func TestAckNackRoundTrip(t *testing.T) {
	frame := AppendAckFrame(nil, 8192, 1<<50)
	frame = AppendNackFrame(frame, 3, "backlogged")

	r := bytes.NewReader(frame)
	h, p := readFrame(t, r, 0)
	if h.Type != FrameAck {
		t.Fatalf("type %d", h.Type)
	}
	count, n, err := DecodeAckPayload(p)
	if err != nil || count != 8192 || n != 1<<50 {
		t.Fatalf("ack %d %d %v", count, n, err)
	}

	h, p = readFrame(t, r, 0)
	if h.Type != FrameNack {
		t.Fatalf("type %d", h.Type)
	}
	retry, msg, err := DecodeNackPayload(p)
	if err != nil || retry != 3 || msg != "backlogged" {
		t.Fatalf("nack %d %q %v", retry, msg, err)
	}

	if _, err := ReadFrameHeader(r, 0); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func TestAppendDataFrameReusesBuffer(t *testing.T) {
	codec := Int64Codec{}
	xs := []int64{1, 2, 3}
	buf, err := AppendDataFrame(nil, codec, "t", xs)
	if err != nil {
		t.Fatal(err)
	}
	grown := append(buf, make([]byte, 256)...)[:0]
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		grown, err = AppendDataFrame(grown[:0], codec, "t", xs)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendDataFrame into pre-grown buffer: %.1f allocs/op, want 0", allocs)
	}
}

func TestDecodeFrameElemsZeroAlloc(t *testing.T) {
	codec := Int64Codec{}
	xs := make([]int64, 512)
	for i := range xs {
		xs[i] = int64(i * 3)
	}
	frame, err := AppendDataFrame(nil, codec, "", xs)
	if err != nil {
		t.Fatal(err)
	}
	_, elems, err := SplitDataPayload(frame[FrameHeaderSize:len(frame)-4], codec.Size())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int64, 0, len(xs))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = DecodeFrameElems(codec, elems, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeFrameElems into pre-grown dst: %.1f allocs/op, want 0", allocs)
	}
}

func TestReadFrameHeaderTruncation(t *testing.T) {
	frame, err := AppendDataFrame(nil, Int64Codec{}, "t", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// A clean EOF before any byte of a header is a frame-boundary close.
	if _, err := ReadFrameHeader(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	// Every other truncation point must produce ErrFrame, from either the
	// header read or the payload read.
	for cut := 1; cut < len(frame); cut++ {
		r := bytes.NewReader(frame[:cut])
		h, err := ReadFrameHeader(r, 0)
		if err == nil {
			_, err = ReadFramePayload(r, h, nil)
		}
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("cut at %d: err %v, want ErrFrame", cut, err)
		}
	}
}

func TestReadFrameHeaderCorruption(t *testing.T) {
	base, err := AppendDataFrame(nil, Int64Codec{}, "t", []int64{9, 8, 7})
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte)) {
		frame := bytes.Clone(base)
		mutate(frame)
		r := bytes.NewReader(frame)
		h, err := ReadFrameHeader(r, 0)
		if err == nil {
			_, err = ReadFramePayload(r, h, nil)
		}
		if !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err %v, want ErrFrame", name, err)
		}
	}

	corrupt("bad magic", func(f []byte) { f[0] = 'X' })
	corrupt("bad version", func(f []byte) { f[4] = 99; fixHeaderCRC(f) })
	corrupt("bad type", func(f []byte) { f[5] = 42; fixHeaderCRC(f) })
	corrupt("flipped length bit", func(f []byte) { f[8] ^= 1 })
	corrupt("flipped header CRC", func(f []byte) { f[12] ^= 0x80 })
	corrupt("flipped payload byte", func(f []byte) { f[FrameHeaderSize] ^= 1 })
	corrupt("flipped payload CRC", func(f []byte) { f[len(f)-1] ^= 1 })
	// A shrunk-but-CRC-fixed length makes the payload checksum read from
	// inside the old payload: must fail the payload CRC.
	corrupt("shrunk length", func(f []byte) {
		binary.LittleEndian.PutUint32(f[8:], 8)
		fixHeaderCRC(f)
	})
}

// fixHeaderCRC recomputes the header checksum after a deliberate header
// mutation, so the test exercises the post-CRC validation layers.
func fixHeaderCRC(f []byte) {
	binary.LittleEndian.PutUint32(f[12:], crc32.Checksum(f[:12], castagnoli))
}

func TestReadFrameHeaderOversized(t *testing.T) {
	var hdr [FrameHeaderSize]byte
	putFrameHeader(hdr[:], FrameHeader{Type: FrameData, Kind: KindInt64, Len: DefaultMaxFramePayload + 1})
	_, err := ReadFrameHeader(bytes.NewReader(hdr[:]), 0)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err %v, want ErrFrameTooLarge", err)
	}
	// And with an explicit tighter bound.
	putFrameHeader(hdr[:], FrameHeader{Type: FrameData, Kind: KindInt64, Len: 1024})
	if _, err := ReadFrameHeader(bytes.NewReader(hdr[:]), 512); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err %v, want ErrFrameTooLarge", err)
	}
	// At exactly the bound the header itself must pass (the payload is
	// absent here; only its read would fail).
	if _, err := ReadFrameHeader(bytes.NewReader(hdr[:]), 1024); err != nil {
		t.Fatalf("in-bound header rejected: %v", err)
	}
}

func TestSplitDataPayloadMalformed(t *testing.T) {
	if _, _, err := SplitDataPayload([]byte{1}, 8); !errors.Is(err, ErrFrame) {
		t.Fatalf("1-byte payload: %v", err)
	}
	// Tenant length pointing past the payload.
	p := []byte{0xFF, 0x00, 'a', 'b'}
	if _, _, err := SplitDataPayload(p, 8); !errors.Is(err, ErrFrame) {
		t.Fatalf("overlong tenant: %v", err)
	}
	// Element bytes not a multiple of the element size.
	p = []byte{1, 0, 't', 1, 2, 3}
	if _, _, err := SplitDataPayload(p, 8); !errors.Is(err, ErrFrame) {
		t.Fatalf("ragged elements: %v", err)
	}
}

func TestAppendDataFrameTenantTooLong(t *testing.T) {
	if _, err := AppendDataFrame(nil, Int64Codec{}, strings.Repeat("x", 1<<16), []int64{1}); !errors.Is(err, ErrFrame) {
		t.Fatalf("err %v, want ErrFrame", err)
	}
}

func TestReadFramePayloadReusesBuffer(t *testing.T) {
	frame, err := AppendDataFrame(nil, Int64Codec{}, "", []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 1024)
	r := bytes.NewReader(frame)
	h, err := ReadFrameHeader(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ReadFramePayload(r, h, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &p[0] != &buf[:1][0] {
		t.Fatal("payload not read into the provided buffer")
	}
}

// FuzzFrame feeds arbitrary bytes through the frame reader: it must either
// yield a structurally valid frame or fail with ErrFrame/ErrFrameTooLarge,
// and must never allocate past the size bound regardless of the declared
// length (the LoadSummary discipline).
func FuzzFrame(f *testing.F) {
	seed, _ := AppendDataFrame(nil, Int64Codec{}, "t0", []int64{3, 1, 4, 1, 5})
	f.Add(seed)
	f.Add(AppendAckFrame(nil, 7, 42))
	f.Add(AppendNackFrame(nil, 2, "shed"))
	f.Add([]byte(frameMagic))
	f.Add([]byte{})

	const bound = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			h, err := ReadFrameHeader(r, bound)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("ReadFrameHeader: unexpected error %v", err)
				}
				return
			}
			if h.Len > bound {
				t.Fatalf("header passed with Len %d over bound", h.Len)
			}
			p, err := ReadFramePayload(r, h, nil)
			if err != nil {
				if !errors.Is(err, ErrFrame) {
					t.Fatalf("ReadFramePayload: unexpected error %v", err)
				}
				return
			}
			switch h.Type {
			case FrameData:
				tenant, elems, err := SplitDataPayload(p, 8)
				if err == nil {
					if len(tenant) > len(p) {
						t.Fatal("tenant longer than payload")
					}
					if _, err := DecodeFrameElems(Int64Codec{}, elems, nil); err != nil {
						t.Fatalf("split accepted but decode failed: %v", err)
					}
				} else if !errors.Is(err, ErrFrame) {
					t.Fatalf("SplitDataPayload: unexpected error %v", err)
				}
			case FrameAck:
				if _, _, err := DecodeAckPayload(p); err != nil && !errors.Is(err, ErrFrame) {
					t.Fatalf("DecodeAckPayload: unexpected error %v", err)
				}
			case FrameNack:
				if _, _, err := DecodeNackPayload(p); err != nil && !errors.Is(err, ErrFrame) {
					t.Fatalf("DecodeNackPayload: unexpected error %v", err)
				}
			}
		}
	})
}
