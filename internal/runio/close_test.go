package runio

import (
	"io"
	"os"
	"testing"
)

// openFDs counts this process's open file descriptors via /proc. Skips the
// test on platforms without a /proc filesystem.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot enumerate fds: %v", err)
	}
	return len(ents)
}

// writeSeq writes n sequential int64 keys to a fresh run file.
func writeSeq(t *testing.T, n int) *FileDataset[int64] {
	t.Helper()
	path := tmpPath(t)
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	if err := WriteFile(path, Int64Codec{}, data); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAbandonedScanDoesNotLeakFDs is the regression test for the fd leak:
// before RunReader grew Close, a consumer that stopped reading mid-scan
// left the descriptor open until process exit, so a long-lived process
// doing many early-exit scans (a multipass that narrows, a cancelled bulk
// load) ran out of descriptors.
func TestAbandonedScanDoesNotLeakFDs(t *testing.T) {
	d := writeSeq(t, 1000)
	before := openFDs(t)
	const scans = 64
	for i := 0; i < scans; i++ {
		rr, err := d.Runs(16)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rr.NextRun(); err != nil { // touch the scan, then abandon it
			t.Fatal(err)
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("close abandoned scan %d: %v", i, err)
		}
	}
	if after := openFDs(t); after > before {
		t.Fatalf("abandoned scans leaked descriptors: %d open before, %d after %d scans",
			before, after, scans)
	}
}

// TestSectionAbandonedScanDoesNotLeakFDs covers the same leak through the
// FileSection scan path used by sharded builds.
func TestSectionAbandonedScanDoesNotLeakFDs(t *testing.T) {
	d := writeSeq(t, 1000)
	secs, err := d.Sections(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := openFDs(t)
	for i := 0; i < 32; i++ {
		for _, s := range secs {
			rr, err := s.Runs(16)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rr.NextRun(); err != nil {
				t.Fatal(err)
			}
			if err := rr.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if after := openFDs(t); after > before {
		t.Fatalf("abandoned section scans leaked descriptors: %d before, %d after", before, after)
	}
}

// TestRunReaderCloseSemantics pins the contract: Close is idempotent, a
// closed reader reports io.EOF, and a scan read through to EOF may still be
// closed harmlessly.
func TestRunReaderCloseSemantics(t *testing.T) {
	d := writeSeq(t, 64)
	rr, err := d.Runs(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.NextRun(); err != nil {
		t.Fatal(err)
	}
	if err := rr.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := rr.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := rr.NextRun(); err != io.EOF {
		t.Fatalf("NextRun after Close = %v, want io.EOF", err)
	}

	// Full scan, then Close.
	rr, err = d.Runs(16)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := rr.NextRun(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := rr.Close(); err != nil {
		t.Fatalf("close after EOF: %v", err)
	}

	// In-memory readers satisfy the same contract.
	mem := NewMemoryDataset([]int64{1, 2, 3}, 8)
	mr, err := mem.Runs(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mr.NextRun(); err != io.EOF {
		t.Fatalf("memory NextRun after Close = %v, want io.EOF", err)
	}
}

// TestPrefetchCloseReleasesInner checks that closing a prefetch-wrapped
// scan early stops the read-ahead goroutine and releases the underlying
// descriptor.
func TestPrefetchCloseReleasesInner(t *testing.T) {
	d := writeSeq(t, 4096)
	before := openFDs(t)
	for i := 0; i < 32; i++ {
		rr, err := d.Runs(64)
		if err != nil {
			t.Fatal(err)
		}
		pf := Prefetch(rr, 2)
		if _, err := pf.NextRun(); err != nil {
			t.Fatal(err)
		}
		if err := pf.Close(); err != nil {
			t.Fatalf("prefetch close %d: %v", i, err)
		}
		if err := pf.Close(); err != nil {
			t.Fatalf("prefetch double close %d: %v", i, err)
		}
	}
	if after := openFDs(t); after > before {
		t.Fatalf("prefetch-abandoned scans leaked descriptors: %d before, %d after", before, after)
	}
}
