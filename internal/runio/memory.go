package runio

import (
	"fmt"
	"io"
	"unsafe"
)

// ElemSize returns the modeled on-disk width in bytes of one element of
// type T: its in-memory size, which for every fixed-width numeric key type
// equals the width of its Codec (4 for the 32-bit types, 8 for the 64-bit
// ones). In-memory datasets charge this width in their I/O accounting so
// that modeled stats for a given element type match the file-backed path.
func ElemSize[T any]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// MemoryDataset is a Dataset over an in-memory slice. It charges the same
// I/O accounting as a file-backed dataset so simulated-time experiments can
// run entirely in memory; elemSize is the modeled on-disk element width.
type MemoryDataset[T any] struct {
	data     []T
	elemSize int
	stats    Stats
}

// NewMemoryDataset wraps data; elemSize is the per-element byte width used
// for accounting (8 for the int64/float64 codecs).
func NewMemoryDataset[T any](data []T, elemSize int) *MemoryDataset[T] {
	return &MemoryDataset[T]{data: data, elemSize: elemSize}
}

// Count implements Dataset.
func (d *MemoryDataset[T]) Count() int64 { return int64(len(d.data)) }

// Stats implements Dataset.
func (d *MemoryDataset[T]) Stats() Stats { return d.stats }

// Runs implements Dataset.
func (d *MemoryDataset[T]) Runs(m int) (RunReader[T], error) {
	if m <= 0 {
		return nil, fmt.Errorf("runio: run length must be positive, got %d", m)
	}
	return &memRunReader[T]{d: d, m: m}, nil
}

type memRunReader[T any] struct {
	d   *MemoryDataset[T]
	m   int
	pos int
}

// NextRun implements RunReader. Each run is a fresh copy: the sample phase
// reorders runs in place, and the dataset must stay scannable.
func (r *memRunReader[T]) NextRun() ([]T, error) {
	if r.pos >= len(r.d.data) {
		return nil, io.EOF
	}
	end := r.pos + r.m
	if end > len(r.d.data) {
		end = len(r.d.data)
	}
	run := make([]T, end-r.pos)
	copy(run, r.d.data[r.pos:end])
	r.d.stats.ReadOps++
	r.d.stats.BytesRead += int64(len(run) * r.d.elemSize)
	r.pos = end
	return run, nil
}

// Close implements RunReader: an in-memory scan holds no resources, so it
// only marks the scan exhausted.
func (r *memRunReader[T]) Close() error {
	r.pos = len(r.d.data)
	return nil
}

// Count implements RunReader.
func (r *memRunReader[T]) Count() int64 { return int64(len(r.d.data)) }

// RunLen implements RunReader.
func (r *memRunReader[T]) RunLen() int { return r.m }
