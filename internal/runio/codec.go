// Package runio provides the disk-resident dataset substrate that OPAQ runs
// over: a binary run-file format with a self-describing header, buffered
// sequential writers and readers that deliver the data as fixed-size runs,
// an in-memory dataset behind the same interfaces, and I/O accounting with
// a pluggable disk cost model.
//
// The paper assumes the input "is disk-resident" and is consumed as r runs
// of m elements each (Section 2); everything else about the medium is
// irrelevant to the algorithm. This package therefore exposes exactly one
// abstraction — RunReader, a sequential run iterator — and records the
// operation counts needed to model I/O time (the paper's Tables 11–12
// report I/O as ~50% of total execution time; see DiskModel).
package runio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec describes how a fixed-width element type is serialized into run
// files. Implementations must be stateless and safe for concurrent use.
type Codec[T any] interface {
	// Size returns the encoded width of one element, in bytes.
	Size() int
	// Encode writes v into buf, which has at least Size() bytes.
	Encode(buf []byte, v T)
	// Decode reads one element from buf, which has at least Size() bytes.
	Decode(buf []byte) T
	// Kind returns the format tag stored in the file header, so a reader
	// can reject files written with a different element type.
	Kind() uint16
}

// BulkCodec is an optional Codec extension: codecs that can encode and
// decode whole slices without a per-element indirect call. The frame hot
// path (AppendDataFrame, DecodeFrameElems) uses it when present — on a
// wire-speed stream the per-element interface dispatch is a measurable
// fraction of the total — and every codec in this package implements it.
type BulkCodec[T any] interface {
	// AppendElems appends each element's wire record to dst.
	AppendElems(dst []byte, xs []T) []byte
	// DecodeElems appends each record in src, whose length must be a
	// multiple of Size(), to dst.
	DecodeElems(dst []T, src []byte) []T
}

// Codec kinds recorded in file headers.
const (
	KindInt64   uint16 = 1
	KindFloat64 uint16 = 2
	KindUint64  uint16 = 3
	KindInt32   uint16 = 4
	KindUint32  uint16 = 5
	KindFloat32 uint16 = 6
)

// Int64Codec encodes int64 keys little-endian; the integer-key workloads of
// the paper's evaluation use this codec.
type Int64Codec struct{}

// Size implements Codec.
func (Int64Codec) Size() int { return 8 }

// Encode implements Codec.
func (Int64Codec) Encode(buf []byte, v int64) { binary.LittleEndian.PutUint64(buf, uint64(v)) }

// Decode implements Codec.
func (Int64Codec) Decode(buf []byte) int64 { return int64(binary.LittleEndian.Uint64(buf)) }

// Kind implements Codec.
func (Int64Codec) Kind() uint16 { return KindInt64 }

// AppendElems implements BulkCodec.
func (Int64Codec) AppendElems(dst []byte, xs []int64) []byte {
	for _, v := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// DecodeElems implements BulkCodec.
func (Int64Codec) DecodeElems(dst []int64, src []byte) []int64 {
	for ; len(src) >= 8; src = src[8:] {
		dst = append(dst, int64(binary.LittleEndian.Uint64(src)))
	}
	return dst
}

// Float64Codec encodes float64 keys via their IEEE-754 bits.
type Float64Codec struct{}

// Size implements Codec.
func (Float64Codec) Size() int { return 8 }

// Encode implements Codec.
func (Float64Codec) Encode(buf []byte, v float64) {
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
}

// Decode implements Codec.
func (Float64Codec) Decode(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}

// Kind implements Codec.
func (Float64Codec) Kind() uint16 { return KindFloat64 }

// AppendElems implements BulkCodec.
func (Float64Codec) AppendElems(dst []byte, xs []float64) []byte {
	for _, v := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeElems implements BulkCodec.
func (Float64Codec) DecodeElems(dst []float64, src []byte) []float64 {
	for ; len(src) >= 8; src = src[8:] {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(src)))
	}
	return dst
}

// Uint64Codec encodes uint64 keys little-endian.
type Uint64Codec struct{}

// Size implements Codec.
func (Uint64Codec) Size() int { return 8 }

// Encode implements Codec.
func (Uint64Codec) Encode(buf []byte, v uint64) { binary.LittleEndian.PutUint64(buf, v) }

// Decode implements Codec.
func (Uint64Codec) Decode(buf []byte) uint64 { return binary.LittleEndian.Uint64(buf) }

// Kind implements Codec.
func (Uint64Codec) Kind() uint16 { return KindUint64 }

// AppendElems implements BulkCodec.
func (Uint64Codec) AppendElems(dst []byte, xs []uint64) []byte {
	for _, v := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeElems implements BulkCodec.
func (Uint64Codec) DecodeElems(dst []uint64, src []byte) []uint64 {
	for ; len(src) >= 8; src = src[8:] {
		dst = append(dst, binary.LittleEndian.Uint64(src))
	}
	return dst
}

// Int32Codec encodes int32 keys little-endian, halving the disk footprint
// for workloads whose key space fits 32 bits.
type Int32Codec struct{}

// Size implements Codec.
func (Int32Codec) Size() int { return 4 }

// Encode implements Codec.
func (Int32Codec) Encode(buf []byte, v int32) { binary.LittleEndian.PutUint32(buf, uint32(v)) }

// Decode implements Codec.
func (Int32Codec) Decode(buf []byte) int32 { return int32(binary.LittleEndian.Uint32(buf)) }

// Kind implements Codec.
func (Int32Codec) Kind() uint16 { return KindInt32 }

// AppendElems implements BulkCodec.
func (Int32Codec) AppendElems(dst []byte, xs []int32) []byte {
	for _, v := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// DecodeElems implements BulkCodec.
func (Int32Codec) DecodeElems(dst []int32, src []byte) []int32 {
	for ; len(src) >= 4; src = src[4:] {
		dst = append(dst, int32(binary.LittleEndian.Uint32(src)))
	}
	return dst
}

// Uint32Codec encodes uint32 keys little-endian.
type Uint32Codec struct{}

// Size implements Codec.
func (Uint32Codec) Size() int { return 4 }

// Encode implements Codec.
func (Uint32Codec) Encode(buf []byte, v uint32) { binary.LittleEndian.PutUint32(buf, v) }

// Decode implements Codec.
func (Uint32Codec) Decode(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf) }

// Kind implements Codec.
func (Uint32Codec) Kind() uint16 { return KindUint32 }

// AppendElems implements BulkCodec.
func (Uint32Codec) AppendElems(dst []byte, xs []uint32) []byte {
	for _, v := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// DecodeElems implements BulkCodec.
func (Uint32Codec) DecodeElems(dst []uint32, src []byte) []uint32 {
	for ; len(src) >= 4; src = src[4:] {
		dst = append(dst, binary.LittleEndian.Uint32(src))
	}
	return dst
}

// Float32Codec encodes float32 keys via their IEEE-754 bits.
type Float32Codec struct{}

// Size implements Codec.
func (Float32Codec) Size() int { return 4 }

// Encode implements Codec.
func (Float32Codec) Encode(buf []byte, v float32) {
	binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
}

// Decode implements Codec.
func (Float32Codec) Decode(buf []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(buf))
}

// Kind implements Codec.
func (Float32Codec) Kind() uint16 { return KindFloat32 }

// AppendElems implements BulkCodec.
func (Float32Codec) AppendElems(dst []byte, xs []float32) []byte {
	for _, v := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// DecodeElems implements BulkCodec.
func (Float32Codec) DecodeElems(dst []float32, src []byte) []float32 {
	for ; len(src) >= 4; src = src[4:] {
		dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(src)))
	}
	return dst
}

// CodecFor returns the package codec for T when T is one of the six
// supported fixed-width element types. Callers that are generic over
// cmp.Ordered but need a wire encoding (the network transport behind
// BuildSharded) resolve their codec here instead of threading one through
// every signature; unsupported element types report ok=false.
func CodecFor[T any]() (Codec[T], bool) {
	for _, c := range []any{
		Int64Codec{}, Float64Codec{}, Uint64Codec{},
		Int32Codec{}, Uint32Codec{}, Float32Codec{},
	} {
		if cc, ok := c.(Codec[T]); ok {
			return cc, true
		}
	}
	return nil, false
}

// kindName maps codec kinds to human-readable names for error messages.
func kindName(k uint16) string {
	switch k {
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindUint64:
		return "uint64"
	case KindInt32:
		return "int32"
	case KindUint32:
		return "uint32"
	case KindFloat32:
		return "float32"
	default:
		return fmt.Sprintf("unknown(%d)", k)
	}
}
