package runio

import (
	"io"
	"sync"
)

// Prefetch wraps a RunReader so that the next run is read ahead by a
// background goroutine while the caller processes the current one — the
// I/O–computation overlap the paper lists as future work ("we can
// significantly reduce the total execution time by overlapping the I/O
// and the computation", Section 4). depth is the number of runs buffered
// ahead; 1 suffices to hide I/O behind sampling when the two are
// comparable, which is exactly the regime Tables 11–12 report.
//
// The wrapped reader must not be used directly afterwards. Close-like
// cleanup is automatic: the goroutine exits after delivering io.EOF or an
// error, or when Stop is called.
func Prefetch[T any](rr RunReader[T], depth int) *PrefetchReader[T] {
	if depth < 1 {
		depth = 1
	}
	p := &PrefetchReader[T]{
		inner:    rr,
		ch:       make(chan prefetched[T], depth),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go p.loop()
	return p
}

type prefetched[T any] struct {
	run []T
	err error
}

// PrefetchReader is a RunReader that reads ahead; see Prefetch.
type PrefetchReader[T any] struct {
	inner    RunReader[T]
	ch       chan prefetched[T]
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	done     bool
}

func (p *PrefetchReader[T]) loop() {
	defer close(p.loopDone)
	defer close(p.ch)
	for {
		run, err := p.inner.NextRun()
		select {
		case p.ch <- prefetched[T]{run: run, err: err}:
			if err != nil {
				return
			}
		case <-p.stop:
			return
		}
	}
}

// NextRun implements RunReader, delivering prefetched runs in order.
func (p *PrefetchReader[T]) NextRun() ([]T, error) {
	if p.done {
		return nil, errDone(p)
	}
	msg, ok := <-p.ch
	if !ok {
		p.done = true
		return nil, errDone(p)
	}
	if msg.err != nil {
		p.done = true
		return nil, msg.err
	}
	return msg.run, nil
}

// errDone returns the terminal error after the stream is exhausted: the
// inner reader's own terminal error was already delivered once, so any
// further call sees a plain EOF.
func errDone[T any](p *PrefetchReader[T]) error {
	return io.EOF
}

// Stop cancels the prefetcher early (e.g. when the consumer abandons the
// scan); safe to call multiple times and after exhaustion. Stop does not
// release the inner reader — use Close for that.
func (p *PrefetchReader[T]) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// Close implements RunReader: it stops the read-ahead goroutine, waits for
// it to finish any in-flight read, and closes the inner reader. Idempotent
// and safe after exhaustion. Close deliberately leaves the consumer-side
// `done` flag alone — it may run on a different goroutine than NextRun, and
// a consumer blocked in NextRun is unblocked by the loop closing the
// channel, which already yields io.EOF.
func (p *PrefetchReader[T]) Close() error {
	p.Stop()
	<-p.loopDone // the loop must not race the inner Close below
	return p.inner.Close()
}

// Count implements RunReader.
func (p *PrefetchReader[T]) Count() int64 { return p.inner.Count() }

// RunLen implements RunReader.
func (p *PrefetchReader[T]) RunLen() int { return p.inner.RunLen() }
