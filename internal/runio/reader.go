package runio

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Stats accumulates I/O accounting for a reader or writer. The parallel
// experiments convert Stats into simulated time through a DiskModel.
type Stats struct {
	ReadOps      int64
	BytesRead    int64
	WriteOps     int64
	BytesWritten int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ReadOps += other.ReadOps
	s.BytesRead += other.BytesRead
	s.WriteOps += other.WriteOps
	s.BytesWritten += other.BytesWritten
}

// DiskModel converts I/O accounting into simulated time, standing in for
// the per-node local disks of the paper's IBM SP-2. The defaults are
// calibrated (see internal/parallel) so that I/O accounts for roughly half
// of total simulated execution time, matching Table 11 of the paper.
type DiskModel struct {
	// SeekTime is charged once per I/O operation.
	SeekTime time.Duration
	// BytesPerSecond is the sequential transfer rate.
	BytesPerSecond float64
}

// DefaultDiskModel resembles a mid-1990s SCSI disk doing large sequential
// reads: 1 ms effective positioning cost per run-sized request, 8 MB/s
// sustained transfer — the class of hardware attached to SP-2 nodes.
func DefaultDiskModel() DiskModel {
	return DiskModel{SeekTime: 1 * time.Millisecond, BytesPerSecond: 8 << 20}
}

// Time returns the simulated duration of the accounted I/O.
func (d DiskModel) Time(s Stats) time.Duration {
	ops := s.ReadOps + s.WriteOps
	bytes := s.BytesRead + s.BytesWritten
	transfer := time.Duration(float64(bytes) / d.BytesPerSecond * float64(time.Second))
	return time.Duration(ops)*d.SeekTime + transfer
}

// RunReader delivers a dataset as consecutive runs. NextRun returns the
// next run (at most the configured run length; only the final run may be
// shorter) and io.EOF after the last run. Implementations may reuse the
// returned slice's backing array between calls only if documented; both
// implementations here hand out freshly owned slices because OPAQ's sample
// phase reorders runs in place.
//
// A reader owns whatever resource backs the scan (for file-backed datasets,
// an open descriptor). Consumers that abandon a scan before io.EOF must
// call Close; reading through to EOF or a read error also releases the
// resource, after which Close is a no-op.
type RunReader[T any] interface {
	// NextRun returns the next run of elements.
	NextRun() ([]T, error)
	// Count returns the total number of elements in the dataset.
	Count() int64
	// RunLen returns the configured run length m.
	RunLen() int
	// Close releases the resources backing the scan. It is idempotent and
	// safe to call after EOF; subsequent NextRun calls return io.EOF.
	Close() error
}

// Dataset abstracts a source of elements that can be scanned as runs any
// number of times (each scan is one "pass" in the paper's sense).
type Dataset[T any] interface {
	// Count returns the total number of elements.
	Count() int64
	// Runs starts a new sequential scan with runs of m elements.
	Runs(m int) (RunReader[T], error)
	// Stats returns cumulative I/O accounting across all scans.
	Stats() Stats
}

// FileDataset is a Dataset backed by a run file on disk.
type FileDataset[T any] struct {
	path  string
	codec Codec[T]
	hdr   header
	stats Stats
}

// OpenFile validates the header of the run file at path and returns a
// Dataset over it.
func OpenFile[T any](path string, codec Codec[T]) (*FileDataset[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runio: open %s: %w", path, err)
	}
	defer f.Close()
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("runio: read header of %s: %w", path, err)
	}
	hdr, err := decodeHeader(buf)
	if err != nil {
		return nil, fmt.Errorf("runio: %s: %w", path, err)
	}
	if hdr.kind != codec.Kind() {
		return nil, fmt.Errorf("%w: file %s holds %s, reader expects %s",
			ErrCodecMismatch, path, kindName(hdr.kind), kindName(codec.Kind()))
	}
	if int(hdr.elemSize) != codec.Size() {
		return nil, fmt.Errorf("%w: element size %d, codec size %d", ErrCorrupt, hdr.elemSize, codec.Size())
	}
	return &FileDataset[T]{path: path, codec: codec, hdr: hdr}, nil
}

// Count implements Dataset.
func (d *FileDataset[T]) Count() int64 { return int64(d.hdr.count) }

// Stats implements Dataset.
func (d *FileDataset[T]) Stats() Stats { return d.stats }

// Path returns the underlying file path.
func (d *FileDataset[T]) Path() string { return d.path }

// Runs implements Dataset: it opens a fresh sequential scan.
func (d *FileDataset[T]) Runs(m int) (RunReader[T], error) {
	if m <= 0 {
		return nil, fmt.Errorf("runio: run length must be positive, got %d", m)
	}
	f, err := os.Open(d.path)
	if err != nil {
		return nil, fmt.Errorf("runio: open %s: %w", d.path, err)
	}
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runio: seek past header: %w", err)
	}
	return &fileRunReader[T]{
		f:     f,
		br:    bufio.NewReaderSize(f, 1<<20),
		stats: &d.stats,
		count: int64(d.hdr.count),
		m:     m,
		left:  int64(d.hdr.count),
		ebuf:  make([]byte, m*d.codec.Size()),
		codec: d.codec,
	}, nil
}

// Verify re-reads the whole file and checks the payload CRC, returning
// ErrCorrupt (wrapped) on mismatch.
func (d *FileDataset[T]) Verify() error {
	f, err := os.Open(d.path)
	if err != nil {
		return fmt.Errorf("runio: open %s: %w", d.path, err)
	}
	defer f.Close()
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		return fmt.Errorf("runio: seek: %w", err)
	}
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("runio: checksum scan: %w", err)
	}
	want := int64(d.hdr.count) * int64(d.codec.Size())
	if n != want {
		return fmt.Errorf("%w: payload is %d bytes, header promises %d", ErrCorrupt, n, want)
	}
	if h.Sum32() != d.hdr.crc {
		return fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrCorrupt, h.Sum32(), d.hdr.crc)
	}
	return nil
}

type fileRunReader[T any] struct {
	f     *os.File
	br    *bufio.Reader
	stats *Stats // accounting sink (the owning dataset or section)
	count int64  // total elements this scan delivers
	m     int
	left  int64
	ebuf  []byte
	codec Codec[T]
	done  bool
}

// NextRun implements RunReader.
func (r *fileRunReader[T]) NextRun() ([]T, error) {
	if r.done || r.left == 0 {
		r.Close()
		return nil, io.EOF
	}
	n := r.m
	if int64(n) > r.left {
		n = int(r.left)
	}
	want := n * r.codec.Size()
	if _, err := io.ReadFull(r.br, r.ebuf[:want]); err != nil {
		r.Close()
		return nil, fmt.Errorf("%w: truncated run (want %d bytes): %v", ErrCorrupt, want, err)
	}
	run := make([]T, n)
	sz := r.codec.Size()
	for i := 0; i < n; i++ {
		run[i] = r.codec.Decode(r.ebuf[i*sz:])
	}
	r.left -= int64(n)
	r.stats.ReadOps++
	r.stats.BytesRead += int64(want)
	if r.left == 0 {
		r.Close()
	}
	return run, nil
}

// Close implements RunReader: it releases the scan's file descriptor. The
// exhausted path (EOF or read error) closes through here too, so an
// early-exit consumer and a full scan end in the same state.
func (r *fileRunReader[T]) Close() error {
	if r.done {
		return nil
	}
	r.done = true
	return r.f.Close()
}

// Count implements RunReader.
func (r *fileRunReader[T]) Count() int64 { return r.count }

// RunLen implements RunReader.
func (r *fileRunReader[T]) RunLen() int { return r.m }

// ReadAll loads an entire dataset into memory; intended for oracles and
// tests, not for the one-pass algorithm itself.
func ReadAll[T any](d Dataset[T]) ([]T, error) {
	rr, err := d.Runs(1 << 16)
	if err != nil {
		return nil, err
	}
	defer rr.Close()
	out := make([]T, 0, d.Count())
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, run...)
	}
}
