package runio

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "data.run")
}

func TestWriteReadRoundTripInt64(t *testing.T) {
	path := tmpPath(t)
	want := []int64{5, -3, 0, 9, 9, 7, 1 << 40}
	if err := WriteFile(path, Int64Codec{}, want); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, want %d", d.Count(), len(want))
	}
	got, err := ReadAll[int64](d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round trip: got %v, want %v", got, want)
		}
	}
}

func TestWriteReadRoundTripFloat64(t *testing.T) {
	path := tmpPath(t)
	want := []float64{3.14, -2.5, 0, 1e300, -1e-300}
	if err := WriteFile(path, Float64Codec{}, want); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Float64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll[float64](d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round trip: got %v, want %v", got, want)
		}
	}
}

func TestRunsExactAndRagged(t *testing.T) {
	path := tmpPath(t)
	data := make([]int64, 10)
	for i := range data {
		data[i] = int64(i)
	}
	if err := WriteFile(path, Int64Codec{}, data); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	// m=4 over 10 elements: runs of 4, 4, 2.
	rr, err := d.Runs(4)
	if err != nil {
		t.Fatal(err)
	}
	var lens []int
	total := 0
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lens = append(lens, len(run))
		for _, v := range run {
			if v != int64(total) {
				t.Fatalf("element %d = %d", total, v)
			}
			total++
		}
	}
	if total != 10 || len(lens) != 3 || lens[0] != 4 || lens[1] != 4 || lens[2] != 2 {
		t.Fatalf("run lengths = %v, total %d", lens, total)
	}
}

func TestRunsRepeatedScans(t *testing.T) {
	path := tmpPath(t)
	if err := WriteFile(path, Int64Codec{}, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := ReadAll[int64](d)
		if err != nil || len(got) != 3 {
			t.Fatalf("pass %d: %v %v", pass, got, err)
		}
	}
	if d.Stats().ReadOps != 3 {
		t.Errorf("ReadOps = %d, want 3", d.Stats().ReadOps)
	}
}

func TestEmptyFile(t *testing.T) {
	path := tmpPath(t)
	if err := WriteFile(path, Int64Codec{}, nil); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 0 {
		t.Fatalf("Count = %d", d.Count())
	}
	rr, err := d.Runs(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.NextRun(); err != io.EOF {
		t.Fatalf("NextRun on empty = %v, want EOF", err)
	}
}

func TestCodecMismatch(t *testing.T) {
	path := tmpPath(t)
	if err := WriteFile(path, Int64Codec{}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, Float64Codec{}); !errors.Is(err, ErrCodecMismatch) {
		t.Fatalf("error = %v, want ErrCodecMismatch", err)
	}
}

func TestBadMagic(t *testing.T) {
	path := tmpPath(t)
	if err := os.WriteFile(path, []byte("NOTARUNFILE_____________________"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, Int64Codec{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("error = %v, want ErrBadMagic", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	path := tmpPath(t)
	if err := WriteFile(path, Int64Codec{}, []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify on clean file: %v", err)
	}
	// Flip one payload byte.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, headerSize+3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d2, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on corrupted file = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	path := tmpPath(t)
	if err := WriteFile(path, Int64Codec{}, []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, headerSize+8*2); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := d.Runs(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.NextRun(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NextRun on truncated file = %v, want ErrCorrupt", err)
	}
}

func TestWriterUseAfterClose(t *testing.T) {
	path := tmpPath(t)
	w, err := NewWriter(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}

func TestSortedWriter(t *testing.T) {
	path := tmpPath(t)
	w, err := NewSortedWriter(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, 2, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(4); err == nil {
		t.Fatal("SortedWriter accepted out-of-order element")
	}
	w.Close()
}

func TestWriteFileFunc(t *testing.T) {
	path := tmpPath(t)
	n := int64(200_000) // crosses the internal chunk boundary
	if err := WriteFileFunc(path, Int64Codec{}, n, func(i int64) int64 { return i * 3 }); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != n {
		t.Fatalf("Count = %d, want %d", d.Count(), n)
	}
	got, err := ReadAll[int64](d)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int64(i)*3 {
			t.Fatalf("element %d = %d", i, v)
		}
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryDataset(t *testing.T) {
	data := []int64{4, 5, 6, 7, 8}
	d := NewMemoryDataset(data, 8)
	rr, err := d.Runs(2)
	if err != nil {
		t.Fatal(err)
	}
	run, err := rr.NextRun()
	if err != nil || len(run) != 2 || run[0] != 4 {
		t.Fatalf("first run = %v, %v", run, err)
	}
	// Mutating the returned run must not corrupt the dataset.
	run[0] = -1
	got, err := ReadAll[int64](d)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Fatal("run mutation leaked into dataset")
	}
	if d.Stats().BytesRead == 0 || d.Stats().ReadOps == 0 {
		t.Error("memory dataset must account I/O")
	}
}

func TestMemoryDatasetBadRunLen(t *testing.T) {
	d := NewMemoryDataset([]int64{1}, 8)
	if _, err := d.Runs(0); err == nil {
		t.Fatal("Runs(0) should fail")
	}
}

func TestDiskModelTime(t *testing.T) {
	m := DiskModel{SeekTime: 10 * time.Millisecond, BytesPerSecond: 1 << 20}
	s := Stats{ReadOps: 2, BytesRead: 1 << 20}
	got := m.Time(s)
	want := 20*time.Millisecond + time.Second
	if got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ReadOps: 1, BytesRead: 10, WriteOps: 2, BytesWritten: 20}
	a.Add(Stats{ReadOps: 3, BytesRead: 30, WriteOps: 4, BytesWritten: 40})
	if a.ReadOps != 4 || a.BytesRead != 40 || a.WriteOps != 6 || a.BytesWritten != 60 {
		t.Fatalf("Add = %+v", a)
	}
}

// Property: file round trip preserves arbitrary int64 slices.
func TestQuickFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	i := 0
	f := func(xs []int64) bool {
		i++
		path := filepath.Join(dir, "rt", itoa(i)+".run")
		os.MkdirAll(filepath.Dir(path), 0o755)
		if err := WriteFile(path, Int64Codec{}, xs); err != nil {
			return false
		}
		d, err := OpenFile(path, Int64Codec{})
		if err != nil {
			return false
		}
		got, err := ReadAll[int64](d)
		if err != nil || len(got) != len(xs) {
			return false
		}
		for j := range xs {
			if got[j] != xs[j] {
				return false
			}
		}
		return d.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestPrefetchDeliversAllRunsInOrder(t *testing.T) {
	data := make([]int64, 10_000)
	for i := range data {
		data[i] = int64(i)
	}
	d := NewMemoryDataset(data, 8)
	rr, err := d.Runs(700)
	if err != nil {
		t.Fatal(err)
	}
	p := Prefetch[int64](rr, 2)
	if p.Count() != 10_000 || p.RunLen() != 700 {
		t.Fatalf("Count/RunLen = %d/%d", p.Count(), p.RunLen())
	}
	next := int64(0)
	for {
		run, err := p.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range run {
			if v != next {
				t.Fatalf("element %d = %d", next, v)
			}
			next++
		}
	}
	if next != 10_000 {
		t.Fatalf("delivered %d elements", next)
	}
	// EOF is sticky.
	if _, err := p.NextRun(); err != io.EOF {
		t.Fatalf("post-EOF = %v", err)
	}
}

func TestPrefetchStopEarly(t *testing.T) {
	data := make([]int64, 100_000)
	d := NewMemoryDataset(data, 8)
	rr, err := d.Runs(100)
	if err != nil {
		t.Fatal(err)
	}
	p := Prefetch[int64](rr, 4)
	if _, err := p.NextRun(); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop() // idempotent
}

func TestPrefetchPropagatesErrors(t *testing.T) {
	path := tmpPath(t)
	if err := WriteFile(path, Int64Codec{}, []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, headerSize+8); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := d.Runs(4)
	if err != nil {
		t.Fatal(err)
	}
	p := Prefetch[int64](rr, 1)
	if _, err := p.NextRun(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error = %v, want ErrCorrupt", err)
	}
}

func TestWriteReadRoundTrip32BitCodecs(t *testing.T) {
	t.Run("int32", func(t *testing.T) {
		path := tmpPath(t)
		want := []int32{5, -3, 0, 1 << 30, -1 << 30}
		if err := WriteFile(path, Int32Codec{}, want); err != nil {
			t.Fatal(err)
		}
		d, err := OpenFile(path, Int32Codec{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll[int32](d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round trip: got %v, want %v", got, want)
			}
		}
	})
	t.Run("uint32", func(t *testing.T) {
		path := tmpPath(t)
		want := []uint32{0, 1, 1<<32 - 1}
		if err := WriteFile(path, Uint32Codec{}, want); err != nil {
			t.Fatal(err)
		}
		d, err := OpenFile(path, Uint32Codec{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll[uint32](d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round trip: got %v, want %v", got, want)
			}
		}
	})
	t.Run("float32", func(t *testing.T) {
		path := tmpPath(t)
		want := []float32{3.14, -2.5, 0, 1e30, -1e-30}
		if err := WriteFile(path, Float32Codec{}, want); err != nil {
			t.Fatal(err)
		}
		d, err := OpenFile(path, Float32Codec{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll[float32](d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round trip: got %v, want %v", got, want)
			}
		}
	})
}

func TestCodecKindsDistinct(t *testing.T) {
	kinds := []uint16{
		Int64Codec{}.Kind(), Float64Codec{}.Kind(), Uint64Codec{}.Kind(),
		Int32Codec{}.Kind(), Uint32Codec{}.Kind(), Float32Codec{}.Kind(),
	}
	seen := map[uint16]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate codec kind %d", k)
		}
		seen[k] = true
		if kindName(k) == "" || kindName(k)[:4] == "unkn" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

// File sections: run-aligned ranges over one file behave like independent
// datasets and reproduce the file's elements exactly.
func TestFileSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sec.run")
	const n, runLen = 1050, 100
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i * 3)
	}
	if err := WriteFile(path, Int64Codec{}, xs); err != nil {
		t.Fatal(err)
	}
	fd, err := OpenFile(path, Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	sections, err := fd.Sections(3, runLen)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for i, s := range sections {
		if i < len(sections)-1 && s.Count()%runLen != 0 {
			t.Errorf("interior section %d has ragged count %d", i, s.Count())
		}
		vals, err := ReadAll[int64](s)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(vals)) != s.Count() {
			t.Errorf("section %d delivered %d of %d elements", i, len(vals), s.Count())
		}
		got = append(got, vals...)
	}
	if len(got) != n {
		t.Fatalf("sections cover %d of %d elements", len(got), n)
	}
	for i := range got {
		if got[i] != xs[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], xs[i])
		}
	}
	// Sections are rescannable and account their own I/O.
	if _, err := ReadAll[int64](sections[1]); err != nil {
		t.Fatal(err)
	}
	if st := sections[1].Stats(); st.ReadOps == 0 || st.BytesRead == 0 {
		t.Errorf("section stats not accounted: %+v", st)
	}
	if _, err := fd.Section(-1, 5); err == nil {
		t.Error("negative start should fail")
	}
	if _, err := fd.Section(0, n+1); err == nil {
		t.Error("end past count should fail")
	}
}

func TestShardRanges(t *testing.T) {
	ranges, err := ShardRanges(1050, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 3 || ranges[0][0] != 0 || ranges[len(ranges)-1][1] != 1050 {
		t.Fatalf("ranges = %v", ranges)
	}
	prev := int64(0)
	for i, r := range ranges {
		if r[0] != prev {
			t.Errorf("range %d not contiguous: %v", i, ranges)
		}
		if i < len(ranges)-1 && (r[1]-r[0])%100 != 0 {
			t.Errorf("interior range %d not run-aligned: %v", i, r)
		}
		prev = r[1]
	}
	if _, err := ShardRanges(10, 0, 100); err == nil {
		t.Error("0 shards should fail")
	}
	if _, err := ShardRanges(10, 2, 0); err == nil {
		t.Error("0 runLen should fail")
	}
}
