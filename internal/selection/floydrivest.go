package selection

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
)

// SelectFloydRivest reorders xs so that xs[k] holds the element of rank k
// and returns it, using the SELECT algorithm of Floyd and Rivest ([FR75]
// in the paper): recursively select inside a small random sample to obtain
// two pivots that sandwich the target rank with high probability, then
// partition once. Expected comparisons approach the information-theoretic
// n + min(k, n−k) + o(n) — measurably fewer than quickselect's ~2n — at
// the cost of the paper's quoted O(m²) worst case, which this
// implementation avoids by falling back to the introselect Select after
// too many failed sandwiches.
func SelectFloydRivest[T cmp.Ordered](xs []T, k int, rng *rand.Rand) (T, error) {
	var zero T
	if k < 0 || k >= len(xs) {
		return zero, fmt.Errorf("%w: k=%d, len=%d", ErrRankOutOfRange, k, len(xs))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0x46b52d01))
	}
	lo, hi := 0, len(xs)-1 // inclusive, the classic formulation
	retries := 0
	for hi > lo {
		if hi-lo < 600 {
			insertionSort(xs[lo : hi+1])
			return xs[k], nil
		}
		if retries > 4 {
			// Sandwich keeps failing (adversarial/duplicate-heavy input):
			// delegate to the worst-case-linear path.
			return Select(xs[lo:hi+1], k-lo, rng)
		}
		// Sample size and spread per Floyd–Rivest: operate on a window of
		// size s around the target's expected position within a sample of
		// n^(2/3) elements.
		n := float64(hi - lo + 1)
		i := float64(k - lo + 1)
		z := math.Log(n)
		s := 0.5 * math.Exp(2*z/3)
		sd := 0.5 * math.Sqrt(z*s*(n-s)/n)
		if i < n/2 {
			sd = -sd
		}
		newLo := maxInt(lo, int(float64(k)-i*s/n+sd))
		newHi := minInt(hi, int(float64(k)+(n-i)*s/n+sd))
		// Recursively place rank k within the narrowed window; this is the
		// sample-selection step (the window acts as the sample).
		if _, err := SelectFloydRivest(xs[newLo:newHi+1], k-newLo, rng); err != nil {
			return zero, err
		}
		pv := xs[k]
		// Three-way partition of [lo, hi] around pv.
		lt, gt := partition3(xs, lo, hi+1, k)
		_ = pv
		switch {
		case k < lt:
			hi = lt - 1
			retries++
		case k >= gt:
			lo = gt
			retries++
		default:
			return xs[k], nil
		}
	}
	return xs[k], nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
