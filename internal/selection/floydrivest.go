package selection

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
)

// frSampleCutoff is the window size above which a partition round first
// narrows the window by recursively selecting inside an n^(2/3)-element
// sample; below it a plain partition round is cheaper than the sampling
// arithmetic. 600 is the constant of [FR75].
const frSampleCutoff = 600

// SelectFloydRivest reorders xs so that xs[k] holds the element of rank k
// and returns it, using the SELECT algorithm of Floyd and Rivest ([FR75]
// in the paper): recursively select inside a small sample window to obtain
// a pivot that lands near the target rank with high probability, then
// partition once with a two-pointer pass. Expected comparisons approach
// the information-theoretic n + min(k, n−k) + o(n) — measurably fewer than
// quickselect's ~2n, with far fewer swaps than a Dutch-flag pass — at the
// cost of the paper's quoted O(m²) worst case, which this implementation
// avoids by falling back to the introselect path after a round budget.
func SelectFloydRivest[T cmp.Ordered](xs []T, k int, rng *rand.Rand) (T, error) {
	var zero T
	if k < 0 || k >= len(xs) {
		return zero, fmt.Errorf("%w: k=%d, len=%d", ErrRankOutOfRange, k, len(xs))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0x46b52d01))
	}
	floydRivestInPlace(xs, 0, len(xs), k, rng)
	return xs[k], nil
}

// floydRivestInPlace reorders xs[lo:hi) so that xs[k] holds the element of
// global rank k (lo ≤ k < hi), with xs[lo:k] ≤ xs[k] ≤ xs[k+1:hi) — the
// same partial-partition contract as selectInPlace, which multiSelect's
// recursive splitting depends on. This is the classic iterative
// formulation of [FR75]: each round partitions the active window around
// xs[k] (pre-positioned by the sample recursion when the window is large),
// keeping the side containing k. The rng is used only by the introselect
// fallback that bounds adversarial inputs.
func floydRivestInPlace[T cmp.Ordered](xs []T, lo, hi, k int, rng *rand.Rand) {
	left, right := lo, hi-1 // inclusive window, the classic formulation
	budget := 4 * bitLen(hi-lo)
	for right > left {
		if right-left < smallCutoff {
			insertionSort(xs[left : right+1])
			return
		}
		if budget <= 0 {
			// Partitions keep landing far from k (adversarial or
			// duplicate-pathological input): delegate to the
			// worst-case-linear path.
			selectInPlace(xs, left, right+1, k, rng)
			return
		}
		budget--
		if right-left >= frSampleCutoff {
			// Narrow the window to ~n^(2/3) elements straddling the
			// target's expected position, per [FR75], so the partition
			// pivot xs[k] below sandwiches rank k with high probability.
			n := float64(right - left + 1)
			i := float64(k - left + 1)
			z := math.Log(n)
			s := 0.5 * math.Exp(2*z/3)
			sd := 0.5 * math.Sqrt(z*s*(n-s)/n)
			if i < n/2 {
				sd = -sd
			}
			newLeft := max(left, int(float64(k)-i*s/n+sd))
			newRight := min(right, int(float64(k)+(n-i)*s/n+sd))
			floydRivestInPlace(xs, newLeft, newRight+1, k, rng)
		}
		// Two-pointer partition of [left, right] around t = xs[k]. The
		// copies of t parked at the window ends act as sentinels, so the
		// inner scans need no bounds checks.
		t := xs[k]
		i, j := left, right
		xs[left], xs[k] = xs[k], xs[left]
		if xs[right] > t {
			xs[right], xs[left] = xs[left], xs[right]
		}
		for i < j {
			xs[i], xs[j] = xs[j], xs[i]
			i++
			j--
			for xs[i] < t {
				i++
			}
			for xs[j] > t {
				j--
			}
		}
		if xs[left] == t {
			xs[left], xs[j] = xs[j], xs[left]
		} else {
			j++
			xs[j], xs[right] = xs[right], xs[j]
		}
		if j <= k {
			left = j + 1
		}
		if k <= j {
			right = j - 1
		}
	}
}
