package selection

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestSelectSmall(t *testing.T) {
	xs := []int64{5, 1, 4, 2, 3}
	for k := 0; k < 5; k++ {
		cp := append([]int64(nil), xs...)
		got, err := Select(cp, k, testRNG())
		if err != nil {
			t.Fatalf("Select(k=%d): %v", k, err)
		}
		if want := int64(k + 1); got != want {
			t.Errorf("Select(k=%d) = %d, want %d", k, got, want)
		}
	}
}

func TestSelectSingleElement(t *testing.T) {
	got, err := Select([]int64{7}, 0, testRNG())
	if err != nil || got != 7 {
		t.Fatalf("Select single = %d, %v; want 7, nil", got, err)
	}
}

func TestSelectRankOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 3, 100} {
		if _, err := Select([]int64{1, 2, 3}, k, testRNG()); !errors.Is(err, ErrRankOutOfRange) {
			t.Errorf("Select(k=%d) error = %v, want ErrRankOutOfRange", k, err)
		}
	}
	if _, err := Select([]int64{}, 0, testRNG()); !errors.Is(err, ErrRankOutOfRange) {
		t.Errorf("Select on empty slice error = %v, want ErrRankOutOfRange", err)
	}
}

func TestSelectMatchesSortAllRanks(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(50)) // heavy duplicates on purpose
		}
		want := sortedCopy(xs)
		for k := 0; k < n; k++ {
			cp := append([]int64(nil), xs...)
			got, err := Select(cp, k, rng)
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			if got != want[k] {
				t.Fatalf("trial %d: Select(k=%d) = %d, want %d", trial, k, got, want[k])
			}
		}
	}
}

func TestSelectDeterministicMatchesSort(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(500)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int63n(100)
		}
		want := sortedCopy(xs)
		for _, k := range []int{0, n / 4, n / 2, n - 1} {
			cp := append([]int64(nil), xs...)
			got, err := SelectDeterministic(cp, k)
			if err != nil {
				t.Fatalf("SelectDeterministic: %v", err)
			}
			if got != want[k] {
				t.Fatalf("SelectDeterministic(k=%d) = %d, want %d", k, got, want[k])
			}
		}
	}
}

func TestSelectDeterministicAdversarialOrders(t *testing.T) {
	// Sorted, reverse-sorted and organ-pipe inputs exercise the
	// median-of-medians path without randomness to save it.
	n := 2000
	inputs := map[string]func(i int) int64{
		"sorted":    func(i int) int64 { return int64(i) },
		"reverse":   func(i int) int64 { return int64(n - i) },
		"organpipe": func(i int) int64 { return int64(min(i, n-i)) },
		"constant":  func(i int) int64 { return 7 },
	}
	for name, gen := range inputs {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = gen(i)
		}
		want := sortedCopy(xs)
		for _, k := range []int{0, 1, n / 2, n - 2, n - 1} {
			cp := append([]int64(nil), xs...)
			got, err := SelectDeterministic(cp, k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got != want[k] {
				t.Errorf("%s: SelectDeterministic(k=%d) = %d, want %d", name, k, got, want[k])
			}
		}
	}
}

func TestSelectPartitionsAroundRank(t *testing.T) {
	// After Select(xs, k), everything left of k must be ≤ xs[k] and
	// everything right must be ≥ xs[k].
	rng := testRNG()
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = rng.Int63n(200)
	}
	k := 137
	v, err := Select(xs, k, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if xs[i] > v {
			t.Fatalf("xs[%d]=%d > selected %d", i, xs[i], v)
		}
	}
	for i := k + 1; i < len(xs); i++ {
		if xs[i] < v {
			t.Fatalf("xs[%d]=%d < selected %d", i, xs[i], v)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []int64
		want int64
	}{
		{[]int64{3}, 3},
		{[]int64{2, 1}, 1}, // lower median
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2},
	}
	for _, c := range cases {
		got, err := Median(append([]int64(nil), c.xs...), testRNG())
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Median(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestSelectFloat64(t *testing.T) {
	xs := []float64{3.5, -1.25, 0, 7.75, 2.5}
	got, err := Select(xs, 2, testRNG())
	if err != nil || got != 2.5 {
		t.Fatalf("Select float = %v, %v; want 2.5", got, err)
	}
}

func TestSelectString(t *testing.T) {
	xs := []string{"pear", "apple", "fig", "date"}
	got, err := Select(xs, 0, testRNG())
	if err != nil || got != "apple" {
		t.Fatalf("Select string = %q, %v; want apple", got, err)
	}
}

// Property: Select(xs, k) == sort(xs)[k] for random inputs and ranks.
func TestQuickSelectEqualsSort(t *testing.T) {
	rng := testRNG()
	f := func(raw []int64, kRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw) % len(raw)
		want := sortedCopy(raw)[k]
		got, err := Select(append([]int64(nil), raw...), k, rng)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: selection preserves the multiset of elements.
func TestQuickSelectIsPermutation(t *testing.T) {
	rng := testRNG()
	f := func(raw []int64, kRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw) % len(raw)
		cp := append([]int64(nil), raw...)
		if _, err := Select(cp, k, rng); err != nil {
			return false
		}
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		want := sortedCopy(raw)
		for i := range cp {
			if cp[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
