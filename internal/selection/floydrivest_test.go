package selection

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloydRivestSmall(t *testing.T) {
	xs := []int64{5, 1, 4, 2, 3}
	for k := 0; k < 5; k++ {
		cp := append([]int64(nil), xs...)
		got, err := SelectFloydRivest(cp, k, testRNG())
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(k+1) {
			t.Errorf("k=%d: got %d, want %d", k, got, k+1)
		}
	}
}

func TestFloydRivestLarge(t *testing.T) {
	rng := testRNG()
	n := 100_000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63n(1 << 40)
	}
	want := sortedCopy(xs)
	for _, k := range []int{0, 1, n / 4, n / 2, 3 * n / 4, n - 2, n - 1} {
		cp := append([]int64(nil), xs...)
		got, err := SelectFloydRivest(cp, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[k] {
			t.Errorf("k=%d: got %d, want %d", k, got, want[k])
		}
	}
}

func TestFloydRivestDuplicateHeavy(t *testing.T) {
	rng := testRNG()
	n := 50_000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(3)) // retry-fallback path
	}
	want := sortedCopy(xs)
	for _, k := range []int{0, n / 2, n - 1} {
		cp := append([]int64(nil), xs...)
		got, err := SelectFloydRivest(cp, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[k] {
			t.Errorf("k=%d: got %d, want %d", k, got, want[k])
		}
	}
}

func TestFloydRivestSortedInput(t *testing.T) {
	n := 20_000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}
	got, err := SelectFloydRivest(xs, n/3, testRNG())
	if err != nil || got != int64(n/3) {
		t.Fatalf("got %d, %v; want %d", got, err, n/3)
	}
}

func TestFloydRivestOutOfRange(t *testing.T) {
	if _, err := SelectFloydRivest([]int64{1}, 1, testRNG()); err == nil {
		t.Fatal("k out of range should fail")
	}
}

func TestQuickFloydRivestEqualsSort(t *testing.T) {
	rng := testRNG()
	f := func(raw []int64, kRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw) % len(raw)
		want := sortedCopy(raw)[k]
		got, err := SelectFloydRivest(append([]int64(nil), raw...), k, rng)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Fatal(err)
	}
}
