package selection

import (
	"cmp"
	"fmt"
	"math/rand"
	"sort"
)

// MultiSelect reorders xs so that, for every requested 0-based rank k in
// ranks, xs[k] holds the element of rank k, and returns the selected values
// in the order the ranks were given. ranks need not be sorted or distinct.
//
// This is the multi-selection primitive of the paper's sample phase
// (Section 2.1): rather than running an independent selection per rank, the
// slice is recursively split at the median rank of the remaining targets, so
// each level of recursion does linear work over disjoint ranges and there
// are at most ⌈log₂ len(ranks)⌉+1 levels — O(m log s) in total for s ranks
// over a run of m elements. Each split is a Floyd–Rivest selection
// (floydRivestInPlace), whose single near-target partition pass per level
// keeps the constant close to one comparison per element per level.
func MultiSelect[T cmp.Ordered](xs []T, ranks []int, rng *rand.Rand) ([]T, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(0x51ed2701))
	}
	for _, k := range ranks {
		if k < 0 || k >= len(xs) {
			return nil, fmt.Errorf("%w: k=%d, len=%d", ErrRankOutOfRange, k, len(xs))
		}
	}
	if len(ranks) == 0 {
		return nil, nil
	}
	sorted := make([]int, len(ranks))
	copy(sorted, ranks)
	sort.Ints(sorted)
	sorted = dedupInts(sorted)

	multiSelect(xs, 0, len(xs), sorted, rng)

	out := make([]T, len(ranks))
	for i, k := range ranks {
		out[i] = xs[k]
	}
	return out, nil
}

// RegularRanks returns the s regular-sampling ranks of a run of m elements:
// the 0-based ranks of the elements at relative indices m/s, 2m/s, ..., m
// (paper, Section 2.1). m must be divisible by s; the paper makes the same
// assumption ("without loss of generality") and the run reader pads or
// truncates runs so this holds.
func RegularRanks(m, s int) ([]int, error) {
	if s <= 0 || m <= 0 {
		return nil, fmt.Errorf("selection: RegularRanks requires m>0 and s>0, got m=%d s=%d", m, s)
	}
	if m%s != 0 {
		return nil, fmt.Errorf("selection: RegularRanks requires s | m, got m=%d s=%d", m, s)
	}
	step := m / s
	ranks := make([]int, s)
	for i := 1; i <= s; i++ {
		ranks[i-1] = i*step - 1 // rank of the (i*m/s)-th smallest, 0-based
	}
	return ranks, nil
}

// RegularSample reorders run and returns its s regular sample points in
// ascending order: sample i is the element of local rank i*m/s (1-based),
// so each sample point closes a "sub-run" of m/s elements that are all ≤ it
// and ≥ the previous sample point. This is the per-run work of the sample
// phase; it costs O(m log s).
func RegularSample[T cmp.Ordered](run []T, s int, rng *rand.Rand) ([]T, error) {
	ranks, err := RegularRanks(len(run), s)
	if err != nil {
		return nil, err
	}
	return MultiSelect(run, ranks, rng)
}

// multiSelect recursively partitions xs[lo:hi) around the median target
// rank. targets is sorted, deduplicated, and every entry lies in [lo, hi).
func multiSelect[T cmp.Ordered](xs []T, lo, hi int, targets []int, rng *rand.Rand) {
	for len(targets) > 0 {
		if len(targets) == 1 {
			floydRivestInPlace(xs, lo, hi, targets[0], rng)
			return
		}
		mid := targets[len(targets)/2]
		floydRivestInPlace(xs, lo, hi, mid, rng)
		// xs[mid] now has exact rank mid; ranks below it live in [lo, mid),
		// ranks above it in (mid, hi). Split the target list accordingly and
		// recurse on the smaller side, looping on the larger (tail-call
		// elimination keeps stack depth at O(log s)).
		split := sort.SearchInts(targets, mid)
		left := targets[:split]
		right := targets[split:]
		if len(right) > 0 && right[0] == mid {
			right = right[1:]
		}
		if len(left) <= len(right) {
			multiSelect(xs, lo, mid, left, rng)
			lo = mid + 1
			targets = right
		} else {
			multiSelect(xs, mid+1, hi, right, rng)
			hi = mid
			targets = left
		}
	}
}

// selectInPlace reorders xs[lo:hi) so that xs[k] holds the element of global
// rank k (lo ≤ k < hi), using randomized pivoting with a deterministic
// fallback, like Select.
func selectInPlace[T cmp.Ordered](xs []T, lo, hi, k int, rng *rand.Rand) {
	budget := 2 * bitLen(hi-lo)
	for {
		if hi-lo <= smallCutoff {
			insertionSort(xs[lo:hi])
			return
		}
		var pivot int
		if budget > 0 {
			pivot = medianOfThreePivot(xs, lo, hi, rng)
			budget--
		} else {
			pivot = medianOfMediansPivot(xs, lo, hi)
		}
		lt, gt := partition3(xs, lo, hi, pivot)
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return
		}
	}
}

// dedupInts removes adjacent duplicates from a sorted int slice, in place.
func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
