// Package selection implements linear-time selection (order statistics)
// algorithms and the multi-selection routine used by OPAQ's sample phase.
//
// The paper relies on two classical selection algorithms:
//
//   - the deterministic median-of-medians algorithm of Blum, Floyd, Pratt,
//     Rivest and Tarjan ([ea72] in the paper) with O(m) worst-case time, and
//   - randomized selection in the spirit of Floyd–Rivest ([FR75]) with O(m)
//     expected time,
//
// and on a multi-selection built by recursive median splitting: to extract
// the s regular sample ranks m/s, 2m/s, ..., m from a run of m elements,
// select the median, split, and recurse on both halves for log s levels,
// giving O(m log s) total work (Section 2.1 of the paper).
//
// All functions operate in place and reorder their input slice.
package selection

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrRankOutOfRange is returned (wrapped) when a requested rank does not lie
// inside the slice being selected from.
var ErrRankOutOfRange = errors.New("selection: rank out of range")

// Select partially reorders xs so that xs[k] holds the element of rank k
// (0-based: k = 0 is the minimum) and returns that element. It uses
// randomized quickselect with median-of-three pivoting seeded from rng,
// falling back to deterministic median-of-medians pivot selection when a
// recursion-depth budget is exhausted, so the worst case remains O(len(xs))
// (an "introselect" in the terminology of later literature; the paper cites
// [FR75] for the randomized and [ea72] for the deterministic variant).
//
// The rng may be nil, in which case a fixed-seed source is used; the result
// value is identical either way, only the reordering differs.
func Select[T cmp.Ordered](xs []T, k int, rng *rand.Rand) (T, error) {
	var zero T
	if k < 0 || k >= len(xs) {
		return zero, fmt.Errorf("%w: k=%d, len=%d", ErrRankOutOfRange, k, len(xs))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0x9e3779b9))
	}
	// Depth budget: 2*ceil(log2 n) randomized rounds before switching to the
	// deterministic pivot rule, mirroring introsort's safeguard.
	budget := 2 * bitLen(len(xs))
	lo, hi := 0, len(xs) // half-open [lo, hi)
	for {
		if hi-lo <= smallCutoff {
			insertionSort(xs[lo:hi])
			return xs[k], nil
		}
		var pivot int
		if budget > 0 {
			pivot = medianOfThreePivot(xs, lo, hi, rng)
			budget--
		} else {
			pivot = medianOfMediansPivot(xs, lo, hi)
		}
		lt, gt := partition3(xs, lo, hi, pivot)
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return xs[k], nil // k falls inside the run of pivot-equal elements
		}
	}
}

// SelectDeterministic is Select with the median-of-medians pivot rule used
// from the first iteration, guaranteeing O(len(xs)) worst-case time
// regardless of input order. It is the algorithm of [ea72] as described in
// Section 2.1 of the paper.
func SelectDeterministic[T cmp.Ordered](xs []T, k int) (T, error) {
	var zero T
	if k < 0 || k >= len(xs) {
		return zero, fmt.Errorf("%w: k=%d, len=%d", ErrRankOutOfRange, k, len(xs))
	}
	lo, hi := 0, len(xs)
	for {
		if hi-lo <= smallCutoff {
			insertionSort(xs[lo:hi])
			return xs[k], nil
		}
		pivot := medianOfMediansPivot(xs, lo, hi)
		lt, gt := partition3(xs, lo, hi, pivot)
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return xs[k], nil
		}
	}
}

// smallCutoff is the subproblem size below which selection falls back to
// insertion sort; small enough to keep worst-case linearity, large enough to
// amortize the partitioning overhead.
const smallCutoff = 24

// bitLen returns the number of bits needed to represent n (≥ 1 for n ≥ 1).
func bitLen(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

// insertionSort sorts xs in place; used only for tiny subproblems.
func insertionSort[T cmp.Ordered](xs []T) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// medianOfThreePivot picks a pivot index in [lo,hi) as the median of three
// randomly chosen positions. Returning an index (not a value) lets
// partition3 move the pivot explicitly.
func medianOfThreePivot[T cmp.Ordered](xs []T, lo, hi int, rng *rand.Rand) int {
	n := hi - lo
	a := lo + rng.Intn(n)
	b := lo + rng.Intn(n)
	c := lo + rng.Intn(n)
	// Median of xs[a], xs[b], xs[c] by index.
	if xs[a] > xs[b] {
		a, b = b, a
	}
	if xs[b] > xs[c] {
		b = c
		if xs[a] > xs[b] {
			b = a
		}
	}
	return b
}

// medianOfMediansPivot implements the BFPRT pivot rule on xs[lo:hi]: split
// into groups of five, take each group's median, and recursively select the
// median of those medians. The group medians are compacted into the prefix
// xs[lo:lo+numGroups] so the recursion operates in place; this reorders the
// range but partition3 immediately re-partitions it, preserving selection
// semantics. Returns the index of the chosen pivot.
func medianOfMediansPivot[T cmp.Ordered](xs []T, lo, hi int) int {
	n := hi - lo
	if n <= 5 {
		insertionSort(xs[lo:hi])
		return lo + n/2
	}
	numGroups := 0
	for g := lo; g < hi; g += 5 {
		end := g + 5
		if end > hi {
			end = hi
		}
		insertionSort(xs[g:end])
		median := g + (end-g)/2
		xs[lo+numGroups], xs[median] = xs[median], xs[lo+numGroups]
		numGroups++
	}
	// Recursively place the median of medians at its rank within the prefix.
	mid := lo + (numGroups-1)/2
	selectInPlaceDeterministic(xs, lo, lo+numGroups, mid)
	return mid
}

// selectInPlaceDeterministic is the recursive worker behind
// medianOfMediansPivot: it reorders xs[lo:hi) so xs[k] has rank k-lo within
// that range, using the deterministic pivot rule throughout.
func selectInPlaceDeterministic[T cmp.Ordered](xs []T, lo, hi, k int) {
	for {
		if hi-lo <= smallCutoff {
			insertionSort(xs[lo:hi])
			return
		}
		pivot := medianOfMediansPivot(xs, lo, hi)
		lt, gt := partition3(xs, lo, hi, pivot)
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return
		}
	}
}

// partition3 performs a three-way (Dutch national flag) partition of
// xs[lo:hi) around the value at index pivot. On return, xs[lo:lt) < pivot
// value, xs[lt:gt) == pivot value, and xs[gt:hi) > pivot value. Three-way
// partitioning is essential for the paper's workloads, which contain n/10
// duplicate keys: a two-way partition degrades to quadratic time on heavy
// duplicates.
func partition3[T cmp.Ordered](xs []T, lo, hi, pivot int) (lt, gt int) {
	pv := xs[pivot]
	lt, gt = lo, hi
	i := lo
	for i < gt {
		switch {
		case xs[i] < pv:
			xs[i], xs[lt] = xs[lt], xs[i]
			lt++
			i++
		case xs[i] > pv:
			gt--
			xs[i], xs[gt] = xs[gt], xs[i]
		default:
			i++
		}
	}
	return lt, gt
}

// Median reorders xs and returns its lower median (rank ⌊(len-1)/2⌋).
func Median[T cmp.Ordered](xs []T, rng *rand.Rand) (T, error) {
	return Select(xs, (len(xs)-1)/2, rng)
}

// sortedCopy returns a sorted copy of xs; shared test/reference helper.
func sortedCopy[T cmp.Ordered](xs []T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
