package selection

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegularRanks(t *testing.T) {
	ranks, err := RegularRanks(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5, 7}
	if len(ranks) != len(want) {
		t.Fatalf("RegularRanks(8,4) = %v, want %v", ranks, want)
	}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("RegularRanks(8,4) = %v, want %v", ranks, want)
		}
	}
}

func TestRegularRanksErrors(t *testing.T) {
	if _, err := RegularRanks(10, 3); err == nil {
		t.Error("RegularRanks(10,3) should fail: 3 does not divide 10")
	}
	if _, err := RegularRanks(0, 1); err == nil {
		t.Error("RegularRanks(0,1) should fail")
	}
	if _, err := RegularRanks(8, 0); err == nil {
		t.Error("RegularRanks(8,0) should fail")
	}
	if _, err := RegularRanks(-8, 2); err == nil {
		t.Error("RegularRanks(-8,2) should fail")
	}
}

func TestRegularRanksFullSample(t *testing.T) {
	// s == m degenerates to every rank.
	ranks, err := RegularRanks(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranks {
		if r != i {
			t.Fatalf("RegularRanks(5,5)[%d] = %d, want %d", i, r, i)
		}
	}
}

func TestMultiSelectMatchesSort(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int63n(64) // duplicates
		}
		want := sortedCopy(xs)
		nRanks := 1 + rng.Intn(10)
		ranks := make([]int, nRanks)
		for i := range ranks {
			ranks[i] = rng.Intn(n)
		}
		got, err := MultiSelect(append([]int64(nil), xs...), ranks, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range ranks {
			if got[i] != want[k] {
				t.Fatalf("trial %d: MultiSelect rank %d = %d, want %d", trial, k, got[i], want[k])
			}
		}
	}
}

func TestMultiSelectUnsortedDuplicateRanks(t *testing.T) {
	xs := []int64{9, 3, 7, 1, 5}
	got, err := MultiSelect(xs, []int{4, 0, 4, 2}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{9, 1, 9, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MultiSelect = %v, want %v", got, want)
		}
	}
}

func TestMultiSelectEmptyRanks(t *testing.T) {
	got, err := MultiSelect([]int64{1, 2, 3}, nil, testRNG())
	if err != nil || got != nil {
		t.Fatalf("MultiSelect(nil ranks) = %v, %v; want nil, nil", got, err)
	}
}

func TestMultiSelectRankOutOfRange(t *testing.T) {
	if _, err := MultiSelect([]int64{1, 2}, []int{0, 5}, testRNG()); !errors.Is(err, ErrRankOutOfRange) {
		t.Fatalf("error = %v, want ErrRankOutOfRange", err)
	}
}

func TestMultiSelectPlacesAllRanksInPlace(t *testing.T) {
	// After MultiSelect, xs[k] must equal sort(xs)[k] for every requested k.
	rng := testRNG()
	xs := make([]int64, 1024)
	for i := range xs {
		xs[i] = rng.Int63n(5000)
	}
	want := sortedCopy(xs)
	ranks := []int{0, 127, 255, 511, 767, 1023}
	if _, err := MultiSelect(xs, ranks, rng); err != nil {
		t.Fatal(err)
	}
	for _, k := range ranks {
		if xs[k] != want[k] {
			t.Fatalf("xs[%d] = %d after MultiSelect, want %d", k, xs[k], want[k])
		}
	}
}

func TestRegularSample(t *testing.T) {
	// Run of 16 values 16..1; regular sample with s=4 must be the elements
	// of ranks 3,7,11,15 = 4,8,12,16.
	run := make([]int64, 16)
	for i := range run {
		run[i] = int64(16 - i)
	}
	got, err := RegularSample(run, 4, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 8, 12, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RegularSample = %v, want %v", got, want)
		}
	}
}

func TestRegularSampleSorted(t *testing.T) {
	// Output of RegularSample must always be ascending.
	rng := testRNG()
	run := make([]int64, 4096)
	for i := range run {
		run[i] = rng.Int63n(100)
	}
	got, err := RegularSample(run, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("sample not sorted at %d: %d < %d", i, got[i], got[i-1])
		}
	}
}

func TestRegularSampleIndivisible(t *testing.T) {
	if _, err := RegularSample([]int64{1, 2, 3}, 2, testRNG()); err == nil {
		t.Error("RegularSample with s∤m should fail")
	}
}

// Property (paper, Appendix A, Result 1): the i-th regular sample point of a
// run has at least i*m/s elements of the run ≤ it, and exactly i*m/s when
// keys are distinct.
func TestQuickRegularSampleSubRunProperty(t *testing.T) {
	rng := testRNG()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := 1 << (1 + r.Intn(4)) // 2..16
		m := s * (1 + r.Intn(20)) // multiple of s
		run := make([]int64, m)
		for i := range run {
			run[i] = r.Int63n(int64(m))
		}
		orig := append([]int64(nil), run...)
		sample, err := RegularSample(run, s, rng)
		if err != nil {
			return false
		}
		for i := 1; i <= s; i++ {
			le := 0
			for _, x := range orig {
				if x <= sample[i-1] {
					le++
				}
			}
			if le < i*m/s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: MultiSelect preserves the multiset.
func TestQuickMultiSelectPermutation(t *testing.T) {
	rng := testRNG()
	f := func(raw []int64, picks []uint16) bool {
		if len(raw) == 0 || len(picks) == 0 {
			return true
		}
		ranks := make([]int, len(picks))
		for i, p := range picks {
			ranks[i] = int(p) % len(raw)
		}
		cp := append([]int64(nil), raw...)
		if _, err := MultiSelect(cp, ranks, rng); err != nil {
			return false
		}
		a, b := sortedCopy(cp), sortedCopy(raw)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
