package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"opaq/internal/cluster"
	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/engine"
	"opaq/internal/runio"
)

// ClusterSweep is an extension experiment beyond the paper's evaluation:
// it measures the distributed tier end to end over real loopback HTTP —
// one coordinator scatter-gathering two worker processes' registries —
// in the two dimensions the tier adds over a single engine: routed
// binary ingest (coordinator proxies frames to the tenant's owners) and
// merged quantile queries (per-worker summary fetch + MergeAll per
// query). Both are wall-clock over real sockets, so both feed the
// regression gate.
func ClusterSweep(scale int) (*Table, error) {
	n := scaleN(2_000_000, scale)
	const queries = 400
	const tenant = "bench"
	codec := runio.Int64Codec{}
	defaults := engine.Options{
		Config:  core.Config{RunLen: 1 << 14, SampleSize: 1 << 9, Seed: seqSeed},
		Stripes: 2,
	}

	// Two workers: registry + HTTP handler each on a loopback listener.
	var urls []string
	var servers []*http.Server
	var registries []*engine.Registry[int64]
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
		for _, reg := range registries {
			reg.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		// The codec (the registry's wire/checkpoint encoding) enables the
		// binary ingest path on the worker handler.
		reg, err := engine.NewRegistry(engine.RegistryOptions[int64]{Defaults: defaults, Codec: codec})
		if err != nil {
			return nil, err
		}
		registries = append(registries, reg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: engine.NewRegistryHandler(reg, engine.Int64Key, engine.HandlerOptions{})}
		servers = append(servers, srv)
		go srv.Serve(ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	coord, err := cluster.New(cluster.Options[int64]{
		Workers: urls,
		Spread:  2,
		Codec:   codec,
		Parse:   engine.Int64Key,
		Client:  &cluster.WorkerClient{HTTP: &http.Client{Timeout: 10 * time.Second}},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	servers = append(servers, srv)
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path, contentType string, body []byte) error {
		resp, err := client.Post(base+path, contentType, bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("%s: http %d", path, resp.StatusCode)
		}
		return nil
	}
	if err := post("/admin/tenants", "application/json", []byte(`{"name":"`+tenant+`"}`)); err != nil {
		return nil, err
	}

	// Routed ingest: run-aligned binary frames through the coordinator,
	// round-robining across the tenant's two owners.
	const batch = 1 << 14 // one run per frame
	xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), n)
	start := time.Now()
	var frame []byte
	for off := 0; off < len(xs); off += batch {
		end := off + batch
		if end > len(xs) {
			end = len(xs)
		}
		if frame, err = runio.AppendDataFrame(frame[:0], codec, "", xs[off:end]); err != nil {
			return nil, err
		}
		if err := post("/t/"+tenant+"/ingest", "application/octet-stream", frame); err != nil {
			return nil, err
		}
	}
	ingestTime := time.Since(start)

	// Scatter-gather queries: each one fetches both owners' summaries and
	// merges them. Cost is dominated by the two worker round trips plus
	// the (tiny) merge, independent of n.
	start = time.Now()
	for i := 0; i < queries; i++ {
		resp, err := client.Get(fmt.Sprintf("%s/t/%s/quantile?phi=%g", base, tenant, 0.5+float64(i%9-4)/10))
		if err != nil {
			return nil, err
		}
		var out struct {
			Partial bool `json:"partial"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if out.Partial {
			return nil, fmt.Errorf("query %d: partial answer with the whole fleet up", i)
		}
	}
	queryTime := time.Since(start)

	t := &Table{
		ID:     "Extension: coord",
		Title:  fmt.Sprintf("Distributed tier wall-clock (1 coordinator + 2 workers over loopback HTTP, n=%s, spread 2)", humanN(n)),
		Header: []string{"Path", "time", "throughput"},
		Notes: []string{
			"ingest: run-aligned binary frames proxied to the owning workers",
			fmt.Sprintf("queries: %d merged quantile lookups, each a 2-worker summary scatter-gather", queries),
		},
	}
	t.AddRow("ingest", ingestTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%s elems/s", humanN(int(float64(n)/ingestTime.Seconds()))))
	t.AddRow("scatter-gather", queryTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f queries/s", float64(queries)/queryTime.Seconds()))
	t.AddMetric("coord/ingest/elems_per_sec", float64(n)/ingestTime.Seconds(), "elems/sec", "higher", true)
	t.AddMetric("coord/scatter_gather/queries_per_sec", float64(queries)/queryTime.Seconds(), "queries/sec", "higher", true)
	return t, nil
}
