package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"opaq/internal/cluster"
	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/engine"
	"opaq/internal/runio"
)

// ClusterSweep is an extension experiment beyond the paper's evaluation:
// it measures the distributed tier end to end over real loopback HTTP —
// one coordinator scatter-gathering three worker processes' registries —
// in the dimensions the tier adds over a single engine: routed binary
// ingest (coordinator proxies frames to the tenant's owners) and merged
// quantile queries, measured both cold (gather cache disabled: every
// query re-fetches and re-merges every owner summary) and warm (the
// versioned gather cache revalidates owners with conditional GETs and
// reuses the merged summary). All are wall-clock over real sockets, so
// all feed the regression gate.
func ClusterSweep(scale int) (*Table, error) {
	n := scaleN(2_000_000, scale)
	const coldQueries = 400
	const warmQueries = 8000
	const queryClients = 8
	const tenant = "bench"
	codec := runio.Int64Codec{}
	defaults := engine.Options{
		Config:  core.Config{RunLen: 1 << 14, SampleSize: 1 << 9, Seed: seqSeed},
		Stripes: 2,
	}

	// Three workers: registry + HTTP handler each on a loopback listener.
	var urls []string
	var servers []*http.Server
	var registries []*engine.Registry[int64]
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
		for _, reg := range registries {
			reg.Close()
		}
	}()
	for i := 0; i < 3; i++ {
		// The codec (the registry's wire/checkpoint encoding) enables the
		// binary ingest path on the worker handler.
		reg, err := engine.NewRegistry(engine.RegistryOptions[int64]{Defaults: defaults, Codec: codec})
		if err != nil {
			return nil, err
		}
		registries = append(registries, reg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: engine.NewRegistryHandler(reg, engine.Int64Key, engine.HandlerOptions{})}
		servers = append(servers, srv)
		go srv.Serve(ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}

	// Two coordinators over the same fleet: the warm one with the gather
	// fast path on (the default), the cold one with it disabled — the
	// pre-cache behavior, kept measured so the baseline path can't rot.
	serveCoord := func(disableCache bool) (string, error) {
		coord, err := cluster.New(cluster.Options[int64]{
			Workers:            urls,
			Spread:             2,
			Codec:              codec,
			Parse:              engine.Int64Key,
			Client:             &cluster.WorkerClient{HTTP: cluster.NewWorkerHTTPClient(10 * time.Second)},
			DisableGatherCache: disableCache,
		})
		if err != nil {
			return "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: coord.Handler()}
		servers = append(servers, srv)
		go srv.Serve(ln)
		return "http://" + ln.Addr().String(), nil
	}
	baseWarm, err := serveCoord(false)
	if err != nil {
		return nil, err
	}
	baseCold, err := serveCoord(true)
	if err != nil {
		return nil, err
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		// Enough idle conns for the concurrent query pool; the default
		// transport keeps only 2 per host and would redial under load.
		Transport: &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 2 * queryClients},
	}
	post := func(path, contentType string, body []byte) error {
		resp, err := client.Post(baseWarm+path, contentType, bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("%s: http %d", path, resp.StatusCode)
		}
		return nil
	}
	if err := post("/admin/tenants", "application/json", []byte(`{"name":"`+tenant+`"}`)); err != nil {
		return nil, err
	}

	// Routed ingest: run-aligned binary frames through the coordinator,
	// round-robining across the tenant's owners.
	const batch = 1 << 14 // one run per frame
	xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), n)
	start := time.Now()
	var frame []byte
	for off := 0; off < len(xs); off += batch {
		end := off + batch
		if end > len(xs) {
			end = len(xs)
		}
		if frame, err = runio.AppendDataFrame(frame[:0], codec, "", xs[off:end]); err != nil {
			return nil, err
		}
		if err := post("/t/"+tenant+"/ingest", "application/octet-stream", frame); err != nil {
			return nil, err
		}
	}
	ingestTime := time.Since(start)

	// Merged quantile queries against a fixed fleet state. Each cold query
	// fetches both owners' summaries and merges them; each warm query
	// revalidates the owners (headers-only 304s) and answers off the
	// cached merge. One untimed query first so the warm run measures the
	// steady state, not the cold miss.
	query := func(base string, phi float64) error {
		resp, err := client.Get(fmt.Sprintf("%s/t/%s/quantile?phi=%g", base, tenant, phi))
		if err != nil {
			return err
		}
		var out struct {
			Partial bool `json:"partial"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if out.Partial {
			return fmt.Errorf("partial answer with the whole fleet up")
		}
		return nil
	}
	runQueries := func(base string, count, clients int) (time.Duration, error) {
		if err := query(base, 0.5); err != nil { // untimed warm-up
			return 0, err
		}
		begin := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < count/clients; i++ {
					if err := query(base, 0.5+float64(i%9-4)/10); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(begin)
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		return elapsed, nil
	}
	// Cold runs single-client — the same shape the scatter_gather series
	// has always been measured with, so the cache-off path stays
	// comparable across benchmark generations. Warm runs with a pool of
	// concurrent clients: revalidation round trips dominate a single
	// warm query, and overlapping queries is both the load shape a
	// serving coordinator sees and what the singleflight coalescing is
	// built for.
	coldTime, err := runQueries(baseCold, coldQueries, 1)
	if err != nil {
		return nil, err
	}
	warmTime, err := runQueries(baseWarm, warmQueries, queryClients)
	if err != nil {
		return nil, err
	}
	coldQPS := float64(coldQueries) / coldTime.Seconds()
	warmQPS := float64(warmQueries) / warmTime.Seconds()

	t := &Table{
		ID:     "Extension: coord",
		Title:  fmt.Sprintf("Distributed tier wall-clock (1 coordinator + 3 workers over loopback HTTP, n=%s, spread 2)", humanN(n)),
		Header: []string{"Path", "time", "throughput"},
		Notes: []string{
			"ingest: run-aligned binary frames proxied to the owning workers",
			fmt.Sprintf("cold: %d single-client lookups, gather cache disabled (full 2-owner fetch + merge each)", coldQueries),
			fmt.Sprintf("warm: %d lookups from %d concurrent clients against the versioned gather cache (conditional GETs riding 304s, merge reused, bursts coalesced)", warmQueries, queryClients),
		},
	}
	t.AddRow("ingest", ingestTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%s elems/s", humanN(int(float64(n)/ingestTime.Seconds()))))
	t.AddRow("scatter-gather cold", coldTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f queries/s", coldQPS))
	t.AddRow("scatter-gather warm", warmTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f queries/s", warmQPS))
	t.AddMetric("coord/ingest/elems_per_sec", float64(n)/ingestTime.Seconds(), "elems/sec", "higher", true)
	// The historical scatter_gather series continues as the default
	// (cache-on) path; cold and warm are also tracked separately so a
	// regression in either shows up on its own line.
	t.AddMetric("coord/scatter_gather/queries_per_sec", warmQPS, "queries/sec", "higher", true)
	t.AddMetric("coord/scatter_gather_cold/queries_per_sec", coldQPS, "queries/sec", "higher", true)
	t.AddMetric("coord/scatter_gather_warm/queries_per_sec", warmQPS, "queries/sec", "higher", true)
	return t, nil
}
