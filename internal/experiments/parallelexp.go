package experiments

import (
	"fmt"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/metrics"
	"opaq/internal/parallel"
	"opaq/internal/runio"
	"opaq/internal/simnet"
)

// parSeed fixes dataset seeds for the parallel experiments.
const parSeed = 2397

// parallelConfig mirrors the paper's parallel setup: 1024 samples per run,
// runs sized so each processor's shard splits into a handful of runs.
func parallelConfig(perProc, p int, algo parallel.MergeAlgo) parallel.Config {
	const s = 1024
	m := perProc / 4
	if m < s {
		m = s
	}
	if rem := m % s; rem != 0 {
		m += s - rem
	}
	return parallel.Config{
		Core:  core.Config{RunLen: m, SampleSize: s, Seed: parSeed},
		Procs: p,
		Merge: algo,
		Model: simnet.DefaultCostModel(),
		Disk:  runio.DefaultDiskModel(),
	}
}

// genShards produces p equal shards of total elements, streamed per shard.
func genShards(total, p int, seed int64) [][]int64 {
	per := total / p
	shards := make([][]int64, p)
	for i := range shards {
		shards[i] = datagen.Generate(datagen.NewUniform(seed+int64(i), 1<<62), per)
	}
	return shards
}

// Figure3 reproduces "The execution time of the merge methods": bitonic vs
// sample merge of p sorted lists, for per-processor list sizes of 1–128 KB
// (128–16384 elements at 8 bytes each) and p ∈ {2, 4, 8}.
func Figure3(scale int) (*Table, error) {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Global merge simulated time (milliseconds): bitonic vs sample merge",
		Header: []string{"KB/proc", "bit p=2", "smp p=2", "bit p=4", "smp p=4", "bit p=8", "smp p=8"},
		Notes: []string{
			"paper: bitonic wins at small sizes/processor counts, sample merge wins as either grows",
		},
	}
	for kb := 1; kb <= 128; kb <<= 1 {
		elems := kb * 1024 / 8
		cells := make([]string, 0, 6)
		for _, p := range []int{2, 4, 8} {
			for _, algo := range []parallel.MergeAlgo{parallel.BitonicMerge, parallel.SampleMerge} {
				d, err := parallel.GlobalMergeTime(elems, p, algo, simnet.DefaultCostModel(), parSeed)
				if err != nil {
					return nil, err
				}
				cells = append(cells, fmt.Sprintf("%.4f", float64(d.Microseconds())/1000))
			}
		}
		// Reorder: bit/smp per p are already adjacent in generation order.
		t.AddRow(fmt.Sprintf("%dK", kb), cells...)
	}
	return t, nil
}

// Table9 reproduces "The RER_A produced by the parallel algorithm for
// different data sets": dectiles, 8 processors, total n from 0.5M to 32M,
// uniform keys, 1024 samples per run.
func Table9(scale int) (*Table, error) {
	totals := []int{500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000}
	t := &Table{
		ID:     "Table 9",
		Title:  "Parallel RER_A by dectile and total data size (p=8, uniform)",
		Header: []string{"Dectile"},
		Notes:  []string{"paper: 0.07–0.10 across every size — size-independent accuracy"},
	}
	const p = 8
	cols := make([][]float64, 0, len(totals))
	for i, total := range totals {
		n := scaleN(total, scale)
		t.Header = append(t.Header, humanN(n))
		shards := genShards(n, p, parSeed+int64(i))
		res, err := parallel.Run(shards, parallelConfig(n/p, p, parallel.SampleMerge))
		if err != nil {
			return nil, err
		}
		bounds, err := res.Summary.Quantiles(10)
		if err != nil {
			return nil, err
		}
		var all []int64
		for _, sh := range shards {
			all = append(all, sh...)
		}
		o := metrics.NewOracle(all)
		encl := make([]metrics.Enclosure[int64], len(bounds))
		for j, b := range bounds {
			encl[j] = metrics.Enclosure[int64]{Phi: b.Phi, Lower: b.Lower, Upper: b.Upper}
		}
		rera, err := metrics.RERA(o, encl)
		if err != nil {
			return nil, err
		}
		cols = append(cols, rera)
	}
	for d := 0; d < 9; d++ {
		cells := make([]string, len(cols))
		for i := range cols {
			cells[i] = fmtPct(cols[i][d])
		}
		t.AddRow(fmt.Sprintf("%d0%%", d+1), cells...)
	}
	return t, nil
}

// Table10 reproduces "The RER_L and RER_N produced by the parallel
// algorithm for different data sets" on the Table 9 sweep.
func Table10(scale int) (*Table, error) {
	totals := []int{500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000}
	t := &Table{
		ID:     "Table 10",
		Title:  "Parallel RER_L and RER_N by total data size (p=8, uniform)",
		Header: []string{"Metric"},
		Notes:  []string{"paper: RER_L 0.51–0.62, RER_N 0.52–0.67, flat in n"},
	}
	const p = 8
	var rerls, rerns []string
	for i, total := range totals {
		n := scaleN(total, scale)
		t.Header = append(t.Header, humanN(n))
		shards := genShards(n, p, parSeed+int64(i))
		res, err := parallel.Run(shards, parallelConfig(n/p, p, parallel.SampleMerge))
		if err != nil {
			return nil, err
		}
		bounds, err := res.Summary.Quantiles(10)
		if err != nil {
			return nil, err
		}
		var all []int64
		for _, sh := range shards {
			all = append(all, sh...)
		}
		o := metrics.NewOracle(all)
		encl := make([]metrics.Enclosure[int64], len(bounds))
		for j, b := range bounds {
			encl[j] = metrics.Enclosure[int64]{Phi: b.Phi, Lower: b.Lower, Upper: b.Upper}
		}
		rl, err := metrics.RERL(o, encl)
		if err != nil {
			return nil, err
		}
		rn, err := metrics.RERN(o, encl)
		if err != nil {
			return nil, err
		}
		rerls = append(rerls, fmtPct(rl))
		rerns = append(rerns, fmtPct(rn))
	}
	t.AddRow("RER_L", rerls...)
	t.AddRow("RER_N", rerns...)
	return t, nil
}

// Table11 reproduces "The percentage of the I/O time to the total time for
// different number of elements per processor and different number of
// processors".
func Table11(scale int) (*Table, error) {
	perProcs := []int{500_000, 1_000_000, 2_000_000, 4_000_000}
	procs := []int{1, 2, 4, 8, 16}
	t := &Table{
		ID:     "Table 11",
		Title:  "I/O fraction of total simulated time",
		Header: []string{"Size/proc", "p=1", "p=2", "p=4", "p=8", "p=16"},
		Notes:  []string{"paper: 0.40–0.57, centred on ≈0.51, flat in both size and p"},
	}
	for _, pp := range perProcs {
		per := scaleN(pp, scale)
		cells := make([]string, 0, len(procs))
		for _, p := range procs {
			shards := genShards(per*p, p, parSeed)
			res, err := parallel.Run(shards, parallelConfig(per, p, parallel.SampleMerge))
			if err != nil {
				return nil, err
			}
			frac := float64(res.Phases.IO) / float64(res.Phases.Total())
			cells = append(cells, fmt.Sprintf("%.2f", frac))
		}
		t.AddRow(humanN(per), cells...)
	}
	return t, nil
}

// Table12 reproduces "The percentage of the execution time of the
// different phases" at 4M elements per processor.
func Table12(scale int) (*Table, error) {
	per := scaleN(4_000_000, scale)
	procs := []int{1, 2, 4, 8, 16}
	t := &Table{
		ID:     "Table 12",
		Title:  fmt.Sprintf("Phase fraction of total simulated time (%s per processor)", humanN(per)),
		Header: []string{"Phase", "p=1", "p=2", "p=4", "p=8", "p=16"},
		Notes: []string{
			"paper: I/O ≈ 0.51, sampling ≈ 0.46, local merge ≤ 0.01, global merge grows 0 → 0.015 with p",
		},
	}
	rows := map[string][]string{"I/O": nil, "Sampling": nil, "Local Merge": nil, "Global Merge": nil}
	for _, p := range procs {
		shards := genShards(per*p, p, parSeed)
		res, err := parallel.Run(shards, parallelConfig(per, p, parallel.SampleMerge))
		if err != nil {
			return nil, err
		}
		total := float64(res.Phases.Total())
		rows["I/O"] = append(rows["I/O"], fmt.Sprintf("%.3f", float64(res.Phases.IO)/total))
		rows["Sampling"] = append(rows["Sampling"], fmt.Sprintf("%.3f", float64(res.Phases.Sampling)/total))
		rows["Local Merge"] = append(rows["Local Merge"], fmt.Sprintf("%.3f", float64(res.Phases.LocalMerge)/total))
		rows["Global Merge"] = append(rows["Global Merge"], fmt.Sprintf("%.3f", float64(res.Phases.GlobalMerge)/total))
	}
	for _, name := range []string{"I/O", "Sampling", "Local Merge", "Global Merge"} {
		t.AddRow(name, rows[name]...)
	}
	return t, nil
}

// Figure4 reproduces the scale-up plot: total simulated time vs processor
// count at fixed per-processor data size (flat lines = perfect scale-up).
func Figure4(scale int) (*Table, error) {
	perProcs := []int{500_000, 1_000_000, 2_000_000, 4_000_000}
	procs := []int{2, 4, 8, 16}
	t := &Table{
		ID:     "Figure 4",
		Title:  "Scale-up: total simulated time (s) vs p at fixed per-processor size",
		Header: []string{"Size/proc", "p=2", "p=4", "p=8", "p=16"},
		Notes:  []string{"paper: near-flat lines — the only extra parallel cost is the (small) global merge"},
	}
	for _, pp := range perProcs {
		per := scaleN(pp, scale)
		cells := make([]string, 0, len(procs))
		for _, p := range procs {
			shards := genShards(per*p, p, parSeed)
			res, err := parallel.Run(shards, parallelConfig(per, p, parallel.SampleMerge))
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.2f", res.TotalTime.Seconds()))
		}
		t.AddRow(humanN(per), cells...)
	}
	return t, nil
}

// Figure5 reproduces the size-up plot: total simulated time vs
// per-processor data size for each machine size (linear = perfect size-up).
func Figure5(scale int) (*Table, error) {
	perProcs := []int{500_000, 1_000_000, 2_000_000, 4_000_000}
	procs := []int{1, 2, 4, 8, 16}
	t := &Table{
		ID:     "Figure 5",
		Title:  "Size-up: total simulated time (s) vs per-processor size",
		Header: []string{"Procs"},
		Notes:  []string{"paper: time doubles as per-processor data doubles, for every machine size"},
	}
	for _, pp := range perProcs {
		t.Header = append(t.Header, humanN(scaleN(pp, scale)))
	}
	for _, p := range procs {
		cells := make([]string, 0, len(perProcs))
		for _, pp := range perProcs {
			per := scaleN(pp, scale)
			shards := genShards(per*p, p, parSeed)
			res, err := parallel.Run(shards, parallelConfig(per, p, parallel.SampleMerge))
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.2f", res.TotalTime.Seconds()))
		}
		t.AddRow(fmt.Sprintf("p=%d", p), cells...)
	}
	return t, nil
}

// Figure6 reproduces the speedup plot: fixed total data (4M elements),
// speedup = T(1)/T(p) for p = 1…8.
func Figure6(scale int) (*Table, error) {
	total := scaleN(4_000_000, scale)
	t := &Table{
		ID:     "Figure 6",
		Title:  fmt.Sprintf("Speedup at fixed total size (%s elements)", humanN(total)),
		Header: []string{"Procs", "time (s)", "speedup"},
		Notes:  []string{"paper: near-linear speedup up to 8 processors"},
	}
	var t1 time.Duration
	for _, p := range []int{1, 2, 4, 8} {
		shards := genShards(total, p, parSeed)
		res, err := parallel.Run(shards, parallelConfig(total/p, p, parallel.SampleMerge))
		if err != nil {
			return nil, err
		}
		if p == 1 {
			t1 = res.TotalTime
		}
		t.AddRow(fmt.Sprintf("p=%d", p),
			fmt.Sprintf("%.2f", res.TotalTime.Seconds()),
			fmt.Sprintf("%.2f", float64(t1)/float64(res.TotalTime)))
	}
	return t, nil
}

// humanN renders element counts like the paper's axis labels.
func humanN(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1_000_000)
	case n >= 1_000:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// All returns every experiment keyed by its benchtab name.
func All() map[string]func(scale int) (*Table, error) {
	return map[string]func(scale int) (*Table, error){
		"table3":   Table3,
		"table4":   Table4,
		"table5":   Table5,
		"table6":   Table6,
		"table7":   Table7,
		"figure3":  Figure3,
		"table9":   Table9,
		"table10":  Table10,
		"table11":  Table11,
		"table12":  Table12,
		"figure4":  Figure4,
		"figure5":  Figure5,
		"figure6":  Figure6,
		"overlap":  FigureOverlap,
		"split":    AblationSplit,
		"workers":  WorkerSweep,
		"sharded":  ShardSweep,
		"coord":    ClusterSweep,
		"engine":   EngineSweep,
		"compact":  CompactionSweep,
		"ingest":   IngestSweep,
		"snapshot": SnapshotSweep,
	}
}

// Order is the paper order of experiment names.
var Order = []string{
	"table3", "table4", "table5", "table6", "table7",
	"figure3", "table9", "table10", "table11", "table12",
	"figure4", "figure5", "figure6", "overlap", "split", "workers", "sharded", "coord", "engine", "compact", "snapshot", "ingest",
}

// FigureOverlap is an extension experiment beyond the paper's evaluation:
// it quantifies the paper's Section 4 future-work claim ("Since a large
// fraction of the total execution time is spent in I/O, we can
// significantly reduce the total execution time by overlapping the I/O
// and the computation"). With I/O ≈ 50% of the total (Table 11), hiding
// it behind sampling should cut total time by nearly half.
func FigureOverlap(scale int) (*Table, error) {
	per := scaleN(2_000_000, scale)
	procs := []int{1, 2, 4, 8}
	t := &Table{
		ID:     "Extension: overlap",
		Title:  fmt.Sprintf("I/O–computation overlap (%s per processor): total simulated time (s)", humanN(per)),
		Header: []string{"Procs", "no overlap", "overlap", "reduction"},
		Notes: []string{
			"paper §4 (future work): overlapping I/O with computation should cut total time substantially",
		},
	}
	for _, p := range procs {
		shards := genShards(per*p, p, parSeed)
		base := parallelConfig(per, p, parallel.SampleMerge)
		resOff, err := parallel.Run(shards, base)
		if err != nil {
			return nil, err
		}
		on := base
		on.OverlapIO = true
		resOn, err := parallel.Run(shards, on)
		if err != nil {
			return nil, err
		}
		red := 1 - resOn.TotalTime.Seconds()/resOff.TotalTime.Seconds()
		t.AddRow(fmt.Sprintf("p=%d", p),
			fmt.Sprintf("%.2f", resOff.TotalTime.Seconds()),
			fmt.Sprintf("%.2f", resOn.TotalTime.Seconds()),
			fmt.Sprintf("%.0f%%", red*100))
	}
	return t, nil
}
