package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/engine"
	"opaq/internal/runio"
	"opaq/opaqclient"
)

// IngestSweep is an extension experiment beyond the paper's evaluation:
// it measures the server's ingest paths end to end — client encoding,
// transport, server decode and engine insert in one process — for the
// same stream pushed three ways: JSON over HTTP (the baseline API),
// binary frames over HTTP (content-negotiated on the same route), and
// binary frames over a persistent TCP connection. The paper's premise is
// that one sequential pass at device speed suffices for accurate
// quantiles; this table asks whether the service's front door keeps up
// with that pass, and by how much the binary framing widens it.
func IngestSweep(scale int) (*Table, error) {
	n := scaleN(8_000_000, scale)
	// One run per batch: large enough to amortize per-batch overheads, and
	// each transport ships the identical batch boundaries. A 64K-element
	// JSON body is ~700 KiB, still well under the ingest body cap. The
	// light sampling config (s=32) keeps the engine's own run-sorting cost
	// from drowning the transport costs this experiment compares.
	const batch = 1 << 16
	cfg := core.Config{RunLen: 1 << 16, SampleSize: 1 << 5, Seed: seqSeed}

	xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), n)

	t := &Table{
		ID:     "Extension: ingest",
		Title:  fmt.Sprintf("Ingest transport throughput (n=%s streamed in %d-element batches, m=%d, s=%d)", humanN(n), batch, cfg.RunLen, cfg.SampleSize),
		Header: []string{"Transport", "elems/sec", "ns/elem", "allocs/elem", "vs JSON"},
		Notes: []string{
			"one process: client encode, loopback transport, server decode and engine insert all measured together",
			"allocs/elem is the whole-process malloc count over the run — client and server sides combined",
		},
	}

	transports := []struct {
		key  string
		push func(e *engine.Engine[int64]) error
	}{
		{"json_http", func(e *engine.Engine[int64]) error {
			url, stop, err := serveHTTP(e)
			if err != nil {
				return err
			}
			defer stop()
			return pushJSON(url+"/ingest", xs, batch)
		}},
		{"binary_http", func(e *engine.Engine[int64]) error {
			url, stop, err := serveHTTP(e)
			if err != nil {
				return err
			}
			defer stop()
			c := opaqclient.NewHTTP(url, runio.Int64Codec{}, opaqclient.Options{MaxBatch: batch})
			if err := c.AddBatch(xs); err != nil {
				return err
			}
			return c.Close()
		}},
		{"tcp", func(e *engine.Engine[int64]) error {
			srv := engine.NewTCPServer(e, runio.Int64Codec{}, engine.TCPOptions{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go srv.Serve(ln)
			defer srv.Close()
			return pushTCPPipelined(ln.Addr().String(), xs, batch)
		}},
	}

	var jsonRate float64
	for _, tr := range transports {
		e, err := engine.New[int64](engine.Options{Config: cfg, Stripes: 4})
		if err != nil {
			return nil, err
		}
		elapsed, mallocs, err := measureIngest(func() error { return tr.push(e) })
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tr.key, err)
		}
		if got := e.N(); got != int64(n) {
			return nil, fmt.Errorf("%s: engine holds %d elements, pushed %d", tr.key, got, n)
		}

		rate := float64(n) / elapsed.Seconds()
		nsPerElem := float64(elapsed.Nanoseconds()) / float64(n)
		allocsPerElem := float64(mallocs) / float64(n)
		if tr.key == "json_http" {
			jsonRate = rate
		}
		t.AddRow(tr.key,
			humanN(int(rate)),
			fmt.Sprintf("%.1f", nsPerElem),
			fmt.Sprintf("%.2f", allocsPerElem),
			fmt.Sprintf("%.1fx", rate/jsonRate))

		t.AddMetric("ingest/"+tr.key+"/elems_per_sec", rate, "elems/sec", "higher", true)
		t.AddMetric("ingest/"+tr.key+"/ns_per_elem", nsPerElem, "ns/op", "lower", false)
		t.AddMetric("ingest/"+tr.key+"/allocs_per_elem", allocsPerElem, "allocs/op", "lower", false)
		if tr.key != "json_http" {
			t.AddMetric("ingest/"+tr.key+"/speedup_vs_json", rate/jsonRate, "x", "higher", false)
		}
	}
	return t, nil
}

// measureIngest runs one push under a malloc counter. The GC pass first
// keeps a previous transport's garbage out of this run's numbers.
func measureIngest(push func() error) (time.Duration, uint64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := push(); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, nil
}

// serveHTTP exposes one engine on a loopback listener with the binary
// route enabled, returning the base URL and a stop function.
func serveHTTP(e *engine.Engine[int64]) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: engine.NewHandlerCodec(e, engine.Int64Key, runio.Int64Codec{}, engine.HandlerOptions{})}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// pushTCPPipelined streams data frames over one TCP connection with acks
// in flight: the protocol acks every batch, but nothing requires the
// client to block on each ack, so a writer goroutine keeps frames on the
// wire while a reader drains acks. This overlaps client encoding with
// server decode+insert — the transport's peak shape (opaqclient trades
// some of it for the simpler flush-and-confirm discipline).
func pushTCPPipelined(addr string, xs []int64, batch int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	batches := (len(xs) + batch - 1) / batch
	readErr := make(chan error, 1)
	go func() {
		br := bufio.NewReaderSize(conn, 16<<10)
		var payload []byte
		var acked int64
		for i := 0; i < batches; i++ {
			h, err := runio.ReadFrameHeader(br, 0)
			if err != nil {
				readErr <- err
				return
			}
			payload, err = runio.ReadFramePayload(br, h, payload)
			if err != nil {
				readErr <- err
				return
			}
			if h.Type != runio.FrameAck {
				_, msg, _ := runio.DecodeNackPayload(payload)
				readErr <- fmt.Errorf("batch %d nacked: %s", i, msg)
				return
			}
			count, _, err := runio.DecodeAckPayload(payload)
			if err != nil {
				readErr <- err
				return
			}
			acked += int64(count)
		}
		if acked != int64(len(xs)) {
			readErr <- fmt.Errorf("acked %d of %d elements", acked, len(xs))
			return
		}
		readErr <- nil
	}()

	bw := bufio.NewWriterSize(conn, 256<<10)
	var frame []byte
	for off := 0; off < len(xs); off += batch {
		end := min(off+batch, len(xs))
		frame, err = runio.AppendDataFrame(frame[:0], runio.Int64Codec{}, "", xs[off:end])
		if err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return <-readErr
}

// pushJSON streams batches through the JSON ingest route the way an
// idiomatic JSON client does — encoding/json marshalling one keys body
// per batch, one POST per batch over a kept-alive connection.
func pushJSON(url string, xs []int64, batch int) error {
	for off := 0; off < len(xs); off += batch {
		end := min(off+batch, len(xs))
		body, err := json.Marshal(struct {
			Keys []int64 `json:"keys"`
		}{Keys: xs[off:end]})
		if err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("json ingest: http %d", resp.StatusCode)
		}
	}
	return nil
}
