package experiments

import (
	"fmt"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/parallel"
	"opaq/internal/runio"
)

// ShardSweep is an extension experiment beyond the paper's evaluation: it
// measures the real (wall-clock) time of the sharded engine — the paper's
// Section 3 parallel formulation on real transports instead of the
// simulated SP-2 — as the shard count grows over fixed total data. Both
// real transports run at every count: in-process (goroutines exchanging
// slices) and TCP (every exchange framed over a loopback mesh), so the
// table doubles as a measurement of what the wire costs. Summaries are
// re-checked to be bit-identical to the single-shard build on both.
//
// Only real-transport throughput feeds the regression gate; the
// simulated-SP-2 experiments (Table 9–12, Figures 4–6) report modeled
// time and are deliberately not gated.
func ShardSweep(scale int) (*Table, error) {
	n := scaleN(8_000_000, scale)
	const s = 1024
	m := 1 << 16
	xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), n)
	cfg := core.Config{RunLen: m, SampleSize: s, Seed: seqSeed, Workers: 1}

	t := &Table{
		ID:     "Extension: sharded",
		Title:  fmt.Sprintf("Sharded engine wall-clock build time (n=%s in memory, m=%d, s=%d, sample merge)", humanN(n), m, s),
		Header: []string{"Shards", "inproc", "speedup", "tcp", "tcp cost"},
		Notes: []string{
			"real transports (no cost model); summaries are bit-identical at every shard count on both",
			"per-shard Workers pinned to 1 so the speedup isolates sharding itself",
			"tcp cost = tcp time / inproc time at the same shard count (loopback mesh framing overhead)",
		},
	}
	var base time.Duration
	var baseline *core.Summary[int64]
	counts := []int{1, 2, 4, 8}
	for _, shards := range counts {
		pieces, err := parallel.ShardSlices(xs, shards, m)
		if err != nil {
			return nil, err
		}
		datasets := make([]runio.Dataset[int64], len(pieces))
		for i, p := range pieces {
			datasets[i] = runio.NewMemoryDataset(p, 8)
		}
		var elapsed [2]time.Duration
		for i, transport := range []parallel.TransportKind{parallel.TransportInProcess, parallel.TransportTCP} {
			start := time.Now()
			sum, err := parallel.BuildSharded(datasets, cfg,
				parallel.ShardOptions{Merge: parallel.SampleMerge, Transport: transport})
			if err != nil {
				return nil, fmt.Errorf("shards=%d %s: %w", shards, transport, err)
			}
			elapsed[i] = time.Since(start)
			if baseline == nil {
				base, baseline = elapsed[i], sum
			} else if err := sameSummary(baseline, sum); err != nil {
				return nil, fmt.Errorf("shards=%d %s: %w", shards, transport, err)
			}
		}
		t.AddRow(fmt.Sprintf("shards=%d", shards),
			elapsed[0].Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed[0])),
			elapsed[1].Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(elapsed[1])/float64(elapsed[0])))
		if shards == counts[len(counts)-1] {
			t.AddMetric("sharded/inproc/elems_per_sec",
				float64(n)/elapsed[0].Seconds(), "elems/sec", "higher", true)
			t.AddMetric("sharded/tcp/elems_per_sec",
				float64(n)/elapsed[1].Seconds(), "elems/sec", "higher", true)
		}
	}
	return t, nil
}
