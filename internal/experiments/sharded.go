package experiments

import (
	"fmt"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/parallel"
	"opaq/internal/runio"
)

// ShardSweep is an extension experiment beyond the paper's evaluation: it
// measures the real (wall-clock) time of the sharded engine — the paper's
// Section 3 parallel formulation on the in-process transport instead of
// the simulated SP-2 — as the shard count grows over fixed total data.
// This is the practical counterpart of the simulated speedup plot
// (Figure 6): the local sample phases run concurrently for real, the
// global sample merge is the PSRS-style splitter merge, and the summary is
// re-checked to be bit-identical to the single-shard build at every count.
func ShardSweep(scale int) (*Table, error) {
	n := scaleN(8_000_000, scale)
	const s = 1024
	m := 1 << 16
	xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), n)
	cfg := core.Config{RunLen: m, SampleSize: s, Seed: seqSeed, Workers: 1}

	t := &Table{
		ID:     "Extension: sharded",
		Title:  fmt.Sprintf("Sharded engine wall-clock build time (n=%s in memory, m=%d, s=%d, sample merge)", humanN(n), m, s),
		Header: []string{"Shards", "build time", "speedup"},
		Notes: []string{
			"real transport (goroutines, no cost model); summaries are bit-identical at every shard count",
			"per-shard Workers pinned to 1 so the speedup isolates sharding itself",
		},
	}
	var base time.Duration
	var baseline *core.Summary[int64]
	for _, shards := range []int{1, 2, 4, 8} {
		pieces, err := parallel.ShardSlices(xs, shards, m)
		if err != nil {
			return nil, err
		}
		datasets := make([]runio.Dataset[int64], len(pieces))
		for i, p := range pieces {
			datasets[i] = runio.NewMemoryDataset(p, 8)
		}
		start := time.Now()
		sum, err := parallel.BuildSharded(datasets, cfg, parallel.ShardOptions{Merge: parallel.SampleMerge})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if baseline == nil {
			base, baseline = elapsed, sum
		} else if err := sameSummary(baseline, sum); err != nil {
			return nil, fmt.Errorf("shards=%d: %w", shards, err)
		}
		t.AddRow(fmt.Sprintf("shards=%d", shards),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	return t, nil
}
