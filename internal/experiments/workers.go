package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/runio"
)

// WorkerSweep is an extension experiment beyond the paper's evaluation: it
// measures the real (wall-clock) build time of the concurrent sample-phase
// pipeline over a disk-resident run file as the worker count grows. This is
// the practical counterpart of the paper's Section 4 future work — the
// simulated "overlap" experiment predicts the gain; this one measures it on
// actual hardware, where the producer prefetches runs from disk while the
// worker pool multi-selects them.
func WorkerSweep(scale int) (*Table, error) {
	n := int64(scaleN(8_000_000, scale))
	cfg := core.Config{RunLen: 1 << 16, SampleSize: 1 << 10, Seed: seqSeed}

	dir, err := os.MkdirTemp("", "opaq-workers")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "data.run")
	gen := datagen.NewUniform(seqSeed, 1<<62)
	if err := runio.WriteFileFunc(path, runio.Int64Codec{}, n, func(int64) int64 { return gen.Next() }); err != nil {
		return nil, err
	}

	// Even on one core the pipeline can win: the producer's disk waits
	// overlap the workers' multi-selection. Sweep 1, 2, 4, … up to
	// GOMAXPROCS (always including 2 so the concurrent path is exercised).
	maxW := runtime.GOMAXPROCS(0)
	workerCounts := []int{1, 2}
	for w := 4; w < maxW; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	if maxW > 2 {
		workerCounts = append(workerCounts, maxW)
	}

	t := &Table{
		ID:     "Extension: workers",
		Title:  fmt.Sprintf("Concurrent build wall-clock time (n=%s on disk, m=%d, s=%d)", humanN(int(n)), cfg.RunLen, cfg.SampleSize),
		Header: []string{"Workers", "build time", "speedup"},
		Notes: []string{
			"paper §4 (future work): overlapping I/O and computation; summaries are bit-identical at every worker count",
		},
	}
	var base time.Duration
	var baseline *core.Summary[int64]
	for _, w := range workerCounts {
		ds, err := runio.OpenFile(path, runio.Int64Codec{})
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Workers = w
		start := time.Now()
		sum, err := core.BuildFromDataset[int64](ds, c)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if baseline == nil {
			base, baseline = elapsed, sum
		} else if err := sameSummary(baseline, sum); err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		t.AddRow(fmt.Sprintf("w=%d", w),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	return t, nil
}

// sameSummary checks the bit-identical determinism guarantee across worker
// counts.
func sameSummary(a, b *core.Summary[int64]) error {
	pa, pb := a.Parts(), b.Parts()
	if pa.N != pb.N || pa.Runs != pb.Runs || pa.Step != pb.Step ||
		pa.Leftover != pb.Leftover || pa.Min != pb.Min || pa.Max != pb.Max ||
		len(pa.Samples) != len(pb.Samples) {
		return fmt.Errorf("summary metadata diverged: %+v vs %+v", pa, pb)
	}
	for i := range pa.Samples {
		if pa.Samples[i] != pb.Samples[i] {
			return fmt.Errorf("sample %d diverged: %d vs %d", i, pa.Samples[i], pb.Samples[i])
		}
	}
	return nil
}
