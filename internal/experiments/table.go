// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 2.4 and 3.1). Each experiment returns a Table whose
// rows mirror the paper's layout, so benchtab output can be compared
// against the paper side by side; EXPERIMENTS.md records that comparison.
//
// A Scale divisor shrinks dataset sizes uniformly so the full suite also
// runs in CI-sized time budgets; Scale 1 is paper scale.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	// ID is the paper's label, e.g. "Table 3" or "Figure 6".
	ID string
	// Title describes the experiment.
	Title string
	// Header holds column names; Rows hold one label plus len(Header)-1
	// cells each.
	Header []string
	Rows   []Row
	// Notes carry calibration caveats shown under the table.
	Notes []string
	// Metrics are the experiment's machine-readable measurements, the
	// feed for benchtab -json and its baseline regression gate. They
	// duplicate what the formatted rows show, in comparable units.
	Metrics []Metric
}

// Metric is one machine-readable measurement. Names are
// slash-namespaced ("ingest/tcp/elems_per_sec") so one JSON file can
// hold every experiment's trajectory.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Better is "higher" or "lower": which direction is an improvement.
	// The regression gate needs it to tell a win from a loss.
	Better string `json:"better"`
	// Gate opts the metric into benchtab's -regress check. Leave false
	// for context-only measurements too noisy to gate CI on.
	Gate bool `json:"gate,omitempty"`
}

// AddMetric appends a machine-readable measurement.
func (t *Table) AddMetric(name string, value float64, unit, better string, gate bool) {
	t.Metrics = append(t.Metrics, Metric{Name: name, Value: value, Unit: unit, Better: better, Gate: gate})
}

// Row is one table row.
type Row struct {
	Label string
	Cells []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(label string, cells ...string) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, c := range r.Cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1))); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := append([]string{r.Label}, r.Cells...)
		if _, err := fmt.Fprintln(w, line(cells)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// scaleN divides a paper dataset size by the scale divisor, keeping a
// floor large enough for the configured sample sizes to stay meaningful.
func scaleN(n int, scale int) int {
	if scale < 1 {
		scale = 1
	}
	out := n / scale
	if out < 20_000 {
		out = 20_000
	}
	return out
}

// fmtPct formats an error-rate percentage like the paper (two decimals).
func fmtPct(v float64) string { return fmt.Sprintf("%.2f", v) }
