package experiments

import (
	"fmt"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/engine"
)

// EngineSweep is an extension experiment beyond the paper's evaluation:
// it measures the live serving engine's epoch lifecycle — the paper's
// Section 4 incremental maintenance running continuously — over one
// in-memory stream. Each row is a retention configuration of the same
// engine: keep-all with no rotation (the merge set grows forever),
// keep-all with periodic sealing (same answers, bounded per-rotation
// work), and two sliding windows. Reported are the wall-clock ingest+query
// time (a median query after every batch, so snapshot rebuild
// amortization is included), the rotations performed, and what remains
// retained at the end.
func EngineSweep(scale int) (*Table, error) {
	n := scaleN(8_000_000, scale)
	const runLen = 1 << 14
	const batch = runLen // run-aligned batches: every batch completes a run
	cfg := core.Config{RunLen: runLen, SampleSize: 1 << 8, Seed: seqSeed}

	xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), n)

	t := &Table{
		ID:     "Extension: engine",
		Title:  fmt.Sprintf("Epoch lifecycle serving cost (n=%s streamed, m=%d, s=%d, median query per batch)", humanN(n), cfg.RunLen, cfg.SampleSize),
		Header: []string{"Lifecycle", "ingest+query time", "seals", "evictions", "retained n", "snapshot samples"},
		Notes: []string{
			"paper §4 (incremental maintenance) run as a service: sealed epochs merge on snapshot rebuild",
			"keep-all rows answer identically (seals never split a run); windowed rows serve only the retained epochs",
		},
	}
	configs := []struct {
		label string
		key   string
		opts  engine.Options
	}{
		{"keep-all, no rotation", "keepall_norotate", engine.Options{Config: cfg, Stripes: 4}},
		{"keep-all, seal/4 runs", "keepall_seal4", engine.Options{
			Config: cfg, Stripes: 4,
			Epoch: engine.EpochPolicy{MaxElems: 4 * runLen},
		}},
		{"window: last 8 epochs", "window_last8", engine.Options{
			Config: cfg, Stripes: 4,
			Epoch:     engine.EpochPolicy{MaxElems: 4 * runLen},
			Retention: engine.Retention{Kind: engine.RetainLastK, K: 8},
		}},
		{"window: last 2 epochs", "window_last2", engine.Options{
			Config: cfg, Stripes: 4,
			Epoch:     engine.EpochPolicy{MaxElems: 4 * runLen},
			Retention: engine.Retention{Kind: engine.RetainLastK, K: 2},
		}},
	}
	for _, c := range configs {
		e, err := engine.New[int64](c.opts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for off := 0; off < len(xs); off += batch {
			end := min(off+batch, len(xs))
			if err := e.IngestBatch(xs[off:end]); err != nil {
				return nil, err
			}
			if _, err := e.Quantile(0.5); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		st := e.Stats()
		t.AddRow(c.label,
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", st.SealedEpochs),
			fmt.Sprintf("%d", st.EvictedEpochs),
			humanN(int(st.RetainedN)),
			fmt.Sprintf("%d", st.SnapshotSamples))
		// Gated as a rate, not a wall time: elems/sec regresses only when
		// per-element work actually grows, while machine-load noise stays
		// inside the regression margin.
		t.AddMetric("engine/"+c.key+"/elems_per_sec", float64(n)/elapsed.Seconds(), "elems/sec", "higher", true)
	}
	return t, nil
}

// CompactionSweep is an extension experiment beyond the paper's
// evaluation: it measures what binary-buddy epoch compaction buys a
// keep-all engine under continuous rotation. Both rows stream the same
// data with one seal per run and a median query after every batch; the
// compacted row additionally buddy-merges adjacent epochs after each
// rotation. Answers are byte-identical by construction (the equivalence
// harness in internal/engine enforces it); what changes is the ring
// depth a snapshot rebuild fans in over — linear in seals uncompacted,
// logarithmic compacted — measured directly by the final-rebuild column
// (one forced rebuild after the stream ends).
func CompactionSweep(scale int) (*Table, error) {
	n := scaleN(8_000_000, scale)
	const runLen = 1 << 13
	const batch = runLen // run-aligned: every batch completes a run
	cfg := core.Config{RunLen: runLen, SampleSize: 1 << 7, Seed: seqSeed}

	xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), n)

	t := &Table{
		ID:     "Extension: compact",
		Title:  fmt.Sprintf("Binary-buddy epoch compaction (n=%s streamed, m=%d, s=%d, one seal per run, median query per batch)", humanN(n), cfg.RunLen, cfg.SampleSize),
		Header: []string{"Ring", "ingest+query time", "seals", "compactions", "final ring depth", "final rebuild"},
		Notes: []string{
			"compaction merges adjacent same-tier epochs after each rotation: answers unchanged, ring depth O(log seals)",
			"final rebuild = one forced snapshot reassembly after the stream; its fan-in is the ring depth",
		},
	}
	for _, c := range []struct {
		label   string
		compact bool
	}{
		{"uncompacted (one entry per seal)", false},
		{"compacted (binary-buddy)", true},
	} {
		e, err := engine.New[int64](engine.Options{
			Config:     cfg,
			Stripes:    4,
			Epoch:      engine.EpochPolicy{MaxElems: runLen},
			Compaction: engine.CompactionPolicy{Enabled: c.compact},
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for off := 0; off < len(xs); off += batch {
			end := min(off+batch, len(xs))
			if err := e.IngestBatch(xs[off:end]); err != nil {
				return nil, err
			}
			if _, err := e.Quantile(0.5); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		// Force one more rebuild to isolate the fan-in cost of the final
		// ring shape.
		if err := e.Ingest(xs[0]); err != nil {
			return nil, err
		}
		rebuildStart := time.Now()
		if _, err := e.Quantile(0.5); err != nil {
			return nil, err
		}
		rebuild := time.Since(rebuildStart)
		st := e.Stats()
		t.AddRow(c.label,
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", st.SealedEpochs),
			fmt.Sprintf("%d", st.Compactions),
			fmt.Sprintf("%d", st.Epochs),
			rebuild.Round(10*time.Microsecond).String())
		key := "compact/uncompacted/"
		if c.compact {
			key = "compact/compacted/"
		}
		// The gated metric is the stream rate — a noise-tolerant
		// formulation of the same measurement as the ungated wall times
		// below, which remain for context only (ring depth is pinned by
		// the equivalence tests already).
		t.AddMetric(key+"elems_per_sec", float64(n)/elapsed.Seconds(), "elems/sec", "higher", true)
		t.AddMetric(key+"stream_ns", float64(elapsed.Nanoseconds()), "ns", "lower", false)
		t.AddMetric(key+"final_rebuild_ns", float64(rebuild.Nanoseconds()), "ns", "lower", false)
		t.AddMetric(key+"final_ring_depth", float64(st.Epochs), "epochs", "lower", false)
	}
	return t, nil
}
