package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Run every experiment at heavy scale-down and sanity-check the shapes the
// paper reports. These are the integration tests tying the whole system
// together; bench_test.go at the module root runs the same experiments
// under testing.B.

const testScale = 40 // 1M → 25k, parallel sizes likewise

func cellsAsFloats(t *testing.T, tbl *Table) [][]float64 {
	t.Helper()
	out := make([][]float64, len(tbl.Rows))
	for i, r := range tbl.Rows {
		out[i] = make([]float64, len(r.Cells))
		for j, c := range r.Cells {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				t.Fatalf("%s row %q cell %d = %q not numeric: %v", tbl.ID, r.Label, j, c, err)
			}
			out[i][j] = v
		}
	}
	return out
}

func TestTable3Shape(t *testing.T) {
	tbl, err := Table3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 dectiles", len(tbl.Rows))
	}
	vals := cellsAsFloats(t, tbl)
	// Columns: U250 U500 U1000 Z250 Z500 Z1000. Doubling s halves RER_A,
	// and every value obeys the 2/s·100 ceiling.
	ceil := func(s float64) float64 { return 2 / s * 100 }
	for _, row := range vals {
		for j, s := range []float64{250, 500, 1000, 250, 500, 1000} {
			if row[j] < 0 || row[j] > ceil(s)+0.01 {
				t.Errorf("RER_A %g violates ceiling %g for s=%g", row[j], ceil(s), s)
			}
		}
	}
	// Average across dectiles halves from s=250 to s=1000 (within 2×).
	avg := func(col int) float64 {
		s := 0.0
		for _, row := range vals {
			s += row[col]
		}
		return s / float64(len(vals))
	}
	if !(avg(2) < avg(0)) || !(avg(5) < avg(3)) {
		t.Errorf("RER_A should shrink with s: uniform %g→%g, zipf %g→%g",
			avg(0), avg(2), avg(3), avg(5))
	}
}

func TestTable4Shape(t *testing.T) {
	tbl, err := Table4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	vals := cellsAsFloats(t, tbl)
	if len(vals) != 2 {
		t.Fatalf("rows = %d", len(vals))
	}
	// RER_L and RER_N shrink as s grows, and respect ~2q/s·100 ceilings.
	for _, row := range vals {
		if !(row[2] <= row[0]+0.01 && row[5] <= row[3]+0.01) {
			t.Errorf("error rates should shrink with s: %v", row)
		}
		for j, s := range []float64{250, 500, 1000, 250, 500, 1000} {
			if row[j] > 2*10/s*100*1.2 {
				t.Errorf("value %g exceeds 2q/s ceiling for s=%g", row[j], s)
			}
		}
	}
}

func TestTable5And6SizeIndependence(t *testing.T) {
	tbl5, err := Table5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	vals := cellsAsFloats(t, tbl5)
	// At s=1000 every cell must obey the 0.2 ceiling; the paper reports
	// ~0.09 everywhere.
	for _, row := range vals {
		for _, v := range row {
			if v > 0.21 {
				t.Errorf("Table5 RER_A %g exceeds 2/s ceiling 0.2", v)
			}
		}
	}
	tbl6, err := Table6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	vals6 := cellsAsFloats(t, tbl6)
	for _, row := range vals6 {
		for _, v := range row {
			if v > 2.5 {
				t.Errorf("Table6 value %g implausibly large", v)
			}
		}
	}
}

func TestTable7OPAQRespectsBound(t *testing.T) {
	tbl, err := Table7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	vals := cellsAsFloats(t, tbl)
	for _, row := range vals {
		// OPAQ columns 0 and 3: deterministic ceiling 2/s·100 = 0.2.
		if row[0] > 0.21 || row[3] > 0.21 {
			t.Errorf("OPAQ RER_A %g/%g exceeds deterministic ceiling", row[0], row[3])
		}
		// Baselines: sane magnitudes (paper: ≤ 0.6).
		for _, j := range []int{1, 2, 4, 5} {
			if row[j] > 5 {
				t.Errorf("baseline RER_A %g implausible", row[j])
			}
		}
	}
}

func TestFigure3Crossover(t *testing.T) {
	tbl, err := Figure3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	vals := cellsAsFloats(t, tbl)
	if len(vals) != 8 {
		t.Fatalf("rows = %d, want 8 sizes", len(vals))
	}
	// Columns: bit2 smp2 bit4 smp4 bit8 smp8.
	// Paper shape: bitonic wins at the small end for small p; sample merge
	// wins at the large end for large p.
	first, last := vals[0], vals[len(vals)-1]
	if !(first[0] < first[1]) {
		t.Errorf("at 1KB, p=2: bitonic %g should beat sample %g", first[0], first[1])
	}
	if !(last[5] < last[4]) {
		t.Errorf("at 128KB, p=8: sample %g should beat bitonic %g", last[5], last[4])
	}
}

func TestTable9And10Parallel(t *testing.T) {
	tbl, err := Table9(testScale)
	if err != nil {
		t.Fatal(err)
	}
	vals := cellsAsFloats(t, tbl)
	for _, row := range vals {
		for _, v := range row {
			if v > 0.25 {
				t.Errorf("parallel RER_A %g exceeds ceiling", v)
			}
		}
	}
	tbl10, err := Table10(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range cellsAsFloats(t, tbl10) {
		for _, v := range row {
			if v > 3 {
				t.Errorf("parallel RER_L/N %g implausible", v)
			}
		}
	}
}

func TestTable11IOFraction(t *testing.T) {
	tbl, err := Table11(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range cellsAsFloats(t, tbl) {
		for _, v := range row {
			if v < 0.35 || v > 0.70 {
				t.Errorf("I/O fraction %g outside the paper's 0.40–0.57 band (±slack)", v)
			}
		}
	}
}

func TestTable12PhaseBreakdown(t *testing.T) {
	tbl, err := Table12(testScale)
	if err != nil {
		t.Fatal(err)
	}
	vals := cellsAsFloats(t, tbl)
	// Rows: I/O, Sampling, Local, Global. I/O + sampling dominate (paper:
	// ≥ 83%); global merge grows with p.
	for col := 0; col < len(vals[0]); col++ {
		if vals[0][col]+vals[1][col] < 0.80 {
			t.Errorf("I/O+sampling fraction %g < 0.80 at col %d", vals[0][col]+vals[1][col], col)
		}
	}
	g := vals[3]
	if !(g[len(g)-1] > g[0]) {
		t.Errorf("global merge fraction should grow with p: %v", g)
	}
}

func TestFigures456Scalability(t *testing.T) {
	f4, err := Figure4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range cellsAsFloats(t, f4) {
		// Scale-up: time at p=16 within 2× of p=2 (paper: nearly flat).
		if row[len(row)-1] > 2*row[0] {
			t.Errorf("scale-up degrades: %v", row)
		}
	}
	f5, err := Figure5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range cellsAsFloats(t, f5) {
		// Size-up: 8× data within [4×, 16×] time.
		ratio := row[len(row)-1] / row[0]
		if ratio < 4 || ratio > 16 {
			t.Errorf("size-up ratio %g outside [4,16]: %v", ratio, row)
		}
	}
	f6, err := Figure6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := cellsAsFloats(t, f6)
	sp8 := rows[len(rows)-1][1] // speedup column of p=8
	if sp8 < 4 {
		t.Errorf("speedup at p=8 = %g, want ≥ 4", sp8)
	}
}

// TestSnapshotSweepSpeedup runs the two-level snapshot experiment at test
// scale and pins the acceptance criterion: at 1000-epoch ring depth the
// two-level rebuild path must be at least 3× the full-remerge rate (the
// measured gap is an order of magnitude larger; 3× leaves room for
// loaded CI machines).
func TestSnapshotSweepSpeedup(t *testing.T) {
	tbl, err := SnapshotSweep(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (full remerge + two-level)", len(tbl.Rows))
	}
	var speedup float64
	gated := 0
	for _, m := range tbl.Metrics {
		if m.Name == "engine/snapshot_under_ingest/speedup" {
			speedup = m.Value
		}
		if m.Gate {
			gated++
		}
	}
	if speedup < 3 {
		t.Errorf("two-level speedup over full remerge = %.2fx, want ≥ 3x", speedup)
	}
	if gated != 2 {
		t.Errorf("gated metrics = %d, want 2 (two_level rate + speedup)", gated)
	}
	// The two-level row must prove it actually served from the cache:
	// prefix hits grew, prefix rebuilds stayed at the single cold merge.
	two := tbl.Rows[1]
	if two.Cells[2] == "0" {
		t.Errorf("two-level row shows zero prefix hits: %v", two.Cells)
	}
	if two.Cells[3] != "1" {
		t.Errorf("two-level row shows %s prefix rebuilds, want exactly 1: %v", two.Cells[3], two.Cells)
	}
}

func TestAllRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != len(Order) {
		t.Fatalf("registry has %d entries, order %d", len(all), len(Order))
	}
	for _, name := range Order {
		if all[name] == nil {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID: "Table X", Title: "demo",
		Header: []string{"A", "B"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("r1", "v1")
	var sb strings.Builder
	if err := tbl.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table X", "demo", "r1", "v1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestAblationSplitShape(t *testing.T) {
	tbl, err := AblationSplit(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The deterministic bound must shrink as s grows, and the observed gap
	// must never exceed the bound.
	prevBound := int64(1 << 62)
	for _, r := range tbl.Rows {
		bound, err1 := strconv.ParseInt(r.Cells[2], 10, 64)
		gap, err2 := strconv.ParseInt(r.Cells[4], 10, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable cells in %v", r.Cells)
		}
		if bound >= prevBound {
			t.Errorf("bound should shrink as s grows: %v", r.Cells)
		}
		prevBound = bound
		if gap > bound {
			t.Errorf("observed gap %d exceeds deterministic bound %d", gap, bound)
		}
	}
}
