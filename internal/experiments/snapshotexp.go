package experiments

import (
	"fmt"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/engine"
)

// SnapshotSweep is an extension experiment beyond the paper's evaluation:
// it measures two-level snapshot maintenance under ingest pressure. Both
// rows pre-load the same keep-all, uncompacted engine shape with 1000
// sealed epochs, then drive the worst-case serving loop — one ingested
// element followed by one query, so every query misses the version cache
// and rebuilds. The full-remerge row (DisableFrozenPrefix) re-merges the
// whole 1001-entry merge set per rebuild, O(retained window); the
// two-level row folds the stripes' unsealed tail into the cached
// frozen-prefix merge, O(tail). Answers are byte-identical by
// construction (the prefix-cache equivalence harness in internal/engine
// enforces it); what changes is the rebuild rate.
func SnapshotSweep(scale int) (*Table, error) {
	const (
		runLen = 256
		epochs = 1000
	)
	// The ring depth IS the scenario, so it stays fixed; scale trims only
	// the measured steady-state cycles (floor 200 keeps the rates
	// meaningful at heavy scale-down).
	cycles := max(200, 2000/max(scale, 1))
	cfg := core.Config{RunLen: runLen, SampleSize: 32, Seed: seqSeed}

	t := &Table{
		ID:     "Extension: snapshot",
		Title:  fmt.Sprintf("Two-level snapshot maintenance under ingest (%d sealed epochs, %d ingest+query cycles)", epochs, cycles),
		Header: []string{"Rebuild path", "rebuilds/sec", "ns/rebuild", "prefix hits", "prefix rebuilds"},
		Notes: []string{
			"every cycle ingests one element and queries: each query misses the version cache and rebuilds",
			"full remerge re-merges ring+tail per rebuild; two-level folds the tail into the cached frozen-prefix merge",
		},
	}
	var fullRate float64
	for _, c := range []struct {
		label string
		key   string
		full  bool
	}{
		{"full remerge (prefix cache off)", "full_remerge", true},
		{"two-level (frozen prefix + tail fold)", "two_level", false},
	} {
		e, err := engine.New[int64](engine.Options{
			Config:              cfg,
			Stripes:             1,
			DisableFrozenPrefix: c.full,
		})
		if err != nil {
			return nil, err
		}
		xs := datagen.Generate(datagen.NewUniform(seqSeed, 1<<62), epochs*runLen+cycles+1)
		for ep := 0; ep < epochs; ep++ {
			if err := e.IngestBatch(xs[ep*runLen : (ep+1)*runLen]); err != nil {
				return nil, err
			}
			if sealed, err := e.Rotate(); err != nil || !sealed {
				return nil, fmt.Errorf("epoch %d: sealed=%v err=%v", ep, sealed, err)
			}
		}
		live := xs[epochs*runLen:]
		// One warm-up cycle performs the cold prefix merge (two-level) and
		// warms the merge-buffer pools, so the loop measures steady state.
		if err := e.Ingest(live[0]); err != nil {
			return nil, err
		}
		if _, err := e.Quantile(0.5); err != nil {
			return nil, err
		}
		before := e.Stats()
		start := time.Now()
		for i := 0; i < cycles; i++ {
			if err := e.Ingest(live[i+1]); err != nil {
				return nil, err
			}
			if _, err := e.Quantile(0.5); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		st := e.Stats()
		rebuilds := st.Merges - before.Merges
		rate := float64(rebuilds) / elapsed.Seconds()
		if c.full {
			fullRate = rate
		}
		t.AddRow(c.label,
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%d", elapsed.Nanoseconds()/max(rebuilds, 1)),
			fmt.Sprintf("%d", st.PrefixHits),
			fmt.Sprintf("%d", st.PrefixRebuilds))
		// Gated as a rate (rebuilds/sec), not a wall time; the baseline
		// row is context only — it exists to compute the speedup.
		t.AddMetric("engine/snapshot_under_ingest/"+c.key+"/rebuilds_per_sec", rate, "rebuilds/sec", "higher", !c.full)
		if !c.full {
			// The headline acceptance number: two-level must stay well
			// clear of the full remerge at 1000-epoch depth. A ratio of
			// two same-machine runs, so machine-load noise divides out.
			t.AddMetric("engine/snapshot_under_ingest/speedup", rate/fullRate, "x", "higher", true)
		}
	}
	return t, nil
}
