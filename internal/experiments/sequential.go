package experiments

import (
	"fmt"
	"math"

	"opaq/internal/baseline"
	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/metrics"
)

// seqSeed fixes the dataset seed for the sequential experiments.
const seqSeed = 1997

// buildEnclosures runs OPAQ on xs and returns the dectile enclosures plus
// the oracle.
func buildEnclosures(xs []int64, cfg core.Config) ([]metrics.Enclosure[int64], *metrics.Oracle[int64], error) {
	sum, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		return nil, nil, err
	}
	bounds, err := sum.Quantiles(10)
	if err != nil {
		return nil, nil, err
	}
	encl := make([]metrics.Enclosure[int64], len(bounds))
	for i, b := range bounds {
		encl[i] = metrics.Enclosure[int64]{Phi: b.Phi, Lower: b.Lower, Upper: b.Upper}
	}
	return encl, metrics.NewOracle(xs), nil
}

// seqConfig mirrors the paper's sequential setup: the Table 7 note pins
// r·s = 3000 at s = 1000 ⇒ r = 3 runs, so RunLen = ⌈n/3⌉ rounded up to a
// multiple of s.
func seqConfig(n, s int) core.Config {
	m := (n + 2) / 3
	if rem := m % s; rem != 0 {
		m += s - rem
	}
	if m < s {
		m = s
	}
	return core.Config{RunLen: m, SampleSize: s, Seed: seqSeed}
}

// Table3 reproduces "The RER_A produced by OPAQ algorithm for different
// sample sizes for data sets of size 1 Million": dectiles × s ∈
// {250, 500, 1000} × {uniform, zipf}.
func Table3(scale int) (*Table, error) {
	n := scaleN(1_000_000, scale)
	t := &Table{
		ID:     "Table 3",
		Title:  fmt.Sprintf("RER_A by dectile and sample size (n=%d, uniform & Zipf)", n),
		Header: []string{"Dectile", "U s=250", "U s=500", "U s=1000", "Z s=250", "Z s=500", "Z s=1000"},
		Notes:  []string{"paper: ~0.33 at s=250, ~0.17 at s=500, ~0.09 at s=1000; halves as s doubles"},
	}
	sizes := []int{250, 500, 1000}
	cols := make(map[string][]float64) // dist/s -> per-dectile RER_A
	for _, dist := range []string{"uniform", "zipf"} {
		xs, err := datagen.PaperDataset(dist, n, seqSeed)
		if err != nil {
			return nil, err
		}
		for _, s := range sizes {
			encl, o, err := buildEnclosures(xs, seqConfig(n, s))
			if err != nil {
				return nil, err
			}
			rera, err := metrics.RERA(o, encl)
			if err != nil {
				return nil, err
			}
			cols[fmt.Sprintf("%s/%d", dist, s)] = rera
		}
	}
	for d := 0; d < 9; d++ {
		t.AddRow(fmt.Sprintf("%d0%%", d+1),
			fmtPct(cols["uniform/250"][d]), fmtPct(cols["uniform/500"][d]), fmtPct(cols["uniform/1000"][d]),
			fmtPct(cols["zipf/250"][d]), fmtPct(cols["zipf/500"][d]), fmtPct(cols["zipf/1000"][d]))
	}
	return t, nil
}

// Table4 reproduces "The RER_L and RER_N produced by OPAQ algorithm for
// different sample sizes" on the same sweep as Table 3.
func Table4(scale int) (*Table, error) {
	n := scaleN(1_000_000, scale)
	t := &Table{
		ID:     "Table 4",
		Title:  fmt.Sprintf("RER_L and RER_N by sample size (n=%d)", n),
		Header: []string{"Metric", "U s=250", "U s=500", "U s=1000", "Z s=250", "Z s=500", "Z s=1000"},
		Notes:  []string{"paper: RER_L 1.88/0.99/0.46 (uniform), RER_N 2.62/1.15/0.60; ceiling ≈ q/s·100"},
	}
	sizes := []int{250, 500, 1000}
	rerls := map[string]float64{}
	rerns := map[string]float64{}
	for _, dist := range []string{"uniform", "zipf"} {
		xs, err := datagen.PaperDataset(dist, n, seqSeed)
		if err != nil {
			return nil, err
		}
		for _, s := range sizes {
			encl, o, err := buildEnclosures(xs, seqConfig(n, s))
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s/%d", dist, s)
			if rerls[key], err = metrics.RERL(o, encl); err != nil {
				return nil, err
			}
			if rerns[key], err = metrics.RERN(o, encl); err != nil {
				return nil, err
			}
		}
	}
	t.AddRow("RER_L",
		fmtPct(rerls["uniform/250"]), fmtPct(rerls["uniform/500"]), fmtPct(rerls["uniform/1000"]),
		fmtPct(rerls["zipf/250"]), fmtPct(rerls["zipf/500"]), fmtPct(rerls["zipf/1000"]))
	t.AddRow("RER_N",
		fmtPct(rerns["uniform/250"]), fmtPct(rerns["uniform/500"]), fmtPct(rerns["uniform/1000"]),
		fmtPct(rerns["zipf/250"]), fmtPct(rerns["zipf/500"]), fmtPct(rerns["zipf/1000"]))
	return t, nil
}

// Table5 reproduces "The RER_A produced by OPAQ algorithm for different
// data sets": dectiles × n ∈ {1M, 5M, 10M}, s = 1000.
func Table5(scale int) (*Table, error) {
	ns := []int{scaleN(1_000_000, scale), scaleN(5_000_000, scale), scaleN(10_000_000, scale)}
	t := &Table{
		ID:     "Table 5",
		Title:  fmt.Sprintf("RER_A by dectile and data size (s=1000; n=%d/%d/%d)", ns[0], ns[1], ns[2]),
		Header: []string{"Dectile", "U 1M", "U 5M", "U 10M", "Z 1M", "Z 5M", "Z 10M"},
		Notes:  []string{"paper: ~0.07–0.10 across all sizes and both distributions (size-independent)"},
	}
	cols := map[string][]float64{}
	for _, dist := range []string{"uniform", "zipf"} {
		for i, n := range ns {
			xs, err := datagen.PaperDataset(dist, n, seqSeed+int64(i))
			if err != nil {
				return nil, err
			}
			encl, o, err := buildEnclosures(xs, seqConfig(n, 1000))
			if err != nil {
				return nil, err
			}
			rera, err := metrics.RERA(o, encl)
			if err != nil {
				return nil, err
			}
			cols[fmt.Sprintf("%s/%d", dist, i)] = rera
		}
	}
	for d := 0; d < 9; d++ {
		t.AddRow(fmt.Sprintf("%d0%%", d+1),
			fmtPct(cols["uniform/0"][d]), fmtPct(cols["uniform/1"][d]), fmtPct(cols["uniform/2"][d]),
			fmtPct(cols["zipf/0"][d]), fmtPct(cols["zipf/1"][d]), fmtPct(cols["zipf/2"][d]))
	}
	return t, nil
}

// Table6 reproduces "The RER_L and RER_N produced by OPAQ algorithm for
// different data sets" on the Table 5 sweep.
func Table6(scale int) (*Table, error) {
	ns := []int{scaleN(1_000_000, scale), scaleN(5_000_000, scale), scaleN(10_000_000, scale)}
	t := &Table{
		ID:     "Table 6",
		Title:  fmt.Sprintf("RER_L and RER_N by data size (s=1000; n=%d/%d/%d)", ns[0], ns[1], ns[2]),
		Header: []string{"Metric", "U 1M", "U 5M", "U 10M", "Z 1M", "Z 5M", "Z 10M"},
		Notes:  []string{"paper: RER_L ≈ 0.46–0.54, RER_N ≈ 0.53–0.60, flat in n and distribution"},
	}
	rerls := map[string]float64{}
	rerns := map[string]float64{}
	for _, dist := range []string{"uniform", "zipf"} {
		for i, n := range ns {
			xs, err := datagen.PaperDataset(dist, n, seqSeed+int64(i))
			if err != nil {
				return nil, err
			}
			encl, o, err := buildEnclosures(xs, seqConfig(n, 1000))
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s/%d", dist, i)
			if rerls[key], err = metrics.RERL(o, encl); err != nil {
				return nil, err
			}
			if rerns[key], err = metrics.RERN(o, encl); err != nil {
				return nil, err
			}
		}
	}
	t.AddRow("RER_L",
		fmtPct(rerls["uniform/0"]), fmtPct(rerls["uniform/1"]), fmtPct(rerls["uniform/2"]),
		fmtPct(rerls["zipf/0"]), fmtPct(rerls["zipf/1"]), fmtPct(rerls["zipf/2"]))
	t.AddRow("RER_N",
		fmtPct(rerns["uniform/0"]), fmtPct(rerns["uniform/1"]), fmtPct(rerns["uniform/2"]),
		fmtPct(rerns["zipf/0"]), fmtPct(rerns["zipf/1"]), fmtPct(rerns["zipf/2"]))
	return t, nil
}

// Table7 reproduces "Comparisons with the other two algorithms": OPAQ vs
// the [AS95] adaptive-interval algorithm vs random sampling, all given the
// same memory (3000 element-equivalents — the paper's footnote pins OPAQ's
// r·s to 3000).
//
// OPAQ's RER_A is the enclosure-based measure; AS95 and random sampling
// produce point estimates, for which RER_A reduces to the rank distance
// between estimate and truth as a fraction of n (the [AS95] definition).
func Table7(scale int) (*Table, error) {
	n := scaleN(1_000_000, scale)
	t := &Table{
		ID:     "Table 7",
		Title:  fmt.Sprintf("RER_A: OPAQ vs AS95 vs random sampling at equal memory (n=%d, 3000 elems)", n),
		Header: []string{"Dectile", "U OPAQ", "U AS95", "U Rand", "Z OPAQ", "Z AS95", "Z Rand"},
		Notes: []string{
			"paper: all three land in 0.0–0.6; OPAQ comparable or better, and only OPAQ has a deterministic bound",
			"AS95 and random sampling are point estimators: their RER_A is |rank(est)−rank(true)|/n·100",
		},
	}
	cols := map[string][]float64{}
	for _, dist := range []string{"uniform", "zipf"} {
		xs, err := datagen.PaperDataset(dist, n, seqSeed)
		if err != nil {
			return nil, err
		}
		o := metrics.NewOracle(xs)

		// OPAQ with rs = 3000: s = 1000, r = 3.
		encl, _, err := buildEnclosures(xs, seqConfig(n, 1000))
		if err != nil {
			return nil, err
		}
		rera, err := metrics.RERA(o, encl)
		if err != nil {
			return nil, err
		}
		cols[dist+"/opaq"] = rera

		// AS95 with 1500 intervals = 3000 element-equivalents.
		as, err := baseline.NewAgrawalSwami(1500)
		if err != nil {
			return nil, err
		}
		for _, x := range xs {
			as.Add(x)
		}
		cols[dist+"/as95"], err = pointRERA(o, as)
		if err != nil {
			return nil, err
		}

		// Random sampling with 3000 reservoir slots.
		res, err := baseline.NewReservoir(3000, seqSeed)
		if err != nil {
			return nil, err
		}
		for _, x := range xs {
			res.Add(x)
		}
		cols[dist+"/rand"], err = pointRERA(o, res)
		if err != nil {
			return nil, err
		}
	}
	for d := 0; d < 9; d++ {
		t.AddRow(fmt.Sprintf("%d0%%", d+1),
			fmtPct(cols["uniform/opaq"][d]), fmtPct(cols["uniform/as95"][d]), fmtPct(cols["uniform/rand"][d]),
			fmtPct(cols["zipf/opaq"][d]), fmtPct(cols["zipf/as95"][d]), fmtPct(cols["zipf/rand"][d]))
	}
	return t, nil
}

// pointRERA computes the rank-distance RER_A of a point estimator per
// dectile.
func pointRERA(o *metrics.Oracle[int64], e baseline.Estimator) ([]float64, error) {
	out := make([]float64, 9)
	for d := 1; d <= 9; d++ {
		phi := float64(d) / 10
		est, err := e.Quantile(phi)
		if err != nil {
			return nil, err
		}
		truth := o.Quantile(phi)
		out[d-1] = math.Abs(float64(o.RankLE(est)-o.RankLE(truth))) / float64(o.N()) * 100
	}
	return out, nil
}

// AblationSplit is an extension experiment: under a fixed memory budget
// M = r·s + m, sweep the split between run length m and sample size s and
// measure both the deterministic bound and the observed worst dectile
// error. The paper fixes s and lets m follow from memory (Section 2.3);
// this table shows why larger s (more, smaller runs) is the right side of
// the trade until r·s dominates the budget.
func AblationSplit(scale int) (*Table, error) {
	n := scaleN(1_000_000, scale)
	t := &Table{
		ID:     "Extension: memory split",
		Title:  fmt.Sprintf("Fixed memory ≈ 96k elems, varying (m, s) split (n=%d, uniform)", n),
		Header: []string{"m", "s", "runs", "bound(elems)", "worst RER_A", "worst observed gap"},
		Notes: []string{
			"bound = ErrorBound() (Lemma 1 worst case); observed gap = max elements between a bound and the truth",
		},
	}
	xs, err := datagen.PaperDataset("uniform", n, seqSeed)
	if err != nil {
		return nil, err
	}
	o := metrics.NewOracle(xs)
	splits := []core.Config{
		{RunLen: 65536, SampleSize: 512, Seed: seqSeed},
		{RunLen: 32768, SampleSize: 1024, Seed: seqSeed},
		{RunLen: 16384, SampleSize: 2048, Seed: seqSeed},
		{RunLen: 8192, SampleSize: 4096, Seed: seqSeed},
	}
	for _, cfg := range splits {
		sum, err := core.BuildFromSlice(xs, cfg)
		if err != nil {
			return nil, err
		}
		bounds, err := sum.Quantiles(10)
		if err != nil {
			return nil, err
		}
		encl := make([]metrics.Enclosure[int64], len(bounds))
		worstGap := 0
		for i, b := range bounds {
			encl[i] = metrics.Enclosure[int64]{Phi: b.Phi, Lower: b.Lower, Upper: b.Upper}
			truth := o.Quantile(b.Phi)
			if g := o.RankLT(truth) - o.RankLE(b.Lower); g > worstGap {
				worstGap = g
			}
			if g := o.RankLT(b.Upper) - o.RankLE(truth); g > worstGap {
				worstGap = g
			}
		}
		rera, err := metrics.RERA(o, encl)
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for _, v := range rera {
			if v > worst {
				worst = v
			}
		}
		t.AddRow(fmt.Sprintf("%d", cfg.RunLen),
			fmt.Sprintf("%d", cfg.SampleSize),
			fmt.Sprintf("%d", sum.Runs()),
			fmt.Sprintf("%d", sum.ErrorBound()),
			fmtPct(worst),
			fmt.Sprintf("%d", worstGap))
	}
	return t, nil
}
