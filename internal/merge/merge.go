// Package merge provides k-way merging of sorted sequences.
//
// OPAQ's sample phase produces one sorted sample list per run; the r lists
// (and, in the parallel formulation, the p per-processor lists) are merged
// into a single sorted sample list of size r·s. The paper charges this step
// O(r·s·log r) (Table 2), which is exactly the cost of the tournament-heap
// merge implemented here.
package merge

import (
	"cmp"
	"errors"
	"slices"
)

// ErrUnsorted is returned by validating entry points when an input list is
// found to be out of order.
var ErrUnsorted = errors.New("merge: input list is not sorted")

// KWay merges the sorted slices in lists into a single sorted slice using a
// binary tournament heap: O(N log k) comparisons for N total elements across
// k lists. Input slices are not modified. Ties are broken by list index, so
// the merge is stable across lists.
func KWay[T cmp.Ordered](lists [][]T) []T {
	return KWayInto(nil, lists)
}

// KWayInto is KWay appending into dst, so a caller that recycles merge
// buffers (sync.Pool or an arena) avoids the per-merge output allocation.
// dst is grown once up-front; the merged elements never alias the inputs,
// even in the single-list fast path, which copies.
func KWayInto[T cmp.Ordered](dst []T, lists [][]T) []T {
	total := 0
	nonEmpty := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
		}
	}
	dst = slices.Grow(dst, total)
	switch nonEmpty {
	case 0:
		return dst
	case 1:
		for _, l := range lists {
			if len(l) > 0 {
				return append(dst, l...)
			}
		}
	}
	lt := newMergeHeap(lists)
	for {
		v, ok := lt.pop()
		if !ok {
			return dst
		}
		dst = append(dst, v)
	}
}

// KWayValidated is KWay but first verifies each input is sorted, returning
// ErrUnsorted (wrapped) naming the offending list otherwise.
func KWayValidated[T cmp.Ordered](lists [][]T) ([]T, error) {
	for i, l := range lists {
		if !IsSorted(l) {
			return nil, &unsortedError{list: i}
		}
	}
	return KWay(lists), nil
}

type unsortedError struct{ list int }

func (e *unsortedError) Error() string {
	return "merge: input list " + itoa(e.list) + " is not sorted"
}
func (e *unsortedError) Unwrap() error { return ErrUnsorted }

// IsSorted reports whether xs is in non-decreasing order.
func IsSorted[T cmp.Ordered](xs []T) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// Split merges two sorted blocks of equal length and returns the low or
// high half — the merge-split primitive that replaces compare-exchange when
// a bitonic sorting network operates on blocks instead of scalars (paper,
// Section 3.1; the parallel formulation's bitonic global merge). Both
// halves of a merge-split are recovered by calling Split twice, once with
// each keepLow value; inputs are not modified.
func Split[T cmp.Ordered](a, b []T, keepLow bool) []T {
	n := len(a)
	out := make([]T, n)
	if keepLow {
		i, j := 0, 0
		for k := 0; k < n; k++ {
			if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
				out[k] = a[i]
				i++
			} else {
				out[k] = b[j]
				j++
			}
		}
		return out
	}
	i, j := len(a)-1, len(b)-1
	for k := n - 1; k >= 0; k-- {
		if j < 0 || (i >= 0 && a[i] > b[j]) {
			out[k] = a[i]
			i--
		} else {
			out[k] = b[j]
			j--
		}
	}
	return out
}

// Two merges two sorted slices; the common r=2 and pairwise-merge case.
func Two[T cmp.Ordered](a, b []T) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeHeap is a binary min-heap of list cursors keyed by each list's current
// head element, with ties broken by list index so the merge is stable
// across lists. pop returns the next smallest element in O(log k).
type mergeHeap[T cmp.Ordered] struct {
	lists  [][]T
	cursor []int // next unread position in each list
	heap   []int // list indices, heap-ordered by current head
}

func newMergeHeap[T cmp.Ordered](lists [][]T) *mergeHeap[T] {
	lt := &mergeHeap[T]{
		lists:  lists,
		cursor: make([]int, len(lists)),
	}
	for i, l := range lists {
		if len(l) > 0 {
			lt.heap = append(lt.heap, i)
		}
	}
	for i := len(lt.heap)/2 - 1; i >= 0; i-- {
		lt.siftDown(i)
	}
	return lt
}

// less orders heap positions i, j by the current head of their lists.
func (lt *mergeHeap[T]) less(i, j int) bool {
	a, b := lt.heap[i], lt.heap[j]
	av, bv := lt.lists[a][lt.cursor[a]], lt.lists[b][lt.cursor[b]]
	if av != bv {
		return av < bv
	}
	return a < b
}

func (lt *mergeHeap[T]) siftDown(i int) {
	n := len(lt.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && lt.less(l, smallest) {
			smallest = l
		}
		if r < n && lt.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		lt.heap[i], lt.heap[smallest] = lt.heap[smallest], lt.heap[i]
		i = smallest
	}
}

// pop removes and returns the smallest remaining element.
func (lt *mergeHeap[T]) pop() (T, bool) {
	var zero T
	if len(lt.heap) == 0 {
		return zero, false
	}
	w := lt.heap[0]
	v := lt.lists[w][lt.cursor[w]]
	lt.cursor[w]++
	if lt.cursor[w] >= len(lt.lists[w]) {
		last := len(lt.heap) - 1
		lt.heap[0] = lt.heap[last]
		lt.heap = lt.heap[:last]
	}
	if len(lt.heap) > 0 {
		lt.siftDown(0)
	}
	return v, true
}

// itoa is a tiny strconv.Itoa to keep the error path allocation-free in the
// common case; inputs are small non-negative list indices.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
