package merge

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSplit(t *testing.T) {
	a := []int64{1, 3, 5, 7}
	b := []int64{2, 4, 6, 8}
	low := Split(a, b, true)
	high := Split(a, b, false)
	wantLow := []int64{1, 2, 3, 4}
	wantHigh := []int64{5, 6, 7, 8}
	for i := range wantLow {
		if low[i] != wantLow[i] || high[i] != wantHigh[i] {
			t.Fatalf("Split: low=%v high=%v", low, high)
		}
	}
}

// Split(a,b,low) ++ Split(a,b,high) must equal the full two-way merge for
// random equal-length sorted blocks, including duplicates.
func TestSplitHalvesRecoverMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(rng.Intn(20))
			b[i] = int64(rng.Intn(20))
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		full := Two(a, b)
		got := append(Split(a, b, true), Split(a, b, false)...)
		for i := range full {
			if got[i] != full[i] {
				t.Fatalf("trial %d: split halves %v != merge %v", trial, got, full)
			}
		}
	}
}

func TestKWayBasic(t *testing.T) {
	got := KWay([][]int64{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}})
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	assertEqual(t, got, want)
}

func TestKWayEmptyInputs(t *testing.T) {
	if got := KWay[int64](nil); len(got) != 0 {
		t.Errorf("KWay(nil) = %v, want empty", got)
	}
	if got := KWay([][]int64{{}, {}, {}}); len(got) != 0 {
		t.Errorf("KWay(empties) = %v, want empty", got)
	}
}

func TestKWaySingleList(t *testing.T) {
	got := KWay([][]int64{{}, {3, 4, 5}, {}})
	assertEqual(t, got, []int64{3, 4, 5})
}

func TestKWayUnevenLengths(t *testing.T) {
	got := KWay([][]int64{{10}, {1, 2, 3, 4, 5}, {}, {0, 6}})
	assertEqual(t, got, []int64{0, 1, 2, 3, 4, 5, 6, 10})
}

func TestKWayAllDuplicates(t *testing.T) {
	got := KWay([][]int64{{5, 5}, {5}, {5, 5, 5}})
	assertEqual(t, got, []int64{5, 5, 5, 5, 5, 5})
}

func TestKWayTwoLists(t *testing.T) {
	a := []int64{1, 3, 5}
	b := []int64{2, 4, 6}
	assertEqual(t, KWay([][]int64{a, b}), Two(a, b))
}

func TestTwo(t *testing.T) {
	assertEqual(t, Two([]int64{1, 2, 2}, []int64{2, 3}), []int64{1, 2, 2, 2, 3})
	assertEqual(t, Two(nil, []int64{1}), []int64{1})
	assertEqual(t, Two([]int64{1}, nil), []int64{1})
	assertEqual(t, Two[int64](nil, nil), []int64{})
}

func TestKWayDoesNotModifyInputs(t *testing.T) {
	a := []int64{1, 3}
	b := []int64{2, 4}
	KWay([][]int64{a, b})
	assertEqual(t, a, []int64{1, 3})
	assertEqual(t, b, []int64{2, 4})
}

func TestKWayValidated(t *testing.T) {
	if _, err := KWayValidated([][]int64{{1, 2}, {3, 1}}); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("error = %v, want ErrUnsorted", err)
	}
	got, err := KWayValidated([][]int64{{1, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, []int64{0, 1, 2, 3})
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int64{}) || !IsSorted([]int64{1}) || !IsSorted([]int64{1, 1, 2}) {
		t.Error("IsSorted false negatives")
	}
	if IsSorted([]int64{2, 1}) {
		t.Error("IsSorted false positive")
	}
}

func TestKWayManyLists(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 257 // not a power of two: exercises odd tree shapes
	lists := make([][]int64, k)
	var all []int64
	for i := range lists {
		n := rng.Intn(20)
		l := make([]int64, n)
		for j := range l {
			l[j] = rng.Int63n(1000)
		}
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		lists[i] = l
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	assertEqual(t, KWay(lists), all)
}

// Property: KWay(sorted chunks of xs) == sort(xs).
func TestQuickKWayEqualsSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(raw []int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%8
		lists := make([][]int64, k)
		for i, x := range raw {
			lists[i%k] = append(lists[i%k], x)
		}
		for i := range lists {
			sort.Slice(lists[i], func(a, b int) bool { return lists[i][a] < lists[i][b] })
		}
		got := KWay(lists)
		want := append([]int64(nil), raw...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func assertEqual[T comparable](t *testing.T, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %v, want %v", i, got, want)
		}
	}
}
