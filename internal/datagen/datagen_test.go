package datagen

import (
	"math"
	"testing"
)

func TestUniformDeterministic(t *testing.T) {
	a := Generate(NewUniform(7, 1000), 100)
	b := Generate(NewUniform(7, 1000), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := Generate(NewUniform(8, 1000), 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	for _, v := range Generate(NewUniform(1, 50), 1000) {
		if v < 0 || v >= 50 {
			t.Fatalf("value %d out of [0,50)", v)
		}
	}
}

func TestUniformRoughlyUniform(t *testing.T) {
	// Chi-square-style sanity check over 10 buckets.
	n := 100_000
	counts := make([]int, 10)
	for _, v := range Generate(NewUniform(3, 1000), n) {
		counts[v/100]++
	}
	want := float64(n) / 10
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d count %d deviates >10%% from %g", b, c, want)
		}
	}
}

func TestZipfParamValidation(t *testing.T) {
	if _, err := NewZipf(1, 0, 0.5); err == nil {
		t.Error("distinct=0 should fail")
	}
	if _, err := NewZipf(1, 10, -0.1); err == nil {
		t.Error("param<0 should fail")
	}
	if _, err := NewZipf(1, 10, 1.5); err == nil {
		t.Error("param>1 should fail")
	}
}

func TestZipfParamOneIsUniform(t *testing.T) {
	// With parameter 1 (θ=0) all values are equally likely.
	z, err := NewZipf(11, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	n := 100_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if len(counts) != 100 {
		t.Fatalf("expected all 100 values drawn, got %d", len(counts))
	}
	want := float64(n) / 100
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Errorf("value %d count %d deviates >25%% from %g", v, c, want)
		}
	}
}

func TestZipfSkewIncreasesAsParamDrops(t *testing.T) {
	top := func(param float64) float64 {
		z, err := NewZipf(13, 1000, param)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int64]int{}
		n := 50_000
		for i := 0; i < n; i++ {
			counts[z.Next()]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(n)
	}
	t1, t86, t0 := top(1.0), top(DefaultZipfParam), top(0.0)
	if !(t0 > t86 && t86 >= t1*0.8) {
		t.Errorf("skew ordering violated: top share param=0: %g, 0.86: %g, 1: %g", t0, t86, t1)
	}
}

func TestSortedAndReverse(t *testing.T) {
	s := Generate(NewSorted(2), 5)
	for i, v := range s {
		if v != int64(2*i) {
			t.Fatalf("sorted[%d] = %d", i, v)
		}
	}
	r := Generate(NewReverse(10, 1), 5)
	for i, v := range r {
		if v != int64(10-i) {
			t.Fatalf("reverse[%d] = %d", i, v)
		}
	}
}

func TestSortedStepClamped(t *testing.T) {
	g := NewSorted(0)
	a, b := g.Next(), g.Next()
	if b != a+1 {
		t.Fatalf("step 0 should clamp to 1; got %d then %d", a, b)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewNormal(17, 5000, 100)
	n := 50_000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := float64(g.Next())
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-5000) > 5 {
		t.Errorf("mean = %g, want ≈5000", mean)
	}
	if math.Abs(std-100) > 5 {
		t.Errorf("stddev = %g, want ≈100", std)
	}
}

func TestClustered(t *testing.T) {
	if _, err := NewClustered(1, 0, 100, 1); err == nil {
		t.Error("k=0 should fail")
	}
	c, err := NewClustered(19, 3, 1_000_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// All draws should be near one of three centers: the set of rounded
	// values to the nearest 100 should be small.
	buckets := map[int64]bool{}
	for i := 0; i < 10_000; i++ {
		buckets[c.Next()/1000] = true
	}
	if len(buckets) > 20 {
		t.Errorf("clustered output spread over %d kilo-buckets; expected tight clusters", len(buckets))
	}
}

func TestWithDuplicatesFraction(t *testing.T) {
	inner := NewUniform(23, 1<<62) // collisions essentially impossible
	w, err := NewWithDuplicates(29, inner, DuplicateFraction)
	if err != nil {
		t.Fatal(err)
	}
	n := 200_000
	seen := make(map[int64]int, n)
	dups := 0
	for i := 0; i < n; i++ {
		v := w.Next()
		if seen[v] > 0 {
			dups++
		}
		seen[v]++
	}
	frac := float64(dups) / float64(n)
	if math.Abs(frac-DuplicateFraction) > 0.02 {
		t.Errorf("duplicate fraction = %g, want ≈%g", frac, DuplicateFraction)
	}
}

func TestWithDuplicatesValidation(t *testing.T) {
	if _, err := NewWithDuplicates(1, NewSorted(1), 1.0); err == nil {
		t.Error("fraction 1.0 should fail")
	}
	if _, err := NewWithDuplicates(1, NewSorted(1), -0.1); err == nil {
		t.Error("negative fraction should fail")
	}
}

func TestPaperDataset(t *testing.T) {
	for _, dist := range []string{"uniform", "zipf"} {
		xs, err := PaperDataset(dist, 10_000, 31)
		if err != nil {
			t.Fatal(err)
		}
		if len(xs) != 10_000 {
			t.Fatalf("%s: len = %d", dist, len(xs))
		}
		// Determinism.
		ys, err := PaperDataset(dist, 10_000, 31)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("%s: dataset not deterministic", dist)
			}
		}
	}
	if _, err := PaperDataset("pareto", 10, 1); err == nil {
		t.Error("unknown distribution should fail")
	}
}

func TestGeneratorNames(t *testing.T) {
	z, _ := NewZipf(1, 10, 0.5)
	c, _ := NewClustered(1, 2, 100, 1)
	w, _ := NewWithDuplicates(1, NewUniform(1, 10), 0.1)
	names := map[string]string{
		NewUniform(1, 10).Name():  "uniform",
		z.Name():                  "zipf",
		NewSorted(1).Name():       "sorted",
		NewReverse(1, 1).Name():   "reverse",
		NewNormal(1, 0, 1).Name(): "normal",
		c.Name():                  "clustered",
		w.Name():                  "uniform+dups",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestSelfSimilarValidation(t *testing.T) {
	if _, err := NewSelfSimilar(1, 100, 0.4); err == nil {
		t.Error("h<0.5 should fail")
	}
	if _, err := NewSelfSimilar(1, 100, 1.0); err == nil {
		t.Error("h=1 should fail")
	}
	if _, err := NewSelfSimilar(1, 0, 0.8); err == nil {
		t.Error("max=0 should fail")
	}
}

func TestSelfSimilarEightyTwenty(t *testing.T) {
	s, err := NewSelfSimilar(7, 1_000_000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n := 100_000
	inFirstFifth := 0
	for i := 0; i < n; i++ {
		v := s.Next()
		if v < 0 || v >= 1_000_000 {
			t.Fatalf("value %d out of range", v)
		}
		if v < 200_000 {
			inFirstFifth++
		}
	}
	frac := float64(inFirstFifth) / float64(n)
	if math.Abs(frac-0.8) > 0.03 {
		t.Errorf("mass in first 20%% of range = %g, want ≈0.8", frac)
	}
	if s.Name() != "selfsimilar" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSelfSimilarHalfIsUniform(t *testing.T) {
	s, err := NewSelfSimilar(9, 1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[s.Next()/100]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-float64(n)/10) > float64(n)/10*0.15 {
			t.Errorf("h=0.5 bucket %d count %d deviates from uniform", b, c)
		}
	}
}
