// Package datagen produces the synthetic key datasets of the paper's
// evaluation (Section 2.4): uniform and Zipf-distributed 64-bit keys with a
// forced duplicate fraction of n/10, plus additional adversarial
// distributions (sorted, reverse-sorted, normal, clustered) used to widen
// the test matrix beyond the paper.
//
// All generators are deterministic given a seed, so every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit. Generators are streaming —
// they emit one key at a time — so datasets larger than memory can be
// written run-by-run through runio.WriteFileFunc.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Generator is a deterministic stream of int64 keys.
type Generator interface {
	// Next returns the next key in the stream.
	Next() int64
	// Name identifies the distribution for reports and error messages.
	Name() string
}

// Generate materializes the next n keys from g.
func Generate(g Generator, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Uniform draws keys uniformly from [0, Max).
type Uniform struct {
	rng *rand.Rand
	max int64
}

// NewUniform returns a uniform generator over [0, max) seeded with seed.
func NewUniform(seed, max int64) *Uniform {
	if max <= 0 {
		max = 1 << 62
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), max: max}
}

// Next implements Generator.
func (u *Uniform) Next() int64 { return u.rng.Int63n(u.max) }

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Zipf draws keys from a Zipf distribution over a fixed universe of
// distinct values using the paper's parameterisation: parameter 1 is the
// uniform distribution, and skew increases as the parameter decreases
// toward 0 (Section 2.4). Internally the probability of the i-th most
// popular value is proportional to 1/i^θ with θ = 1 − parameter, so
// parameter 0 is the classic harmonic Zipf. The paper uses parameter 0.86.
//
// Popular values are scattered across the key domain by a Weyl sequence so
// that skew in frequency does not correlate with position in key order —
// matching how real skewed attributes behave and keeping the quantile
// estimation problem honest.
type Zipf struct {
	rng *rand.Rand
	cdf []float64 // cumulative probability by popularity rank
	val []int64   // popularity rank -> key value
}

// DefaultZipfParam is the skew parameter used throughout the paper's
// evaluation.
const DefaultZipfParam = 0.86

// NewZipf builds a Zipf generator with the paper's parameterisation over a
// universe of distinct values. distinct must be positive; param must lie in
// [0, 1].
func NewZipf(seed int64, distinct int, param float64) (*Zipf, error) {
	if distinct <= 0 {
		return nil, fmt.Errorf("datagen: Zipf universe must be positive, got %d", distinct)
	}
	if param < 0 || param > 1 {
		return nil, fmt.Errorf("datagen: Zipf parameter must be in [0,1], got %g", param)
	}
	theta := 1 - param
	cdf := make([]float64, distinct)
	sum := 0.0
	for i := 0; i < distinct; i++ {
		sum += math.Pow(float64(i+1), -theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	// Weyl sequence: rank i maps to i*φ⁻¹ mod 2⁶², spreading popular keys
	// uniformly over the domain.
	val := make([]int64, distinct)
	const weyl = 0x61c8864680b583eb // 2⁶⁴/φ, odd
	for i := range val {
		val[i] = int64(uint64(i+1)*weyl) & (1<<62 - 1)
	}
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cdf: cdf, val: val}, nil
}

// Next implements Generator via inverse-CDF sampling.
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.val) {
		i = len(z.val) - 1
	}
	return z.val[i]
}

// Name implements Generator.
func (z *Zipf) Name() string { return "zipf" }

// Sorted emits 0, step, 2·step, …: fully sorted input, the best case for
// naive samplers and a regression guard for order-sensitive bugs.
type Sorted struct {
	next int64
	step int64
}

// NewSorted returns a sorted generator with the given step (≥1).
func NewSorted(step int64) *Sorted {
	if step < 1 {
		step = 1
	}
	return &Sorted{step: step}
}

// Next implements Generator.
func (s *Sorted) Next() int64 { v := s.next; s.next += s.step; return v }

// Name implements Generator.
func (s *Sorted) Name() string { return "sorted" }

// Reverse emits start, start−step, …: reverse-sorted input.
type Reverse struct {
	next int64
	step int64
}

// NewReverse returns a reverse-sorted generator starting at start.
func NewReverse(start, step int64) *Reverse {
	if step < 1 {
		step = 1
	}
	return &Reverse{next: start, step: step}
}

// Next implements Generator.
func (r *Reverse) Next() int64 { v := r.next; r.next -= r.step; return v }

// Name implements Generator.
func (r *Reverse) Name() string { return "reverse" }

// Normal draws keys from a rounded Gaussian.
type Normal struct {
	rng    *rand.Rand
	mean   float64
	stddev float64
}

// NewNormal returns a Gaussian key generator.
func NewNormal(seed int64, mean, stddev float64) *Normal {
	return &Normal{rng: rand.New(rand.NewSource(seed)), mean: mean, stddev: stddev}
}

// Next implements Generator.
func (n *Normal) Next() int64 { return int64(n.rng.NormFloat64()*n.stddev + n.mean) }

// Name implements Generator.
func (n *Normal) Name() string { return "normal" }

// Clustered draws keys from a mixture of Gaussian clusters — a stand-in for
// multi-modal real attributes (e.g. prices clustering at round numbers).
type Clustered struct {
	rng     *rand.Rand
	centers []float64
	spread  float64
}

// NewClustered places k cluster centers uniformly in [0, domain) and draws
// keys Gaussian-distributed around a random center.
func NewClustered(seed int64, k int, domain, spread float64) (*Clustered, error) {
	if k <= 0 {
		return nil, fmt.Errorf("datagen: cluster count must be positive, got %d", k)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = rng.Float64() * domain
	}
	return &Clustered{rng: rng, centers: centers, spread: spread}, nil
}

// Next implements Generator.
func (c *Clustered) Next() int64 {
	ctr := c.centers[c.rng.Intn(len(c.centers))]
	return int64(c.rng.NormFloat64()*c.spread + ctr)
}

// Name implements Generator.
func (c *Clustered) Name() string { return "clustered" }

// WithDuplicates wraps a generator so that, in expectation, the given
// fraction of emitted keys are duplicates of earlier keys. The paper fixes
// this fraction at 1/10 for every dataset ("the number of duplicates for
// each data set of size n is set to n/10"). A bounded reservoir of
// previously emitted keys supplies the duplicates, so the wrapper streams
// in O(1) memory.
type WithDuplicates struct {
	inner     Generator
	rng       *rand.Rand
	fraction  float64
	reservoir []int64
	seen      int64
}

// DuplicateFraction is the paper's duplicate rate, n/10.
const DuplicateFraction = 0.10

// NewWithDuplicates wraps inner, reusing an earlier key with probability
// fraction per emission.
func NewWithDuplicates(seed int64, inner Generator, fraction float64) (*WithDuplicates, error) {
	if fraction < 0 || fraction >= 1 {
		return nil, fmt.Errorf("datagen: duplicate fraction must be in [0,1), got %g", fraction)
	}
	return &WithDuplicates{
		inner:     inner,
		rng:       rand.New(rand.NewSource(seed)),
		fraction:  fraction,
		reservoir: make([]int64, 0, 4096),
	}, nil
}

// Next implements Generator.
func (w *WithDuplicates) Next() int64 {
	if len(w.reservoir) > 0 && w.rng.Float64() < w.fraction {
		return w.reservoir[w.rng.Intn(len(w.reservoir))]
	}
	v := w.inner.Next()
	w.seen++
	if len(w.reservoir) < cap(w.reservoir) {
		w.reservoir = append(w.reservoir, v)
	} else {
		// Reservoir sampling keeps the duplicate pool representative.
		if j := w.rng.Int63n(w.seen); j < int64(cap(w.reservoir)) {
			w.reservoir[j] = v
		}
	}
	return v
}

// Name implements Generator.
func (w *WithDuplicates) Name() string { return w.inner.Name() + "+dups" }

// PaperDataset returns the paper's evaluation dataset of n keys:
// distribution dist ("uniform" or "zipf", Zipf parameter 0.86) with the
// n/10 duplicate fraction, deterministically seeded.
func PaperDataset(dist string, n int, seed int64) ([]int64, error) {
	g, err := PaperGenerator(dist, n, seed)
	if err != nil {
		return nil, err
	}
	return Generate(g, n), nil
}

// PaperGenerator returns the streaming generator behind PaperDataset.
func PaperGenerator(dist string, n int, seed int64) (Generator, error) {
	var inner Generator
	switch dist {
	case "uniform":
		inner = NewUniform(seed, 1<<62)
	case "zipf":
		distinct := n
		if distinct > 1_000_000 {
			distinct = 1_000_000
		}
		z, err := NewZipf(seed, distinct, DefaultZipfParam)
		if err != nil {
			return nil, err
		}
		inner = z
	default:
		return nil, fmt.Errorf("datagen: unknown distribution %q (want uniform or zipf)", dist)
	}
	return NewWithDuplicates(seed+1, inner, DuplicateFraction)
}

// SelfSimilar draws keys from the 80–20 self-similar distribution used in
// database synthetic workloads (Gray et al.): a fraction h of the mass
// falls in the first (1−h) fraction of the key range, recursively. h=0.5
// is uniform; h=0.8 is the classic "80–20 rule"; h→1 is extreme skew.
type SelfSimilar struct {
	rng *rand.Rand
	h   float64
	max int64
}

// NewSelfSimilar returns a self-similar generator over [0, max) with skew
// h in [0.5, 1).
func NewSelfSimilar(seed int64, max int64, h float64) (*SelfSimilar, error) {
	if h < 0.5 || h >= 1 {
		return nil, fmt.Errorf("datagen: self-similar skew must be in [0.5, 1), got %g", h)
	}
	if max <= 0 {
		return nil, fmt.Errorf("datagen: self-similar max must be positive, got %d", max)
	}
	return &SelfSimilar{rng: rand.New(rand.NewSource(seed)), h: h, max: max}, nil
}

// Next implements Generator via the standard log-ratio transform.
func (s *SelfSimilar) Next() int64 {
	u := s.rng.Float64()
	if u <= 0 {
		return 0
	}
	// key = max · u^(log(1−h)/log h): P(key ≤ (1−h)·max) = h, the 80–20
	// rule at h = 0.8; h = 0.5 reduces to the identity (uniform).
	v := int64(float64(s.max) * math.Pow(u, math.Log(1-s.h)/math.Log(s.h)))
	if v >= s.max {
		v = s.max - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Name implements Generator.
func (s *SelfSimilar) Name() string { return "selfsimilar" }
