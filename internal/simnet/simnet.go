// Package simnet simulates the coarse-grained parallel machine of the
// paper's Section 3: p processors with private memory, connected by a
// virtual crossbar, under a two-level cost model — local computation costs
// α per unit, a message costs a startup overhead τ plus 1/μ-rate transfer
// (the paper writes the transfer term as μ per word). The model "closely
// models the interconnection network on the IBM SP-2 on which we present
// our experimental results" (paper, Section 3); since that machine is long
// gone, this simulator is the substitution documented in DESIGN.md.
//
// Programs run SPMD: Machine.Run launches one goroutine per processor, and
// each Proc carries a private simulated clock. Sends and receives move
// real data between goroutines while advancing the clocks per the cost
// model, so algorithms are executed for real (results are checked by
// tests) while their reported times are the model's. The parallel time of
// a run is the maximum clock over processors.
//
// Proc is the simulated implementation of internal/parallel's Transport
// interface — the parallel algorithms are written against that interface
// and this machine supplies their cost accounting; the sibling real
// in-process transport runs the same algorithms with no cost model.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// CostModel is the two-level model's three constants.
type CostModel struct {
	// Alpha is the cost of one unit of local computation (one comparison /
	// element move).
	Alpha time.Duration
	// Tau is the fixed startup overhead of one message.
	Tau time.Duration
	// Mu is the per-word (per-element) transfer cost of a message.
	Mu time.Duration
}

// DefaultCostModel is calibrated to mid-1990s MPP constants in the spirit
// of the SP-2: ~100ns per local comparison/move (a ~66 MHz-era RISC
// pipeline with cache misses), ~40µs message startup, ~0.25µs per 8-byte
// word (~32 MB/s point-to-point). Together with runio.DefaultDiskModel
// (8 MB/s per-node disk) this reproduces the paper's Table 11/12 balance:
// per element, I/O costs ~1µs and sampling ~log₂(s)·α ≈ 1µs at the paper's
// s = 1024, so I/O lands at ≈50% of total time.
func DefaultCostModel() CostModel {
	return CostModel{
		Alpha: 100 * time.Nanosecond,
		Tau:   40 * time.Microsecond,
		Mu:    250 * time.Nanosecond,
	}
}

// Machine is a p-processor virtual-crossbar machine.
type Machine struct {
	p     int
	model CostModel
	// chans[from][to] carries timestamped messages; buffered so symmetric
	// exchange patterns (both partners send, then both receive) cannot
	// deadlock.
	chans [][]chan message
	bar   *barrier
	procs []*Proc
	// abort releases processors blocked in Send/Recv when a peer fails
	// (the barrier has its own abort); closed at most once.
	abort    chan struct{}
	failOnce sync.Once
}

// fail releases every blocked primitive after a processor panicked or
// returned an error: peers otherwise deadlock waiting for messages or
// barrier arrivals that will never come.
func (m *Machine) fail() {
	m.failOnce.Do(func() { close(m.abort) })
	m.bar.abort()
}

type message struct {
	payload any
	arrival time.Duration // simulated time at which the message is available
}

// NewMachine builds a machine of p processors under the given cost model.
func NewMachine(p int, model CostModel) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("simnet: need at least one processor, got %d", p)
	}
	m := &Machine{p: p, model: model, bar: newBarrier(p), abort: make(chan struct{})}
	m.chans = make([][]chan message, p)
	for i := range m.chans {
		m.chans[i] = make([]chan message, p)
		for j := range m.chans[i] {
			m.chans[i][j] = make(chan message, 64)
		}
	}
	return m, nil
}

// P returns the processor count.
func (m *Machine) P() int { return m.p }

// Run executes f as an SPMD program: one goroutine per processor. It
// returns the first error any processor produced (the others still run to
// completion). After Run, per-processor clocks are available via Clocks.
func (m *Machine) Run(f func(p *Proc) error) error {
	m.procs = make([]*Proc, m.p)
	errs := make([]error, m.p)
	var wg sync.WaitGroup
	for i := 0; i < m.p; i++ {
		m.procs[i] = &Proc{id: i, m: m}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("simnet: processor %d panicked: %v", i, r)
					m.fail()
				}
			}()
			errs[i] = f(m.procs[i])
			if errs[i] != nil {
				// A processor that exits with an error never sends the
				// messages or reaches the barriers its peers wait on;
				// release them.
				m.fail()
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Clocks returns each processor's final simulated clock.
func (m *Machine) Clocks() []time.Duration {
	out := make([]time.Duration, m.p)
	for i, p := range m.procs {
		if p != nil {
			out[i] = p.clock
		}
	}
	return out
}

// MaxClock returns the parallel execution time: the maximum processor
// clock after Run.
func (m *Machine) MaxClock() time.Duration {
	max := time.Duration(0)
	for _, c := range m.Clocks() {
		if c > max {
			max = c
		}
	}
	return max
}

// Proc is one simulated processor: an SPMD rank with a private clock.
type Proc struct {
	id    int
	m     *Machine
	clock time.Duration
}

// ID returns the processor rank in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the machine's processor count.
func (p *Proc) P() int { return p.m.p }

// Clock returns the processor's current simulated time.
func (p *Proc) Clock() time.Duration { return p.clock }

// Compute advances the clock by units of local work (α each).
func (p *Proc) Compute(units int64) {
	if units > 0 {
		p.clock += time.Duration(units) * p.m.model.Alpha
	}
}

// Charge advances the clock by an externally modeled duration (e.g. the
// runio DiskModel's I/O time).
func (p *Proc) Charge(d time.Duration) {
	if d > 0 {
		p.clock += d
	}
}

// Send transmits payload (words elements) to processor to. The sender is
// busy for τ + words·μ; the message becomes visible to the receiver at the
// sender's post-send clock.
func (p *Proc) Send(to int, words int64, payload any) error {
	if to < 0 || to >= p.m.p {
		return fmt.Errorf("simnet: send to rank %d of %d", to, p.m.p)
	}
	if to == p.id {
		return fmt.Errorf("simnet: self-send on rank %d", p.id)
	}
	cost := p.m.model.Tau + time.Duration(words)*p.m.model.Mu
	p.clock += cost
	select {
	case p.m.chans[p.id][to] <- message{payload: payload, arrival: p.clock}:
		return nil
	case <-p.m.abort:
		return errors.New("simnet: send aborted (peer failed)")
	}
}

// Recv blocks for the next message from processor from and advances the
// clock to the message's arrival time if that is later.
func (p *Proc) Recv(from int) (any, error) {
	if from < 0 || from >= p.m.p {
		return nil, fmt.Errorf("simnet: recv from rank %d of %d", from, p.m.p)
	}
	if from == p.id {
		return nil, fmt.Errorf("simnet: self-recv on rank %d", p.id)
	}
	var msg message
	select {
	case msg = <-p.m.chans[from][p.id]:
	case <-p.m.abort:
		// Prefer a message that raced with the abort so a completed send
		// is not misreported; the machine is failing either way.
		select {
		case msg = <-p.m.chans[from][p.id]:
		default:
			return nil, errors.New("simnet: receive aborted (peer failed)")
		}
	}
	if msg.arrival > p.clock {
		p.clock = msg.arrival
	}
	return msg.payload, nil
}

// Exchange sends payload to partner and receives the partner's payload —
// the compare-exchange primitive of the bitonic network. Both transfers
// overlap (full-duplex crossbar), so each side pays one τ + words·μ.
func (p *Proc) Exchange(partner int, words int64, payload any) (any, error) {
	if err := p.Send(partner, words, payload); err != nil {
		return nil, err
	}
	return p.Recv(partner)
}

// Barrier synchronizes all processors: every clock advances to the global
// maximum, plus a τ·⌈log₂ p⌉ combining-tree overhead.
func (p *Proc) Barrier() error {
	max, err := p.m.bar.wait(p.clock)
	if err != nil {
		return err
	}
	p.clock = max
	if p.m.p > 1 {
		p.clock += time.Duration(ceilLog2(p.m.p)) * p.m.model.Tau
	}
	return nil
}

// AllGather collects every rank's payload (words elements each) into a
// slice indexed by rank, visible to all ranks. Modeled as a gather to rank
// 0 plus broadcast down a binomial tree: 2·⌈log₂ p⌉ message rounds.
func (p *Proc) AllGather(words int64, payload any) ([]any, error) {
	if p.m.p == 1 {
		return []any{payload}, nil
	}
	// Simple, deterministic implementation: everyone sends to rank 0, rank
	// 0 re-broadcasts the full vector. Costs are charged per the model on
	// each edge; the tree depth surcharge is folded into the barrier below.
	if p.id != 0 {
		if err := p.Send(0, words, payload); err != nil {
			return nil, err
		}
		v, err := p.Recv(0)
		if err != nil {
			return nil, err
		}
		return v.([]any), nil
	}
	all := make([]any, p.m.p)
	all[0] = payload
	for r := 1; r < p.m.p; r++ {
		v, err := p.Recv(r)
		if err != nil {
			return nil, err
		}
		all[r] = v
	}
	for r := 1; r < p.m.p; r++ {
		if err := p.Send(r, words*int64(p.m.p), all); err != nil {
			return nil, err
		}
	}
	return all, nil
}

// barrier is a reusable max-combining barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	gen     int
	max     time.Duration
	result  time.Duration
	aborted bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all p processors have arrived and returns the maximum
// submitted clock.
func (b *barrier) wait(clock time.Duration) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return 0, errAborted
	}
	if clock > b.max {
		b.max = clock
	}
	b.count++
	gen := b.gen
	if b.count == b.p {
		b.result = b.max
		b.max = 0
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.result, nil
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	// Only a barrier whose own generation never completed was aborted; a
	// generation that finished before the abort landed succeeded for real.
	if gen == b.gen && b.aborted {
		return 0, errAborted
	}
	return b.result, nil
}

// errAborted reports a barrier released because a peer panicked or
// returned an error before arriving.
var errAborted = errors.New("simnet: barrier aborted (peer failed)")

// abort releases all waiters with an error; called when a peer panics so
// Run does not deadlock.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// ceilLog2 returns ⌈log₂ n⌉ for n ≥ 1.
func ceilLog2(n int) int {
	l, v := 0, 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}
