package simnet

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func model() CostModel {
	return CostModel{Alpha: 1 * time.Nanosecond, Tau: 100 * time.Nanosecond, Mu: 2 * time.Nanosecond}
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(0, model()); err == nil {
		t.Fatal("p=0 should fail")
	}
	m, err := NewMachine(4, model())
	if err != nil || m.P() != 4 {
		t.Fatalf("NewMachine = %v, %v", m, err)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m, _ := NewMachine(1, model())
	err := m.Run(func(p *Proc) error {
		p.Compute(1000)
		p.Compute(-5) // no-op
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MaxClock(); got != 1000*time.Nanosecond {
		t.Fatalf("clock = %v, want 1µs", got)
	}
}

func TestSendRecvCostAndData(t *testing.T) {
	m, _ := NewMachine(2, model())
	err := m.Run(func(p *Proc) error {
		if p.ID() == 0 {
			return p.Send(1, 10, []int64{1, 2, 3})
		}
		v, err := p.Recv(0)
		if err != nil {
			return err
		}
		xs := v.([]int64)
		if len(xs) != 3 || xs[2] != 3 {
			t.Errorf("payload = %v", xs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: τ + 10·µ = 100 + 20 = 120ns. Receiver idle until arrival.
	clocks := m.Clocks()
	if clocks[0] != 120*time.Nanosecond {
		t.Errorf("sender clock = %v, want 120ns", clocks[0])
	}
	if clocks[1] != 120*time.Nanosecond {
		t.Errorf("receiver clock = %v, want 120ns (arrival)", clocks[1])
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	m, _ := NewMachine(2, model())
	err := m.Run(func(p *Proc) error {
		if p.ID() == 0 {
			return p.Send(1, 1, "x")
		}
		p.Compute(10_000) // receiver is already past the arrival time
		if _, err := p.Recv(0); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Clocks()[1]; got != 10_000*time.Nanosecond {
		t.Errorf("receiver clock = %v, want 10µs", got)
	}
}

func TestSendValidation(t *testing.T) {
	m, _ := NewMachine(2, model())
	err := m.Run(func(p *Proc) error {
		if p.ID() == 0 {
			if err := p.Send(0, 1, "self"); err == nil {
				t.Error("self-send should fail")
			}
			if err := p.Send(7, 1, "oob"); err == nil {
				t.Error("out-of-range send should fail")
			}
			if _, err := p.Recv(0); err == nil {
				t.Error("self-recv should fail")
			}
			if _, err := p.Recv(-1); err == nil {
				t.Error("negative recv should fail")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeSymmetric(t *testing.T) {
	m, _ := NewMachine(2, model())
	err := m.Run(func(p *Proc) error {
		got, err := p.Exchange(1-p.ID(), 4, p.ID()*100)
		if err != nil {
			return err
		}
		if got.(int) != (1-p.ID())*100 {
			t.Errorf("rank %d received %v", p.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierMaxCombines(t *testing.T) {
	m, _ := NewMachine(4, model())
	err := m.Run(func(p *Proc) error {
		p.Compute(int64(1000 * (p.ID() + 1))) // ranks at 1,2,3,4 µs
		return p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks = max (4µs) + τ·log₂4 = 4000 + 200 ns.
	want := 4000*time.Nanosecond + 2*100*time.Nanosecond
	for i, c := range m.Clocks() {
		if c != want {
			t.Errorf("rank %d clock = %v, want %v", i, c, want)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	m, _ := NewMachine(3, model())
	err := m.Run(func(p *Proc) error {
		for i := 0; i < 5; i++ {
			if err := p.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m, _ := NewMachine(p, model())
		var sum atomic.Int64
		err := m.Run(func(pr *Proc) error {
			all, err := pr.AllGather(1, pr.ID()*10)
			if err != nil {
				return err
			}
			s := 0
			for _, v := range all {
				s += v.(int)
			}
			sum.Add(int64(s))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(p * (p - 1) / 2 * 10 * p) // each rank sums 10·Σranks
		if sum.Load() != want {
			t.Errorf("p=%d: gathered sum = %d, want %d", p, sum.Load(), want)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	m, _ := NewMachine(2, model())
	err := m.Run(func(p *Proc) error {
		if p.ID() == 1 {
			return errTest
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run must propagate processor errors")
	}
}

func TestRunRecoverPanicNoDeadlock(t *testing.T) {
	m, _ := NewMachine(2, model())
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(p *Proc) error {
			if p.ID() == 0 {
				panic("boom")
			}
			return p.Barrier() // would deadlock without barrier abort
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panicking run must return an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run deadlocked after panic")
	}
}

func TestSingleProcBarrierAndGather(t *testing.T) {
	m, _ := NewMachine(1, model())
	err := m.Run(func(p *Proc) error {
		if err := p.Barrier(); err != nil {
			return err
		}
		all, err := p.AllGather(1, 42)
		if err != nil {
			return err
		}
		if len(all) != 1 || all[0].(int) != 42 {
			t.Errorf("AllGather p=1 = %v", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxClock() != 0 {
		t.Errorf("p=1 barrier should be free, clock = %v", m.MaxClock())
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestMessagesAreFIFOPerPair(t *testing.T) {
	m, _ := NewMachine(2, model())
	err := m.Run(func(p *Proc) error {
		if p.ID() == 0 {
			for i := 0; i < 100; i++ {
				if err := p.Send(1, 1, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 100; i++ {
			v, err := p.Recv(0)
			if err != nil {
				return err
			}
			if v.(int) != i {
				t.Errorf("message %d arrived as %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotoneUnderRandomTraffic(t *testing.T) {
	// Random send/recv patterns must never move any clock backwards.
	m, _ := NewMachine(4, model())
	err := m.Run(func(p *Proc) error {
		last := p.Clock()
		check := func() error {
			if p.Clock() < last {
				t.Errorf("rank %d clock went backwards", p.ID())
			}
			last = p.Clock()
			return nil
		}
		// Deterministic schedule: ring exchanges with varying payloads.
		for round := 0; round < 20; round++ {
			p.Compute(int64(100 * (p.ID() + 1)))
			check()
			next := (p.ID() + 1) % p.P()
			prev := (p.ID() + p.P() - 1) % p.P()
			if err := p.Send(next, int64(round+1), round); err != nil {
				return err
			}
			check()
			if _, err := p.Recv(prev); err != nil {
				return err
			}
			check()
			if err := p.Barrier(); err != nil {
				return err
			}
			check()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A rank whose barrier generation completed before a later abort landed
// must not see a spurious abort error.
func TestBarrierCompletedGenerationSurvivesAbort(t *testing.T) {
	m, err := NewMachine(2, model())
	if err != nil {
		t.Fatal(err)
	}
	firstBarrier := make([]error, 2)
	err = m.Run(func(p *Proc) error {
		firstBarrier[p.ID()] = p.Barrier() // completes for both ranks
		if p.ID() == 1 {
			return errors.New("rank 1 fails after the barrier")
		}
		// Rank 0 heads into a second barrier that rank 1 never reaches;
		// the abort must release it (with an error) instead of deadlocking.
		p.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("machine should surface rank 1's error")
	}
	for i, e := range firstBarrier {
		if e != nil {
			t.Errorf("rank %d's completed barrier reported %v", i, e)
		}
	}
}

// A processor panicking while its partner is blocked mid-exchange must
// release the partner's Recv (and any pending Send), not deadlock Run.
func TestPeerFailureReleasesRecv(t *testing.T) {
	m, err := NewMachine(2, model())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(p *Proc) error {
			if p.ID() == 1 {
				panic("rank 1 dies before sending")
			}
			_, err := p.Recv(1) // would block forever without message abort
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run should surface the panic and the aborted receive")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked: peer failure did not release Recv")
	}
}
