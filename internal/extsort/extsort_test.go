package extsort

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/runio"
)

func defaultOpts() Options {
	return Options{
		Buckets: 8,
		Config:  core.Config{RunLen: 1000, SampleSize: 100},
	}
}

func TestSortFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	out := filepath.Join(dir, "out.run")
	xs := datagen.Generate(datagen.NewUniform(3, 1<<40), 50_000)
	if err := runio.WriteFile(in, runio.Int64Codec{}, xs); err != nil {
		t.Fatal(err)
	}
	st, err := Sort(in, out, runio.Int64Codec{}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 50_000 {
		t.Fatalf("N = %d", st.N)
	}
	ds, err := runio.OpenFile(out, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runio.ReadAll[int64](ds)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("output has %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Partition balance: with s=100 ≥ 2k=16, no bucket should exceed
	// ideal + n/s by much.
	if st.Imbalance() > 1.5 {
		t.Errorf("imbalance = %g, want ≤ 1.5", st.Imbalance())
	}
}

func TestSortEmptyFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	out := filepath.Join(dir, "out.run")
	if err := runio.WriteFile(in, runio.Int64Codec{}, nil); err != nil {
		t.Fatal(err)
	}
	st, err := Sort(in, out, runio.Int64Codec{}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 0 {
		t.Fatalf("N = %d", st.N)
	}
	ds, err := runio.OpenFile(out, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != 0 {
		t.Fatalf("output count = %d", ds.Count())
	}
}

func TestSortValidation(t *testing.T) {
	if _, err := Sort[int64]("x", "y", runio.Int64Codec{}, Options{Buckets: 0, Config: core.Config{RunLen: 4, SampleSize: 2}}); err == nil {
		t.Error("0 buckets should fail")
	}
	if _, err := Sort[int64]("x", "y", runio.Int64Codec{}, Options{Buckets: 2, Config: core.Config{RunLen: 0}}); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := Sort("/nonexistent/in.run", "/tmp/out.run", runio.Int64Codec{}, defaultOpts()); err == nil {
		t.Error("missing input should fail")
	}
}

func TestSortSliceZipfDuplicates(t *testing.T) {
	xs, err := datagen.PaperDataset("zipf", 30_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := SortSlice(xs, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	total := int64(0)
	for _, c := range st.BucketSizes {
		total += c
	}
	if total != st.N {
		t.Fatalf("bucket sizes sum to %d, want %d", total, st.N)
	}
}

func TestSortSliceEmpty(t *testing.T) {
	got, st, err := SortSlice[int64](nil, defaultOpts())
	if err != nil || len(got) != 0 || st.N != 0 {
		t.Fatalf("SortSlice(nil) = %v, %+v, %v", got, st, err)
	}
}

func TestSortSliceSingleBucket(t *testing.T) {
	xs := []int64{5, 2, 9, 2, 7}
	opts := Options{Buckets: 1, Config: core.Config{RunLen: 4, SampleSize: 2}}
	got, _, err := SortSlice(xs, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 2, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

// Property: SortSlice output is the sorted permutation of its input for
// arbitrary data and bucket counts.
func TestQuickSortSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(raw []int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%12
		opts := Options{Buckets: k, Config: core.Config{RunLen: 64, SampleSize: 32}}
		got, st, err := SortSlice(raw, opts)
		if err != nil {
			return false
		}
		want := append([]int64(nil), raw...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return st.N == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Load-balancing property (the [DNS91] motivation): with s ≥ 2k and unique
// keys, bucket populations stay within ideal + n/s + slack.
func TestPartitionBalanceBound(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(13, 1<<50), 64_000) // effectively unique
	opts := Options{Buckets: 16, Config: core.Config{RunLen: 4000, SampleSize: 400}}
	_, st, err := SortSlice(xs, opts)
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(st.N) / float64(opts.Buckets)
	slack := float64(st.N)/float64(opts.Config.SampleSize) + float64(opts.Config.RunLen)
	for i, c := range st.BucketSizes {
		if float64(c) > ideal+2*slack {
			t.Errorf("bucket %d population %d exceeds ideal %g + 2·slack %g", i, c, ideal, slack)
		}
	}
}

// Property: the file-based Sort is the sorted permutation of its input
// for random contents, including negative keys and duplicates.
func TestQuickSortFile(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dir := t.TempDir()
	i := 0
	f := func(seed int64, nRaw uint16, kRaw uint8) bool {
		i++
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%5000 + 1
		k := 1 + int(kRaw)%6
		xs := make([]int64, n)
		for j := range xs {
			xs[j] = r.Int63n(500) - 250
		}
		in := filepath.Join(dir, "in"+itoa(i)+".run")
		out := filepath.Join(dir, "out"+itoa(i)+".run")
		if err := runio.WriteFile(in, runio.Int64Codec{}, xs); err != nil {
			return false
		}
		st, err := Sort(in, out, runio.Int64Codec{}, Options{
			Buckets: k,
			Config:  core.Config{RunLen: 256, SampleSize: 32},
			TempDir: dir,
		})
		if err != nil || st.N != int64(n) {
			return false
		}
		ds, err := runio.OpenFile(out, runio.Int64Codec{})
		if err != nil {
			return false
		}
		got, err := runio.ReadAll[int64](ds)
		if err != nil {
			return false
		}
		want := append([]int64(nil), xs...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	s := ""
	if n == 0 {
		return "0"
	}
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

// TestSortFloat64RoundTrip pins the codec-generic path: a float64 run file
// externally sorted via Sort[float64] comes back globally sorted with every
// element intact, including negatives and fractional values.
func TestSortFloat64RoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	out := filepath.Join(dir, "out.run")
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 40_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 1e6
	}
	if err := runio.WriteFile(in, runio.Float64Codec{}, xs); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Buckets: 8,
		Config:  core.Config{RunLen: 1000, SampleSize: 100, Workers: 3},
		TempDir: dir,
	}
	st, err := Sort(in, out, runio.Float64Codec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", st.N, len(xs))
	}
	if len(st.Splitters) != opts.Buckets-1 {
		t.Fatalf("got %d splitters, want %d", len(st.Splitters), opts.Buckets-1)
	}
	ds, err := runio.OpenFile(out, runio.Float64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runio.ReadAll[float64](ds)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("output has %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestSortUint64 exercises a third key type end to end.
func TestSortUint64(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	out := filepath.Join(dir, "out.run")
	rng := rand.New(rand.NewSource(23))
	xs := make([]uint64, 10_000)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	if err := runio.WriteFile(in, runio.Uint64Codec{}, xs); err != nil {
		t.Fatal(err)
	}
	st, err := Sort(in, out, runio.Uint64Codec{}, Options{
		Buckets: 4,
		Config:  core.Config{RunLen: 1000, SampleSize: 100},
		TempDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != int64(len(xs)) {
		t.Fatalf("N = %d", st.N)
	}
	ds, err := runio.OpenFile(out, runio.Uint64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runio.ReadAll[uint64](ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("output out of order at %d", i)
		}
	}
}

// TestSortRejectsNaN pins the NaN guard: a float64 input containing NaN
// must fail loudly instead of producing a silently mis-sorted file.
func TestSortRejectsNaN(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	out := filepath.Join(dir, "out.run")
	xs := make([]float64, 5_000)
	for i := range xs {
		xs[i] = float64(i)
	}
	xs[2_500] = math.NaN()
	if err := runio.WriteFile(in, runio.Float64Codec{}, xs); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(in, out, runio.Float64Codec{}, Options{
		Buckets: 4,
		Config:  core.Config{RunLen: 1000, SampleSize: 100},
		TempDir: dir,
	}); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("Sort with NaN input: got err %v, want NaN error", err)
	}
	if _, _, err := SortSlice(xs, Options{
		Buckets: 4,
		Config:  core.Config{RunLen: 1000, SampleSize: 100},
	}); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("SortSlice with NaN input: got err %v, want NaN error", err)
	}
}

// The merge pass sorts buckets concurrently across Config.Workers; the
// output file must be byte-identical for every worker count.
func TestSortWorkerCountsIdenticalOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.run")
	xs := datagen.Generate(datagen.NewUniform(41, 1<<40), 40_000)
	if err := runio.WriteFile(in, runio.Int64Codec{}, xs); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, w := range []int{1, 2, 4, 7} {
		out := filepath.Join(dir, fmt.Sprintf("out-w%d.run", w))
		opts := defaultOpts()
		opts.Buckets = 11 // more buckets than workers: exercises the window
		opts.Config.Workers = w
		st, err := Sort(in, out, runio.Int64Codec{}, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if st.N != int64(len(xs)) {
			t.Fatalf("workers=%d: N = %d", w, st.N)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: output bytes differ from workers=1", w)
		}
	}
}
