// Package extsort implements external sorting by quantile partitioning —
// one of the applications motivating the paper ("quantiles can be used for
// external sorting. Data can be partitioned using quantiles into a number
// of partitions such that each partition fits into main memory").
//
// The sort proceeds in three passes over run files:
//
//  1. OPAQ pass: build a quantile summary of the input (one pass, run
//     concurrently across cores when Options.Config.Workers allows).
//  2. Partition pass: choose k−1 splitters at the 1/k … (k−1)/k quantile
//     upper bounds and scatter the input into k bucket files (one pass).
//     Lemma 1 guarantees each bucket holds at most n/k + n/s elements plus
//     the duplicate mass on its boundary, so with s ≥ 2k a bucket sized
//     for 1.5·n/k elements always fits.
//  3. Merge pass: load each bucket, sort it in memory, and append to the
//     output (one pass). Buckets are in splitter order, so concatenation
//     is globally sorted. Bucket loads and sorts run concurrently across
//     Options.Config.Workers; the append stays in bucket order, so the
//     output bytes are identical for every worker count.
//
// Everything is generic over the element type: Sort[T] works for any
// cmp.Ordered key with a runio.Codec[T] describing its on-disk encoding,
// so the same machinery sorts int64, float64, uint64, … run files.
//
// The same partitioning doubles as the load-balancing primitive the paper
// cites ([DNS91]): Stats.BucketSizes and Stats.Imbalance expose how evenly
// the splitters cut the data.
package extsort

import (
	"cmp"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// Options configures an external sort.
type Options struct {
	// Buckets is k, the number of partitions. Each bucket must fit in
	// memory; choose k ≥ n/M.
	Buckets int
	// Config is the OPAQ sample-phase configuration for the splitter pass;
	// its Workers field also sets the concurrency of that pass and of the
	// per-bucket sorts in the merge pass (0 = GOMAXPROCS, 1 = sequential).
	Config core.Config
	// TempDir holds the bucket files; defaults to the output directory.
	TempDir string
}

// Stats reports what a sort over elements of type T did.
type Stats[T cmp.Ordered] struct {
	// N is the number of elements sorted.
	N int64
	// BucketSizes is the actual population of each bucket after the
	// partition pass.
	BucketSizes []int64
	// MaxBucket is the largest bucket population.
	MaxBucket int64
	// Splitters are the k−1 partition boundaries used.
	Splitters []T
}

// Imbalance returns max bucket size over ideal (n/k); 1.0 is perfect.
func (s Stats[T]) Imbalance() float64 {
	if s.N == 0 || len(s.BucketSizes) == 0 {
		return 1
	}
	ideal := float64(s.N) / float64(len(s.BucketSizes))
	return float64(s.MaxBucket) / ideal
}

// Sort externally sorts the run file of T keys at inPath into outPath,
// using codec for both ends and for the intermediate bucket files.
//
// Floating-point inputs must be NaN-free: NaN compares false with
// everything, so no total order exists and neither the splitters nor the
// sorted-output invariant can hold. Sort fails with an error on the first
// NaN it scatters rather than writing a silently mis-sorted file.
func Sort[T cmp.Ordered](inPath, outPath string, codec runio.Codec[T], opts Options) (Stats[T], error) {
	var st Stats[T]
	if opts.Buckets < 1 {
		return st, fmt.Errorf("extsort: need ≥1 bucket, got %d", opts.Buckets)
	}
	if err := opts.Config.Validate(); err != nil {
		return st, err
	}
	ds, err := runio.OpenFile(inPath, codec)
	if err != nil {
		return st, err
	}
	st.N = ds.Count()
	if st.N == 0 {
		return st, runio.WriteFile(outPath, codec, nil)
	}

	// Pass 1: OPAQ summary.
	sum, err := core.BuildFromDataset[T](ds, opts.Config)
	if err != nil {
		return st, err
	}
	st.Splitters, err = splitters(sum, opts.Buckets)
	if err != nil {
		return st, err
	}

	// Pass 2: scatter into bucket files, with the next run prefetched while
	// the current one is scattered.
	k := opts.Buckets
	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = filepath.Dir(outPath)
	}
	writers := make([]*runio.Writer[T], k)
	paths := make([]string, k)
	for i := range writers {
		paths[i] = filepath.Join(tempDir, fmt.Sprintf("bucket-%04d.run", i))
		w, err := runio.NewWriter(paths[i], codec)
		if err != nil {
			return st, err
		}
		writers[i] = w
	}
	cleanup := func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}
	defer cleanup()

	rr, err := ds.Runs(opts.Config.RunLen)
	if err != nil {
		return st, err
	}
	pf := runio.Prefetch(rr, 1)
	defer pf.Close()
	st.BucketSizes = make([]int64, k)
	var scattered int64
	for {
		run, err := pf.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		for _, v := range run {
			if v != v { // NaN: unordered, see doc comment
				return st, fmt.Errorf("extsort: input element %d is NaN; NaN keys have no total order", scattered)
			}
			b := searchSplitters(st.Splitters, v) // first splitter ≥ v
			if err := writers[b].Append(v); err != nil {
				return st, err
			}
			st.BucketSizes[b]++
			scattered++
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return st, err
		}
	}
	for _, c := range st.BucketSizes {
		st.MaxBucket = max(st.MaxBucket, c)
	}

	// Pass 3: sort the buckets in memory — concurrently across
	// opts.Config.Workers — and concatenate in bucket order. Buckets are in
	// splitter order and each is appended only after its predecessor, so
	// the output bytes are identical for every worker count; the only
	// things that change are wall-clock time and peak memory (at most
	// `workers` buckets resident instead of one).
	out, err := runio.NewSortedWriter(outPath, codec)
	if err != nil {
		return st, err
	}
	buckets := sortBuckets(paths, codec, opts.Config.EffectiveWorkers())
	// On early return, keep consuming so the pipeline goroutines terminate.
	drain := func() {
		go func() {
			for range buckets {
			}
		}()
	}
	for res := range buckets {
		if res.err != nil {
			drain()
			out.Close()
			return st, res.err
		}
		if err := out.Append(res.vals...); err != nil {
			drain()
			out.Close()
			return st, fmt.Errorf("extsort: bucket %d out of global order: %w", res.idx, err)
		}
	}
	if err := out.Close(); err != nil {
		return st, err
	}
	return st, nil
}

// sortedBucket is one bucket's sorted contents, delivered in bucket order.
type sortedBucket[T cmp.Ordered] struct {
	idx  int
	vals []T
	err  error
}

// sortBuckets reads and sorts the bucket files with up to `workers`
// goroutines and yields them strictly in bucket order. A semaphore held
// from dispatch until the consumer takes delivery bounds the number of
// resident buckets to `workers`; because slots are granted in bucket
// order, the in-order consumer can never be starved by later buckets.
func sortBuckets[T cmp.Ordered](paths []string, codec runio.Codec[T], workers int) <-chan sortedBucket[T] {
	results := make([]chan sortedBucket[T], len(paths))
	for i := range results {
		results[i] = make(chan sortedBucket[T], 1)
	}
	sem := make(chan struct{}, workers)
	go func() {
		for i := range paths {
			sem <- struct{}{}
			go func(i int) {
				vals, err := readAndSort(paths[i], codec)
				results[i] <- sortedBucket[T]{idx: i, vals: vals, err: err}
			}(i)
		}
	}()
	ordered := make(chan sortedBucket[T])
	go func() {
		defer close(ordered)
		for i := range results {
			res := <-results[i]
			<-sem // bucket delivered; free a slot for the next dispatch
			ordered <- res
		}
	}()
	return ordered
}

// readAndSort loads one bucket file and sorts it in memory.
func readAndSort[T cmp.Ordered](path string, codec runio.Codec[T]) ([]T, error) {
	bds, err := runio.OpenFile(path, codec)
	if err != nil {
		return nil, err
	}
	vals, err := runio.ReadAll[T](bds)
	if err != nil {
		return nil, err
	}
	slices.Sort(vals)
	return vals, nil
}

// SortSlice is an in-memory convenience over the same partition logic,
// returning the sorted data and partition statistics; used by the
// load-balancing example and tests.
func SortSlice[T cmp.Ordered](xs []T, opts Options) ([]T, Stats[T], error) {
	var st Stats[T]
	if opts.Buckets < 1 {
		return nil, st, fmt.Errorf("extsort: need ≥1 bucket, got %d", opts.Buckets)
	}
	st.N = int64(len(xs))
	if len(xs) == 0 {
		return nil, st, nil
	}
	sum, err := core.BuildFromSlice(xs, opts.Config)
	if err != nil {
		return nil, st, err
	}
	if st.Splitters, err = splitters(sum, opts.Buckets); err != nil {
		return nil, st, err
	}
	k := opts.Buckets
	buckets := make([][]T, k)
	st.BucketSizes = make([]int64, k)
	for i, v := range xs {
		if v != v { // NaN: unordered, as in Sort
			return nil, st, fmt.Errorf("extsort: input element %d is NaN; NaN keys have no total order", i)
		}
		b := searchSplitters(st.Splitters, v)
		buckets[b] = append(buckets[b], v)
		st.BucketSizes[b]++
	}
	out := make([]T, 0, len(xs))
	for i, bkt := range buckets {
		slices.Sort(bkt)
		out = append(out, bkt...)
		st.MaxBucket = max(st.MaxBucket, st.BucketSizes[i])
	}
	return out, st, nil
}

// splitters derives the k−1 partition boundaries from a summary: the upper
// bounds of the i/k quantiles (upper bounds guarantee that everything ≤
// splitter i has rank ≤ i·n/k + n/s).
func splitters[T cmp.Ordered](sum *core.Summary[T], k int) ([]T, error) {
	out := make([]T, 0, k-1)
	for i := 1; i < k; i++ {
		b, err := sum.Bounds(float64(i) / float64(k))
		if err != nil {
			return nil, err
		}
		out = append(out, b.Upper)
	}
	return out, nil
}

// searchSplitters returns the index of the first element of a that is ≥ x.
func searchSplitters[T cmp.Ordered](a []T, x T) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= x })
}
