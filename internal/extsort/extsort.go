// Package extsort implements external sorting by quantile partitioning —
// one of the applications motivating the paper ("quantiles can be used for
// external sorting. Data can be partitioned using quantiles into a number
// of partitions such that each partition fits into main memory").
//
// The sort proceeds in three passes over run files:
//
//  1. OPAQ pass: build a quantile summary of the input (one pass).
//  2. Partition pass: choose k−1 splitters at the 1/k … (k−1)/k quantile
//     upper bounds and scatter the input into k bucket files (one pass).
//     Lemma 1 guarantees each bucket holds at most n/k + n/s elements plus
//     the duplicate mass on its boundary, so with s ≥ 2k a bucket sized
//     for 1.5·n/k elements always fits.
//  3. Merge pass: load each bucket, sort it in memory, and append to the
//     output (one pass). Buckets are in splitter order, so concatenation
//     is globally sorted.
//
// The same partitioning doubles as the load-balancing primitive the paper
// cites ([DNS91]): Stats.BucketSizes and Stats.Imbalance expose how evenly
// the splitters cut the data.
package extsort

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// Options configures an external sort.
type Options struct {
	// Buckets is k, the number of partitions. Each bucket must fit in
	// memory; choose k ≥ n/M.
	Buckets int
	// Config is the OPAQ sample-phase configuration for the splitter pass.
	Config core.Config
	// TempDir holds the bucket files; defaults to the output directory.
	TempDir string
}

// Stats reports what the sort did.
type Stats struct {
	// N is the number of elements sorted.
	N int64
	// BucketSizes is the actual population of each bucket after the
	// partition pass.
	BucketSizes []int64
	// MaxBucket is the largest bucket population.
	MaxBucket int64
	// Splitters are the k−1 partition boundaries used.
	Splitters []int64
}

// Imbalance returns max bucket size over ideal (n/k); 1.0 is perfect.
func (s Stats) Imbalance() float64 {
	if s.N == 0 || len(s.BucketSizes) == 0 {
		return 1
	}
	ideal := float64(s.N) / float64(len(s.BucketSizes))
	return float64(s.MaxBucket) / ideal
}

// Sort externally sorts the run file at inPath into outPath.
func Sort(inPath, outPath string, opts Options) (Stats, error) {
	var st Stats
	if opts.Buckets < 1 {
		return st, fmt.Errorf("extsort: need ≥1 bucket, got %d", opts.Buckets)
	}
	if err := opts.Config.Validate(); err != nil {
		return st, err
	}
	codec := runio.Int64Codec{}
	ds, err := runio.OpenFile(inPath, codec)
	if err != nil {
		return st, err
	}
	st.N = ds.Count()
	if st.N == 0 {
		return st, runio.WriteFile(outPath, codec, nil)
	}

	// Pass 1: OPAQ summary.
	sum, err := core.BuildFromDataset[int64](ds, opts.Config)
	if err != nil {
		return st, err
	}

	// Splitters: upper bounds of the i/k quantiles (upper bounds guarantee
	// that everything ≤ splitter i has rank ≤ i·n/k + n/s).
	k := opts.Buckets
	for i := 1; i < k; i++ {
		b, err := sum.Bounds(float64(i) / float64(k))
		if err != nil {
			return st, err
		}
		st.Splitters = append(st.Splitters, b.Upper)
	}

	// Pass 2: scatter into bucket files.
	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = filepath.Dir(outPath)
	}
	writers := make([]*runio.Writer[int64], k)
	paths := make([]string, k)
	for i := range writers {
		paths[i] = filepath.Join(tempDir, fmt.Sprintf("bucket-%04d.run", i))
		w, err := runio.NewWriter(paths[i], codec)
		if err != nil {
			return st, err
		}
		writers[i] = w
	}
	cleanup := func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}
	defer cleanup()

	rr, err := ds.Runs(opts.Config.RunLen)
	if err != nil {
		return st, err
	}
	st.BucketSizes = make([]int64, k)
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		for _, v := range run {
			b := searchInt64s(st.Splitters, v) // first splitter ≥ v
			if err := writers[b].Append(v); err != nil {
				return st, err
			}
			st.BucketSizes[b]++
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return st, err
		}
	}
	for _, c := range st.BucketSizes {
		if c > st.MaxBucket {
			st.MaxBucket = c
		}
	}

	// Pass 3: sort each bucket in memory and concatenate.
	out, err := runio.NewSortedWriter(outPath, codec)
	if err != nil {
		return st, err
	}
	for i := 0; i < k; i++ {
		bds, err := runio.OpenFile(paths[i], codec)
		if err != nil {
			out.Close()
			return st, err
		}
		vals, err := runio.ReadAll[int64](bds)
		if err != nil {
			out.Close()
			return st, err
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		if err := out.Append(vals...); err != nil {
			out.Close()
			return st, fmt.Errorf("extsort: bucket %d out of global order: %w", i, err)
		}
	}
	if err := out.Close(); err != nil {
		return st, err
	}
	return st, nil
}

// SortSlice is an in-memory convenience over the same partition logic,
// returning the sorted data and partition statistics; used by the
// load-balancing example and tests.
func SortSlice(xs []int64, opts Options) ([]int64, Stats, error) {
	var st Stats
	if opts.Buckets < 1 {
		return nil, st, fmt.Errorf("extsort: need ≥1 bucket, got %d", opts.Buckets)
	}
	st.N = int64(len(xs))
	if len(xs) == 0 {
		return nil, st, nil
	}
	sum, err := core.BuildFromSlice(xs, opts.Config)
	if err != nil {
		return nil, st, err
	}
	k := opts.Buckets
	for i := 1; i < k; i++ {
		b, err := sum.Bounds(float64(i) / float64(k))
		if err != nil {
			return nil, st, err
		}
		st.Splitters = append(st.Splitters, b.Upper)
	}
	buckets := make([][]int64, k)
	st.BucketSizes = make([]int64, k)
	for _, v := range xs {
		b := searchInt64s(st.Splitters, v)
		buckets[b] = append(buckets[b], v)
		st.BucketSizes[b]++
	}
	out := make([]int64, 0, len(xs))
	for i, bkt := range buckets {
		sort.Slice(bkt, func(a, b int) bool { return bkt[a] < bkt[b] })
		out = append(out, bkt...)
		if st.BucketSizes[i] > st.MaxBucket {
			st.MaxBucket = st.BucketSizes[i]
		}
	}
	return out, st, nil
}

// searchInt64s returns the index of the first element of a that is ≥ x.
func searchInt64s(a []int64, x int64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= x })
}
