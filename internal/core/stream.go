package core

import (
	"cmp"
	"math/rand"

	"opaq/internal/merge"
	"opaq/internal/selection"
)

// StreamBuilder ingests elements one at a time (or in arbitrary batches)
// and maintains an OPAQ summary over everything seen so far. It is the
// push-based counterpart of Build for callers that do not have their data
// behind a RunReader — e.g. a metrics pipeline observing latencies.
//
// Internally it buffers up to RunLen elements; each full buffer becomes
// one run and is sampled exactly as the pull-based sample phase would —
// run i draws its selection RNG from the same (Seed, i) derivation Build
// uses — so Summary() is bit-identical to running Build over the same
// element sequence at any Config.Workers setting. The buffered tail (a
// partial run) is folded in on Summary() with the same ragged-run
// accounting Build uses, at the cost of an O(RunLen log s) flush.
//
// # Sealing
//
// For epoch-based lifecycles (a serving engine aging summaries out of its
// merge set), Seal detaches everything that has completed a whole run into
// an immutable Summary and resets the builder's run state, while the
// in-progress partial run stays buffered and flows into the next epoch.
// Because a seal never cuts a run, the multiset of per-run sample lists —
// and therefore the merge of all sealed summaries plus Summary() — is
// byte-identical to never having sealed at all.
type StreamBuilder[T cmp.Ordered] struct {
	cfg Config
	buf []T

	// State of whole runs flushed since the last Seal.
	lists    [][]T // per-run sorted sample lists
	runs     int64 // whole runs
	runN     int64 // elements in those runs (runs·RunLen)
	leftover int64 // elements of those runs not covered by a sub-run
	runMin   T     // extrema over those runs; valid when runs > 0
	runMax   T

	// Extrema of the buffered partial run; valid when len(buf) > 0.
	bufMin, bufMax T

	// seq counts runs flushed over the builder's lifetime, across seals,
	// so each run's selection RNG keeps the same (Seed, run index)
	// derivation Build uses.
	seq int64
}

// NewStreamBuilder returns a streaming builder for the given config.
func NewStreamBuilder[T cmp.Ordered](cfg Config) (*StreamBuilder[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &StreamBuilder[T]{
		cfg: cfg,
		buf: make([]T, 0, cfg.RunLen),
	}, nil
}

// Add observes one element. Amortized cost is O(log s) per element.
func (b *StreamBuilder[T]) Add(v T) error {
	if len(b.buf) == 0 {
		b.bufMin, b.bufMax = v, v
	} else {
		if v < b.bufMin {
			b.bufMin = v
		}
		if v > b.bufMax {
			b.bufMax = v
		}
	}
	b.buf = append(b.buf, v)
	if len(b.buf) == b.cfg.RunLen {
		return b.flush()
	}
	return nil
}

// AddBatch observes a batch of elements. It is equivalent to calling Add
// per element but copies run-sized chunks into the buffer wholesale, so
// the per-element cost is one extrema comparison plus the memmove — on
// the wire-speed ingest path the per-call overhead of Add is measurable.
func (b *StreamBuilder[T]) AddBatch(vs []T) error {
	for len(vs) > 0 {
		if len(b.buf) == 0 {
			b.bufMin, b.bufMax = vs[0], vs[0]
		}
		take := min(b.cfg.RunLen-len(b.buf), len(vs))
		chunk := vs[:take]
		lo, hi := b.bufMin, b.bufMax
		for _, v := range chunk {
			if v < lo {
				lo = v
			} else if v > hi {
				hi = v
			}
		}
		b.bufMin, b.bufMax = lo, hi
		b.buf = append(b.buf, chunk...)
		vs = vs[take:]
		if len(b.buf) == b.cfg.RunLen {
			if err := b.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// N returns the number of elements the builder currently holds: whole runs
// not yet detached by Seal, plus the buffered partial run. Before any Seal
// this is everything observed since creation.
func (b *StreamBuilder[T]) N() int64 { return b.runN + int64(len(b.buf)) }

// Buffered returns the size of the in-progress partial run — the elements
// a Seal would leave behind for the next epoch.
func (b *StreamBuilder[T]) Buffered() int { return len(b.buf) }

// flush samples the buffered run, folds it into the whole-run state and
// clears the buffer.
func (b *StreamBuilder[T]) flush() error {
	step := b.cfg.Step()
	si := len(b.buf) / step
	b.leftover += int64(len(b.buf) - si*step)
	b.runN += int64(len(b.buf))
	if b.runs == 0 {
		b.runMin, b.runMax = b.bufMin, b.bufMax
	} else {
		if b.bufMin < b.runMin {
			b.runMin = b.bufMin
		}
		if b.bufMax > b.runMax {
			b.runMax = b.bufMax
		}
	}
	b.runs++
	b.seq++
	if si > 0 {
		ranks := make([]int, si)
		for k := 1; k <= si; k++ {
			ranks[k-1] = k*step - 1
		}
		rng := rand.New(rand.NewSource(runSeed(b.cfg.Seed, b.seq-1)))
		samples, err := selection.MultiSelect(b.buf, ranks, rng)
		if err != nil {
			return err
		}
		b.lists = append(b.lists, samples)
	}
	// MultiSelect permutes the run in place but its sample list is a fresh
	// slice, so the run buffer is dead here and can be refilled in place.
	b.buf = b.buf[:0]
	return nil
}

// Seal detaches the whole runs accumulated since the previous Seal as an
// immutable Summary and resets the builder's run state. The buffered
// partial run is NOT included — it stays in the builder, keeps filling
// toward RunLen, and belongs to whatever summary is cut next — so sealing
// never splits a run and the concatenation of sealed summaries plus a
// final Summary() covers exactly the observed sequence with exactly the
// run composition an unsealed builder would have had.
//
// When no whole run has completed since the last Seal, the canonical empty
// summary is returned (N() == 0) and the builder is unchanged.
func (b *StreamBuilder[T]) Seal() *Summary[T] {
	if b.runs == 0 {
		return emptySummary[T](int64(b.cfg.Step()))
	}
	total := 0
	for _, l := range b.lists {
		total += len(l)
	}
	s := &Summary[T]{
		samples:  merge.KWayInto(getSamples[T](total), b.lists),
		step:     int64(b.cfg.Step()),
		runs:     b.runs,
		n:        b.runN,
		leftover: b.leftover,
		min:      b.runMin,
		max:      b.runMax,
	}
	var zero T
	b.lists, b.runs, b.runN, b.leftover = nil, 0, 0, 0
	b.runMin, b.runMax = zero, zero
	return s
}

// Summary returns the summary over everything the builder currently holds
// (see N). The builder remains usable afterwards; the buffered partial run
// is consumed as a (ragged) run of its own, exactly as Build treats a
// short final run.
func (b *StreamBuilder[T]) Summary() (*Summary[T], error) {
	if b.N() == 0 {
		// Identical to Build over an empty reader: the canonical empty
		// summary (ErrEmpty from Bounds, zero-valued extrema), not an error.
		return emptySummary[T](int64(b.cfg.Step())), nil
	}
	// Fold the tail into a copy of the state so ingestion can continue.
	lists := b.lists
	runs, leftover := b.runs, b.leftover
	minV, maxV := b.runMin, b.runMax
	if runs == 0 {
		minV, maxV = b.bufMin, b.bufMax
	}
	if len(b.buf) > 0 {
		step := b.cfg.Step()
		si := len(b.buf) / step
		leftover += int64(len(b.buf) - si*step)
		runs++
		if si > 0 {
			ranks := make([]int, si)
			for k := 1; k <= si; k++ {
				ranks[k-1] = k*step - 1
			}
			// The tail must be copied (ingestion continues into b.buf), but
			// the copy is pure scratch: MultiSelect permutes it and returns a
			// fresh sample list, so it goes straight back to the pool.
			cp := append(getSamples[T](len(b.buf)), b.buf...)
			rng := rand.New(rand.NewSource(runSeed(b.cfg.Seed, b.seq)))
			samples, err := selection.MultiSelect(cp, ranks, rng)
			putSamples(cp)
			if err != nil {
				return nil, err
			}
			lists = append(lists[:len(lists):len(lists)], samples)
		}
		if b.bufMin < minV {
			minV = b.bufMin
		}
		if b.bufMax > maxV {
			maxV = b.bufMax
		}
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	return &Summary[T]{
		samples:  merge.KWayInto(getSamples[T](total), lists),
		step:     int64(b.cfg.Step()),
		runs:     runs,
		n:        b.N(),
		leftover: leftover,
		min:      minV,
		max:      maxV,
	}, nil
}
