package core

import (
	"cmp"
	"math/rand"

	"opaq/internal/merge"
	"opaq/internal/selection"
)

// StreamBuilder ingests elements one at a time (or in arbitrary batches)
// and maintains an OPAQ summary over everything seen so far. It is the
// push-based counterpart of Build for callers that do not have their data
// behind a RunReader — e.g. a metrics pipeline observing latencies.
//
// Internally it buffers up to RunLen elements; each full buffer becomes
// one run and is sampled exactly as the pull-based sample phase would —
// run i draws its selection RNG from the same (Seed, i) derivation Build
// uses — so Summary() is bit-identical to running Build over the same
// element sequence at any Config.Workers setting. The buffered tail (a
// partial run) is folded in on Summary() with the same ragged-run
// accounting Build uses, at the cost of an O(RunLen log s) flush.
type StreamBuilder[T cmp.Ordered] struct {
	cfg      Config
	buf      []T
	lists    [][]T
	runs     int64
	n        int64
	leftover int64
	min, max T
}

// NewStreamBuilder returns a streaming builder for the given config.
func NewStreamBuilder[T cmp.Ordered](cfg Config) (*StreamBuilder[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &StreamBuilder[T]{
		cfg: cfg,
		buf: make([]T, 0, cfg.RunLen),
	}, nil
}

// Add observes one element. Amortized cost is O(log s) per element.
func (b *StreamBuilder[T]) Add(v T) error {
	if b.n == 0 {
		b.min, b.max = v, v
	} else {
		if v < b.min {
			b.min = v
		}
		if v > b.max {
			b.max = v
		}
	}
	b.n++
	b.buf = append(b.buf, v)
	if len(b.buf) == b.cfg.RunLen {
		return b.flush()
	}
	return nil
}

// AddBatch observes a batch of elements.
func (b *StreamBuilder[T]) AddBatch(vs []T) error {
	for _, v := range vs {
		if err := b.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// N returns the number of elements observed.
func (b *StreamBuilder[T]) N() int64 { return b.n }

// flush samples the buffered run and clears the buffer.
func (b *StreamBuilder[T]) flush() error {
	step := b.cfg.Step()
	si := len(b.buf) / step
	b.leftover += int64(len(b.buf) - si*step)
	b.runs++
	if si > 0 {
		ranks := make([]int, si)
		for k := 1; k <= si; k++ {
			ranks[k-1] = k*step - 1
		}
		rng := rand.New(rand.NewSource(runSeed(b.cfg.Seed, b.runs-1)))
		samples, err := selection.MultiSelect(b.buf, ranks, rng)
		if err != nil {
			return err
		}
		b.lists = append(b.lists, samples)
	}
	b.buf = make([]T, 0, b.cfg.RunLen)
	return nil
}

// Summary returns the summary over everything observed so far. The
// builder remains usable afterwards; the buffered partial run is consumed
// as a (ragged) run of its own, exactly as Build treats a short final
// run.
func (b *StreamBuilder[T]) Summary() (*Summary[T], error) {
	if b.n == 0 {
		// Identical to Build over an empty reader: the canonical empty
		// summary (ErrEmpty from Bounds, zero-valued extrema), not an error.
		return emptySummary[T](int64(b.cfg.Step())), nil
	}
	// Flush the tail into a copy of the state so ingestion can continue.
	lists := b.lists
	runs, leftover := b.runs, b.leftover
	if len(b.buf) > 0 {
		step := b.cfg.Step()
		si := len(b.buf) / step
		leftover += int64(len(b.buf) - si*step)
		runs++
		if si > 0 {
			ranks := make([]int, si)
			for k := 1; k <= si; k++ {
				ranks[k-1] = k*step - 1
			}
			cp := append([]T(nil), b.buf...)
			rng := rand.New(rand.NewSource(runSeed(b.cfg.Seed, runs-1)))
			samples, err := selection.MultiSelect(cp, ranks, rng)
			if err != nil {
				return nil, err
			}
			lists = append(lists[:len(lists):len(lists)], samples)
		}
	}
	return &Summary[T]{
		samples:  merge.KWay(lists),
		step:     int64(b.cfg.Step()),
		runs:     runs,
		n:        b.n,
		leftover: leftover,
		min:      b.min,
		max:      b.max,
	}, nil
}
