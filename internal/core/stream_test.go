package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"opaq/internal/datagen"
)

func TestStreamBuilderValidation(t *testing.T) {
	if _, err := NewStreamBuilder[int64](Config{RunLen: 10, SampleSize: 3}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestStreamBuilderEmpty(t *testing.T) {
	b, err := NewStreamBuilder[int64](Config{RunLen: 8, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 0 {
		t.Fatalf("N = %d", s.N())
	}
}

// TestEmptySummaryConsistency pins the zero-element contract: a
// StreamBuilder that never saw an element and a Build over an empty reader
// yield structurally identical summaries, and every rank-dependent query
// on either reports ErrEmpty rather than fabricating values.
func TestEmptySummaryConsistency(t *testing.T) {
	cfg := Config{RunLen: 8, SampleSize: 2}
	sb, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildFromSlice[int64](nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed.Parts(), built.Parts()) {
		t.Fatalf("empty summaries diverge: stream %+v vs build %+v", streamed.Parts(), built.Parts())
	}
	for name, s := range map[string]*Summary[int64]{"stream": streamed, "build": built} {
		if _, err := s.Bounds(0.5); !errors.Is(err, ErrEmpty) {
			t.Errorf("%s: Bounds on empty = %v, want ErrEmpty", name, err)
		}
		if _, err := s.BoundsAtRank(1); !errors.Is(err, ErrEmpty) {
			t.Errorf("%s: BoundsAtRank on empty = %v, want ErrEmpty", name, err)
		}
		if _, err := s.Quantiles(10); !errors.Is(err, ErrEmpty) {
			t.Errorf("%s: Quantiles on empty = %v, want ErrEmpty", name, err)
		}
		if lo, hi := s.RankBounds(42); lo != 0 || hi != 0 {
			t.Errorf("%s: RankBounds on empty = [%d, %d], want zeros", name, lo, hi)
		}
		if s.ErrorBound() != 0 {
			t.Errorf("%s: ErrorBound on empty = %d", name, s.ErrorBound())
		}
		if s.Min() != 0 || s.Max() != 0 {
			t.Errorf("%s: empty extrema = [%d, %d], want zero values", name, s.Min(), s.Max())
		}
	}
	// The streaming builder stays usable after an empty snapshot, and its
	// next snapshot matches a batch build of the same data.
	if err := sb.AddBatch([]int64{3, 1, 2, 5, 4, 9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	after, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := BuildFromSlice([]int64{3, 1, 2, 5, 4, 9, 8, 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Parts(), batch.Parts()) {
		t.Error("summaries diverge after ingesting into a previously-empty builder")
	}
}

func TestStreamBuilderMatchesBatchBuild(t *testing.T) {
	cfg := Config{RunLen: 1000, SampleSize: 100, Seed: 5}
	xs := datagen.Generate(datagen.NewUniform(7, 1<<40), 25_000)
	sb, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	streamed, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.N() != batch.N() || streamed.Runs() != batch.Runs() ||
		streamed.SampleCount() != batch.SampleCount() {
		t.Fatalf("stream N/runs/samples = %d/%d/%d, batch %d/%d/%d",
			streamed.N(), streamed.Runs(), streamed.SampleCount(),
			batch.N(), batch.Runs(), batch.SampleCount())
	}
	for i, v := range streamed.Samples() {
		if v != batch.Samples()[i] {
			t.Fatalf("sample %d: %d vs %d", i, v, batch.Samples()[i])
		}
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		a, _ := streamed.Bounds(phi)
		c, _ := batch.Bounds(phi)
		if a.Lower != c.Lower || a.Upper != c.Upper {
			t.Errorf("phi=%g: stream [%v,%v] vs batch [%v,%v]", phi, a.Lower, a.Upper, c.Lower, c.Upper)
		}
	}
}

func TestStreamBuilderUsableAfterSummary(t *testing.T) {
	cfg := Config{RunLen: 100, SampleSize: 10}
	sb, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 150; i++ { // one full run + half a run buffered
		if err := sb.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s1.N() != 150 {
		t.Fatalf("first summary N = %d", s1.N())
	}
	// Keep ingesting: the partial run must not be double counted.
	for i := int64(150); i < 300; i++ {
		if err := sb.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != 300 {
		t.Fatalf("second summary N = %d", s2.N())
	}
	b, err := s2.Bounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower > 150 || b.Upper < 149 {
		t.Errorf("median of 0..299 outside [%d,%d]", b.Lower, b.Upper)
	}
	// Note: s1 was taken mid-run, so s2's run boundaries differ from a
	// clean batch build — but containment still holds (checked above).
}

// Property: streaming and batch construction agree for arbitrary lengths,
// including ragged tails.
func TestQuickStreamEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%5000 + 1
		cfg := Config{RunLen: 128, SampleSize: 16, Seed: seed}
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63n(1000)
		}
		sb, err := NewStreamBuilder[int64](cfg)
		if err != nil {
			return false
		}
		if err := sb.AddBatch(xs); err != nil {
			return false
		}
		streamed, err := sb.Summary()
		if err != nil {
			return false
		}
		batch, err := BuildFromSlice(xs, cfg)
		if err != nil {
			return false
		}
		if streamed.SampleCount() != batch.SampleCount() || streamed.N() != batch.N() {
			return false
		}
		for i, v := range streamed.Samples() {
			if v != batch.Samples()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
