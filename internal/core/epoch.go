package core

import (
	"cmp"
	"fmt"

	"opaq/internal/merge"
)

// MergeAll combines any number of summaries built with the same step into
// one that covers the union of their data — the merge-set reassembly an
// epoch-based serving engine performs on every snapshot rebuild, where the
// set of live epochs changes as old ones age out. It is equivalent to
// left-folding Merge over the slice (the sample multiset, counts and
// extrema are order-independent) but performs a single k-way merge of the
// sample lists, O(total·log k) instead of O(total·k).
//
// Nil and empty summaries are skipped. At least one summary must be
// non-nil so the result's step is defined; all-empty inputs yield the
// canonical empty summary.
func MergeAll[T cmp.Ordered](sums []*Summary[T]) (*Summary[T], error) {
	// The reference step comes from the first non-empty summary — empty
	// ones are skipped below, so they must not dictate compatibility. An
	// all-empty input falls back to the first non-nil summary's step for
	// the canonical empty result.
	var step int64 = -1
	for _, s := range sums {
		if s != nil && s.n > 0 {
			step = s.step
			break
		}
	}
	if step < 0 {
		for _, s := range sums {
			if s != nil {
				step = s.step
				break
			}
		}
	}
	if step < 0 {
		return nil, fmt.Errorf("%w: MergeAll needs at least one summary", ErrConfig)
	}
	lists := make([][]T, 0, len(sums))
	out := &Summary[T]{step: step}
	for _, s := range sums {
		if s == nil || s.n == 0 {
			continue
		}
		if s.step != step {
			return nil, fmt.Errorf("%w: step %d vs %d (same RunLen/SampleSize ratio required)",
				ErrIncompatible, s.step, step)
		}
		lists = append(lists, s.samples)
		if out.n == 0 {
			out.min, out.max = s.min, s.max
		} else {
			if s.min < out.min {
				out.min = s.min
			}
			if s.max > out.max {
				out.max = s.max
			}
		}
		out.runs += s.runs
		out.n += s.n
		out.leftover += s.leftover
	}
	if out.n == 0 {
		return emptySummary[T](step), nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	// Draw the output from the merge-buffer pool: a serving engine rebuilds
	// a snapshot on every version bump, and the previous snapshot's stripe
	// summaries come back through RecycleSummary.
	out.samples = merge.KWayInto(getSamples[T](total), lists)
	return out, nil
}
