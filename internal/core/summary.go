package core

import (
	"cmp"
	"fmt"
)

// Summary is the product of OPAQ's sample phase: the sorted sample list
// plus the bookkeeping needed to turn it into deterministic quantile
// bounds. It is immutable after construction; all methods are safe for
// concurrent use.
type Summary[T cmp.Ordered] struct {
	samples  []T   // merged sorted sample list (length Σ sᵢ over runs)
	step     int64 // m/s: data elements represented per sample point
	runs     int64 // r: number of runs merged in
	n        int64 // total data elements observed
	leftover int64 // elements in ragged run tails not covered by a sub-run
	min, max T     // exact extrema of the observed data
}

// Bounds is a deterministic enclosure of one true quantile value.
type Bounds[T cmp.Ordered] struct {
	// Phi is the quantile fraction in (0, 1].
	Phi float64
	// Rank is ψ = ⌈Phi·n⌉, the 1-based rank of the true quantile.
	Rank int64
	// Lower and Upper satisfy Lower ≤ e_Phi ≤ Upper.
	Lower, Upper T
	// MaxBelow bounds the number of data elements strictly between Lower
	// and the true quantile (Lemma 1: ≤ n/s for divisible runs).
	MaxBelow int64
	// MaxAbove bounds the number of data elements strictly between the true
	// quantile and Upper (Lemma 2).
	MaxAbove int64
}

// emptySummary is the canonical zero-element summary, shared by every
// construction path — Build over an empty reader, StreamBuilder.Summary
// before any Add, NewSummary with N == 0 — so the empty behaviors are
// identical everywhere: N() is 0, Bounds/BoundsAtRank/Quantiles return
// ErrEmpty, RankBounds and CDF return zeros, ErrorBound is 0, and Min/Max
// are the element type's zero value (meaningless until n > 0; Bounds is
// the error-checked way to ask for extrema).
func emptySummary[T cmp.Ordered](step int64) *Summary[T] {
	return &Summary[T]{step: step}
}

// N returns the number of data elements the summary covers.
func (s *Summary[T]) N() int64 { return s.n }

// Runs returns r, the number of runs merged into the summary.
func (s *Summary[T]) Runs() int64 { return s.runs }

// Step returns m/s, the sub-run size.
func (s *Summary[T]) Step() int64 { return s.step }

// SampleCount returns the length of the sorted sample list.
func (s *Summary[T]) SampleCount() int { return len(s.samples) }

// Samples returns the sorted sample list. The caller must not modify it.
func (s *Summary[T]) Samples() []T { return s.samples }

// Min returns the exact minimum of the observed data. On an empty summary
// it is the element type's zero value and meaningless; callers that need
// an error on empty should use Bounds, which returns ErrEmpty.
func (s *Summary[T]) Min() T { return s.min }

// Max returns the exact maximum of the observed data. On an empty summary
// it is the element type's zero value and meaningless, as for Min.
func (s *Summary[T]) Max() T { return s.max }

// ErrorBound returns the maximum possible number of elements between a true
// quantile and either estimated bound — the quantity Lemmas 1 and 2 bound
// by n/s when every run is full. For ragged inputs (final run shorter than
// m, or runs shorter than one sub-run) the bound degrades by the number of
// uncovered elements, which this method accounts exactly.
func (s *Summary[T]) ErrorBound() int64 {
	if s.n == 0 {
		return 0
	}
	// See Bounds derivation: NL ≤ step + (r−1)(step−1) + leftover + 1.
	return s.step + (s.runs-1)*(s.step-1) + s.leftover + 1
}

// slack is the worst-case overcount of "elements less than sample i" beyond
// i·step: up to step−1 elements from each of the other r−1 runs' partial
// sub-runs (paper, Appendix A, Results 3–4) plus every uncovered leftover
// element.
func (s *Summary[T]) slack() int64 {
	return (s.runs-1)*(s.step-1) + s.leftover
}

// Bounds returns the deterministic enclosure of the φ-quantile. φ must lie
// in (0, 1]; φ = 1 is the maximum. The true φ-quantile is the element of
// rank ⌈φ·n⌉ in sorted order (the paper's ψ = φ·n with rounding up so that
// φ→0⁺ maps to the minimum and φ=1 to the maximum).
func (s *Summary[T]) Bounds(phi float64) (Bounds[T], error) {
	var b Bounds[T]
	if s.n == 0 {
		return b, ErrEmpty
	}
	// NaN fails every comparison, so the validity check must be phrased
	// positively — `phi <= 0 || phi > 1` would wave NaN through and turn
	// it into a garbage rank.
	if !(phi > 0 && phi <= 1) {
		return b, fmt.Errorf("%w: phi=%g", ErrPhi, phi)
	}
	rank := int64(phi * float64(s.n))
	if float64(rank) < phi*float64(s.n) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	return s.BoundsAtRank(rank)
}

// BoundsAtRank returns the enclosure of the element with 1-based rank ψ.
//
// Lower bound (paper formulas 1–3): e_l is the i-th sorted sample with i
// the largest index such that the maximum possible number of elements
// strictly less than sample i — i·step + (r−1)(step−1) + leftover — is
// at most ψ−1, so sample i cannot sort after the rank-ψ element. When no
// sample qualifies (small ψ), the exact dataset minimum is the bound.
//
// Upper bound (paper formulas 4–5): e_u is the j-th sorted sample with
// j = ⌈ψ/step⌉; at least j·step ≥ ψ elements are ≤ sample j (Appendix A,
// Result 2), so sample j cannot sort before the rank-ψ element. When
// j exceeds the sample count (ψ in the uncovered tail), the exact dataset
// maximum is the bound.
func (s *Summary[T]) BoundsAtRank(rank int64) (Bounds[T], error) {
	var b Bounds[T]
	if s.n == 0 {
		return b, ErrEmpty
	}
	if rank < 1 || rank > s.n {
		return b, fmt.Errorf("%w: rank %d outside [1, %d]", ErrPhi, rank, s.n)
	}
	b.Rank = rank
	b.Phi = float64(rank) / float64(s.n)

	// Lower bound index i (1-based into samples); 0 means "use min".
	i := (rank - 1 - s.slack()) / s.step // floor for non-negative numerator
	if rank-1-s.slack() < 0 {
		i = 0
	}
	if i > int64(len(s.samples)) {
		i = int64(len(s.samples))
	}
	if i >= 1 {
		b.Lower = s.samples[i-1]
	} else {
		b.Lower = s.min
	}
	// Lemma 1 accounting: at least i·step elements are ≤ e_l, so at most
	// rank − i·step − 1 lie strictly between e_l and the true quantile
	// (≤ n/s for full runs; ErrorBound gives the exact worst case).
	b.MaxBelow = rank - i*s.step - 1
	if b.MaxBelow < 0 {
		b.MaxBelow = 0
	}

	// Upper bound index j = ⌈rank/step⌉; beyond the list means "use max".
	j := (rank + s.step - 1) / s.step
	if j <= int64(len(s.samples)) {
		b.Upper = s.samples[j-1]
		// At most j·step + slack elements are < e_u ⇒ at most that many −
		// rank lie strictly between the true quantile and e_u.
		b.MaxAbove = j*s.step + s.slack() - rank
	} else {
		b.Upper = s.max
		b.MaxAbove = s.n - rank
	}
	if b.MaxAbove < 0 {
		b.MaxAbove = 0
	}
	if b.MaxAbove > s.n-rank {
		b.MaxAbove = s.n - rank
	}
	return b, nil
}

// Quantiles returns bounds for the q−1 equally spaced quantiles
// φ = 1/q, 2/q, …, (q−1)/q (e.g. q=10 yields the paper's dectiles).
// Each additional quantile costs O(1) beyond the shared sample list —
// the paper's "constant extra time per quantile".
func (s *Summary[T]) Quantiles(q int) ([]Bounds[T], error) {
	if q < 2 {
		return nil, fmt.Errorf("%w: need q ≥ 2, got %d", ErrPhi, q)
	}
	if s.n == 0 {
		return nil, ErrEmpty
	}
	out := make([]Bounds[T], 0, q-1)
	for i := 1; i < q; i++ {
		b, err := s.Bounds(float64(i) / float64(q))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// RankBounds returns deterministic bounds [lo, hi] on the number of data
// elements ≤ x, without touching the data again (paper, Section 4: "the
// sorted sample list can obviously be used to estimate the rank of any
// arbitrary element").
func (s *Summary[T]) RankBounds(x T) (lo, hi int64) {
	if s.n == 0 {
		return 0, 0
	}
	if x < s.min {
		return 0, 0 // exact: nothing sorts below the tracked minimum
	}
	if x >= s.max {
		return s.n, s.n // exact: everything is ≤ the tracked maximum
	}
	// kLE: samples ≤ x; each closes a disjoint sub-run of step elements ≤ it.
	// Open-coded upper-bound binary search over a pre-hoisted slice, so the
	// per-probe cost is pure compare-and-halve with no closure indirection;
	// BenchmarkRankBounds tracks this path against the sort.Search form it
	// replaced (a few percent on cache-resident lists; the search is
	// memory-bound beyond that).
	samples := s.samples
	lo64, hi64 := 0, len(samples)
	for lo64 < hi64 {
		h := int(uint(lo64+hi64) >> 1)
		if samples[h] <= x {
			lo64 = h + 1
		} else {
			hi64 = h
		}
	}
	kLE := int64(lo64)
	lo = kLE * s.step
	// Per run, at most step−1 elements of the next partial sub-run are ≤ x
	// without their closing sample being ≤ x; leftovers are unaccounted.
	hi = kLE*s.step + s.runs*(s.step-1) + s.leftover
	if hi > s.n {
		hi = s.n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Merge combines two summaries built with the same step into one that
// covers the union of their data (paper, Section 4: incremental handling of
// new data — keep the old sorted samples, sample the new runs, merge).
// Neither input is modified.
func Merge[T cmp.Ordered](a, b *Summary[T]) (*Summary[T], error) {
	if a.n == 0 {
		return b, nil
	}
	if b.n == 0 {
		return a, nil
	}
	if a.step != b.step {
		return nil, fmt.Errorf("%w: step %d vs %d (same RunLen/SampleSize ratio required)",
			ErrIncompatible, a.step, b.step)
	}
	merged := getSamples[T](len(a.samples) + len(b.samples))
	i, j := 0, 0
	for i < len(a.samples) && j < len(b.samples) {
		if b.samples[j] < a.samples[i] {
			merged = append(merged, b.samples[j])
			j++
		} else {
			merged = append(merged, a.samples[i])
			i++
		}
	}
	merged = append(merged, a.samples[i:]...)
	merged = append(merged, b.samples[j:]...)
	out := &Summary[T]{
		samples:  merged,
		step:     a.step,
		runs:     a.runs + b.runs,
		n:        a.n + b.n,
		leftover: a.leftover + b.leftover,
		min:      a.min,
		max:      a.max,
	}
	if b.min < out.min {
		out.min = b.min
	}
	if b.max > out.max {
		out.max = b.max
	}
	return out, nil
}

// CDF returns deterministic bounds on the empirical cumulative
// distribution at x: the fraction of elements ≤ x lies in [lo, hi]. It is
// RankBounds normalized by n — the estimate a cost-based optimizer feeds
// into predicate selectivity.
func (s *Summary[T]) CDF(x T) (lo, hi float64) {
	if s.n == 0 {
		return 0, 0
	}
	rl, rh := s.RankBounds(x)
	return float64(rl) / float64(s.n), float64(rh) / float64(s.n)
}
