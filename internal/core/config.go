// Package core implements OPAQ — the one-pass deterministic quantile
// estimation algorithm of Alsabti, Ranka and Singh (VLDB 1997) — for
// disk-resident data.
//
// The algorithm has two phases (paper, Section 2):
//
//  1. Sample phase: the data is consumed as r runs of m elements. From each
//     run the s regular sample points — the elements of exact local ranks
//     m/s, 2m/s, …, m — are extracted with an O(m log s) multi-selection,
//     and the r sorted sample lists are merged into one sorted list.
//  2. Quantile phase: for a quantile of rank ψ = ⌈φ·n⌉, two indices into
//     the sorted sample list give deterministic bounds e_l ≤ e_φ ≤ e_u with
//     at most n/s data elements between the true quantile and either bound
//     (Lemmas 1–3), independent of the data distribution.
//
// A Summary retains the sorted sample list, so additional quantiles cost
// O(1) each, arbitrary keys can be rank-bounded without another pass, and
// summaries over disjoint data can be merged for incremental maintenance
// (paper, Section 4).
package core

import (
	"errors"
	"fmt"
	"runtime"
)

// Sentinel errors returned (wrapped) by package core.
var (
	// ErrConfig indicates an invalid Config.
	ErrConfig = errors.New("core: invalid config")
	// ErrEmpty indicates an operation on a summary of zero elements.
	ErrEmpty = errors.New("core: empty dataset")
	// ErrPhi indicates a quantile fraction outside (0, 1].
	ErrPhi = errors.New("core: quantile fraction out of range")
	// ErrIncompatible indicates summaries that cannot be merged.
	ErrIncompatible = errors.New("core: incompatible summaries")
)

// Config fixes the two parameters of the sample phase. In the paper's
// notation, RunLen is m (the number of elements that fit in memory at
// once) and SampleSize is s (regular samples per run). The memory the
// algorithm needs is m + r·s elements (one run plus all sample lists); the
// accuracy guarantee is that at most n/s ≈ r·m/s elements separate a true
// quantile from either estimated bound.
type Config struct {
	// RunLen is m, the run length in elements. Must be positive and
	// divisible by SampleSize.
	RunLen int
	// SampleSize is s, the number of regular samples per run. Must be
	// positive. For estimating q quantiles with good bounds the paper
	// recommends s ≥ 2q.
	SampleSize int
	// Seed drives the randomized selection inside the sample phase. The
	// output bounds are deterministic regardless of Seed (selection returns
	// exact order statistics); the seed only perturbs in-memory reordering.
	// Each run derives its own selection RNG from (Seed, run index), so the
	// summary does not depend on how runs are scheduled across workers.
	Seed int64
	// Workers bounds the concurrency of the sample phase. 0 (the default)
	// uses runtime.GOMAXPROCS(0); 1 forces the plain sequential scan; any
	// larger value runs a prefetching producer feeding that many sampling
	// workers. The resulting Summary is bit-identical for every setting —
	// only wall-clock time and peak memory (≈ 2·Workers runs in flight
	// instead of one) change. Must not be negative.
	Workers int
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if c.RunLen <= 0 {
		return fmt.Errorf("%w: RunLen must be positive, got %d", ErrConfig, c.RunLen)
	}
	if c.SampleSize <= 0 {
		return fmt.Errorf("%w: SampleSize must be positive, got %d", ErrConfig, c.SampleSize)
	}
	if c.SampleSize > c.RunLen {
		return fmt.Errorf("%w: SampleSize %d exceeds RunLen %d", ErrConfig, c.SampleSize, c.RunLen)
	}
	if c.RunLen%c.SampleSize != 0 {
		return fmt.Errorf("%w: SampleSize %d must divide RunLen %d", ErrConfig, c.SampleSize, c.RunLen)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: Workers must be non-negative, got %d", ErrConfig, c.Workers)
	}
	return nil
}

// EffectiveWorkers resolves the Workers policy (0 → GOMAXPROCS, minimum
// 1) — the single source of truth for every pass driven by this Config,
// including extsort's bucket-sort pass.
func (c Config) EffectiveWorkers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return max(c.Workers, 1)
}

// Step returns m/s, the number of data elements represented by each sample
// point (the "sub-run" size of the paper).
func (c Config) Step() int { return c.RunLen / c.SampleSize }
