package core

import (
	"cmp"
	"math/bits"
)

// Merge-set compaction. A long-lived epoch lifecycle accumulates one
// summary per seal, so the merge set a snapshot rebuild reassembles — and
// the ring a retention policy walks — grows linearly with time. Because
// OPAQ summaries are mergeable without information loss (MergeAll: the
// sample multiset, counts and extrema are order-independent), adjacent
// summaries can be pre-merged at any time without changing a single
// answer. CompactSummaries does so binary-buddy style, the size-tiered
// scheme of LSM trees and binomial heaps: summaries whose element counts
// share a power-of-two tier merge pairwise, each merged pair lands one
// tier up and may cascade into its neighbor, and the fixpoint holds
// O(log N) summaries.
//
// Only ADJACENT summaries merge, so a chronologically ordered set stays
// chronologically ordered — each output covers a contiguous span of the
// inputs — and age- or count-based retention keeps working on the
// compacted set.

// SizeTier returns the binary-buddy size tier of an element count:
// ⌊log₂ n⌋, with n ≤ 1 mapping to tier 0. Merging two tier-t summaries
// always yields a tier-(t+1) summary (the sum of two values in
// [2ᵗ, 2ᵗ⁺¹) lies in [2ᵗ⁺¹, 2ᵗ⁺²)), which is what makes greedy buddy
// merging behave like a binary counter and bounds the compacted set's
// size logarithmically.
func SizeTier(n int64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n)) - 1
}

// PlanBuddies computes a greedy binary-buddy compaction plan over an
// ordered (oldest-first) list of element counts. Scanning left to right,
// an adjacent pair merges when the older entry's tier is at or below the
// newer entry's — same-tier buddies (the binary-counter core) and
// undersized older entries that would otherwise stall behind a larger
// newer neighbor both fold — and passes repeat until a fixpoint. At the
// fixpoint tiers strictly decrease from oldest to newest, so the plan
// holds at most one entry per occupied tier: ≤ log₂(ΣN)+1 entries.
//
// The result is the ordered list of half-open index spans [start, end)
// into ns, covering all of ns; a span of width 1 is an entry left alone.
// A nil or empty ns yields an empty plan.
func PlanBuddies(ns []int64) [][2]int {
	return PlanBuddiesBy(ns,
		func(n int64) int64 { return n },
		func(a, b int64) int64 { return a + b },
		nil)
}

// PlanBuddiesBy is the generalized planner behind PlanBuddies: entries
// carry arbitrary bookkeeping E, size extracts the element count the
// tier rule compares, fold combines two entries' bookkeeping when their
// spans merge, and gate — when non-nil — may veto an otherwise eligible
// merge (an engine uses it to cap a merged epoch's covered time or seal
// span so retention fidelity survives compaction). The greedy passes,
// the tier rule and the fixpoint iteration are exactly PlanBuddies'.
//
// A gate weakens the fixpoint: vetoed pairs may leave adjacent
// non-decreasing tiers, so the depth bound becomes "logarithmic per
// gated region" rather than globally logarithmic — the caller trades
// depth for whatever invariant the gate protects.
func PlanBuddiesBy[E any](items []E, size func(E) int64, fold func(a, b E) E, gate func(older, newer E) bool) [][2]int {
	spans := make([][2]int, len(items))
	work := append([]E(nil), items...)
	for i := range items {
		spans[i] = [2]int{i, i + 1}
	}
	for changed := true; changed; {
		changed = false
		// In-place compaction of spans/work is safe: each output index
		// trails the input indices it reads.
		outS := spans[:0]
		outW := work[:0]
		i := 0
		for i < len(work) {
			if i+1 < len(work) && SizeTier(size(work[i])) <= SizeTier(size(work[i+1])) &&
				(gate == nil || gate(work[i], work[i+1])) {
				outS = append(outS, [2]int{spans[i][0], spans[i+1][1]})
				outW = append(outW, fold(work[i], work[i+1]))
				i += 2
				changed = true
			} else {
				outS = append(outS, spans[i])
				outW = append(outW, work[i])
				i++
			}
		}
		spans, work = outS, outW
	}
	return spans
}

// MergeSpans executes a compaction plan: each span of width > 1 is
// reassembled with MergeAll into a single summary covering the span's
// union; width-1 spans are passed through by reference. Summaries must
// be non-nil and share a step; the inputs are not modified. It is the
// execute step shared by CompactSummaries and callers that plan with
// PlanBuddiesBy under extra constraints (an engine gating merged spans
// for retention fidelity).
//
// The merged output answers every quantile, rank and selectivity query
// byte-identically to the unmerged set — compaction changes the merge
// set's shape, never its content.
func MergeSpans[T cmp.Ordered](sums []*Summary[T], spans [][2]int) ([]*Summary[T], error) {
	out := make([]*Summary[T], len(spans))
	for i, sp := range spans {
		if sp[1]-sp[0] == 1 {
			out[i] = sums[sp[0]]
			continue
		}
		m, err := MergeAll(sums[sp[0]:sp[1]])
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// CompactSummaries plans with PlanBuddies over the summaries' element
// counts and executes with MergeSpans. The returned spans index the
// ORIGINAL slice so callers tracking per-summary metadata (epoch IDs,
// seal times) can fold it along the same boundaries.
func CompactSummaries[T cmp.Ordered](sums []*Summary[T]) ([]*Summary[T], [][2]int, error) {
	ns := make([]int64, len(sums))
	for i, s := range sums {
		ns[i] = s.N()
	}
	spans := PlanBuddies(ns)
	if len(spans) == len(sums) {
		return sums, spans, nil
	}
	out, err := MergeSpans(sums, spans)
	if err != nil {
		return nil, nil, err
	}
	return out, spans, nil
}
