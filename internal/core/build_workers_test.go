package core

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"testing"

	"opaq/internal/datagen"
	"opaq/internal/runio"
)

// workerMatrix is the worker-count sweep every determinism test runs:
// sequential, small pool, odd pool, and whatever the host offers.
func workerMatrix() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// buildWith builds a summary of xs at the given worker count over a
// file-like scan (MemoryDataset hands out fresh run slices, as the disk
// reader does).
func buildWith(t *testing.T, xs []int64, cfg Config, workers int) *Summary[int64] {
	t.Helper()
	cfg.Workers = workers
	sum, err := BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return sum
}

// TestBuildDeterministicAcrossWorkers asserts the tentpole guarantee: the
// summary is bit-identical for every worker count, on every distribution
// the paper evaluates, including ragged inputs (n not divisible by RunLen).
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	zipf, err := datagen.NewZipf(11, 5000, 0.86)
	if err != nil {
		t.Fatal(err)
	}
	selfSim, err := datagen.NewSelfSimilar(12, 1<<40, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	datasets := map[string][]int64{
		"uniform":     datagen.Generate(datagen.NewUniform(10, 1<<40), 60_000),
		"zipf":        datagen.Generate(zipf, 60_000),
		"selfsimilar": datagen.Generate(selfSim, 60_000),
		"ragged":      datagen.Generate(datagen.NewUniform(13, 1<<30), 60_000-4_321),
	}
	cfg := Config{RunLen: 4096, SampleSize: 256, Seed: 42}
	for name, xs := range datasets {
		t.Run(name, func(t *testing.T) {
			want := buildWith(t, xs, cfg, 1).Parts()
			for _, w := range workerMatrix()[1:] {
				got := buildWith(t, xs, cfg, w).Parts()
				if !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d: summary diverged from sequential build", w)
				}
			}
		})
	}
}

// TestBuildDeterministicAcrossSeeds re-checks that the concurrent path, like
// the sequential one, returns exact order statistics: different seeds give
// the same summary at every worker count.
func TestBuildDeterministicAcrossSeeds(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(3, 1<<35), 30_000)
	cfg := Config{RunLen: 3000, SampleSize: 100}
	var want SummaryParts[int64]
	first := true
	for _, seed := range []int64{0, 1, -99, 1 << 40} {
		for _, w := range workerMatrix() {
			c := cfg
			c.Seed = seed
			got := buildWith(t, xs, c, w).Parts()
			if first {
				want, first = got, false
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("seed=%d workers=%d: summary diverged", seed, w)
			}
		}
	}
}

// TestStreamBuilderMatchesConcurrentBuild pins the cross-path guarantee:
// push-based streaming, sequential pull, and the concurrent pipeline all
// produce the same bits.
func TestStreamBuilderMatchesConcurrentBuild(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(7, 1<<30), 25_000) // ragged tail
	cfg := Config{RunLen: 2048, SampleSize: 128, Seed: 5}
	sb, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	streamed, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerMatrix() {
		built := buildWith(t, xs, cfg, w)
		if !reflect.DeepEqual(streamed.Parts(), built.Parts()) {
			t.Errorf("workers=%d: stream and build summaries diverged", w)
		}
	}
}

// errReader delivers a few good runs, then fails.
type errReader struct {
	runs int
	m    int
}

func (e *errReader) NextRun() ([]int64, error) {
	if e.runs == 0 {
		return nil, fmt.Errorf("disk on fire")
	}
	e.runs--
	run := make([]int64, e.m)
	return run, nil
}

func (e *errReader) Count() int64 { return int64(e.runs * e.m) }
func (e *errReader) RunLen() int  { return e.m }
func (e *errReader) Close() error { return nil }

// TestBuildConcurrentPropagatesReadError checks the pipeline shuts down
// cleanly and surfaces a mid-scan read failure at every worker count.
func TestBuildConcurrentPropagatesReadError(t *testing.T) {
	for _, w := range workerMatrix() {
		cfg := Config{RunLen: 64, SampleSize: 8, Workers: w}
		_, err := Build[int64](&errReader{runs: 5, m: 64}, cfg)
		if err == nil {
			t.Fatalf("workers=%d: expected read error", w)
		}
	}
}

// TestBuildConcurrentEmpty checks the empty-dataset path through the
// pipeline.
func TestBuildConcurrentEmpty(t *testing.T) {
	for _, w := range workerMatrix() {
		cfg := Config{RunLen: 64, SampleSize: 8, Workers: w}
		sum, err := BuildFromSlice[int64](nil, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if sum.N() != 0 {
			t.Fatalf("workers=%d: n=%d", w, sum.N())
		}
	}
}

// TestBuildConcurrentPrewrappedPrefetch verifies Build does not double-wrap
// a reader the caller already prefetches.
func TestBuildConcurrentPrewrappedPrefetch(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(21, 1<<30), 20_000)
	cfg := Config{RunLen: 1024, SampleSize: 64, Seed: 9, Workers: 4}
	ds := runio.NewMemoryDataset(xs, 8)
	rr, err := ds.Runs(cfg.RunLen)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(runio.Prefetch(rr, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := buildWith(t, xs, cfg, 1)
	if !reflect.DeepEqual(want.Parts(), sum.Parts()) {
		t.Error("prefetch-wrapped build diverged from sequential")
	}
}

// TestConfigWorkersValidation pins the Workers constraint.
func TestConfigWorkersValidation(t *testing.T) {
	cfg := Config{RunLen: 8, SampleSize: 2, Workers: -1}
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative Workers: got %v", err)
	}
}

// eofCheckReader wraps a reader and records whether NextRun is called again
// after EOF (the pipeline must not).
type eofCheckReader struct {
	inner runio.RunReader[int64]
	eof   bool
	after bool
}

func (r *eofCheckReader) NextRun() ([]int64, error) {
	if r.eof {
		r.after = true
	}
	run, err := r.inner.NextRun()
	if err == io.EOF {
		r.eof = true
	}
	return run, err
}

func (r *eofCheckReader) Count() int64 { return r.inner.Count() }
func (r *eofCheckReader) RunLen() int  { return r.inner.RunLen() }
func (r *eofCheckReader) Close() error { return r.inner.Close() }

// TestBuildConcurrentStopsAtEOF ensures the producer stops reading once the
// stream ends.
func TestBuildConcurrentStopsAtEOF(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(31, 1<<30), 10_000)
	ds := runio.NewMemoryDataset(xs, 8)
	rr, err := ds.Runs(512)
	if err != nil {
		t.Fatal(err)
	}
	chk := &eofCheckReader{inner: rr}
	if _, err := Build[int64](chk, Config{RunLen: 512, SampleSize: 64, Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if chk.after {
		t.Error("NextRun called after EOF")
	}
}
