package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"opaq/internal/datagen"
	"opaq/internal/runio"
)

// trueQuantile returns the element of 1-based rank ⌈phi·n⌉ of sorted xs.
func trueQuantile(sorted []int64, phi float64) int64 {
	n := len(sorted)
	rank := int(phi * float64(n))
	if float64(rank) < phi*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// countBetween counts elements of sorted xs strictly inside (a, b).
func countBetween(sorted []int64, a, b int64) int64 {
	lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] > a })
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= b })
	if hi < lo {
		return 0
	}
	return int64(hi - lo)
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{RunLen: 100, SampleSize: 10}, true},
		{Config{RunLen: 100, SampleSize: 100}, true},
		{Config{RunLen: 0, SampleSize: 10}, false},
		{Config{RunLen: 100, SampleSize: 0}, false},
		{Config{RunLen: 100, SampleSize: 7}, false},  // 7 ∤ 100
		{Config{RunLen: 10, SampleSize: 100}, false}, // s > m
		{Config{RunLen: -5, SampleSize: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrConfig) {
			t.Errorf("Validate error %v should wrap ErrConfig", err)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	s, err := BuildFromSlice[int64](nil, Config{RunLen: 8, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 0 {
		t.Fatalf("N = %d", s.N())
	}
	if _, err := s.Bounds(0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Bounds on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Quantiles(10); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Quantiles on empty = %v, want ErrEmpty", err)
	}
}

func TestBoundsPhiValidation(t *testing.T) {
	s, err := BuildFromSlice([]int64{1, 2, 3, 4}, Config{RunLen: 4, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0, -0.5, 1.01, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := s.Bounds(phi); !errors.Is(err, ErrPhi) {
			t.Errorf("Bounds(%g) = %v, want ErrPhi", phi, err)
		}
	}
	if _, err := s.Bounds(1); err != nil {
		t.Errorf("Bounds(1) should be the maximum, got error %v", err)
	}
}

func TestContainmentTinyExact(t *testing.T) {
	// 16 known values, m=8, s=4 → step 2, r=2.
	xs := []int64{15, 3, 9, 1, 12, 7, 5, 11, 2, 14, 6, 10, 4, 8, 16, 13}
	cfg := Config{RunLen: 8, SampleSize: 4}
	s, err := BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		b, err := s.Bounds(phi)
		if err != nil {
			t.Fatal(err)
		}
		e := trueQuantile(sorted, phi)
		if b.Lower > e || e > b.Upper {
			t.Errorf("phi=%g: true %d outside [%d, %d]", phi, e, b.Lower, b.Upper)
		}
	}
}

func TestLemmasOnPaperWorkloads(t *testing.T) {
	// Full-scale shape of the paper's accuracy claims at test size:
	// n=100k, m=10k, s in {100, 1000}.
	for _, dist := range []string{"uniform", "zipf"} {
		for _, s := range []int{100, 1000} {
			xs, err := datagen.PaperDataset(dist, 100_000, 7)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{RunLen: 10_000, SampleSize: s}
			sum, err := BuildFromSlice(xs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sorted := append([]int64(nil), xs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			n := int64(len(xs))
			lemmaBound := sum.ErrorBound() // ≈ n/s
			if lim := n / int64(s) * 2; lemmaBound > lim {
				t.Fatalf("%s s=%d: ErrorBound %d implausibly large (> 2n/s = %d)", dist, s, lemmaBound, lim)
			}
			for q := 1; q <= 9; q++ {
				phi := float64(q) / 10
				b, err := sum.Bounds(phi)
				if err != nil {
					t.Fatal(err)
				}
				e := trueQuantile(sorted, phi)
				if b.Lower > e || e > b.Upper {
					t.Fatalf("%s s=%d phi=%g: true %d outside [%d, %d]", dist, s, phi, e, b.Lower, b.Upper)
				}
				// Lemma 1: elements strictly between lower bound and truth.
				if got := countBetween(sorted, b.Lower, e); got > lemmaBound {
					t.Errorf("%s s=%d phi=%g: %d elements below gap > bound %d", dist, s, phi, got, lemmaBound)
				}
				// Lemma 2.
				if got := countBetween(sorted, e, b.Upper); got > lemmaBound {
					t.Errorf("%s s=%d phi=%g: %d elements above gap > bound %d", dist, s, phi, got, lemmaBound)
				}
				// Lemma 3.
				if got := countBetween(sorted, b.Lower, b.Upper); got > 2*lemmaBound {
					t.Errorf("%s s=%d phi=%g: enclosure holds %d > 2×bound %d", dist, s, phi, got, 2*lemmaBound)
				}
				// Reported per-quantile accounting must also hold.
				if got := countBetween(sorted, b.Lower, e); got > b.MaxBelow {
					t.Errorf("%s s=%d phi=%g: MaxBelow=%d but %d observed", dist, s, phi, b.MaxBelow, got)
				}
				if got := countBetween(sorted, e, b.Upper); got > b.MaxAbove {
					t.Errorf("%s s=%d phi=%g: MaxAbove=%d but %d observed", dist, s, phi, b.MaxAbove, got)
				}
			}
		}
	}
}

// Property: containment and Lemma 3 hold for arbitrary data and any valid
// configuration, including ragged final runs.
func TestQuickLemmas(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, rawN uint16, stepPow, sPow uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(rawN)%3000
		s := 1 << (sPow % 5)       // 1..16
		step := 1 << (stepPow % 4) // 1..8
		m := s * step
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63n(500) // duplicates likely
		}
		sum, err := BuildFromSlice(xs, Config{RunLen: m, SampleSize: s, Seed: seed})
		if err != nil {
			return false
		}
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		bound := sum.ErrorBound()
		for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 1} {
			b, err := sum.Bounds(phi)
			if err != nil {
				return false
			}
			e := trueQuantile(sorted, phi)
			if b.Lower > e || e > b.Upper {
				return false
			}
			if countBetween(sorted, b.Lower, e) > bound {
				return false
			}
			if countBetween(sorted, e, b.Upper) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxTracked(t *testing.T) {
	xs := []int64{5, -100, 3, 999, 7, 7, 7, 1}
	s, err := BuildFromSlice(xs, Config{RunLen: 4, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min() != -100 || s.Max() != 999 {
		t.Fatalf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	// phi=1 must return max exactly.
	b, err := s.Bounds(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Upper != 999 {
		t.Fatalf("Bounds(1).Upper = %d, want 999", b.Upper)
	}
}

func TestQuantilesDectiles(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(3, 1_000_000), 50_000)
	s, err := BuildFromSlice(xs, Config{RunLen: 5000, SampleSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := s.Quantiles(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 9 {
		t.Fatalf("Quantiles(10) returned %d bounds", len(bs))
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, b := range bs {
		e := trueQuantile(sorted, float64(i+1)/10)
		if b.Lower > e || e > b.Upper {
			t.Errorf("dectile %d0%%: true %d outside [%d, %d]", i+1, e, b.Lower, b.Upper)
		}
	}
	// Monotone: successive lower bounds and upper bounds must not decrease.
	for i := 1; i < len(bs); i++ {
		if bs[i].Lower < bs[i-1].Lower || bs[i].Upper < bs[i-1].Upper {
			t.Errorf("bounds not monotone at dectile %d", i+1)
		}
	}
	if _, err := s.Quantiles(1); !errors.Is(err, ErrPhi) {
		t.Error("Quantiles(1) should fail")
	}
}

func TestRankBounds(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(9, 100_000), 20_000)
	s, err := BuildFromSlice(xs, Config{RunLen: 2000, SampleSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rankLE := func(x int64) int64 {
		return int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > x }))
	}
	probes := []int64{-1, 0, 50_000, 99_999, 1 << 40, sorted[0], sorted[len(sorted)-1], sorted[777]}
	for _, x := range probes {
		lo, hi := s.RankBounds(x)
		truth := rankLE(x)
		if truth < lo || truth > hi {
			t.Errorf("RankBounds(%d) = [%d,%d], true rank %d outside", x, lo, hi, truth)
		}
	}
	// Width of the rank enclosure is bounded by r·step + leftovers.
	lo, hi := s.RankBounds(50_000)
	if width := hi - lo; width > s.Runs()*s.Step() {
		t.Errorf("rank enclosure width %d exceeds r·step = %d", width, s.Runs()*s.Step())
	}
}

func TestMergeEquivalence(t *testing.T) {
	// Summary(A ∪ B) must equal Merge(Summary(A), Summary(B)) when both
	// halves are run-aligned: identical samples and bounds.
	cfg := Config{RunLen: 1000, SampleSize: 100}
	xs := datagen.Generate(datagen.NewUniform(11, 1_000_000), 10_000)
	whole, err := BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildFromSlice(xs[:6000], cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFromSlice(xs[6000:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != whole.N() || m.Runs() != whole.Runs() || m.SampleCount() != whole.SampleCount() {
		t.Fatalf("merged N/runs/samples = %d/%d/%d, whole = %d/%d/%d",
			m.N(), m.Runs(), m.SampleCount(), whole.N(), whole.Runs(), whole.SampleCount())
	}
	for i, v := range m.Samples() {
		if v != whole.Samples()[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, v, whole.Samples()[i])
		}
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		bm, _ := m.Bounds(phi)
		bw, _ := whole.Bounds(phi)
		if bm.Lower != bw.Lower || bm.Upper != bw.Upper {
			t.Errorf("phi=%g: merged bounds [%d,%d] != whole [%d,%d]",
				phi, bm.Lower, bm.Upper, bw.Lower, bw.Upper)
		}
	}
}

func TestMergeIncompatibleStep(t *testing.T) {
	a, _ := BuildFromSlice([]int64{1, 2, 3, 4}, Config{RunLen: 4, SampleSize: 2})
	b, _ := BuildFromSlice([]int64{5, 6, 7, 8}, Config{RunLen: 4, SampleSize: 4})
	if _, err := Merge(a, b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("Merge with different steps = %v, want ErrIncompatible", err)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a, _ := BuildFromSlice([]int64{1, 2, 3, 4}, Config{RunLen: 4, SampleSize: 2})
	e, _ := BuildFromSlice[int64](nil, Config{RunLen: 4, SampleSize: 2})
	m, err := Merge(a, e)
	if err != nil || m.N() != 4 {
		t.Fatalf("Merge(a, empty) = %v, %v", m, err)
	}
	m2, err := Merge(e, a)
	if err != nil || m2.N() != 4 {
		t.Fatalf("Merge(empty, a) = %v, %v", m2, err)
	}
}

// Property: incremental merge over a random split preserves containment.
func TestQuickMergeContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, cut uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2000
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63n(10_000)
		}
		c := int(cut) % n
		cfg := Config{RunLen: 100, SampleSize: 10}
		a, err := BuildFromSlice(xs[:c], cfg)
		if err != nil {
			return false
		}
		b, err := BuildFromSlice(xs[c:], cfg)
		if err != nil {
			return false
		}
		m, err := Merge(a, b)
		if err != nil {
			return false
		}
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, phi := range []float64{0.25, 0.5, 0.75} {
			bb, err := m.Bounds(phi)
			if err != nil {
				return false
			}
			e := trueQuantile(sorted, phi)
			if bb.Lower > e || e > bb.Upper {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestExactQuantile(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(13, 1_000_000), 30_000)
	ds := runio.NewMemoryDataset(xs, 8)
	cfg := Config{RunLen: 3000, SampleSize: 300}
	s, err := BuildFromDataset[int64](ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, phi := range []float64{0.1, 0.5, 0.9, 1.0} {
		got, err := ExactQuantile[int64](ds, s, phi)
		if err != nil {
			t.Fatal(err)
		}
		if want := trueQuantile(sorted, phi); got != want {
			t.Errorf("ExactQuantile(%g) = %d, want %d", phi, got, want)
		}
	}
}

func TestExactQuantileWithHeavyDuplicates(t *testing.T) {
	xs := make([]int64, 10_000)
	rng := rand.New(rand.NewSource(4))
	for i := range xs {
		xs[i] = rng.Int63n(5) // only 5 distinct values
	}
	ds := runio.NewMemoryDataset(xs, 8)
	s, err := BuildFromDataset[int64](ds, Config{RunLen: 1000, SampleSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, phi := range []float64{0.2, 0.5, 0.8} {
		got, err := ExactQuantile[int64](ds, s, phi)
		if err != nil {
			t.Fatal(err)
		}
		if want := trueQuantile(sorted, phi); got != want {
			t.Errorf("phi=%g: got %d, want %d", phi, got, want)
		}
	}
}

func TestPlanConfig(t *testing.T) {
	p, err := PlanConfig(10_000_000, 100_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Config.Validate(); err != nil {
		t.Fatalf("planned config invalid: %v", err)
	}
	if p.Config.SampleSize < 20 {
		t.Errorf("SampleSize %d < 2q", p.Config.SampleSize)
	}
	if p.MemoryElems > 100_000 {
		t.Errorf("plan exceeds memory budget: %d", p.MemoryElems)
	}
	// The planned config must actually work.
	xs := datagen.Generate(datagen.NewUniform(5, 1<<40), 100_000)
	cfgSmall, err := PlanConfig(int64(len(xs)), 20_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildFromSlice(xs, cfgSmall.Config)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != int64(len(xs)) {
		t.Fatalf("N = %d", s.N())
	}
}

func TestPlanConfigInfeasible(t *testing.T) {
	if _, err := PlanConfig(1_000_000_000, 100, 10); !errors.Is(err, ErrConfig) {
		t.Fatalf("tiny memory budget should fail with ErrConfig, got %v", err)
	}
	if _, err := PlanConfig(0, 100, 10); !errors.Is(err, ErrConfig) {
		t.Fatal("n=0 should fail")
	}
	if _, err := PlanConfig(100, 100, 0); !errors.Is(err, ErrConfig) {
		t.Fatal("q=0 should fail")
	}
}

func TestBuildRejectsMismatchedReader(t *testing.T) {
	ds := runio.NewMemoryDataset([]int64{1, 2, 3, 4}, 8)
	rr, err := ds.Runs(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(rr, Config{RunLen: 4, SampleSize: 2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("Build with mismatched run length = %v, want ErrConfig", err)
	}
}

func TestBoundsAtRankEdges(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(21, 1000), 1000)
	s, err := BuildFromSlice(xs, Config{RunLen: 100, SampleSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, rank := range []int64{1, 2, 500, 999, 1000} {
		b, err := s.BoundsAtRank(rank)
		if err != nil {
			t.Fatal(err)
		}
		e := sorted[rank-1]
		if b.Lower > e || e > b.Upper {
			t.Errorf("rank %d: true %d outside [%d,%d]", rank, e, b.Lower, b.Upper)
		}
	}
	if _, err := s.BoundsAtRank(0); !errors.Is(err, ErrPhi) {
		t.Error("rank 0 should fail")
	}
	if _, err := s.BoundsAtRank(1001); !errors.Is(err, ErrPhi) {
		t.Error("rank n+1 should fail")
	}
}

func TestAdversarialDistributions(t *testing.T) {
	cfg := Config{RunLen: 500, SampleSize: 50}
	gens := map[string][]int64{
		"sorted":   datagen.Generate(datagen.NewSorted(1), 10_000),
		"reverse":  datagen.Generate(datagen.NewReverse(10_000, 1), 10_000),
		"constant": make([]int64, 10_000),
		"normal":   datagen.Generate(datagen.NewNormal(1, 0, 1e6), 10_000),
	}
	for name, xs := range gens {
		s, err := BuildFromSlice(xs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		bound := s.ErrorBound()
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			b, err := s.Bounds(phi)
			if err != nil {
				t.Fatal(err)
			}
			e := trueQuantile(sorted, phi)
			if b.Lower > e || e > b.Upper {
				t.Errorf("%s phi=%g: true %d outside [%d,%d]", name, phi, e, b.Lower, b.Upper)
			}
			if got := countBetween(sorted, b.Lower, b.Upper); got > 2*bound {
				t.Errorf("%s phi=%g: enclosure %d > 2×bound %d", name, phi, got, 2*bound)
			}
		}
	}
}

func TestCDF(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(17, 1000), 10_000)
	s, err := BuildFromSlice(xs, Config{RunLen: 1000, SampleSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, x := range []int64{-1, 0, 250, 500, 750, 999, 2000} {
		lo, hi := s.CDF(x)
		truth := float64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > x })) / float64(len(sorted))
		if truth < lo-1e-12 || truth > hi+1e-12 {
			t.Errorf("CDF(%d): truth %g outside [%g, %g]", x, truth, lo, hi)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("CDF(%d) = [%g, %g] malformed", x, lo, hi)
		}
	}
	empty, _ := BuildFromSlice[int64](nil, Config{RunLen: 4, SampleSize: 2})
	if lo, hi := empty.CDF(5); lo != 0 || hi != 0 {
		t.Errorf("empty CDF = [%g, %g]", lo, hi)
	}
}

func TestBoundsIndependentOfSeed(t *testing.T) {
	// The Seed only perturbs in-memory reordering during selection; the
	// sample values (exact order statistics) and hence all bounds must be
	// identical for any seed.
	xs := datagen.Generate(datagen.NewUniform(3, 1<<40), 20_000)
	var ref *Summary[int64]
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		s, err := BuildFromSlice(xs, Config{RunLen: 2000, SampleSize: 200, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = s
			continue
		}
		for i, v := range s.Samples() {
			if v != ref.Samples()[i] {
				t.Fatalf("seed %d: sample %d differs (%d vs %d)", seed, i, v, ref.Samples()[i])
			}
		}
	}
}

func TestFloat64EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 1e6
	}
	ds := runio.NewMemoryDataset(xs, 8)
	s, err := BuildFromDataset[float64](ds, Config{RunLen: 1000, SampleSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, phi := range []float64{0.05, 0.5, 0.95} {
		b, err := s.Bounds(phi)
		if err != nil {
			t.Fatal(err)
		}
		rank := int(phi * float64(len(sorted)))
		if float64(rank) < phi*float64(len(sorted)) {
			rank++
		}
		truth := sorted[rank-1]
		if b.Lower > truth || truth > b.Upper {
			t.Errorf("phi=%g: %g outside [%g,%g]", phi, truth, b.Lower, b.Upper)
		}
	}
	// Exact second pass on float64.
	med, err := ExactQuantile[float64](ds, s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if want := sorted[(len(sorted)+1)/2-1]; med != want {
		t.Errorf("exact float median = %g, want %g", med, want)
	}
}
