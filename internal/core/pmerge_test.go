package core

import (
	"bytes"
	"math/rand"
	"testing"

	"opaq/internal/runio"
)

// buildStreamSummaries cuts n sealed summaries out of one continuous
// stream, mimicking the engine's epoch ring (ragged sizes included).
func buildStreamSummaries(t *testing.T, n int, seed int64) []*Summary[int64] {
	t.Helper()
	cfg := Config{RunLen: 64, SampleSize: 8, Seed: seed}
	sb, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []*Summary[int64]
	for len(out) < n {
		for i, m := 0, 64*(1+rng.Intn(4)); i < m; i++ {
			if err := sb.Add(rng.Int63n(1 << 40)); err != nil {
				t.Fatal(err)
			}
		}
		if s := sb.Seal(); s.N() > 0 {
			out = append(out, s)
		}
	}
	return out
}

// TestMergeAllParallelMatchesSequential pins the contract: for every
// worker count the parallel merge tree yields a summary byte-identical
// (via the checksummed persisted form) to sequential MergeAll.
func TestMergeAllParallelMatchesSequential(t *testing.T) {
	for _, k := range []int{1, 2, 7, 8, 9, 33, 100} {
		sums := buildStreamSummaries(t, k, int64(k))
		want, err := MergeAll(sums)
		if err != nil {
			t.Fatal(err)
		}
		var wantBytes bytes.Buffer
		if err := SaveSummary(&wantBytes, want, runio.Int64Codec{}); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 4, 16, 64} {
			got, err := MergeAllParallel(sums, workers)
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, workers, err)
			}
			var gotBytes bytes.Buffer
			if err := SaveSummary(&gotBytes, got, runio.Int64Codec{}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBytes.Bytes(), gotBytes.Bytes()) {
				t.Fatalf("k=%d workers=%d: parallel merge differs from sequential", k, workers)
			}
		}
	}
}

// TestMergeAllParallelNeverAliasesInputs guards the recycling contract
// the engine relies on: the result's sample buffer must be distinct from
// every input's, even in degenerate shapes (single non-empty input,
// empties interleaved), so inputs can be recycled after the merge.
func TestMergeAllParallelNeverAliasesInputs(t *testing.T) {
	sums := buildStreamSummaries(t, 12, 5)
	empty := emptySummary[int64](sums[0].step)
	in := []*Summary[int64]{empty, sums[0], empty}
	in = append(in, sums[1:]...)
	out, err := MergeAllParallel(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range in {
		if len(s.samples) > 0 && len(out.samples) > 0 && &s.samples[0] == &out.samples[0] {
			t.Fatalf("output sample buffer aliases input %d", i)
		}
	}
}

// TestMergeAllParallelStepMismatch pins the error path: a mismatched
// step in any chunk surfaces as ErrIncompatible, same as MergeAll.
func TestMergeAllParallelStepMismatch(t *testing.T) {
	sums := buildStreamSummaries(t, 16, 3)
	other, err := NewStreamBuilder[int64](Config{RunLen: 64, SampleSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := other.Add(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sums = append(sums, other.Seal())
	if _, err := MergeAllParallel(sums, 4); err == nil {
		t.Fatal("mismatched step merged without error")
	}
}
