package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"opaq/internal/runio"
)

// TestSealPreservesRunComposition pins the property the epoch lifecycle is
// built on: sealing whole runs out of a StreamBuilder and merging the
// sealed pieces back with the final Summary is byte-identical to never
// sealing — the partial run stays buffered, so no run is ever split.
func TestSealPreservesRunComposition(t *testing.T) {
	cfg := Config{RunLen: 64, SampleSize: 8, Seed: 3}
	rng := rand.New(rand.NewSource(9))
	xs := make([]int64, 64*7+37) // ragged tail on purpose
	for i := range xs {
		xs[i] = rng.Int63n(1 << 40)
	}

	// Reference: one unsealed builder over the whole sequence.
	ref, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Summary()
	if err != nil {
		t.Fatal(err)
	}

	// Sealed: the same sequence with seals at awkward points (mid-run,
	// at a run boundary, twice in a row with nothing new).
	sb, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pieces []*Summary[int64]
	seal := func() {
		if s := sb.Seal(); s.N() > 0 {
			pieces = append(pieces, s)
		}
	}
	for i, v := range xs {
		if err := sb.Add(v); err != nil {
			t.Fatal(err)
		}
		switch i {
		case 10, 64, 129, 130, 300:
			seal()
		}
	}
	seal()
	tail, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	pieces = append(pieces, tail)

	got, err := MergeAll(pieces)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Parts(), got.Parts()) {
		t.Fatalf("sealed reassembly diverged:\nwant %+v\ngot  %+v", want.Parts(), got.Parts())
	}
	var a, b bytes.Buffer
	if err := SaveSummary(&a, want, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	if err := SaveSummary(&b, got, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sealed reassembly is not byte-identical to the unsealed summary")
	}

	// After the seals, the builder keeps ingesting and its accounting
	// holds: N() counts only what it still owns.
	if sb.N() != int64(len(xs)%64) {
		t.Fatalf("post-seal N = %d, want the buffered tail %d", sb.N(), len(xs)%64)
	}
	if sb.Buffered() != len(xs)%64 {
		t.Fatalf("Buffered = %d, want %d", sb.Buffered(), len(xs)%64)
	}
}

// TestSealEmpty pins Seal on a builder with no completed run: canonical
// empty summary, builder untouched.
func TestSealEmpty(t *testing.T) {
	sb, err := NewStreamBuilder[int64](Config{RunLen: 8, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := sb.Seal(); s.N() != 0 {
		t.Fatalf("seal of fresh builder N = %d", s.N())
	}
	for _, v := range []int64{5, 3} {
		if err := sb.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if s := sb.Seal(); s.N() != 0 {
		t.Fatalf("seal with only a partial run N = %d", s.N())
	}
	if sb.N() != 2 || sb.Buffered() != 2 {
		t.Fatalf("builder lost its buffer across an empty seal: N=%d buffered=%d", sb.N(), sb.Buffered())
	}
	sum, err := sb.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.N() != 2 || sum.Min() != 3 || sum.Max() != 5 {
		t.Fatalf("post-seal summary: n=%d min=%d max=%d", sum.N(), sum.Min(), sum.Max())
	}
}

// TestMergeAll checks MergeAll against the pairwise fold and its error
// cases.
func TestMergeAll(t *testing.T) {
	cfg := Config{RunLen: 32, SampleSize: 4, Seed: 1}
	rng := rand.New(rand.NewSource(2))
	var sums []*Summary[int64]
	for k := 0; k < 5; k++ {
		sb, err := NewStreamBuilder[int64](cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100+k*37; i++ {
			if err := sb.Add(rng.Int63n(1 << 30)); err != nil {
				t.Fatal(err)
			}
		}
		s, err := sb.Summary()
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, s)
	}
	want := sums[0]
	var err error
	for _, s := range sums[1:] {
		if want, err = Merge(want, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := MergeAll(sums)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Parts(), got.Parts()) {
		t.Fatalf("MergeAll != pairwise fold:\nwant %+v\ngot  %+v", want.Parts(), got.Parts())
	}

	// Nil and empty entries are skipped.
	withGaps := []*Summary[int64]{nil, emptySummary[int64](8), sums[0], nil, sums[1]}
	g2, err := MergeAll(withGaps)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Merge(sums[0], sums[1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w2.Parts(), g2.Parts()) {
		t.Fatal("MergeAll with nil/empty gaps diverged from plain merge")
	}

	// A leading empty summary of a different step must not dictate
	// compatibility — empties are skipped, including for the step check.
	g3, err := MergeAll([]*Summary[int64]{emptySummary[int64](3), sums[0], sums[1]})
	if err != nil {
		t.Fatalf("leading foreign-step empty broke MergeAll: %v", err)
	}
	if !reflect.DeepEqual(w2.Parts(), g3.Parts()) {
		t.Fatal("MergeAll with leading foreign-step empty diverged from plain merge")
	}

	// All-empty yields the canonical empty summary; all-nil is an error;
	// mixed steps are rejected.
	if s, err := MergeAll([]*Summary[int64]{emptySummary[int64](8)}); err != nil || s.N() != 0 {
		t.Fatalf("all-empty MergeAll: %v, N=%d", err, s.N())
	}
	if _, err := MergeAll[int64](nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty MergeAll err = %v, want ErrConfig", err)
	}
	other, err := NewStreamBuilder[int64](Config{RunLen: 32, SampleSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Add(1); err != nil {
		t.Fatal(err)
	}
	so, err := other.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeAll([]*Summary[int64]{sums[0], so}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("mixed-step MergeAll err = %v, want ErrIncompatible", err)
	}
}
