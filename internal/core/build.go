package core

import (
	"cmp"
	"fmt"
	"io"
	"math/rand"

	"opaq/internal/merge"
	"opaq/internal/runio"
	"opaq/internal/selection"
)

// Build executes OPAQ's sample phase over one sequential scan of rr,
// returning the Summary used by the quantile phase. This is the algorithm
// of Figure 1 in the paper: for each run, extract the s regular sample
// points with an O(m log s) multi-selection, then merge the per-run sorted
// sample lists.
//
// Runs shorter than cfg.RunLen are handled exactly: a short run of length
// m' contributes ⌊m'·s/m⌋ sample points at the same sub-run spacing, and
// the uncovered remainder widens ErrorBound by its size. For inputs whose
// length is divisible by RunLen (the paper's assumption) the Lemma 1–3
// guarantees hold verbatim.
func Build[T cmp.Ordered](rr runio.RunReader[T], cfg Config) (*Summary[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rr.RunLen() != cfg.RunLen {
		return nil, fmt.Errorf("%w: reader run length %d != config RunLen %d",
			ErrConfig, rr.RunLen(), cfg.RunLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	step := cfg.Step()

	var (
		sampleLists [][]T
		n           int64
		leftover    int64
		runs        int64
		minV, maxV  T
	)
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: sample phase read: %w", err)
		}
		if len(run) == 0 {
			continue
		}
		runs++
		for _, v := range run {
			if n == 0 {
				minV, maxV = v, v
			} else {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
			n++
		}
		si := len(run) / step // samples this run contributes
		leftover += int64(len(run) - si*step)
		if si == 0 {
			continue
		}
		ranks := make([]int, si)
		for k := 1; k <= si; k++ {
			ranks[k-1] = k*step - 1
		}
		samples, err := selection.MultiSelect(run, ranks, rng)
		if err != nil {
			return nil, fmt.Errorf("core: sample phase select: %w", err)
		}
		sampleLists = append(sampleLists, samples)
	}
	if n == 0 {
		return &Summary[T]{step: int64(step)}, nil
	}
	return &Summary[T]{
		samples:  merge.KWay(sampleLists),
		step:     int64(step),
		runs:     runs,
		n:        n,
		leftover: leftover,
		min:      minV,
		max:      maxV,
	}, nil
}

// BuildFromDataset is Build over a fresh scan of ds with runs of
// cfg.RunLen elements — the whole-dataset entry point.
func BuildFromDataset[T cmp.Ordered](ds runio.Dataset[T], cfg Config) (*Summary[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rr, err := ds.Runs(cfg.RunLen)
	if err != nil {
		return nil, err
	}
	return Build(rr, cfg)
}

// BuildFromSlice is Build over an in-memory slice; the slice is not
// modified. Intended for tests, examples and small inputs.
func BuildFromSlice[T cmp.Ordered](xs []T, cfg Config) (*Summary[T], error) {
	return BuildFromDataset[T](runio.NewMemoryDataset(xs, 8), cfg)
}

// ExactQuantile performs the paper's Section 4 extension: one extra pass
// over the data turns the [e_l, e_u] enclosure into the exact quantile
// value. The pass counts the elements below e_l and retains only those
// inside the enclosure — at most 2n/s + slack values by Lemma 3 — which are
// then sorted (via selection, O(window)) to extract the exact rank.
func ExactQuantile[T cmp.Ordered](ds runio.Dataset[T], s *Summary[T], phi float64) (T, error) {
	var zero T
	b, err := s.Bounds(phi)
	if err != nil {
		return zero, err
	}
	rr, err := ds.Runs(int(minInt64(int64(1<<16), maxInt64(s.step, 1024))))
	if err != nil {
		return zero, err
	}
	var below int64 // elements strictly below e_l
	window := make([]T, 0, 2*(s.n/maxInt64(int64(len(s.samples)), 1))+16)
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			return zero, fmt.Errorf("core: exact pass read: %w", err)
		}
		for _, v := range run {
			switch {
			case v < b.Lower:
				below++
			case v <= b.Upper:
				window = append(window, v)
			}
		}
	}
	idx := b.Rank - below - 1 // 0-based rank within the window
	if idx < 0 || idx >= int64(len(window)) {
		return zero, fmt.Errorf("core: exact pass window does not cover rank %d (below=%d, window=%d); summary inconsistent with dataset",
			b.Rank, below, len(window))
	}
	v, err := selection.Select(window, int(idx), rand.New(rand.NewSource(s.step)))
	if err != nil {
		return zero, err
	}
	return v, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
