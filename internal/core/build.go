package core

import (
	"cmp"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"opaq/internal/merge"
	"opaq/internal/runio"
	"opaq/internal/selection"
)

// Build executes OPAQ's sample phase over one sequential scan of rr,
// returning the Summary used by the quantile phase. This is the algorithm
// of Figure 1 in the paper: for each run, extract the s regular sample
// points with an O(m log s) multi-selection, then merge the per-run sorted
// sample lists.
//
// With cfg.Workers != 1 the scan runs as a staged pipeline — a prefetching
// producer reads runs ahead of a bounded pool of sampling workers — which
// overlaps I/O with computation and scales the per-run multi-selection
// across cores. This realizes the paper's Section 4 future work ("we can
// significantly reduce the total execution time by overlapping the I/O and
// the computation"). Every run is sampled with an RNG seeded independently
// from (cfg.Seed, run index), so the resulting Summary is bit-identical for
// any worker count, including the sequential Workers == 1 path.
//
// Runs shorter than cfg.RunLen are handled exactly: a short run of length
// m' contributes ⌊m'·s/m⌋ sample points at the same sub-run spacing, and
// the uncovered remainder widens ErrorBound by its size. For inputs whose
// length is divisible by RunLen (the paper's assumption) the Lemma 1–3
// guarantees hold verbatim.
func Build[T cmp.Ordered](rr runio.RunReader[T], cfg Config) (*Summary[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rr.RunLen() != cfg.RunLen {
		return nil, fmt.Errorf("%w: reader run length %d != config RunLen %d",
			ErrConfig, rr.RunLen(), cfg.RunLen)
	}
	// Build consumes the scan: on every exit — EOF, config error, read or
	// sampling failure, pipeline cancellation — the reader's resources are
	// released (Close is idempotent, so the EOF self-close is fine).
	defer rr.Close()
	var (
		results []runStats[T]
		err     error
	)
	if workers := cfg.EffectiveWorkers(); workers <= 1 {
		results, err = collectSequential(rr, cfg)
	} else {
		results, err = collectConcurrent(rr, cfg, workers)
	}
	if err != nil {
		return nil, err
	}
	return assemble(results, cfg)
}

// runStats is one run's contribution to the summary: its sorted regular
// samples plus the bookkeeping Build aggregates across runs.
type runStats[T cmp.Ordered] struct {
	idx      int64 // 0-based index among non-empty runs, in scan order
	samples  []T
	n        int64
	leftover int64
	min, max T
}

// runSeed derives the selection RNG seed for the run with 0-based index idx
// from the configured seed, via one splitmix64 round so consecutive indices
// yield uncorrelated streams. Giving each run its own seed — rather than
// threading one RNG through the scan — is what makes the concurrent build
// bit-identical to the sequential one: the randomness a run sees no longer
// depends on how many runs were processed before it, or by which worker.
func runSeed(seed, idx int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(idx)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// sampleRun performs the per-run work of the sample phase: an exact min/max
// scan plus the O(m log s) multi-selection at the regular ranks. run must be
// non-empty and is reordered in place.
func sampleRun[T cmp.Ordered](run []T, idx int64, step int, seed int64) (runStats[T], error) {
	rs := runStats[T]{idx: idx, n: int64(len(run)), min: run[0], max: run[0]}
	for _, v := range run[1:] {
		rs.min = min(rs.min, v)
		rs.max = max(rs.max, v)
	}
	si := len(run) / step // samples this run contributes
	rs.leftover = int64(len(run) - si*step)
	if si == 0 {
		return rs, nil
	}
	ranks := make([]int, si)
	for k := 1; k <= si; k++ {
		ranks[k-1] = k*step - 1
	}
	samples, err := selection.MultiSelect(run, ranks, rand.New(rand.NewSource(runSeed(seed, idx))))
	if err != nil {
		return rs, fmt.Errorf("core: sample phase select: %w", err)
	}
	rs.samples = samples
	return rs, nil
}

// collectSequential is the Workers == 1 path: one goroutine, no channels,
// runs sampled in scan order.
func collectSequential[T cmp.Ordered](rr runio.RunReader[T], cfg Config) ([]runStats[T], error) {
	var (
		out []runStats[T]
		idx int64
	)
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("core: sample phase read: %w", err)
		}
		if len(run) == 0 {
			continue
		}
		rs, err := sampleRun(run, idx, cfg.Step(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, rs)
		idx++
	}
}

// collectConcurrent is the staged pipeline: a producer drains a prefetching
// reader and hands (index, run) pairs to `workers` sampling goroutines.
// Results arrive out of order and are re-sequenced by assemble. Peak memory
// is about (workers + prefetch depth + 1)·RunLen elements in flight, plus
// the sample lists.
func collectConcurrent[T cmp.Ordered](rr runio.RunReader[T], cfg Config, workers int) ([]runStats[T], error) {
	pf, alreadyPrefetching := any(rr).(*runio.PrefetchReader[T])
	if !alreadyPrefetching {
		pf = runio.Prefetch(rr, workers)
		defer pf.Close()
	}

	type job struct {
		idx int64
		run []T
	}
	type result struct {
		rs  runStats[T]
		err error
	}
	jobs := make(chan job, workers)
	results := make(chan result, workers)
	quit := make(chan struct{})
	var quitOnce sync.Once
	cancel := func() { quitOnce.Do(func() { close(quit) }) }

	// Producer: assign scan-order indices and feed the pool.
	var readErr error
	go func() {
		defer close(jobs)
		var idx int64
		for {
			run, err := pf.NextRun()
			if err == io.EOF {
				return
			}
			if err != nil {
				readErr = fmt.Errorf("core: sample phase read: %w", err)
				cancel()
				return
			}
			if len(run) == 0 {
				continue
			}
			select {
			case jobs <- job{idx: idx, run: run}:
				idx++
			case <-quit:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				rs, err := sampleRun(j.run, j.idx, cfg.Step(), cfg.Seed)
				select {
				case results <- result{rs: rs, err: err}:
				case <-quit:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var (
		out      []runStats[T]
		firstErr error
	)
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			cancel()
			continue
		}
		if firstErr == nil {
			out = append(out, r.rs)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// The producer wrote readErr strictly before close(jobs), which
	// happens-before the workers exiting and results closing above.
	if readErr != nil {
		return nil, readErr
	}
	return out, nil
}

// assemble re-sequences per-run contributions into scan order and merges
// them into the final Summary. All aggregates are order-independent (sums,
// extrema, and a k-way merge of sorted lists), so the result is identical
// however the runs were scheduled.
func assemble[T cmp.Ordered](results []runStats[T], cfg Config) (*Summary[T], error) {
	step := cfg.Step()
	if len(results) == 0 {
		return emptySummary[T](int64(step)), nil
	}
	sort.Slice(results, func(i, j int) bool { return results[i].idx < results[j].idx })
	var (
		sampleLists [][]T
		n           int64
		leftover    int64
		minV, maxV  T
	)
	minV, maxV = results[0].min, results[0].max
	for _, rs := range results {
		n += rs.n
		leftover += rs.leftover
		minV = min(minV, rs.min)
		maxV = max(maxV, rs.max)
		if rs.samples != nil {
			sampleLists = append(sampleLists, rs.samples)
		}
	}
	return &Summary[T]{
		samples:  merge.KWay(sampleLists),
		step:     int64(step),
		runs:     int64(len(results)),
		n:        n,
		leftover: leftover,
		min:      minV,
		max:      maxV,
	}, nil
}

// BuildFromDataset is Build over a fresh scan of ds with runs of
// cfg.RunLen elements — the whole-dataset entry point.
func BuildFromDataset[T cmp.Ordered](ds runio.Dataset[T], cfg Config) (*Summary[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rr, err := ds.Runs(cfg.RunLen)
	if err != nil {
		return nil, err
	}
	return Build(rr, cfg)
}

// BuildFromSlice is Build over an in-memory slice; the slice is not
// modified. Intended for tests, examples and small inputs. Modeled I/O
// stats charge the element type's real width, not a fixed 8 bytes.
func BuildFromSlice[T cmp.Ordered](xs []T, cfg Config) (*Summary[T], error) {
	return BuildFromDataset[T](runio.NewMemoryDataset(xs, runio.ElemSize[T]()), cfg)
}

// ExactQuantile performs the paper's Section 4 extension: one extra pass
// over the data turns the [e_l, e_u] enclosure into the exact quantile
// value. The pass counts the elements below e_l and retains only those
// inside the enclosure — at most 2n/s + slack values by Lemma 3 — which are
// then sorted (via selection, O(window)) to extract the exact rank.
func ExactQuantile[T cmp.Ordered](ds runio.Dataset[T], s *Summary[T], phi float64) (T, error) {
	var zero T
	b, err := s.Bounds(phi)
	if err != nil {
		return zero, err
	}
	rr, err := ds.Runs(int(min(int64(1<<16), max(s.step, 1024))))
	if err != nil {
		return zero, err
	}
	defer rr.Close()
	var below int64 // elements strictly below e_l
	window := make([]T, 0, 2*(s.n/max(int64(len(s.samples)), 1))+16)
	for {
		run, err := rr.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			return zero, fmt.Errorf("core: exact pass read: %w", err)
		}
		for _, v := range run {
			switch {
			case v < b.Lower:
				below++
			case v <= b.Upper:
				window = append(window, v)
			}
		}
	}
	idx := b.Rank - below - 1 // 0-based rank within the window
	if idx < 0 || idx >= int64(len(window)) {
		return zero, fmt.Errorf("core: exact pass window does not cover rank %d (below=%d, window=%d); summary inconsistent with dataset",
			b.Rank, below, len(window))
	}
	v, err := selection.Select(window, int(idx), rand.New(rand.NewSource(s.step)))
	if err != nil {
		return zero, err
	}
	return v, nil
}
