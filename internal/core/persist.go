package core

import (
	"bufio"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"opaq/internal/runio"
)

// Summary persistence. The paper's incremental story (Section 4) requires
// keeping the sorted samples between ingest sessions: "if the sorted
// samples are kept from the runs of the old data, one need only compute
// the sorted samples from the new runs and merge with the old sorted
// samples". SaveSummary / LoadSummary serialize a Summary to a compact
// binary format so a long-lived pipeline can checkpoint its quantile state.
//
// Format (little-endian):
//
//	offset size field
//	0      8    magic "OPAQSUM\x01"
//	8      2    codec kind
//	10     2    element size
//	12     4    reserved
//	16     8    step
//	24     8    runs
//	32     8    n
//	40     8    leftover
//	48     8    sample count
//	56     ...  min, max, then samples, each element-size bytes
//	end    4    CRC32-C of everything after the magic
const summaryMagic = "OPAQSUM\x01"

// ErrSummaryFormat reports a malformed summary stream.
var ErrSummaryFormat = errors.New("core: malformed summary stream")

// SaveSummary writes s to w using codec for element encoding.
func SaveSummary[T cmp.Ordered](w io.Writer, s *Summary[T], codec runio.Codec[T]) error {
	bw := bufio.NewWriter(w)
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	mw := io.MultiWriter(bw, crc)

	if _, err := bw.WriteString(summaryMagic); err != nil {
		return fmt.Errorf("core: save summary: %w", err)
	}
	var hdr [48]byte
	binary.LittleEndian.PutUint16(hdr[0:], codec.Kind())
	binary.LittleEndian.PutUint16(hdr[2:], uint16(codec.Size()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.step))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.runs))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(s.n))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(s.leftover))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(len(s.samples)))
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: save summary: %w", err)
	}
	buf := make([]byte, codec.Size())
	writeElem := func(v T) error {
		codec.Encode(buf, v)
		_, err := mw.Write(buf)
		return err
	}
	if err := writeElem(s.min); err != nil {
		return fmt.Errorf("core: save summary: %w", err)
	}
	if err := writeElem(s.max); err != nil {
		return fmt.Errorf("core: save summary: %w", err)
	}
	for _, v := range s.samples {
		if err := writeElem(v); err != nil {
			return fmt.Errorf("core: save summary: %w", err)
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("core: save summary: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: save summary: %w", err)
	}
	return nil
}

// LoadSummary reads a Summary previously written by SaveSummary and
// re-validates every structural invariant via NewSummary.
func LoadSummary[T cmp.Ordered](r io.Reader, codec runio.Codec[T]) (*Summary[T], error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(summaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrSummaryFormat, err)
	}
	if string(magic) != summaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSummaryFormat)
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	tr := io.TeeReader(br, crc)

	var hdr [48]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrSummaryFormat, err)
	}
	kind := binary.LittleEndian.Uint16(hdr[0:])
	elemSize := binary.LittleEndian.Uint16(hdr[2:])
	if kind != codec.Kind() {
		return nil, fmt.Errorf("%w: stream kind %d, codec kind %d", ErrSummaryFormat, kind, codec.Kind())
	}
	if int(elemSize) != codec.Size() {
		return nil, fmt.Errorf("%w: stream element size %d, codec %d", ErrSummaryFormat, elemSize, codec.Size())
	}
	step := int64(binary.LittleEndian.Uint64(hdr[8:]))
	runs := int64(binary.LittleEndian.Uint64(hdr[16:]))
	n := int64(binary.LittleEndian.Uint64(hdr[24:]))
	leftover := int64(binary.LittleEndian.Uint64(hdr[32:]))
	count := binary.LittleEndian.Uint64(hdr[40:])
	if count > 1<<40 {
		return nil, fmt.Errorf("%w: implausible sample count %d", ErrSummaryFormat, count)
	}
	buf := make([]byte, codec.Size())
	readElem := func() (T, error) {
		var zero T
		if _, err := io.ReadFull(tr, buf); err != nil {
			return zero, err
		}
		return codec.Decode(buf), nil
	}
	minV, err := readElem()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated min: %v", ErrSummaryFormat, err)
	}
	maxV, err := readElem()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated max: %v", ErrSummaryFormat, err)
	}
	// Grow the sample list as elements actually arrive instead of
	// trusting the header's count up front: a corrupted count (up to the
	// 2⁴⁰ plausibility cap) must fail at EOF with a small allocation, not
	// attempt a terabyte-sized make.
	samples := make([]T, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		v, err := readElem()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated samples: %v", ErrSummaryFormat, err)
		}
		samples = append(samples, v)
	}
	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrSummaryFormat, err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch %08x != %08x", ErrSummaryFormat, got, want)
	}
	sum, err := NewSummary(SummaryParts[T]{
		Samples: samples, Step: step, Runs: runs, N: n, Leftover: leftover,
		Min: minV, Max: maxV,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSummaryFormat, err)
	}
	return sum, nil
}
