package core

import "fmt"

// Plan chooses sample-phase parameters under a memory budget. The paper's
// constraint (Section 2.3) is
//
//	r·s + m ≤ M
//
// — the merged sample lists of all r = n/m runs plus one resident run must
// fit in M elements of memory — together with s ≥ 2q for good bounds on q
// quantiles.
type Plan struct {
	// Config holds the chosen RunLen (m) and SampleSize (s).
	Config Config
	// Runs is r = ⌈n/m⌉.
	Runs int64
	// MemoryElems is the worst-case resident element count, r·s + m.
	MemoryElems int64
	// ErrorFraction is the guarantee as a fraction of n: at most
	// ErrorFraction·n elements between a true quantile and either bound
	// (= 1/s for full runs).
	ErrorFraction float64
}

// PlanConfig picks (m, s) for a dataset of n elements under a memory budget
// of memElems elements so that q quantiles get the tightest achievable
// deterministic bound. It maximizes s subject to s ≥ 2q, s | m and
// r·s + m ≤ memElems, preferring balanced m ≈ √(n·s) which minimizes
// memory use at fixed s.
func PlanConfig(n int64, memElems int64, q int) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("%w: n must be positive, got %d", ErrConfig, n)
	}
	if q < 1 {
		return Plan{}, fmt.Errorf("%w: q must be ≥ 1, got %d", ErrConfig, q)
	}
	sMin := int64(2 * q)
	if sMin < 2 {
		sMin = 2
	}
	// Feasibility floor: with s = sMin and the memory-minimizing m, need
	// r·s + m ≈ 2·√(n·s) ≤ memElems.
	best := Plan{}
	found := false
	// Search s over powers of two ≥ sMin (the paper assumes s, m powers of
	// two for the median-splitting multi-select; our multi-select has no
	// such restriction but powers of two keep divisibility trivial).
	for s := ceilPow2(sMin); ; s <<= 1 {
		m := memoryMinimizingRunLen(n, s)
		if m < s {
			m = s
		}
		m = roundUpToMultiple(m, s)
		r := (n + m - 1) / m
		mem := r*s + m
		if mem > memElems {
			break
		}
		best = Plan{
			Config:        Config{RunLen: int(m), SampleSize: int(s)},
			Runs:          r,
			MemoryElems:   mem,
			ErrorFraction: 1 / float64(s),
		}
		found = true
		if s > n {
			break
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("%w: memory budget %d elements too small for n=%d, q=%d (need ≥ ~2·√(n·s), s=%d)",
			ErrConfig, memElems, n, q, sMin)
	}
	return best, nil
}

// memoryMinimizingRunLen returns m ≈ √(n·s), which minimizes r·s + m over m
// at fixed s (calculus: d/dm (n·s/m + m) = 0 at m = √(n·s)).
func memoryMinimizingRunLen(n, s int64) int64 {
	lo, hi := int64(1), n
	for lo < hi {
		mid := (lo + hi) / 2
		if mid*mid >= n*s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ceilPow2 returns the smallest power of two ≥ x.
func ceilPow2(x int64) int64 {
	p := int64(1)
	for p < x {
		p <<= 1
	}
	return p
}

// roundUpToMultiple rounds x up to the nearest multiple of k.
func roundUpToMultiple(x, k int64) int64 {
	if rem := x % k; rem != 0 {
		return x + k - rem
	}
	return x
}
