package core

import (
	"bytes"
	"math/rand"
	"testing"

	"opaq/internal/runio"
)

// FuzzLoadSummary feeds arbitrary — and, via the seed corpus, nearly
// valid — bytes to the checkpoint loader. The contract under corruption
// is: no panics and no unbounded allocations, only errors; and any stream
// the loader does accept must be a structurally valid summary that
// answers queries and round-trips through SaveSummary.
//
// The seed corpus is built from a real checkpoint (the restore path the
// engine's Restore/RestoreFile and the registry's restore-on-boot all
// funnel through) plus targeted corruptions of it: truncations, header
// bit-flips, an inflated sample count and a damaged checksum.
func FuzzLoadSummary(f *testing.F) {
	codec := runio.Int64Codec{}
	rng := rand.New(rand.NewSource(1997))
	xs := make([]int64, 3000)
	for i := range xs {
		xs[i] = rng.Int63n(1 << 48)
	}
	sum, err := BuildFromSlice(xs, Config{RunLen: 256, SampleSize: 32, Seed: 7})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSummary(&buf, sum, codec); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()

	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated mid-samples
	f.Add(good[:9])           // truncated mid-header
	f.Add([]byte{})
	f.Add([]byte("OPAQSUM\x01"))
	corrupt := func(off int, val byte) []byte {
		c := append([]byte(nil), good...)
		c[off] ^= val
		return c
	}
	f.Add(corrupt(8, 0xff))           // codec kind
	f.Add(corrupt(20, 0x80))          // step high byte
	f.Add(corrupt(52, 0x7f))          // sample count inflated
	f.Add(corrupt(len(good)-1, 0x01)) // checksum
	f.Add(corrupt(70, 0x40))          // a sample value (breaks sortedness or CRC)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadSummary[int64](bytes.NewReader(data), codec)
		if err != nil {
			return // rejecting corruption is the expected outcome
		}
		// Accepted streams must be fully usable...
		if got.N() > 0 {
			b, err := got.Bounds(0.5)
			if err != nil {
				t.Fatalf("accepted summary cannot answer Bounds: %v", err)
			}
			if b.Lower > b.Upper {
				t.Fatalf("accepted summary has inverted bounds %v", b)
			}
			if lo, hi := got.RankBounds(got.Min()); lo > hi {
				t.Fatalf("accepted summary has inverted rank bounds [%d, %d]", lo, hi)
			}
		}
		// ...and survive a save → load round trip unchanged.
		var out bytes.Buffer
		if err := SaveSummary(&out, got, codec); err != nil {
			t.Fatalf("re-saving accepted summary: %v", err)
		}
		again, err := LoadSummary[int64](bytes.NewReader(out.Bytes()), codec)
		if err != nil {
			t.Fatalf("reloading re-saved summary: %v", err)
		}
		if again.N() != got.N() || again.SampleCount() != got.SampleCount() ||
			again.Step() != got.Step() || again.Runs() != got.Runs() {
			t.Fatalf("round trip drifted: %d/%d/%d/%d vs %d/%d/%d/%d",
				again.N(), again.SampleCount(), again.Step(), again.Runs(),
				got.N(), got.SampleCount(), got.Step(), got.Runs())
		}
	})
}
