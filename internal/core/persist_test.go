package core

import (
	"bytes"
	"errors"
	"testing"

	"opaq/internal/datagen"
	"opaq/internal/runio"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(3, 1<<40), 25_000)
	s, err := BuildFromSlice(xs, Config{RunLen: 2500, SampleSize: 250})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSummary(&buf, s, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSummary[int64](&buf, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Runs() != s.Runs() || got.Step() != s.Step() ||
		got.Min() != s.Min() || got.Max() != s.Max() || got.SampleCount() != s.SampleCount() {
		t.Fatalf("metadata mismatch: %+v vs %+v", got.Parts(), s.Parts())
	}
	for _, phi := range []float64{0.1, 0.5, 0.9, 1.0} {
		a, _ := s.Bounds(phi)
		b, _ := got.Bounds(phi)
		if a.Lower != b.Lower || a.Upper != b.Upper {
			t.Errorf("phi=%g: bounds changed across save/load", phi)
		}
	}
}

func TestSaveLoadEmptySummary(t *testing.T) {
	s, err := BuildFromSlice[int64](nil, Config{RunLen: 8, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSummary(&buf, s, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSummary[int64](&buf, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("N = %d", got.N())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, err := LoadSummary[int64](bytes.NewReader([]byte("not a summary at all")), runio.Int64Codec{})
	if !errors.Is(err, ErrSummaryFormat) {
		t.Fatalf("error = %v, want ErrSummaryFormat", err)
	}
}

func TestLoadRejectsWrongCodec(t *testing.T) {
	s, err := BuildFromSlice([]int64{1, 2, 3, 4}, Config{RunLen: 4, SampleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSummary(&buf, s, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSummary[float64](&buf, runio.Float64Codec{}); !errors.Is(err, ErrSummaryFormat) {
		t.Fatalf("error = %v, want ErrSummaryFormat", err)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	s, err := BuildFromSlice(datagen.Generate(datagen.NewUniform(1, 1000), 1000),
		Config{RunLen: 100, SampleSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSummary(&buf, s, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte in the middle of the sample payload.
	raw[len(raw)/2] ^= 0xFF
	if _, err := LoadSummary[int64](bytes.NewReader(raw), runio.Int64Codec{}); !errors.Is(err, ErrSummaryFormat) {
		t.Fatalf("error = %v, want ErrSummaryFormat (corruption)", err)
	}
}

func TestLoadDetectsTruncation(t *testing.T) {
	s, err := BuildFromSlice(datagen.Generate(datagen.NewUniform(1, 1000), 1000),
		Config{RunLen: 100, SampleSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSummary(&buf, s, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-10]
	if _, err := LoadSummary[int64](bytes.NewReader(raw), runio.Int64Codec{}); !errors.Is(err, ErrSummaryFormat) {
		t.Fatalf("error = %v, want ErrSummaryFormat (truncation)", err)
	}
}

func TestSaveLoadThenMergeContinuesIncremental(t *testing.T) {
	// The paper's checkpointing scenario: save after day 1, load, ingest
	// day 2, merge — identical to having never stopped.
	cfg := Config{RunLen: 1000, SampleSize: 100}
	day1 := datagen.Generate(datagen.NewUniform(5, 1<<30), 10_000)
	day2 := datagen.Generate(datagen.NewUniform(6, 1<<30), 10_000)

	s1, err := BuildFromSlice(day1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSummary(&buf, s1, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSummary[int64](&buf, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildFromSlice(day2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaCheckpoint, err := Merge(restored, s2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Merge(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		a, _ := viaCheckpoint.Bounds(phi)
		b, _ := direct.Bounds(phi)
		if a.Lower != b.Lower || a.Upper != b.Upper {
			t.Errorf("phi=%g: checkpointed path diverges from direct path", phi)
		}
	}
}
