package core

import (
	"cmp"
	"reflect"
	"sync"
)

// samplePools holds one sync.Pool of sample buffers per element type.
// Package-level generic variables are not a thing, so the per-type pools
// live behind a reflect.Type-keyed map; the lookup is two pointer hops and
// only the buffers themselves are pooled.
var samplePools sync.Map // reflect.Type → *sync.Pool

func poolFor[T any]() *sync.Pool {
	key := reflect.TypeFor[T]()
	if p, ok := samplePools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := samplePools.LoadOrStore(key, new(sync.Pool))
	return p.(*sync.Pool)
}

// getSamples returns a zero-length buffer with capacity ≥ n, drawn from
// the pool when a large-enough buffer is available. Buffers returned here
// flow into long-lived summaries; only RecycleSummary (or putSamples, for
// scratch the caller provably owns) ever sends one back.
func getSamples[T any](n int) []T {
	p := poolFor[T]()
	if v := p.Get(); v != nil {
		if b := v.([]T); cap(b) >= n {
			return b[:0]
		}
		// Too small for this merge; leave it for a smaller one.
		p.Put(v)
	}
	return make([]T, 0, n)
}

// putSamples returns a buffer to the pool. The caller must be the
// buffer's exclusive owner: nothing may read it afterwards.
func putSamples[T any](b []T) {
	if cap(b) == 0 {
		return
	}
	poolFor[T]().Put(b[:0])
}

// RecycleSummary returns s's sample buffer to the merge-buffer pool and
// leaves s empty. Call it only on a summary the caller owns exclusively —
// one that is not (and never again will be) reachable from any snapshot,
// epoch ring or concurrent reader. The serving engine uses it on stripe
// summaries after each snapshot rebuild has merged them; ring epochs are
// never recycled, because a concurrent rebuild may still be reading them.
//
// Merge and MergeAll fast-path empty inputs by returning the other
// argument unchanged, so never recycle a summary that was passed to Merge:
// the result may alias it. MergeAll's result never aliases its inputs.
func RecycleSummary[T cmp.Ordered](s *Summary[T]) {
	if s == nil || s.samples == nil {
		return
	}
	putSamples(s.samples)
	*s = Summary[T]{step: s.step}
}
