package core

import (
	"math/rand"
	"sort"
	"testing"
)

// rankBoundsSummary builds a summary with a large sample list so the
// binary-search cost dominates.
func rankBoundsSummary(tb testing.TB, n int) *Summary[int64] {
	tb.Helper()
	cfg := Config{RunLen: 1 << 12, SampleSize: 1 << 8}
	sb, err := NewStreamBuilder[int64](cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		if err := sb.Add(rng.Int63n(1 << 30)); err != nil {
			tb.Fatal(err)
		}
	}
	s, err := sb.Summary()
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestRankBoundsMatchesSortSearch pins the open-coded binary search in
// RankBounds to the sort.Search semantics it replaced.
func TestRankBoundsMatchesSortSearch(t *testing.T) {
	s := rankBoundsSummary(t, 200_000)
	samples := s.Samples()
	rng := rand.New(rand.NewSource(11))
	probe := make([]int64, 0, 2048)
	for i := 0; i < 1024; i++ {
		probe = append(probe, rng.Int63n(1<<30))
	}
	// Exact sample values and off-by-one neighbors hit the tie-breaking
	// edges of the upper-bound search.
	for i := 0; i < 512; i++ {
		v := samples[rng.Intn(len(samples))]
		probe = append(probe, v-1, v, v+1)
	}
	for _, x := range probe {
		want := int64(sort.Search(len(samples), func(i int) bool { return samples[i] > x }))
		lo, _ := s.RankBounds(x)
		if x < s.Min() || x >= s.Max() {
			continue // exact-extrema fast paths, not the search
		}
		if got := lo / s.Step(); got != want {
			t.Fatalf("RankBounds(%d): kLE %d, sort.Search %d", x, got, want)
		}
	}
}

func TestRecycleSummary(t *testing.T) {
	s := rankBoundsSummary(t, 50_000)
	if s.SampleCount() == 0 {
		t.Fatal("summary has no samples")
	}
	step := s.Step()
	RecycleSummary(s)
	if s.N() != 0 || s.SampleCount() != 0 {
		t.Fatalf("recycled summary not empty: n=%d samples=%d", s.N(), s.SampleCount())
	}
	if s.Step() != step {
		t.Fatalf("recycle changed step: %d != %d", s.Step(), step)
	}
	// Idempotent, and nil-safe.
	RecycleSummary(s)
	RecycleSummary[int64](nil)
}

// TestMergePooledBufferIsolated checks a Merge result drawn from the pool
// never aliases a recycled buffer's future contents: recycle one summary,
// merge two others, and verify the merge against a straightforward replay.
func TestMergePooledBufferIsolated(t *testing.T) {
	cfg := Config{RunLen: 1 << 8, SampleSize: 1 << 4}
	build := func(seed int64, n int) *Summary[int64] {
		sb, err := NewStreamBuilder[int64](cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			if err := sb.Add(rng.Int63n(1 << 20)); err != nil {
				t.Fatal(err)
			}
		}
		s, err := sb.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	scratch := build(1, 4096)
	RecycleSummary(scratch)

	a, b := build(2, 4096), build(3, 4096)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != a.N()+b.N() {
		t.Fatalf("merged n %d, want %d", m.N(), a.N()+b.N())
	}
	got := m.Samples()
	if !sortedInt64(got) {
		t.Fatal("merged samples not sorted")
	}
	if len(got) != a.SampleCount()+b.SampleCount() {
		t.Fatalf("merged sample count %d, want %d", len(got), a.SampleCount()+b.SampleCount())
	}
}

func sortedInt64(xs []int64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// BenchmarkRankBounds shows the satellite delta: the open-coded
// upper-bound binary search in RankBounds vs the sort.Search closure form
// it replaced, on the same pre-built summary and probe sequence.
func BenchmarkRankBounds(b *testing.B) {
	s := rankBoundsSummary(b, 1_000_000)
	samples := s.Samples()
	probes := make([]int64, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range probes {
		probes[i] = rng.Int63n(1 << 30)
	}

	b.Run("method", func(b *testing.B) {
		b.ReportAllocs()
		var sink int64
		for i := 0; i < b.N; i++ {
			lo, hi := s.RankBounds(probes[i&4095])
			sink += lo + hi
		}
		_ = sink
	})
	b.Run("sortsearch", func(b *testing.B) {
		// The pre-optimization form, kept as the benchmark baseline.
		b.ReportAllocs()
		var sink int64
		for i := 0; i < b.N; i++ {
			x := probes[i&4095]
			sink += int64(sort.Search(len(samples), func(i int) bool { return samples[i] > x }))
		}
		_ = sink
	})
}
