package core

import (
	"cmp"
	"fmt"

	"opaq/internal/merge"
)

// SummaryParts are the raw ingredients of a Summary, exposed so that the
// parallel formulation (internal/parallel) can assemble the global summary
// after its distributed sample phase. The quantile phase then proceeds
// identically to the sequential algorithm with r·p total runs (paper,
// Section 3: "substituting rp instead of r").
type SummaryParts[T cmp.Ordered] struct {
	// Samples is the globally sorted sample list.
	Samples []T
	// Step is m/s, which must be identical on every processor.
	Step int64
	// Runs is the total number of runs across all processors.
	Runs int64
	// N is the total number of data elements.
	N int64
	// Leftover counts elements in ragged run tails not covered by samples.
	Leftover int64
	// Min and Max are the exact global extrema.
	Min, Max T
}

// NewSummary validates parts and assembles a Summary. It enforces the
// structural invariants the quantile-phase formulas rely on: a sorted
// sample list whose length, step, runs and leftover are consistent with N.
func NewSummary[T cmp.Ordered](parts SummaryParts[T]) (*Summary[T], error) {
	if parts.N < 0 || parts.Runs < 0 || parts.Leftover < 0 {
		return nil, fmt.Errorf("%w: negative counts in parts", ErrConfig)
	}
	if parts.N == 0 {
		return &Summary[T]{step: parts.Step}, nil
	}
	if parts.Step <= 0 {
		return nil, fmt.Errorf("%w: step must be positive, got %d", ErrConfig, parts.Step)
	}
	if !merge.IsSorted(parts.Samples) {
		return nil, fmt.Errorf("%w: sample list not sorted", ErrConfig)
	}
	if covered := int64(len(parts.Samples))*parts.Step + parts.Leftover; covered != parts.N {
		return nil, fmt.Errorf("%w: samples·step + leftover = %d, but N = %d",
			ErrConfig, covered, parts.N)
	}
	if parts.Max < parts.Min {
		return nil, fmt.Errorf("%w: max %v < min %v", ErrConfig, parts.Max, parts.Min)
	}
	return &Summary[T]{
		samples:  parts.Samples,
		step:     parts.Step,
		runs:     parts.Runs,
		n:        parts.N,
		leftover: parts.Leftover,
		min:      parts.Min,
		max:      parts.Max,
	}, nil
}

// Parts decomposes a Summary; inverse of NewSummary.
func (s *Summary[T]) Parts() SummaryParts[T] {
	return SummaryParts[T]{
		Samples:  s.samples,
		Step:     s.step,
		Runs:     s.runs,
		N:        s.n,
		Leftover: s.leftover,
		Min:      s.min,
		Max:      s.max,
	}
}
