package core

import (
	"cmp"
	"fmt"

	"opaq/internal/merge"
)

// SummaryParts are the raw ingredients of a Summary, exposed so that the
// parallel formulation (internal/parallel) can assemble the global summary
// after its distributed sample phase. The quantile phase then proceeds
// identically to the sequential algorithm with r·p total runs (paper,
// Section 3: "substituting rp instead of r").
type SummaryParts[T cmp.Ordered] struct {
	// Samples is the globally sorted sample list.
	Samples []T
	// Step is m/s, which must be identical on every processor.
	Step int64
	// Runs is the total number of runs across all processors.
	Runs int64
	// N is the total number of data elements.
	N int64
	// Leftover counts elements in ragged run tails not covered by samples.
	Leftover int64
	// Min and Max are the exact global extrema.
	Min, Max T
}

// NewSummary validates parts and assembles a Summary. It enforces the
// structural invariants the quantile-phase formulas rely on: a sorted
// sample list whose length, step, runs and leftover are consistent with N.
func NewSummary[T cmp.Ordered](parts SummaryParts[T]) (*Summary[T], error) {
	if parts.N < 0 || parts.Runs < 0 || parts.Leftover < 0 {
		return nil, fmt.Errorf("%w: negative counts in parts", ErrConfig)
	}
	if parts.N == 0 {
		return emptySummary[T](parts.Step), nil
	}
	if parts.Step <= 0 {
		return nil, fmt.Errorf("%w: step must be positive, got %d", ErrConfig, parts.Step)
	}
	if !merge.IsSorted(parts.Samples) {
		return nil, fmt.Errorf("%w: sample list not sorted", ErrConfig)
	}
	if covered := int64(len(parts.Samples))*parts.Step + parts.Leftover; covered != parts.N {
		return nil, fmt.Errorf("%w: samples·step + leftover = %d, but N = %d",
			ErrConfig, covered, parts.N)
	}
	if parts.Max < parts.Min {
		return nil, fmt.Errorf("%w: max %v < min %v", ErrConfig, parts.Max, parts.Min)
	}
	return &Summary[T]{
		samples:  parts.Samples,
		step:     parts.Step,
		runs:     parts.Runs,
		n:        parts.N,
		leftover: parts.Leftover,
		min:      parts.Min,
		max:      parts.Max,
	}, nil
}

// AssembleShards combines the per-shard outputs of a distributed sample
// phase into the global Summary: locals carries each shard's bookkeeping
// (counts, extrema, step) and globalSamples is the globally merged sorted
// sample list. The aggregation is the paper's Section 3 quantile phase
// setup — the global summary behaves exactly like a sequential one with
// r·p total runs — and is shared by both the simulated machine
// (parallel.Run) and the real sharded engine (parallel.BuildSharded).
//
// globalSamples may carry trailing padding introduced by the bitonic
// network (pads equal the globally largest sample, so they sort to the
// tail); AssembleShards trims the list to the exact expected count,
// Σ len(locals[i].Samples), and rejects a merge that lost samples.
func AssembleShards[T cmp.Ordered](locals []SummaryParts[T], globalSamples []T) (*Summary[T], error) {
	if len(locals) == 0 {
		return nil, fmt.Errorf("%w: no shards to assemble", ErrConfig)
	}
	gp := SummaryParts[T]{Step: locals[0].Step}
	expected := 0
	first := true
	for i, lp := range locals {
		if lp.Step != gp.Step {
			return nil, fmt.Errorf("%w: shard %d step %d != shard 0 step %d",
				ErrIncompatible, i, lp.Step, gp.Step)
		}
		expected += len(lp.Samples)
		gp.Runs += lp.Runs
		gp.N += lp.N
		gp.Leftover += lp.Leftover
		if lp.N == 0 {
			continue
		}
		if first {
			gp.Min, gp.Max = lp.Min, lp.Max
			first = false
		} else {
			gp.Min = min(gp.Min, lp.Min)
			gp.Max = max(gp.Max, lp.Max)
		}
	}
	if len(globalSamples) < expected {
		return nil, fmt.Errorf("%w: global merge lost samples: %d < %d",
			ErrIncompatible, len(globalSamples), expected)
	}
	gp.Samples = globalSamples[:expected]
	sum, err := NewSummary(gp)
	if err != nil {
		return nil, fmt.Errorf("core: assembling global summary: %w", err)
	}
	return sum, nil
}

// Parts decomposes a Summary; inverse of NewSummary.
func (s *Summary[T]) Parts() SummaryParts[T] {
	return SummaryParts[T]{
		Samples:  s.samples,
		Step:     s.step,
		Runs:     s.runs,
		N:        s.n,
		Leftover: s.leftover,
		Min:      s.min,
		Max:      s.max,
	}
}
