package core

import (
	"bytes"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"opaq/internal/runio"
)

func TestSizeTier(t *testing.T) {
	cases := []struct {
		n    int64
		tier int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 40, 40},
	}
	for _, c := range cases {
		if got := SizeTier(c.n); got != c.tier {
			t.Errorf("SizeTier(%d) = %d, want %d", c.n, got, c.tier)
		}
	}
}

// foldPlan applies a plan to counts, returning the compacted counts.
func foldPlan(ns []int64, spans [][2]int) []int64 {
	out := make([]int64, len(spans))
	for i, sp := range spans {
		for _, n := range ns[sp[0]:sp[1]] {
			out[i] += n
		}
	}
	return out
}

// checkPlanShape verifies the structural plan invariants: spans are
// ordered, contiguous and cover all of ns, and the folded counts' tiers
// strictly decrease oldest→newest (the fixpoint that bounds the depth).
func checkPlanShape(t *testing.T, ns []int64, spans [][2]int) []int64 {
	t.Helper()
	next := 0
	for _, sp := range spans {
		if sp[0] != next || sp[1] <= sp[0] {
			t.Fatalf("plan %v not contiguous over %d entries", spans, len(ns))
		}
		next = sp[1]
	}
	if next != len(ns) {
		t.Fatalf("plan %v covers %d of %d entries", spans, next, len(ns))
	}
	folded := foldPlan(ns, spans)
	for i := 0; i+1 < len(folded); i++ {
		if SizeTier(folded[i]) <= SizeTier(folded[i+1]) {
			t.Fatalf("plan not at fixpoint: folded counts %v have non-decreasing tiers at %d", folded, i)
		}
	}
	return folded
}

// TestPlanBuddiesCounter drives the binary-counter dynamic: appending S
// equal-size seals one at a time, re-planning after each, holds the
// compacted set at ≤ log₂(S)+1 entries throughout.
func TestPlanBuddiesCounter(t *testing.T) {
	const seal = int64(1 << 10)
	var counts []int64
	for s := 1; s <= 1000; s++ {
		counts = append(counts, seal)
		spans := PlanBuddies(counts)
		counts = checkPlanShape(t, counts, spans)
		if limit := bits.Len(uint(s)) + 1; len(counts) > limit {
			t.Fatalf("after %d seals: %d entries exceed log bound %d (%v)", s, len(counts), limit, counts)
		}
	}
}

// TestPlanBuddiesRagged checks the logarithmic depth bound under
// adversarially ragged seal sizes: at the fixpoint tiers strictly
// decrease, so the depth never exceeds log₂(ΣN)+1 occupied tiers.
func TestPlanBuddiesRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var counts []int64
	var total int64
	for s := 0; s < 500; s++ {
		n := int64(1 + rng.Intn(1<<12))
		total += n
		counts = append(counts, n)
		spans := PlanBuddies(counts)
		counts = checkPlanShape(t, counts, spans)
		if limit := bits.Len64(uint64(total)) + 1; len(counts) > limit {
			t.Fatalf("after %d ragged seals (ΣN=%d): %d entries exceed log bound %d", s+1, total, len(counts), limit)
		}
	}
}

func TestPlanBuddiesEmpty(t *testing.T) {
	if got := PlanBuddies(nil); len(got) != 0 {
		t.Fatalf("PlanBuddies(nil) = %v, want empty", got)
	}
	if got := PlanBuddies([]int64{7}); len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Fatalf("PlanBuddies([7]) = %v, want [[0 1]]", got)
	}
}

// buildChunks splits xs into count contiguous chunks (roughly equal) and
// builds an independent summary over each — the shape of an epoch ring.
func buildChunks(t testing.TB, xs []int64, count int, cfg Config) []*Summary[int64] {
	t.Helper()
	if count < 1 {
		count = 1
	}
	sums := make([]*Summary[int64], 0, count)
	for i := 0; i < count; i++ {
		lo, hi := i*len(xs)/count, (i+1)*len(xs)/count
		s, err := BuildFromSlice(xs[lo:hi], cfg)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		sums = append(sums, s)
	}
	return sums
}

// summaryBytes serializes a summary; byte equality of the result is the
// strongest equivalence the persistence layer can observe.
func summaryBytes(t testing.TB, s *Summary[int64]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveSummary(&buf, s, runio.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompactSummariesEquivalence pins compaction's core contract: the
// merge of the compacted set is byte-identical to the merge of the
// original set, and the returned spans mirror PlanBuddies.
func TestCompactSummariesEquivalence(t *testing.T) {
	cfg := Config{RunLen: 64, SampleSize: 8, Seed: 3}
	rng := rand.New(rand.NewSource(9))
	xs := make([]int64, 4000)
	for i := range xs {
		xs[i] = rng.Int63n(1 << 40)
	}
	sums := buildChunks(t, xs, 17, cfg)
	compacted, spans, err := CompactSummaries(sums)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted) >= len(sums) {
		t.Fatalf("compaction is vacuous: %d entries from %d", len(compacted), len(sums))
	}
	if len(compacted) != len(spans) {
		t.Fatalf("%d summaries but %d spans", len(compacted), len(spans))
	}
	for i, sp := range spans {
		var want int64
		for _, s := range sums[sp[0]:sp[1]] {
			want += s.N()
		}
		if compacted[i].N() != want {
			t.Fatalf("span %v: N=%d, want %d", sp, compacted[i].N(), want)
		}
	}
	whole, err := MergeAll(sums)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeAll(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryBytes(t, whole), summaryBytes(t, merged)) {
		t.Fatal("compacted merge diverges from uncompacted merge")
	}
}

// TestMergeAllAssociativityQuick is the property-based satellite: any
// bracketing of the same run set — pairwise Merge folds in an arbitrary
// random order, MergeAll flat, or CompactSummaries followed by MergeAll —
// yields a byte-identical summary. testing/quick drives the dataset, the
// chunking and the bracketing.
func TestMergeAllAssociativityQuick(t *testing.T) {
	cfg := Config{RunLen: 32, SampleSize: 4, Seed: 11}
	prop := func(raw []int16, chunksRaw uint8, bracketSeed int64) bool {
		xs := make([]int64, len(raw)+32) // ≥ one run even for tiny raw
		for i, v := range raw {
			xs[i] = int64(v)
		}
		for i := len(raw); i < len(xs); i++ {
			xs[i] = int64(i * 37 % 1009)
		}
		sums := buildChunks(t, xs, 2+int(chunksRaw%12), cfg)

		flat, err := MergeAll(sums)
		if err != nil {
			t.Fatalf("MergeAll: %v", err)
		}
		want := summaryBytes(t, flat)

		// Random bracketing: repeatedly Merge two entries at a random
		// adjacent boundary until one remains. Every binary merge tree
		// over the ordered set is reachable this way.
		rng := rand.New(rand.NewSource(bracketSeed))
		work := append([]*Summary[int64](nil), sums...)
		for len(work) > 1 {
			i := rng.Intn(len(work) - 1)
			m, err := Merge(work[i], work[i+1])
			if err != nil {
				t.Fatalf("Merge: %v", err)
			}
			work = append(work[:i], append([]*Summary[int64]{m}, work[i+2:]...)...)
		}
		if !bytes.Equal(want, summaryBytes(t, work[0])) {
			return false
		}

		// Compaction is just another bracketing.
		compacted, _, err := CompactSummaries(sums)
		if err != nil {
			t.Fatalf("CompactSummaries: %v", err)
		}
		viaCompact, err := MergeAll(compacted)
		if err != nil {
			t.Fatalf("MergeAll(compacted): %v", err)
		}
		return bytes.Equal(want, summaryBytes(t, viaCompact))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
