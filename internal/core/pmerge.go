package core

import (
	"cmp"
	"sync"
)

// parallelMergeFloor is the fan-in below which MergeAllParallel degrades
// to the sequential k-way merge: splitting a handful of lists across
// goroutines costs more in scheduling than the heap saves.
const parallelMergeFloor = 8

// MergeAllParallel is MergeAll fanned out across workers: the input is
// split into contiguous chunks, each chunk is k-way merged concurrently,
// and the chunk partials are merged into the final summary — a two-level
// merge tree whose leaves run in parallel. The result is identical to
// MergeAll over the same slice (the sample multiset, counts and extrema
// are order-independent, and equal samples are indistinguishable values),
// so callers may use whichever fits their core budget; the serving
// engine uses it to rebuild the frozen-prefix summary of a deep epoch
// ring cold, where the fan-in is the whole retained window.
//
// Chunk partials are drawn from and returned to the merge-buffer pool;
// only the final summary's buffer escapes. workers ≤ 1 (or a fan-in too
// small to split) is exactly MergeAll.
func MergeAllParallel[T cmp.Ordered](sums []*Summary[T], workers int) (*Summary[T], error) {
	if workers > len(sums)/2 {
		workers = len(sums) / 2
	}
	if workers <= 1 || len(sums) < parallelMergeFloor {
		return MergeAll(sums)
	}
	partials := make([]*Summary[T], workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous even split; every chunk is non-empty because
		// workers ≤ len(sums)/2.
		lo, hi := w*len(sums)/workers, (w+1)*len(sums)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w], errs[w] = MergeAll(sums[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out, err := MergeAll(partials)
	// The partials are exclusively ours (MergeAll never aliases its
	// inputs), so their buffers go back to the pool for the next pass.
	for _, p := range partials {
		RecycleSummary(p)
	}
	return out, err
}
