package core

import (
	"encoding/binary"
	"sort"
	"testing"
)

// Fuzz targets for the paper's guarantees. Under plain `go test` the seed
// corpus runs as regular tests; `go test -fuzz=FuzzBoundsContainment`
// explores further.

// FuzzBoundsContainment checks Lemmas 1–3 on arbitrary byte-derived
// datasets and configurations: the true quantile always lies inside
// [Lower, Upper] and the enclosure never exceeds the computed error bound.
func FuzzBoundsContainment(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(2), uint8(1), uint16(500))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0}, uint8(1), uint8(0), uint16(1))
	f.Add(make([]byte, 300), uint8(3), uint8(2), uint16(999))
	f.Fuzz(func(t *testing.T, raw []byte, sPow, stepPow uint8, phiRaw uint16) {
		if len(raw) < 8 {
			return
		}
		// Decode the dataset: one int64 per 2 bytes (sign-extended) so
		// duplicates are common.
		xs := make([]int64, 0, len(raw)/2)
		for i := 0; i+2 <= len(raw); i += 2 {
			xs = append(xs, int64(int16(binary.LittleEndian.Uint16(raw[i:]))))
		}
		s := 1 << (sPow % 5)
		step := 1 << (stepPow % 4)
		cfg := Config{RunLen: s * step, SampleSize: s}
		sum, err := BuildFromSlice(xs, cfg)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		phi := (float64(phiRaw%1000) + 1) / 1000
		b, err := sum.Bounds(phi)
		if err != nil {
			t.Fatalf("Bounds(%g): %v", phi, err)
		}
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		truth := sorted[b.Rank-1]
		if b.Lower > truth || truth > b.Upper {
			t.Fatalf("phi=%g: true %d outside [%d, %d]", phi, truth, b.Lower, b.Upper)
		}
		// Lemma 3 via the summary's own bound.
		lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b.Lower })
		hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= b.Upper })
		if gap := int64(hi - lo); gap > 2*sum.ErrorBound() {
			t.Fatalf("phi=%g: enclosure population %d exceeds 2×bound %d", phi, gap, 2*sum.ErrorBound())
		}
		// Rank bounds must enclose the true rank for the probe keys.
		for _, x := range []int64{xs[0], truth, b.Lower, b.Upper} {
			rl, rh := sum.RankBounds(x)
			trueRank := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > x }))
			if trueRank < rl || trueRank > rh {
				t.Fatalf("RankBounds(%d) = [%d,%d], true %d", x, rl, rh, trueRank)
			}
		}
	})
}

// FuzzMergeEquivalence checks that splitting a dataset at an arbitrary
// run-aligned point and merging the two summaries yields the same bounds
// as one pass over the whole.
func FuzzMergeEquivalence(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, cutRaw uint8) {
		if len(raw) < 16 {
			return
		}
		xs := make([]int64, 0, len(raw))
		for _, b := range raw {
			xs = append(xs, int64(b))
		}
		cfg := Config{RunLen: 8, SampleSize: 4}
		// Run-aligned cut.
		cut := (int(cutRaw) % (len(xs)/8 + 1)) * 8
		a, err := BuildFromSlice(xs[:cut], cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildFromSlice(xs[cut:], cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := BuildFromSlice(xs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.SampleCount() != whole.SampleCount() || m.N() != whole.N() {
			t.Fatalf("merged %d samples/%d elems, whole %d/%d",
				m.SampleCount(), m.N(), whole.SampleCount(), whole.N())
		}
		for i, v := range m.Samples() {
			if v != whole.Samples()[i] {
				t.Fatalf("sample %d: %d vs %d", i, v, whole.Samples()[i])
			}
		}
	})
}
