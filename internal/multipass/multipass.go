// Package multipass implements the multi-pass exact quantile computation
// the paper cites as prior art ([GS90]: "a technique that needs multiple
// passes over the data and produces accurate quantiles ... uses a linear
// median-finding algorithm recursively to partition the data"; [MP80]
// analyzes the pass/memory trade-off for selection with limited storage).
//
// FindExact narrows a candidate value interval pass by pass. Each pass
// scans the dataset once and counts — exactly — how the previous pass's
// pivot splits the current interval, so the interval update can never lose
// the target rank; a reservoir drawn from the interval supplies the next
// pivot (with value-domain bisection as a fallback, bounding the pass
// count at 64 even against adversarial data). When the interval's
// population fits the memory budget, a final selection yields the exact
// value. Against OPAQ this is the accuracy-versus-passes trade-off: exact
// answers, but Θ(log(n/M)) passes instead of one.
package multipass

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"opaq/internal/runio"
	"opaq/internal/selection"
)

// ErrBudget reports an unusably small memory budget.
var ErrBudget = errors.New("multipass: memory budget too small")

// Result carries the exact quantile plus the cost accounting that the
// comparison benchmarks report.
type Result struct {
	// Value is the exact φ-quantile.
	Value int64
	// Passes is the number of full scans performed.
	Passes int
	// Rank is the 1-based rank that was selected.
	Rank int64
}

// FindExact computes the exact φ-quantile of ds using at most memBudget
// resident elements, scanning the dataset as many times as the narrowing
// requires (≈ log(n/memBudget) passes for well-behaved data, ≤ ~64 always).
func FindExact(ds runio.Dataset[int64], phi float64, memBudget int, seed int64) (Result, error) {
	var res Result
	n := ds.Count()
	if n == 0 {
		return res, errors.New("multipass: empty dataset")
	}
	if phi <= 0 || phi > 1 {
		return res, fmt.Errorf("multipass: phi=%g out of (0,1]", phi)
	}
	if memBudget < 16 {
		return res, fmt.Errorf("%w: %d elements", ErrBudget, memBudget)
	}
	rank := int64(phi * float64(n))
	if float64(rank) < phi*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	res.Rank = rank

	rng := rand.New(rand.NewSource(seed))
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64) // candidate interval, inclusive
	var pivot int64
	havePivot := false
	const pivotSample = 1024

	for {
		res.Passes++
		if res.Passes > 200 {
			return res, errors.New("multipass: failed to converge")
		}
		rr, err := ds.Runs(64 * 1024)
		if err != nil {
			return res, err
		}
		var below, inside, insideLE, seen int64
		window := make([]int64, 0, memBudget)
		overflow := false
		var sample []int64
		for {
			run, err := rr.NextRun()
			if err == io.EOF {
				break
			}
			if err != nil {
				return res, err
			}
			for _, v := range run {
				if v < lo {
					below++
					continue
				}
				if v > hi {
					continue
				}
				inside++
				if havePivot && v <= pivot {
					insideLE++
				}
				if !overflow {
					if len(window) < memBudget {
						window = append(window, v)
						continue
					}
					overflow = true
					// Seed the reservoir with the abandoned window so early
					// elements stay candidates.
					sample = append(sample, window...)
					window = window[:0]
					seen = int64(len(sample))
				}
				seen++
				if len(sample) < pivotSample {
					sample = append(sample, v)
				} else if j := rng.Int63n(seen); j < pivotSample {
					sample[j] = v
				}
			}
		}
		target := rank - below
		if target < 1 || target > inside {
			return res, fmt.Errorf("multipass: interval lost the target rank (target=%d, inside=%d)", target, inside)
		}
		if !overflow {
			v, err := selection.Select(window, int(target-1), rng)
			if err != nil {
				return res, err
			}
			res.Value = v
			return res, nil
		}
		if lo == hi {
			// Single heavily-duplicated value fills the whole interval.
			res.Value = lo
			return res, nil
		}
		// Exact narrowing using the counts for the previous pivot.
		if havePivot {
			if target <= insideLE {
				hi = pivot // everything ≤ pivot stays; count is exact
			} else {
				lo = pivot + 1 // excludes every duplicate of pivot; exact
			}
			if lo == hi {
				res.Value = lo
				return res, nil
			}
		}
		// Choose the next pivot: prefer a reservoir element inside the new
		// interval near the target's relative position; fall back to
		// value-domain bisection (guaranteed progress in ≤ 64 steps).
		cands := sample[:0:0]
		for _, v := range sample {
			if v >= lo && v <= hi {
				cands = append(cands, v)
			}
		}
		if len(cands) > 0 {
			sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
			pos := int(float64(target) / float64(inside) * float64(len(cands)))
			if pos >= len(cands) {
				pos = len(cands) - 1
			}
			pivot = cands[pos]
			// A pivot equal to hi cannot shrink the upper half; step down
			// to the largest candidate strictly below hi.
			if pivot == hi {
				if i := sort.Search(len(cands), func(i int) bool { return cands[i] >= hi }); i > 0 {
					pivot = cands[i-1]
				}
			}
		}
		if len(cands) == 0 || pivot == hi {
			pivot = midpoint(lo, hi)
		}
		havePivot = true
	}
}

// midpoint returns lo + (hi−lo)/2 without overflow, strictly below hi for
// lo < hi.
func midpoint(lo, hi int64) int64 {
	return lo + int64(uint64(hi-lo)/2)
}
