// Package multipass implements the multi-pass exact quantile computation
// the paper cites as prior art ([GS90]: "a technique that needs multiple
// passes over the data and produces accurate quantiles ... uses a linear
// median-finding algorithm recursively to partition the data"; [MP80]
// analyzes the pass/memory trade-off for selection with limited storage).
//
// FindExact narrows a candidate value interval pass by pass. Each pass
// scans the dataset once and counts — exactly — how the previous pass's
// pivot splits the current interval, so the interval update can never lose
// the target rank; a reservoir drawn from the interval supplies the next
// pivot (with value-domain bisection as a fallback against adversarial
// data). Every pass also tightens the interval to the exact minimum and
// maximum elements observed inside it, which is what lets the whole
// machinery be generic over any numeric key type: no ±∞ sentinels and no
// successor function are needed, because the interval endpoints are always
// realized data values and a "strictly above the pivot" bound is tracked
// as an exclusive-endpoint flag. When the interval's population fits the
// memory budget, a final selection yields the exact value. Against OPAQ
// this is the accuracy-versus-passes trade-off: exact answers, but
// Θ(log(n/M)) passes instead of one.
package multipass

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"slices"
	"sort"

	"opaq/internal/runio"
)

// Key is the element constraint of the multipass baseline: any fixed-width
// numeric type (every type a runio.Codec exists for). Unlike OPAQ proper —
// which is purely comparison-based — the bisection fallback needs value
// arithmetic, so plain cmp.Ordered is not enough.
type Key interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// ErrBudget reports an unusably small memory budget.
var ErrBudget = errors.New("multipass: memory budget too small")

// Result carries the exact quantile plus the cost accounting that the
// comparison benchmarks report.
type Result[T Key] struct {
	// Value is the exact φ-quantile.
	Value T
	// Passes is the number of full scans performed.
	Passes int
	// Rank is the 1-based rank that was selected.
	Rank int64
}

// FindExact computes the exact φ-quantile of ds using at most memBudget
// resident elements, scanning the dataset as many times as the narrowing
// requires (≈ log(n/memBudget) passes for well-behaved data).
func FindExact[T Key](ds runio.Dataset[T], phi float64, memBudget int, seed int64) (Result[T], error) {
	var res Result[T]
	n := ds.Count()
	if n == 0 {
		return res, errors.New("multipass: empty dataset")
	}
	if !(phi > 0 && phi <= 1) { // positive phrasing also rejects NaN
		return res, fmt.Errorf("multipass: phi=%g out of (0,1]", phi)
	}
	if memBudget < 16 {
		return res, fmt.Errorf("%w: %d elements", ErrBudget, memBudget)
	}
	rank := int64(phi * float64(n))
	if float64(rank) < phi*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	res.Rank = rank

	rng := rand.New(rand.NewSource(seed))
	// Candidate interval. Before the first pass nothing is known, so every
	// element is inside; afterwards the interval is [lo, hi], or (lo, hi]
	// when loStrict excludes the left endpoint (the generic stand-in for
	// the integer-only "lo = pivot + 1" update).
	var lo, hi T
	haveBounds := false
	loStrict := false
	var pivot T
	havePivot := false
	const pivotSample = 1024

	for {
		res.Passes++
		if res.Passes > 200 {
			return res, errors.New("multipass: failed to converge")
		}
		rr, err := ds.Runs(64 * 1024)
		if err != nil {
			return res, err
		}
		var below, inside, insideLE, seen, scanned int64
		var minIn, maxIn T
		window := make([]T, 0, memBudget)
		overflow := false
		var sample []T
		// One scan per pass; the closure owns the reader so an early exit
		// (NaN input, read error) releases the scan's descriptor instead of
		// leaking it.
		scanErr := func() error {
			defer rr.Close()
			for {
				run, err := rr.NextRun()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				for _, v := range run {
					if v != v { // NaN: no total order, so no rank is defined
						return fmt.Errorf("multipass: input element %d is NaN; NaN keys have no total order", scanned)
					}
					scanned++
					if haveBounds {
						if v < lo || (loStrict && v == lo) {
							below++
							continue
						}
						if v > hi {
							continue
						}
					}
					if inside == 0 {
						minIn, maxIn = v, v
					} else {
						minIn = min(minIn, v)
						maxIn = max(maxIn, v)
					}
					inside++
					if havePivot && v <= pivot {
						insideLE++
					}
					if !overflow {
						if len(window) < memBudget {
							window = append(window, v)
							continue
						}
						overflow = true
						// Seed the reservoir with the abandoned window so early
						// elements stay candidates.
						sample = append(sample, window...)
						window = window[:0]
						seen = int64(len(sample))
					}
					seen++
					if len(sample) < pivotSample {
						sample = append(sample, v)
					} else if j := rng.Int63n(seen); j < pivotSample {
						sample[j] = v
					}
				}
			}
		}()
		if scanErr != nil {
			return res, scanErr
		}
		target := rank - below
		if target < 1 || target > inside {
			return res, fmt.Errorf("multipass: interval lost the target rank (target=%d, inside=%d)", target, inside)
		}
		if !overflow {
			slices.Sort(window)
			res.Value = window[target-1]
			return res, nil
		}
		// Tighten to the realized extrema — exact and free, and the source
		// of guaranteed progress whenever the pivot cannot narrow (a strict
		// lower bound is always strictly raised by the next pass's minimum).
		lo, hi, haveBounds, loStrict = minIn, maxIn, true, false
		if lo == hi {
			// A single heavily-duplicated value fills the whole interval.
			res.Value = lo
			return res, nil
		}
		// Exact narrowing using the counts for the previous pivot.
		if havePivot {
			if target <= insideLE {
				if pivot < hi {
					hi = pivot // everything ≤ pivot stays; count is exact
				}
			} else if pivot >= lo {
				lo = pivot // answer is strictly above the pivot
				loStrict = true
			}
			if lo == hi && !loStrict {
				res.Value = lo
				return res, nil
			}
		}
		// Choose the next pivot: prefer a reservoir element inside the new
		// interval near the target's relative position; fall back to
		// value-domain bisection. A pivot equal to hi cannot shrink the
		// upper half, and one outside [lo, hi) cannot shrink anything, so
		// those degrade to pivot = lo, which always progresses within two
		// passes (either hi collapses onto it or it becomes a strict lower
		// bound that the next extrema-tightening raises).
		cands := sample[:0:0]
		for _, v := range sample {
			if v >= lo && v <= hi && !(loStrict && v == lo) {
				cands = append(cands, v)
			}
		}
		havePivot = true
		pivot = lo
		if len(cands) > 0 {
			slices.Sort(cands)
			pos := int(float64(target) / float64(inside) * float64(len(cands)))
			if pos >= len(cands) {
				pos = len(cands) - 1
			}
			pivot = cands[pos]
			// Step down to the largest candidate strictly below hi.
			if pivot == hi {
				if i := sort.Search(len(cands), func(i int) bool { return cands[i] >= hi }); i > 0 {
					pivot = cands[i-1]
				}
			}
		}
		if len(cands) == 0 || pivot == hi {
			if m := midpoint(lo, hi); m >= lo && m < hi {
				pivot = m
			} else {
				pivot = lo
			}
		}
	}
}

// midpoint returns a value in [lo, hi) splitting the interval for the
// bisection fallback, halving the value range each step. Integer types get
// exact overflow-free arithmetic; floating-point types (and named numeric
// types, which a type switch cannot see through) use float64 arithmetic,
// whose worst case near the limits of precision merely degrades to the
// caller's pivot = lo fallback.
func midpoint[T Key](lo, hi T) T {
	switch any(lo).(type) {
	case int, int8, int16, int32, int64:
		l, h := int64(lo), int64(hi)
		return T(l + int64(uint64(h-l)/2))
	case uint, uint8, uint16, uint32, uint64, uintptr:
		l, h := uint64(lo), uint64(hi)
		return T(l + (h-l)/2)
	default:
		return T(float64(lo) + (float64(hi)-float64(lo))/2)
	}
}
