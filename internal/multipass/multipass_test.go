package multipass

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"opaq/internal/datagen"
	"opaq/internal/runio"
)

func exactRank(sorted []int64, phi float64) int64 {
	n := len(sorted)
	rank := int(phi * float64(n))
	if float64(rank) < phi*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

func TestFindExactValidation(t *testing.T) {
	ds := runio.NewMemoryDataset([]int64{1, 2, 3}, 8)
	if _, err := FindExact(ds, 0, 100, 1); err == nil {
		t.Error("phi=0 should fail")
	}
	if _, err := FindExact(ds, 0.5, 4, 1); !errors.Is(err, ErrBudget) {
		t.Error("tiny budget should fail with ErrBudget")
	}
	empty := runio.NewMemoryDataset([]int64{}, 8)
	if _, err := FindExact(empty, 0.5, 100, 1); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestFindExactFitsInOnePass(t *testing.T) {
	xs := []int64{9, 1, 5, 3, 7}
	ds := runio.NewMemoryDataset(xs, 8)
	res, err := FindExact(ds, 0.5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 || res.Passes != 1 {
		t.Fatalf("median = %d in %d passes, want 5 in 1", res.Value, res.Passes)
	}
}

func TestFindExactUniformLargeBudgetSmall(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(3, 1<<40), 200_000)
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ds := runio.NewMemoryDataset(xs, 8)
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 1.0} {
		res, err := FindExact(ds, phi, 2000, 7)
		if err != nil {
			t.Fatalf("phi=%g: %v", phi, err)
		}
		if want := exactRank(sorted, phi); res.Value != want {
			t.Errorf("phi=%g: got %d, want %d", phi, res.Value, want)
		}
		if res.Passes > 20 {
			t.Errorf("phi=%g: %d passes, expected ≈log(n/M)", phi, res.Passes)
		}
	}
}

func TestFindExactHeavyDuplicates(t *testing.T) {
	// Only 3 distinct values, 100k elements, budget 1000: the lo==hi
	// degenerate path must fire instead of looping.
	rng := rand.New(rand.NewSource(11))
	xs := make([]int64, 100_000)
	for i := range xs {
		xs[i] = int64(rng.Intn(3)) * 1000
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ds := runio.NewMemoryDataset(xs, 8)
	for _, phi := range []float64{0.2, 0.5, 0.8} {
		res, err := FindExact(ds, phi, 1000, 3)
		if err != nil {
			t.Fatalf("phi=%g: %v", phi, err)
		}
		if want := exactRank(sorted, phi); res.Value != want {
			t.Errorf("phi=%g: got %d, want %d", phi, res.Value, want)
		}
	}
}

func TestFindExactConstantData(t *testing.T) {
	xs := make([]int64, 50_000)
	for i := range xs {
		xs[i] = 42
	}
	ds := runio.NewMemoryDataset(xs, 8)
	res, err := FindExact(ds, 0.5, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42 {
		t.Fatalf("got %d", res.Value)
	}
}

func TestFindExactAdversarialSorted(t *testing.T) {
	xs := datagen.Generate(datagen.NewSorted(3), 100_000)
	sorted := append([]int64(nil), xs...)
	ds := runio.NewMemoryDataset(xs, 8)
	res, err := FindExact(ds, 0.25, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if want := exactRank(sorted, 0.25); res.Value != want {
		t.Fatalf("got %d, want %d", res.Value, want)
	}
}

func TestFindExactExtremeValues(t *testing.T) {
	xs := []int64{-1 << 62, 1<<62 - 1, 0, -5, 5}
	big := make([]int64, 0, 50_000)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50_000; i++ {
		big = append(big, xs[rng.Intn(len(xs))])
	}
	sorted := append([]int64(nil), big...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ds := runio.NewMemoryDataset(big, 8)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		res, err := FindExact(ds, phi, 100, 17)
		if err != nil {
			t.Fatalf("phi=%g: %v", phi, err)
		}
		if want := exactRank(sorted, phi); res.Value != want {
			t.Errorf("phi=%g: got %d, want %d", phi, res.Value, want)
		}
	}
}

// Property: FindExact equals sort-based truth for arbitrary data, budgets
// and quantiles.
func TestQuickFindExact(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := func(seed int64, phiRaw uint16, budgetRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1000 + r.Intn(20_000)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63n(2000) - 1000 // negative values + duplicates
		}
		phi := (float64(phiRaw%999) + 1) / 1000
		budget := 64 + int(budgetRaw)*8
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		ds := runio.NewMemoryDataset(xs, 8)
		res, err := FindExact(ds, phi, budget, seed)
		if err != nil {
			return false
		}
		return res.Value == exactRank(sorted, phi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMidpoint(t *testing.T) {
	cases := []struct{ lo, hi, want int64 }{
		{0, 10, 5},
		{-10, 10, 0},
		{-1 << 63, 1<<63 - 1, -1},
		{5, 6, 5},
	}
	for _, c := range cases {
		if got := midpoint(c.lo, c.hi); got != c.want {
			t.Errorf("midpoint(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

// The narrowing is generic: float64 keys, where no integer successor or
// ±∞ sentinel exists, must converge to the sort-based truth.
func TestFindExactFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	xs := make([]float64, 120_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 1e6
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	ds := runio.NewMemoryDataset(xs, 8)
	for _, phi := range []float64{0.05, 0.5, 0.95} {
		res, err := FindExact(ds, phi, 1000, 7)
		if err != nil {
			t.Fatalf("phi=%g: %v", phi, err)
		}
		rank := int(phi * float64(len(xs)))
		if float64(rank) < phi*float64(len(xs)) {
			rank++
		}
		if want := sorted[rank-1]; res.Value != want {
			t.Errorf("phi=%g: got %g, want %g", phi, res.Value, want)
		}
		if res.Passes > 25 {
			t.Errorf("phi=%g: %d passes", phi, res.Passes)
		}
	}
}

// Heavy duplicates of float keys with a budget-overflowing interval: the
// strict-lower-bound flag plus extrema tightening must converge without a
// successor function.
func TestFindExactFloatDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vals := []float64{-1.5, 0, 0, 0, 2.25}
	xs := make([]float64, 80_000)
	for i := range xs {
		xs[i] = vals[rng.Intn(len(vals))]
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	ds := runio.NewMemoryDataset(xs, 8)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		res, err := FindExact(ds, phi, 100, 3)
		if err != nil {
			t.Fatalf("phi=%g: %v", phi, err)
		}
		rank := int(phi * float64(len(xs)))
		if float64(rank) < phi*float64(len(xs)) {
			rank++
		}
		if want := sorted[rank-1]; res.Value != want {
			t.Errorf("phi=%g: got %g, want %g", phi, res.Value, want)
		}
	}
}

func TestMidpointUnsigned(t *testing.T) {
	if got := midpoint(uint64(0), ^uint64(0)); got != (^uint64(0))/2 {
		t.Errorf("midpoint(0, MaxUint64) = %d", got)
	}
	if got := midpoint(3.0, 4.0); got < 3.0 || got >= 4.0 {
		t.Errorf("float midpoint out of range: %g", got)
	}
}

func TestFindExactRejectsNaN(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 4, 5}
	big := make([]float64, 0, 20_000)
	for i := 0; i < 4000; i++ {
		big = append(big, xs...)
	}
	ds := runio.NewMemoryDataset(big, 8)
	if _, err := FindExact(ds, 0.5, 100, 1); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Errorf("NaN input should fail fast, got %v", err)
	}
}
