package parallel

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/runio"
	"opaq/internal/simnet"
)

// summaryBytes serializes a summary so tests can assert byte-identity.
func summaryBytes[T interface{ int64 | float64 }](t *testing.T, sum *core.Summary[T]) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	switch s := any(sum).(type) {
	case *core.Summary[int64]:
		err = core.SaveSummary(&buf, s, runio.Int64Codec{})
	case *core.Summary[float64]:
		err = core.SaveSummary(&buf, s, runio.Float64Codec{})
	}
	if err != nil {
		t.Fatalf("serializing summary: %v", err)
	}
	return buf.Bytes()
}

func shardDatasets(xs []int64, shards, runLen int, t *testing.T) []runio.Dataset[int64] {
	t.Helper()
	pieces, err := ShardSlices(xs, shards, runLen)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]runio.Dataset[int64], len(pieces))
	for i, p := range pieces {
		out[i] = runio.NewMemoryDataset(p, 8)
	}
	return out
}

// The engine's determinism contract: the summary bytes are identical across
// shard counts 1/2/3/8, both merge algorithms, and all three transports
// (the real in-process engine via BuildSharded, the loopback TCP mesh via
// BuildSharded with TransportTCP, and the simulated machine via Run),
// always matching the sequential build over the concatenated data.
func TestShardDeterminismAcrossCountsAlgosTransports(t *testing.T) {
	const runLen, sampleSize = 500, 50
	cfg := core.Config{RunLen: runLen, SampleSize: sampleSize, Seed: 42}
	xs := datagen.Generate(datagen.NewUniform(9, 1<<48), 24*runLen)

	seq, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, seq)

	for _, algo := range []MergeAlgo{BitonicMerge, SampleMerge} {
		for _, shards := range []int{1, 2, 3, 8} {
			if algo == BitonicMerge && shards&(shards-1) != 0 {
				continue // bitonic requires a power of two; validated below
			}
			name := fmt.Sprintf("%v/shards=%d", algo, shards)

			// Real transport.
			got, err := BuildSharded(shardDatasets(xs, shards, runLen, t), cfg,
				ShardOptions{Shards: shards, Merge: algo})
			if err != nil {
				t.Fatalf("%s: BuildSharded: %v", name, err)
			}
			if !bytes.Equal(summaryBytes(t, got), want) {
				t.Errorf("%s: real-transport summary bytes differ from sequential build", name)
			}

			// Network transport: every exchange over a loopback TCP mesh.
			got, err = BuildSharded(shardDatasets(xs, shards, runLen, t), cfg,
				ShardOptions{Shards: shards, Merge: algo, Transport: TransportTCP})
			if err != nil {
				t.Fatalf("%s: BuildSharded(TCP): %v", name, err)
			}
			if !bytes.Equal(summaryBytes(t, got), want) {
				t.Errorf("%s: TCP-transport summary bytes differ from sequential build", name)
			}

			// Simulated transport over the same run-aligned shards.
			pieces, err := ShardSlices(xs, shards, runLen)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(pieces, Config{
				Core: cfg, Procs: shards, Merge: algo,
				Model: simnet.DefaultCostModel(), Disk: runio.DefaultDiskModel(),
			})
			if err != nil {
				t.Fatalf("%s: simulated Run: %v", name, err)
			}
			if !bytes.Equal(summaryBytes(t, res.Summary), want) {
				t.Errorf("%s: simulated-transport summary bytes differ from sequential build", name)
			}
		}
	}
}

// The engine is generic: float64 keys through both merge algorithms,
// including the bitonic pad path (pads are the global max sample, not an
// int64 sentinel).
func TestBuildShardedFloat64(t *testing.T) {
	const runLen = 256
	cfg := core.Config{RunLen: runLen, SampleSize: 32}
	xs := make([]float64, 16*runLen)
	g := datagen.NewNormal(5, 0, 1e6)
	for i := range xs {
		xs[i] = float64(g.Next()) / 1e3
	}
	seq, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, seq)
	for _, algo := range []MergeAlgo{BitonicMerge, SampleMerge} {
		pieces, err := ShardSlices(xs, 4, runLen)
		if err != nil {
			t.Fatal(err)
		}
		datasets := make([]runio.Dataset[float64], len(pieces))
		for i, p := range pieces {
			datasets[i] = runio.NewMemoryDataset(p, 8)
		}
		got, err := BuildSharded(datasets, cfg, ShardOptions{Merge: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !bytes.Equal(summaryBytes(t, got), want) {
			t.Errorf("%v: float64 sharded summary differs from sequential", algo)
		}
	}
}

// Keys equal to the bitonic pad value (the global max) must survive the
// merge: duplicates of the maximum across ragged shards are the worst case
// for sentinel-style padding.
func TestBuildShardedMaxDuplicates(t *testing.T) {
	const runLen = 100
	cfg := core.Config{RunLen: runLen, SampleSize: 10}
	xs := make([]int64, 8*runLen)
	for i := range xs {
		if i%3 == 0 {
			xs[i] = math.MaxInt64 // ties with any pad sentinel scheme
		} else {
			xs[i] = int64(i)
		}
	}
	seq, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, seq)
	got, err := BuildSharded(shardDatasets(xs, 4, runLen, t), cfg,
		ShardOptions{Merge: BitonicMerge})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryBytes(t, got), want) {
		t.Error("summary with MaxInt64 duplicates differs from sequential build")
	}
}

// Ragged tails: a last shard that is not run-aligned still matches the
// sequential build (interior shards are aligned by ShardSlices).
func TestBuildShardedRaggedTail(t *testing.T) {
	const runLen = 200
	cfg := core.Config{RunLen: runLen, SampleSize: 20}
	xs := datagen.Generate(datagen.NewUniform(3, 1<<40), 7*runLen+123)
	seq, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, seq)
	got, err := BuildSharded(shardDatasets(xs, 3, runLen, t), cfg,
		ShardOptions{Merge: SampleMerge})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryBytes(t, got), want) {
		t.Error("ragged-tail sharded summary differs from sequential build")
	}
}

func TestBuildShardedMoreShardsThanRuns(t *testing.T) {
	const runLen = 100
	cfg := core.Config{RunLen: runLen, SampleSize: 10}
	xs := datagen.Generate(datagen.NewUniform(7, 1<<30), 2*runLen)
	seq, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildSharded(shardDatasets(xs, 8, runLen, t), cfg,
		ShardOptions{Merge: BitonicMerge}) // trailing shards are empty
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryBytes(t, got), summaryBytes(t, seq)) {
		t.Error("mostly-empty shards differ from sequential build")
	}
}

func TestBuildShardedValidation(t *testing.T) {
	cfg := core.Config{RunLen: 100, SampleSize: 10}
	ds := []runio.Dataset[int64]{
		runio.NewMemoryDataset([]int64{1, 2, 3}, 8),
		runio.NewMemoryDataset([]int64{4, 5, 6}, 8),
		runio.NewMemoryDataset([]int64{7, 8, 9}, 8),
	}
	if _, err := BuildSharded(ds, cfg, ShardOptions{Merge: BitonicMerge}); !errors.Is(err, core.ErrConfig) {
		t.Errorf("bitonic with 3 shards: err = %v, want ErrConfig", err)
	}
	if _, err := BuildSharded(ds, cfg, ShardOptions{Shards: 2}); !errors.Is(err, core.ErrConfig) {
		t.Errorf("shard/dataset mismatch: err = %v, want ErrConfig", err)
	}
	if _, err := BuildSharded[int64](nil, cfg, ShardOptions{}); !errors.Is(err, core.ErrConfig) {
		t.Errorf("no datasets: err = %v, want ErrConfig", err)
	}
	if _, err := BuildSharded(ds, core.Config{}, ShardOptions{}); !errors.Is(err, core.ErrConfig) {
		t.Errorf("bad core config: err = %v, want ErrConfig", err)
	}
}

// A failing shard must abort the whole machine promptly instead of
// deadlocking the peers at the merge barrier.
func TestBuildShardedLocalError(t *testing.T) {
	cfg := core.Config{RunLen: 100, SampleSize: 10}
	good := datagen.Generate(datagen.NewUniform(1, 1000), 300)
	ds := []runio.Dataset[int64]{
		runio.NewMemoryDataset(good, 8),
		&failingDataset{},
	}
	_, err := BuildSharded(ds, cfg, ShardOptions{Merge: SampleMerge})
	if err == nil {
		t.Fatal("expected an error from the failing shard")
	}
}

// failingDataset errors on scan, standing in for a broken run file.
type failingDataset struct{}

func (d *failingDataset) Count() int64       { return 100 }
func (d *failingDataset) Stats() runio.Stats { return runio.Stats{} }
func (d *failingDataset) Runs(m int) (runio.RunReader[int64], error) {
	return nil, errors.New("shard disk on fire")
}

func TestShardSlices(t *testing.T) {
	xs := make([]int64, 1050)
	for i := range xs {
		xs[i] = int64(i)
	}
	pieces, err := ShardSlices(xs, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 3 {
		t.Fatalf("got %d pieces", len(pieces))
	}
	total := 0
	for i, p := range pieces {
		if i < len(pieces)-1 && len(p)%100 != 0 {
			t.Errorf("interior shard %d has ragged length %d", i, len(p))
		}
		if total > 0 && len(p) > 0 && p[0] != int64(total) {
			t.Errorf("shard %d not contiguous: starts at %d, want %d", i, p[0], total)
		}
		total += len(p)
	}
	if total != len(xs) {
		t.Errorf("shards cover %d of %d elements", total, len(xs))
	}
	if _, err := ShardSlices(xs, 0, 100); err == nil {
		t.Error("0 shards should fail")
	}
	if _, err := ShardSlices(xs, 2, 0); err == nil {
		t.Error("0 run length should fail")
	}
}

// Shards whose runs are all shorter than one sub-run contribute zero
// samples; the global merge must handle the all-empty sample lists instead
// of panicking (regression: sampleMerge indexed an empty splitter list).
func TestBuildShardedZeroSamples(t *testing.T) {
	cfg := core.Config{RunLen: 1 << 16, SampleSize: 1 << 10}
	xs := datagen.Generate(datagen.NewUniform(3, 1000), 50) // one tiny run per shard
	seq, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []MergeAlgo{BitonicMerge, SampleMerge} {
		got, err := BuildSharded(shardDatasets(xs, 2, 1<<16, t), cfg, ShardOptions{Merge: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got.N() != seq.N() || got.SampleCount() != 0 {
			t.Errorf("%v: N=%d samples=%d, want N=%d samples=0", algo, got.N(), got.SampleCount(), seq.N())
		}
		if got.Min() != seq.Min() || got.Max() != seq.Max() {
			t.Errorf("%v: extrema [%d,%d] vs sequential [%d,%d]", algo, got.Min(), got.Max(), seq.Min(), seq.Max())
		}
	}
}
