package parallel

import (
	"bufio"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"opaq/internal/runio"
)

// netMachine is the third Transport implementation: p ranks connected by a
// full mesh of real TCP connections speaking the runio frame format — the
// same CRC-checked header and payload discipline as the binary ingest
// path, extended with three control frame types (xfer for Send/Recv
// payloads, barrier, hello for the mesh handshake). The algorithms of
// algo.go run over it unchanged, so a sharded build's global merge moves
// its sample lists over sockets exactly as it would between machines; the
// summaries stay byte-identical to the sequential build (tests enforce
// this alongside the in-process and simulated transports).
//
// Mesh shape: every rank owns one listener; rank j dials every rank i < j
// and opens the connection with a hello frame naming itself, so each pair
// shares exactly one connection with a deterministic direction. A reader
// goroutine per connection demultiplexes frames into per-peer queues
// (xfer payloads) and barrier tokens; writes only ever happen from the
// rank's own goroutine, so connections need no write lock.
//
// Failure semantics mirror realMachine: the first rank to error aborts
// the machine, closing the abort channel (and the sockets), so no peer
// stays blocked in Recv, Barrier or Accept.
type netMachine[T cmp.Ordered] struct {
	p     int
	codec runio.Codec[T]

	listeners []net.Listener
	addrs     []string

	abort chan struct{}
	once  sync.Once
	cause atomic.Pointer[error]
	// done marks a completed Run: reader goroutines treat connection
	// teardown after it as a clean shutdown, not a peer failure.
	done atomic.Bool
}

// netMaxFramePayload bounds one transport frame: global merges move whole
// sample blocks, which can far exceed an ingest batch.
const netMaxFramePayload = 256 << 20

// Transport payload tags inside xfer frames. The three shapes are exactly
// the payloads algo.go moves: sample blocks ([]T), bitonic control
// metadata (blockMeta[T]) and AllGather's re-broadcast vector ([]any of
// the former two).
const (
	netTagElems   = 1
	netTagMeta    = 2
	netTagVector  = 3
	netHelloMagic = 0x4f50 // "OP", sanity word opening a hello payload
)

func newNetMachine[T cmp.Ordered](p int, codec runio.Codec[T]) (*netMachine[T], error) {
	if p < 1 {
		return nil, fmt.Errorf("parallel: need at least one rank, got %d", p)
	}
	if codec == nil {
		return nil, fmt.Errorf("parallel: network transport needs a codec")
	}
	m := &netMachine[T]{p: p, codec: codec, abort: make(chan struct{})}
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.closeListeners()
			return nil, fmt.Errorf("parallel: rank %d listener: %w", i, err)
		}
		m.listeners = append(m.listeners, ln)
		m.addrs = append(m.addrs, ln.Addr().String())
	}
	return m, nil
}

func (m *netMachine[T]) closeListeners() {
	for _, ln := range m.listeners {
		ln.Close()
	}
}

// fail aborts the machine: first cause wins, every blocked primitive
// unblocks. Closing the listeners releases ranks parked in Accept during
// mesh establishment.
func (m *netMachine[T]) fail(err error) {
	m.once.Do(func() {
		if err != nil {
			m.cause.Store(&err)
		}
		close(m.abort)
		m.closeListeners()
	})
}

func (m *netMachine[T]) aborted() bool {
	select {
	case <-m.abort:
		return true
	default:
		return false
	}
}

// Run executes f as an SPMD program, one goroutine per rank, each rank
// first joining the TCP mesh. Like realMachine.Run, the first error any
// rank produced is returned (joined with any reader-side root cause).
func (m *netMachine[T]) Run(f func(tr Transport) error) error {
	errs := make([]error, m.p)
	procs := make([]*netProc[T], m.p)
	var wg sync.WaitGroup
	for i := 0; i < m.p; i++ {
		procs[i] = newNetProc(i, m)
	}
	for i := 0; i < m.p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("parallel: rank %d panicked: %v", i, r)
					m.fail(errs[i])
				}
			}()
			p := procs[i]
			if err := p.connect(); err != nil {
				errs[i] = err
				m.fail(err)
				return
			}
			errs[i] = f(p)
			if errs[i] != nil {
				m.fail(errs[i])
			}
		}(i)
	}
	wg.Wait()
	// Orderly teardown: mark done so readers treat the closes as clean,
	// then drop every socket and wait the readers out.
	m.done.Store(true)
	m.closeListeners()
	for _, p := range procs {
		p.closeConns()
	}
	for _, p := range procs {
		p.readers.Wait()
	}
	var roots []error
	if c := m.cause.Load(); c != nil {
		roots = append(roots, *c)
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, errAborted) {
			roots = append(roots, err)
		}
	}
	if len(roots) > 0 {
		return errors.Join(dedupErrors(roots)...)
	}
	return errors.Join(errs...)
}

// dedupErrors drops exact duplicates (the aborting rank's error is both a
// rank error and the recorded cause).
func dedupErrors(errs []error) []error {
	out := errs[:0]
	for i, err := range errs {
		dup := false
		for _, prev := range errs[:i] {
			if errors.Is(prev, err) || prev.Error() == err.Error() {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, err)
		}
	}
	return out
}

// netProc is one rank of a netMachine.
type netProc[T cmp.Ordered] struct {
	id int
	m  *netMachine[T]

	conns   []net.Conn // per peer; nil at self
	readers sync.WaitGroup

	// Per-peer receive queues, filled by the reader goroutines. Buffered
	// like realMachine's channels so symmetric exchanges cannot deadlock;
	// a full queue backpressures the TCP stream, not the algorithm.
	xferq []chan any
	barq  []chan struct{}

	frame []byte // write-side scratch, reused per frame
}

func newNetProc[T cmp.Ordered](id int, m *netMachine[T]) *netProc[T] {
	p := &netProc[T]{id: id, m: m, conns: make([]net.Conn, m.p)}
	p.xferq = make([]chan any, m.p)
	p.barq = make([]chan struct{}, m.p)
	for i := 0; i < m.p; i++ {
		if i == id {
			continue
		}
		p.xferq[i] = make(chan any, 8)
		p.barq[i] = make(chan struct{}, 2)
	}
	return p
}

// connect joins the mesh: dial every lower rank (sending hello), then
// accept one connection from every higher rank (reading hello). Listeners
// exist before any rank runs, so the dials land in listen backlogs even
// before the peer reaches Accept.
func (p *netProc[T]) connect() error {
	m := p.m
	for peer := 0; peer < p.id; peer++ {
		conn, err := net.Dial("tcp", m.addrs[peer])
		if err != nil {
			return fmt.Errorf("parallel: rank %d dialing rank %d: %w", p.id, peer, err)
		}
		p.conns[peer] = conn
		if err := p.writeFrame(conn, runio.FrameHello, p.helloPayload()); err != nil {
			return fmt.Errorf("parallel: rank %d hello to rank %d: %w", p.id, peer, err)
		}
	}
	for n := p.id + 1; n < m.p; n++ {
		conn, err := m.listeners[p.id].Accept()
		if err != nil {
			if m.aborted() {
				return errAborted
			}
			return fmt.Errorf("parallel: rank %d accept: %w", p.id, err)
		}
		peer, err := p.readHello(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("parallel: rank %d handshake: %w", p.id, err)
		}
		if peer <= p.id || peer >= m.p || p.conns[peer] != nil {
			conn.Close()
			return fmt.Errorf("parallel: rank %d got hello from unexpected rank %d", p.id, peer)
		}
		p.conns[peer] = conn
	}
	for peer, conn := range p.conns {
		if conn == nil {
			continue
		}
		p.readers.Add(1)
		go p.readLoop(peer, conn)
	}
	return nil
}

// helloPayload identifies this rank and pins the mesh shape: magic, rank,
// mesh size, codec kind.
func (p *netProc[T]) helloPayload() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint16(b[0:], netHelloMagic)
	binary.LittleEndian.PutUint16(b[2:], uint16(p.id))
	binary.LittleEndian.PutUint16(b[4:], uint16(p.m.p))
	binary.LittleEndian.PutUint16(b[6:], p.m.codec.Kind())
	return b[:]
}

// readHello validates a dialer's opening frame and returns its rank.
func (p *netProc[T]) readHello(conn net.Conn) (int, error) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	h, err := runio.ReadFrameHeader(conn, netMaxFramePayload)
	if err != nil {
		return 0, err
	}
	if h.Type != runio.FrameHello {
		return 0, fmt.Errorf("expected hello frame, got type %d", h.Type)
	}
	payload, err := runio.ReadFramePayload(conn, h, nil)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 || binary.LittleEndian.Uint16(payload[0:]) != netHelloMagic {
		return 0, fmt.Errorf("malformed hello payload")
	}
	rank := int(binary.LittleEndian.Uint16(payload[2:]))
	if meshP := int(binary.LittleEndian.Uint16(payload[4:])); meshP != p.m.p {
		return 0, fmt.Errorf("peer rank %d built for a %d-rank mesh, this mesh has %d", rank, meshP, p.m.p)
	}
	if kind := binary.LittleEndian.Uint16(payload[6:]); kind != p.m.codec.Kind() {
		return 0, fmt.Errorf("peer rank %d uses codec kind %d, this mesh uses %d", rank, kind, p.m.codec.Kind())
	}
	return rank, nil
}

// readLoop demultiplexes one connection: xfer frames into the peer's
// payload queue, barrier frames into its barrier queue. A framing error
// before the machine is done aborts everyone — framing is lost, the merge
// cannot be trusted.
func (p *netProc[T]) readLoop(from int, conn net.Conn) {
	defer p.readers.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		h, err := runio.ReadFrameHeader(br, netMaxFramePayload)
		if err != nil {
			p.readerExit(from, err)
			return
		}
		buf, err = runio.ReadFramePayload(br, h, buf)
		if err != nil {
			p.readerExit(from, err)
			return
		}
		switch h.Type {
		case runio.FrameXfer:
			v, err := decodePayload[T](p.m.codec, buf)
			if err != nil {
				p.readerExit(from, err)
				return
			}
			select {
			case p.xferq[from] <- v:
			case <-p.m.abort:
				return
			}
		case runio.FrameBarrier:
			select {
			case p.barq[from] <- struct{}{}:
			case <-p.m.abort:
				return
			}
		default:
			p.readerExit(from, fmt.Errorf("%w: unexpected frame type %d on mesh connection", runio.ErrFrame, h.Type))
			return
		}
	}
}

// readerExit classifies a reader's termination: silence on clean shutdown
// or an already-aborted machine, machine failure otherwise.
func (p *netProc[T]) readerExit(from int, err error) {
	if p.m.done.Load() || p.m.aborted() {
		return
	}
	if err == io.EOF {
		// A peer hung up mid-run: its rank failed; let its own error be
		// the root cause, this rank just unblocks.
		p.m.fail(fmt.Errorf("parallel: rank %d lost connection to rank %d: %w", p.id, from, err))
		return
	}
	p.m.fail(fmt.Errorf("parallel: rank %d reading from rank %d: %w", p.id, from, err))
}

func (p *netProc[T]) closeConns() {
	for _, conn := range p.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// writeFrame seals and writes one frame; the scratch buffer is reused so a
// steady-state rank allocates nothing per message beyond payload growth.
func (p *netProc[T]) writeFrame(conn net.Conn, typ runio.FrameType, payload []byte) error {
	p.frame = runio.AppendRawFrame(p.frame[:0], typ, p.m.codec.Kind(), payload)
	_, err := conn.Write(p.frame)
	return err
}

// encodePayload appends the tagged wire form of one transport payload.
func encodePayload[T cmp.Ordered](codec runio.Codec[T], dst []byte, payload any) ([]byte, error) {
	switch v := payload.(type) {
	case []T:
		dst = append(dst, netTagElems)
		if bulk, ok := codec.(runio.BulkCodec[T]); ok {
			dst = bulk.AppendElems(dst, v)
		} else {
			size := codec.Size()
			for _, x := range v {
				off := len(dst)
				dst = append(dst, make([]byte, size)...)
				codec.Encode(dst[off:], x)
			}
		}
		return dst, nil
	case blockMeta[T]:
		dst = append(dst, netTagMeta)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.n))
		off := len(dst)
		dst = append(dst, make([]byte, codec.Size())...)
		codec.Encode(dst[off:], v.max)
		return dst, nil
	case []any:
		dst = append(dst, netTagVector)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		for _, item := range v {
			// Length-prefixed recursive encoding; vectors never nest.
			lenAt := len(dst)
			dst = append(dst, 0, 0, 0, 0)
			var err error
			dst, err = encodePayload(codec, dst, item)
			if err != nil {
				return dst, err
			}
			binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("parallel: network transport cannot encode %T", payload)
	}
}

// decodePayload is encodePayload's inverse; it always copies out of buf so
// the reader's scratch buffer can be reused.
func decodePayload[T cmp.Ordered](codec runio.Codec[T], buf []byte) (any, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("%w: empty transport payload", runio.ErrFrame)
	}
	tag, body := buf[0], buf[1:]
	switch tag {
	case netTagElems:
		size := codec.Size()
		if len(body)%size != 0 {
			return nil, fmt.Errorf("%w: %d element bytes not a multiple of %d", runio.ErrFrame, len(body), size)
		}
		out := make([]T, 0, len(body)/size)
		return runio.DecodeFrameElems(codec, body, out)
	case netTagMeta:
		size := codec.Size()
		if len(body) != 8+size {
			return nil, fmt.Errorf("%w: blockMeta payload %d bytes, want %d", runio.ErrFrame, len(body), 8+size)
		}
		return blockMeta[T]{
			n:   int(int64(binary.LittleEndian.Uint64(body))),
			max: codec.Decode(body[8:]),
		}, nil
	case netTagVector:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: short vector payload", runio.ErrFrame)
		}
		count := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		out := make([]any, 0, count)
		for i := 0; i < count; i++ {
			if len(body) < 4 {
				return nil, fmt.Errorf("%w: vector item %d missing length", runio.ErrFrame, i)
			}
			n := int(binary.LittleEndian.Uint32(body))
			body = body[4:]
			if len(body) < n {
				return nil, fmt.Errorf("%w: vector item %d truncated", runio.ErrFrame, i)
			}
			item, err := decodePayload[T](codec, body[:n])
			if err != nil {
				return nil, err
			}
			out = append(out, item)
			body = body[n:]
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes after vector", runio.ErrFrame, len(body))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown transport payload tag %d", runio.ErrFrame, tag)
	}
}

// ID implements Transport.
func (p *netProc[T]) ID() int { return p.id }

// P implements Transport.
func (p *netProc[T]) P() int { return p.m.p }

// Compute implements Transport; the network machine has no cost model.
func (p *netProc[T]) Compute(int64) {}

// Charge implements Transport; the network machine has no cost model.
func (p *netProc[T]) Charge(time.Duration) {}

// Clock implements Transport; only wall-clock time passes.
func (p *netProc[T]) Clock() time.Duration { return 0 }

// Send implements Transport: one xfer frame down the peer's connection.
// words is ignored (no cost model); the payload length is what it is.
func (p *netProc[T]) Send(to int, _ int64, payload any) error {
	if to < 0 || to >= p.m.p {
		return fmt.Errorf("parallel: send to rank %d of %d", to, p.m.p)
	}
	if to == p.id {
		return fmt.Errorf("parallel: self-send on rank %d", p.id)
	}
	if p.m.aborted() {
		return errAborted
	}
	body, err := encodePayload(p.m.codec, nil, payload)
	if err != nil {
		return err
	}
	if len(body) > netMaxFramePayload {
		return fmt.Errorf("parallel: %d-byte payload exceeds frame bound %d", len(body), netMaxFramePayload)
	}
	if err := p.writeFrame(p.conns[to], runio.FrameXfer, body); err != nil {
		if p.m.aborted() {
			return errAborted
		}
		return fmt.Errorf("parallel: rank %d send to rank %d: %w", p.id, to, err)
	}
	return nil
}

// Recv implements Transport.
func (p *netProc[T]) Recv(from int) (any, error) {
	if from < 0 || from >= p.m.p {
		return nil, fmt.Errorf("parallel: recv from rank %d of %d", from, p.m.p)
	}
	if from == p.id {
		return nil, fmt.Errorf("parallel: self-recv on rank %d", p.id)
	}
	select {
	case v := <-p.xferq[from]:
		return v, nil
	case <-p.m.abort:
		// Drain a payload that raced with the abort, like realProc.
		select {
		case v := <-p.xferq[from]:
			return v, nil
		default:
			return nil, errAborted
		}
	}
}

// Exchange implements Transport.
func (p *netProc[T]) Exchange(partner int, words int64, payload any) (any, error) {
	if err := p.Send(partner, words, payload); err != nil {
		return nil, err
	}
	return p.Recv(partner)
}

// Barrier implements Transport: centralized on rank 0 over barrier
// frames — every rank reports arrival to rank 0, which releases them all.
// Two messages per rank, same deterministic shape on every run.
func (p *netProc[T]) Barrier() error {
	if p.m.p == 1 {
		return nil
	}
	if p.m.aborted() {
		return errAborted
	}
	if p.id != 0 {
		if err := p.writeFrame(p.conns[0], runio.FrameBarrier, nil); err != nil {
			if p.m.aborted() {
				return errAborted
			}
			return fmt.Errorf("parallel: rank %d barrier arrival: %w", p.id, err)
		}
		return p.waitBarrier(0)
	}
	for r := 1; r < p.m.p; r++ {
		if err := p.waitBarrier(r); err != nil {
			return err
		}
	}
	for r := 1; r < p.m.p; r++ {
		if err := p.writeFrame(p.conns[r], runio.FrameBarrier, nil); err != nil {
			if p.m.aborted() {
				return errAborted
			}
			return fmt.Errorf("parallel: rank 0 barrier release to rank %d: %w", r, err)
		}
	}
	return nil
}

func (p *netProc[T]) waitBarrier(from int) error {
	select {
	case <-p.barq[from]:
		return nil
	case <-p.m.abort:
		return errAborted
	}
}

// AllGather implements Transport with the same deterministic shape as the
// other machines: every rank sends to rank 0, which re-broadcasts the
// gathered vector.
func (p *netProc[T]) AllGather(words int64, payload any) ([]any, error) {
	if p.m.p == 1 {
		return []any{payload}, nil
	}
	if p.id != 0 {
		if err := p.Send(0, words, payload); err != nil {
			return nil, err
		}
		v, err := p.Recv(0)
		if err != nil {
			return nil, err
		}
		return v.([]any), nil
	}
	all := make([]any, p.m.p)
	all[0] = payload
	for r := 1; r < p.m.p; r++ {
		v, err := p.Recv(r)
		if err != nil {
			return nil, err
		}
		all[r] = v
	}
	for r := 1; r < p.m.p; r++ {
		if err := p.Send(r, words*int64(p.m.p), all); err != nil {
			return nil, err
		}
	}
	return all, nil
}

var _ Transport = (*netProc[int64])(nil)
