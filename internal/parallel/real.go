package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// realMachine is the in-process Transport implementation: p rank goroutines
// connected by Go channels, with no cost model. It mirrors simnet.Machine's
// SPMD shape (Run launches one goroutine per rank) so algorithms written
// against Transport run unchanged, but the only time that passes is
// wall-clock time — this is the transport production sharded builds use.
//
// Unlike the simulator, a failed rank must not strand its peers on a
// blocking Recv or Barrier, so the machine carries an abort channel that
// every blocking primitive selects on; the first error or panic releases
// everyone.
type realMachine struct {
	p int
	// chans[from][to]; buffered so symmetric exchange patterns (both
	// partners send, then both receive) cannot deadlock.
	chans [][]chan any
	abort chan struct{}
	once  sync.Once

	barMu    sync.Mutex
	barCond  *sync.Cond
	barCount int
	barGen   int
}

func newRealMachine(p int) (*realMachine, error) {
	if p < 1 {
		return nil, fmt.Errorf("parallel: need at least one rank, got %d", p)
	}
	m := &realMachine{p: p, abort: make(chan struct{})}
	m.barCond = sync.NewCond(&m.barMu)
	m.chans = make([][]chan any, p)
	for i := range m.chans {
		m.chans[i] = make([]chan any, p)
		for j := range m.chans[i] {
			m.chans[i][j] = make(chan any, 8)
		}
	}
	return m, nil
}

// fail releases every rank blocked in Recv or Barrier; first caller wins.
// The broadcast happens under barMu so a rank between its abort check and
// cond.Wait inside Barrier cannot miss the wakeup.
func (m *realMachine) fail() {
	m.once.Do(func() {
		m.barMu.Lock()
		close(m.abort)
		m.barCond.Broadcast()
		m.barMu.Unlock()
	})
}

var errAborted = errors.New("parallel: rank aborted (peer failed)")

// Run executes f as an SPMD program, one goroutine per rank, and returns
// the first error any rank produced (joined). A rank that errors or panics
// aborts the machine so the remaining ranks unblock and drain.
func (m *realMachine) Run(f func(tr Transport) error) error {
	errs := make([]error, m.p)
	var wg sync.WaitGroup
	for i := 0; i < m.p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("parallel: rank %d panicked: %v", i, r)
					m.fail()
				}
			}()
			errs[i] = f(&realProc{id: i, m: m})
			if errs[i] != nil {
				m.fail()
			}
		}(i)
	}
	wg.Wait()
	// Aborted ranks report errAborted; surface only the root causes unless
	// nothing else explains the failure.
	var roots []error
	for _, err := range errs {
		if err != nil && !errors.Is(err, errAborted) {
			roots = append(roots, err)
		}
	}
	if len(roots) > 0 {
		return errors.Join(roots...)
	}
	return errors.Join(errs...)
}

// realProc is one rank of a realMachine.
type realProc struct {
	id int
	m  *realMachine
}

// ID implements Transport.
func (p *realProc) ID() int { return p.id }

// P implements Transport.
func (p *realProc) P() int { return p.m.p }

// Compute implements Transport; the real machine has no cost model.
func (p *realProc) Compute(int64) {}

// Charge implements Transport; the real machine has no cost model.
func (p *realProc) Charge(time.Duration) {}

// Clock implements Transport; real time is wall-clock time, measured by the
// caller, so the modeled clock is always zero.
func (p *realProc) Clock() time.Duration { return 0 }

// Send implements Transport. words is ignored (no cost model).
func (p *realProc) Send(to int, _ int64, payload any) error {
	if to < 0 || to >= p.m.p {
		return fmt.Errorf("parallel: send to rank %d of %d", to, p.m.p)
	}
	if to == p.id {
		return fmt.Errorf("parallel: self-send on rank %d", p.id)
	}
	select {
	case p.m.chans[p.id][to] <- payload:
		return nil
	case <-p.m.abort:
		return errAborted
	}
}

// Recv implements Transport.
func (p *realProc) Recv(from int) (any, error) {
	if from < 0 || from >= p.m.p {
		return nil, fmt.Errorf("parallel: recv from rank %d of %d", from, p.m.p)
	}
	if from == p.id {
		return nil, fmt.Errorf("parallel: self-recv on rank %d", p.id)
	}
	select {
	case v := <-p.m.chans[from][p.id]:
		return v, nil
	case <-p.m.abort:
		// Drain a message that raced with the abort so a successful sender
		// is not misreported; the abort error still stands.
		select {
		case v := <-p.m.chans[from][p.id]:
			return v, nil
		default:
			return nil, errAborted
		}
	}
}

// Exchange implements Transport.
func (p *realProc) Exchange(partner int, words int64, payload any) (any, error) {
	if err := p.Send(partner, words, payload); err != nil {
		return nil, err
	}
	return p.Recv(partner)
}

// Barrier implements Transport: a reusable counting barrier that aborts
// cleanly when a peer fails.
func (p *realProc) Barrier() error {
	m := p.m
	m.barMu.Lock()
	defer m.barMu.Unlock()
	if aborted(m.abort) {
		return errAborted
	}
	m.barCount++
	gen := m.barGen
	if m.barCount == m.p {
		m.barCount = 0
		m.barGen++
		m.barCond.Broadcast()
		return nil
	}
	for gen == m.barGen && !aborted(m.abort) {
		m.barCond.Wait()
	}
	if gen == m.barGen && aborted(m.abort) {
		return errAborted
	}
	return nil
}

// AllGather implements Transport with the same deterministic shape as the
// simulator: every rank sends to rank 0, which re-broadcasts the vector.
func (p *realProc) AllGather(words int64, payload any) ([]any, error) {
	if p.m.p == 1 {
		return []any{payload}, nil
	}
	if p.id != 0 {
		if err := p.Send(0, words, payload); err != nil {
			return nil, err
		}
		v, err := p.Recv(0)
		if err != nil {
			return nil, err
		}
		return v.([]any), nil
	}
	all := make([]any, p.m.p)
	all[0] = payload
	for r := 1; r < p.m.p; r++ {
		v, err := p.Recv(r)
		if err != nil {
			return nil, err
		}
		all[r] = v
	}
	for r := 1; r < p.m.p; r++ {
		if err := p.Send(r, words*int64(p.m.p), all); err != nil {
			return nil, err
		}
	}
	return all, nil
}

func aborted(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
