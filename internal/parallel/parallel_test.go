package parallel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/runio"
	"opaq/internal/simnet"
)

func testConfig(p int, algo MergeAlgo) Config {
	return Config{
		Core:  core.Config{RunLen: 1000, SampleSize: 100},
		Procs: p,
		Merge: algo,
		Model: simnet.DefaultCostModel(),
		Disk:  runio.DefaultDiskModel(),
	}
}

// shard splits xs into p equal-ish contiguous shards.
func shard(xs []int64, p int) [][]int64 {
	out := make([][]int64, p)
	per := len(xs) / p
	for i := 0; i < p; i++ {
		lo, hi := i*per, (i+1)*per
		if i == p-1 {
			hi = len(xs)
		}
		out[i] = xs[lo:hi]
	}
	return out
}

func TestValidate(t *testing.T) {
	cfg := testConfig(3, BitonicMerge) // 3 not a power of two
	if err := cfg.Validate(); err == nil {
		t.Error("bitonic with p=3 should fail validation")
	}
	cfg = testConfig(3, SampleMerge)
	if err := cfg.Validate(); err != nil {
		t.Errorf("sample merge with p=3 should be fine: %v", err)
	}
	cfg.Procs = 0
	if err := cfg.Validate(); err == nil {
		t.Error("p=0 should fail")
	}
	cfg = testConfig(2, MergeAlgo(9))
	if err := cfg.Validate(); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestRunShardMismatch(t *testing.T) {
	cfg := testConfig(2, SampleMerge)
	if _, err := Run([][]int64{{1}}, cfg); err == nil {
		t.Fatal("1 shard for 2 procs should fail")
	}
}

// Parallel OPAQ must produce the exact same sample list and bounds as the
// sequential algorithm over the concatenation (paper: parallel quantile
// phase = sequential with r·p runs) — for both merge algorithms.
func TestParallelEqualsSequential(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(3, 1_000_000), 16_000)
	cfgSeq := core.Config{RunLen: 1000, SampleSize: 100}
	seq, err := core.BuildFromSlice(xs, cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []MergeAlgo{BitonicMerge, SampleMerge} {
		for _, p := range []int{1, 2, 4, 8} {
			res, err := Run(shard(xs, p), testConfig(p, algo))
			if err != nil {
				t.Fatalf("%v p=%d: %v", algo, p, err)
			}
			if res.Summary.N() != seq.N() {
				t.Fatalf("%v p=%d: N=%d, want %d", algo, p, res.Summary.N(), seq.N())
			}
			if res.Summary.Runs() != seq.Runs() {
				t.Fatalf("%v p=%d: runs=%d, want %d", algo, p, res.Summary.Runs(), seq.Runs())
			}
			gs, ss := res.Summary.Samples(), seq.Samples()
			if len(gs) != len(ss) {
				t.Fatalf("%v p=%d: %d samples, want %d", algo, p, len(gs), len(ss))
			}
			for i := range gs {
				if gs[i] != ss[i] {
					t.Fatalf("%v p=%d: sample %d = %d, want %d", algo, p, i, gs[i], ss[i])
				}
			}
			for _, phi := range []float64{0.1, 0.5, 0.9} {
				bp, _ := res.Summary.Bounds(phi)
				bs, _ := seq.Bounds(phi)
				if bp.Lower != bs.Lower || bp.Upper != bs.Upper {
					t.Errorf("%v p=%d phi=%g: [%d,%d] vs sequential [%d,%d]",
						algo, p, phi, bp.Lower, bp.Upper, bs.Lower, bs.Upper)
				}
			}
		}
	}
}

func TestParallelContainmentZipf(t *testing.T) {
	xs, err := datagen.PaperDataset("zipf", 32_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res, err := Run(shard(xs, 8), testConfig(8, SampleMerge))
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q <= 9; q++ {
		phi := float64(q) / 10
		b, err := res.Summary.Bounds(phi)
		if err != nil {
			t.Fatal(err)
		}
		rank := int(phi * float64(len(sorted)))
		if float64(rank) < phi*float64(len(sorted)) {
			rank++
		}
		truth := sorted[rank-1]
		if b.Lower > truth || truth > b.Upper {
			t.Errorf("phi=%g: true %d outside [%d,%d]", phi, truth, b.Lower, b.Upper)
		}
	}
}

func TestRaggedShards(t *testing.T) {
	// n not divisible by p, shards not divisible by m.
	xs := datagen.Generate(datagen.NewUniform(5, 1<<40), 10_007)
	res, err := Run(shard(xs, 3), testConfig(3, SampleMerge))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.N() != 10_007 {
		t.Fatalf("N = %d", res.Summary.N())
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b, err := res.Summary.Bounds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := sorted[(10_007+1)/2-1]
	if b.Lower > truth || truth > b.Upper {
		t.Errorf("median %d outside [%d,%d]", truth, b.Lower, b.Upper)
	}
}

func TestPhaseTimesPopulated(t *testing.T) {
	// Paper-shaped parameters scaled down: s = 1024 samples per run so the
	// sampling work per element (α·log₂ s ≈ 1µs) balances the modeled disk
	// (≈1µs per 8-byte element at 8 MB/s) — the Table 11 calibration.
	xs := datagen.Generate(datagen.NewUniform(7, 1<<40), 256_000)
	cfg := testConfig(4, SampleMerge)
	cfg.Core = core.Config{RunLen: 32_768, SampleSize: 1024}
	res, err := Run(shard(xs, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.IO <= 0 || res.Phases.Sampling <= 0 {
		t.Errorf("I/O and sampling phases must be positive: %+v", res.Phases)
	}
	if res.TotalTime <= 0 {
		t.Error("TotalTime must be positive")
	}
	if len(res.PerProc) != 4 {
		t.Errorf("PerProc has %d entries", len(res.PerProc))
	}
	// The paper's headline: I/O is roughly half the total (Table 11:
	// 0.40–0.57 across all sizes and processor counts).
	frac := float64(res.Phases.IO) / float64(res.Phases.Total())
	if frac < 0.30 || frac > 0.70 {
		t.Errorf("I/O fraction = %.2f, expected ≈0.5 under the default models", frac)
	}
}

func TestGlobalMergeGrowsWithP(t *testing.T) {
	// Table 12: global merge cost grows with p while I/O and sampling per
	// processor stay flat (fixed per-proc data).
	perProc := 32_000
	var g2, g8 time.Duration
	for _, p := range []int{2, 8} {
		xs := datagen.Generate(datagen.NewUniform(11, 1<<40), perProc*p)
		res, err := Run(shard(xs, p), testConfig(p, BitonicMerge))
		if err != nil {
			t.Fatal(err)
		}
		if p == 2 {
			g2 = res.Phases.GlobalMerge
		} else {
			g8 = res.Phases.GlobalMerge
		}
	}
	if g8 <= g2 {
		t.Errorf("global merge at p=8 (%v) should exceed p=2 (%v)", g8, g2)
	}
}

func TestSpeedup(t *testing.T) {
	// Figure 6 shape: fixed total data, more processors → less total time.
	xs := datagen.Generate(datagen.NewUniform(13, 1<<40), 128_000)
	var t1, t8 time.Duration
	for _, p := range []int{1, 8} {
		res, err := Run(shard(xs, p), testConfig(p, SampleMerge))
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			t1 = res.TotalTime
		} else {
			t8 = res.TotalTime
		}
	}
	speedup := float64(t1) / float64(t8)
	if speedup < 4 {
		t.Errorf("speedup at p=8 = %.2f, want ≥4 (near-linear per Figure 6)", speedup)
	}
}

// Property: for random data, shard counts and both algorithms, the global
// sample list equals the sequential one.
func TestQuickParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64, pRaw, algoRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		algo := MergeAlgo(int(algoRaw) % 2)
		var p int
		if algo == BitonicMerge {
			p = 1 << (pRaw % 4) // 1,2,4,8
		} else {
			p = 1 + int(pRaw)%8
		}
		// Shards must be run-aligned for bit-identical equivalence with the
		// sequential algorithm (otherwise run boundaries legitimately
		// differ); RunLen is 200 below.
		n := p * 200 * (1 + r.Intn(10))
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63n(10_000)
		}
		cfg := Config{
			Core:  core.Config{RunLen: 200, SampleSize: 20, Seed: seed},
			Procs: p, Merge: algo,
			Model: simnet.DefaultCostModel(),
			Disk:  runio.DefaultDiskModel(),
		}
		res, err := Run(shard(xs, p), cfg)
		if err != nil {
			return false
		}
		seq, err := core.BuildFromSlice(xs, cfg.Core)
		if err != nil {
			return false
		}
		gs, ss := res.Summary.Samples(), seq.Samples()
		if len(gs) != len(ss) {
			return false
		}
		for i := range gs {
			if gs[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapIOReducesTotalTime(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(7, 1<<40), 256_000)
	cfg := testConfig(4, SampleMerge)
	cfg.Core = core.Config{RunLen: 32_768, SampleSize: 1024}
	off, err := Run(shard(xs, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OverlapIO = true
	on, err := Run(shard(xs, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same bounds either way — overlap is a performance knob only.
	bOff, _ := off.Summary.Bounds(0.5)
	bOn, _ := on.Summary.Bounds(0.5)
	if bOff.Lower != bOn.Lower || bOff.Upper != bOn.Upper {
		t.Error("overlap changed the computed bounds")
	}
	// With I/O ≈ sampling (the Table 11 calibration), hiding I/O should
	// cut total time by ~40–50%.
	ratio := on.TotalTime.Seconds() / off.TotalTime.Seconds()
	if ratio > 0.75 || ratio < 0.4 {
		t.Errorf("overlap time ratio = %.2f, want ≈0.5", ratio)
	}
	if on.Phases.Total() >= off.Phases.Total() {
		t.Error("Phases.Total must honor the overlap flag")
	}
}
