package parallel

import (
	"time"

	"opaq/internal/simnet"
)

// Transport is the communication substrate one rank of the parallel engine
// runs on. The global-merge algorithms (bitonic merge-split and PSRS-style
// sample merge) are written purely against this interface, so the same code
// drives two very different machines:
//
//   - The simulated machine of internal/simnet (*simnet.Proc): messages move
//     real data between goroutines while a two-level cost model (α compute,
//     τ message startup, μ per word) advances private simulated clocks. This
//     is the transport behind Run and the paper's Tables 8/11/12 and
//     Figures 3–6; Clock, Compute and Charge are meaningful and the
//     execution time of a program is the maximum clock over ranks.
//
//   - The real in-process transport (this package, used by BuildSharded):
//     goroutines connected by channels with no cost model at all. Compute
//     and Charge are no-ops and Clock always reports zero; the only time
//     that exists is wall-clock time. This is the engine layer for actual
//     sharded workloads, and the seam where a future networked transport
//     (RPC, shared-nothing workers) plugs in.
//
// Both transports move real values — algorithms are executed for real and
// their results are checked by tests; only the *accounting* differs.
//
// The words argument of Send/Exchange/AllGather is the message's payload
// size in the cost model's units (8-byte elements). Transports without a
// cost model ignore it. Control metadata (block sizes, pad values) is
// charged as one word per message, matching the paper's convention of
// ignoring O(1) control traffic.
//
// A Transport is owned by a single rank goroutine and must not be shared.
type Transport interface {
	// ID returns this rank in [0, P).
	ID() int
	// P returns the machine's rank count.
	P() int
	// Compute charges units of local work (no-op without a cost model).
	Compute(units int64)
	// Charge advances the clock by an externally modeled duration (no-op
	// without a cost model).
	Charge(d time.Duration)
	// Clock returns this rank's simulated time (zero without a cost model).
	Clock() time.Duration
	// Barrier synchronizes all ranks.
	Barrier() error
	// Send transmits payload (words elements) to rank to.
	Send(to int, words int64, payload any) error
	// Recv blocks for the next message from rank from.
	Recv(from int) (any, error)
	// Exchange sends payload to partner and receives the partner's payload.
	Exchange(partner int, words int64, payload any) (any, error)
	// AllGather collects every rank's payload into a slice indexed by rank,
	// visible to all ranks.
	AllGather(words int64, payload any) ([]any, error)
}

// The simulated machine's processors implement Transport as-is; the
// algorithms in algo.go were lifted off simnet.Proc without change.
var _ Transport = (*simnet.Proc)(nil)
