package parallel

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"opaq/internal/core"
	"opaq/internal/datagen"
	"opaq/internal/runio"
)

// The TCP mesh moves every payload shape algo.go uses — element blocks,
// block metadata, AllGather vectors — and the primitives behave like the
// in-process transport: ordered per-peer delivery, symmetric Exchange,
// rendezvous Barrier, rank-0-shaped AllGather.
func TestNetTransportPrimitives(t *testing.T) {
	const p = 4
	m, err := newNetMachine[int64](p, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	gathered := make([][]any, p)
	err = m.Run(func(tr Transport) error {
		id := tr.ID()
		if tr.P() != p {
			return fmt.Errorf("P() = %d, want %d", tr.P(), p)
		}

		// Ring Send/Recv of element blocks: ordered, content-preserving.
		next, prev := (id+1)%p, (id+p-1)%p
		block := []int64{int64(id) * 100, int64(id)*100 + 1}
		if err := tr.Send(next, 2, block); err != nil {
			return err
		}
		v, err := tr.Recv(prev)
		if err != nil {
			return err
		}
		got, ok := v.([]int64)
		if !ok || !reflect.DeepEqual(got, []int64{int64(prev) * 100, int64(prev)*100 + 1}) {
			return fmt.Errorf("rank %d ring recv = %#v", id, v)
		}

		// Exchange of blockMeta with an XOR partner (the bitonic pattern).
		partner := id ^ 1
		meta := blockMeta[int64]{n: id + 1, max: int64(id) * 7}
		mv, err := tr.Exchange(partner, 2, meta)
		if err != nil {
			return err
		}
		gotMeta, ok := mv.(blockMeta[int64])
		if !ok || gotMeta.n != partner+1 || gotMeta.max != int64(partner)*7 {
			return fmt.Errorf("rank %d exchange = %#v", id, mv)
		}

		if err := tr.Barrier(); err != nil {
			return err
		}

		// AllGather of per-rank blocks; every rank sees the same vector.
		all, err := tr.AllGather(1, []int64{int64(id)})
		if err != nil {
			return err
		}
		gathered[id] = all
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, all := range gathered {
		if len(all) != p {
			t.Fatalf("rank %d gathered %d entries", id, len(all))
		}
		for r, v := range all {
			if got, ok := v.([]int64); !ok || len(got) != 1 || got[0] != int64(r) {
				t.Errorf("rank %d slot %d = %#v", id, r, v)
			}
		}
	}
}

// A failing rank aborts the machine: peers blocked in Recv/Barrier unblock
// with errAborted, and Run reports the root cause, not the avalanche.
func TestNetTransportAbort(t *testing.T) {
	const p = 3
	m, err := newNetMachine[int64](p, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rank 1 exploded")
	err = m.Run(func(tr Transport) error {
		switch tr.ID() {
		case 1:
			return boom
		default:
			// Would block forever without abort propagation.
			if _, err := tr.Recv(1); !errors.Is(err, errAborted) {
				return fmt.Errorf("recv after abort: %v", err)
			}
			if err := tr.Barrier(); !errors.Is(err, errAborted) {
				return fmt.Errorf("barrier after abort: %v", err)
			}
			return errAborted
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the root cause %v", err, boom)
	}
}

// The tagged payload codec round-trips every shape, including one level of
// vector nesting, and rejects malformed bytes instead of panicking.
func TestNetPayloadCodec(t *testing.T) {
	codec := runio.Int64Codec{}
	payloads := []any{
		[]int64{},
		[]int64{1, -2, 3},
		blockMeta[int64]{n: 0, max: 0},
		blockMeta[int64]{n: 42, max: -7},
		[]any{[]int64{1, 2}, blockMeta[int64]{n: 3, max: 9}, []int64{}},
	}
	for _, want := range payloads {
		buf, err := encodePayload(codec, nil, want)
		if err != nil {
			t.Fatalf("encode %#v: %v", want, err)
		}
		got, err := decodePayload[int64](codec, buf)
		if err != nil {
			t.Fatalf("decode %#v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %#v -> %#v", want, got)
		}
	}

	if _, err := encodePayload(codec, nil, "not a payload"); err == nil {
		t.Error("encoding an unsupported type should fail")
	}
	bad := [][]byte{
		nil,                                    // empty
		{99},                                   // unknown tag
		{netTagElems, 1, 2, 3},                 // ragged element bytes
		{netTagMeta, 1, 2},                     // short meta
		{netTagVector, 1},                      // short vector header
		{netTagVector, 2, 0, 0, 0, 1, 0, 0, 0}, // truncated items
	}
	for _, buf := range bad {
		if _, err := decodePayload[int64](codec, buf); err == nil {
			t.Errorf("decoding % x should fail", buf)
		}
	}
}

// A single-rank mesh degenerates cleanly (no sockets needed beyond the
// listener): Barrier and AllGather are local no-ops.
func TestNetTransportSingleRank(t *testing.T) {
	m, err := newNetMachine[int64](1, runio.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(func(tr Transport) error {
		if err := tr.Barrier(); err != nil {
			return err
		}
		all, err := tr.AllGather(1, []int64{7})
		if err != nil {
			return err
		}
		if len(all) != 1 {
			return fmt.Errorf("gathered %d entries", len(all))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A full sharded build over the TCP mesh with the float64 codec stays
// byte-identical to the sequential build — the transport is type-generic
// through CodecFor, not special-cased to int64.
func TestBuildShardedTCPFloat64(t *testing.T) {
	const runLen = 256
	cfg := core.Config{RunLen: runLen, SampleSize: 32}
	xs := make([]float64, 8*runLen)
	g := datagen.NewNormal(11, 0, 1e6)
	for i := range xs {
		xs[i] = float64(g.Next()) / 1e3
	}
	seq, err := core.BuildFromSlice(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pieces, err := ShardSlices(xs, 4, runLen)
	if err != nil {
		t.Fatal(err)
	}
	datasets := make([]runio.Dataset[float64], len(pieces))
	for i, p := range pieces {
		datasets[i] = runio.NewMemoryDataset(p, 8)
	}
	got, err := BuildSharded(datasets, cfg, ShardOptions{Merge: SampleMerge, Transport: TransportTCP})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryBytes(t, got), summaryBytes(t, seq)) {
		t.Error("TCP float64 sharded summary differs from sequential build")
	}
}

// Element types without a runio codec are rejected up front, not at the
// first Send.
func TestBuildShardedTCPUnsupportedType(t *testing.T) {
	cfg := core.Config{RunLen: 100, SampleSize: 10}
	ds := []runio.Dataset[string]{runio.NewMemoryDataset([]string{"a", "b"}, 8)}
	_, err := BuildSharded(ds, cfg, ShardOptions{Transport: TransportTCP})
	if !errors.Is(err, core.ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}
