// Package parallel implements the parallel formulation of OPAQ (paper,
// Section 3) as a transport-agnostic sharded quantile engine.
//
// Each of the p ranks owns n/p elements, runs the sequential sample phase
// locally (read runs, multi-select regular samples, merge the local sample
// lists), and then the p local sorted sample lists are merged into a
// globally sorted, block-distributed sample list by one of two algorithms:
//
//   - Bitonic merge: the bitonic sorting network over sorted blocks, with
//     compare-exchange replaced by merge-split. O((rs·(1+log p)·log p)·α +
//     (1+log p)·log p·(τ + μ·rs)) — the paper's Table 8, first row.
//   - Sample merge: parallel sorting by regular sampling without the
//     initial local sort (the lists are already sorted): pick p regular
//     samples per rank, gather, choose p−1 splitters, partition, all to
//     all, local multiway merge. The paper's Table 8, second row.
//
// The quantile phase is the sequential one with r·p total runs.
//
// The algorithms (algo.go) are written against the Transport interface and
// are generic over cmp.Ordered, so the same code serves two machines:
//
//   - Run executes on the simulated message-passing machine of
//     internal/simnet, whose cost model provides the execution-time results
//     of Figures 3–6 and Tables 11–12. Real data still moves between
//     goroutines and the resulting bounds are bit-identical to a sequential
//     OPAQ over the concatenated data (tests assert this).
//   - BuildSharded executes on the real in-process transport (real.go):
//     goroutines and channels, no cost model — the production engine for
//     sharded datasets, whose local phase reuses the concurrent build
//     pipeline of internal/core.
package parallel

import (
	"cmp"
	"fmt"
	"math/rand"
	"time"

	"opaq/internal/core"
	"opaq/internal/merge"
	"opaq/internal/runio"
	"opaq/internal/selection"
	"opaq/internal/simnet"
)

// MergeAlgo selects the global merge algorithm.
type MergeAlgo int

// The two global merge algorithms the paper evaluates (Figure 3).
const (
	// BitonicMerge is the bitonic network with merge-split; requires the
	// rank count to be a power of two.
	BitonicMerge MergeAlgo = iota
	// SampleMerge is PSRS-style splitter-based merging; any rank count.
	SampleMerge
)

// String names the algorithm for reports.
func (a MergeAlgo) String() string {
	switch a {
	case BitonicMerge:
		return "bitonic"
	case SampleMerge:
		return "sample"
	default:
		return fmt.Sprintf("MergeAlgo(%d)", int(a))
	}
}

// validMergeAlgo checks algo against the rank count (bitonic needs a power
// of two).
func validMergeAlgo(algo MergeAlgo, p int) error {
	if algo == BitonicMerge && p&(p-1) != 0 {
		return fmt.Errorf("%w: bitonic merge requires power-of-two ranks, got %d",
			core.ErrConfig, p)
	}
	if algo != BitonicMerge && algo != SampleMerge {
		return fmt.Errorf("%w: unknown merge algorithm %d", core.ErrConfig, int(algo))
	}
	return nil
}

// Config parameterizes a parallel OPAQ execution on the simulated machine.
type Config struct {
	// Core carries m (RunLen) and s (SampleSize) per the sequential phase.
	Core core.Config
	// Procs is p. BitonicMerge requires a power of two.
	Procs int
	// Merge selects the global merge algorithm.
	Merge MergeAlgo
	// Model is the two-level machine cost model.
	Model simnet.CostModel
	// Disk converts per-rank I/O accounting into simulated time.
	Disk runio.DiskModel
	// OverlapIO enables the paper's future-work optimization (Section 4):
	// reading the next run proceeds concurrently with sampling the current
	// one, so the I/O and sampling phases cost max(t_io, t_sampling)
	// instead of their sum. The real-concurrency analogue for sequential
	// scans is runio.Prefetch.
	OverlapIO bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if c.Procs < 1 {
		return fmt.Errorf("%w: Procs must be ≥ 1, got %d", core.ErrConfig, c.Procs)
	}
	return validMergeAlgo(c.Merge, c.Procs)
}

// PhaseTimes is the per-phase simulated time breakdown the paper reports in
// Table 12 (I/O, sampling, local merge, global merge).
type PhaseTimes struct {
	IO          time.Duration
	Sampling    time.Duration
	LocalMerge  time.Duration
	GlobalMerge time.Duration
	// Overlapped records whether I/O and sampling ran concurrently
	// (Config.OverlapIO); Total then charges max(IO, Sampling) for the
	// pair instead of their sum.
	Overlapped bool
}

// Total sums the phases, honoring I/O–sampling overlap.
func (pt PhaseTimes) Total() time.Duration {
	first := pt.IO + pt.Sampling
	if pt.Overlapped {
		first = maxDur(pt.IO, pt.Sampling)
	}
	return first + pt.LocalMerge + pt.GlobalMerge
}

// Result of a parallel OPAQ execution on the simulated machine.
type Result[T cmp.Ordered] struct {
	// Summary is the global summary; its bounds equal the sequential
	// algorithm's with r·p runs.
	Summary *core.Summary[T]
	// Phases is the per-phase breakdown, taking the maximum over ranks per
	// phase (the paper's convention: phases are separated by barriers).
	Phases PhaseTimes
	// PerProc is each rank's own breakdown.
	PerProc []PhaseTimes
	// TotalTime is the parallel execution time (max rank clock).
	TotalTime time.Duration
}

// Run executes parallel OPAQ over the per-rank datasets in data (data[i] is
// rank i's n/p local elements, conceptually resident on its local disk) on
// the simulated machine. The cost model counts message words as 8-byte
// elements regardless of T, so the timing tables are invariant under the
// element type.
func Run[T cmp.Ordered](data [][]T, cfg Config) (*Result[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(data) != cfg.Procs {
		return nil, fmt.Errorf("%w: %d data shards for %d processors", core.ErrConfig, len(data), cfg.Procs)
	}
	m, err := simnet.NewMachine(cfg.Procs, cfg.Model)
	if err != nil {
		return nil, err
	}
	p := cfg.Procs
	perProc := make([]PhaseTimes, p)
	localParts := make([]core.SummaryParts[T], p) // local sample phase output
	globalBlocks := make([][]T, p)                // distributed global sample list

	err = m.Run(func(pr *simnet.Proc) error {
		return runRank[T](pr, data[pr.ID()], cfg, perProc, localParts, globalBlocks)
	})
	if err != nil {
		return nil, err
	}

	// Assemble the global summary (the quantile phase proper is O(1) per
	// quantile and charged to no phase, matching the paper's accounting).
	var all []T
	for _, b := range globalBlocks {
		all = append(all, b...)
	}
	sum, err := core.AssembleShards(localParts, all)
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}

	res := &Result[T]{
		Summary:   sum,
		PerProc:   perProc,
		TotalTime: m.MaxClock(),
	}
	res.Phases.Overlapped = cfg.OverlapIO
	for _, pt := range perProc {
		res.Phases.IO = maxDur(res.Phases.IO, pt.IO)
		res.Phases.Sampling = maxDur(res.Phases.Sampling, pt.Sampling)
		res.Phases.LocalMerge = maxDur(res.Phases.LocalMerge, pt.LocalMerge)
		res.Phases.GlobalMerge = maxDur(res.Phases.GlobalMerge, pt.GlobalMerge)
	}
	return res, nil
}

// runRank is the SPMD body of Run: one rank's local sample phase (with the
// cost model charged per the paper's Table 2) followed by the global merge.
// It is written against Transport, so it would execute on any machine; Run
// instantiates it on the simulator, where Charge/Compute/Clock drive the
// reported phase times.
func runRank[T cmp.Ordered](tr Transport, local []T, cfg Config,
	perProc []PhaseTimes, localParts []core.SummaryParts[T], globalBlocks [][]T) error {
	id := tr.ID()
	step := int64(cfg.Core.Step())
	rng := rand.New(rand.NewSource(cfg.Core.Seed + int64(id)))

	// ---- Phase 1: I/O. The local shard is read once, run by run. Under
	// OverlapIO the charge is deferred and folded into max(I/O, sampling)
	// after the sampling phase. ----
	runs := splitRuns(local, cfg.Core.RunLen)
	var stats runio.Stats
	stats.ReadOps = int64(len(runs))
	stats.BytesRead = int64(len(local)) * 8 // cost-model words are 8-byte elements
	ioTime := cfg.Disk.Time(stats)
	perProc[id].IO = ioTime
	perProc[id].Overlapped = cfg.OverlapIO
	if !cfg.OverlapIO {
		tr.Charge(ioTime)
	}

	// ---- Phase 2: sampling (multi-select per run). ----
	t0 := tr.Clock()
	var (
		sampleLists [][]T
		leftover    int64
		minV, maxV  T
	)
	for ri, run := range runs {
		for i, v := range run {
			if ri == 0 && i == 0 {
				minV, maxV = v, v
			} else {
				minV = min(minV, v)
				maxV = max(maxV, v)
			}
		}
		si := len(run) / int(step)
		leftover += int64(len(run) - si*int(step))
		if si == 0 {
			continue
		}
		ranks := make([]int, si)
		for k := 1; k <= si; k++ {
			ranks[k-1] = k*int(step) - 1
		}
		cp := append([]T(nil), run...)
		samples, err := selection.MultiSelect(cp, ranks, rng)
		if err != nil {
			return err
		}
		sampleLists = append(sampleLists, samples)
		// Cost: O(m·log s) per run (paper, Table 2).
		tr.Compute(int64(len(run)) * int64(ceilLog2(si+1)))
	}
	perProc[id].Sampling = tr.Clock() - t0
	if cfg.OverlapIO && ioTime > perProc[id].Sampling {
		// I/O was the longer leg; the rank stalls for the excess.
		tr.Charge(ioTime - perProc[id].Sampling)
	}

	// ---- Phase 3: local merge of the r sample lists. ----
	t0 = tr.Clock()
	localSamples := merge.KWay(sampleLists)
	tr.Compute(int64(len(localSamples)) * int64(ceilLog2(len(sampleLists)+1)))
	perProc[id].LocalMerge = tr.Clock() - t0

	localParts[id] = core.SummaryParts[T]{
		Samples:  localSamples,
		Step:     step,
		Runs:     int64(len(runs)),
		N:        int64(len(local)),
		Leftover: leftover,
		Min:      minV,
		Max:      maxV,
	}

	// ---- Phase 4: global merge of the p sorted sample lists. ----
	if err := tr.Barrier(); err != nil {
		return err
	}
	t0 = tr.Clock()
	block, err := globalMerge(tr, cfg.Merge, localSamples)
	if err != nil {
		return err
	}
	if err := tr.Barrier(); err != nil {
		return err
	}
	perProc[id].GlobalMerge = tr.Clock() - t0
	globalBlocks[id] = block
	return nil
}
