// Package parallel implements the parallel formulation of OPAQ (paper,
// Section 3) on the simulated message-passing machine of internal/simnet.
//
// Each of the p processors owns n/p elements, runs the sequential sample
// phase locally (read runs, multi-select regular samples, merge the local
// sample lists), and then the p local sorted sample lists are merged into a
// globally sorted, block-distributed sample list by one of two algorithms:
//
//   - Bitonic merge: the bitonic sorting network over sorted blocks, with
//     compare-exchange replaced by merge-split. O((rs·(1+log p)·log p)·α +
//     (1+log p)·log p·(τ + μ·rs)) — the paper's Table 8, first row.
//   - Sample merge: parallel sorting by regular sampling without the
//     initial local sort (the lists are already sorted): pick p regular
//     samples per processor, gather, choose p−1 splitters, partition, all
//     to all, local multiway merge. The paper's Table 8, second row.
//
// The quantile phase is the sequential one with r·p total runs. Real data
// moves between goroutines and the resulting bounds are bit-identical to a
// sequential OPAQ over the concatenated data (tests assert this); the
// simulated clocks provide the execution-time results of Figures 3–6 and
// Tables 11–12.
package parallel

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"opaq/internal/core"
	"opaq/internal/merge"
	"opaq/internal/runio"
	"opaq/internal/selection"
	"opaq/internal/simnet"
)

// MergeAlgo selects the global merge algorithm.
type MergeAlgo int

// The two global merge algorithms the paper evaluates (Figure 3).
const (
	// BitonicMerge is the bitonic network with merge-split; requires the
	// processor count to be a power of two.
	BitonicMerge MergeAlgo = iota
	// SampleMerge is PSRS-style splitter-based merging; any processor count.
	SampleMerge
)

// String names the algorithm for reports.
func (a MergeAlgo) String() string {
	switch a {
	case BitonicMerge:
		return "bitonic"
	case SampleMerge:
		return "sample"
	default:
		return fmt.Sprintf("MergeAlgo(%d)", int(a))
	}
}

// Config parameterizes a parallel OPAQ execution.
type Config struct {
	// Core carries m (RunLen) and s (SampleSize) per the sequential phase.
	Core core.Config
	// Procs is p. BitonicMerge requires a power of two.
	Procs int
	// Merge selects the global merge algorithm.
	Merge MergeAlgo
	// Model is the two-level machine cost model.
	Model simnet.CostModel
	// Disk converts per-processor I/O accounting into simulated time.
	Disk runio.DiskModel
	// OverlapIO enables the paper's future-work optimization (Section 4):
	// reading the next run proceeds concurrently with sampling the current
	// one, so the I/O and sampling phases cost max(t_io, t_sampling)
	// instead of their sum. The real-concurrency analogue for sequential
	// scans is runio.Prefetch.
	OverlapIO bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if c.Procs < 1 {
		return fmt.Errorf("%w: Procs must be ≥ 1, got %d", core.ErrConfig, c.Procs)
	}
	if c.Merge == BitonicMerge && c.Procs&(c.Procs-1) != 0 {
		return fmt.Errorf("%w: bitonic merge requires power-of-two processors, got %d",
			core.ErrConfig, c.Procs)
	}
	if c.Merge != BitonicMerge && c.Merge != SampleMerge {
		return fmt.Errorf("%w: unknown merge algorithm %d", core.ErrConfig, int(c.Merge))
	}
	return nil
}

// PhaseTimes is the per-phase simulated time breakdown the paper reports in
// Table 12 (I/O, sampling, local merge, global merge).
type PhaseTimes struct {
	IO          time.Duration
	Sampling    time.Duration
	LocalMerge  time.Duration
	GlobalMerge time.Duration
	// Overlapped records whether I/O and sampling ran concurrently
	// (Config.OverlapIO); Total then charges max(IO, Sampling) for the
	// pair instead of their sum.
	Overlapped bool
}

// Total sums the phases, honoring I/O–sampling overlap.
func (pt PhaseTimes) Total() time.Duration {
	first := pt.IO + pt.Sampling
	if pt.Overlapped {
		first = maxDur(pt.IO, pt.Sampling)
	}
	return first + pt.LocalMerge + pt.GlobalMerge
}

// Result of a parallel OPAQ execution.
type Result struct {
	// Summary is the global summary; its bounds equal the sequential
	// algorithm's with r·p runs.
	Summary *core.Summary[int64]
	// Phases is the per-phase breakdown, taking the maximum over
	// processors per phase (the paper's convention: phases are separated
	// by barriers).
	Phases PhaseTimes
	// PerProc is each processor's own breakdown.
	PerProc []PhaseTimes
	// TotalTime is the parallel execution time (max processor clock).
	TotalTime time.Duration
}

// Run executes parallel OPAQ over the per-processor datasets in data
// (data[i] is processor i's n/p local elements, conceptually resident on
// its local disk).
func Run(data [][]int64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(data) != cfg.Procs {
		return nil, fmt.Errorf("%w: %d data shards for %d processors", core.ErrConfig, len(data), cfg.Procs)
	}
	m, err := simnet.NewMachine(cfg.Procs, cfg.Model)
	if err != nil {
		return nil, err
	}
	p := cfg.Procs
	perProc := make([]PhaseTimes, p)
	localParts := make([]core.SummaryParts[int64], p) // local sample phase output
	globalBlocks := make([][]int64, p)                // distributed global sample list

	err = m.Run(func(pr *simnet.Proc) error {
		id := pr.ID()
		local := data[id]
		step := int64(cfg.Core.Step())
		rng := rand.New(rand.NewSource(cfg.Core.Seed + int64(id)))

		// ---- Phase 1: I/O. The local shard is read once, run by run.
		// Under OverlapIO the charge is deferred and folded into
		// max(I/O, sampling) after the sampling phase. ----
		runs := splitRuns(local, cfg.Core.RunLen)
		var stats runio.Stats
		stats.ReadOps = int64(len(runs))
		stats.BytesRead = int64(len(local)) * 8
		ioTime := cfg.Disk.Time(stats)
		perProc[id].IO = ioTime
		perProc[id].Overlapped = cfg.OverlapIO
		if !cfg.OverlapIO {
			pr.Charge(ioTime)
		}

		// ---- Phase 2: sampling (multi-select per run). ----
		t0 := pr.Clock()
		var (
			sampleLists [][]int64
			leftover    int64
			minV, maxV  int64
		)
		for ri, run := range runs {
			for i, v := range run {
				if ri == 0 && i == 0 {
					minV, maxV = v, v
				} else {
					if v < minV {
						minV = v
					}
					if v > maxV {
						maxV = v
					}
				}
			}
			si := len(run) / int(step)
			leftover += int64(len(run) - si*int(step))
			if si == 0 {
				continue
			}
			ranks := make([]int, si)
			for k := 1; k <= si; k++ {
				ranks[k-1] = k*int(step) - 1
			}
			cp := append([]int64(nil), run...)
			samples, err := selection.MultiSelect(cp, ranks, rng)
			if err != nil {
				return err
			}
			sampleLists = append(sampleLists, samples)
			// Cost: O(m·log s) per run (paper, Table 2).
			pr.Compute(int64(len(run)) * int64(ceilLog2(si+1)))
		}
		perProc[id].Sampling = pr.Clock() - t0
		if cfg.OverlapIO && ioTime > perProc[id].Sampling {
			// I/O was the longer leg; the processor stalls for the excess.
			pr.Charge(ioTime - perProc[id].Sampling)
		}

		// ---- Phase 3: local merge of the r sample lists. ----
		t0 = pr.Clock()
		localSamples := merge.KWay(sampleLists)
		pr.Compute(int64(len(localSamples)) * int64(ceilLog2(len(sampleLists)+1)))
		perProc[id].LocalMerge = pr.Clock() - t0

		localParts[id] = core.SummaryParts[int64]{
			Samples:  localSamples,
			Step:     step,
			Runs:     int64(len(runs)),
			N:        int64(len(local)),
			Leftover: leftover,
			Min:      minV,
			Max:      maxV,
		}

		// ---- Phase 4: global merge of the p sorted sample lists. ----
		if err := pr.Barrier(); err != nil {
			return err
		}
		t0 = pr.Clock()
		var block []int64
		var err error
		switch cfg.Merge {
		case BitonicMerge:
			block, err = bitonicMerge(pr, localSamples)
		case SampleMerge:
			block, err = sampleMerge(pr, localSamples)
		}
		if err != nil {
			return err
		}
		if err := pr.Barrier(); err != nil {
			return err
		}
		perProc[id].GlobalMerge = pr.Clock() - t0
		globalBlocks[id] = block
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble the global summary (the quantile phase proper is O(1) per
	// quantile and charged to no phase, matching the paper's accounting).
	var all []int64
	for _, b := range globalBlocks {
		all = append(all, b...)
	}
	// The bitonic network pads ragged blocks with MaxInt64 sentinels, which
	// sort to the tail; trimming to the exact expected sample count removes
	// the pads even if real MaxInt64 keys exist (counts are preserved).
	expected := 0
	for i := 0; i < p; i++ {
		expected += len(localParts[i].Samples)
	}
	if len(all) < expected {
		return nil, fmt.Errorf("parallel: global merge lost samples: %d < %d", len(all), expected)
	}
	all = all[:expected]
	if !merge.IsSorted(all) {
		return nil, fmt.Errorf("parallel: global merge produced an unsorted sample list")
	}
	gp := core.SummaryParts[int64]{Samples: all, Step: int64(cfg.Core.Step())}
	first := true
	for i := 0; i < p; i++ {
		lp := localParts[i]
		gp.Runs += lp.Runs
		gp.N += lp.N
		gp.Leftover += lp.Leftover
		if lp.N == 0 {
			continue
		}
		if first {
			gp.Min, gp.Max = lp.Min, lp.Max
			first = false
		} else {
			if lp.Min < gp.Min {
				gp.Min = lp.Min
			}
			if lp.Max > gp.Max {
				gp.Max = lp.Max
			}
		}
	}
	sum, err := core.NewSummary(gp)
	if err != nil {
		return nil, fmt.Errorf("parallel: assembling global summary: %w", err)
	}

	res := &Result{
		Summary:   sum,
		PerProc:   perProc,
		TotalTime: m.MaxClock(),
	}
	res.Phases.Overlapped = cfg.OverlapIO
	for _, pt := range perProc {
		res.Phases.IO = maxDur(res.Phases.IO, pt.IO)
		res.Phases.Sampling = maxDur(res.Phases.Sampling, pt.Sampling)
		res.Phases.LocalMerge = maxDur(res.Phases.LocalMerge, pt.LocalMerge)
		res.Phases.GlobalMerge = maxDur(res.Phases.GlobalMerge, pt.GlobalMerge)
	}
	return res, nil
}

// splitRuns cuts xs into consecutive runs of m elements (last may be short).
func splitRuns(xs []int64, m int) [][]int64 {
	var out [][]int64
	for len(xs) > 0 {
		end := m
		if end > len(xs) {
			end = len(xs)
		}
		out = append(out, xs[:end])
		xs = xs[end:]
	}
	return out
}

// bitonicMerge runs the bitonic sorting network over the p sorted blocks,
// one block per processor, with compare-exchange replaced by merge-split.
// Requires equal block sizes; blocks are padded to the global maximum with
// +Inf sentinels and unpadded at the end. Returns this processor's block of
// the globally sorted list.
func bitonicMerge(pr *simnet.Proc, local []int64) ([]int64, error) {
	p := pr.P()
	if p == 1 {
		return local, nil
	}
	// Agree on a common block size (ragged shards make sizes differ).
	sizes, err := pr.AllGather(1, len(local))
	if err != nil {
		return nil, err
	}
	blockLen := 0
	for _, s := range sizes {
		if s.(int) > blockLen {
			blockLen = s.(int)
		}
	}
	const pad = int64(^uint64(0) >> 1) // MaxInt64 sentinel; sorts last
	block := make([]int64, blockLen)
	copy(block, local)
	for i := len(local); i < blockLen; i++ {
		block[i] = pad
	}
	id := pr.ID()
	// Bitonic sorting network on p keys, operating on blocks.
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			partner := id ^ j
			ascending := id&k == 0
			keepLow := (id < partner) == ascending
			got, err := pr.Exchange(partner, int64(blockLen), block)
			if err != nil {
				return nil, err
			}
			other := got.([]int64)
			block = mergeSplit(block, other, keepLow)
			// Merge-split cost: one pass over both blocks.
			pr.Compute(int64(2 * blockLen))
		}
	}
	// Pad sentinels are stripped by the caller, which knows the exact
	// global sample count (they sort to the very end of the global list).
	return block, nil
}

// mergeSplit merges two sorted blocks of equal length and returns the low
// or high half.
func mergeSplit(a, b []int64, keepLow bool) []int64 {
	n := len(a)
	out := make([]int64, n)
	if keepLow {
		i, j := 0, 0
		for k := 0; k < n; k++ {
			if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
				out[k] = a[i]
				i++
			} else {
				out[k] = b[j]
				j++
			}
		}
		return out
	}
	i, j := len(a)-1, len(b)-1
	for k := n - 1; k >= 0; k-- {
		if j < 0 || (i >= 0 && a[i] > b[j]) {
			out[k] = a[i]
			i--
		} else {
			out[k] = b[j]
			j--
		}
	}
	return out
}

// sampleMerge merges the p sorted lists by regular sampling (PSRS without
// the local sort): gather p regular samples per processor, derive p−1
// splitters, partition each local list, all-to-all exchange, local k-way
// merge. Returns this processor's block of the globally sorted list
// (blocks are splitter-delimited, so sizes vary within the paper's bucket
// expansion bound β ≤ 3/2 in expectation).
func sampleMerge(pr *simnet.Proc, local []int64) ([]int64, error) {
	p := pr.P()
	if p == 1 {
		return local, nil
	}
	// Regular sample of p points from the local sorted list.
	probe := make([]int64, 0, p)
	for i := 1; i <= p; i++ {
		idx := i*len(local)/p - 1
		if idx < 0 {
			idx = 0
		}
		if len(local) > 0 {
			probe = append(probe, local[idx])
		}
	}
	gathered, err := pr.AllGather(int64(len(probe)), probe)
	if err != nil {
		return nil, err
	}
	var allProbes []int64
	for _, g := range gathered {
		allProbes = append(allProbes, g.([]int64)...)
	}
	sort.Slice(allProbes, func(i, j int) bool { return allProbes[i] < allProbes[j] })
	pr.Compute(int64(len(allProbes)) * int64(ceilLog2(len(allProbes)+1))) // splitter sort
	// p−1 splitters at regular positions.
	splitters := make([]int64, 0, p-1)
	for i := 1; i < p; i++ {
		idx := i * len(allProbes) / p
		if idx >= len(allProbes) {
			idx = len(allProbes) - 1
		}
		splitters = append(splitters, allProbes[idx])
	}
	// Partition the local sorted list by splitters (binary search).
	cuts := make([]int, 0, p+1)
	cuts = append(cuts, 0)
	for _, sp := range splitters {
		cuts = append(cuts, sort.Search(len(local), func(i int) bool { return local[i] > sp }))
	}
	cuts = append(cuts, len(local))
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	pr.Compute(int64(p) * int64(ceilLog2(len(local)+1)))
	// All-to-all: send partition j to processor j.
	id := pr.ID()
	pieces := make([][]int64, p)
	pieces[id] = local[cuts[id]:cuts[id+1]]
	for off := 1; off < p; off++ {
		to := (id + off) % p
		part := local[cuts[to]:cuts[to+1]]
		if err := pr.Send(to, int64(len(part)), part); err != nil {
			return nil, err
		}
	}
	for off := 1; off < p; off++ {
		from := (id - off + p) % p
		got, err := pr.Recv(from)
		if err != nil {
			return nil, err
		}
		pieces[from] = got.([]int64)
	}
	// Local k-way merge of the received sorted pieces.
	out := merge.KWay(pieces)
	pr.Compute(int64(len(out)) * int64(ceilLog2(p+1)))
	return out, nil
}

func ceilLog2(n int) int {
	l, v := 0, 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
