package parallel

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"opaq/internal/merge"
	"opaq/internal/simnet"
)

// GlobalMergeTime runs only the global merge step — p processors each
// holding a sorted list of listLen elements — under the given algorithm and
// cost model, and returns the simulated parallel time. This isolates the
// comparison of Figure 3 of the paper (bitonic vs sample merge for varying
// per-processor data sizes and processor counts).
//
// The merged output is validated (globally sorted, no elements lost), so
// the benchmark cannot silently time a broken merge.
func GlobalMergeTime(listLen, p int, algo MergeAlgo, model simnet.CostModel, seed int64) (time.Duration, error) {
	if listLen < 1 || p < 1 {
		return 0, fmt.Errorf("parallel: GlobalMergeTime needs positive listLen and p, got %d, %d", listLen, p)
	}
	if algo == BitonicMerge && p&(p-1) != 0 {
		return 0, fmt.Errorf("parallel: bitonic merge requires power-of-two p, got %d", p)
	}
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]int64, p)
	var all []int64
	for i := range lists {
		l := make([]int64, listLen)
		for j := range l {
			l[j] = rng.Int63n(1 << 40)
		}
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		lists[i] = l
		all = append(all, l...)
	}
	m, err := simnet.NewMachine(p, model)
	if err != nil {
		return 0, err
	}
	blocks := make([][]int64, p)
	err = m.Run(func(pr *simnet.Proc) error {
		var block []int64
		var err error
		switch algo {
		case BitonicMerge:
			block, err = bitonicMerge(pr, lists[pr.ID()])
		case SampleMerge:
			block, err = sampleMerge(pr, lists[pr.ID()])
		default:
			err = fmt.Errorf("parallel: unknown merge algorithm %d", int(algo))
		}
		if err != nil {
			return err
		}
		blocks[pr.ID()] = block
		return nil
	})
	if err != nil {
		return 0, err
	}
	var got []int64
	for _, b := range blocks {
		got = append(got, b...)
	}
	got = got[:len(all)] // strip bitonic pad sentinels (sort to the end)
	if !merge.IsSorted(got) {
		return 0, fmt.Errorf("parallel: %v merge produced unsorted output", algo)
	}
	return m.MaxClock(), nil
}
