package parallel

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"time"

	"opaq/internal/merge"
)

// This file holds the transport-agnostic algorithms of the parallel
// formulation: the two global sample-merge methods of the paper's Section 3,
// written against Transport so they run identically on the simulated
// machine (Run, the experiment tables) and on the real in-process engine
// (BuildSharded). Everything is generic over cmp.Ordered.

// globalMerge dispatches to the configured merge algorithm. local is this
// rank's sorted sample list; the return value is this rank's block of the
// globally sorted list.
func globalMerge[T cmp.Ordered](tr Transport, algo MergeAlgo, local []T) ([]T, error) {
	switch algo {
	case BitonicMerge:
		return bitonicMerge(tr, local)
	case SampleMerge:
		return sampleMerge(tr, local)
	default:
		return nil, fmt.Errorf("parallel: unknown merge algorithm %d", int(algo))
	}
}

// blockMeta is the control metadata ranks agree on before a bitonic merge:
// each rank's block length and (when non-empty) its largest sample. It is
// charged as one cost-model word, like any O(1) control message.
type blockMeta[T cmp.Ordered] struct {
	n   int
	max T // valid iff n > 0
}

// bitonicMerge runs the bitonic sorting network over the p sorted blocks,
// one block per rank, with compare-exchange replaced by merge-split.
// Requires equal block sizes; blocks are padded to the global maximum
// length with copies of the globally largest sample, which sort to the tail
// of the global list and are trimmed by the caller (core.AssembleShards
// knows the exact expected sample count, and since pads equal the true
// maximum, trimming preserves the multiset even when real keys tie with the
// pad). Returns this rank's block of the globally sorted list.
func bitonicMerge[T cmp.Ordered](tr Transport, local []T) ([]T, error) {
	p := tr.P()
	if p == 1 {
		return local, nil
	}
	// Agree on a common block size and pad value (ragged shards make sizes
	// differ; the pad must sort after every real sample).
	meta := blockMeta[T]{n: len(local)}
	if len(local) > 0 {
		meta.max = local[len(local)-1]
	}
	gathered, err := tr.AllGather(1, meta)
	if err != nil {
		return nil, err
	}
	blockLen := 0
	var pad T
	havePad := false
	for _, g := range gathered {
		bm := g.(blockMeta[T])
		if bm.n > blockLen {
			blockLen = bm.n
		}
		if bm.n > 0 && (!havePad || bm.max > pad) {
			pad, havePad = bm.max, true
		}
	}
	if blockLen == 0 {
		return local, nil
	}
	block := make([]T, blockLen)
	copy(block, local)
	for i := len(local); i < blockLen; i++ {
		block[i] = pad
	}
	id := tr.ID()
	// Bitonic sorting network on p keys, operating on blocks.
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			partner := id ^ j
			ascending := id&k == 0
			keepLow := (id < partner) == ascending
			got, err := tr.Exchange(partner, int64(blockLen), block)
			if err != nil {
				return nil, err
			}
			other := got.([]T)
			block = merge.Split(block, other, keepLow)
			// Merge-split cost: one pass over both blocks.
			tr.Compute(int64(2 * blockLen))
		}
	}
	return block, nil
}

// sampleMerge merges the p sorted lists by regular sampling (PSRS without
// the local sort): gather p regular samples per rank, derive p−1 splitters,
// partition each local list, all-to-all exchange, local k-way merge.
// Returns this rank's block of the globally sorted list (blocks are
// splitter-delimited, so sizes vary within the paper's bucket expansion
// bound β ≤ 3/2 in expectation).
func sampleMerge[T cmp.Ordered](tr Transport, local []T) ([]T, error) {
	p := tr.P()
	if p == 1 {
		return local, nil
	}
	// Regular sample of p points from the local sorted list.
	probe := make([]T, 0, p)
	for i := 1; i <= p; i++ {
		idx := i*len(local)/p - 1
		if idx < 0 {
			idx = 0
		}
		if len(local) > 0 {
			probe = append(probe, local[idx])
		}
	}
	gathered, err := tr.AllGather(int64(len(probe)), probe)
	if err != nil {
		return nil, err
	}
	var allProbes []T
	for _, g := range gathered {
		allProbes = append(allProbes, g.([]T)...)
	}
	if len(allProbes) == 0 {
		// A rank only probes a non-empty list, so no probes at all means
		// every rank's sample list is empty (e.g. every run shorter than
		// one sub-run): nothing to merge.
		return local, nil
	}
	slices.Sort(allProbes)
	tr.Compute(int64(len(allProbes)) * int64(ceilLog2(len(allProbes)+1))) // splitter sort
	// p−1 splitters at regular positions.
	splitters := make([]T, 0, p-1)
	for i := 1; i < p; i++ {
		idx := i * len(allProbes) / p
		if idx >= len(allProbes) {
			idx = len(allProbes) - 1
		}
		splitters = append(splitters, allProbes[idx])
	}
	// Partition the local sorted list by splitters (binary search).
	cuts := make([]int, 0, p+1)
	cuts = append(cuts, 0)
	for _, sp := range splitters {
		cuts = append(cuts, sort.Search(len(local), func(i int) bool { return local[i] > sp }))
	}
	cuts = append(cuts, len(local))
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	tr.Compute(int64(p) * int64(ceilLog2(len(local)+1)))
	// All-to-all: send partition j to rank j.
	id := tr.ID()
	pieces := make([][]T, p)
	pieces[id] = local[cuts[id]:cuts[id+1]]
	for off := 1; off < p; off++ {
		to := (id + off) % p
		part := local[cuts[to]:cuts[to+1]]
		if err := tr.Send(to, int64(len(part)), part); err != nil {
			return nil, err
		}
	}
	for off := 1; off < p; off++ {
		from := (id - off + p) % p
		got, err := tr.Recv(from)
		if err != nil {
			return nil, err
		}
		pieces[from] = got.([]T)
	}
	// Local k-way merge of the received sorted pieces.
	out := merge.KWay(pieces)
	tr.Compute(int64(len(out)) * int64(ceilLog2(p+1)))
	return out, nil
}

// splitRuns cuts xs into consecutive runs of m elements (last may be short).
func splitRuns[T any](xs []T, m int) [][]T {
	var out [][]T
	for len(xs) > 0 {
		end := m
		if end > len(xs) {
			end = len(xs)
		}
		out = append(out, xs[:end])
		xs = xs[end:]
	}
	return out
}

func ceilLog2(n int) int {
	l, v := 0, 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
