package parallel

import (
	"cmp"
	"fmt"

	"opaq/internal/core"
	"opaq/internal/runio"
)

// TransportKind selects the machine a sharded build runs on.
type TransportKind int

const (
	// TransportInProcess (the zero value) runs ranks as goroutines
	// exchanging payloads over channels — the fastest option when all
	// shards live in one process.
	TransportInProcess TransportKind = iota
	// TransportTCP runs ranks over a loopback TCP mesh speaking the runio
	// frame protocol — the same code path a multi-machine deployment
	// exercises, with real serialization and sockets on every exchange.
	TransportTCP
)

func (k TransportKind) String() string {
	switch k {
	case TransportInProcess:
		return "inprocess"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// machine abstracts the SPMD launchers (realMachine, netMachine) behind
// the one method BuildSharded needs.
type machine interface {
	Run(f func(tr Transport) error) error
}

// ShardOptions configures a sharded build.
type ShardOptions struct {
	// Shards is the engine's rank count. 0 means one rank per dataset;
	// any other value must equal len(datasets).
	Shards int
	// Merge selects the global sample-merge algorithm. BitonicMerge
	// requires a power-of-two shard count; SampleMerge (the zero value)
	// accepts any.
	Merge MergeAlgo
	// Transport selects the machine the build runs on. The zero value is
	// the in-process transport; TransportTCP moves every exchange over a
	// real socket (requires an element type with a runio codec).
	Transport TransportKind
}

// BuildSharded runs the sample phase over the per-shard datasets
// concurrently — one engine rank per dataset on the real in-process
// transport — and merges the per-shard sample lists into one global
// Summary with the configured global-merge algorithm. Each rank's local
// phase is the full sequential/concurrent pipeline of internal/core
// (cfg.Workers applies per shard), so a shard may itself be a disk-resident
// run file scanned with prefetch.
//
// The resulting Summary is bit-identical to a sequential Build over the
// concatenation of the shards whenever every shard but the last holds a
// whole number of runs (len % cfg.RunLen == 0) — run boundaries then fall
// in the same places, and every aggregate (sorted sample multiset, counts,
// extrema) is order-independent. Tests enforce this across shard counts,
// merge algorithms and transports. Ragged interior shards still yield a
// valid summary (short runs contribute proportionally fewer samples and
// widen ErrorBound), just not a bit-identical one.
func BuildSharded[T cmp.Ordered](datasets []runio.Dataset[T], cfg core.Config, opts ShardOptions) (*core.Summary[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := opts.Shards
	if p == 0 {
		p = len(datasets)
	}
	if p != len(datasets) {
		return nil, fmt.Errorf("%w: %d datasets for %d shards", core.ErrConfig, len(datasets), p)
	}
	if p < 1 {
		return nil, fmt.Errorf("%w: need at least one shard dataset", core.ErrConfig)
	}
	if err := validMergeAlgo(opts.Merge, p); err != nil {
		return nil, err
	}
	var (
		m   machine
		err error
	)
	switch opts.Transport {
	case TransportInProcess:
		m, err = newRealMachine(p)
	case TransportTCP:
		codec, ok := runio.CodecFor[T]()
		if !ok {
			return nil, fmt.Errorf("%w: element type %T has no runio codec (network transport)", core.ErrConfig, *new(T))
		}
		m, err = newNetMachine(p, codec)
	default:
		return nil, fmt.Errorf("%w: unknown transport kind %d", core.ErrConfig, int(opts.Transport))
	}
	if err != nil {
		return nil, err
	}
	localParts := make([]core.SummaryParts[T], p)
	globalBlocks := make([][]T, p)
	err = m.Run(func(tr Transport) error {
		id := tr.ID()
		sum, err := core.BuildFromDataset(datasets[id], cfg)
		if err != nil {
			return fmt.Errorf("parallel: shard %d local build: %w", id, err)
		}
		localParts[id] = sum.Parts()
		// The global merge needs every rank's local list finished; the
		// barrier is the phase boundary (as on the simulated machine).
		if err := tr.Barrier(); err != nil {
			return err
		}
		block, err := globalMerge(tr, opts.Merge, localParts[id].Samples)
		if err != nil {
			return err
		}
		globalBlocks[id] = block
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []T
	for _, b := range globalBlocks {
		all = append(all, b...)
	}
	sum, err := core.AssembleShards(localParts, all)
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	return sum, nil
}

// ShardSlices cuts xs into at most shards contiguous run-aligned pieces:
// every piece but the last holds a whole number of runLen-element runs, so
// a sharded build over the pieces is bit-identical to a sequential build
// over xs (see BuildSharded). Runs are distributed as evenly as possible;
// when there are fewer runs than shards, trailing pieces are empty.
func ShardSlices[T any](xs []T, shards, runLen int) ([][]T, error) {
	ranges, err := runio.ShardRanges(int64(len(xs)), shards, runLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrConfig, err)
	}
	out := make([][]T, len(ranges))
	for i, r := range ranges {
		out[i] = xs[r[0]:r[1]]
	}
	return out, nil
}
