package metrics

import (
	"math"
	"testing"

	"opaq/internal/core"
	"opaq/internal/datagen"
)

func TestOracleQuantile(t *testing.T) {
	o := NewOracle([]int64{5, 1, 3, 2, 4})
	cases := []struct {
		phi  float64
		want int64
	}{
		{0.2, 1}, {0.4, 2}, {0.5, 3}, {0.6, 3}, {0.8, 4}, {1.0, 5}, {0.01, 1},
	}
	for _, c := range cases {
		if got := o.Quantile(c.phi); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.phi, got, c.want)
		}
	}
}

func TestOracleRanks(t *testing.T) {
	o := NewOracle([]int64{1, 2, 2, 2, 5})
	if o.RankLE(2) != 4 || o.RankLT(2) != 1 {
		t.Errorf("RankLE/LT(2) = %d/%d, want 4/1", o.RankLE(2), o.RankLT(2))
	}
	if o.CountEq(2) != 3 {
		t.Errorf("CountEq(2) = %d, want 3", o.CountEq(2))
	}
	if o.CountIn(2, 5) != 4 {
		t.Errorf("CountIn(2,5) = %d, want 4", o.CountIn(2, 5))
	}
	if o.CountIn(5, 2) != 0 {
		t.Errorf("CountIn inverted should be 0")
	}
	if o.CountIn(0, 0) != 0 {
		t.Errorf("CountIn(0,0) = %d, want 0", o.CountIn(0, 0))
	}
}

func TestOracleDoesNotMutateInput(t *testing.T) {
	xs := []int64{3, 1, 2}
	NewOracle(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("NewOracle mutated its input")
	}
}

func TestRERAPerfectEstimate(t *testing.T) {
	// If the enclosure is exactly the true quantile value, RER_A = 0.
	o := NewOracle([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	encl := []Enclosure[int64]{{Phi: 0.5, Lower: 5, Upper: 5}}
	got, err := RERA(o, encl)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("RER_A of exact enclosure = %g, want 0", got[0])
	}
}

func TestRERAWideEnclosure(t *testing.T) {
	// Enclosure covering 4 extra elements of 10 → 40%.
	o := NewOracle([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	encl := []Enclosure[int64]{{Phi: 0.5, Lower: 3, Upper: 7}} // holds 3..7 = 5 elems, minus 1 dup of 5
	got, err := RERA(o, encl)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 40 {
		t.Errorf("RER_A = %g, want 40", got[0])
	}
}

func TestRERAInvertedEnclosure(t *testing.T) {
	o := NewOracle([]int64{1, 2, 3})
	if _, err := RERA(o, []Enclosure[int64]{{Phi: 0.5, Lower: 3, Upper: 1}}); err == nil {
		t.Fatal("inverted enclosure should error")
	}
}

func TestRERLPerfect(t *testing.T) {
	xs := make([]int64, 100)
	for i := range xs {
		xs[i] = int64(i)
	}
	o := NewOracle(xs)
	// Perfect dectile estimates → RER_L = 0.
	var encl []Enclosure[int64]
	for i := 1; i < 10; i++ {
		v := o.Quantile(float64(i) / 10)
		encl = append(encl, Enclosure[int64]{Phi: float64(i) / 10, Lower: v, Upper: v})
	}
	got, err := RERL(o, encl)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("RER_L of perfect estimates = %g, want 0", got)
	}
	gotN, err := RERN(o, encl)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != 0 {
		t.Errorf("RER_N of perfect estimates = %g, want 0", gotN)
	}
}

func TestRERLNeedsTwo(t *testing.T) {
	o := NewOracle([]int64{1, 2, 3})
	if _, err := RERL(o, []Enclosure[int64]{{Phi: 0.5, Lower: 2, Upper: 2}}); err == nil {
		t.Fatal("RER_L with one quantile should error")
	}
	if _, err := RERN(o, nil); err == nil {
		t.Fatal("RER_N with no quantiles should error")
	}
}

func TestRERNShiftedBound(t *testing.T) {
	xs := make([]int64, 100)
	for i := range xs {
		xs[i] = int64(i)
	}
	o := NewOracle(xs)
	// Dectiles of 0..99: quantile(0.1)=9 (rank 10). Shift the median's lower
	// bound down by 5 elements: DL=5, n/q=10 → RER_N = 50%.
	var encl []Enclosure[int64]
	for i := 1; i < 10; i++ {
		v := o.Quantile(float64(i) / 10)
		e := Enclosure[int64]{Phi: float64(i) / 10, Lower: v, Upper: v}
		if i == 5 {
			e.Lower = v - 6 // elements strictly between v-6 and v: 5 of them
		}
		encl = append(encl, e)
	}
	got, err := RERN(o, encl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("RER_N = %g, want 50", got)
	}
}

// Integration: OPAQ's measured error rates must respect the paper's
// analytic ceilings — RER_A ≤ 2/s·100, and the bound-to-truth distance
// n/s ⇒ RER_N ≤ (q/s)·100 (+ slack for ragged runs, none here).
func TestOPAQErrorCeilings(t *testing.T) {
	for _, dist := range []string{"uniform", "zipf"} {
		xs, err := datagen.PaperDataset(dist, 200_000, 3)
		if err != nil {
			t.Fatal(err)
		}
		const s = 500
		sum, err := core.BuildFromSlice(xs, core.Config{RunLen: 20_000, SampleSize: s})
		if err != nil {
			t.Fatal(err)
		}
		bounds, err := sum.Quantiles(10)
		if err != nil {
			t.Fatal(err)
		}
		encl := make([]Enclosure[int64], len(bounds))
		for i, b := range bounds {
			encl[i] = Enclosure[int64]{Phi: b.Phi, Lower: b.Lower, Upper: b.Upper}
		}
		o := NewOracle(xs)
		rera, err := RERA(o, encl)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range rera {
			if v > 2.0/s*100+0.05 {
				t.Errorf("%s dectile %d: RER_A = %g exceeds ceiling %g", dist, (i+1)*10, v, 2.0/s*100)
			}
		}
		rern, err := RERN(o, encl)
		if err != nil {
			t.Fatal(err)
		}
		// RER_N ceiling: bound distance n/s normalized by n/q → q/s·100 = 2%.
		if rern > 10.0/s*100*1.1 {
			t.Errorf("%s: RER_N = %g exceeds ceiling %g", dist, rern, 10.0/s*100)
		}
		rerl, err := RERL(o, encl)
		if err != nil {
			t.Fatal(err)
		}
		// Successive bounds each off by ≤ n/s ⇒ spacing off by ≤ 2n/s of
		// n/q ⇒ 2q/s·100 = 4%.
		if rerl > 2*10.0/s*100*1.1 {
			t.Errorf("%s: RER_L = %g exceeds ceiling %g", dist, rerl, 2*10.0/s*100)
		}
	}
}
