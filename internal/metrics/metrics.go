// Package metrics implements the three relative error rates the paper uses
// to evaluate quantile estimates (Section 2.4, Figure 2):
//
//   - RER_A ("A for Almaden", from [AS95]): per quantile, the number of
//     elements inside the estimated [e_l, e_u] enclosure minus the
//     duplicates of the true quantile value, as a percentage of n.
//   - RER_L ("L for Load balancing"): the worst relative deviation of the
//     spacing between successive estimated bounds from the spacing between
//     successive true quantiles.
//   - RER_N ("N for Normalized"): the worst distance (in elements) between
//     a true quantile and its bound, normalized by n/q rather than n.
//
// All measures are computed against a sorted copy of the data (the exact
// oracle). Counting is rank-based via binary search, so duplicates are
// handled exactly.
package metrics

import (
	"cmp"
	"fmt"
	"sort"
)

// Enclosure is one quantile's estimated lower/upper bound pair, as produced
// by any of the estimators under evaluation.
type Enclosure[T cmp.Ordered] struct {
	Phi          float64
	Lower, Upper T
}

// Oracle answers exact rank and quantile queries on a sorted dataset.
type Oracle[T cmp.Ordered] struct {
	sorted []T
}

// NewOracle sorts a copy of xs and returns the oracle over it.
func NewOracle[T cmp.Ordered](xs []T) *Oracle[T] {
	s := make([]T, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &Oracle[T]{sorted: s}
}

// NewOracleFromSorted wraps an already-sorted slice without copying.
func NewOracleFromSorted[T cmp.Ordered](sorted []T) *Oracle[T] {
	return &Oracle[T]{sorted: sorted}
}

// N returns the dataset size.
func (o *Oracle[T]) N() int { return len(o.sorted) }

// Quantile returns the exact φ-quantile: the element of rank ⌈φ·n⌉.
func (o *Oracle[T]) Quantile(phi float64) T {
	n := len(o.sorted)
	rank := int(phi * float64(n))
	if float64(rank) < phi*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return o.sorted[rank-1]
}

// Dectiles returns the q−1 exact quantiles φ = 1/q … (q−1)/q.
func (o *Oracle[T]) Dectiles(q int) []T {
	out := make([]T, q-1)
	for i := 1; i < q; i++ {
		out[i-1] = o.Quantile(float64(i) / float64(q))
	}
	return out
}

// RankLE returns the number of elements ≤ x.
func (o *Oracle[T]) RankLE(x T) int {
	return sort.Search(len(o.sorted), func(i int) bool { return o.sorted[i] > x })
}

// RankLT returns the number of elements < x.
func (o *Oracle[T]) RankLT(x T) int {
	return sort.Search(len(o.sorted), func(i int) bool { return o.sorted[i] >= x })
}

// CountIn returns the number of elements in the closed interval [a, b].
func (o *Oracle[T]) CountIn(a, b T) int {
	if b < a {
		return 0
	}
	return o.RankLE(b) - o.RankLT(a)
}

// CountEq returns the number of elements equal to x.
func (o *Oracle[T]) CountEq(x T) int { return o.RankLE(x) - o.RankLT(x) }

// RERA computes the paper's RER_A for each enclosure: the element count of
// [Lower, Upper] minus the duplicates of the exact quantile value, as a
// percentage of n. The paper's Tables 3, 5, 7 and 9 report this measure
// per dectile.
func RERA[T cmp.Ordered](o *Oracle[T], encl []Enclosure[T]) ([]float64, error) {
	if o.N() == 0 {
		return nil, fmt.Errorf("metrics: empty oracle")
	}
	out := make([]float64, len(encl))
	for i, e := range encl {
		if e.Upper < e.Lower {
			return nil, fmt.Errorf("metrics: enclosure %d inverted: [%v, %v]", i, e.Lower, e.Upper)
		}
		ne := o.CountIn(e.Lower, e.Upper)
		nt := o.CountEq(o.Quantile(e.Phi))
		v := float64(ne-nt) / float64(o.N()) * 100
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out, nil
}

// RERL computes the paper's RER_L over a full set of q−1 equally spaced
// enclosures: the maximum over i of the relative deviation of the spacing
// between successive estimated lower (and upper) bounds from the true
// spacing N_i between successive quantiles. Reported in Tables 4, 6, 10.
func RERL[T cmp.Ordered](o *Oracle[T], encl []Enclosure[T]) (float64, error) {
	if len(encl) < 2 {
		return 0, fmt.Errorf("metrics: RER_L needs at least two quantiles, got %d", len(encl))
	}
	q := len(encl) + 1
	worst := 0.0
	for i := 0; i+1 < len(encl); i++ {
		truthA := o.Quantile(float64(i+1) / float64(q))
		truthB := o.Quantile(float64(i+2) / float64(q))
		ni := o.RankLT(truthB) - o.RankLT(truthA)
		if ni == 0 {
			// Degenerate spacing (massive duplicates); the paper's measure
			// divides by N_i, so skip the undefined term.
			continue
		}
		nli := o.RankLT(encl[i+1].Lower) - o.RankLT(encl[i].Lower)
		nui := o.RankLT(encl[i+1].Upper) - o.RankLT(encl[i].Upper)
		dl := absf(float64(ni-nli)) / float64(ni)
		du := absf(float64(ni-nui)) / float64(ni)
		worst = maxf(worst, maxf(dl, du))
	}
	return worst * 100, nil
}

// RERN computes the paper's RER_N over q−1 equally spaced enclosures: the
// maximum over i of the element distance between the true quantile and its
// lower (and upper) bound, normalized by n/q. Reported in Tables 4, 6, 10.
func RERN[T cmp.Ordered](o *Oracle[T], encl []Enclosure[T]) (float64, error) {
	if len(encl) == 0 {
		return 0, fmt.Errorf("metrics: RER_N needs at least one quantile")
	}
	q := len(encl) + 1
	perQ := float64(o.N()) / float64(q)
	worst := 0.0
	for i, e := range encl {
		truth := o.Quantile(float64(i+1) / float64(q))
		// DL_i: elements strictly between the lower bound and the truth.
		dl := float64(o.RankLT(truth) - o.RankLE(e.Lower))
		du := float64(o.RankLT(e.Upper) - o.RankLE(truth))
		worst = maxf(worst, maxf(maxf(dl, 0), maxf(du, 0))/perQ)
	}
	return worst * 100, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
