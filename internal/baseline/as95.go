package baseline

import (
	"fmt"
	"sort"
)

// AgrawalSwami reimplements the one-pass interval algorithm of Agrawal and
// Swami, "A One-Pass Space-Efficient Algorithm for Finding Quantiles"
// (COMAD 1995) — the [AS95] comparison point of Table 7. The algorithm
// partitions the observed value range into at most k intervals and counts
// the values falling in each; boundaries are created from the data itself
// as it streams by and are re-adjusted (split the heaviest interval, merge
// the lightest neighbours) so the histogram stays approximately
// equi-depth. Quantiles are estimated by linear interpolation inside the
// interval containing the target rank.
//
// The paper's criticism of this algorithm — which Table 7 illustrates — is
// that it provides no deterministic bound on the error: a split can only
// divide an interval's count evenly by assumption, so skew inside an
// interval is invisible. This reimplementation follows the published
// description at the level of detail the OPAQ paper relies on (interval
// counts, on-the-fly boundary adjustment) and is documented in DESIGN.md
// as a substitution.
type AgrawalSwami struct {
	maxIv  int
	bounds []int64 // interval upper boundaries, sorted; len = #intervals
	counts []float64
	seen   int64
}

// NewAgrawalSwami creates an estimator with at most k intervals. Its
// memory footprint is 2k element-equivalents (boundary + count per
// interval).
func NewAgrawalSwami(k int) (*AgrawalSwami, error) {
	if k < 4 {
		return nil, fmt.Errorf("baseline: AgrawalSwami needs k ≥ 4 intervals, got %d", k)
	}
	return &AgrawalSwami{maxIv: k}, nil
}

// Name implements Estimator.
func (a *AgrawalSwami) Name() string { return "AS95" }

// MemoryElems implements Estimator: one boundary plus one count per
// interval.
func (a *AgrawalSwami) MemoryElems() int { return 2 * a.maxIv }

// Add implements Estimator.
func (a *AgrawalSwami) Add(x int64) {
	a.seen++
	// Bootstrap: the first maxIv distinct-ish values become boundaries.
	if len(a.bounds) < a.maxIv {
		i := sort.Search(len(a.bounds), func(i int) bool { return a.bounds[i] >= x })
		if i < len(a.bounds) && a.bounds[i] == x {
			a.counts[i]++
			return
		}
		a.bounds = append(a.bounds, 0)
		a.counts = append(a.counts, 0)
		copy(a.bounds[i+1:], a.bounds[i:])
		copy(a.counts[i+1:], a.counts[i:])
		a.bounds[i] = x
		a.counts[i] = 1
		return
	}
	// Steady state: count x into the first interval whose boundary ≥ x;
	// values above the top boundary stretch the last interval.
	i := sort.Search(len(a.bounds), func(i int) bool { return a.bounds[i] >= x })
	if i == len(a.bounds) {
		i--
		a.bounds[i] = x // extend the top boundary to cover the new maximum
	}
	a.counts[i]++
	// Re-adjust: if the hit interval grew beyond twice the ideal depth,
	// split it at its value midpoint (assuming intra-interval uniformity,
	// exactly the assumption that denies [AS95] a deterministic bound) and
	// merge the globally lightest adjacent pair to stay within k intervals.
	ideal := float64(a.seen) / float64(a.maxIv)
	if a.counts[i] > 2*ideal && ideal >= 1 {
		a.splitAndMerge(i)
	}
}

// splitAndMerge splits interval i at its value midpoint and merges the
// lightest adjacent pair elsewhere to restore the interval budget.
func (a *AgrawalSwami) splitAndMerge(i int) {
	var lo int64
	if i == 0 {
		lo = a.bounds[0] - 1 // open lower end: approximate with the boundary
	} else {
		lo = a.bounds[i-1]
	}
	hi := a.bounds[i]
	if hi-lo < 2 {
		return // nothing to split: boundaries are adjacent values
	}
	mid := lo + (hi-lo)/2
	// Find the lightest adjacent pair, excluding the interval being split.
	best, bestSum := -1, 0.0
	for j := 0; j+1 < len(a.bounds); j++ {
		if j == i || j+1 == i {
			continue
		}
		s := a.counts[j] + a.counts[j+1]
		if best == -1 || s < bestSum {
			best, bestSum = j, s
		}
	}
	if best == -1 {
		return
	}
	// Merge best and best+1.
	a.counts[best+1] += a.counts[best]
	copy(a.bounds[best:], a.bounds[best+1:])
	copy(a.counts[best:], a.counts[best+1:])
	a.bounds = a.bounds[:len(a.bounds)-1]
	a.counts = a.counts[:len(a.counts)-1]
	if best < i {
		i--
	}
	// Split i at mid: half the count on each side (uniformity assumption).
	a.bounds = append(a.bounds, 0)
	a.counts = append(a.counts, 0)
	copy(a.bounds[i+1:], a.bounds[i:])
	copy(a.counts[i+1:], a.counts[i:])
	a.bounds[i] = mid
	half := a.counts[i+1] / 2
	a.counts[i] = half
	a.counts[i+1] -= half
}

// Quantile implements Estimator: it returns the upper boundary of the
// interval containing the target rank, as the interval-count algorithms of
// [AS95]/[SD77] do — the estimate's rank error is up to one interval's
// population, which is exactly why the paper notes the approach carries no
// deterministic bound (interval populations drift under skew).
func (a *AgrawalSwami) Quantile(phi float64) (int64, error) {
	if a.seen == 0 {
		return 0, ErrNoData
	}
	if !(phi > 0 && phi <= 1) { // positive phrasing also rejects NaN
		return 0, fmt.Errorf("baseline: phi=%g out of (0,1]", phi)
	}
	target := phi * float64(a.seen)
	cum := 0.0
	for i, c := range a.counts {
		if cum+c >= target {
			return a.bounds[i], nil
		}
		cum += c
	}
	return a.bounds[len(a.bounds)-1], nil
}
