package baseline

import (
	"errors"
	"math"
	"sort"
	"testing"

	"opaq/internal/datagen"
	"opaq/internal/metrics"
)

func feed(e Estimator, xs []int64) {
	for _, x := range xs {
		e.Add(x)
	}
}

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Fatal("k=0 should fail")
	}
	r, err := NewReservoir(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Quantile(0.5); !errors.Is(err, ErrNoData) {
		t.Fatalf("Quantile before data = %v, want ErrNoData", err)
	}
	r.Add(5)
	if _, err := r.Quantile(0); err == nil {
		t.Fatal("phi=0 should fail")
	}
	if _, err := r.Quantile(1.5); err == nil {
		t.Fatal("phi>1 should fail")
	}
}

func TestReservoirSmallStreamExact(t *testing.T) {
	// Stream smaller than the reservoir: quantiles are exact.
	r, _ := NewReservoir(100, 1)
	feed(r, []int64{9, 1, 5, 3, 7})
	got, err := r.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("median = %d, want 5", got)
	}
}

func TestReservoirAccuracyUniform(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(3, 1_000_000), 100_000)
	r, _ := NewReservoir(3000, 7)
	feed(r, xs)
	o := metrics.NewOracle(xs)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got, err := r.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		truth := o.Quantile(phi)
		// A 3000-point sample should land within ~2% of n in rank terms.
		rankErr := math.Abs(float64(o.RankLE(got) - o.RankLE(truth)))
		if rankErr/float64(len(xs)) > 0.02 {
			t.Errorf("phi=%g: rank error %g too large", phi, rankErr/float64(len(xs)))
		}
	}
	if r.MemoryElems() != 3000 {
		t.Errorf("MemoryElems = %d", r.MemoryElems())
	}
}

func TestAS95Validation(t *testing.T) {
	if _, err := NewAgrawalSwami(2); err == nil {
		t.Fatal("k=2 should fail")
	}
	a, err := NewAgrawalSwami(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Quantile(0.5); !errors.Is(err, ErrNoData) {
		t.Fatal("Quantile before data should fail with ErrNoData")
	}
	a.Add(1)
	if _, err := a.Quantile(-0.1); err == nil {
		t.Fatal("phi<0 should fail")
	}
}

func TestAS95Accuracy(t *testing.T) {
	for _, dist := range []string{"uniform", "zipf"} {
		xs, err := datagen.PaperDataset(dist, 100_000, 5)
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAgrawalSwami(1500) // 3000 element-equivalents
		if err != nil {
			t.Fatal(err)
		}
		feed(a, xs)
		o := metrics.NewOracle(xs)
		for _, phi := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			got, err := a.Quantile(phi)
			if err != nil {
				t.Fatal(err)
			}
			truth := o.Quantile(phi)
			rankErr := math.Abs(float64(o.RankLE(got)-o.RankLE(truth))) / float64(len(xs))
			if rankErr > 0.05 {
				t.Errorf("%s phi=%g: rank error %.4f too large (got %d, truth %d)",
					dist, phi, rankErr, got, truth)
			}
		}
	}
}

func TestAS95MonotoneQuantiles(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(11, 1<<30), 50_000)
	a, _ := NewAgrawalSwami(500)
	feed(a, xs)
	prev := int64(math.MinInt64)
	for q := 1; q <= 9; q++ {
		v, err := a.Quantile(float64(q) / 10)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("quantile %d0%% = %d < previous %d", q, v, prev)
		}
		prev = v
	}
}

func TestP2Validation(t *testing.T) {
	if _, err := NewP2(0); err == nil {
		t.Fatal("phi=0 should fail")
	}
	if _, err := NewP2(1); err == nil {
		t.Fatal("phi=1 should fail")
	}
	p, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Quantile(0.5); !errors.Is(err, ErrNoData) {
		t.Fatal("Quantile before data should fail")
	}
	p.Add(1)
	if _, err := p.Quantile(0.9); err == nil {
		t.Fatal("asking a 0.5-instance for 0.9 should fail")
	}
}

func TestP2FewObservations(t *testing.T) {
	p, _ := NewP2(0.5)
	p.Add(10)
	p.Add(30)
	p.Add(20)
	got, err := p.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("median of {10,20,30} = %d, want 20", got)
	}
}

func TestP2AccuracyUniform(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(13, 1_000_000), 200_000)
	o := metrics.NewOracle(xs)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		p, err := NewP2(phi)
		if err != nil {
			t.Fatal(err)
		}
		feed(p, xs)
		got, err := p.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		truth := o.Quantile(phi)
		rankErr := math.Abs(float64(o.RankLE(got)-o.RankLE(truth))) / float64(len(xs))
		// P² on uniform data converges to ~1% rank error.
		if rankErr > 0.03 {
			t.Errorf("phi=%g: P2 rank error %.4f (got %d, truth %d)", phi, rankErr, got, truth)
		}
	}
}

func TestP2MemoryConstant(t *testing.T) {
	p, _ := NewP2(0.5)
	if p.MemoryElems() != 15 {
		t.Errorf("MemoryElems = %d, want 15", p.MemoryElems())
	}
	for i := 0; i < 100_000; i++ {
		p.Add(int64(i * 7 % 9973))
	}
	if p.MemoryElems() != 15 {
		t.Error("P2 memory grew with the stream")
	}
}

// Sanity: each estimator's median of a known permutation of 1..n is close
// to n/2.
func TestAllEstimatorsMedianSanity(t *testing.T) {
	n := 10_001
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64((i*7919)%n + 1) // permutation of 1..n
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	res, _ := NewReservoir(2000, 3)
	as, _ := NewAgrawalSwami(200)
	p2, _ := NewP2(0.5)
	for _, e := range []Estimator{res, as, p2} {
		feed(e, xs)
		got, err := e.Quantile(0.5)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if math.Abs(float64(got)-float64(n)/2) > float64(n)/20 {
			t.Errorf("%s median = %d, want ≈%d", e.Name(), got, n/2)
		}
	}
}

func TestP2HistogramValidation(t *testing.T) {
	if _, err := NewP2Histogram(1); err == nil {
		t.Fatal("b=1 should fail")
	}
	h, err := NewP2Histogram(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Quantile(0.5); !errors.Is(err, ErrNoData) {
		t.Fatal("Quantile before data should fail")
	}
	h.Add(1)
	if _, err := h.Quantile(0); err == nil {
		t.Fatal("phi=0 should fail")
	}
}

func TestP2HistogramFewObservations(t *testing.T) {
	h, _ := NewP2Histogram(5)
	for _, v := range []int64{30, 10, 20} {
		h.Add(v)
	}
	got, err := h.Quantile(0.5)
	if err != nil || got != 20 {
		t.Fatalf("median of {10,20,30} = %d, %v", got, err)
	}
}

func TestP2HistogramAccuracyUniform(t *testing.T) {
	xs := datagen.Generate(datagen.NewUniform(29, 1_000_000), 200_000)
	h, err := NewP2Histogram(16)
	if err != nil {
		t.Fatal(err)
	}
	feed(h, xs)
	o := metrics.NewOracle(xs)
	for _, phi := range []float64{0.125, 0.25, 0.5, 0.75, 0.875} {
		got, err := h.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		truth := o.Quantile(phi)
		rankErr := math.Abs(float64(o.RankLE(got)-o.RankLE(truth))) / float64(len(xs))
		if rankErr > 0.03 {
			t.Errorf("phi=%g: rank error %.4f (got %d, truth %d)", phi, rankErr, got, truth)
		}
	}
	if h.MemoryElems() != 3*(2*16+1) {
		t.Errorf("MemoryElems = %d", h.MemoryElems())
	}
}

func TestP2HistogramMonotoneCells(t *testing.T) {
	xs := datagen.Generate(datagen.NewNormal(31, 1e6, 1e5), 100_000)
	h, _ := NewP2Histogram(8)
	feed(h, xs)
	cells := h.Cells()
	for i := 1; i < len(cells); i++ {
		if cells[i] < cells[i-1] {
			t.Fatalf("cell boundaries not monotone at %d: %v", i, cells)
		}
	}
}

func TestP2HistogramMemoryConstant(t *testing.T) {
	h, _ := NewP2Histogram(12)
	before := h.MemoryElems()
	for i := 0; i < 300_000; i++ {
		h.Add(int64(i*31 + i%7))
	}
	if h.MemoryElems() != before {
		t.Error("P2Histogram memory grew with the stream")
	}
}
