// Package baseline implements the competing quantile estimators the paper
// compares OPAQ against (Section 1 and Table 7):
//
//   - Reservoir: random sampling ([Coc77] in the paper, Vitter's
//     Algorithm R) — sort a uniform sample, read quantiles off it.
//     Probabilistic accuracy only.
//   - AgrawalSwami: the one-pass adaptive-interval algorithm of [AS95].
//     Maintains a bounded equi-depth histogram whose bucket boundaries are
//     adjusted on the fly; no a-priori knowledge of the distribution, no
//     deterministic error bound (the paper's stated limitation of [AS95]).
//   - P2: the P² algorithm of Jain & Chlamtac ([RC85] in the paper):
//     constant memory (five markers per quantile), parabolic interpolation,
//     no error bounds.
//
// All estimators consume a stream of int64 keys (the paper's evaluation
// uses integer keys) and implement the common Estimator interface, so the
// Table 7 harness can drive them interchangeably under an equal memory
// budget.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrNoData is returned when a quantile is requested before any input.
var ErrNoData = errors.New("baseline: no data observed")

// Estimator is a one-pass streaming quantile estimator.
type Estimator interface {
	// Name identifies the estimator in reports.
	Name() string
	// Add observes one element of the stream.
	Add(x int64)
	// Quantile estimates the φ-quantile of everything observed so far.
	Quantile(phi float64) (int64, error)
	// MemoryElems reports the estimator's element-sized memory footprint,
	// used to run equal-memory comparisons (Table 7 gives every algorithm
	// memory equivalent to 3000 sample points).
	MemoryElems() int
}

// Reservoir is uniform random sampling without replacement over a stream
// (Vitter's Algorithm R). Quantiles are read off the sorted reservoir.
type Reservoir struct {
	k    int
	seen int64
	rng  *rand.Rand
	buf  []int64
}

// NewReservoir creates a reservoir of k sample slots.
func NewReservoir(k int, seed int64) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("baseline: reservoir size must be positive, got %d", k)
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewSource(seed)), buf: make([]int64, 0, k)}, nil
}

// Name implements Estimator.
func (r *Reservoir) Name() string { return "random-sample" }

// Add implements Estimator.
func (r *Reservoir) Add(x int64) {
	r.seen++
	if len(r.buf) < r.k {
		r.buf = append(r.buf, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.k) {
		r.buf[j] = x
	}
}

// Quantile implements Estimator.
func (r *Reservoir) Quantile(phi float64) (int64, error) {
	if len(r.buf) == 0 {
		return 0, ErrNoData
	}
	if !(phi > 0 && phi <= 1) { // positive phrasing also rejects NaN
		return 0, fmt.Errorf("baseline: phi=%g out of (0,1]", phi)
	}
	s := append([]int64(nil), r.buf...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(phi * float64(len(s)))
	if float64(rank) < phi*float64(len(s)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1], nil
}

// MemoryElems implements Estimator.
func (r *Reservoir) MemoryElems() int { return r.k }
