package baseline

import (
	"fmt"
	"sort"
)

// P2Histogram is the histogram mode of the P² algorithm ([RC85], Section
// "The P² Algorithm for Histograms"): instead of five markers around one
// quantile, it maintains 2b+1 markers whose desired positions are evenly
// spaced, yielding a b-cell equi-probable histogram — all quantiles
// i/(2b), i = 0..2b, tracked simultaneously in O(b) memory with no stored
// observations. Like single-quantile P², it offers no error bounds; it is
// included as the richer [RC85] comparison point against OPAQ summaries.
type P2Histogram struct {
	cells   int
	markers int
	n       int
	heights []float64
	pos     []float64
	want    []float64
	dn      []float64
	init    []float64
}

// NewP2Histogram creates a P² histogram with b cells (2b+1 markers).
func NewP2Histogram(b int) (*P2Histogram, error) {
	if b < 2 {
		return nil, fmt.Errorf("baseline: P2Histogram needs ≥2 cells, got %d", b)
	}
	m := 2*b + 1
	h := &P2Histogram{
		cells:   b,
		markers: m,
		heights: make([]float64, m),
		pos:     make([]float64, m),
		want:    make([]float64, m),
		dn:      make([]float64, m),
	}
	for i := 0; i < m; i++ {
		h.dn[i] = float64(i) / float64(m-1)
	}
	return h, nil
}

// Name implements Estimator.
func (h *P2Histogram) Name() string { return "P2-histogram" }

// MemoryElems implements Estimator: 3 float64 per marker.
func (h *P2Histogram) MemoryElems() int { return 3 * h.markers }

// Add implements Estimator.
func (h *P2Histogram) Add(x int64) {
	v := float64(x)
	if h.n < h.markers {
		h.init = append(h.init, v)
		h.n++
		if h.n == h.markers {
			sort.Float64s(h.init)
			for i := 0; i < h.markers; i++ {
				h.heights[i] = h.init[i]
				h.pos[i] = float64(i + 1)
				h.want[i] = 1 + float64(i)*float64(h.n-1)/float64(h.markers-1)
			}
			h.init = nil
		}
		return
	}
	h.n++
	// Locate the cell and bump extreme heights.
	var k int
	switch {
	case v < h.heights[0]:
		h.heights[0] = v
		k = 0
	case v >= h.heights[h.markers-1]:
		h.heights[h.markers-1] = v
		k = h.markers - 2
	default:
		k = sort.SearchFloat64s(h.heights, v)
		if k > 0 && h.heights[k] > v {
			k--
		}
		if k >= h.markers-1 {
			k = h.markers - 2
		}
	}
	for i := k + 1; i < h.markers; i++ {
		h.pos[i]++
	}
	for i := 0; i < h.markers; i++ {
		h.want[i] += h.dn[i]
	}
	for i := 1; i < h.markers-1; i++ {
		d := h.want[i] - h.pos[i]
		if (d >= 1 && h.pos[i+1]-h.pos[i] > 1) || (d <= -1 && h.pos[i-1]-h.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			nh := h.parabolic(i, sign)
			if h.heights[i-1] < nh && nh < h.heights[i+1] {
				h.heights[i] = nh
			} else {
				h.heights[i] = h.linear(i, sign)
			}
			h.pos[i] += sign
		}
	}
}

func (h *P2Histogram) parabolic(i int, d float64) float64 {
	return h.heights[i] + d/(h.pos[i+1]-h.pos[i-1])*
		((h.pos[i]-h.pos[i-1]+d)*(h.heights[i+1]-h.heights[i])/(h.pos[i+1]-h.pos[i])+
			(h.pos[i+1]-h.pos[i]-d)*(h.heights[i]-h.heights[i-1])/(h.pos[i]-h.pos[i-1]))
}

func (h *P2Histogram) linear(i int, d float64) float64 {
	j := i + int(d)
	return h.heights[i] + d*(h.heights[j]-h.heights[i])/(h.pos[j]-h.pos[i])
}

// Quantile implements Estimator by interpolating between the two nearest
// markers of the requested fraction.
func (h *P2Histogram) Quantile(phi float64) (int64, error) {
	if h.n == 0 {
		return 0, ErrNoData
	}
	if !(phi > 0 && phi <= 1) { // positive phrasing also rejects NaN
		return 0, fmt.Errorf("baseline: phi=%g out of (0,1]", phi)
	}
	if h.n < h.markers {
		s := append([]float64(nil), h.init...)
		sort.Float64s(s)
		rank := int(phi * float64(len(s)))
		if rank >= len(s) {
			rank = len(s) - 1
		}
		return int64(s[rank]), nil
	}
	exact := phi * float64(h.markers-1)
	i := int(exact)
	if i >= h.markers-1 {
		return int64(h.heights[h.markers-1]), nil
	}
	frac := exact - float64(i)
	return int64(h.heights[i] + frac*(h.heights[i+1]-h.heights[i])), nil
}

// Cells returns the histogram cell boundaries (marker heights).
func (h *P2Histogram) Cells() []float64 {
	out := make([]float64, h.markers)
	copy(out, h.heights)
	return out
}
