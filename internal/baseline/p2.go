package baseline

import (
	"fmt"
	"sort"
)

// P2 is the P² ("P-square") algorithm of Jain and Chlamtac, "The P²
// Algorithm for Dynamic Calculation of Quantiles and Histograms Without
// Storing Observations" (CACM 1985) — cited as [RC85] by the paper. It
// tracks one quantile with exactly five markers whose heights are adjusted
// by piecewise-parabolic interpolation, using O(1) memory and no storage of
// observations. The paper lists it among prior art that "does not provide
// any error bounds for the quantile estimates".
type P2 struct {
	phi     float64
	n       int        // observations so far
	heights [5]float64 // marker heights q_i
	pos     [5]float64 // actual marker positions n_i (1-based)
	want    [5]float64 // desired marker positions n'_i
	dn      [5]float64 // desired position increments
	init    []float64  // first five observations, pre-initialization
}

// NewP2 creates a P² estimator for the φ-quantile.
func NewP2(phi float64) (*P2, error) {
	if !(phi > 0 && phi < 1) { // positive phrasing also rejects NaN
		return nil, fmt.Errorf("baseline: P2 needs phi in (0,1), got %g", phi)
	}
	p := &P2{phi: phi}
	p.dn = [5]float64{0, phi / 2, phi, (1 + phi) / 2, 1}
	return p, nil
}

// Name implements Estimator.
func (p *P2) Name() string { return "P2" }

// MemoryElems implements Estimator: 5 markers × (height, position, desired
// position) ≈ 15 element-equivalents.
func (p *P2) MemoryElems() int { return 15 }

// Add implements Estimator.
func (p *P2) Add(x int64) {
	v := float64(x)
	if p.n < 5 {
		p.init = append(p.init, v)
		p.n++
		if p.n == 5 {
			sort.Float64s(p.init)
			for i := 0; i < 5; i++ {
				p.heights[i] = p.init[i]
				p.pos[i] = float64(i + 1)
			}
			p.want = [5]float64{1, 1 + 2*p.phi, 1 + 4*p.phi, 3 + 2*p.phi, 5}
			p.init = nil
		}
		return
	}
	p.n++
	// Find cell k containing v and update extreme heights.
	var k int
	switch {
	case v < p.heights[0]:
		p.heights[0] = v
		k = 0
	case v >= p.heights[4]:
		p.heights[4] = v
		k = 3
	default:
		k = 3
		for i := 1; i < 5; i++ {
			if v < p.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.dn[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height prediction.
func (p *P2) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback linear height prediction.
func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Quantile implements Estimator. Only the configured φ is answered; P² is
// a single-quantile sketch (the Table 7 harness instantiates one per
// dectile).
func (p *P2) Quantile(phi float64) (int64, error) {
	if p.n == 0 {
		return 0, ErrNoData
	}
	if phi != p.phi {
		return 0, fmt.Errorf("baseline: this P2 instance tracks phi=%g, asked for %g", p.phi, phi)
	}
	if p.n < 5 {
		s := append([]float64(nil), p.init...)
		sort.Float64s(s)
		rank := int(phi * float64(len(s)))
		if rank >= len(s) {
			rank = len(s) - 1
		}
		return int64(s[rank]), nil
	}
	return int64(p.heights[2]), nil
}
