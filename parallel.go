package opaq

import (
	"cmp"

	"opaq/internal/parallel"
	"opaq/internal/runio"
	"opaq/internal/simnet"
)

// ParallelConfig parameterizes a parallel OPAQ execution on the simulated
// message-passing machine; see parallel.Config.
type ParallelConfig = parallel.Config

// ParallelResult is a parallel execution's summary plus its simulated
// per-phase time breakdown; see parallel.Result.
type ParallelResult[T cmp.Ordered] = parallel.Result[T]

// PhaseTimes is the per-phase simulated time breakdown; see
// parallel.PhaseTimes.
type PhaseTimes = parallel.PhaseTimes

// MergeAlgo selects the global sample-merge algorithm; see
// parallel.MergeAlgo.
type MergeAlgo = parallel.MergeAlgo

// The two global merge algorithms of the paper's Section 3.
const (
	// BitonicMerge is the bitonic network with merge-split (power-of-two
	// shard counts).
	BitonicMerge = parallel.BitonicMerge
	// SampleMerge is splitter-based merging (any shard count).
	SampleMerge = parallel.SampleMerge
)

// CostModel is the two-level machine model (α compute, τ startup, μ per
// word); see simnet.CostModel.
type CostModel = simnet.CostModel

// DiskModel converts I/O operation counts into simulated time; see
// runio.DiskModel.
type DiskModel = runio.DiskModel

// DefaultCostModel returns SP-2-flavoured machine constants calibrated so
// the paper's phase fractions (Tables 11–12) reproduce.
func DefaultCostModel() CostModel { return simnet.DefaultCostModel() }

// DefaultDiskModel returns the matching per-node disk model.
func DefaultDiskModel() DiskModel { return runio.DefaultDiskModel() }

// ParallelRun executes parallel OPAQ over per-rank data shards on the
// simulated machine (the paper's Section 3 evaluation vehicle). The
// returned summary's bounds are bit-identical to the sequential
// algorithm's over the concatenated data; the result also carries the
// simulated execution time and its per-phase breakdown. For a real
// (wall-clock) sharded build, use BuildSharded.
func ParallelRun[T cmp.Ordered](shards [][]T, cfg ParallelConfig) (*ParallelResult[T], error) {
	return parallel.Run(shards, cfg)
}
