package opaq

import (
	"cmp"
	"net/http"

	"opaq/internal/engine"
)

// Engine is a concurrent, long-lived quantile service: P lock-striped
// ingest shards absorb a stream while queries are served from an
// epoch-cached merged snapshot (one single-flight merge per ingest
// advance, however many queries arrive). It checkpoints and restores its
// state through the SaveSummary format and can be seeded from run files
// via a sharded bulk load. See internal/engine for the architecture.
type Engine[T cmp.Ordered] = engine.Engine[T]

// EngineOptions configures NewEngine; see engine.Options.
type EngineOptions = engine.Options

// EngineStats is a point-in-time engine activity report; see engine.Stats.
type EngineStats = engine.Stats

// EngineSnapshot is an immutable consistent view of an engine: the merged
// summary plus its derived equi-depth histogram; see engine.Snapshot.
type EngineSnapshot[T cmp.Ordered] = engine.Snapshot[T]

// NewEngine returns a live quantile service over elements of type T.
func NewEngine[T cmp.Ordered](opts EngineOptions) (*Engine[T], error) {
	return engine.New[T](opts)
}

// NewEngineHandler exposes an engine over the HTTP/JSON API that
// `opaq serve` speaks (POST /ingest, GET /quantile, GET /quantiles,
// GET /selectivity, GET /stats). parse converts request keys from their
// decimal string form; ParseInt64Key and ParseFloat64Key cover the common
// element types.
func NewEngineHandler[T cmp.Ordered](e *Engine[T], parse func(string) (T, error)) http.Handler {
	return engine.NewHandler(e, parse)
}

// ParseInt64Key parses a decimal int64 HTTP request key.
func ParseInt64Key(s string) (int64, error) { return engine.Int64Key(s) }

// ParseFloat64Key parses a decimal float64 HTTP request key.
func ParseFloat64Key(s string) (float64, error) { return engine.Float64Key(s) }
